(* Benchmark harness: regenerates every table and figure of DeWitt et al.
   1984 (see DESIGN.md's experiment index E1..E9 plus ablations), printing
   paper-formatted rows.  `dune exec bench/main.exe` runs everything;
   `-e <id>` selects one experiment; `--list` enumerates; `--bechamel`
   additionally runs wall-clock microbenchmarks of the hot operators. *)

module U = Mmdb_util
module S = Mmdb_storage
module I = Mmdb_index
module E = Mmdb_exec
module AM = Mmdb_model.Access_model
module JM = Mmdb_model.Join_model
module RM = Mmdb_model.Recovery_model
module R = Mmdb_recovery
module P = Mmdb_planner
module A = P.Algebra

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let zs = [ 10.0; 20.0; 30.0 ]
let ys = [ 0.5; 0.75; 1.0 ]

(* ------------------------------------------------------------------ *)
(* E1 / E1b: Table 1 — AVL vs B+-tree crossover                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "E1 Table 1: fraction H of the AVL structure that must be memory-resident \
     for the AVL tree to beat the B+-tree (random single-tuple access)";
  Printf.printf "parameters: %s\n\n" (Format.asprintf "%a" AM.pp AM.default);
  let t =
    U.Tablefmt.create
      ("Z \\ Y" :: List.map (fun y -> Printf.sprintf "Y=%.2f" y) ys)
  in
  List.iter
    (fun z ->
      U.Tablefmt.add_row t
        (Printf.sprintf "Z=%.0f" z
        :: List.map
             (fun y ->
               U.Tablefmt.cell_float ~decimals:3
                 (AM.crossover_h { AM.default with AM.z; AM.y }))
             ys))
    zs;
  U.Tablefmt.print t;
  Printf.printf
    "\npaper: \"a very high percentage of the tree must be in main memory for \
     an AVL-Tree to be competitive\" (80-90%%+): all cells are >= 0.80.\n"

let table1_seq () =
  section
    "E1b Table 1 (sequential-access analogue): crossover H' for reading N \
     records sequentially (inequality (2); the paper notes Table 1 applies)";
  List.iter
    (fun n ->
      Printf.printf "N = %d records:\n" n;
      let t =
        U.Tablefmt.create
          ("Z \\ Y" :: List.map (fun y -> Printf.sprintf "Y=%.2f" y) ys)
      in
      List.iter
        (fun z ->
          U.Tablefmt.add_row t
            (Printf.sprintf "Z=%.0f" z
            :: List.map
                 (fun y ->
                   U.Tablefmt.cell_float ~decimals:3
                     (AM.crossover_h_seq { AM.default with AM.z; AM.y } ~n))
                 ys))
        zs;
      U.Tablefmt.print t;
      print_newline ())
    [ 100; 1000; 10000 ]

(* ------------------------------------------------------------------ *)
(* E1c: empirical cross-check of the Section 2 fault model             *)
(* ------------------------------------------------------------------ *)

let access_schema () =
  S.Schema.create ~key:"k"
    [
      S.Schema.column "k" S.Schema.Int;
      S.Schema.column ~width:32 "pad" S.Schema.Fixed_string;
    ]

let access_empirical () =
  section
    "E1c: measured faults/comparisons of the real AVL and B+-tree under a \
     buffer pool with random replacement, against the Section 2 model";
  let n = 30_000 in
  let schema = access_schema () in
  let probes = 3000 in
  let hs = [ 0.25; 0.50; 0.75; 0.95 ] in
  let t =
    U.Tablefmt.create
      [
        "structure"; "H"; "faults/lkp"; "model"; "comps/lkp"; "model";
      ]
  in
  (* AVL: nodes of t + 2s bytes, several per page. *)
  let env = S.Env.create () in
  let avl = I.Avl.create ~env ~schema () in
  let rng = U.Xorshift.create 11 in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle rng keys;
  Array.iter
    (fun k ->
      I.Avl.insert avl (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
    keys;
  let nodes_per_page = 4096 / (S.Schema.tuple_width schema + 8) in
  let avl_pages =
    (I.Avl.node_count avl + nodes_per_page - 1) / nodes_per_page
  in
  let c_model = Float.log2 (float_of_int n) +. 0.25 in
  List.iter
    (fun h ->
      let disk = S.Disk.create ~env ~page_size:4096 in
      let cap = max 1 (int_of_float (h *. float_of_int avl_pages)) in
      let pager =
        I.Pager.create ~disk ~pool_capacity:cap
          ~policy:(S.Buffer_pool.Random_replacement (U.Xorshift.create 3))
          ~nodes_per_page
      in
      I.Pager.attach_avl pager avl;
      (* Warm up, then measure. *)
      for _ = 1 to 1000 do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let before = S.Counters.snapshot env.S.Env.counters in
      for _ = 1 to probes do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let d = S.Counters.diff ~after:env.S.Env.counters ~before in
      I.Avl.set_visit_hook avl None;
      let per x = float_of_int x /. float_of_int probes in
      U.Tablefmt.add_row t
        [
          "AVL";
          U.Tablefmt.cell_float h;
          U.Tablefmt.cell_float (per d.S.Counters.faults);
          U.Tablefmt.cell_float (c_model *. (1.0 -. h));
          U.Tablefmt.cell_float (per d.S.Counters.comparisons);
          U.Tablefmt.cell_float c_model;
        ])
    hs;
  U.Tablefmt.add_rule t;
  (* B+-tree: one node per page. *)
  let env = S.Env.create () in
  let bt = I.Btree.create ~env ~schema ~page_size:4096 () in
  Array.iter
    (fun k ->
      I.Btree.insert bt (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
    keys;
  let bt_pages = I.Btree.node_count bt in
  let height = I.Btree.height bt in
  let c'_model = Float.ceil (Float.log2 (float_of_int n)) in
  List.iter
    (fun h ->
      let disk = S.Disk.create ~env ~page_size:4096 in
      let cap = max 1 (int_of_float (h *. float_of_int bt_pages)) in
      let pager =
        I.Pager.create ~disk ~pool_capacity:cap
          ~policy:(S.Buffer_pool.Random_replacement (U.Xorshift.create 5))
          ~nodes_per_page:1
      in
      I.Pager.attach_btree pager bt;
      for _ = 1 to 1000 do
        ignore (I.Btree.search bt (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let before = S.Counters.snapshot env.S.Env.counters in
      for _ = 1 to probes do
        ignore (I.Btree.search bt (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let d = S.Counters.diff ~after:env.S.Env.counters ~before in
      I.Btree.set_visit_hook bt None;
      let per x = float_of_int x /. float_of_int probes in
      U.Tablefmt.add_row t
        [
          "B+-tree";
          U.Tablefmt.cell_float h;
          U.Tablefmt.cell_float (per d.S.Counters.faults);
          U.Tablefmt.cell_float (float_of_int height *. (1.0 -. h));
          U.Tablefmt.cell_float (per d.S.Counters.comparisons);
          U.Tablefmt.cell_float c'_model;
        ])
    hs;
  U.Tablefmt.print t;
  Printf.printf
    "\nAVL structure: %d pages (%d nodes/page); B+-tree: %d node pages, \
     height %d.\n\
     The B+-tree touches `height` pages per lookup vs the AVL's ~log2(n): \
     at every memory fraction its fault count is several times lower — \
     Section 2's conclusion.  Measured faults sit below the model for both \
     structures because C*(1-H) assumes every touched page is uniformly \
     random, while the top tree levels are hot and effectively always \
     resident; the paper's model is a (tight-ordering) upper bound, and the \
     comparison between structures is unaffected.\n"
    avl_pages nodes_per_page bt_pages height

(* ------------------------------------------------------------------ *)
(* E2: Figure 1 (analytic)                                             *)
(* ------------------------------------------------------------------ *)

let figure1_ratios =
  [ 0.0316; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.45; 0.499; 0.5; 0.55; 0.6;
    0.7; 0.8; 0.9; 0.99; 1.0 ]

let figure1 () =
  section
    "E2 Figure 1: execution time (s) of the four join algorithms vs \
     |M| / (|R| * F), Table 2 parameters (|R| = |S| = 10,000 pages)";
  let w = JM.table2_workload in
  let rf = float_of_int w.JM.r_pages *. w.JM.cost.S.Cost.fudge in
  let t =
    U.Tablefmt.create
      [ "|M|/(|R|F)"; "|M|"; "sort-merge"; "simple"; "grace"; "hybrid";
        "B"; "q"; "A" ]
  in
  List.iter
    (fun ratio ->
      let m = max (JM.min_memory w) (int_of_float (ratio *. rf)) in
      let cost name = List.assoc name (JM.all_four w ~m) in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_float ~decimals:4 ratio;
          U.Tablefmt.cell_int m;
          U.Tablefmt.cell_float ~decimals:1 (cost "sort-merge");
          U.Tablefmt.cell_float ~decimals:1 (cost "simple");
          U.Tablefmt.cell_float ~decimals:1 (cost "grace");
          U.Tablefmt.cell_float ~decimals:1 (cost "hybrid");
          U.Tablefmt.cell_int (JM.hybrid_partitions w ~m);
          U.Tablefmt.cell_float (JM.hybrid_q w ~m);
          U.Tablefmt.cell_int (JM.simple_hash_passes w ~m);
        ])
    figure1_ratios;
  U.Tablefmt.print t;
  let above = JM.sort_merge w ~m:(int_of_float (1.5 *. rf)) in
  Printf.printf
    "\nabove ratio 1.0 sort-merge improves to %.0f s (paper: \"approximately \
     900 seconds\"); note the hybrid discontinuity crossing 0.5 (B: 2 -> 1, \
     random -> sequential writes) and the small region below 0.5 where simple \
     hash wins — both discussed under Figure 1 in the paper.\n"
    above

(* ------------------------------------------------------------------ *)
(* E2b: Figure 1 empirical (executable joins on the simulator)         *)
(* ------------------------------------------------------------------ *)

let join_schema name =
  S.Schema.create ~key:"k"
    [
      S.Schema.column "k" S.Schema.Int;
      S.Schema.column "v" S.Schema.Int;
      S.Schema.column ~width:84 ("pad_" ^ name) S.Schema.Fixed_string;
    ]

let build_join_workload ~pages ~seed =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let rng = U.Xorshift.create seed in
  let tpp = 40 in
  let n = pages * tpp in
  let mk name =
    let schema = join_schema name in
    S.Relation.of_tuples ~disk ~name ~schema
      (List.init n (fun i ->
           S.Tuple.encode schema
             [
               S.Tuple.VInt (U.Xorshift.int rng n);
               S.Tuple.VInt i;
               S.Tuple.VStr "";
             ]))
  in
  (env, mk "R", mk "S")

let figure1_empirical () =
  section
    "E2b Figure 1 empirical: the executable joins on a 250-page workload \
     (10,000 100-byte tuples per relation), simulated seconds vs the model";
  let pages = 250 in
  let fudge = 1.2 in
  let rf = float_of_int pages *. fudge in
  let ratios = [ 0.08; 0.15; 0.3; 0.45; 0.55; 0.75; 1.0 ] in
  let w =
    {
      JM.r_pages = pages;
      JM.s_pages = pages;
      JM.r_tuples_per_page = 40;
      JM.s_tuples_per_page = 40;
      JM.cost = S.Cost.table2;
    }
  in
  let t =
    U.Tablefmt.create
      [ "ratio"; "|M|";
        "sm meas"; "sm model"; "simple meas"; "simple model";
        "grace meas"; "grace model"; "hybrid meas"; "hybrid model" ]
  in
  List.iter
    (fun ratio ->
      let m = max (JM.min_memory w) (int_of_float (ratio *. rf)) in
      let env, r, s = build_join_workload ~pages ~seed:7 in
      ignore env;
      let cells = ref [] in
      List.iter
        (fun algo ->
          let stats = E.Joiner.run_measured algo ~mem_pages:m ~fudge r s in
          let model =
            match algo with
            | E.Joiner.Sort_merge_join -> JM.sort_merge w ~m
            | E.Joiner.Simple_hash_join -> JM.simple_hash w ~m
            | E.Joiner.Grace_hash_join -> JM.grace_hash w ~m
            | E.Joiner.Hybrid_hash_join -> JM.hybrid_hash w ~m
            | E.Joiner.Nested_loop_join -> nan
          in
          cells :=
            U.Tablefmt.cell_float ~decimals:2 model
            :: U.Tablefmt.cell_float ~decimals:2 stats.E.Op_stats.seconds
            :: !cells)
        E.Joiner.all;
      U.Tablefmt.add_row t
        (U.Tablefmt.cell_float ratio :: U.Tablefmt.cell_int m
        :: List.rev !cells))
    ratios;
  U.Tablefmt.print t;
  Printf.printf
    "\nAbsolute seconds differ (the model charges idealised bulk terms; the \
     executable pays per-page realities), but the orderings and crossovers \
     match: hybrid <= grace everywhere, simple explodes at small |M| and \
     converges to hybrid at 1.0, sort-merge is the flattest and slowest \
     mid-range curve.\n"

(* ------------------------------------------------------------------ *)
(* E3: Table 2                                                         *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "E3 Table 2: parameter settings used";
  let c = S.Cost.table2 in
  let t = U.Tablefmt.create ~aligns:[ U.Tablefmt.Left; U.Tablefmt.Right ] [ "parameter"; "value" ] in
  U.Tablefmt.add_row t [ "comp (compare keys)"; "3 microseconds" ];
  U.Tablefmt.add_row t [ "hash (hash a key)"; "9 microseconds" ];
  U.Tablefmt.add_row t [ "move (move a tuple)"; "20 microseconds" ];
  U.Tablefmt.add_row t [ "swap (swap two tuples)"; "60 microseconds" ];
  U.Tablefmt.add_row t [ "IOseq"; "10 milliseconds" ];
  U.Tablefmt.add_row t [ "IOrand"; "25 milliseconds" ];
  U.Tablefmt.add_row t [ "F (universal fudge factor)"; "1.2" ];
  U.Tablefmt.add_row t [ "|S| pages"; "10,000" ];
  U.Tablefmt.add_row t [ "|R| pages"; "10,000" ];
  U.Tablefmt.add_row t [ "||R||/|R| tuples per page"; "40" ];
  U.Tablefmt.add_row t [ "||S||/|S| tuples per page"; "40" ];
  U.Tablefmt.print t;
  Printf.printf "\nencoded as: %s\n" (Format.asprintf "%a" S.Cost.pp c)

(* ------------------------------------------------------------------ *)
(* E4: Table 3 sensitivity sweep                                       *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section
    "E4 Table 3: sensitivity — qualitative Figure 1 conclusions across the \
     tested parameter ranges";
  let corners = ref [] in
  List.iter (fun comp ->
      List.iter (fun hash ->
          List.iter (fun move ->
              List.iter (fun io_seq ->
                  List.iter (fun fudge ->
                      List.iter (fun s_pages ->
                          corners :=
                            {
                              JM.r_pages = 10_000;
                              JM.s_pages = s_pages;
                              JM.r_tuples_per_page = 40;
                              JM.s_tuples_per_page = 40;
                              JM.cost =
                                {
                                  S.Cost.comp;
                                  S.Cost.hash;
                                  S.Cost.move;
                                  S.Cost.swap = move *. 3.0;
                                  S.Cost.io_seq;
                                  S.Cost.io_rand = io_seq *. 2.5;
                                  S.Cost.fudge;
                                };
                            }
                            :: !corners)
                        [ 10_000; 50_000; 200_000 ])
                    [ 1.0; 1.2; 1.4 ])
                [ 5e-3; 10e-3 ])
            [ 10e-6; 50e-6 ])
        [ 2e-6; 50e-6 ])
    [ 1e-6; 10e-6 ];
  let total = List.length !corners in
  let hybrid_best = ref 0 in
  let hybrid_near_best = ref 0 in
  let hybrid_not_worst = ref 0 in
  let hybrid_beats_grace = ref 0 in
  let checks = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun ratio ->
          let m =
            max (JM.min_memory w)
              (int_of_float (ratio *. float_of_int w.JM.r_pages *. w.JM.cost.S.Cost.fudge))
          in
          let costs = JM.all_four w ~m in
          let hybrid = List.assoc "hybrid" costs in
          let grace = List.assoc "grace" costs in
          let best = List.fold_left (fun a (_, c) -> Float.min a c) infinity costs in
          let worst = List.fold_left (fun a (_, c) -> Float.max a c) 0.0 costs in
          incr checks;
          if hybrid <= best +. 1e-9 then incr hybrid_best;
          if hybrid <= 1.35 *. best then incr hybrid_near_best;
          if hybrid < worst then incr hybrid_not_worst;
          if hybrid <= grace +. 1e-9 then incr hybrid_beats_grace)
        [ 0.05; 0.2; 0.4; 0.7; 1.0 ])
    !corners;
  let pct x = 100.0 *. float_of_int x /. float_of_int !checks in
  Printf.printf
    "parameter corners tested: %d (comp 1-10us x hash 2-50us x move 10-50us x \
     IOseq 5-10ms x F 1.0-1.4 x |S| 10k-200k pages), 5 memory ratios each.\n\
     hybrid cheapest or tied:     %4d / %d cost evaluations (%.1f%%)\n\
     hybrid within 1.35x of best: %4d / %d (%.1f%%) — the exception is the\n\
    \   narrow pre-0.5 window where simple hash briefly wins (Figure 1 note)\n\
     hybrid <= grace:             %4d / %d (%.1f%%)\n\
     hybrid never the worst:      %4d / %d\n\
     As in the paper: \"for each of these values we observed the same \
     qualitative shape and relative positioning\".\n"
    total !hybrid_best !checks (pct !hybrid_best)
    !hybrid_near_best !checks (pct !hybrid_near_best)
    !hybrid_beats_grace !checks (pct !hybrid_beats_grace)
    !hybrid_not_worst !checks

(* ------------------------------------------------------------------ *)
(* E5: recovery throughput ladder                                      *)
(* ------------------------------------------------------------------ *)

let recovery_tps () =
  section
    "E5 Section 5.2: transaction throughput by commit strategy (measured by \
     discrete-event simulation vs the paper's arithmetic)";
  let t =
    U.Tablefmt.create
      [ "strategy"; "measured tps"; "model tps"; "p50 latency"; "p99 latency" ]
  in
  let model = RM.gray_banking in
  let cases =
    [
      (R.Wal.Conventional, RM.conventional_tps model, 1500);
      (R.Wal.Group_commit, RM.group_commit_tps model, 5000);
      (R.Wal.Partitioned { devices = 2 }, RM.partitioned_tps model ~devices:2, 5000);
      (R.Wal.Partitioned { devices = 4 }, RM.partitioned_tps model ~devices:4, 8000);
      ( R.Wal.Stable { devices = 1; capacity_bytes = 64 * 1024; compressed = false },
        RM.stable_memory_tps model ~devices:1 ~compressed:false, 5000 );
      ( R.Wal.Stable { devices = 1; capacity_bytes = 64 * 1024; compressed = true },
        RM.stable_memory_tps model ~devices:1 ~compressed:true, 8000 );
    ]
  in
  List.iter
    (fun (strategy, predicted, n_txns) ->
      let r = R.Tps_sim.run ~nrecords:200_000 ~n_txns strategy in
      U.Tablefmt.add_row t
        [
          r.R.Tps_sim.strategy_label;
          U.Tablefmt.cell_float ~decimals:0 r.R.Tps_sim.tps;
          U.Tablefmt.cell_float ~decimals:0 predicted;
          Printf.sprintf "%.1f ms" (r.R.Tps_sim.latency.U.Stats.p50 *. 1e3);
          Printf.sprintf "%.1f ms" (r.R.Tps_sim.latency.U.Stats.p99 *. 1e3);
        ])
    cases;
  U.Tablefmt.print t;
  (* Conflict ablation: the topological ordering of commit groups
     serializes under contention. *)
  let hi =
    R.Tps_sim.run ~nrecords:60 ~n_txns:2000 (R.Wal.Partitioned { devices = 4 })
  in
  Printf.printf
    "\npaper: 100 tps conventional -> 1000 tps group commit (10 txns/page), \
     multiplied by log devices, 1800 tps with stable-memory compression.\n\
     ablation: partitioned-4 under heavy conflict (60 accounts) collapses to \
     %.0f tps — the dependency ordering (Section 5.2) serializes the \
     groups.\n"
    hi.R.Tps_sim.tps;
  (* Open-loop latency curve: group commit's batching trades latency for
     throughput as offered load approaches the 1000-tps ceiling. *)
  Printf.printf "\ngroup-commit latency vs offered load (open loop):\n\n";
  let t =
    U.Tablefmt.create
      [ "offered tps"; "achieved tps"; "p50 latency"; "p99 latency" ]
  in
  List.iter
    (fun offered ->
      let r =
        R.Tps_sim.run ~nrecords:200_000 ~n_txns:3000
          ~arrival_interval:(1.0 /. float_of_int offered)
          R.Wal.Group_commit
      in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_int offered;
          U.Tablefmt.cell_float ~decimals:0 r.R.Tps_sim.tps;
          Printf.sprintf "%.1f ms" (r.R.Tps_sim.latency.U.Stats.p50 *. 1e3);
          Printf.sprintf "%.1f ms" (r.R.Tps_sim.latency.U.Stats.p99 *. 1e3);
        ])
    [ 100; 400; 800; 950; 990 ];
  U.Tablefmt.print t;
  Printf.printf
    "\nat light load a commit waits for its group to fill (the batching \
     latency the paper's \"user is not notified until\" wording concedes); \
     near the ceiling queueing dominates.\n"

(* ------------------------------------------------------------------ *)
(* E6: log size                                                        *)
(* ------------------------------------------------------------------ *)

let log_size () =
  section
    "E6 Section 5.4: disk-log bytes with and without stable-memory \
     compression (new values only for committed transactions)";
  let base =
    { R.Recovery_manager.default_config with R.Recovery_manager.n_txns = 2000 }
  in
  let group =
    R.Recovery_manager.run
      { base with R.Recovery_manager.strategy = R.Wal.Group_commit }
  in
  let stable =
    R.Recovery_manager.run
      {
        base with
        R.Recovery_manager.strategy =
          R.Wal.Stable { devices = 1; capacity_bytes = 65536; compressed = true };
      }
  in
  let t = U.Tablefmt.create [ "strategy"; "txns"; "disk log bytes"; "bytes/txn" ] in
  let row name (o : R.Recovery_manager.outcome) =
    U.Tablefmt.add_row t
      [
        name;
        U.Tablefmt.cell_int o.R.Recovery_manager.durably_committed;
        U.Tablefmt.cell_int o.R.Recovery_manager.log_disk_bytes;
        U.Tablefmt.cell_float
          (float_of_int o.R.Recovery_manager.log_disk_bytes
          /. float_of_int o.R.Recovery_manager.durably_committed);
      ]
  in
  row "group commit (old+new)" group;
  row "stable memory (new only)" stable;
  U.Tablefmt.print t;
  Printf.printf
    "\nmeasured ratio %.3f; model predicts %.3f (220/400 bytes per \
     transaction) — \"approximately half of the size of the log stores the \
     old values\".\n"
    (float_of_int stable.R.Recovery_manager.log_disk_bytes
    /. float_of_int group.R.Recovery_manager.log_disk_bytes)
    (RM.log_compression_ratio RM.gray_banking)

(* ------------------------------------------------------------------ *)
(* E7: recovery time vs checkpoint interval                            *)
(* ------------------------------------------------------------------ *)

let recovery_time () =
  section
    "E7 Sections 5.3/5.5: recovery cost vs checkpoint frequency (dirty-page \
     table in stable memory bounds the redo scan)";
  let t =
    U.Tablefmt.create
      [ "ckpt every"; "ckpt pages"; "redo applied"; "log recs scanned";
        "recovery time"; "consistent" ]
  in
  List.iter
    (fun every ->
      let cfg =
        {
          R.Recovery_manager.default_config with
          R.Recovery_manager.n_txns = 2000;
          R.Recovery_manager.checkpoint_every = every;
          (* Crash just before the run ends, mid-checkpoint-interval, so
             the redo tail length reflects the checkpoint frequency. *)
          R.Recovery_manager.crash_after = Some 1999;
        }
      in
      let o = R.Recovery_manager.run cfg in
      U.Tablefmt.add_row t
        [
          (match every with Some k -> string_of_int k | None -> "never");
          U.Tablefmt.cell_int o.R.Recovery_manager.checkpoint_pages;
          U.Tablefmt.cell_int o.R.Recovery_manager.recover_stats.R.Kv_store.redo_applied;
          U.Tablefmt.cell_int
            o.R.Recovery_manager.recover_stats.R.Kv_store.records_scanned;
          Printf.sprintf "%.2f s"
            o.R.Recovery_manager.recover_stats.R.Kv_store.recovery_time;
          string_of_bool o.R.Recovery_manager.consistent;
        ])
    [ None; Some 1000; Some 500; Some 250; Some 100 ];
  U.Tablefmt.print t;
  Printf.printf
    "\nmore frequent checkpoints cost pages during normal processing but cut \
     redo work and recovery time, exactly the Section 5.3 trade.\n"

(* ------------------------------------------------------------------ *)
(* E8: access planning                                                 *)
(* ------------------------------------------------------------------ *)

let planning () =
  section
    "E8 Section 4: planning a star query with hashing available vs the \
     disk-era sort-merge-only optimizer";
  let db = Mmdb.Db.create ~mem_pages:512 () in
  let emp_schema =
    S.Schema.create ~key:"id"
      [
        S.Schema.column "id" S.Schema.Int;
        S.Schema.column "dept" S.Schema.Int;
        S.Schema.column "salary" S.Schema.Int;
      ]
  in
  let dept_schema =
    S.Schema.create ~key:"dept_id"
      [
        S.Schema.column "dept_id" S.Schema.Int;
        S.Schema.column "region" S.Schema.Int;
      ]
  in
  Mmdb.Db.create_table db ~name:"emp" ~schema:emp_schema;
  Mmdb.Db.create_table db ~name:"dept" ~schema:dept_schema;
  let rng = U.Xorshift.create 9 in
  Mmdb.Db.insert_many db ~table:"emp"
    (List.init 20_000 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (U.Xorshift.int rng 100);
           S.Tuple.VInt (30_000 + U.Xorshift.int rng 90_000);
         ]));
  Mmdb.Db.insert_many db ~table:"dept"
    (List.init 100 (fun i -> [ S.Tuple.VInt i; S.Tuple.VInt (i mod 7) ]));
  let q =
    A.aggregate ~group_by:"r_dept" ~aggs:[ E.Aggregate.Count ]
      (A.select ~column:"r_salary" ~op:A.Gt ~value:(S.Tuple.VInt 90_000)
         (A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
            (A.scan "dept")))
  in
  let cat = Mmdb.Db.catalog db in
  let hash_cfg =
    { P.Optimizer.mem_pages = 512; P.Optimizer.fudge = 1.2; P.Optimizer.allow_hash = true }
  in
  let sort_cfg = { hash_cfg with P.Optimizer.allow_hash = false } in
  let hash_plan = P.Optimizer.plan cat hash_cfg q in
  let sort_plan = P.Optimizer.plan cat sort_cfg q in
  Printf.printf "-- plan with hashing available (|M| = 512 pages):\n%s\n"
    (P.Optimizer.explain hash_plan);
  Printf.printf "-- plan restricted to sort-merge:\n%s\n"
    (P.Optimizer.explain sort_plan);
  Printf.printf "estimated cost: hash %.4f s vs sort-only %.4f s\n"
    (P.Optimizer.estimated_cost hash_plan)
    (P.Optimizer.estimated_cost sort_plan);
  let env = Mmdb.Db.env db in
  let measure cfg plan =
    let before = S.Env.elapsed env in
    let out = P.Executor.run cat cfg plan in
    (S.Env.elapsed env -. before, S.Relation.ntuples out)
  in
  let ht, hn = measure hash_cfg hash_plan in
  let st, sn = measure sort_cfg sort_plan in
  Printf.printf
    "executed: hash plan %.4f simulated s (%d rows); sort plan %.4f s (%d \
     rows).\nSection 4's claim: with enough memory there is effectively one \
     join algorithm, its output order never matters, and optimization \
     reduces to pushing selective operators down (see the filter under the \
     join in both plans).\n"
    ht hn st sn

(* ------------------------------------------------------------------ *)
(* E9: aggregates & projection                                         *)
(* ------------------------------------------------------------------ *)

let aggregates () =
  section
    "E9 Section 3.9: hash vs sort for aggregation and duplicate-eliminating \
     projection (\"the fastest algorithms for the join, projection, and \
     aggregate operators are based on hashing\")";
  let t =
    U.Tablefmt.create
      [ "groups"; "hash 1-pass (s)"; "hash hybrid (s)"; "sort-group (s)";
        "hash distinct (s)"; "sort distinct (s)" ]
  in
  List.iter
    (fun ngroups ->
      let env = S.Env.create () in
      let disk = S.Disk.create ~env ~page_size:4096 in
      let schema =
        S.Schema.create ~key:"g"
          [ S.Schema.column "g" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]
      in
      let rng = U.Xorshift.create 13 in
      let rel =
        S.Relation.of_tuples ~disk ~name:"fact" ~schema
          (List.init 40_000 (fun i ->
               S.Tuple.encode schema
                 [
                   S.Tuple.VInt (U.Xorshift.int rng ngroups);
                   S.Tuple.VInt i;
                 ]))
      in
      let specs = [ E.Aggregate.Count; E.Aggregate.Sum "v" ] in
      let time f =
        let before = S.Env.elapsed env in
        let out = f () in
        S.Relation.free_pages out;
        S.Env.elapsed env -. before
      in
      let one_pass = time (fun () -> E.Aggregate.one_pass rel specs) in
      let hybrid =
        time (fun () -> E.Aggregate.hybrid ~mem_pages:8 ~fudge:1.2 rel specs)
      in
      let sort_agg =
        time (fun () -> E.Aggregate.sort_based ~mem_pages:8 rel specs)
      in
      let proj =
        time (fun () ->
            E.Projection.distinct ~mem_pages:8 ~fudge:1.2 ~cols:[ "g" ] rel)
      in
      let sort_proj =
        time (fun () ->
            E.Projection.sort_distinct ~mem_pages:8 ~cols:[ "g" ] rel)
      in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_int ngroups;
          U.Tablefmt.cell_float ~decimals:3 one_pass;
          U.Tablefmt.cell_float ~decimals:3 hybrid;
          U.Tablefmt.cell_float ~decimals:3 sort_agg;
          U.Tablefmt.cell_float ~decimals:3 proj;
          U.Tablefmt.cell_float ~decimals:3 sort_proj;
        ])
    [ 10; 1000; 40000 ];
  U.Tablefmt.print t;
  Printf.printf
    "\none-pass hashing wins whenever the result fits (\"who would ever want \
     to read even a 4 million byte report\"); even the spilling hybrid \
     variant beats the sort-based baseline, which pays the full \
     n log n (comp+swap) plus run I/O — Section 3.9's recommendation.\n"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablation 1: buffer replacement policy vs the Section 2 fault model";
  let n = 20_000 in
  let schema = access_schema () in
  let env = S.Env.create () in
  let avl = I.Avl.create ~env ~schema () in
  let rng = U.Xorshift.create 17 in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle rng keys;
  Array.iter
    (fun k -> I.Avl.insert avl (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
    keys;
  let nodes_per_page = 4096 / 48 in
  let pages = (I.Avl.node_count avl + nodes_per_page - 1) / nodes_per_page in
  let h = 0.5 in
  let t = U.Tablefmt.create [ "policy"; "faults/lookup"; "model (random)" ] in
  let c_model = (Float.log2 (float_of_int n) +. 0.25) *. (1.0 -. h) in
  List.iter
    (fun (name, policy) ->
      let disk = S.Disk.create ~env ~page_size:4096 in
      let pager =
        I.Pager.create ~disk
          ~pool_capacity:(int_of_float (h *. float_of_int pages))
          ~policy ~nodes_per_page
      in
      I.Pager.attach_avl pager avl;
      for _ = 1 to 1000 do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let before = env.S.Env.counters.S.Counters.faults in
      for _ = 1 to 3000 do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let faults = env.S.Env.counters.S.Counters.faults - before in
      I.Avl.set_visit_hook avl None;
      U.Tablefmt.add_row t
        [
          name;
          U.Tablefmt.cell_float (float_of_int faults /. 3000.0);
          U.Tablefmt.cell_float c_model;
        ])
    [
      ("random", S.Buffer_pool.Random_replacement (U.Xorshift.create 23));
      ("lru", S.Buffer_pool.Lru);
      ("clock", S.Buffer_pool.Clock);
      ("fifo", S.Buffer_pool.Fifo);
      ("lru-2", S.Buffer_pool.Lru_2);
    ];
  U.Tablefmt.print t;

  section
    "Ablation 2: TID-key pairs vs whole tuples in the hash table (Section \
     3.2) — smaller moves vs random fetches on output";
  let w = JM.table2_workload in
  let m = 6000 in
  let t = U.Tablefmt.create [ "join output tuples"; "whole tuples (s)"; "TID-key pairs (s)" ] in
  List.iter
    (fun output ->
      (* TID variant: moves shrink by the tuple/TID-pair width ratio
         (100 -> 16 bytes), but each output pair costs a random fetch. *)
      let whole = JM.hybrid_hash w ~m in
      let tid_w =
        { w with JM.cost = { w.JM.cost with S.Cost.move = 20e-6 *. 16.0 /. 100.0 } }
      in
      let tid =
        JM.hybrid_hash tid_w ~m
        +. (float_of_int output *. w.JM.cost.S.Cost.io_rand)
      in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_int output;
          U.Tablefmt.cell_float ~decimals:1 whole;
          U.Tablefmt.cell_float ~decimals:1 tid;
        ])
    [ 0; 1000; 10_000; 100_000; 1_000_000 ];
  U.Tablefmt.print t;
  Printf.printf
    "\"the cost of the random accesses to retrieve the tuples can exceed the \
     savings of using TIDs if the join produces a large number of tuples\".\n";

  section "Ablation 3: the hybrid-hash seam at |M| = |R|F/2 in detail";
  let t = U.Tablefmt.create [ "ratio"; "|M|"; "B"; "q"; "write mode"; "hybrid (s)" ] in
  List.iter
    (fun ratio ->
      let m = int_of_float (ratio *. 12_000.0) in
      let b = JM.hybrid_partitions w ~m in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_float ~decimals:3 ratio;
          U.Tablefmt.cell_int m;
          U.Tablefmt.cell_int b;
          U.Tablefmt.cell_float (JM.hybrid_q w ~m);
          (if b <= 1 then "IOseq" else "IOrand");
          U.Tablefmt.cell_float ~decimals:1 (JM.hybrid_hash w ~m);
        ])
    [ 0.44; 0.46; 0.48; 0.499; 0.5; 0.501; 0.52; 0.56 ];
  U.Tablefmt.print t;

  section
    "Ablation 4: group-commit unit — per-page vs per-track log writes \
     (Section 5.4's \"more efficient to write the log a track at a time\")";
  let clock = S.Sim_clock.create () in
  let t = U.Tablefmt.create [ "unit"; "bytes"; "write time"; "tps" ] in
  let run_unit name page_bytes page_write_time =
    let wal = R.Wal.create ~clock ~page_bytes ~page_write_time R.Wal.Group_commit in
    let n = 4000 in
    for i = 1 to n do
      let lsn0 = i * 10 in
      let records =
        R.Log_record.Begin { txn = i; lsn = lsn0 }
        :: List.init 6 (fun j ->
               R.Log_record.Update
                 { txn = i; lsn = lsn0 + 1 + j; slot = j; old_value = 0; new_value = j })
        @ [ R.Log_record.Commit { txn = i; lsn = lsn0 + 7 } ]
      in
      ignore (R.Wal.commit_txn wal ~at:0.0 ~txn:i ~deps:[] records)
    done;
    let done_at = R.Wal.flush wal ~at:0.0 in
    U.Tablefmt.add_row t
      [
        name;
        U.Tablefmt.cell_int page_bytes;
        Printf.sprintf "%.0f ms" (page_write_time *. 1e3);
        U.Tablefmt.cell_float ~decimals:0 (float_of_int n /. done_at);
      ]
  in
  (* A track holds ~8 pages and writes in ~25ms (one rotation) instead of
     8 x 10ms. *)
  run_unit "page (4 KiB, 10 ms)" 4096 10e-3;
  run_unit "track (32 KiB, 25 ms)" 32768 25e-3;
  U.Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E10: virtual memory vs explicit partitioning (Section 6)            *)
(* ------------------------------------------------------------------ *)

let vm_ablation () =
  section
    "E10 Section 6 (future work): \"the effect of virtual memory on query \
     processing\" — a hash join paging its table under VM vs explicit \
     hybrid-hash partitioning";
  let pages = 120 in
  let t =
    U.Tablefmt.create
      [ "|M|/(|R|F)"; "|M|"; "VM hash (s)"; "VM faults"; "hybrid (s)";
        "hybrid I/O" ]
  in
  List.iter
    (fun ratio ->
      let m = max 2 (int_of_float (ratio *. float_of_int pages *. 1.2)) in
      let measure f =
        let env, r, s = build_join_workload ~pages ~seed:5 in
        let before = S.Counters.snapshot env.S.Env.counters in
        let t0 = S.Env.elapsed env in
        ignore (f r s);
        ( S.Env.elapsed env -. t0,
          S.Counters.diff ~after:env.S.Env.counters ~before )
      in
      let vm_time, vm_c =
        measure (fun r s ->
            E.Vm_hash.join ~mem_pages:m ~fudge:1.2 r s (fun _ _ -> ()))
      in
      let hy_time, hy_c =
        measure (fun r s ->
            E.Hybrid_hash.join ~mem_pages:m ~fudge:1.2 r s (fun _ _ -> ()))
      in
      U.Tablefmt.add_row t
        [
          U.Tablefmt.cell_float ratio;
          U.Tablefmt.cell_int m;
          U.Tablefmt.cell_float ~decimals:2 vm_time;
          U.Tablefmt.cell_int vm_c.S.Counters.rand_reads;
          U.Tablefmt.cell_float ~decimals:2 hy_time;
          U.Tablefmt.cell_int (S.Counters.total_io hy_c);
        ])
    [ 0.1; 0.25; 0.5; 0.75; 1.0; 1.5 ];
  U.Tablefmt.print t;
  Printf.printf
    "\nBelow ratio 1.0, VM pays a random fault on a large fraction of table \
     touches (~2 per tuple) while hybrid does bounded sequential partition \
     I/O: explicit partitioning wins by an order of magnitude, converging \
     once everything fits — the implicit answer behind Section 3's design.\n"

(* ------------------------------------------------------------------ *)
(* E11: locking vs versioning (Section 6)                              *)
(* ------------------------------------------------------------------ *)

let mvcc () =
  section
    "E11 Section 6 (future work): \"a versioning mechanism [REED83] may \
     provide superior performance for memory resident systems\" — update \
     throughput with long read-only scans in the mix";
  let t =
    U.Tablefmt.create
      [ "scheme"; "writer tps"; "writer p99"; "readers"; "consistent";
        "peak versions" ]
  in
  List.iter
    (fun scheme ->
      let r = R.Mvcc_sim.run ~n_writers:20_000 scheme in
      U.Tablefmt.add_row t
        [
          r.R.Mvcc_sim.scheme_label;
          U.Tablefmt.cell_float ~decimals:0 r.R.Mvcc_sim.writer_tps;
          Printf.sprintf "%.0f ms" (r.R.Mvcc_sim.writer_p99_latency *. 1e3);
          U.Tablefmt.cell_int r.R.Mvcc_sim.reader_count;
          string_of_bool r.R.Mvcc_sim.snapshots_consistent;
          U.Tablefmt.cell_int r.R.Mvcc_sim.versions_peak;
        ])
    [ R.Mvcc_sim.Locking; R.Mvcc_sim.Versioning ];
  U.Tablefmt.print t;
  Printf.printf
    "\nA scanning reader every 2 s holding its lock for 1 s stalls half of \
     all updates under locking; under versioning writers never wait and the \
     reader's two-phase snapshot read stays zero-sum while writes proceed \
     beneath it.  The cost is the version-chain space, pruned at reader \
     completion.\n"

(* ------------------------------------------------------------------ *)
(* E12: B+-tree occupancy (bulk load vs Yao's 69%)                     *)
(* ------------------------------------------------------------------ *)

let bulk_load_bench () =
  section
    "E12 occupancy ablation: Yao's 69% (random insertion, assumed by the \
     Section 2 model) vs a 100% bulk-loaded B+-tree";
  let schema = access_schema () in
  let n = 30_000 in
  let env = S.Env.create () in
  let sorted = List.init n (fun i ->
      S.Tuple.encode schema [ S.Tuple.VInt i; S.Tuple.VStr "" ])
  in
  let incremental =
    let t = I.Btree.create ~env ~schema ~page_size:4096 () in
    let keys = Array.init n (fun i -> i) in
    U.Xorshift.shuffle (U.Xorshift.create 3) keys;
    Array.iter
      (fun k ->
        I.Btree.insert t (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
      keys;
    t
  in
  let bulk_full = I.Btree.bulk_load ~env ~schema ~page_size:4096 sorted in
  let bulk_yao =
    I.Btree.bulk_load ~env ~schema ~page_size:4096 ~occupancy:0.69 sorted
  in
  let t = U.Tablefmt.create [ "build"; "occupancy"; "pages"; "leaves"; "height" ] in
  let row name tree =
    U.Tablefmt.add_row t
      [
        name;
        U.Tablefmt.cell_float (I.Btree.avg_leaf_occupancy tree);
        U.Tablefmt.cell_int (I.Btree.node_count tree);
        U.Tablefmt.cell_int (I.Btree.leaf_count tree);
        U.Tablefmt.cell_int (I.Btree.height tree);
      ]
  in
  row "random insertion" incremental;
  row "bulk load 69%" bulk_yao;
  row "bulk load 100%" bulk_full;
  U.Tablefmt.print t;
  let p = { AM.default with AM.r_tuples = n } in
  Printf.printf
    "\nmodel D (leaves at 69%%) = %d; random insertion and 69%% bulk load \
     agree with it, while a packed bulk load saves ~31%% of the pages — \
     shrinking S' and, with it, the memory needed before the AVL tree \
     catches up.\n"
    (AM.btree_leaf_pages p)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Bechamel wall-clock microbenchmarks of the hot operators";
  let module Bt = Bechamel.Test in
  let module Bs = Bechamel.Staged in
  let schema =
    S.Schema.create ~key:"k"
      [ S.Schema.column "k" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]
  in
  let mk_tuple k = S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VInt k ] in
  let test_avl_insert =
    Bt.make ~name:"avl-insert-1k"
      (Bs.stage (fun () ->
           let env = S.Env.create () in
           let t = I.Avl.create ~env ~schema () in
           for k = 1 to 1000 do
             I.Avl.insert t (mk_tuple k)
           done))
  in
  let test_btree_insert =
    Bt.make ~name:"btree-insert-1k"
      (Bs.stage (fun () ->
           let env = S.Env.create () in
           let t = I.Btree.create ~env ~schema ~page_size:4096 () in
           for k = 1 to 1000 do
             I.Btree.insert t (mk_tuple k)
           done))
  in
  let search_tree =
    let env = S.Env.create () in
    let t = I.Btree.create ~env ~schema ~page_size:4096 () in
    for k = 1 to 10_000 do
      I.Btree.insert t (mk_tuple k)
    done;
    t
  in
  let probe = ref 0 in
  let test_btree_search =
    Bt.make ~name:"btree-search"
      (Bs.stage (fun () ->
           probe := (!probe mod 10_000) + 1;
           ignore (I.Btree.search search_tree (S.Tuple.encode_int_key schema !probe))))
  in
  let test_hybrid_join =
    Bt.make ~name:"hybrid-join-2k"
      (Bs.stage (fun () ->
           let env = S.Env.create () in
           let disk = S.Disk.create ~env ~page_size:512 in
           let mk name seed =
             let rng = U.Xorshift.create seed in
             S.Relation.of_tuples ~disk ~name ~schema
               (List.init 1000 (fun _ -> mk_tuple (U.Xorshift.int rng 500)))
           in
           let r = mk "r" 1 and s = mk "s" 2 in
           ignore (E.Hybrid_hash.join ~mem_pages:8 ~fudge:1.2 r s (fun _ _ -> ()))))
  in
  let test_sort =
    Bt.make ~name:"external-sort-2k"
      (Bs.stage (fun () ->
           let env = S.Env.create () in
           let disk = S.Disk.create ~env ~page_size:512 in
           let rng = U.Xorshift.create 3 in
           let r =
             S.Relation.of_tuples ~disk ~name:"r" ~schema
               (List.init 2000 (fun _ -> mk_tuple (U.Xorshift.int rng 100_000)))
           in
           ignore (E.External_sort.sort ~mem_pages:8 r)))
  in
  let test_wal =
    Bt.make ~name:"wal-group-commit-100"
      (Bs.stage (fun () ->
           let clock = S.Sim_clock.create () in
           let wal = R.Wal.create ~clock R.Wal.Group_commit in
           for i = 1 to 100 do
             ignore
               (R.Wal.commit_txn wal ~at:0.0 ~txn:i ~deps:[]
                  [
                    R.Log_record.Begin { txn = i; lsn = i * 2 };
                    R.Log_record.Commit { txn = i; lsn = (i * 2) + 1 };
                  ])
           done;
           ignore (R.Wal.flush wal ~at:0.0)))
  in
  let tests =
    Bt.make_grouped ~name:"mmdb"
      [
        test_avl_insert; test_btree_insert; test_btree_search;
        test_hybrid_join; test_sort; test_wal;
      ]
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:500 ~quota:(Bechamel.Time.second 0.5) ()
  in
  let raw =
    Bechamel.Benchmark.all cfg
      [ Bechamel.Toolkit.Instance.monotonic_clock ]
      tests
  in
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let t = U.Tablefmt.create [ "benchmark"; "ns/run" ] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Bechamel.Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      U.Tablefmt.add_row t [ name; est ])
    results;
  U.Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Machine-readable outputs: BENCH_model.json and the golden            *)
(* Table 1 / Figure 1 regeneration diffed in CI (@modelcheck)           *)
(* ------------------------------------------------------------------ *)

module V = Mmdb_verify

(* Hand-rolled JSON (no JSON library in the image).  Floats print as
   %.9g: enough digits to round-trip every value these emitters produce,
   few enough to stay platform-stable. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let jlist items = "[" ^ String.concat ", " items ^ "]"

let jobj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> jstr k ^ ": " ^ v) fields)
  ^ "}"

let json_of_ops (o : JM.ops) seconds =
  jobj
    [
      ("comps", jfloat o.JM.comps);
      ("hashes", jfloat o.JM.hashes);
      ("moves", jfloat o.JM.moves);
      ("swaps", jfloat o.JM.swaps);
      ("seq_ios", jfloat o.JM.seq_ios);
      ("rand_ios", jfloat o.JM.rand_ios);
      ("seconds", jfloat seconds);
    ]

let json_of_diag (d : U.Diag.t) =
  jobj
    [
      ("code", jstr d.U.Diag.code);
      ( "severity",
        jstr
          (match d.U.Diag.severity with
          | U.Diag.Error -> "error"
          | U.Diag.Warning -> "warning") );
      ("path", jstr d.U.Diag.path);
      ("message", jstr d.U.Diag.message);
    ]

let json_of_case (c : V.Model_check.case) =
  let node (r : V.Model_check.node_report) =
    jobj
      [
        ("path", jstr r.V.Model_check.path);
        ("kind", jstr r.V.Model_check.kind);
        ( "predicted",
          json_of_ops r.V.Model_check.predicted
            r.V.Model_check.predicted_seconds );
        ( "observed",
          json_of_ops r.V.Model_check.observed
            r.V.Model_check.observed_seconds );
        ("diags", jlist (List.map json_of_diag r.V.Model_check.diags));
      ]
  in
  jobj
    [
      ("name", jstr c.V.Model_check.name);
      ("nodes", jlist (List.map node c.V.Model_check.reports));
      ("diags", jlist (List.map json_of_diag c.V.Model_check.diags));
    ]

(* E10: per-operator predicted vs observed, machine-readable. *)
let model_json () =
  let seed = 42 in
  let cases = V.Model_check.run_suite ~seed ~enumerate:true () in
  let doc =
    jobj
      [
        ("seed", string_of_int seed);
        ( "errors",
          string_of_int
            (List.length (U.Diag.errors (V.Model_check.suite_diags cases))) );
        ("cases", jlist (List.map json_of_case cases));
      ]
  in
  let oc = open_out "BENCH_model.json" in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_model.json (%d cases, per-operator predicted vs observed)\n"
    (List.length cases)

(* Recorder-overhead microbenchmark: the schedule recorder is the data
   source for the race detector, so its cost when enabled — and its
   zero-cost claim when disabled — gates whether recording can stay on
   in fuzz/CI runs.  Wall-clock via Sys.time (no unix dependency);
   repetitions amortise timer granularity. *)
let schedule_overhead () =
  let reps = 12 in
  let time_workload ~record () =
    let t0 = Sys.time () in
    let events = ref 0 in
    for rep = 1 to reps do
      let db =
        Mmdb.Txn_db.create ~record_schedule:record ~nrecords:256 ()
      in
      for i = 0 to 399 do
        let a = (i * 7 + rep) mod 256 and b = (i * 11 + rep * 3) mod 256 in
        if a <> b then ignore (Mmdb.Txn_db.transact db [ (a, 5); (b, -5) ]);
        Mmdb.Txn_db.advance db 0.0002
      done;
      Mmdb.Txn_db.flush db;
      events := !events + List.length (Mmdb.Txn_db.schedule db)
    done;
    (Sys.time () -. t0, !events)
  in
  (* Warm both paths once so allocation of shared structures is paid
     before measurement. *)
  ignore (time_workload ~record:false ());
  ignore (time_workload ~record:true ());
  let off_s, _ = time_workload ~record:false () in
  let on_s, events = time_workload ~record:true () in
  let per_event =
    if events = 0 then 0.0 else (on_s -. off_s) /. float_of_int events
  in
  let doc =
    jobj
      [
        ("workload", jstr "Txn_db transfer batch, 400 txns x 12 reps");
        ("reps", string_of_int reps);
        ("events_recorded", string_of_int events);
        ("seconds_recording_off", jfloat off_s);
        ("seconds_recording_on", jfloat on_s);
        ( "overhead_ratio",
          jfloat (if off_s > 0.0 then on_s /. off_s else 0.0) );
        ("seconds_per_event", jfloat per_event);
      ]
  in
  let oc = open_out "BENCH_schedule_overhead.json" in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_schedule_overhead.json (off %.4fs, on %.4fs over %d \
     events; %.1f ns/event)\n"
    off_s on_s events (per_event *. 1e9)

(* Before/after microbenchmarks for the Perf_lint hot-path
   remediations: each section times a faithful replica of the removed
   idiom against the shipped one on identical input, and checksums both
   results so neither side can be dead-code-eliminated and the rewrite
   is shown value-equivalent.  One untimed warmup run precedes each
   measurement. *)
let hotpath_json () =
  let timed f =
    ignore (f ());
    let t0 = Sys.time () in
    let r = f () in
    (Sys.time () -. t0, r)
  in
  (* CLOCK hand admission (Buffer_pool): the old [hand @ [pid]] per
     admitted page is O(resident) each time — quadratic across a fill —
     vs the shipped Queue push. *)
  let clock_n = 1_200 and clock_reps = 300 in
  let clock_list () =
    let sum = ref 0 in
    for _ = 1 to clock_reps do
      let hand = ref [] in
      for pid = 0 to clock_n - 1 do
        hand := !hand @ [ pid ]
      done;
      sum := List.fold_left ( + ) !sum !hand
    done;
    !sum
  in
  let clock_queue () =
    let sum = ref 0 in
    for _ = 1 to clock_reps do
      let hand = Queue.create () in
      for pid = 0 to clock_n - 1 do
        Queue.push pid hand
      done;
      sum := Queue.fold ( + ) !sum hand
    done;
    !sum
  in
  (* WAL record assembly (Txn_db/Tps_sim/Mvcc_sim/Recovery_manager/
     Txn_fuzz): the old [(Begin :: body) @ [Commit]] re-copies the body
     once per transaction vs the shipped newest-first accumulation with
     one final reverse. *)
  let log_txns = 200 and log_updates = 3_000 and log_reps = 5 in
  let upd = List.init log_updates (fun i -> i) in
  let log_tail_append () =
    let sum = ref 0 in
    for _ = 1 to log_reps do
      for t = 1 to log_txns do
        let body = List.map (fun i -> ((t * 31) + i) land 4095) upd in
        let records = ((1000 + t) :: body) @ [ t ] in
        sum := List.fold_left ( + ) !sum records
      done
    done;
    !sum
  in
  let log_rev_acc () =
    let sum = ref 0 in
    for _ = 1 to log_reps do
      for t = 1 to log_txns do
        let rev_body = List.rev_map (fun i -> ((t * 31) + i) land 4095) upd in
        let records = (1000 + t) :: List.rev (t :: rev_body) in
        sum := List.fold_left ( + ) !sum records
      done
    done;
    !sum
  in
  (* Deadlock-cycle hop rendering (Txn_check): the old
     [List.nth cycle ((i + 1) mod List.length cycle)] per hop is O(n)
     twice per element vs indexing one [Array.of_list] snapshot. *)
  let cyc_n = 1_500 and cyc_reps = 40 in
  let cycle = List.init cyc_n (fun i -> i * 7) in
  let cycle_nth () =
    let sum = ref 0 in
    for _ = 1 to cyc_reps do
      List.iteri
        (fun i _ ->
          sum := !sum + List.nth cycle ((i + 1) mod List.length cycle))
        cycle
    done;
    !sum
  in
  let cycle_array () =
    let sum = ref 0 in
    for _ = 1 to cyc_reps do
      let arr = Array.of_list cycle in
      List.iteri
        (fun i _ -> sum := !sum + arr.((i + 1) mod Array.length arr))
        cycle
    done;
    !sum
  in
  let section ~name ~workload before after =
    let before_s, before_sum = timed before in
    let after_s, after_sum = timed after in
    let speedup = if after_s > 0.0 then before_s /. after_s else 0.0 in
    Printf.printf "%-12s before %.4fs, after %.4fs (%.1fx)%s\n" name before_s
      after_s speedup
      (if before_sum = after_sum then "" else "  CHECKSUM MISMATCH");
    jobj
      [
        ("name", jstr name);
        ("workload", jstr workload);
        ("seconds_before", jfloat before_s);
        ("seconds_after", jfloat after_s);
        ("speedup", jfloat speedup);
        ("checksums_match", (if before_sum = after_sum then "true" else "false"));
      ]
  in
  let doc =
    jobj
      [
        ( "note",
          jstr
            "replicas of the idioms Perf_lint retired (PERF101/PERF102) \
             vs the shipped rewrites, identical inputs, checksummed" );
        ( "sections",
          jlist
            [
              section ~name:"clock-hand"
                ~workload:
                  (Printf.sprintf "admit %d pids x %d reps" clock_n
                     clock_reps)
                clock_list clock_queue;
              section ~name:"log-append"
                ~workload:
                  (Printf.sprintf "%d txns x %d updates x %d reps" log_txns
                     log_updates log_reps)
                log_tail_append log_rev_acc;
              section ~name:"cycle-walk"
                ~workload:
                  (Printf.sprintf "%d-txn cycle x %d reps" cyc_n cyc_reps)
                cycle_nth cycle_array;
            ] );
      ]
  in
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_hotpath.json"

(* Canonical Table 1 + Figure 1 regeneration.  Printed to stdout; a dune
   rule captures it and diffs against bench/golden/table1_figure1.json so
   CI catches any drift in the analytic model (`dune promote` accepts an
   intentional change). *)
let golden_json () =
  let table1_rows =
    List.map
      (fun z ->
        jobj
          [
            ("z", jfloat z);
            ( "cells",
              jlist
                (List.map
                   (fun y ->
                     jobj
                       [
                         ("y", jfloat y);
                         ( "h",
                           jfloat
                             (AM.crossover_h { AM.default with AM.z; AM.y })
                         );
                       ])
                   ys) );
          ])
      zs
  in
  let w = JM.table2_workload in
  let rf = float_of_int w.JM.r_pages *. w.JM.cost.S.Cost.fudge in
  let figure1_rows =
    List.map
      (fun ratio ->
        let m = max (JM.min_memory w) (int_of_float (ratio *. rf)) in
        let costs =
          List.map
            (fun (name, ops) -> (name, jfloat (JM.seconds w.JM.cost ops)))
            (JM.all_four_ops w ~m)
        in
        jobj
          ([
             ("ratio", jfloat ratio);
             ("mem_pages", string_of_int m);
           ]
          @ costs
          @ [
              ("hybrid_partitions", string_of_int (JM.hybrid_partitions w ~m));
              ("hybrid_q", jfloat (JM.hybrid_q w ~m));
              ("simple_passes", string_of_int (JM.simple_hash_passes w ~m));
            ]))
      figure1_ratios
  in
  print_string
    (jobj
       [
         ( "table1",
           jobj
             [
               ("description", jstr "fraction H resident for AVL to win");
               ("rows", jlist table1_rows);
             ] );
         ( "figure1",
           jobj
             [
               ( "description",
                 jstr "analytic join costs (s), |R|=|S|=10000 pages" );
               ("rows", jlist figure1_rows);
             ] );
       ]);
  print_newline ()

(* Recovery-time-vs-workers ladder (the PR's persistent perf trajectory):
   one crash-recovery run per (workers x logging mode) cell of a fixed
   seeded workload, emitting the modelled recovery time and the replay
   work breakdown.  CI regenerates the file and checks its schema. *)
let recovery_json () =
  let cell ~workers ~mode ~label =
    let cfg =
      {
        R.Recovery_manager.default_config with
        R.Recovery_manager.n_txns = 2000;
        checkpoint_every = Some 500;
        crash_after = Some 1999;
        seed = 7;
        replay =
          {
            R.Recovery_manager.workers;
            use_domains = false;
            logging = mode;
            crash_steps = None;
            record_replay = false;
            serve_stale = false;
          };
      }
    in
    let o = R.Recovery_manager.run cfg in
    let st = o.R.Recovery_manager.recover_stats in
    if not (o.R.Recovery_manager.consistent
            && o.R.Recovery_manager.money_conserved) then
      failwith
        (Printf.sprintf "recovery-json: inconsistent cell %s w=%d" label
           workers);
    jobj
      [
        ("workers", string_of_int workers);
        ("logging", jstr label);
        ("recovery_seconds", jfloat st.R.Kv_store.recovery_time);
        ("redo_ops", string_of_int st.R.Kv_store.redo_applied);
        ("local_value_ops", string_of_int st.R.Kv_store.local_value_ops);
        ("local_command_ops", string_of_int st.R.Kv_store.local_command_ops);
        ("barrier_ops", string_of_int st.R.Kv_store.barrier_ops);
        ("barriers", string_of_int st.R.Kv_store.barriers);
        ("undo_ops", string_of_int st.R.Kv_store.undo_applied);
        ("pages_written_back", string_of_int st.R.Kv_store.pages_written_back);
        ("log_bytes_scanned", string_of_int st.R.Kv_store.log_bytes_scanned);
        ("log_disk_bytes",
         string_of_int o.R.Recovery_manager.log_disk_bytes);
        ("command_txns", string_of_int o.R.Recovery_manager.command_txns);
      ]
  in
  let rows =
    List.concat_map
      (fun (mode, label) ->
        List.map
          (fun workers -> cell ~workers ~mode ~label)
          [ 1; 2; 4; 8 ])
      [
        (R.Recovery_manager.Value_logging, "value");
        (R.Recovery_manager.Command_logging, "command");
        (R.Recovery_manager.Adaptive_logging, "adaptive");
      ]
  in
  let doc =
    jobj
      [
        ("schema", jstr "mmdb.bench.recovery.v1");
        ( "workload",
          jstr
            "500 accounts, 20 records/page, 6 updates/txn, 2000 txns, \
             checkpoint every 500, crash after 1999, seed 7" );
        ("rows", jlist rows);
      ]
  in
  let oc = open_out "BENCH_recovery.json" in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_recovery.json (%d cells: workers 1/2/4/8 x \
     value/command/adaptive)\n"
    (List.length rows)

(* Overload-resilience curves: four open-loop cells over the same seeded
   Poisson arrival process — a calm protected baseline, the protected
   service under a 10x spike (with and without a transient-fault storm),
   and the unprotected control (no admission, no in-service deadline
   aborts) under the same assault.  The failwith asserts encode the
   acceptance bar: protected goodput under spike + storm stays >= 50% of
   the calm baseline while the unprotected service collapses below 50%.
   CI regenerates the file and checks its schema. *)
let overload_json () =
  let module OS = Mmdb.Overload_sim in
  let cell ~label ~spike ~storm ~protected =
    let cfg =
      {
        OS.default_config with
        OS.seed = 7;
        OS.duration = 4.0;
        OS.spike_mult = (if spike then 10.0 else 1.0);
        OS.storm = storm;
        OS.admission = protected;
        OS.enforce_deadlines = protected;
      }
    in
    let o = OS.run cfg in
    if not o.OS.money_conserved then
      failwith ("overload-json: money not conserved in cell " ^ label);
    let bucket (b : OS.bucket) =
      jobj
        [
          ("t", jfloat b.OS.b_start);
          ("arrivals", string_of_int b.OS.b_arrivals);
          ("goodput", string_of_int b.OS.b_goodput);
          ("shed", string_of_int b.OS.b_shed);
          ("timed_out", string_of_int b.OS.b_timed_out);
          ("late", string_of_int b.OS.b_late);
          ("p99_ms", jfloat (b.OS.b_p99_latency *. 1e3));
        ]
    in
    let row =
      jobj
        [
          ("label", jstr label);
          ("admission", string_of_bool cfg.OS.admission);
          ("deadlines_enforced", string_of_bool cfg.OS.enforce_deadlines);
          ("spike_mult", jfloat cfg.OS.spike_mult);
          ("storm", string_of_bool storm);
          ("arrivals", string_of_int o.OS.arrivals);
          ("goodput_txns", string_of_int o.OS.goodput_txns);
          ("goodput_tps", jfloat o.OS.goodput_tps);
          ("committed", string_of_int o.OS.committed);
          ("late", string_of_int o.OS.late);
          ("shed", string_of_int o.OS.shed);
          ("timed_out", string_of_int o.OS.timed_out);
          ("io_failures", string_of_int o.OS.io_failures);
          ("p50_ms", jfloat (o.OS.p50_latency *. 1e3));
          ("p99_ms", jfloat (o.OS.p99_latency *. 1e3));
          ( "shed_codes",
            jobj
              (List.map
                 (fun (c, n) -> (c, string_of_int n))
                 o.OS.shed_codes) );
          ("breaker_trips", string_of_int o.OS.breaker_trips);
          ("breaker_reopens", string_of_int o.OS.breaker_reopens);
          ("breaker_final", jstr o.OS.breaker_final);
          ("buckets", jlist (List.map bucket o.OS.buckets));
        ]
    in
    (o, row)
  in
  let base, jbase =
    cell ~label:"baseline" ~spike:false ~storm:false ~protected:true
  in
  let _, jspike =
    cell ~label:"protected-spike" ~spike:true ~storm:false ~protected:true
  in
  let prot, jprot =
    cell ~label:"protected-spike-storm" ~spike:true ~storm:true
      ~protected:true
  in
  let unprot, junprot =
    cell ~label:"unprotected-spike-storm" ~spike:true ~storm:true
      ~protected:false
  in
  let module OS = Mmdb.Overload_sim in
  let ratio o = o.OS.goodput_tps /. base.OS.goodput_tps in
  if ratio prot < 0.5 then
    failwith
      (Printf.sprintf
         "overload-json: protected goodput collapsed (%.2f of baseline)"
         (ratio prot));
  if ratio unprot >= 0.5 then
    failwith
      (Printf.sprintf
         "overload-json: unprotected control failed to collapse (%.2f of \
          baseline)"
         (ratio unprot));
  if prot.OS.breaker_trips < 1 then
    failwith "overload-json: storm never tripped the breaker";
  let doc =
    jobj
      [
        ("schema", jstr "mmdb.bench.overload.v1");
        ( "workload",
          jstr
            "open loop, 4s of Poisson arrivals at 700/s (10x spike in \
             [1,2)s), 512 accounts, 2 updates/txn at 250us each, 50ms \
             deadlines, 15% analytic, group commit, storm = transient \
             log faults over a write window, seed 7" );
        ( "acceptance",
          jobj
            [
              ("baseline_goodput_tps", jfloat base.OS.goodput_tps);
              ("protected_ratio", jfloat (ratio prot));
              ("unprotected_ratio", jfloat (ratio unprot));
              ( "bar",
                jstr
                  "protected spike+storm goodput >= 0.5 x calm baseline; \
                   unprotected control < 0.5 (collapse)" );
            ] );
        ("rows", jlist [ jbase; jspike; jprot; junprot ]);
      ]
  in
  let oc = open_out "BENCH_overload.json" in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_overload.json (baseline %.0f tps; protected spike+storm \
     %.0f tps = %.2fx; unprotected %.0f tps = %.2fx)\n"
    base.OS.goodput_tps prot.OS.goodput_tps (ratio prot)
    unprot.OS.goodput_tps (ratio unprot)

let experiments =
  [
    ("table1", "Table 1: AVL vs B+-tree crossover (random access)", table1);
    ("table1-seq", "Table 1 analogue for sequential access", table1_seq);
    ("access-empirical", "measured AVL/B+-tree faults vs the model", access_empirical);
    ("figure1", "Figure 1: the four join algorithms (analytic)", figure1);
    ("figure1-empirical", "Figure 1 on the executable joins", figure1_empirical);
    ("table2", "Table 2: parameter settings", table2);
    ("table3", "Table 3: sensitivity sweep", table3);
    ("recovery-tps", "Section 5.2 commit-strategy throughput ladder", recovery_tps);
    ("log-size", "Section 5.4 log compression", log_size);
    ("recovery-time", "Sections 5.3/5.5 checkpointing vs recovery time", recovery_time);
    ("planning", "Section 4 access planning", planning);
    ("aggregates", "Section 3.9 aggregates and projection", aggregates);
    ("ablations", "design-choice ablations (DESIGN.md)", ablations);
    ("vm", "Section 6: VM paging vs explicit partitioning", vm_ablation);
    ("mvcc", "Section 6: locking vs versioning", mvcc);
    ("bulk-load", "B+-tree occupancy: 69% vs bulk-loaded", bulk_load_bench);
    ("model-json", "write BENCH_model.json (predicted vs observed)", model_json);
    ("schedule-overhead", "write BENCH_schedule_overhead.json (recorder cost)", schedule_overhead);
    ("hotpath-json", "write BENCH_hotpath.json (hot-path remediation wins)", hotpath_json);
    ("golden-json", "Table 1 + Figure 1 as canonical JSON (CI golden)", golden_json);
    ("recovery-json", "write BENCH_recovery.json (parallel-replay ladder)", recovery_json);
    ("overload-json", "write BENCH_overload.json (overload-resilience curves)", overload_json);
  ]

let usage () =
  print_endline "usage: main.exe [-e EXPERIMENT] [--list] [--bechamel]";
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-18s %s\n" id descr)
    experiments

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--list" :: _ -> usage ()
  | _ :: "--bechamel" :: _ -> bechamel_suite ()
  | _ :: "-e" :: id :: _ -> (
    match List.find_opt (fun (i, _, _) -> i = id) experiments with
    | Some (_, _, run) -> run ()
    | None ->
      Printf.printf "unknown experiment %S\n\n" id;
      usage ();
      exit 1)
  | [ _ ] ->
    print_endline
      "mmdb benchmark harness - reproducing DeWitt et al., SIGMOD 1984";
    List.iter (fun (_, _, run) -> run ()) experiments
  | _ ->
    usage ();
    exit 1
