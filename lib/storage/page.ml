let header_size = 2

let create page_size =
  if page_size <= header_size then invalid_arg "Page.create: page too small";
  Bytes.make page_size '\000'

let capacity ~page_size ~tuple_width =
  if tuple_width <= 0 then invalid_arg "Page.capacity: nonpositive width";
  let c = (page_size - header_size) / tuple_width in
  if c <= 0 then invalid_arg "Page.capacity: tuple wider than page";
  c

let count page = Char.code (Bytes.get page 0) lor (Char.code (Bytes.get page 1) lsl 8)

let set_count page n =
  if n < 0 || n > 0xFFFF then invalid_arg "Page.set_count: out of range";
  Bytes.set page 0 (Char.chr (n land 0xFF));
  Bytes.set page 1 (Char.chr ((n lsr 8) land 0xFF))

let slot_off ~tuple_width i = header_size + (i * tuple_width)

let get page ~tuple_width i =
  if i < 0 || i >= count page then invalid_arg "Page.get: slot out of bounds";
  Bytes.sub page (slot_off ~tuple_width i) tuple_width

let blit_get page ~tuple_width i ~dst =
  if i < 0 || i >= count page then
    invalid_arg "Page.blit_get: slot out of bounds";
  Bytes.blit page (slot_off ~tuple_width i) dst 0 tuple_width

let set page ~tuple_width i tuple =
  if Bytes.length tuple <> tuple_width then
    invalid_arg "Page.set: tuple width mismatch";
  if i < 0 || i >= count page then invalid_arg "Page.set: slot out of bounds";
  Bytes.blit tuple 0 page (slot_off ~tuple_width i) tuple_width

let append page ~tuple_width tuple =
  if Bytes.length tuple <> tuple_width then
    invalid_arg "Page.append: tuple width mismatch";
  let n = count page in
  let cap = capacity ~page_size:(Bytes.length page) ~tuple_width in
  if n >= cap then false
  else begin
    Bytes.blit tuple 0 page (slot_off ~tuple_width n) tuple_width;
    set_count page (n + 1);
    true
  end

let iter page ~tuple_width f =
  let n = count page in
  for i = 0 to n - 1 do
    f i (Bytes.sub page (slot_off ~tuple_width i) tuple_width)
  done

let clear page = set_count page 0

let checksum page = Mmdb_util.Checksum.crc32_bytes page
