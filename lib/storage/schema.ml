type col_type = Int | Fixed_string

type column = { name : string; ty : col_type; width : int }

type t = {
  cols : column array;
  offsets : int array;
  width : int;
  key : int;
}

let column ?width name ty =
  let width =
    match (ty, width) with
    | Int, None -> 8
    | Int, Some w ->
      if w < 1 || w > 8 then
        invalid_arg "Schema.column: Int width must be in [1..8]";
      w
    | Fixed_string, None ->
      invalid_arg "Schema.column: Fixed_string requires an explicit width"
    | Fixed_string, Some w ->
      if w <= 0 then invalid_arg "Schema.column: nonpositive width";
      w
  in
  { name; ty; width }

let create ~key columns =
  if columns = [] then invalid_arg "Schema.create: no columns";
  let cols = Array.of_list columns in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (c : column) ->
      if Hashtbl.mem seen c.name then
        (* perf_lint: error path; raises immediately *)
        invalid_arg ("Schema.create: duplicate column " ^ c.name);
      Hashtbl.add seen c.name ())
    cols;
  let offsets = Array.make (Array.length cols) 0 in
  let width = ref 0 in
  Array.iteri
    (fun i (c : column) ->
      offsets.(i) <- !width;
      width := !width + c.width)
    cols;
  let key_idx =
    let found = ref (-1) in
    Array.iteri (fun i (c : column) -> if c.name = key then found := i) cols;
    if !found < 0 then invalid_arg ("Schema.create: no key column " ^ key);
    !found
  in
  { cols; offsets; width = !width; key = key_idx }

let columns t = Array.to_list t.cols
let tuple_width t = t.width
let key_index t = t.key
let key_offset t = t.offsets.(t.key)
let key_width t = t.cols.(t.key).width

let column_index t name =
  let found = ref (-1) in
  Array.iteri (fun i (c : column) -> if c.name = name then found := i) t.cols;
  if !found < 0 then raise Not_found;
  !found

let offset t i = t.offsets.(i)
let column_at t i = t.cols.(i)

let with_key t name = { t with key = column_index t name }

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun i (c : column) ->
      if i > 0 then Format.fprintf ppf "; ";
      let marker = if i = t.key then "*" else "" in
      let ty = match c.ty with Int -> "int" | Fixed_string -> "str" in
      Format.fprintf ppf "%s%s:%s(%d)" marker c.name ty c.width)
    t.cols;
  Format.fprintf ppf "}@]"
