(** Relations: named sequences of tuple pages on a simulated disk.

    A relation owns an ordered list of disk pages plus an in-memory tail
    page being filled.  Appends that fill a page spill it to disk; whether
    that spill is charged depends on the append function used, so workload
    setup can be free while operator output is charged — mirroring the
    paper's convention of "ignoring the cost of reading the relations
    initially and writing the result of the join". *)

type t

val create : disk:Disk.t -> name:string -> schema:Schema.t -> t

val name : t -> string
val schema : t -> Schema.t
val disk : t -> Disk.t
val env : t -> Env.t

val ntuples : t -> int
(** [||R||] — total tuples appended (sealed or not). *)

val npages : t -> int
(** [|R|] — pages on disk after {!seal} (includes a partial tail page). *)

val tuples_per_page : t -> int

val append : t -> bytes -> unit
(** Charged append: a page spill costs one write in the relation's write
    mode (sequential unless changed with {!set_write_mode}).
    @raise Mmdb_fault.Fault.Io_error when an armed fault plan makes the
    spill write exhaust its retry budget. *)

val set_write_mode : t -> Disk.io_mode -> unit
(** How charged spills are priced.  Partitioning with many output buffers
    writes randomly (Section 3's [IOrand] terms); the default is [Seq]. *)

val append_nocharge : t -> bytes -> unit
(** Free append for workload setup. *)

val seal : t -> unit
(** Flush the partial tail page (charged variant if any charged append has
    occurred, free otherwise).  Idempotent; appends may resume after. *)

val page_ids : t -> int array
(** Disk page ids in relation order.  Call {!seal} first if a partial tail
    page must be included. *)

val iter_pages : ?mode:Disk.io_mode -> t -> (bytes -> unit) -> unit
(** [iter_pages t f] seals then reads each page in order, charging one I/O
    per page ([mode] defaults to [Seq]).
    @raise Mmdb_fault.Fault.Io_error and
    @raise Mmdb_fault.Fault.Unrecoverable from the read path when a fault
    plan is armed (transient failures past the retry budget, or detected
    corruption with no redundancy to rebuild from). *)

val iter_tuples : ?mode:Disk.io_mode -> t -> (bytes -> unit) -> unit
(** Page-wise scan delivering tuple copies; charges I/O per page only. *)

val iter_tuples_nocharge : t -> (bytes -> unit) -> unit

val iter_tids_nocharge : t -> (Tid.t -> bytes -> unit) -> unit
(** Uncharged scan that also reports each tuple's TID. *)

val fetch : ?mode:Disk.io_mode -> t -> Tid.t -> bytes
(** [fetch t tid] reads the tuple's page ([mode] defaults to [Rand], the
    paper's cost for TID-to-tuple resolution) and returns the tuple.
    @raise Invalid_argument on a bad TID. *)

val of_tuples : disk:Disk.t -> name:string -> schema:Schema.t ->
  bytes list -> t
(** Bulk, uncharged load. *)

val with_schema : t -> Schema.t -> t
(** [with_schema t schema] is a read-only view of [t]'s pages under a
    different schema of the same tuple width (e.g. re-keyed with
    {!Schema.with_key} so a join can target another column).  The view
    shares pages with [t]; appending through either afterwards is
    unsupported.  Seals [t] first.
    @raise Invalid_argument on a tuple-width mismatch. *)

val to_list : t -> bytes list
(** Uncharged full materialisation (test helper). *)

val free_pages : t -> unit
(** Release all disk pages (temporary relations: runs, partitions). *)
