(** Slotted fixed-width-tuple page layout.

    A page is a [Bytes.t] of the disk's page size.  The first two bytes hold
    the tuple count (little-endian u16); tuples are fixed-width slots packed
    after the header.  Matching the paper's model, a page of size [P]
    holding tuples of width [t] stores [(P - header) / t] tuples. *)

val header_size : int
(** Bytes reserved at the start of every page (2). *)

val create : int -> bytes
(** [create page_size] is a zeroed page (tuple count 0). *)

val capacity : page_size:int -> tuple_width:int -> int
(** Maximum number of tuples per page.
    @raise Invalid_argument if [tuple_width <= 0] or no tuple fits. *)

val count : bytes -> int
(** Number of tuples currently on the page. *)

val set_count : bytes -> int -> unit
(** Overwrite the tuple count (used by bulk loaders). *)

val get : bytes -> tuple_width:int -> int -> bytes
(** [get page ~tuple_width i] is a copy of slot [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val blit_get : bytes -> tuple_width:int -> int -> dst:bytes -> unit
(** Copy slot [i] into [dst] without allocating. *)

val set : bytes -> tuple_width:int -> int -> bytes -> unit
(** [set page ~tuple_width i tuple] overwrites slot [i] (must be < count).
    @raise Invalid_argument on bounds or width mismatch. *)

val append : bytes -> tuple_width:int -> bytes -> bool
(** [append page ~tuple_width tuple] adds a tuple if space remains; returns
    [false] when the page is full.  @raise Invalid_argument on width
    mismatch. *)

val iter : bytes -> tuple_width:int -> (int -> bytes -> unit) -> unit
(** [iter page ~tuple_width f] applies [f slot tuple_copy] to each tuple. *)

val clear : bytes -> unit
(** Reset the tuple count to zero (slots are not zeroed). *)

val checksum : bytes -> int
(** CRC-32 of the whole page image.  Stored out of band (the disk keeps a
    per-sector side table, checkpoints keep per-page sums) rather than in
    the 2-byte header, so page capacity arithmetic is unchanged. *)
