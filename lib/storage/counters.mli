(** Operation counters.

    Mirrors the quantities the paper's cost formulas count: comparisons,
    hashes, moves, swaps, sequential and random page I/Os, plus buffer-pool
    faults.  Operators increment these alongside charging the simulated
    clock, so experiments can report both counted operations and charged
    time. *)

type t = {
  mutable comparisons : int;
  mutable hashes : int;
  mutable moves : int;
  mutable swaps : int;
  mutable seq_reads : int;
  mutable seq_writes : int;
  mutable rand_reads : int;
  mutable rand_writes : int;
  mutable faults : int;  (** buffer-pool misses *)
  mutable pool_hits : int;  (** buffer-pool hits *)
  fault : Mmdb_fault.Fault.tally;
      (** media-fault tally: injected/detected/retried/repaired/
          unrecoverable.  The field is immutable but the tally record it
          holds is mutable; share it with a {!Mmdb_fault.Fault_plan} via
          [Fault_plan.create ~tally] so injection sites count here. *)
  ovld : Mmdb_overload.Overload.tally;
      (** overload tally: admissions, typed sheds, deadline timeouts,
          retry-budget exhaustions, breaker trips.  Share it with an
          {!Mmdb_overload.Overload.Admission} (and breakers) via their
          [~tally] argument so service-layer sheds count here. *)
}

val create : unit -> t
(** All-zero counters. *)

val reset : t -> unit

val snapshot : t -> t
(** Immutable copy (the copy is still a mutable record, but detached). *)

val diff : after:t -> before:t -> t
(** Field-wise subtraction: activity between two snapshots. *)

val total_io : t -> int
(** All page reads and writes, sequential and random. *)

val pp : Format.formatter -> t -> unit

val io_retries : t -> int
(** Transient-I/O attempts that were retried (media-fault tally's
    [retried] field — FAULT003 rides). *)

val io_retry_backoff : t -> float
(** Simulated seconds spent waiting out retry backoff before those
    retries succeeded. *)

val sheds : t -> int
(** Arrivals turned away by admission control (overload tally's
    OVLD001/2/3/7/9 rows). *)

val deadline_timeouts : t -> int
(** Transactions whose deadline expired mid-flight (OVLD004/5/6). *)

val breaker_trips : t -> int
(** Circuit-breaker closed-to-open transitions. *)
