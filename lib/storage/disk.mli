(** Simulated disk: a page store with charged, counted I/O.

    The paper's evaluation charges 10 ms per sequential and 25 ms per random
    page I/O (Table 2) and counts page accesses; this module reproduces that
    cost structure over an in-memory page table.  Operators declare whether
    each access is sequential or random — exactly how the paper's formulas
    assign [IOseq] vs [IOrand] — because the 1984 distinction is about arm
    movement that a simulator cannot infer from page numbers alone.

    Pages survive simulated crashes: a crash discards volatile state (buffer
    pools, in-memory indexes), never disk contents.

    {2 Faults and checksums}

    Every write records an out-of-band CRC-32 of the intended page image
    (the analogue of per-sector CRCs a controller writes alongside data).
    When a {!Mmdb_fault.Fault_plan} is armed, reads verify against that
    sum: a transient in-flight bit flip is detected and repaired by a
    bounded number of rereads (each waiting out a backoff on the simulated
    clock); a page corrupted on the medium stays bad and surfaces as
    {!Mmdb_fault.Fault.Unrecoverable} (FAULT011) once the retry budget is
    exhausted.  Transient I/O errors delay and re-charge the access.
    Without an armed plan the read/write paths charge exactly what the
    seed charged.

    Lookup and size errors are typed: unknown pages raise
    {!Mmdb_fault.Fault.Io_error} with code FAULT005, size mismatches
    FAULT006 — never bare [Invalid_argument]. *)

type t

type io_mode = Seq | Rand
(** How an access is charged: [Seq] = IOseq, [Rand] = IOrand. *)

val create : env:Env.t -> page_size:int -> t
(** A disk with no allocated pages and no armed fault plan (behaviour
    identical to the unfaulted seed). *)

val env : t -> Env.t
val page_size : t -> int

val arm : t -> Mmdb_fault.Fault_plan.t -> unit
(** Arm a fault-injection plan; subsequent reads are checksum-verified
    and rule-selected faults fire at the disk's sites. *)

val faults : t -> Mmdb_fault.Fault_plan.t
(** The armed plan ({!Mmdb_fault.Fault_plan.none} when unfaulted) —
    shared with the buffer pool so frame-level faults use the same
    seeded stream and tally. *)

val set_breaker : t -> Mmdb_overload.Overload.Breaker.t -> unit
(** Attach a circuit breaker: every injected transient I/O error is
    reported as a device failure, every clean (non-transient) faulted
    write as a success, so consecutive transients trip the breaker.
    The unfaulted fast path reports nothing — a breaker is only
    meaningful alongside an armed plan.  The breaker never blocks disk
    operations itself; shedding is the service layer's decision. *)

val breaker : t -> Mmdb_overload.Overload.Breaker.t option

val page_count : t -> int
(** Number of currently allocated pages. *)

val alloc : t -> int
(** [alloc d] allocates a zeroed page and returns its id.  Allocation
    itself charges no I/O (the write that follows does). *)

val read : t -> mode:io_mode -> int -> bytes
(** [read d ~mode pid] charges one I/O and returns a copy of the page.
    With faults armed the copy is checksum-verified (see above).
    @raise Mmdb_fault.Fault.Io_error (FAULT005) if [pid] was never
    allocated or was freed.
    @raise Mmdb_fault.Fault.Unrecoverable (FAULT011) if the stored page
    is corrupt beyond the retry budget.
    @raise Mmdb_overload.Overload.Shed (OVLD008) when a per-transaction
    retry budget installed on the armed plan runs dry mid-ride. *)

val write : t -> mode:io_mode -> int -> bytes -> unit
(** [write d ~mode pid page] charges one I/O and stores a copy, recording
    its out-of-band checksum.
    @raise Mmdb_fault.Fault.Io_error on unknown page (FAULT005), size
    mismatch (FAULT006), or exhausted transient-error retries
    (FAULT004).
    @raise Mmdb_overload.Overload.Shed (OVLD008) when a per-transaction
    retry budget installed on the armed plan runs dry mid-ride. *)

val free : t -> int -> unit
(** Release a page (e.g. temporary partition files after a join). *)

val read_nocharge : t -> int -> bytes
(** Uninstrumented, unchecked read for tests and recovery-inspection
    code paths. *)

val write_nocharge : t -> int -> bytes -> unit
(** Uninstrumented write, used when pre-loading workloads so that setup
    cost does not pollute an experiment's counters.  Still records the
    page checksum. *)

val checksum_ok : t -> int -> bool
(** [checksum_ok d pid] verifies the stored page against its recorded
    out-of-band sum without charging I/O (scrubbing support).
    @raise Mmdb_fault.Fault.Io_error (FAULT005) on unknown page. *)
