type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let compare a b =
  match Int.compare a.page b.page with
  | 0 -> Int.compare a.slot b.slot
  | c -> c

let equal a b = a.page = b.page && a.slot = b.slot
let pp ppf t = Format.fprintf ppf "(%d,%d)" t.page t.slot

let encoded_width = 8

let put_u32 buf off v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Tid: field out of u32 range";
  Bytes.set buf off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set buf (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 3) (Char.chr (v land 0xFF))

let get_u32 buf off =
  (Char.code (Bytes.get buf off) lsl 24)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 8)
  lor Char.code (Bytes.get buf (off + 3))

let encode_into t buf off =
  put_u32 buf off t.page;
  put_u32 buf (off + 4) t.slot

let decode_from buf off = { page = get_u32 buf off; slot = get_u32 buf (off + 4) }
