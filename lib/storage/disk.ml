module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan
module Overload = Mmdb_overload.Overload

type io_mode = Seq | Rand

type t = {
  env : Env.t;
  page_size : int;
  pages : (int, bytes) Hashtbl.t;
  sums : (int, int) Hashtbl.t;
      (* out-of-band per-sector CRC-32 of the *intended* page image, the
         analogue of a controller writing sector CRCs alongside data.  A
         torn or at-rest-corrupted page disagrees with its recorded sum. *)
  mutable faults : Fault_plan.t;
  mutable breaker : Overload.Breaker.t option;
  mutable next_id : int;
}

let create ~env ~page_size =
  if page_size <= Page.header_size then
    invalid_arg "Disk.create: page_size too small";
  {
    env;
    page_size;
    pages = Hashtbl.create 1024;
    sums = Hashtbl.create 1024;
    faults = Fault_plan.none ();
    breaker = None;
    next_id = 0;
  }

let env t = t.env
let page_size t = t.page_size
let page_count t = Hashtbl.length t.pages
let faults t = t.faults
let arm t plan = t.faults <- plan
let breaker t = t.breaker
let set_breaker t b = t.breaker <- Some b

(* Device-health reporting for an attached circuit breaker: every
   injected transient counts as a device error, every clean faulted-path
   access as a success (the unfaulted fast path skips the report — a
   breaker is only meaningful alongside an armed plan). *)
let breaker_note t ~ok =
  match t.breaker with
  | None -> ()
  | Some b ->
    let now = Sim_clock.now t.env.Env.clock in
    if ok then Overload.Breaker.record_success b ~now
    else Overload.Breaker.record_failure b ~now

let alloc t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let page = Page.create t.page_size in
  Hashtbl.replace t.pages id page;
  Hashtbl.replace t.sums id (Page.checksum page);
  id

let find t pid =
  match Hashtbl.find_opt t.pages pid with
  | Some p -> p
  | None ->
    Fault.io_error ~code:"FAULT005" ~site:"disk"
      (Printf.sprintf "unknown page %d" pid)

let check_size t ~site page =
  if Bytes.length page <> t.page_size then
    Fault.io_error ~code:"FAULT006" ~site
      (Printf.sprintf "page size %d, disk uses %d" (Bytes.length page)
         t.page_size)

let charge_read t mode =
  match mode with
  | Seq -> Env.charge_io_seq_read t.env
  | Rand -> Env.charge_io_rand_read t.env

let charge_write t mode =
  match mode with
  | Seq -> Env.charge_io_seq_write t.env
  | Rand -> Env.charge_io_rand_write t.env

let backoff t ~attempt =
  let wait = Fault_plan.retry_backoff ~attempt in
  Fault_plan.note_retried t.faults ~backoff:wait;
  Sim_clock.advance t.env.Env.clock wait

(* A transient fault fails [failures] consecutive attempts; each failed
   attempt still occupies the device (charged) and waits out a backoff
   on the simulated clock before the next try.  The loop itself lives in
   {!Fault_plan.ride_transient} (one policy, one per-transaction budget,
   shared with the log devices). *)
let ride_transient t ~site ~charge ~failures =
  breaker_note t ~ok:false;
  Fault_plan.ride_transient t.faults ~site ~failures
    ~attempt:(fun ~attempt:_ ~backoff ->
      charge ();
      Sim_clock.advance t.env.Env.clock backoff)

let flip_bit data bit =
  let i = bit / 8 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl (bit mod 8))))

let store t pid page =
  Hashtbl.replace t.pages pid (Bytes.copy page);
  Hashtbl.replace t.sums pid (Page.checksum page)

let write t ~mode pid page =
  check_size t ~site:"disk.write" page;
  ignore (find t pid);
  match Fault_plan.draw t.faults Fault.Disk_write with
  | Some Fault.Torn_write ->
    charge_write t mode;
    let cut = 1 + Fault_plan.rand_int t.faults (t.page_size - 1) in
    let torn = Bytes.copy (find t pid) in
    Bytes.blit page 0 torn 0 cut;
    Hashtbl.replace t.pages pid torn;
    Hashtbl.replace t.sums pid (Page.checksum page);
    Fault_plan.note_injected t.faults ~code:"FAULT001" ~site:"disk.write"
      (Printf.sprintf "page %d torn after byte %d" pid cut)
  | Some Fault.Bit_flip_rest ->
    charge_write t mode;
    let rotten = Bytes.copy page in
    let bit = Fault_plan.rand_int t.faults (8 * t.page_size) in
    flip_bit rotten bit;
    Hashtbl.replace t.pages pid rotten;
    Hashtbl.replace t.sums pid (Page.checksum page);
    Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"disk.write"
      (Printf.sprintf "page %d bit %d flipped at rest" pid bit)
  | Some (Fault.Io_transient { failures }) ->
    ride_transient t ~site:"disk.write"
      ~charge:(fun () -> charge_write t mode)
      ~failures;
    charge_write t mode;
    store t pid page
  | Some (Fault.Bit_flip_read | Fault.Battery_droop _) | None ->
    breaker_note t ~ok:true;
    charge_write t mode;
    store t pid page

(* Checked read: reread on checksum mismatch (transient flips clear; a
   page corrupted on the medium itself stays bad and, after the retry
   budget, surfaces as a typed unrecoverable fault). *)
let read_checked t ~charge pid =
  let expected = Hashtbl.find_opt t.sums pid in
  let rec go attempt =
    charge ();
    let data = Bytes.copy (find t pid) in
    let data =
      if attempt > 1 then data
      else
        match Fault_plan.draw t.faults Fault.Disk_read with
        | Some Fault.Bit_flip_read ->
          let bit = Fault_plan.rand_int t.faults (8 * t.page_size) in
          flip_bit data bit;
          Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"disk.read"
            (Printf.sprintf "page %d bit %d flipped in flight" pid bit);
          data
        | Some (Fault.Io_transient { failures }) ->
          ride_transient t ~site:"disk.read" ~charge ~failures;
          data
        | Some (Fault.Torn_write | Fault.Bit_flip_rest | Fault.Battery_droop _)
        | None ->
          data
    in
    match expected with
    | None -> data
    | Some sum ->
      if Page.checksum data = sum then begin
        if attempt > 1 then
          Fault_plan.note_repaired t.faults ~code:"FAULT002" ~site:"disk.read"
            (Printf.sprintf "page %d clean on reread %d" pid (attempt - 1));
        data
      end
      else begin
        if attempt = 1 then
          Fault_plan.note_detected t.faults ~code:"FAULT002" ~site:"disk.read"
            (Printf.sprintf "page %d checksum mismatch" pid);
        if attempt > Fault_plan.max_io_retries then begin
          Fault_plan.note_unrecoverable t.faults ~code:"FAULT011"
            ~site:"disk.read"
            (Printf.sprintf "page %d" pid);
          Fault.unrecoverable ~code:"FAULT011" ~site:"disk.read"
            (Printf.sprintf "page %d still corrupt after %d rereads" pid
               (attempt - 1))
        end
        else begin
          backoff t ~attempt;
          go (attempt + 1)
        end
      end
  in
  go 1

let read t ~mode pid =
  if not (Fault_plan.is_active t.faults) then begin
    charge_read t mode;
    Bytes.copy (find t pid)
  end
  else read_checked t ~charge:(fun () -> charge_read t mode) pid

let free t pid =
  ignore (find t pid);
  Hashtbl.remove t.pages pid;
  Hashtbl.remove t.sums pid

let read_nocharge t pid = Bytes.copy (find t pid)

let write_nocharge t pid page =
  check_size t ~site:"disk.write" page;
  ignore (find t pid);
  store t pid page

let checksum_ok t pid =
  match (Hashtbl.find_opt t.pages pid, Hashtbl.find_opt t.sums pid) with
  | Some page, Some sum -> Page.checksum page = sum
  | Some _, None -> true
  | None, _ ->
    Fault.io_error ~code:"FAULT005" ~site:"disk"
      (Printf.sprintf "unknown page %d" pid)
