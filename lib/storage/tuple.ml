type value = VInt of int | VStr of string

(* Order-preserving integer encoding: big-endian two's complement with the
   sign bit flipped, truncated to the column width.  Unsigned byte-wise
   comparison of encodings then equals numeric comparison. *)

let int_range width =
  if width >= 8 then (min_int, max_int)
  else
    let half = 1 lsl ((8 * width) - 1) in
    (-half, half - 1)

let encode_int_at buf off width v =
  let lo, hi = int_range width in
  if v < lo || v > hi then
    invalid_arg
      (Printf.sprintf "Tuple: int %d out of range for width %d" v width);
  let biased =
    if width >= 8 then Int64.logxor (Int64.of_int v) Int64.min_int
    else Int64.of_int (v + (1 lsl ((8 * width) - 1)))
  in
  for i = 0 to width - 1 do
    let shift = 8 * (width - 1 - i) in
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical biased shift) 0xFFL) in
    Bytes.set buf (off + i) (Char.chr b)
  done

let decode_int_at buf off width =
  let raw = ref 0L in
  for i = 0 to width - 1 do
    raw := Int64.logor (Int64.shift_left !raw 8)
             (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  if width >= 8 then Int64.to_int (Int64.logxor !raw Int64.min_int)
  else Int64.to_int !raw - (1 lsl ((8 * width) - 1))

let encode_str_at buf off width s =
  if String.length s > width then
    invalid_arg
      (Printf.sprintf "Tuple: string %S wider than column (%d)" s width);
  Bytes.blit_string s 0 buf off (String.length s);
  for i = String.length s to width - 1 do
    Bytes.set buf (off + i) '\000'
  done

let decode_str_at buf off width =
  let len = ref width in
  while !len > 0 && Bytes.get buf (off + !len - 1) = '\000' do
    decr len
  done;
  Bytes.sub_string buf off !len

let type_error expected (c : Schema.column) =
  invalid_arg
    (Printf.sprintf "Tuple.encode: expected %s for %s" expected c.Schema.name)

let encode schema values =
  let cols = Array.of_list (Schema.columns schema) in
  let vals = Array.of_list values in
  if Array.length cols <> Array.length vals then
    invalid_arg "Tuple.encode: arity mismatch";
  let buf = Bytes.make (Schema.tuple_width schema) '\000' in
  Array.iteri
    (fun i (c : Schema.column) ->
      let off = Schema.offset schema i in
      match (c.Schema.ty, vals.(i)) with
      | Schema.Int, VInt v -> encode_int_at buf off c.Schema.width v
      | Schema.Fixed_string, VStr s -> encode_str_at buf off c.Schema.width s
      | Schema.Int, VStr _ -> type_error "int" c
      | Schema.Fixed_string, VInt _ -> type_error "string" c)
    cols;
  buf

let decode schema tuple =
  List.mapi
    (fun i (c : Schema.column) ->
      let off = Schema.offset schema i in
      match c.Schema.ty with
      | Schema.Int -> VInt (decode_int_at tuple off c.Schema.width)
      | Schema.Fixed_string -> VStr (decode_str_at tuple off c.Schema.width))
    (Schema.columns schema)

let get_int schema tuple i =
  let c = Schema.column_at schema i in
  (match c.Schema.ty with
  | Schema.Int -> ()
  | Schema.Fixed_string -> invalid_arg "Tuple.get_int: not an int column");
  decode_int_at tuple (Schema.offset schema i) c.Schema.width

let get_str schema tuple i =
  let c = Schema.column_at schema i in
  (match c.Schema.ty with
  | Schema.Fixed_string -> ()
  | Schema.Int -> invalid_arg "Tuple.get_str: not a string column");
  decode_str_at tuple (Schema.offset schema i) c.Schema.width

let set_int schema tuple i v =
  let c = Schema.column_at schema i in
  (match c.Schema.ty with
  | Schema.Int -> ()
  | Schema.Fixed_string -> invalid_arg "Tuple.set_int: not an int column");
  encode_int_at tuple (Schema.offset schema i) c.Schema.width v

let key_bytes schema tuple =
  Bytes.sub tuple (Schema.key_offset schema) (Schema.key_width schema)

let compare_range a aoff b boff len =
  let rec go i =
    if i = len then 0
    else
      let ca = Bytes.get a (aoff + i) and cb = Bytes.get b (boff + i) in
      if ca = cb then go (i + 1) else Char.compare ca cb
  in
  go 0

let compare_keys schema t1 t2 =
  let off = Schema.key_offset schema and w = Schema.key_width schema in
  compare_range t1 off t2 off w

let compare_key_to schema tuple key =
  let off = Schema.key_offset schema and w = Schema.key_width schema in
  if Bytes.length key <> w then
    invalid_arg "Tuple.compare_key_to: key width mismatch";
  compare_range tuple off key 0 w

let hash_key schema tuple =
  let off = Schema.key_offset schema and w = Schema.key_width schema in
  (* FNV-1a, 64-bit, folded to a non-negative int. *)
  let h = ref 0xCBF29CE484222325L in
  for i = off to off + w - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get tuple i)));
    h := Int64.mul !h 0x100000001B3L
  done;
  Int64.to_int (Int64.shift_right_logical !h 2)

let encode_int_key schema v =
  let w = Schema.key_width schema in
  let buf = Bytes.make w '\000' in
  encode_int_at buf 0 w v;
  buf

let int_key_range schema = int_range (Schema.key_width schema)

let pp schema ppf tuple =
  Format.fprintf ppf "(";
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ", ";
      match v with
      | VInt n -> Format.fprintf ppf "%d" n
      | VStr s -> Format.fprintf ppf "%S" s)
    (decode schema tuple);
  Format.fprintf ppf ")"
