module F = Mmdb_fault.Fault
module O = Mmdb_overload.Overload

type t = {
  mutable comparisons : int;
  mutable hashes : int;
  mutable moves : int;
  mutable swaps : int;
  mutable seq_reads : int;
  mutable seq_writes : int;
  mutable rand_reads : int;
  mutable rand_writes : int;
  mutable faults : int;
  mutable pool_hits : int;
  fault : F.tally;
  ovld : O.tally;
}

let create () =
  {
    comparisons = 0;
    hashes = 0;
    moves = 0;
    swaps = 0;
    seq_reads = 0;
    seq_writes = 0;
    rand_reads = 0;
    rand_writes = 0;
    faults = 0;
    pool_hits = 0;
    fault = F.tally_create ();
    ovld = O.tally_create ();
  }

let reset t =
  t.comparisons <- 0;
  t.hashes <- 0;
  t.moves <- 0;
  t.swaps <- 0;
  t.seq_reads <- 0;
  t.seq_writes <- 0;
  t.rand_reads <- 0;
  t.rand_writes <- 0;
  t.faults <- 0;
  t.pool_hits <- 0;
  F.tally_reset t.fault;
  O.tally_reset t.ovld

let snapshot t =
  {
    comparisons = t.comparisons;
    hashes = t.hashes;
    moves = t.moves;
    swaps = t.swaps;
    seq_reads = t.seq_reads;
    seq_writes = t.seq_writes;
    rand_reads = t.rand_reads;
    rand_writes = t.rand_writes;
    faults = t.faults;
    pool_hits = t.pool_hits;
    fault = F.tally_copy t.fault;
    ovld = O.tally_copy t.ovld;
  }

let diff ~after ~before =
  {
    comparisons = after.comparisons - before.comparisons;
    hashes = after.hashes - before.hashes;
    moves = after.moves - before.moves;
    swaps = after.swaps - before.swaps;
    seq_reads = after.seq_reads - before.seq_reads;
    seq_writes = after.seq_writes - before.seq_writes;
    rand_reads = after.rand_reads - before.rand_reads;
    rand_writes = after.rand_writes - before.rand_writes;
    faults = after.faults - before.faults;
    pool_hits = after.pool_hits - before.pool_hits;
    fault = F.tally_diff ~after:after.fault ~before:before.fault;
    ovld = O.tally_diff ~after:after.ovld ~before:before.ovld;
  }

let total_io t = t.seq_reads + t.seq_writes + t.rand_reads + t.rand_writes

let pp ppf t =
  Format.fprintf ppf
    "comp=%d hash=%d move=%d swap=%d seqR=%d seqW=%d randR=%d randW=%d \
     faults=%d hits=%d"
    t.comparisons t.hashes t.moves t.swaps t.seq_reads t.seq_writes
    t.rand_reads t.rand_writes t.faults t.pool_hits;
  if F.tally_total t.fault > 0 then
    Format.fprintf ppf " media[%a]" F.pp_tally t.fault;
  if O.tally_total t.ovld + t.ovld.O.admitted > 0 then
    Format.fprintf ppf " ovld[%a]" O.pp_tally t.ovld

let io_retries t = t.fault.F.retried
let io_retry_backoff t = t.fault.F.retry_backoff
let sheds t = O.sheds t.ovld
let deadline_timeouts t = O.timeouts t.ovld
let breaker_trips t = t.ovld.O.breaker_trips
