(** Buffer pool over a {!Disk} with pluggable replacement.

    Section 2 of the paper derives page-fault rates for tree traversals
    under the assumption of a *random* replacement policy with [|M|] resident
    pages; this module implements that policy (plus LRU and Clock for the
    ablation in DESIGN.md) and counts hits and faults in the environment's
    counters.  A miss charges one random I/O; a dirty eviction charges a
    random write. *)

type policy =
  | Random_replacement of Mmdb_util.Xorshift.t
      (** Evict a uniformly random resident frame — the paper's §2 model. *)
  | Lru
  | Clock
  | Fifo  (** evict the longest-resident page regardless of use *)
  | Lru_2
      (** evict the page with the oldest {e second}-most-recent access
          (LRU-K with K = 2); pages touched only once rank below all
          twice-touched pages — §6's "buffer management strategies" *)

type t

val create : disk:Disk.t -> capacity:int -> policy -> t
(** [create ~disk ~capacity policy] is an empty pool of [capacity] frames
    ([|M|] pages).  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val resident : t -> int
(** Number of frames currently holding a page. *)

val is_resident : t -> int -> bool
(** [is_resident t pid] is true when [pid] occupies a frame (no charge,
    no recency update). *)

val get : t -> int -> bytes
(** [get t pid] returns the page, faulting it in (one random read, one
    fault counted) if absent; a hit counts [pool_hits] and costs nothing.
    The returned bytes are the live frame: callers that mutate it must call
    {!mark_dirty}.  Eviction of a dirty frame writes it back (one random
    write).
    @raise Mmdb_fault.Fault.Io_error when an armed fault plan makes the
    fault-in read (or dirty write-back) exhaust its retry budget.
    @raise Mmdb_fault.Fault.Unrecoverable when detected frame corruption
    cannot be rebuilt from any surviving redundancy. *)

val mark_dirty : t -> int -> unit
(** Flag a resident page as modified.  @raise Invalid_argument if the page
    is not resident. *)

val pin : t -> int -> bytes
(** [pin t pid] is {!get} plus an eviction pin: the frame cannot be chosen
    as a victim until a matching {!unpin}.  Pins nest.
    @raise Invalid_argument (from the fault path) when the page is absent
    and every resident frame is pinned. *)

val unpin : t -> int -> unit
(** Release one pin.  Unpinning a page that is absent or has no pins is a
    protocol violation: it is {e recorded} (see {!stats}) rather than
    raised, so {!Mmdb_verify.Pool_check} can report it. *)

val pin_count : t -> int -> int
(** Current pin count ([0] when absent). *)

val flush : t -> int -> unit
(** Write one resident dirty page back (random write); no-op when clean or
    absent. *)

val flush_all : t -> unit
(** Write back every dirty frame; pages stay resident. *)

val drop_all : t -> unit
(** Discard every frame {e without} write-back — simulates losing volatile
    memory in a crash. *)

val iter_resident : t -> (int -> unit) -> unit
(** Apply to every resident page id (used by the checkpoint sweeper). *)

val scrub : t -> int
(** Verify every {e clean} resident frame against its disk image and
    reload (one charged random read each) any that diverge — e.g. after
    the disk's fault plan rotted a frame in memory.  Dirty frames are
    skipped; their divergence is legitimate.  Returns the number of
    frames repaired; detections and repairs are tallied in the disk's
    fault plan. *)

type stats = {
  dirtied : int;  (** clean->dirty transitions since creation *)
  writebacks : int;  (** dirty frames written back (flush or eviction) *)
  dropped_dirty : int;  (** dirty frames discarded by {!drop_all} *)
  dirty_resident : int;  (** frames currently dirty *)
  pinned_pages : (int * int) list;  (** (pid, pins) with pins > 0, sorted *)
  unpin_underflows : int;  (** unmatched {!unpin} calls *)
}

val stats : t -> stats
(** Accounting snapshot.  Invariant audited by
    {!Mmdb_verify.Pool_check}: [dirtied = writebacks + dropped_dirty +
    dirty_resident]. *)
