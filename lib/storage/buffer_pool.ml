module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

type policy =
  | Random_replacement of Mmdb_util.Xorshift.t
  | Lru
  | Clock
  | Fifo
  | Lru_2

type frame = {
  pid : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int; (* > 0 means ineligible for eviction *)
  mutable last_use : int; (* LRU timestamp *)
  mutable prev_use : int; (* second-most-recent access (LRU-2); 0 = none *)
  mutable arrival : int; (* FIFO order *)
  mutable referenced : bool; (* Clock bit *)
}

type t = {
  disk : Disk.t;
  capacity : int;
  policy : policy;
  frames : (int, frame) Hashtbl.t; (* pid -> frame *)
  mutable tick : int;
  clock_hand : int Queue.t; (* pids in sweep order for Clock (front = hand) *)
  mutable dirtied : int; (* clean->dirty transitions *)
  mutable writebacks : int;
  mutable dropped_dirty : int; (* dirty frames lost to drop_all *)
  mutable unpin_underflows : int; (* recorded, not raised: Pool_check reports *)
}

let create ~disk ~capacity policy =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity <= 0";
  {
    disk;
    capacity;
    policy;
    frames = Hashtbl.create (2 * capacity);
    tick = 0;
    clock_hand = Queue.create ();
    dirtied = 0;
    writebacks = 0;
    dropped_dirty = 0;
    unpin_underflows = 0;
  }

let capacity t = t.capacity
let resident t = Hashtbl.length t.frames
let is_resident t pid = Hashtbl.mem t.frames pid

let env t = Disk.env t.disk

let write_back t frame =
  if frame.dirty then begin
    (* Bypass Disk.write's copy-in charge duplication: the pool is the one
       charging, via a normal charged random write. *)
    Disk.write t.disk ~mode:Disk.Rand frame.pid frame.data;
    frame.dirty <- false;
    t.writebacks <- t.writebacks + 1
  end

(* Pinned frames are never eviction victims. *)
let evict_one t =
  let any_unpinned =
    Hashtbl.fold (fun _ f acc -> acc || f.pins = 0) t.frames false
  in
  if not any_unpinned then
    invalid_arg "Buffer_pool.evict_one: every frame is pinned";
  let victim_pid =
    match t.policy with
    | Random_replacement rng ->
      let pids =
        Hashtbl.fold
          (fun pid f acc -> if f.pins = 0 then pid :: acc else acc)
          t.frames []
      in
      let arr = Array.of_list pids in
      arr.(Mmdb_util.Xorshift.int rng (Array.length arr))
    | Lru ->
      let best = ref None in
      Hashtbl.iter
        (fun pid f ->
          if f.pins = 0 then
            match !best with
            | None -> best := Some (pid, f.last_use)
            | Some (_, lu) ->
              if f.last_use < lu then best := Some (pid, f.last_use))
        t.frames;
      (match !best with Some (pid, _) -> pid | None -> assert false)
    | Fifo ->
      let best = ref None in
      Hashtbl.iter
        (fun pid f ->
          if f.pins = 0 then
            match !best with
            | None -> best := Some (pid, f.arrival)
            | Some (_, a) -> if f.arrival < a then best := Some (pid, f.arrival))
        t.frames;
      (match !best with Some (pid, _) -> pid | None -> assert false)
    | Lru_2 ->
      (* Rank by second-most-recent access; once-touched pages (prev_use
         = 0) sort below everything, ties broken by last_use. *)
      let best = ref None in
      Hashtbl.iter
        (fun pid f ->
          if f.pins = 0 then
            let key = (f.prev_use, f.last_use) in
            match !best with
            | None -> best := Some (pid, key)
            | Some (_, k) -> if key < k then best := Some (pid, key))
        t.frames;
      (match !best with Some (pid, _) -> pid | None -> assert false)
    | Clock ->
      (* Classic second-chance sweep over a rotating queue (front is the
         hand): referenced frames lose their bit and rotate to the back,
         pinned frames keep their bit and rotate (they rejoin the scan
         once unpinned), and the victim is simply not re-enqueued.
         Terminates: some frame is unpinned, and its reference bit
         survives at most one full rotation. *)
      let rec sweep () =
        match Queue.take_opt t.clock_hand with
        | None -> assert false (* every resident pid is enqueued *)
        | Some pid -> (
          match Hashtbl.find_opt t.frames pid with
          | None -> sweep () (* stale entry for an already-evicted pid *)
          | Some f ->
            if f.pins > 0 then begin
              Queue.push pid t.clock_hand;
              sweep ()
            end
            else if f.referenced then begin
              f.referenced <- false;
              Queue.push pid t.clock_hand;
              sweep ()
            end
            else pid)
      in
      sweep ()
  in
  let frame = Hashtbl.find t.frames victim_pid in
  write_back t frame;
  Hashtbl.remove t.frames victim_pid

let touch t frame =
  t.tick <- t.tick + 1;
  frame.prev_use <- frame.last_use;
  frame.last_use <- t.tick;
  frame.referenced <- true

let get t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    (env t).Env.counters.Counters.pool_hits <-
      (env t).Env.counters.Counters.pool_hits + 1;
    (* Frame rot: a resident clean frame can pick up a bit flip between
       accesses (cosmic-ray model).  Dirty frames are never rotted — the
       divergence from disk would be indistinguishable from legitimate
       updates and write-back would launder the corruption. *)
    let plan = Disk.faults t.disk in
    if Fault_plan.is_active plan && not frame.dirty then begin
      match Fault_plan.draw plan Fault.Pool_frame with
      | Some (Fault.Bit_flip_rest | Fault.Bit_flip_read) ->
        let bit = Fault_plan.rand_int plan (8 * Bytes.length frame.data) in
        let i = bit / 8 in
        Bytes.set frame.data i
          (Char.chr (Char.code (Bytes.get frame.data i) lxor (1 lsl (bit mod 8))));
        Fault_plan.note_injected plan ~code:"FAULT002" ~site:"pool.frame"
          (Printf.sprintf "frame %d bit %d flipped in memory" frame.pid bit)
      | Some (Fault.Torn_write | Fault.Io_transient _ | Fault.Battery_droop _)
      | None -> ()
    end;
    touch t frame;
    frame.data
  | None ->
    (env t).Env.counters.Counters.faults <-
      (env t).Env.counters.Counters.faults + 1;
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    let data = Disk.read t.disk ~mode:Disk.Rand pid in
    t.tick <- t.tick + 1;
    let frame =
      {
        pid;
        data;
        dirty = false;
        pins = 0;
        last_use = 0;
        prev_use = 0;
        arrival = t.tick;
        referenced = false;
      }
    in
    touch t frame;
    Hashtbl.replace t.frames pid frame;
    (match t.policy with
    | Clock -> Queue.push pid t.clock_hand
    | Random_replacement _ | Lru | Fifo | Lru_2 -> ());
    data

let mark_dirty t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    if not frame.dirty then begin
      frame.dirty <- true;
      t.dirtied <- t.dirtied + 1
    end
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let pin t pid =
  let data = get t pid in
  let frame = Hashtbl.find t.frames pid in
  frame.pins <- frame.pins + 1;
  data

let unpin t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame when frame.pins > 0 -> frame.pins <- frame.pins - 1
  | Some _ | None ->
    (* Protocol violation; recorded for the sanitizer rather than raised,
       so an audit can report it alongside other findings. *)
    t.unpin_underflows <- t.unpin_underflows + 1

let pin_count t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame -> frame.pins
  | None -> 0

let flush t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame -> write_back t frame
  | None -> ()

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let drop_all t =
  Hashtbl.iter
    (fun _ frame ->
      if frame.dirty then t.dropped_dirty <- t.dropped_dirty + 1)
    t.frames;
  Hashtbl.reset t.frames;
  Queue.clear t.clock_hand

let iter_resident t f = Hashtbl.iter (fun pid _ -> f pid) t.frames

(* Verify clean frames against the disk image and reload any that have
   rotted.  Dirty frames are skipped: they are *supposed* to diverge.
   Pids are visited in sorted order so repair charges are deterministic
   across OCaml versions (Hashtbl iteration order is not). *)
let scrub t =
  let plan = Disk.faults t.disk in
  let repaired = ref 0 in
  Hashtbl.fold
    (fun pid f acc -> if not f.dirty then (pid, f) :: acc else acc)
    t.frames []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (pid, f) ->
         let stored = Disk.read_nocharge t.disk pid in
         if not (Bytes.equal f.data stored) then begin
           Fault_plan.note_detected plan ~code:"FAULT002" ~site:"pool.frame"
             (Printf.sprintf "frame %d diverges from disk" pid);
           let fresh = Disk.read t.disk ~mode:Disk.Rand pid in
           Bytes.blit fresh 0 f.data 0 (Bytes.length f.data);
           Fault_plan.note_repaired plan ~code:"FAULT002" ~site:"pool.frame"
             (Printf.sprintf "frame %d reloaded from disk" pid);
           incr repaired
         end);
  !repaired

type stats = {
  dirtied : int;
  writebacks : int;
  dropped_dirty : int;
  dirty_resident : int;
  pinned_pages : (int * int) list;
  unpin_underflows : int;
}

let stats t =
  let dirty_resident =
    Hashtbl.fold (fun _ f acc -> if f.dirty then acc + 1 else acc) t.frames 0
  in
  let pinned_pages =
    Hashtbl.fold
      (fun pid f acc -> if f.pins > 0 then (pid, f.pins) :: acc else acc)
      t.frames []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    dirtied = t.dirtied;
    writebacks = t.writebacks;
    dropped_dirty = t.dropped_dirty;
    dirty_resident;
    pinned_pages;
    unpin_underflows = t.unpin_underflows;
  }
