type t = {
  chains : (float * int) list array; (* newest first: (commit_ts, value) *)
  mutable total_versions : int;
  recorder : Schedule.recorder option;
}

let create ?recorder ~nrecords () =
  if nrecords <= 0 then invalid_arg "Version_store.create: nrecords <= 0";
  {
    chains = Array.make nrecords [ (Float.neg_infinity, 0) ];
    total_versions = nrecords;
    recorder;
  }

let nrecords t = Array.length t.chains

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.chains then
    invalid_arg "Version_store: slot out of range"

let write ?txn ?(domain = 0) t ~ts ~slot ~value =
  check_slot t slot;
  (match t.chains.(slot) with
  | (newest, _) :: _ when ts <= newest ->
    invalid_arg "Version_store.write: timestamp not newer than latest version"
  | _ -> ());
  (match txn with
  | Some txn ->
    Schedule.emit t.recorder ~key:slot ~domain ~ver:ts ~txn Schedule.Write
  | None -> ());
  t.chains.(slot) <- (ts, value) :: t.chains.(slot);
  t.total_versions <- t.total_versions + 1

let read ?txn ?(domain = 0) t ~ts ~slot =
  check_slot t slot;
  (match txn with
  | Some txn ->
    Schedule.emit t.recorder ~key:slot ~domain ~ver:ts ~txn Schedule.Read
  | None -> ());
  let rec find = function
    | (vts, v) :: _ when vts <= ts -> v
    | _ :: rest -> find rest
    | [] -> 0 (* before the initial version: the zero state *)
  in
  find t.chains.(slot)

let read_latest t ~slot =
  check_slot t slot;
  match t.chains.(slot) with (_, v) :: _ -> v | [] -> 0

let version_count t = t.total_versions

let gc t ~oldest_active_ts =
  let reclaimed = ref 0 in
  Array.iteri
    (fun i chain ->
      (* Keep everything newer than the horizon, plus the first version
         at-or-before it (some active snapshot may still read it). *)
      let rec split kept = function
        | (vts, v) :: rest when vts > oldest_active_ts ->
          split ((vts, v) :: kept) rest
        | (vts, v) :: rest ->
          (* perf_lint: counts the reclaimed tail once per GC'd chain *)
          reclaimed := !reclaimed + List.length rest;
          List.rev ((vts, v) :: kept)
        | [] -> List.rev kept
      in
      t.chains.(i) <- split [] chain)
    t.chains;
  t.total_versions <- t.total_versions - !reclaimed;
  !reclaimed
