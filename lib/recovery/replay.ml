(* Partitioned parallel redo.  See replay.mli for the scheduling
   contract; the short version: partition-local ops replay in log order
   within their partition, cross-partition commands rendezvous as
   barriers, and the simulated and domains modes produce the same final
   state because per-slot order is identical in both. *)

type action = Set of int | Add of int

(* Defensive: unreachable for queues built by [compile] (barriers appear
   in LSN order in every touched queue), but typed so the torture
   harness could classify it if the invariant ever broke. *)
exception Rendezvous_deadlock

let () =
  Printexc.register_printer (function
    | Rendezvous_deadlock ->
      Some "Replay.Rendezvous_deadlock (no barrier can rendezvous)"
    | _ -> None)

type item =
  | Op of { txn : int; lsn : int; slot : int; action : action }
  | Barrier of { txn : int; lsn : int; ops : (int * int) list }

type stats = {
  workers : int;
  local_ops : int;
  barrier_ops : int;
  barriers : int;
  used_domains : bool;
}

(* A compiled per-partition queue entry.  Cross-partition commands are
   interned once in [cmds] and referenced by index from every touched
   queue, so "all heads agree" is one integer comparison per queue. *)
type entry =
  | E_op of { txn : int; lsn : int; slot : int; action : action }
  | E_bar of int

type cmd = {
  c_txn : int;
  c_lsn : int;
  c_ops : (int * int) list;
  c_touched : int list;  (* sorted, distinct, length >= 2 *)
}

let sort_uniq_parts parts = List.sort_uniq compare parts

(* Compile the item stream into per-partition queues.  A Barrier whose
   ops land in a single partition (or that is empty) degrades to plain
   local ops — only genuinely cross-partition commands pay the
   rendezvous. *)
let compile ~workers ~part items =
  let queues = Array.make workers [] in
  let cmds = ref [] in
  let ncmds = ref 0 in
  let local_ops = ref 0 in
  let barrier_ops = ref 0 in
  let push p e = queues.(p) <- e :: queues.(p) in
  let push_op ~txn ~lsn ~slot action =
    incr local_ops;
    push (part slot) (E_op { txn; lsn; slot; action })
  in
  List.iter
    (fun item ->
      match item with
      | Op { txn; lsn; slot; action } -> push_op ~txn ~lsn ~slot action
      | Barrier { txn; lsn; ops } -> (
          let touched = sort_uniq_parts (List.map (fun (s, _) -> part s) ops) in
          match touched with
          | [] -> ()
          | [ _ ] ->
              List.iter
                (fun (slot, d) -> push_op ~txn ~lsn ~slot (Add d))
                ops
          | _ :: _ ->
              let id = !ncmds in
              incr ncmds;
              (* perf_lint: command op lists are <= max_command_ops (255),
                 in practice updates_per_txn (<10) *)
              barrier_ops := !barrier_ops + List.length ops;
              cmds :=
                { c_txn = txn; c_lsn = lsn; c_ops = ops; c_touched = touched }
                :: !cmds;
              List.iter (fun p -> push p (E_bar id)) touched))
    items;
  let queues = Array.map (fun q -> Array.of_list (List.rev q)) queues in
  let cmds = Array.of_list (List.rev !cmds) in
  (queues, cmds, !local_ops, !barrier_ops)

(* Deterministic round-robin interleaving of the partition queues, one
   entry per partition per round.  Emits the lock-protocol trace
   (Grant/Write/Release per applied op, stamped with the partition as
   the acting domain) when a recorder is armed, and calls [on_step]
   after every applied op so the store can crash mid-replay. *)
let run_simulated ~recorder ~on_step ~apply queues cmds =
  let workers = Array.length queues in
  let pos = Array.make workers 0 in
  let tick = ref 0 in
  let stamp () =
    incr tick;
    float_of_int !tick *. 1e-6
  in
  let step () = match on_step with Some f -> f () | None -> () in
  let apply_local ~dom ~txn ~lsn ~slot action =
    (match recorder with
    | None -> ()
    | Some _ ->
        Schedule.emit recorder ~at:(stamp ()) ~key:slot ~domain:dom ~txn
          (Schedule.Grant { deps = [] });
        Schedule.emit recorder ~at:(stamp ()) ~key:slot ~lsn ~domain:dom ~txn
          Schedule.Write;
        Schedule.emit recorder ~at:(stamp ()) ~key:slot ~domain:dom ~txn
          Schedule.Release);
    apply ~slot action;
    step ()
  in
  let apply_barrier ~dom (c : cmd) =
    (* 2PL shape: take every touched key, write them all, release them
       all.  The per-key Release->Grant edges order the barrier after
       each owning partition's preceding ops and before its following
       ones, which is exactly the happens-before the rendezvous
       enforces. *)
    (match recorder with
    | None -> ()
    | Some _ ->
        List.iter
          (fun (slot, _) ->
            Schedule.emit recorder ~at:(stamp ()) ~key:slot ~domain:dom
              ~txn:c.c_txn
              (Schedule.Grant { deps = [] }))
          c.c_ops);
    List.iter
      (fun (slot, d) ->
        (match recorder with
        | None -> ()
        | Some _ ->
            Schedule.emit recorder ~at:(stamp ()) ~key:slot ~lsn:c.c_lsn
              ~domain:dom ~txn:c.c_txn Schedule.Write);
        apply ~slot (Add d);
        step ())
      c.c_ops;
    match recorder with
    | None -> ()
    | Some _ ->
        List.iter
          (fun (slot, _) ->
            Schedule.emit recorder ~at:(stamp ()) ~key:slot ~domain:dom
              ~txn:c.c_txn Schedule.Release)
          c.c_ops
  in
  let head_is_bar q id =
    pos.(q) < Array.length queues.(q)
    &&
    match queues.(q).(pos.(q)) with E_bar i -> i = id | E_op _ -> false
  in
  let finished () =
    let all = ref true in
    for p = 0 to workers - 1 do
      if pos.(p) < Array.length queues.(p) then all := false
    done;
    !all
  in
  let rec loop () =
    let progress = ref false in
    for p = 0 to workers - 1 do
      if pos.(p) < Array.length queues.(p) then
        match queues.(p).(pos.(p)) with
        | E_op { txn; lsn; slot; action } ->
            apply_local ~dom:p ~txn ~lsn ~slot action;
            pos.(p) <- pos.(p) + 1;
            progress := true
        | E_bar id ->
            let c = cmds.(id) in
            if
              (match c.c_touched with
              | [] -> false  (* compile emits only >= 2-partition barriers *)
              | lowest :: _ -> p = lowest)
              && List.for_all (fun q -> head_is_bar q id) c.c_touched
            then begin
              apply_barrier ~dom:p c;
              List.iter (fun q -> pos.(q) <- pos.(q) + 1) c.c_touched;
              progress := true
            end
    done;
    if not (finished ()) then
      if !progress then loop ()
      else
        (* Unreachable for queues built by [compile]: barriers appear in
           LSN order in every touched queue, so the lowest-LSN blocked
           barrier's queues can always drain to it. *)
        raise Rendezvous_deadlock
  in
  loop ()

(* Epoch execution: run every partition's pending local ops as real
   domain workers (disjoint pages, so no synchronisation needed beyond
   the join), then apply the next cross-partition command serially on
   the calling domain. *)
let run_domains ~workers ~part ~apply items =
  let pending = Array.make workers [] in
  let flush () =
    Domain_runner.run ~n:workers (fun p ->
        List.iter (fun (slot, action) -> apply ~slot action)
          (List.rev pending.(p)));
    Array.fill pending 0 workers []
  in
  let local (slot, action) = pending.(part slot) <- (slot, action) :: pending.(part slot) in
  List.iter
    (fun item ->
      match item with
      | Op { slot; action; _ } -> local (slot, action)
      | Barrier { ops; _ } -> (
          match sort_uniq_parts (List.map (fun (s, _) -> part s) ops) with
          | [] -> ()
          | [ _ ] -> List.iter (fun (s, d) -> local (s, Add d)) ops
          | _ :: _ ->
              flush ();
              List.iter (fun (slot, d) -> apply ~slot (Add d)) ops))
    items;
  flush ()

let run ?recorder ?(use_domains = false) ?on_step ~workers ~partition_of
    ~apply items =
  if workers <= 0 then invalid_arg "Replay.run: workers <= 0";
  let part slot = ((partition_of slot mod workers) + workers) mod workers in
  (* Recording and crash injection are deterministic-mode features. *)
  let domains_ok =
    use_domains
    && (match (recorder, on_step) with None, None -> true | _ -> false)
  in
  let queues, cmds, local_ops, barrier_ops = compile ~workers ~part items in
  if domains_ok then run_domains ~workers ~part ~apply items
  else run_simulated ~recorder ~on_step ~apply queues cmds;
  {
    workers;
    local_ops;
    barrier_ops;
    barriers = Array.length cmds;
    used_domains = domains_ok && Domain_runner.available;
  }
