(** Write-ahead-log records (Section 5).

    The paper's "typical" transaction writes 400 bytes of log: 40 bytes of
    begin/end records plus 360 bytes of old/new values.  Records here are
    structured values with explicit byte-size accounting (the experiments
    depend on byte volumes, not on a particular wire encoding); §5.4's
    compression — dropping old values once a transaction is known
    committed — is a size mode.

    Checkpoints leave a bracket in the log: a fuzzy checkpoint writes
    [Ckpt_begin], flushes the log (the WAL rule), sweeps dirty data pages,
    then writes [Ckpt_end].  A durable [Ckpt_end] therefore certifies that
    every data-page write of that checkpoint hit the snapshot — the
    property {!Mmdb_verify.Log_check} audits as "checkpoint bracketing". *)

type t =
  | Begin of { txn : int; lsn : int }
  | Update of {
      txn : int;
      lsn : int;
      slot : int;  (** which database record was changed *)
      old_value : int;
      new_value : int;
    }
  | Command of { txn : int; lsn : int; ops : (int * int) list }
      (** Command (logical) logging: the transaction's whole effect as
          [(slot, delta)] operations, re-executed at replay.  One
          command record replaces the transaction's update records —
          much smaller on disk (8 bytes per operation vs 60), but replay
          must re-run the operations, and a command whose slots span
          replay partitions forces a cross-partition rendezvous (see
          {!Replay}).  Undo of a non-terminated command subtracts its
          deltas. *)
  | Commit of { txn : int; lsn : int }
  | Abort of { txn : int; lsn : int }
  | Ckpt_begin of { lsn : int }
      (** fuzzy checkpoint started; not bound to a transaction *)
  | Ckpt_end of { lsn : int }
      (** all dirty pages of the matching [Ckpt_begin] reached the
          snapshot *)

val lsn : t -> int

val txn : t -> int option
(** The owning transaction; [None] for checkpoint markers. *)

val size_bytes : compressed:bool -> t -> int
(** Begin/Commit/Abort and checkpoint markers: 20 bytes each (the paper's
    40 for begin+end).  Update: 60 bytes full (30 old value + 30 new
    value), 30 compressed (old value dropped — §5.4: "approximately half
    of the size of the log stores the old values").  Command: 20-byte
    header plus 8 bytes per operation, in both modes (a command carries
    no old values to drop). *)

val is_update : t -> bool
(** [true] for data-carrying body records: [Update] and [Command]. *)

val max_command_ops : int
(** Operation-count ceiling of the command wire format (one count
    byte): 255. *)

val pp : Format.formatter -> t -> unit

(** {2 Wire encoding}

    Each record serializes to exactly [size_bytes] bytes — the model
    sizes double as the physical layout — with a CRC-32 of the record in
    its last four bytes.  Log pages are runs of encoded records; a torn
    page write leaves a prefix whose first damaged record fails its CRC,
    which is how recovery finds the last valid record of the tail. *)

val encode : compressed:bool -> t -> bytes
(** Standalone encoding, [size_bytes ~compressed] long. *)

val encode_into : compressed:bool -> t -> bytes -> pos:int -> int
(** [encode_into ~compressed r buf ~pos] writes the encoding at [pos]
    and returns the number of bytes written.
    @raise Invalid_argument if the record does not fit. *)

val decode : bytes -> pos:int -> (t * int, string) result
(** [decode buf ~pos] reads one record, returning it with its encoded
    size, or [Error] on a bad tag, truncation, or CRC mismatch.
    Compressed updates decode with [old_value = 0]: the old value was
    dropped (§5.4), legal only for transactions known committed, which
    are never undone. *)

val decode_run : bytes -> pos:int -> len:int -> t list * string option
(** Decode a packed run of records, stopping at zero padding, the end of
    the window, or the first undecodable byte.  Returns the records that
    decoded cleanly and the error that stopped the walk, if any — the
    torn-tail truncation primitive: everything before the error is
    checksum-valid, everything after is discarded. *)
