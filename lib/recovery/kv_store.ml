type t = {
  page_io_time : float;
  records_per_page : int;
  mem : int array; (* volatile *)
  snapshot : int array; (* "disk": survives crash *)
  stable : Stable_memory.t; (* dirty-page table host *)
  mutable scrambled : bool;
}

let create ?(page_io_time = 10e-3) ~nrecords ~records_per_page ~stable () =
  if nrecords <= 0 then invalid_arg "Kv_store.create: nrecords <= 0";
  if records_per_page <= 0 then
    invalid_arg "Kv_store.create: records_per_page <= 0";
  {
    page_io_time;
    records_per_page;
    mem = Array.make nrecords 0;
    snapshot = Array.make nrecords 0;
    stable;
    scrambled = false;
  }

let nrecords t = Array.length t.mem

let npages t =
  (Array.length t.mem + t.records_per_page - 1) / t.records_per_page

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.mem then
    invalid_arg (Printf.sprintf "Kv_store: slot %d out of range" slot)

let get t slot =
  check_slot t slot;
  if t.scrambled then
    invalid_arg "Kv_store.get: memory lost in crash (recover first)";
  t.mem.(slot)

let page_of t slot = slot / t.records_per_page

let apply_update t ~lsn ~slot ~value =
  check_slot t slot;
  t.mem.(slot) <- value;
  let page = page_of t slot in
  match Stable_memory.table_get t.stable ~key:page with
  | Some _ -> () (* already dirty; first-LSN already recorded *)
  | None -> Stable_memory.table_put t.stable ~key:page ~value:lsn

type checkpoint_stats = { pages_flushed : int; duration : float }

let checkpoint t =
  let dirty =
    Stable_memory.table_fold t.stable ~init:[] ~f:(fun acc ~key ~value ->
        ignore value;
        key :: acc)
  in
  List.iter
    (fun page ->
      let lo = page * t.records_per_page in
      let hi = min (Array.length t.mem) (lo + t.records_per_page) in
      Array.blit t.mem lo t.snapshot lo (hi - lo);
      Stable_memory.table_remove t.stable ~key:page)
    dirty;
  let n = List.length dirty in
  { pages_flushed = n; duration = float_of_int n *. t.page_io_time }

let dirty_pages t =
  Stable_memory.table_fold t.stable ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

let recovery_start_lsn t =
  Stable_memory.table_fold t.stable ~init:None ~f:(fun acc ~key:_ ~value ->
      match acc with
      | None -> Some value
      | Some m -> Some (min m value))

let crash t =
  (* Volatile contents are gone; make any premature read fail loudly. *)
  Array.fill t.mem 0 (Array.length t.mem) min_int;
  t.scrambled <- true

type recover_stats = {
  start_lsn : int;
  records_scanned : int;
  redo_applied : int;
  undo_applied : int;
  snapshot_pages_read : int;
  recovery_time : float;
}

let recover t ~log =
  (* Load the snapshot. *)
  Array.blit t.snapshot 0 t.mem 0 (Array.length t.mem);
  t.scrambled <- false;
  let committed = Hashtbl.create 64 in
  (* Aborted transactions logged their own compensating updates before the
     Abort record (ARIES-style), so like committed transactions they are
     "terminated": redo replays them forward and undo must skip them. *)
  let terminated = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Commit { txn; _ } ->
        Hashtbl.replace committed txn ();
        Hashtbl.replace terminated txn ()
      | Log_record.Abort { txn; _ } -> Hashtbl.replace terminated txn ()
      | Log_record.Begin _ | Log_record.Update _ | Log_record.Ckpt_begin _
      | Log_record.Ckpt_end _ -> ())
    log;
  (* The scan starts at the oldest of (a) the dirty-page table's minimum
     first-update LSN (§5.5: "the oldest entry in the table determines the
     point in the log from which recovery should commence") and (b) the
     first record of any transaction that never terminated (the
     active-transaction low-water mark, needed for undo). *)
  let table_start =
    match recovery_start_lsn t with Some l -> l | None -> max_int
  in
  let undo_start =
    List.fold_left
      (fun acc r ->
        match Log_record.txn r with
        | Some tx when not (Hashtbl.mem terminated tx) ->
          min acc (Log_record.lsn r)
        | Some _ | None -> acc)
      max_int log
  in
  let scan_start = min table_start undo_start in
  let scanned = ref 0 in
  let redo = ref 0 in
  let scan_bytes = ref 0 in
  (* Redo phase: reapply every update from the recovery start point. *)
  List.iter
    (fun r ->
      if Log_record.lsn r >= scan_start then begin
        incr scanned;
        scan_bytes :=
          !scan_bytes + Log_record.size_bytes ~compressed:false r;
        match r with
        | Log_record.Update { slot; new_value; _ } ->
          t.mem.(slot) <- new_value;
          incr redo
        | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> ()
      end)
    log;
  (* Undo phase: reverse updates of transactions that never terminated,
     newest first (all such records are >= scan_start by construction). *)
  let undo = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Update { txn; slot; old_value; _ }
        when not (Hashtbl.mem terminated txn) ->
        t.mem.(slot) <- old_value;
        incr undo
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _
        -> ())
    (List.rev log);
  Stable_memory.table_clear t.stable;
  (* Log reading cost: sequential pages of ~10 ms over the scanned
     suffix. *)
  let log_pages = (!scan_bytes + 4095) / 4096 in
  {
    start_lsn = (if scan_start = max_int then 0 else scan_start);
    records_scanned = !scanned;
    redo_applied = !redo;
    undo_applied = !undo;
    snapshot_pages_read = npages t;
    recovery_time = float_of_int (npages t + log_pages) *. t.page_io_time;
  }

let balances t =
  if t.scrambled then
    invalid_arg "Kv_store.balances: memory lost in crash (recover first)";
  Array.copy t.mem
