module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

type t = {
  page_io_time : float;
  records_per_page : int;
  recorder : Schedule.recorder option;
  mem : int array; (* volatile *)
  snapshot : int array; (* "disk": survives crash *)
  snap_sums : int array; (* per-page CRC of the intended snapshot page *)
  stable : Stable_memory.t; (* dirty-page table host *)
  faults : Fault_plan.t;
  mutable scrambled : bool;
}

let npages_of ~nrecords ~records_per_page =
  (nrecords + records_per_page - 1) / records_per_page

let page_sum t page =
  let lo = page * t.records_per_page in
  let hi = min (Array.length t.snapshot) (lo + t.records_per_page) in
  Mmdb_util.Checksum.crc32_ints t.snapshot ~pos:lo ~len:(hi - lo)

let create ?(page_io_time = 10e-3) ?faults ?recorder ~nrecords
    ~records_per_page ~stable () =
  if nrecords <= 0 then invalid_arg "Kv_store.create: nrecords <= 0";
  if records_per_page <= 0 then
    invalid_arg "Kv_store.create: records_per_page <= 0";
  let t =
    {
      page_io_time;
      records_per_page;
      recorder;
      mem = Array.make nrecords 0;
      snapshot = Array.make nrecords 0;
      snap_sums = Array.make (npages_of ~nrecords ~records_per_page) 0;
      stable;
      faults = (match faults with Some f -> f | None -> Fault_plan.none ());
      scrambled = false;
    }
  in
  for p = 0 to Array.length t.snap_sums - 1 do
    t.snap_sums.(p) <- page_sum t p
  done;
  t

let nrecords t = Array.length t.mem

let npages t =
  npages_of ~nrecords:(Array.length t.mem)
    ~records_per_page:t.records_per_page

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.mem then
    invalid_arg (Printf.sprintf "Kv_store: slot %d out of range" slot)

let get ?txn ?(domain = 0) t slot =
  check_slot t slot;
  if t.scrambled then
    invalid_arg "Kv_store.get: memory lost in crash (recover first)";
  (match txn with
  | Some txn -> Schedule.emit t.recorder ~key:slot ~domain ~txn Schedule.Read
  | None -> ());
  t.mem.(slot)

let page_of t slot = slot / t.records_per_page

let apply_update ?txn ?(domain = 0) t ~lsn ~slot ~value =
  check_slot t slot;
  t.mem.(slot) <- value;
  (match txn with
  | Some txn ->
    Schedule.emit t.recorder ~key:slot ~lsn ~domain ~txn Schedule.Write
  | None -> ());
  let page = page_of t slot in
  match Stable_memory.table_get t.stable ~key:page with
  | Some _ -> () (* already dirty; first-LSN already recorded *)
  | None -> Stable_memory.table_put t.stable ~key:page ~value:lsn

type checkpoint_stats = { pages_flushed : int; duration : float }

(* Write one dirty page to the snapshot, recording the checksum of the
   intended image.  A rule at the Snapshot site can rot the stored page
   (bit flip at rest): the recorded sum then disagrees with the stored
   data, which is how recovery detects the damage. *)
let write_snapshot_page t page =
  let lo = page * t.records_per_page in
  let hi = min (Array.length t.mem) (lo + t.records_per_page) in
  Array.blit t.mem lo t.snapshot lo (hi - lo);
  t.snap_sums.(page) <-
    Mmdb_util.Checksum.crc32_ints t.mem ~pos:lo ~len:(hi - lo);
  if Fault_plan.is_active t.faults then begin
    match Fault_plan.draw t.faults Fault.Snapshot with
    | Some (Fault.Bit_flip_rest | Fault.Bit_flip_read) ->
      let slot = lo + Fault_plan.rand_int t.faults (hi - lo) in
      let bit = Fault_plan.rand_int t.faults 31 in
      t.snapshot.(slot) <- t.snapshot.(slot) lxor (1 lsl bit);
      Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"snapshot"
        (Printf.sprintf "snapshot page %d slot %d bit %d flipped at rest"
           page slot bit)
    | Some (Fault.Torn_write | Fault.Io_transient _ | Fault.Battery_droop _)
    | None -> ()
  end

(* Fuzzy checkpoint.  Pages are swept in sorted order (deterministic
   across OCaml versions; Hashtbl iteration order is not).  When [now]
   and [deadline] are given, the sweep is cut short once the next page
   write would finish past the deadline — a crash mid-checkpoint.  Pages
   not reached keep their dirty-table entries, so redo still covers
   them. *)
let checkpoint ?now ?deadline t =
  let dirty =
    Stable_memory.table_fold t.stable ~init:[] ~f:(fun acc ~key ~value ->
        ignore value;
        key :: acc)
    |> List.sort compare
  in
  let written = ref 0 in
  let cutoff =
    match (now, deadline) with
    | Some n, Some d -> Some (n, d)
    | (Some _ | None), (Some _ | None) -> None
  in
  List.iter
    (fun page ->
      let fits =
        match cutoff with
        | None -> true
        | Some (n, d) ->
          n +. (float_of_int (!written + 1) *. t.page_io_time) <= d
      in
      if fits then begin
        write_snapshot_page t page;
        Stable_memory.table_remove t.stable ~key:page;
        incr written
      end)
    dirty;
  { pages_flushed = !written; duration = float_of_int !written *. t.page_io_time }

let dirty_pages t =
  Stable_memory.table_fold t.stable ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

let recovery_start_lsn t =
  Stable_memory.table_fold t.stable ~init:None ~f:(fun acc ~key:_ ~value ->
      match acc with
      | None -> Some value
      | Some m -> Some (min m value))

let crash t =
  (* Volatile contents are gone; make any premature read fail loudly. *)
  Array.fill t.mem 0 (Array.length t.mem) min_int;
  t.scrambled <- true

type recover_stats = {
  start_lsn : int;
  records_scanned : int;
  redo_applied : int;
  undo_applied : int;
  snapshot_pages_read : int;
  pages_rebuilt : int;
  recovery_time : float;
}

let recover t ~log =
  (* Load the snapshot, verifying each page against its recorded sum
     when faults are armed.  A corrupt page is detected (FAULT002),
     reset to its initial state, and rebuilt by replaying the *whole*
     log for its slots (FAULT009) — the snapshot copy is untrusted, so
     redo for that page cannot start at the checkpoint LSN. *)
  Array.blit t.snapshot 0 t.mem 0 (Array.length t.mem);
  t.scrambled <- false;
  let corrupt = Hashtbl.create 4 in
  if Fault_plan.is_active t.faults then
    for page = 0 to npages t - 1 do
      if page_sum t page <> t.snap_sums.(page) then begin
        Fault_plan.note_detected t.faults ~code:"FAULT002" ~site:"snapshot"
          (Printf.sprintf "snapshot page %d checksum mismatch" page);
        Hashtbl.replace corrupt page ();
        let lo = page * t.records_per_page in
        let hi = min (Array.length t.mem) (lo + t.records_per_page) in
        Array.fill t.mem lo (hi - lo) 0
      end
    done;
  let committed = Hashtbl.create 64 in
  (* Aborted transactions logged their own compensating updates before the
     Abort record (ARIES-style), so like committed transactions they are
     "terminated": redo replays them forward and undo must skip them. *)
  let terminated = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Commit { txn; _ } ->
        Hashtbl.replace committed txn ();
        Hashtbl.replace terminated txn ()
      | Log_record.Abort { txn; _ } -> Hashtbl.replace terminated txn ()
      | Log_record.Begin _ | Log_record.Update _ | Log_record.Ckpt_begin _
      | Log_record.Ckpt_end _ -> ())
    log;
  (* The scan starts at the oldest of (a) the dirty-page table's minimum
     first-update LSN (§5.5: "the oldest entry in the table determines the
     point in the log from which recovery should commence") and (b) the
     first record of any transaction that never terminated (the
     active-transaction low-water mark, needed for undo). *)
  let table_start =
    match recovery_start_lsn t with Some l -> l | None -> max_int
  in
  let undo_start =
    List.fold_left
      (fun acc r ->
        match Log_record.txn r with
        | Some tx when not (Hashtbl.mem terminated tx) ->
          min acc (Log_record.lsn r)
        | Some _ | None -> acc)
      max_int log
  in
  let scan_start = min table_start undo_start in
  let scanned = ref 0 in
  let redo = ref 0 in
  let scan_bytes = ref 0 in
  (* Redo phase: reapply every update from the recovery start point, plus
     every update (any LSN) touching a page being rebuilt. *)
  List.iter
    (fun r ->
      let in_scan = Log_record.lsn r >= scan_start in
      let rebuilds =
        (not in_scan)
        && Hashtbl.length corrupt > 0
        &&
        match r with
        | Log_record.Update { slot; _ } ->
          Hashtbl.mem corrupt (page_of t slot)
        | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> false
      in
      if in_scan || rebuilds then begin
        incr scanned;
        scan_bytes :=
          !scan_bytes + Log_record.size_bytes ~compressed:false r;
        match r with
        | Log_record.Update { slot; new_value; _ } ->
          t.mem.(slot) <- new_value;
          incr redo
        | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> ()
      end)
    log;
  (* Undo phase: reverse updates of transactions that never terminated,
     newest first (all such records are >= scan_start by construction). *)
  let undo = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Update { txn; slot; old_value; _ }
        when not (Hashtbl.mem terminated txn) ->
        t.mem.(slot) <- old_value;
        incr undo
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _
        -> ())
    (List.rev log);
  (* The rebuilt pages are now good: re-checkpoint them so the snapshot
     and its sums are consistent again. *)
  let rebuilt = Hashtbl.length corrupt in
  Hashtbl.iter
    (fun page () ->
      write_snapshot_page t page;
      Fault_plan.note_repaired t.faults ~code:"FAULT009" ~site:"snapshot"
        (Printf.sprintf "snapshot page %d rebuilt from log replay" page))
    corrupt;
  Stable_memory.table_clear t.stable;
  (* Log reading cost: sequential pages of ~10 ms over the scanned
     suffix. *)
  let log_pages = (!scan_bytes + 4095) / 4096 in
  {
    start_lsn = (if scan_start = max_int then 0 else scan_start);
    records_scanned = !scanned;
    redo_applied = !redo;
    undo_applied = !undo;
    snapshot_pages_read = npages t;
    pages_rebuilt = rebuilt;
    recovery_time =
      float_of_int (npages t + log_pages + rebuilt) *. t.page_io_time;
  }

let balances t =
  if t.scrambled then
    invalid_arg "Kv_store.balances: memory lost in crash (recover first)";
  Array.copy t.mem
