module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

type t = {
  page_io_time : float;
  records_per_page : int;
  recorder : Schedule.recorder option;
  mem : int array; (* volatile *)
  mem_lsn : int array; (* volatile: per-page max LSN applied to mem *)
  snapshot : int array; (* "disk": survives crash *)
  snap_sums : int array; (* per-page CRC of the intended snapshot page *)
  snap_lsn : int array;
  (* "disk" metadata: per-page redo high-water of the stored image.  A
     log record with lsn <= snap_lsn.(p) touching page p is already in
     the snapshot, so redo must skip it — the gate that makes replaying
     non-idempotent command records safe. *)
  resolved_lsn : int array;
  (* "disk" metadata: per-page fully-resolved floor, advanced only by
     the end-of-recovery write-back.  Records at or below it are both
     redone (winners) and undone (losers) in the stored image, so a
     recovery that crashes and restarts never double-applies either
     phase. *)
  stable : Stable_memory.t; (* dirty-page table host *)
  faults : Fault_plan.t;
  mutable scrambled : bool;
}

let npages_of ~nrecords ~records_per_page =
  (nrecords + records_per_page - 1) / records_per_page

let page_sum t page =
  let lo = page * t.records_per_page in
  let hi = min (Array.length t.snapshot) (lo + t.records_per_page) in
  Mmdb_util.Checksum.crc32_ints t.snapshot ~pos:lo ~len:(hi - lo)

let create ?(page_io_time = 10e-3) ?faults ?recorder ~nrecords
    ~records_per_page ~stable () =
  if nrecords <= 0 then invalid_arg "Kv_store.create: nrecords <= 0";
  if records_per_page <= 0 then
    invalid_arg "Kv_store.create: records_per_page <= 0";
  let npages = npages_of ~nrecords ~records_per_page in
  let t =
    {
      page_io_time;
      records_per_page;
      recorder;
      mem = Array.make nrecords 0;
      (* min_int = "minus infinity": no record has touched the page *)
      mem_lsn = Array.make npages min_int;
      snapshot = Array.make nrecords 0;
      snap_sums = Array.make npages 0;
      snap_lsn = Array.make npages min_int;
      resolved_lsn = Array.make npages min_int;
      stable;
      faults = (match faults with Some f -> f | None -> Fault_plan.none ());
      scrambled = false;
    }
  in
  for p = 0 to Array.length t.snap_sums - 1 do
    t.snap_sums.(p) <- page_sum t p
  done;
  t

let nrecords t = Array.length t.mem

let npages t =
  npages_of ~nrecords:(Array.length t.mem)
    ~records_per_page:t.records_per_page

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.mem then
    invalid_arg (Printf.sprintf "Kv_store: slot %d out of range" slot)

let get ?txn ?(domain = 0) t slot =
  check_slot t slot;
  if t.scrambled then
    invalid_arg "Kv_store.get: memory lost in crash (recover first)";
  (match txn with
  | Some txn -> Schedule.emit t.recorder ~key:slot ~domain ~txn Schedule.Read
  | None -> ());
  t.mem.(slot)

(* Degraded read-only service: read the last checkpoint image directly.
   The snapshot lives on the simulated disk and survives a crash, so
   these reads stay available while recovery replay is in flight —
   values are stale as of the last completed checkpoint sweep. *)
let snapshot_read t slot =
  check_slot t slot;
  t.snapshot.(slot)

let snapshot_balances t = Array.copy t.snapshot

let page_of t slot = slot / t.records_per_page

let apply_update ?txn ?(domain = 0) t ~lsn ~slot ~value =
  check_slot t slot;
  t.mem.(slot) <- value;
  (match txn with
  | Some txn ->
    Schedule.emit t.recorder ~key:slot ~lsn ~domain ~txn Schedule.Write
  | None -> ());
  let page = page_of t slot in
  if lsn > t.mem_lsn.(page) then t.mem_lsn.(page) <- lsn;
  match Stable_memory.table_get t.stable ~key:page with
  | Some _ -> () (* already dirty; first-LSN already recorded *)
  | None -> Stable_memory.table_put t.stable ~key:page ~value:lsn

type checkpoint_stats = { pages_flushed : int; duration : float }

(* Write one dirty page to the snapshot, recording the checksum of the
   intended image.  A rule at the Snapshot site can rot the stored page
   (bit flip at rest): the recorded sum then disagrees with the stored
   data, which is how recovery detects the damage. *)
let write_snapshot_page t page =
  let lo = page * t.records_per_page in
  let hi = min (Array.length t.mem) (lo + t.records_per_page) in
  Array.blit t.mem lo t.snapshot lo (hi - lo);
  t.snap_sums.(page) <-
    Mmdb_util.Checksum.crc32_ints t.mem ~pos:lo ~len:(hi - lo);
  t.snap_lsn.(page) <- t.mem_lsn.(page);
  if Fault_plan.is_active t.faults then begin
    match Fault_plan.draw t.faults Fault.Snapshot with
    | Some (Fault.Bit_flip_rest | Fault.Bit_flip_read) ->
      let slot = lo + Fault_plan.rand_int t.faults (hi - lo) in
      let bit = Fault_plan.rand_int t.faults 31 in
      t.snapshot.(slot) <- t.snapshot.(slot) lxor (1 lsl bit);
      Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"snapshot"
        (Printf.sprintf "snapshot page %d slot %d bit %d flipped at rest"
           page slot bit)
    | Some (Fault.Torn_write | Fault.Io_transient _ | Fault.Battery_droop _)
    | None -> ()
  end

(* Fuzzy checkpoint.  Pages are swept in sorted order (deterministic
   across OCaml versions; Hashtbl iteration order is not).  When [now]
   and [deadline] are given, the sweep is cut short once the next page
   write would finish past the deadline — a crash mid-checkpoint.  Pages
   not reached keep their dirty-table entries, so redo still covers
   them. *)
let checkpoint ?now ?deadline t =
  let dirty =
    Stable_memory.table_fold t.stable ~init:[] ~f:(fun acc ~key ~value ->
        ignore value;
        key :: acc)
    |> List.sort compare
  in
  let written = ref 0 in
  let cutoff =
    match (now, deadline) with
    | Some n, Some d -> Some (n, d)
    | (Some _ | None), (Some _ | None) -> None
  in
  List.iter
    (fun page ->
      let fits =
        match cutoff with
        | None -> true
        | Some (n, d) ->
          n +. (float_of_int (!written + 1) *. t.page_io_time) <= d
      in
      if fits then begin
        write_snapshot_page t page;
        Stable_memory.table_remove t.stable ~key:page;
        incr written
      end)
    dirty;
  { pages_flushed = !written; duration = float_of_int !written *. t.page_io_time }

let dirty_pages t =
  Stable_memory.table_fold t.stable ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

let recovery_start_lsn t =
  Stable_memory.table_fold t.stable ~init:None ~f:(fun acc ~key:_ ~value ->
      match acc with
      | None -> Some value
      | Some m -> Some (min m value))

let crash t =
  (* Volatile contents are gone; make any premature read fail loudly. *)
  Array.fill t.mem 0 (Array.length t.mem) min_int;
  Array.fill t.mem_lsn 0 (Array.length t.mem_lsn) min_int;
  t.scrambled <- true

type recover_stats = {
  start_lsn : int;
  records_scanned : int;
  redo_applied : int;
  undo_applied : int;
  snapshot_pages_read : int;
  pages_rebuilt : int;
  recovery_time : float;
  workers : int;
  local_value_ops : int;
  local_command_ops : int;
  barrier_ops : int;
  barriers : int;
  pages_written_back : int;
  log_bytes_scanned : int;
  used_domains : bool;
}

exception Crashed_during_recovery

let recover ?(workers = 1) ?(use_domains = false) ?crash_after_steps
    ?replay_recorder t ~log =
  if workers <= 0 then invalid_arg "Kv_store.recover: workers <= 0";
  (* Load the snapshot, verifying each page against its recorded sum
     when faults are armed.  A corrupt page is detected (FAULT002),
     reset to its initial state, and rebuilt by replaying the *whole*
     log for its slots (FAULT009) — the snapshot copy is untrusted, so
     redo for that page cannot start at the checkpoint LSN. *)
  Array.blit t.snapshot 0 t.mem 0 (Array.length t.mem);
  Array.blit t.snap_lsn 0 t.mem_lsn 0 (Array.length t.mem_lsn);
  t.scrambled <- false;
  let corrupt = Hashtbl.create 4 in
  if Fault_plan.is_active t.faults then
    for page = 0 to npages t - 1 do
      if page_sum t page <> t.snap_sums.(page) then begin
        Fault_plan.note_detected t.faults ~code:"FAULT002" ~site:"snapshot"
          (Printf.sprintf "snapshot page %d checksum mismatch" page);
        Hashtbl.replace corrupt page ();
        let lo = page * t.records_per_page in
        let hi = min (Array.length t.mem) (lo + t.records_per_page) in
        Array.fill t.mem lo (hi - lo) 0;
        t.mem_lsn.(page) <- min_int
      end
    done;
  (* Snapshot-time replay gates.  Redo applies a record to a page only
     above the page's snapshot high-water (so non-idempotent command
     deltas are never double-applied); undo reverses a loser's record
     only above the page's resolved floor (so a recovery that already
     wrote the page back — then crashed and restarted — does not undo
     it twice).  A corrupt page loses both floors: its slots rebuild
     from the whole log. *)
  let redo_gate = Array.copy t.snap_lsn in
  let undo_gate = Array.copy t.resolved_lsn in
  Hashtbl.iter
    (fun page () ->
      redo_gate.(page) <- min_int;
      undo_gate.(page) <- min_int)
    corrupt;
  let committed = Hashtbl.create 64 in
  (* Aborted transactions logged their own compensating updates before the
     Abort record (ARIES-style), so like committed transactions they are
     "terminated": redo replays them forward and undo must skip them. *)
  let terminated = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Commit { txn; _ } ->
        Hashtbl.replace committed txn ();
        Hashtbl.replace terminated txn ()
      | Log_record.Abort { txn; _ } -> Hashtbl.replace terminated txn ()
      | Log_record.Begin _ | Log_record.Update _ | Log_record.Command _
      | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> ())
    log;
  (* The scan starts at the oldest of (a) the dirty-page table's minimum
     first-update LSN (§5.5: "the oldest entry in the table determines the
     point in the log from which recovery should commence") and (b) the
     first record of any transaction that never terminated (the
     active-transaction low-water mark, needed for undo). *)
  let table_start =
    match recovery_start_lsn t with Some l -> l | None -> max_int
  in
  let undo_start =
    List.fold_left
      (fun acc r ->
        match Log_record.txn r with
        | Some tx when not (Hashtbl.mem terminated tx) ->
          min acc (Log_record.lsn r)
        | Some _ | None -> acc)
      max_int log
  in
  let scan_start = min table_start undo_start in
  (* Unified progress counter for restart-crash injection: every redo
     apply, undo apply, and write-back page write is one step.  Nothing
     durable changes before the write-back phase, so a crash at any
     step leaves a state the next recovery handles. *)
  let steps = ref 0 in
  let step () =
    incr steps;
    match crash_after_steps with
    | Some n when !steps >= n -> raise Crashed_during_recovery
    | Some _ | None -> ()
  in
  let scanned = ref 0 in
  let scan_bytes = ref 0 in
  let value_ops = ref 0 in
  let cmd_local = ref 0 in
  let cmd_barrier = ref 0 in
  let barriers = ref 0 in
  (* page -> max LSN applied by this recovery (write-back worklist) *)
  let touched = Hashtbl.create 64 in
  let touch page lsn =
    match Hashtbl.find_opt touched page with
    | Some m when m >= lsn -> ()
    | Some _ | None -> Hashtbl.replace touched page lsn
  in
  let partition_of slot = page_of t slot mod workers in
  (* Redo worklist: every eligible update from the recovery start point
     (plus any-LSN records touching a page being rebuilt), partitioned
     by page for the replay engine.  Eligibility is judged against the
     snapshot-time gates captured above — the arrays themselves move
     during replay. *)
  let rev_items = ref [] in
  List.iter
    (fun r ->
      let in_scan = Log_record.lsn r >= scan_start in
      let rebuilds =
        (not in_scan)
        && Hashtbl.length corrupt > 0
        &&
        match r with
        | Log_record.Update { slot; _ } ->
          Hashtbl.mem corrupt (page_of t slot)
        | Log_record.Command { ops; _ } ->
          List.exists (fun (slot, _) -> Hashtbl.mem corrupt (page_of t slot))
            ops
        | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> false
      in
      if in_scan || rebuilds then begin
        incr scanned;
        scan_bytes :=
          !scan_bytes + Log_record.size_bytes ~compressed:false r;
        match r with
        | Log_record.Update { txn; lsn; slot; new_value; _ } ->
          if lsn > redo_gate.(page_of t slot) then begin
            incr value_ops;
            touch (page_of t slot) lsn;
            rev_items :=
              Replay.Op { txn; lsn; slot; action = Replay.Set new_value }
              :: !rev_items
          end
        | Log_record.Command { txn; lsn; ops } -> (
          let eligible =
            List.filter (fun (slot, _) -> lsn > redo_gate.(page_of t slot))
              ops
          in
          if eligible <> [] then begin
            List.iter (fun (slot, _) -> touch (page_of t slot) lsn) eligible;
            let parts =
              List.sort_uniq compare
                (List.map (fun (slot, _) -> partition_of slot) eligible)
            in
            match parts with
            | [] | [ _ ] ->
              (* perf_lint: command op lists are <= max_command_ops (255),
                 in practice updates_per_txn (<10) *)
              cmd_local := !cmd_local + List.length eligible;
              List.iter
                (fun (slot, delta) ->
                  rev_items :=
                    Replay.Op { txn; lsn; slot; action = Replay.Add delta }
                    :: !rev_items)
                eligible
            | _ :: _ :: _ ->
              incr barriers;
              (* perf_lint: command op lists are <= max_command_ops (255),
                 in practice updates_per_txn (<10) *)
              cmd_barrier := !cmd_barrier + List.length eligible;
              rev_items :=
                Replay.Barrier { txn; lsn; ops = eligible } :: !rev_items
          end)
        | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> ()
      end)
    log;
  let items = List.rev !rev_items in
  let on_step =
    match crash_after_steps with Some _ -> Some step | None -> None
  in
  let rstats =
    Replay.run ?recorder:replay_recorder ~use_domains ?on_step ~workers
      ~partition_of
      ~apply:(fun ~slot action ->
        match action with
        | Replay.Set v -> t.mem.(slot) <- v
        | Replay.Add d -> t.mem.(slot) <- t.mem.(slot) + d)
      items
  in
  (* Undo phase: reverse records of transactions that never terminated,
     newest first (all such records are >= scan_start by construction),
     gated per page so a restarted recovery skips already-resolved
     work.  Serial: undo order matters and volumes are small. *)
  let undo = ref 0 in
  let emit_undo ~txn ~lsn ~slot =
    match replay_recorder with
    | None -> ()
    | Some _ ->
      Schedule.emit replay_recorder ~key:slot ~txn
        (Schedule.Grant { deps = [] });
      Schedule.emit replay_recorder ~key:slot ~lsn ~txn Schedule.Write;
      Schedule.emit replay_recorder ~key:slot ~txn Schedule.Release
  in
  List.iter
    (fun r ->
      match r with
      | Log_record.Update { txn; lsn; slot; old_value; _ }
        when not (Hashtbl.mem terminated txn) ->
        if lsn > undo_gate.(page_of t slot) then begin
          emit_undo ~txn ~lsn ~slot;
          t.mem.(slot) <- old_value;
          touch (page_of t slot) lsn;
          incr undo;
          step ()
        end
      | Log_record.Command { txn; lsn; ops }
        when not (Hashtbl.mem terminated txn) ->
        List.iter
          (fun (slot, delta) ->
            if lsn > undo_gate.(page_of t slot) then begin
              emit_undo ~txn ~lsn ~slot;
              t.mem.(slot) <- t.mem.(slot) - delta;
              touch (page_of t slot) lsn;
              incr undo;
              step ()
            end)
          ops
      | Log_record.Update _ | Log_record.Command _ | Log_record.Begin _
      | Log_record.Commit _ | Log_record.Abort _ | Log_record.Ckpt_begin _
      | Log_record.Ckpt_end _ -> ())
    (List.rev log);
  (* Raise the in-memory high-waters to what replay actually applied
     (undo never exceeds them: a loser's record was either redone just
     now or already inside the snapshot image). *)
  Hashtbl.iter
    (fun page lsn -> if lsn > t.mem_lsn.(page) then t.mem_lsn.(page) <- lsn)
    touched;
  Hashtbl.iter (fun page () -> touch page min_int) corrupt;
  (* Write-back: re-checkpoint every page recovery touched, advancing
     both durable floors, so (a) a crash immediately after recovery
     loses nothing, and (b) a crash *during* this loop leaves each
     written page self-describing — the next recovery skips exactly the
     records it already holds.  Sorted order keeps the step numbering
     deterministic. *)
  let rebuilt = Hashtbl.length corrupt in
  let wb_pages =
    Hashtbl.fold (fun page _ acc -> page :: acc) touched []
    |> List.sort compare
  in
  List.iter
    (fun page ->
      write_snapshot_page t page;
      t.resolved_lsn.(page) <- t.mem_lsn.(page);
      if Hashtbl.mem corrupt page then
        Fault_plan.note_repaired t.faults ~code:"FAULT009" ~site:"snapshot"
          (Printf.sprintf "snapshot page %d rebuilt from log replay" page);
      step ())
    wb_pages;
  Stable_memory.table_clear t.stable;
  let pages_written_back = List.length wb_pages in
  let terms =
    Mmdb_model.Recovery_model.replay_terms ~page_io_time:t.page_io_time
      ~log_page_bytes:4096 ~workers ~snapshot_pages:(npages t)
      ~log_bytes:!scan_bytes ~local_value_ops:!value_ops
      ~local_command_ops:!cmd_local ~serial_command_ops:!cmd_barrier
      ~undo_ops:!undo ~writeback_pages:pages_written_back
  in
  {
    start_lsn = (if scan_start = max_int then 0 else scan_start);
    records_scanned = !scanned;
    redo_applied = !value_ops + !cmd_local + !cmd_barrier;
    undo_applied = !undo;
    snapshot_pages_read = npages t;
    pages_rebuilt = rebuilt;
    recovery_time = Mmdb_model.Recovery_model.replay_seconds terms;
    workers;
    local_value_ops = !value_ops;
    local_command_ops = !cmd_local;
    barrier_ops = !cmd_barrier;
    barriers = !barriers;
    pages_written_back;
    log_bytes_scanned = !scan_bytes;
    used_domains = rstats.Replay.used_domains;
  }

let balances t =
  if t.scrambled then
    invalid_arg "Kv_store.balances: memory lost in crash (recover first)";
  Array.copy t.mem
