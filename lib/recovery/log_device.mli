(** One sequential log device.

    A log page write occupies the device for [page_write_time] (the
    paper's 10 ms for a 4096-byte page with no seek).  Writes queue:
    a write issued at time [t] starts at [max t busy_until] and the device
    is busy until it completes.  Completed pages are durable; a crash at
    time [T] preserves exactly the pages whose write completed by [T]. *)

type t

val create : ?page_write_time:float -> ?page_bytes:int ->
  ?faults:Mmdb_fault.Fault_plan.t ->
  ?breaker:Mmdb_overload.Overload.Breaker.t ->
  clock:Mmdb_storage.Sim_clock.t -> unit -> t
(** Defaults: 10 ms, 4096 bytes, no faults.  With [faults] armed, every
    page also stores a physical image (checksummed per record, see
    {!Log_record.encode}) and write/read faults fire at the device.
    An attached [breaker] is fed device health (injected transients are
    failures, clean faulted-path writes successes) but never blocks the
    device itself — shedding is the service layer's decision. *)

val page_bytes : t -> int

val write_page : t -> ?protected:bool -> ?compressed:bool -> at:float ->
  Log_record.t list -> bytes:int -> float
(** [write_page d ~at records ~bytes] schedules a page write issued at
    simulated time [at]; returns the completion time.  [bytes] is the
    payload size (tracked for the log-size experiments; must not exceed
    the page size).  [protected] marks a battery-backed write, durable
    from issue rather than completion (the stable-drain simplification
    documented in DESIGN.md); [compressed] selects the record encoding
    used for the page image.
    @raise Mmdb_fault.Fault.Io_error (FAULT004) when an injected
    transient error outlives the retry budget.
    @raise Mmdb_overload.Overload.Shed (OVLD008) when a per-transaction
    retry budget installed on the armed plan runs dry mid-ride. *)

val busy_until : t -> float
(** Completion time of the last scheduled write (0 if idle since start). *)

val pages_written : t -> int
val bytes_written : t -> int

val durable_records : t -> at:float -> Log_record.t list
(** All records on pages whose writes completed by [at], in write order —
    what a crash at [at] leaves on this device. *)

val durable_pages : t -> at:float -> (float * Log_record.t list) list
(** Durable pages with their completion timestamps, oldest first — the
    fragments that {!Log_merge} recombines per Section 5.2. *)

val all_records : t -> Log_record.t list
(** Every record ever scheduled (test helper). *)

val page_spans : t -> (float * float) list
(** [(start, completion)] of every page written, oldest first — the
    torture harness derives mid-page-write crash points from these. *)

val surviving_pages : t -> at:float -> (float * Log_record.t list) list
(** What recovery actually reads after a crash at [at].  Without an
    armed fault plan this is exactly {!durable_pages}.  With faults:
    durable page images are decoded record by record (transient read
    flips are detected by CRC and repaired by reread; at-rest damage
    truncates the page at its last valid record, FAULT011), and the page
    {e in flight} at the crash survives as a checksum-valid prefix when
    a torn-write rule is armed (FAULT001/FAULT008) instead of vanishing
    wholesale. *)
