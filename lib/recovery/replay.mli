(** Partitioned parallel log replay (redo engine).

    The merged redo stream is split across [workers] partitions by page
    ([partition_of slot]); each partition replays its own ops in log
    order, so per-slot ordering is preserved no matter how partitions
    interleave.  Cross-partition command records cannot be split — a
    {!item.Barrier} is enqueued in {e every} partition it touches and is
    applied exactly once, when it is at the head of all of them, by the
    lowest-numbered touched partition.  Because barriers appear in LSN
    order in every queue this rendezvous cannot deadlock.

    Two execution modes produce the identical final state:

    - {b simulated} (default): a deterministic round-robin scheduler
      interleaves partitions one op at a time on the calling domain.
      This mode can stamp a {!Schedule} recorder (each applied op emits
      Grant/Write/Release under its slot key, stamped with its
      partition as the acting domain, so {!Race_check} can audit the
      interleaving) and can crash mid-replay via [on_step].
    - {b domains} ([use_domains:true] on OCaml >= 5): the stream is cut
      into epochs at each barrier; within an epoch the partitions run
      as real {!Domain_runner} workers over disjoint pages, then the
      barrier command is applied serially.  Recording and crash
      injection are rejected in this mode (they would be
      nondeterministic), so passing either forces simulated mode. *)

type action =
  | Set of int  (** value record: store the after-image *)
  | Add of int  (** command record: re-execute the delta *)

type item =
  | Op of { txn : int; lsn : int; slot : int; action : action }
      (** partition-local work: a value-record update, or one op of a
          command record whose eligible ops all land in one partition *)
  | Barrier of { txn : int; lsn : int; ops : (int * int) list }
      (** a command record whose eligible [(slot, delta)] ops span
          partitions; applied serially at the rendezvous *)

exception Rendezvous_deadlock
(** No blocked barrier can rendezvous.  Unreachable for queues the
    compiler builds (barriers appear in LSN order in every touched
    queue), kept as a typed defensive check so a broken invariant
    surfaces classifiably instead of as a stringly [Failure]. *)

type stats = {
  workers : int;  (** partition count actually used (>= 1) *)
  local_ops : int;  (** ops applied inside a single partition *)
  barrier_ops : int;  (** ops applied serially at barriers *)
  barriers : int;  (** cross-partition commands encountered *)
  used_domains : bool;  (** true iff real domains ran the epochs *)
}

val run :
  ?recorder:Schedule.recorder ->
  ?use_domains:bool ->
  ?on_step:(unit -> unit) ->
  workers:int ->
  partition_of:(int -> int) ->
  apply:(slot:int -> action -> unit) ->
  item list ->
  stats
(** [run ~workers ~partition_of ~apply items] replays [items] (already
    in log order) and returns what it did.  [apply] must only mutate
    state owned by the slot's partition (in domains mode it runs
    concurrently; barrier ops are always applied serially between
    epochs).  [on_step] is invoked after every applied op — the hook
    the store uses to count progress and crash mid-recovery; supplying
    it, or [recorder], forces the simulated scheduler.
    @raise Rendezvous_deadlock if the barrier invariant is broken
    (defensive; unreachable for compiled queues). *)
