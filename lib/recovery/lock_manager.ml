type lock = {
  mutable lock_holder : int option;
  lock_waiters : int Queue.t;
  mutable lock_precommitted : int list; (* newest first *)
}

type txn_state = {
  mutable held : int list; (* keys *)
  mutable waiting_for : int option;
  mutable wait_deadline : float option;
      (* absolute expiry for the current wait: unbounded waits turn
         convoy deadlocks into typed timeouts (OVLD004) *)
  mutable phase : [ `Active | `Precommitted | `Done ];
}

type grant = { granted_txn : int; dependencies : int list }

type t = {
  locks : (int, lock) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
  recorder : Schedule.recorder option;
  domain_of : int -> int;
}

let create ?recorder ?(domain_of = fun _ -> 0) () =
  { locks = Hashtbl.create 64; txns = Hashtbl.create 64; recorder; domain_of }

let emit t ?key ~txn kind =
  Schedule.emit t.recorder ?key ~domain:(t.domain_of txn) ~txn kind

let get_lock t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
    let l =
      {
        lock_holder = None;
        lock_waiters = Queue.create ();
        lock_precommitted = [];
      }
    in
    Hashtbl.replace t.locks key l;
    l

let get_txn t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some s -> s
  | None ->
    let s =
      { held = []; waiting_for = None; wait_deadline = None; phase = `Active }
    in
    Hashtbl.replace t.txns txn s;
    s

let grant_to t lock key txn =
  let st = get_txn t txn in
  lock.lock_holder <- Some txn;
  st.held <- key :: st.held;
  st.waiting_for <- None;
  st.wait_deadline <- None;
  { granted_txn = txn; dependencies = lock.lock_precommitted }

let acquire ?deadline t ~txn ~key =
  let st = get_txn t txn in
  (* The paper's §5.2 invariant: a pre-committed transaction has released
     every lock and only awaits durability — it never grows its lock set
     again (and a finished transaction id is dead). *)
  (match st.phase with
  | `Active -> ()
  | `Precommitted ->
    invalid_arg
      (Printf.sprintf
         "Lock_manager.acquire: txn %d is pre-committed and cannot acquire \
          locks (pre-commit releases all locks for good)"
         txn)
  | `Done ->
    invalid_arg
      (Printf.sprintf
         "Lock_manager.acquire: txn %d already finished (committed or \
          aborted)"
         txn));
  (match st.waiting_for with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Lock_manager.acquire: txn %d already waits for %d" txn
         k)
  | None -> ());
  emit t ~key ~txn Schedule.Acquire;
  let lock = get_lock t key in
  match lock.lock_holder with
  | Some h when h = txn ->
    emit t ~key ~txn (Schedule.Grant { deps = [] });
    Some { granted_txn = txn; dependencies = [] }
  | Some holder ->
    Queue.push txn lock.lock_waiters;
    st.waiting_for <- Some key;
    st.wait_deadline <-
      Option.map Mmdb_overload.Overload.Deadline.expires deadline;
    emit t ~key ~txn (Schedule.Wait { holder });
    None
  | None ->
    let g = grant_to t lock key txn in
    emit t ~key ~txn (Schedule.Grant { deps = g.dependencies });
    Some g

(* Wake the next waiter of a now-free lock, if any. *)
let wake_next t key lock =
  match Queue.pop lock.lock_waiters with
  | exception Queue.Empty -> []
  | next ->
    let g = grant_to t lock key next in
    emit t ~key ~txn:next (Schedule.Wake { deps = g.dependencies });
    [ g ]

let precommit t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Active -> ()
  | `Precommitted | `Done ->
    invalid_arg "Lock_manager.precommit: transaction not active");
  st.phase <- `Precommitted;
  emit t ~txn Schedule.Precommit;
  let grants =
    List.concat_map
      (fun key ->
        let lock = get_lock t key in
        assert (lock.lock_holder = Some txn);
        lock.lock_holder <- None;
        lock.lock_precommitted <- txn :: lock.lock_precommitted;
        emit t ~key ~txn Schedule.Release;
        wake_next t key lock)
      st.held
  in
  grants

let release_abort t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Active -> ()
  | `Precommitted | `Done ->
    invalid_arg
      "Lock_manager.release_abort: pre-committed transactions never abort");
  emit t ~txn Schedule.Abort;
  (* Remove any wait registration. *)
  (match st.waiting_for with
  | Some key ->
    let lock = get_lock t key in
    let remaining = Queue.create () in
    Queue.iter (fun w -> if w <> txn then Queue.push w remaining) lock.lock_waiters;
    Queue.clear lock.lock_waiters;
    Queue.transfer remaining lock.lock_waiters;
    st.waiting_for <- None;
    st.wait_deadline <- None
  | None -> ());
  let grants =
    List.concat_map
      (fun key ->
        let lock = get_lock t key in
        assert (lock.lock_holder = Some txn);
        lock.lock_holder <- None;
        emit t ~key ~txn Schedule.Release;
        wake_next t key lock)
      st.held
  in
  st.held <- [];
  st.phase <- `Done;
  grants

let finalize t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Precommitted -> ()
  | `Active | `Done ->
    invalid_arg "Lock_manager.finalize: transaction not pre-committed");
  List.iter
    (fun key ->
      let lock = get_lock t key in
      lock.lock_precommitted <-
        List.filter (fun x -> x <> txn) lock.lock_precommitted)
    st.held;
  st.held <- [];
  st.phase <- `Done

(* Sweep every waiter whose deadline passed: remove its queue
   registration and return the transaction ids (ascending, for
   determinism).  The caller decides the fate of each — typically
   {!release_abort} plus a typed OVLD004 rejection — so the abort flows
   through the same audited path as any other abort. *)
let expire_waiters t ~now =
  let expired =
    Hashtbl.fold
      (fun txn st acc ->
        match (st.waiting_for, st.wait_deadline) with
        | Some key, Some d when now > d -> (txn, key, st) :: acc
        | (Some _ | None), _ -> acc)
      t.txns []
    |> List.sort compare
  in
  List.map
    (fun (txn, key, st) ->
      let lock = get_lock t key in
      let remaining = Queue.create () in
      Queue.iter
        (fun w -> if w <> txn then Queue.push w remaining)
        lock.lock_waiters;
      Queue.clear lock.lock_waiters;
      Queue.transfer remaining lock.lock_waiters;
      st.waiting_for <- None;
      st.wait_deadline <- None;
      txn)
    expired

let holder t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l.lock_holder
  | None -> None

let waiters t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> List.of_seq (Queue.to_seq l.lock_waiters)
  | None -> []

let precommitted t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> List.rev l.lock_precommitted
  | None -> []

let locks_held t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> List.rev st.held
  | None -> []
