(** End-to-end crash/recovery driver (Sections 5.3-5.5).

    Runs a banking workload through the full stack — lock manager,
    memory-resident store, WAL strategy, optional periodic fuzzy
    checkpoints — crashes at a chosen point, recovers from the disk
    snapshot plus the durable log, and verifies the recovered state
    against a golden replay of exactly the durably-committed
    transactions. *)

type config = {
  nrecords : int;
  records_per_page : int;
  updates_per_txn : int;
  n_txns : int;
  checkpoint_every : int option;  (** transactions between checkpoints *)
  strategy : Wal.strategy;
  crash_after : int option;
      (** crash right after this many submissions (the open log buffer is
          lost); [None] = run to completion, flush, then crash *)
  seed : int;
}

val default_config : config
(** 500 accounts, 20 records/page, 6 updates/txn, 2000 transactions,
    checkpoint every 500, group commit, crash at the end, seed 7. *)

type outcome = {
  durably_committed : int;
      (** transactions whose commit records survived the crash *)
  submitted : int;
  consistent : bool;
      (** recovered state equals the golden replay of committed txns *)
  money_conserved : bool;  (** balances still sum to zero *)
  recover_stats : Kv_store.recover_stats;
  checkpoints_taken : int;
  checkpoint_pages : int;
  log_pages : int;
  log_disk_bytes : int;
  log_records : Log_record.t list;
      (** everything submitted to the WAL, in order (audit input) *)
  durable_log : Log_record.t list;
      (** what survived the crash — a possibly truncated prefix *)
}

val run : config -> outcome
