(** End-to-end crash/recovery driver (Sections 5.3-5.5).

    Runs a banking workload through the full stack — lock manager,
    memory-resident store, WAL strategy, optional periodic fuzzy
    checkpoints — crashes at a chosen point, recovers from the disk
    snapshot plus the durable log, and verifies the recovered state
    against a golden replay of exactly the durably-committed
    transactions.

    Crashes land at a transaction boundary ([crash_after]) or at an
    arbitrary simulated instant ([crash_at]) — including mid-drain,
    mid-log-page-write, and mid-checkpoint.  An armed fault plan
    additionally models torn writes, bit flips, transient I/O errors,
    snapshot rot, and stable-memory battery droop; the outcome then
    reports the fault tally and a durability audit of acknowledged
    commits. *)

type logging_mode =
  | Value_logging  (** after-image update records: big log, cheap replay *)
  | Command_logging
      (** one operation record per transaction: ~7x smaller log, replay
          re-executes the deltas (50x slower per op, serially when the
          transaction spans replay partitions) *)
  | Adaptive_logging
      (** per-transaction choice by
          {!Mmdb_model.Recovery_model.adaptive_command_wins}:
          cross-partition transactions flip to value records as the
          worker count grows *)

type replay_config = {
  workers : int;  (** replay partitions (>= 1) for {!Kv_store.recover} *)
  use_domains : bool;
      (** run partitions as real [Domain.spawn] workers (OCaml 5;
          ignored when [crash_steps] or [record_replay] needs the
          deterministic scheduler) *)
  logging : logging_mode;
  crash_steps : int option;
      (** crash recovery itself after this many replay steps, then
          restart it once from the surviving durable state (FAULT012) *)
  record_replay : bool;
      (** capture the replay's domain-stamped Grant/Write/Release trace
          in [replay_events] for {!Mmdb_verify.Race_check} *)
  serve_stale : bool;
      (** degraded read-only service: while replay is in flight, model a
          1 kHz Zipfian read stream answered from the surviving
          checkpoint image and audit its staleness in
          [stale_reads_served] / [stale_reads_current] *)
}

val default_replay : replay_config
(** 1 worker, simulated scheduler, value logging, no mid-recovery
    crash, no trace, no stale service. *)

type config = {
  nrecords : int;
  records_per_page : int;
  updates_per_txn : int;
  n_txns : int;
  checkpoint_every : int option;  (** transactions between checkpoints *)
  strategy : Wal.strategy;
  crash_after : int option;
      (** crash right after this many submissions (the open log buffer is
          lost); [None] = run to completion, flush, then crash *)
  crash_at : float option;
      (** crash at this absolute simulated time, taking precedence over
          [crash_after]'s quiesce behaviour: device writes still in
          flight are lost (or torn, under a torn-write rule), a
          checkpoint whose log flush outlives the crash never writes
          data pages (WAL rule), and an in-progress sweep is cut short
          at the page boundary *)
  faults : Mmdb_fault.Fault_plan.rule list;
      (** fault-injection rules, armed with a plan seeded by [seed] *)
  seed : int;
  replay : replay_config;
}

val default_config : config
(** 500 accounts, 20 records/page, 6 updates/txn, 2000 transactions,
    checkpoint every 500, group commit, crash at the end, no faults,
    seed 7, {!default_replay}. *)

type outcome = {
  durably_committed : int;
      (** transactions whose commit records survived the crash *)
  submitted : int;
  acked_committed : int;
      (** transactions acknowledged committed before the crash (commit
          ticket resolved at or before crash time) *)
  acked_lost : int;
      (** acknowledged transactions missing after recovery — nonzero
          only under stable-memory battery droop (FAULT007) *)
  durability_ok : bool;  (** [acked_lost = 0] *)
  consistent : bool;
      (** recovered state equals the golden replay of committed txns *)
  money_conserved : bool;  (** balances still sum to zero *)
  recover_stats : Kv_store.recover_stats;
  recovery_attempts : int;
      (** 1, or 2 when [replay.crash_steps] fired mid-recovery and the
          restarted recovery completed *)
  command_txns : int;
      (** transactions logged as command records (logging-mode choice) *)
  replay_events : Schedule.event list;
      (** the replay schedule trace; [[]] unless [replay.record_replay] *)
  checkpoints_taken : int;
      (** completed (bracket-certified) checkpoints; a sweep cut short by
          the crash is not counted *)
  checkpoint_pages : int;
  log_pages : int;
  log_disk_bytes : int;
  log_records : Log_record.t list;
      (** everything submitted to the WAL, in order (audit input) *)
  durable_log : Log_record.t list;
      (** what survived the crash — a possibly truncated prefix *)
  page_spans : (float * float) list;
      (** (start, completion) of every log-page write — crash-point
          candidates for the torture harness *)
  fault_tally : Mmdb_fault.Fault.tally;
  fault_events : (string * int) list;
      (** noted fault events grouped by FAULT code *)
  stale_reads_served : int;
      (** reads answered from the checkpoint image during replay; 0
          unless [replay.serve_stale] *)
  stale_reads_current : int;
      (** of those, how many already equalled the recovered value —
          the staleness audit for degraded read-only mode *)
}

val run : config -> outcome
(** Drive the whole workload → crash → recover cycle described by
    [config].
    @raise Mmdb_fault.Fault.Io_error from the log or snapshot device
    when the armed fault plan exhausts the retry budget.
    @raise Kv_store.Crashed_during_recovery when [crash_after_steps]
    fires mid-replay (restart-crash testing; the driver re-runs
    recovery).
    @raise Replay.Rendezvous_deadlock defensively if the parallel-replay
    barrier invariant is ever broken. *)
