(** Real-parallelism shim for the replay engine.

    On OCaml 5 this wraps [Domain.spawn]/[Domain.join]; on OCaml 4 it
    degrades to a sequential loop (the build selects the implementation
    — see the copy rules in this directory's [dune]).  {!Replay} uses it
    only for wall-clock runs; the deterministic simulated scheduler
    never spawns domains, so tests and torture sweeps behave
    identically on both compilers. *)

val available : bool
(** [true] iff [run] executes its workers in parallel domains. *)

val run : n:int -> (int -> unit) -> unit
(** [run ~n f] executes [f 0 .. f (n-1)], in parallel domains when
    {!available} (worker 0 runs on the calling domain), sequentially in
    index order otherwise.  Returns when every worker has finished.
    The workers must touch disjoint mutable state: the shim adds no
    synchronisation beyond the final join. *)
