module U = Mmdb_util
module S = Mmdb_storage

type scheme = Locking | Versioning

type result = {
  scheme_label : string;
  events : Schedule.event list;
      (* domain-stamped version-store accesses (writers dom 0, readers
         dom 1), empty unless recording was requested *)
  writer_tps : float;
  writer_p99_latency : float;
  reader_count : int;
  snapshots_consistent : bool;
  versions_peak : int;
}

let scheme_label = function Locking -> "locking" | Versioning -> "versioning"

let run ?(seed = 83) ?(nrecords = 1000) ?(n_writers = 20_000)
    ?(reader_every = 2.0) ?(reader_duration = 1.0)
    ?(record_schedule = false) scheme =
  if reader_duration >= reader_every then
    invalid_arg "Mvcc_sim.run: reader_duration must be below reader_every";
  let rng = U.Xorshift.create seed in
  let clock = S.Sim_clock.create () in
  let wal = Wal.create ~clock Wal.Group_commit in
  let balances = Array.make nrecords 0 in
  let recorder =
    if record_schedule then
      Some (Schedule.recorder ~now:(fun () -> S.Sim_clock.now clock))
    else None
  in
  let versions = Version_store.create ?recorder ~nrecords () in
  (* Schedule stamps: all writers execute on (simulated) domain 0, all
     snapshot readers on domain 1; readers get txn ids above the writer
     id space. *)
  let reader_txn k = n_writers + k in
  let versions_peak = ref 0 in
  let txns =
    Workload.generate ~rng ~nrecords ~updates_per_txn:6 ~n:n_writers ()
  in
  (* Offered load just under the group-commit ceiling, so locking stalls
     surface as latency/backlog rather than vanishing into saturation. *)
  let inter_arrival = 1.0 /. 950.0 in
  (* Reader windows: [k*every, k*every + duration), k >= 1. *)
  let window_of t =
    let k = int_of_float (t /. reader_every) in
    if k >= 1 && t >= (float_of_int k *. reader_every)
       && t < (float_of_int k *. reader_every) +. reader_duration
    then Some k
    else None
  in
  let window_end k = (float_of_int k *. reader_every) +. reader_duration in
  (* Versioning readers do half their scan at the window start and half at
     the end — at the same snapshot timestamp — to demonstrate snapshot
     isolation under concurrent writes. *)
  let consistent = ref true in
  let readers_done = ref 0 in
  let pending_reader : (int * float * int) option ref = ref None in
  (* (window k, snapshot ts, partial sum of first half) *)
  let start_reader k ts =
    match scheme with
    | Locking ->
      (* Writers stalled for the window: read the live array directly. *)
      let sum = Array.fold_left ( + ) 0 balances in
      if sum <> 0 then consistent := false;
      incr readers_done
    | Versioning ->
      let half = nrecords / 2 in
      let partial = ref 0 in
      for slot = 0 to half - 1 do
        partial :=
          !partial
          + Version_store.read ~txn:(reader_txn k) ~domain:1 versions ~ts ~slot
      done;
      pending_reader := Some (k, ts, !partial)
  in
  let finish_reader () =
    match !pending_reader with
    | None -> ()
    | Some (k, ts, partial) ->
      let half = nrecords / 2 in
      let total = ref partial in
      for slot = half to nrecords - 1 do
        total :=
          !total
          + Version_store.read ~txn:(reader_txn k) ~domain:1 versions ~ts ~slot
      done;
      if !total <> 0 then consistent := false;
      incr readers_done;
      pending_reader := None;
      (* Reader finished: old versions up to its snapshot are garbage. *)
      ignore (Version_store.gc versions ~oldest_active_ts:ts)
  in
  let last_window_started = ref 0 in
  let advance_readers_to t =
    (* Fire window starts/ends that occur at or before [t]. *)
    let rec go () =
      let next_k = !last_window_started + 1 in
      let next_start = float_of_int next_k *. reader_every in
      let pending_end =
        match !pending_reader with
        | Some (k, _, _) -> Some (window_end k)
        | None -> None
      in
      match pending_end with
      | Some e when e <= t ->
        finish_reader ();
        go ()
      | _ ->
        if next_start <= t then begin
          last_window_started := next_k;
          (* Snapshot strictly precedes any writer arriving at the window
             boundary itself. *)
          start_reader next_k (next_start -. 1e-9);
          go ()
        end
    in
    go ()
  in
  let lsn = ref 0 in
  let next_lsn () =
    incr lsn;
    !lsn
  in
  let tickets = ref [] in
  List.iteri
    (fun i (txn : Workload.txn) ->
      let arrival = float_of_int i *. inter_arrival in
      advance_readers_to arrival;
      (* Under locking a writer arriving inside a reader window waits for
         the shared lock to drop at the window end. *)
      let effective =
        match scheme with
        | Versioning -> arrival
        | Locking -> (
          match window_of arrival with
          | Some k -> window_end k
          | None -> arrival)
      in
      (* Apply updates (at the effective time) and log. *)
      let begin_lsn = next_lsn () in
      (* Newest-first accumulation ([List.rev_map] applies left to
         right, so updates and LSNs happen in order); one final
         [List.rev] avoids the quadratic tail-append. *)
      let rev_body =
        List.rev_map
          (fun (slot, delta) ->
            let old_value = balances.(slot) in
            let new_value = old_value + delta in
            balances.(slot) <- new_value;
            (match scheme with
            | Versioning ->
              Version_store.write ~txn:txn.Workload.txn_id ~domain:0 versions
                ~ts:effective ~slot ~value:new_value
            | Locking -> ());
            Log_record.Update
              {
                txn = txn.Workload.txn_id;
                lsn = next_lsn ();
                slot;
                old_value;
                new_value;
              })
          txn.Workload.updates
      in
      versions_peak := max !versions_peak (Version_store.version_count versions);
      let records =
        Log_record.Begin { txn = txn.Workload.txn_id; lsn = begin_lsn }
        :: List.rev
             (Log_record.Commit
                { txn = txn.Workload.txn_id; lsn = next_lsn () }
             :: rev_body)
      in
      let ticket =
        Wal.commit_txn wal ~at:effective ~txn:txn.Workload.txn_id ~deps:[]
          records
      in
      tickets := (arrival, ticket) :: !tickets)
    txns;
  let done_at =
    Wal.flush wal ~at:(float_of_int (n_writers - 1) *. inter_arrival)
  in
  advance_readers_to (done_at +. reader_every);
  finish_reader ();
  let latencies = ref [] in
  let last_commit = ref 0.0 in
  List.iter
    (fun (arrival, ticket) ->
      match Wal.ticket_completion ticket with
      | Some c ->
        latencies := (c -. arrival) :: !latencies;
        last_commit := Float.max !last_commit c
      | None ->
        raise
          (Wal.Unresolved_ticket
             { sim = "Mvcc_sim"; txn = Wal.ticket_txn ticket }))
    !tickets;
  let makespan = Float.max !last_commit done_at in
  {
    scheme_label = scheme_label scheme;
    events = (match recorder with Some r -> Schedule.events r | None -> []);
    writer_tps = float_of_int n_writers /. Float.max 1e-9 makespan;
    writer_p99_latency = U.Stats.percentile (Array.of_list !latencies) 0.99;
    reader_count = !readers_done;
    snapshots_consistent = !consistent;
    versions_peak = (match scheme with Locking -> 0 | Versioning -> !versions_peak);
  }
