module U = Mmdb_util
module S = Mmdb_storage

type result = {
  strategy_label : string;
  committed : int;
  makespan : float;
  tps : float;
  latency : U.Stats.summary;
  log_pages : int;
  log_disk_bytes : int;
}

let strategy_label = function
  | Wal.Conventional -> "conventional"
  | Wal.Group_commit -> "group-commit"
  | Wal.Partitioned { devices } -> Printf.sprintf "partitioned-%d" devices
  | Wal.Stable { devices; compressed; _ } ->
    Printf.sprintf "stable-%d%s" devices (if compressed then "-compressed" else "")

let run ?(seed = 1984) ?(nrecords = 1000) ?(updates_per_txn = 6)
    ?(arrival_interval = 0.0) ~n_txns strategy =
  if n_txns <= 0 then invalid_arg "Tps_sim.run: n_txns <= 0";
  let rng = U.Xorshift.create seed in
  let clock = S.Sim_clock.create () in
  let wal = Wal.create ~clock strategy in
  let locks = Lock_manager.create () in
  let balances = Array.make nrecords 0 in
  let txns = Workload.generate ~rng ~nrecords ~updates_per_txn ~n:n_txns () in
  let lsn = ref 0 in
  let next_lsn () =
    incr lsn;
    !lsn
  in
  let tickets = ref [] in
  let pending_finalize = Queue.create () in
  let submit at (txn : Workload.txn) =
    (* Take every account lock; gather pre-commit dependencies. *)
    let deps =
      List.concat_map
        (fun (slot, _) ->
          (* exn_flow: 2PL — execution is instantaneous and locks
             finalize at commit retirement, never inside this closure. *)
          match Lock_manager.acquire locks ~txn:txn.Workload.txn_id ~key:slot with
          | Some g -> g.Lock_manager.dependencies
          | None ->
            (* Execution is instantaneous, so locks are never held by an
               active transaction at arrival time. *)
            assert false)
        txn.Workload.updates
    in
    let begin_lsn = next_lsn () in
    (* Newest-first accumulation ([List.rev_map] applies left to right,
       so LSNs are drawn in update order); one final [List.rev] puts
       the log in natural order without a quadratic tail-append. *)
    let rev_body =
      List.rev_map
        (fun (slot, delta) ->
          let old_value = balances.(slot) in
          let new_value = old_value + delta in
          balances.(slot) <- new_value;
          Log_record.Update
            {
              txn = txn.Workload.txn_id;
              lsn = next_lsn ();
              slot;
              old_value;
              new_value;
            })
        txn.Workload.updates
    in
    let records =
      Log_record.Begin { txn = txn.Workload.txn_id; lsn = begin_lsn }
      :: List.rev
           (Log_record.Commit { txn = txn.Workload.txn_id; lsn = next_lsn () }
           :: rev_body)
    in
    ignore (Lock_manager.precommit locks ~txn:txn.Workload.txn_id);
    let ticket =
      Wal.commit_txn wal ~at ~txn:txn.Workload.txn_id ~deps records
    in
    Queue.push ticket pending_finalize;
    tickets := (at, ticket) :: !tickets;
    (* Retire transactions whose commits are already durable. *)
    let continue = ref true in
    while !continue do
      match Queue.peek_opt pending_finalize with
      | Some tkt -> (
        match Wal.ticket_completion tkt with
        | Some c when c <= at ->
          ignore (Queue.pop pending_finalize);
          Lock_manager.finalize locks ~txn:(Wal.ticket_txn tkt)
        | Some _ | None -> continue := false)
      | None -> continue := false
    done
  in
  List.iteri
    (fun i txn -> submit (float_of_int i *. arrival_interval) txn)
    txns;
  let last_arrival = float_of_int (n_txns - 1) *. arrival_interval in
  ignore (Wal.flush wal ~at:last_arrival);
  let latencies = ref [] in
  let last_completion = ref 0.0 in
  List.iter
    (fun (arrival, tkt) ->
      match Wal.ticket_completion tkt with
      | Some c ->
        latencies := (c -. arrival) :: !latencies;
        last_completion := Float.max !last_completion c
      | None ->
        raise
          (Wal.Unresolved_ticket
             { sim = "Tps_sim"; txn = Wal.ticket_txn tkt }))
    !tickets;
  let makespan = Float.max 1e-9 !last_completion in
  {
    strategy_label = strategy_label strategy;
    committed = n_txns;
    makespan;
    tps = float_of_int n_txns /. makespan;
    latency = U.Stats.summarize (Array.of_list !latencies);
    log_pages = Wal.pages_written wal;
    log_disk_bytes = Wal.disk_bytes_written wal;
  }

let paper_ladder ?(n_txns = 5000) () =
  let model = Mmdb_model.Recovery_model.gray_banking in
  let open Mmdb_model.Recovery_model in
  let cases =
    [
      (Wal.Conventional, conventional_tps model);
      (Wal.Group_commit, group_commit_tps model);
      (Wal.Partitioned { devices = 2 }, partitioned_tps model ~devices:2);
      (Wal.Partitioned { devices = 4 }, partitioned_tps model ~devices:4);
      ( Wal.Stable
          { devices = 1; capacity_bytes = 64 * 1024; compressed = true },
        stable_memory_tps model ~devices:1 ~compressed:true );
    ]
  in
  (* A large account table keeps lock conflicts — and hence commit-group
     dependencies — rare, which the paper's multi-device scaling argument
     tacitly assumes (the low-conflict regime).  The high-conflict regime
     is an ablation: see `bench recovery-tps`. *)
  List.map
    (fun (strategy, predicted) ->
      let r = run ~nrecords:200_000 ~n_txns strategy in
      (r.strategy_label, r.tps, predicted))
    cases
