module U = Mmdb_util
module S = Mmdb_storage

type config = {
  nrecords : int;
  records_per_page : int;
  updates_per_txn : int;
  n_txns : int;
  checkpoint_every : int option;
  strategy : Wal.strategy;
  crash_after : int option;
  seed : int;
}

let default_config =
  {
    nrecords = 500;
    records_per_page = 20;
    updates_per_txn = 6;
    n_txns = 2000;
    checkpoint_every = Some 500;
    strategy = Wal.Group_commit;
    crash_after = None;
    seed = 7;
  }

type outcome = {
  durably_committed : int;
  submitted : int;
  consistent : bool;
  money_conserved : bool;
  recover_stats : Kv_store.recover_stats;
  checkpoints_taken : int;
  checkpoint_pages : int;
  log_pages : int;
  log_disk_bytes : int;
  log_records : Log_record.t list;
  durable_log : Log_record.t list;
}

let run cfg =
  let rng = U.Xorshift.create cfg.seed in
  let clock = S.Sim_clock.create () in
  let wal = Wal.create ~clock cfg.strategy in
  let locks = Lock_manager.create () in
  let stable = Stable_memory.create ~capacity_bytes:(1 lsl 20) in
  let kv =
    Kv_store.create ~nrecords:cfg.nrecords
      ~records_per_page:cfg.records_per_page ~stable ()
  in
  let n_submit =
    match cfg.crash_after with
    | Some k ->
      if k <= 0 || k > cfg.n_txns then
        invalid_arg "Recovery_manager: crash_after out of range";
      k
    | None -> cfg.n_txns
  in
  let txns =
    Workload.generate ~rng ~nrecords:cfg.nrecords
      ~updates_per_txn:cfg.updates_per_txn ~n:cfg.n_txns ()
  in
  let lsn = ref 0 in
  let next_lsn () =
    incr lsn;
    !lsn
  in
  let checkpoints = ref 0 in
  let checkpoint_pages = ref 0 in
  let arrival i = float_of_int i *. 1e-3 in
  let crash_time = ref 0.0 in
  List.iteri
    (fun i (txn : Workload.txn) ->
      if i < n_submit then begin
        let at = arrival i in
        crash_time := at;
        let deps =
          List.concat_map
            (fun (slot, _) ->
              match
                Lock_manager.acquire locks ~txn:txn.Workload.txn_id ~key:slot
              with
              | Some g -> g.Lock_manager.dependencies
              | None -> assert false)
            txn.Workload.updates
        in
        let begin_lsn = next_lsn () in
        let body =
          List.map
            (fun (slot, delta) ->
              let old_value = Kv_store.get kv slot in
              let new_value = old_value + delta in
              let l = next_lsn () in
              Kv_store.apply_update kv ~lsn:l ~slot ~value:new_value;
              Log_record.Update
                {
                  txn = txn.Workload.txn_id;
                  lsn = l;
                  slot;
                  old_value;
                  new_value;
                })
            txn.Workload.updates
        in
        let records =
          (Log_record.Begin { txn = txn.Workload.txn_id; lsn = begin_lsn }
           :: body)
          @ [
              Log_record.Commit { txn = txn.Workload.txn_id; lsn = next_lsn () };
            ]
        in
        ignore (Lock_manager.precommit locks ~txn:txn.Workload.txn_id);
        ignore (Wal.commit_txn wal ~at ~txn:txn.Workload.txn_id ~deps records);
        (match cfg.checkpoint_every with
        | Some every when (i + 1) mod every = 0 ->
          Wal.log_control wal ~at
            [ Log_record.Ckpt_begin { lsn = next_lsn () } ];
          (* WAL rule: the log is flushed before data pages go out. *)
          ignore (Wal.flush wal ~at);
          let st = Kv_store.checkpoint kv in
          Wal.log_control wal ~at
            [ Log_record.Ckpt_end { lsn = next_lsn () } ];
          incr checkpoints;
          checkpoint_pages := !checkpoint_pages + st.Kv_store.pages_flushed
        | Some _ | None -> ())
      end)
    txns;
  (* Crash.  With crash_after set, all scheduled device writes complete
     (the crash hits while the system is otherwise idle) but the
     never-scheduled buffer tail — e.g. a partially filled commit group —
     is lost.  Without it, flush everything first (clean shutdown, then
     crash). *)
  let crash_at =
    match cfg.crash_after with
    | Some _ -> Float.max !crash_time (Wal.quiesce_time wal)
    | None ->
      let done_at = Wal.flush wal ~at:!crash_time in
      Float.max done_at (Wal.quiesce_time wal) +. 1.0
  in
  let durable = Wal.durable_records wal ~at:crash_at in
  Kv_store.crash kv;
  let recover_stats = Kv_store.recover kv ~log:durable in
  (* Golden state: replay exactly the durably committed transactions. *)
  let committed = Hashtbl.create 256 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Commit { txn; _ } -> Hashtbl.replace committed txn ()
      | Log_record.Begin _ | Log_record.Update _ | Log_record.Abort _
      | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> ())
    durable;
  let golden = Array.make cfg.nrecords 0 in
  List.iter
    (fun (txn : Workload.txn) ->
      if Hashtbl.mem committed txn.Workload.txn_id then
        Workload.apply ~balances:golden txn)
    txns;
  let recovered = Kv_store.balances kv in
  let consistent = recovered = golden in
  let money_conserved = Array.fold_left ( + ) 0 recovered = 0 in
  {
    durably_committed = Hashtbl.length committed;
    submitted = n_submit;
    consistent;
    money_conserved;
    recover_stats;
    checkpoints_taken = !checkpoints;
    checkpoint_pages = !checkpoint_pages;
    log_pages = Wal.pages_written wal;
    log_disk_bytes = Wal.disk_bytes_written wal;
    log_records = Wal.all_records wal;
    durable_log = durable;
  }
