module U = Mmdb_util
module S = Mmdb_storage
module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

type logging_mode = Value_logging | Command_logging | Adaptive_logging

type replay_config = {
  workers : int;
  use_domains : bool;
  logging : logging_mode;
  crash_steps : int option;
  record_replay : bool;
  serve_stale : bool;
}

let default_replay =
  {
    workers = 1;
    use_domains = false;
    logging = Value_logging;
    crash_steps = None;
    record_replay = false;
    serve_stale = false;
  }

type config = {
  nrecords : int;
  records_per_page : int;
  updates_per_txn : int;
  n_txns : int;
  checkpoint_every : int option;
  strategy : Wal.strategy;
  crash_after : int option;
  crash_at : float option;
  faults : Fault_plan.rule list;
  seed : int;
  replay : replay_config;
}

let default_config =
  {
    nrecords = 500;
    records_per_page = 20;
    updates_per_txn = 6;
    n_txns = 2000;
    checkpoint_every = Some 500;
    strategy = Wal.Group_commit;
    crash_after = None;
    crash_at = None;
    faults = [];
    seed = 7;
    replay = default_replay;
  }

type outcome = {
  durably_committed : int;
  submitted : int;
  acked_committed : int;
  acked_lost : int;
  durability_ok : bool;
  consistent : bool;
  money_conserved : bool;
  recover_stats : Kv_store.recover_stats;
  recovery_attempts : int;
  command_txns : int;
  replay_events : Schedule.event list;
  checkpoints_taken : int;
  checkpoint_pages : int;
  log_pages : int;
  log_disk_bytes : int;
  log_records : Log_record.t list;
  durable_log : Log_record.t list;
  page_spans : (float * float) list;
  fault_tally : Fault.tally;
  fault_events : (string * int) list;
  stale_reads_served : int;
  stale_reads_current : int;
}

let run cfg =
  let rng = U.Xorshift.create cfg.seed in
  let clock = S.Sim_clock.create () in
  let plan = Fault_plan.create ~seed:cfg.seed cfg.faults in
  (* Crashes that can land mid-page-write (crash_at, or any fault rule)
     need within-transaction page ordering: without it a straddling
     transaction's commit record can become durable on an idle log device
     while its update records are still in flight on a busier one.  The
     legacy quiesce-point model keeps the seed's fully parallel timing. *)
  let strict_page_order = cfg.crash_at <> None || cfg.faults <> [] in
  let wal = Wal.create ~faults:plan ~strict_page_order ~clock cfg.strategy in
  let locks = Lock_manager.create () in
  let stable = Stable_memory.create ~capacity_bytes:(1 lsl 20) in
  let kv =
    Kv_store.create ~faults:plan ~nrecords:cfg.nrecords
      ~records_per_page:cfg.records_per_page ~stable ()
  in
  let n_submit =
    match cfg.crash_after with
    | Some k ->
      if k <= 0 || k > cfg.n_txns then
        invalid_arg "Recovery_manager: crash_after out of range";
      k
    | None -> cfg.n_txns
  in
  (match cfg.crash_at with
  | Some ct when ct < 0.0 ->
    invalid_arg "Recovery_manager: crash_at must be nonnegative"
  | Some _ | None -> ());
  let txns =
    Workload.generate ~rng ~nrecords:cfg.nrecords
      ~updates_per_txn:cfg.updates_per_txn ~n:cfg.n_txns ()
  in
  (* Per-transaction-class logging choice (adaptive logging): command
     records are ~7x smaller but replay serially when the transaction
     spans replay partitions, so the model's decision rule flips to
     value records for cross-partition transactions as the worker count
     grows.  Partitioning here must mirror Kv_store.recover's:
     page mod workers. *)
  let replay_workers = max 1 cfg.replay.workers in
  let partition_of_slot slot = slot / cfg.records_per_page mod replay_workers in
  let command_logged (txn : Workload.txn) =
    List.compare_length_with txn.Workload.updates Log_record.max_command_ops
    <= 0
    &&
    match cfg.replay.logging with
    | Value_logging -> false
    | Command_logging -> true
    | Adaptive_logging ->
      let parts =
        List.sort_uniq compare
          (List.map (fun (s, _) -> partition_of_slot s) txn.Workload.updates)
      in
      let cross_partition =
        match parts with [] | [ _ ] -> false | _ :: _ :: _ -> true
      in
      Mmdb_model.Recovery_model.adaptive_command_wins
        Mmdb_model.Recovery_model.gray_banking ~workers:replay_workers
        ~updates_per_txn:(List.length txn.Workload.updates)
        ~cross_partition
  in
  let command_txns = ref 0 in
  let lsn = ref 0 in
  let next_lsn () =
    incr lsn;
    !lsn
  in
  let checkpoints = ref 0 in
  let checkpoint_pages = ref 0 in
  (* A fuzzy-checkpoint bracket stays open until some sweep finishes the
     whole dirty set: a sweep cut short by the crash deadline must not
     open a second bracket (nested Ckpt_begin is a LOG007 protocol
     violation); the next attempt resumes the open one. *)
  let ckpt_open = ref false in
  let arrival i = float_of_int i *. 1e-3 in
  let crash_time = ref 0.0 in
  let tickets = ref [] in
  (* With crash_at set, the crash interrupts the run at an absolute
     simulated time: submissions at or after it never happen, and device
     writes still in flight at that moment are lost (or torn, when a
     torn-write rule is armed). *)
  let submits i =
    i < n_submit
    && match cfg.crash_at with Some ct -> arrival i < ct | None -> true
  in
  List.iteri
    (fun i (txn : Workload.txn) ->
      if submits i then begin
        let at = arrival i in
        crash_time := at;
        let deps =
          List.concat_map
            (fun (slot, _) ->
              (* exn_flow: 2PL — locks finalize at commit retirement. *)
              match
                Lock_manager.acquire locks ~txn:txn.Workload.txn_id ~key:slot
              with
              | Some g -> g.Lock_manager.dependencies
              | None -> assert false)
            txn.Workload.updates
        in
        let begin_lsn = next_lsn () in
        let records =
          if command_logged txn then begin
            (* Command logging: one operation record for the whole
               transaction.  All ops share the command's LSN, so the
               per-transaction LSN run stays consecutive (Begin L,
               Command L+1, Commit L+2) and the demotion completeness
               check below still works. *)
            incr command_txns;
            let cmd_lsn = next_lsn () in
            let ops =
              List.map
                (fun (slot, delta) ->
                  let old_value = Kv_store.get kv slot in
                  Kv_store.apply_update kv ~lsn:cmd_lsn ~slot
                    ~value:(old_value + delta);
                  (slot, delta))
                txn.Workload.updates
            in
            [
              Log_record.Begin { txn = txn.Workload.txn_id; lsn = begin_lsn };
              Log_record.Command
                { txn = txn.Workload.txn_id; lsn = cmd_lsn; ops };
              Log_record.Commit
                { txn = txn.Workload.txn_id; lsn = next_lsn () };
            ]
          end
          else begin
            (* Newest-first accumulation ([List.rev_map] applies left to
               right, so updates and LSNs happen in order); one final
               [List.rev] avoids the quadratic tail-append. *)
            let rev_body =
              List.rev_map
                (fun (slot, delta) ->
                  let old_value = Kv_store.get kv slot in
                  let new_value = old_value + delta in
                  let l = next_lsn () in
                  Kv_store.apply_update kv ~lsn:l ~slot ~value:new_value;
                  Log_record.Update
                    {
                      txn = txn.Workload.txn_id;
                      lsn = l;
                      slot;
                      old_value;
                      new_value;
                    })
                txn.Workload.updates
            in
            Log_record.Begin { txn = txn.Workload.txn_id; lsn = begin_lsn }
            :: List.rev
                 (Log_record.Commit
                    { txn = txn.Workload.txn_id; lsn = next_lsn () }
                 :: rev_body)
          end
        in
        ignore (Lock_manager.precommit locks ~txn:txn.Workload.txn_id);
        let tkt = Wal.commit_txn wal ~at ~txn:txn.Workload.txn_id ~deps records in
        tickets := (txn.Workload.txn_id, tkt) :: !tickets;
        (match cfg.checkpoint_every with
        | Some every when (i + 1) mod every = 0 ->
          if not !ckpt_open then begin
            Wal.log_control wal ~at
              [ Log_record.Ckpt_begin { lsn = next_lsn () } ];
            ckpt_open := true
          end;
          (* WAL rule: the log is flushed before data pages go out.  The
             flush call returns when its own page completes, but earlier
             pages may still sit in the device queues (conventional
             commit builds a deep one) — the sweeper must also wait for
             those, since the page images it writes reflect updates
             whose log records ride them. *)
          let flush_done = Wal.flush wal ~at in
          let log_durable = Float.max flush_done (Wal.quiesce_time wal) in
          (match cfg.crash_at with
          | Some ct when log_durable > ct ->
            (* The crash lands before the log is durable: the background
               sweeper never starts, so no data page of this checkpoint
               reaches the snapshot and no Ckpt_end is logged.
               Log_check tolerates the open bracket. *)
            ()
          | Some ct ->
            let st = Kv_store.checkpoint ~now:log_durable ~deadline:ct kv in
            checkpoint_pages := !checkpoint_pages + st.Kv_store.pages_flushed;
            if Kv_store.dirty_pages kv = 0 then begin
              (* Complete sweep: certify it. *)
              Wal.log_control wal ~at
                [ Log_record.Ckpt_end { lsn = next_lsn () } ];
              ckpt_open := false;
              incr checkpoints
            end
          | None ->
            let st = Kv_store.checkpoint kv in
            Wal.log_control wal ~at
              [ Log_record.Ckpt_end { lsn = next_lsn () } ];
            ckpt_open := false;
            incr checkpoints;
            checkpoint_pages := !checkpoint_pages + st.Kv_store.pages_flushed)
        | Some _ | None -> ())
      end)
    txns;
  (* Crash.  With crash_at, the crash hits at that exact simulated time —
     possibly mid-drain or mid-page-write.  With crash_after, all
     scheduled device writes complete (the crash hits while the system is
     otherwise idle) but the never-scheduled buffer tail — e.g. a
     partially filled commit group — is lost.  With neither, flush
     everything first (clean shutdown, then crash). *)
  let crash_at =
    match (cfg.crash_at, cfg.crash_after) with
    | Some ct, _ -> ct
    | None, Some _ -> Float.max !crash_time (Wal.quiesce_time wal)
    | None, None ->
      let done_at = Wal.flush wal ~at:!crash_time in
      Float.max done_at (Wal.quiesce_time wal) +. 1.0
  in
  let durable = Wal.surviving_records wal ~at:crash_at in
  (* Demote transactions whose durable record set is incomplete: media
     damage (at-rest bit rot truncating an already-durable page) can
     leave a commit record standing while some of the transaction's
     update records are gone.  Redoing such a commit would replay a
     partial transaction.  LSNs are assigned consecutively per
     transaction here, so completeness is checkable: Begin present and
     exactly (terminator_lsn - begin_lsn + 1) records survived.
     Dropping the terminator turns the remnant into a loser that undo
     reverses cleanly. *)
  let durable =
    let stats = Hashtbl.create 64 in
    (* txn -> (min_lsn, max_lsn, count, has_begin, terminator_lsn opt) *)
    List.iter
      (fun r ->
        match Log_record.txn r with
        | None -> ()
        | Some tx ->
          let l = Log_record.lsn r in
          let mn, mx, n, hb, term =
            match Hashtbl.find_opt stats tx with
            | Some s -> s
            | None -> (l, l, 0, false, None)
          in
          let hb =
            hb || match r with Log_record.Begin _ -> true | _ -> false
          in
          let term =
            match r with
            | Log_record.Commit _ | Log_record.Abort _ -> Some l
            | _ -> term
          in
          Hashtbl.replace stats tx (min mn l, max mx l, n + 1, hb, term))
      durable;
    let incomplete tx =
      match Hashtbl.find_opt stats tx with
      | Some (mn, mx, n, has_begin, Some term_lsn) ->
        (not has_begin) || mn + n - 1 <> mx || term_lsn <> mx
      | Some (_, _, _, _, None) | None -> false
    in
    List.filter
      (fun r ->
        match r with
        | Log_record.Commit { txn; _ } | Log_record.Abort { txn; _ } ->
          if incomplete txn then begin
            Fault_plan.note_detected plan ~code:"FAULT008" ~site:"log.recover"
              (Printf.sprintf
                 "txn %d: incomplete durable record set; demoting" txn);
            false
          end
          else true
        | Log_record.Begin _ | Log_record.Update _ | Log_record.Command _
        | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _ -> true)
      durable
  in
  Kv_store.crash kv;
  (* The checkpoint image survives the crash — capture it before replay
     rewrites memory, so degraded read-only service can be modelled. *)
  let stale =
    if cfg.replay.serve_stale then Kv_store.snapshot_balances kv else [||]
  in
  (* Recovery, optionally parallel, optionally crashing mid-replay.  A
     restart-crash (FAULT012) loses the volatile replay state; the
     durable snapshot pages written back before the crash carry their
     advanced redo/undo floors, so running recovery again from scratch
     is correct — that is the property the torture sweep's
     restart-crash points check. *)
  let replay_recorder =
    if cfg.replay.record_replay then
      Some (Schedule.recorder ~now:(fun () -> 0.0))
    else None
  in
  let recovery_attempts = ref 1 in
  let do_recover ?crash_after_steps () =
    Kv_store.recover kv ~workers:replay_workers
      ~use_domains:cfg.replay.use_domains ?crash_after_steps ?replay_recorder
      ~log:durable
  in
  let recover_stats =
    match cfg.replay.crash_steps with
    | None -> do_recover ()
    | Some n -> (
      try do_recover ~crash_after_steps:n ()
      with Kv_store.Crashed_during_recovery ->
        incr recovery_attempts;
        Fault_plan.note_detected plan ~code:"FAULT012" ~site:"recovery.replay"
          (Printf.sprintf
             "crash after %d replay steps; restarting recovery" n);
        Kv_store.crash kv;
        do_recover ())
  in
  (* Golden state: replay exactly the durably committed transactions. *)
  let committed = Hashtbl.create 256 in
  List.iter
    (fun r ->
      match r with
      | Log_record.Commit { txn; _ } -> Hashtbl.replace committed txn ()
      | Log_record.Begin _ | Log_record.Update _ | Log_record.Command _
      | Log_record.Abort _ | Log_record.Ckpt_begin _ | Log_record.Ckpt_end _
        -> ())
    durable;
  let golden = Array.make cfg.nrecords 0 in
  List.iter
    (fun (txn : Workload.txn) ->
      if Hashtbl.mem committed txn.Workload.txn_id then
        Workload.apply ~balances:golden txn)
    txns;
  let recovered = Kv_store.balances kv in
  (* Degraded read-only service during replay: while recovery is in
     flight the snapshot keeps answering reads, stale as of the last
     completed checkpoint sweep.  Model a 1 kHz Zipfian read stream over
     the replay window and audit how many stale answers already match
     the recovered state (skew means hot slots concentrate staleness:
     they are also the most-updated ones). *)
  let stale_reads_served, stale_reads_current =
    if not cfg.replay.serve_stale then (0, 0)
    else begin
      let srng = U.Xorshift.create (cfg.seed lxor 0x5afe) in
      let n =
        int_of_float
          (Float.ceil (recover_stats.Kv_store.recovery_time *. 1000.0))
      in
      let current = ref 0 in
      for _ = 1 to n do
        let slot = U.Xorshift.zipf srng ~n:cfg.nrecords ~theta:0.8 in
        if stale.(slot) = recovered.(slot) then incr current
      done;
      (n, !current)
    end
  in
  let consistent = recovered = golden in
  let money_conserved = Array.fold_left ( + ) 0 recovered = 0 in
  (* Durability audit: a transaction acknowledged committed before the
     crash (its ticket resolved at or before crash time) must still be
     committed after recovery.  Only a battery-droop fault can break
     this — the loss is then visible in the unrecoverable tally. *)
  let acked =
    List.filter
      (fun (_, tkt) ->
        match Wal.ticket_completion tkt with
        | Some c -> c <= crash_at
        | None -> false)
      !tickets
  in
  let acked_lost =
    List.length
      (List.filter (fun (txn, _) -> not (Hashtbl.mem committed txn)) acked)
  in
  {
    durably_committed = Hashtbl.length committed;
    submitted = List.length !tickets;
    acked_committed = List.length acked;
    acked_lost;
    durability_ok = acked_lost = 0;
    consistent;
    money_conserved;
    recover_stats;
    recovery_attempts = !recovery_attempts;
    command_txns = !command_txns;
    replay_events =
      (match replay_recorder with
      | Some r -> Schedule.events r
      | None -> []);
    checkpoints_taken = !checkpoints;
    checkpoint_pages = !checkpoint_pages;
    log_pages = Wal.pages_written wal;
    log_disk_bytes = Wal.disk_bytes_written wal;
    log_records = Wal.all_records wal;
    durable_log = durable;
    page_spans = Wal.page_spans wal;
    fault_tally = Fault.tally_copy (Fault_plan.tally plan);
    fault_events = Fault_plan.event_counts plan;
    stale_reads_served;
    stale_reads_current;
  }
