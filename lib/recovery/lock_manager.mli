(** Two-phase locking extended for pre-committed transactions
    (Section 5.2).

    "Associated with each lock are three sets of transactions: active
    transactions that currently hold the lock, transactions that are
    waiting to be granted the lock, and pre-committed transactions that
    have released the lock but have not yet committed.  When a transaction
    is granted a lock, it becomes dependent on the pre-committed
    transactions that formerly held the lock."

    Locks are exclusive (the banking workload updates records).  All locks
    are held until pre-commit, per the paper's assumption. *)

type t

type grant = {
  granted_txn : int;
  dependencies : int list;
      (** pre-committed transactions this grant makes the grantee depend
          on *)
}

val create :
  ?recorder:Schedule.recorder -> ?domain_of:(int -> int) -> unit -> t
(** [create ?recorder ?domain_of ()] — when [recorder] is given, every
    protocol transition (acquire / grant / wait / wake / release /
    precommit / abort) is appended to it as a {!Schedule.event} for
    offline auditing by {!Mmdb_verify.Txn_check} and
    {!Mmdb_verify.Race_check}.  Without it, recording costs nothing.
    [domain_of txn] supplies the domain stamp for each event (default:
    everything on domain 0 — the historical single-domain behaviour). *)

val acquire :
  ?deadline:Mmdb_overload.Overload.Deadline.t -> t -> txn:int -> key:int ->
  grant option
(** [acquire lm ~txn ~key] tries to take the exclusive lock on [key].
    [Some grant] if granted now (with its dependency list); [None] if the
    transaction must wait (it is queued).  Re-acquiring a held lock
    returns an empty grant.  When [deadline] is given, the wait is
    bounded: {!expire_waiters} sweeps the registration once the deadline
    passes, so convoy deadlocks surface as typed OVLD004 timeouts
    instead of unbounded waits.  @raise Invalid_argument if [txn]
    already waits for some lock (no multi-wait in this model), or if
    [txn] has already pre-committed or finished — the paper's §5.2
    invariant: pre-commit releases every lock for good, so the lock set
    never grows again. *)

val expire_waiters : t -> now:float -> int list
(** Remove every waiter whose wait deadline passed by [now] from its
    queue and return their transaction ids (ascending).  The caller
    aborts each via {!release_abort} (and typically raises
    {!Mmdb_overload.Overload.Shed} OVLD004), so the timeout flows
    through the same audited abort path as any other abort. *)

val precommit : t -> txn:int -> grant list
(** Move [txn] from holder to pre-committed on every lock it holds,
    releasing them; returns the grants handed to woken waiters (each now
    dependent on the pre-committed chain). *)

val release_abort : t -> txn:int -> grant list
(** Abort before pre-commit: release all locks and any wait registration;
    returns grants to woken waiters.  (Pre-committed transactions never
    abort — the paper's invariant — so calling this after {!precommit}
    raises.) *)

val finalize : t -> txn:int -> unit
(** The transaction's commit record is durable: remove it from every
    pre-committed set.  Dependants already granted keep their recorded
    dependency lists (the commit-group machinery consults those). *)

val holder : t -> key:int -> int option
val waiters : t -> key:int -> int list
val precommitted : t -> key:int -> int list
val locks_held : t -> txn:int -> int list
