(** Battery-backed stable main memory (Section 5.4).

    "We assume that a small portion of memory can be made stable by
    providing it with a back-up battery power supply ... too expensive to
    be used for all of real memory."  A bounded byte budget that survives
    simulated crashes: it holds the in-memory log tail (commit point for
    the stable-log strategy) and the dirty-page table of Section 5.5. *)

type t

val create : capacity_bytes:int -> t
(** @raise Invalid_argument if [capacity_bytes <= 0]. *)

val capacity : t -> int
val used : t -> int
val available : t -> int

val put_records : t -> Log_record.t list -> bytes:int -> bool
(** [put_records sm records ~bytes] stores log records if [bytes] fit;
    [false] when full (the caller must drain first). *)

val drain : t -> max_bytes:int -> Log_record.t list * int
(** [drain sm ~max_bytes] removes up to [max_bytes] worth of the oldest
    records (whole batches), returning them with their byte size —
    feeding a disk log page. *)

val peek_batch : t -> (Log_record.t list * int) option
(** Oldest batch (records, stable bytes) without removing it — lets the
    drainer pack disk pages by a different (compressed) size measure. *)

val drop_batch : t -> unit
(** Remove the oldest batch.
    @raise Mmdb_fault.Fault.Io_error (FAULT010) when empty. *)

val records : t -> Log_record.t list
(** Current contents, oldest first (what survives a crash). *)

val batch_count : t -> int
(** Number of undrained batches currently held. *)

val records_dropping_newest : t -> batches:int -> Log_record.t list * int
(** [records_dropping_newest sm ~batches] is the battery-droop view of a
    crash: the surviving records after the newest [batches] batches are
    lost (FAULT007), with the count of records dropped.  Read-only. *)

val table_put : t -> key:int -> value:int -> unit
(** Dirty-page-table slot (Section 5.5): record the log LSN of the first
    update to a page since its last checkpoint.  Keys are page numbers;
    the table occupies a fixed side region and does not count against the
    record budget. *)

val table_get : t -> key:int -> int option
val table_remove : t -> key:int -> unit
val table_fold : t -> init:'a -> f:('a -> key:int -> value:int -> 'a) -> 'a
val table_clear : t -> unit
