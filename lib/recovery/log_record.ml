type t =
  | Begin of { txn : int; lsn : int }
  | Update of {
      txn : int;
      lsn : int;
      slot : int;
      old_value : int;
      new_value : int;
    }
  | Command of { txn : int; lsn : int; ops : (int * int) list }
  | Commit of { txn : int; lsn : int }
  | Abort of { txn : int; lsn : int }
  | Ckpt_begin of { lsn : int }
  | Ckpt_end of { lsn : int }

let lsn = function
  | Begin { lsn; _ } | Update { lsn; _ } | Command { lsn; _ }
  | Commit { lsn; _ } | Abort { lsn; _ } | Ckpt_begin { lsn }
  | Ckpt_end { lsn } -> lsn

let txn = function
  | Begin { txn; _ } | Update { txn; _ } | Command { txn; _ }
  | Commit { txn; _ } | Abort { txn; _ } -> Some txn
  | Ckpt_begin _ | Ckpt_end _ -> None

(* Sizes chosen so the paper's "typical" banking transaction (begin + 6
   updates + commit) writes 40 + 360 = 400 bytes uncompressed: 20 + 20
   header bytes and 6 * 60 update bytes, of which half of each update is
   the old value ("approximately half of the size of the log stores the
   old values"), so a compressed update is 30 bytes and the compressed
   transaction 220 — matching Recovery_model. *)
let size_bytes ~compressed = function
  | Begin _ | Commit _ | Abort _ | Ckpt_begin _ | Ckpt_end _ -> 20
  | Update _ -> if compressed then 30 else 60
  | Command { ops; _ } -> 20 + (8 * List.length ops)

let is_update = function
  | Update _ | Command _ -> true
  | Begin _ | Commit _ | Abort _ | Ckpt_begin _ | Ckpt_end _ -> false

let pp ppf = function
  | Begin { txn; lsn } -> Format.fprintf ppf "[%d] BEGIN t%d" lsn txn
  | Commit { txn; lsn } -> Format.fprintf ppf "[%d] COMMIT t%d" lsn txn
  | Abort { txn; lsn } -> Format.fprintf ppf "[%d] ABORT t%d" lsn txn
  | Update { txn; lsn; slot; old_value; new_value } ->
    Format.fprintf ppf "[%d] UPDATE t%d slot=%d %d->%d" lsn txn slot old_value
      new_value
  | Command { txn; lsn; ops } ->
    Format.fprintf ppf "[%d] COMMAND t%d" lsn txn;
    List.iter (fun (slot, delta) -> Format.fprintf ppf " %d%+d" slot delta) ops
  | Ckpt_begin { lsn } -> Format.fprintf ppf "[%d] CKPT-BEGIN" lsn
  | Ckpt_end { lsn } -> Format.fprintf ppf "[%d] CKPT-END" lsn

(* Wire encoding.  Each record occupies exactly [size_bytes] bytes — the
   model sizes double as the physical layout, so byte accounting and
   serialization can never disagree.  Fields are little-endian; the last
   four bytes hold a CRC-32 of the record with those bytes zeroed.  The
   tag distinguishes full (60-byte) from compressed (30-byte) updates,
   so decoding needs no out-of-band compression flag. *)

let tag_of ~compressed = function
  | Begin _ -> 1
  | Update _ -> if compressed then 7 else 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Ckpt_begin _ -> 5
  | Ckpt_end _ -> 6
  | Command _ -> 8

(* Tag 8 (command records) is variable-size: the size needs the op-count
   byte at offset 9, so [decode] computes it from the header instead. *)
let size_of_tag = function
  | 1 | 3 | 4 | 5 | 6 -> Some 20
  | 2 -> Some 60
  | 7 -> Some 30
  | _ -> None

let max_command_ops = 255

let put32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v asr (8 * i)) land 0xFF))
  done

let get32 b off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  (* sign-extend from 32 bits *)
  (!v lxor 0x80000000) - 0x80000000

let put64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v asr (8 * i)) land 0xFF))
  done

let get64 b off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let encode_into ~compressed r buf ~pos =
  let size = size_bytes ~compressed r in
  if pos < 0 || pos + size > Bytes.length buf then
    invalid_arg "Log_record.encode_into: out of bounds";
  Bytes.fill buf pos size '\000';
  Bytes.set buf pos (Char.chr (tag_of ~compressed r));
  put32 buf (pos + 1) (lsn r);
  put32 buf (pos + 5) (match txn r with Some t -> t | None -> 0);
  (match r with
  | Update { slot; old_value; new_value; _ } ->
    put32 buf (pos + 9) slot;
    if compressed then put64 buf (pos + 13) new_value
    else begin
      put64 buf (pos + 13) old_value;
      put64 buf (pos + 21) new_value
    end
  | Command { ops; _ } ->
    let nops = List.length ops in
    if nops > max_command_ops then
      invalid_arg "Log_record.encode_into: too many command ops";
    Bytes.set buf (pos + 9) (Char.chr nops);
    List.iteri
      (fun i (slot, delta) ->
        put32 buf (pos + 10 + (8 * i)) slot;
        put32 buf (pos + 14 + (8 * i)) delta)
      ops
  | Begin _ | Commit _ | Abort _ | Ckpt_begin _ | Ckpt_end _ -> ());
  let crc = Mmdb_util.Checksum.crc32 buf ~pos ~len:(size - 4) in
  put32 buf (pos + size - 4) crc;
  size

let encode ~compressed r =
  let buf = Bytes.create (size_bytes ~compressed r) in
  ignore (encode_into ~compressed r buf ~pos:0);
  buf

let decode buf ~pos =
  let avail = Bytes.length buf - pos in
  if avail < 1 then Error "empty"
  else
    let tag = Char.code (Bytes.get buf pos) in
    let sized =
      match size_of_tag tag with
      | Some s -> Ok s
      | None ->
        if tag <> 8 then Error (Printf.sprintf "bad tag %d" tag)
        else if avail < 10 then
          (* Command header (through the op-count byte) torn off. *)
          Error (Printf.sprintf "truncated record: %d of %d bytes" avail 20)
        else Ok (20 + (8 * Char.code (Bytes.get buf (pos + 9))))
    in
    match sized with
    | Error e -> Error e
    | Ok size when avail < size ->
      Error (Printf.sprintf "truncated record: %d of %d bytes" avail size)
    | Ok size ->
      let crc = Mmdb_util.Checksum.crc32 buf ~pos ~len:(size - 4) in
      let stored = get32 buf (pos + size - 4) land 0xFFFFFFFF in
      if crc <> stored then Error "checksum mismatch"
      else begin
        let lsn = get32 buf (pos + 1) in
        let txn = get32 buf (pos + 5) in
        let r =
          match tag with
          | 1 -> Begin { txn; lsn }
          | 3 -> Commit { txn; lsn }
          | 4 -> Abort { txn; lsn }
          | 5 -> Ckpt_begin { lsn }
          | 6 -> Ckpt_end { lsn }
          | 2 ->
            Update
              {
                txn;
                lsn;
                slot = get32 buf (pos + 9);
                old_value = get64 buf (pos + 13);
                new_value = get64 buf (pos + 21);
              }
          | 7 ->
            (* Compressed: the old value was dropped (§5.4) — legal only
               for transactions known committed, which are never undone. *)
            Update
              {
                txn;
                lsn;
                slot = get32 buf (pos + 9);
                old_value = 0;
                new_value = get64 buf (pos + 13);
              }
          | 8 ->
            let nops = Char.code (Bytes.get buf (pos + 9)) in
            Command
              {
                txn;
                lsn;
                ops =
                  List.init nops (fun i ->
                      ( get32 buf (pos + 10 + (8 * i)),
                        get32 buf (pos + 14 + (8 * i)) ));
              }
          | _ -> assert false
        in
        Ok (r, size)
      end

let decode_run buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Log_record.decode_run: out of bounds";
  let rec go off acc =
    if off >= pos + len then (List.rev acc, None)
    else if Bytes.get buf off = '\000' then (List.rev acc, None)
      (* zero padding after the last record of a partly-filled page *)
    else
      match decode buf ~pos:off with
      | Ok (r, size) when off + size <= pos + len -> go (off + size) (r :: acc)
      | Ok _ ->
        (* The record straddles the window's end.  The bytes past it may
           well decode (a torn write cut at a record boundary leaves the
           page's stale tail intact), but they are not part of this run. *)
        (List.rev acc, Some "record truncated at end of window")
      | Error e -> (List.rev acc, Some e)
  in
  go pos []
