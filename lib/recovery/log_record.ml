type t =
  | Begin of { txn : int; lsn : int }
  | Update of {
      txn : int;
      lsn : int;
      slot : int;
      old_value : int;
      new_value : int;
    }
  | Commit of { txn : int; lsn : int }
  | Abort of { txn : int; lsn : int }
  | Ckpt_begin of { lsn : int }
  | Ckpt_end of { lsn : int }

let lsn = function
  | Begin { lsn; _ } | Update { lsn; _ } | Commit { lsn; _ } | Abort { lsn; _ }
  | Ckpt_begin { lsn } | Ckpt_end { lsn } -> lsn

let txn = function
  | Begin { txn; _ } | Update { txn; _ } | Commit { txn; _ } | Abort { txn; _ }
    -> Some txn
  | Ckpt_begin _ | Ckpt_end _ -> None

(* Sizes chosen so the paper's "typical" banking transaction (begin + 6
   updates + commit) writes 40 + 360 = 400 bytes uncompressed: 20 + 20
   header bytes and 6 * 60 update bytes, of which half of each update is
   the old value ("approximately half of the size of the log stores the
   old values"), so a compressed update is 30 bytes and the compressed
   transaction 220 — matching Recovery_model. *)
let size_bytes ~compressed = function
  | Begin _ | Commit _ | Abort _ | Ckpt_begin _ | Ckpt_end _ -> 20
  | Update _ -> if compressed then 30 else 60

let is_update = function
  | Update _ -> true
  | Begin _ | Commit _ | Abort _ | Ckpt_begin _ | Ckpt_end _ -> false

let pp ppf = function
  | Begin { txn; lsn } -> Format.fprintf ppf "[%d] BEGIN t%d" lsn txn
  | Commit { txn; lsn } -> Format.fprintf ppf "[%d] COMMIT t%d" lsn txn
  | Abort { txn; lsn } -> Format.fprintf ppf "[%d] ABORT t%d" lsn txn
  | Update { txn; lsn; slot; old_value; new_value } ->
    Format.fprintf ppf "[%d] UPDATE t%d slot=%d %d->%d" lsn txn slot old_value
      new_value
  | Ckpt_begin { lsn } -> Format.fprintf ppf "[%d] CKPT-BEGIN" lsn
  | Ckpt_end { lsn } -> Format.fprintf ppf "[%d] CKPT-END" lsn
