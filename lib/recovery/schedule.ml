type kind =
  | Acquire
  | Grant of { deps : int list }
  | Wait of { holder : int }
  | Wake of { deps : int list }
  | Read
  | Write
  | Precommit
  | Commit_durable
  | Abort
  | Release

type event = {
  time : float;
  txn : int;
  key : int option;
  lsn : int option;
  domain : int;
  ver : float option;
  kind : kind;
}

type recorder = {
  now : unit -> float;
  mutable rev_events : event list;
  mutable n : int;
}

let recorder ~now = { now; rev_events = []; n = 0 }

let emit r ?at ?key ?lsn ?(domain = 0) ?ver ~txn kind =
  match r with
  | None -> ()
  | Some r ->
    let time = match at with Some t -> t | None -> r.now () in
    r.rev_events <- { time; txn; key; lsn; domain; ver; kind } :: r.rev_events;
    r.n <- r.n + 1

let events r = List.rev r.rev_events
let length r = r.n

let clear r =
  r.rev_events <- [];
  r.n <- 0

let domains events =
  List.sort_uniq compare (List.map (fun e -> e.domain) events)

let kind_name = function
  | Acquire -> "Acquire"
  | Grant _ -> "Grant"
  | Wait _ -> "Wait"
  | Wake _ -> "Wake"
  | Read -> "Read"
  | Write -> "Write"
  | Precommit -> "Precommit"
  | Commit_durable -> "CommitDurable"
  | Abort -> "Abort"
  | Release -> "Release"

let pp_event ppf e =
  Format.fprintf ppf "%.6f txn=%d" e.time e.txn;
  if e.domain <> 0 then Format.fprintf ppf " dom=%d" e.domain;
  (match e.key with
  | Some k -> Format.fprintf ppf " key=%d" k
  | None -> ());
  (match e.lsn with
  | Some l -> Format.fprintf ppf " lsn=%d" l
  | None -> ());
  (match e.ver with
  | Some v -> Format.fprintf ppf " ver=%.6f" v
  | None -> ());
  Format.fprintf ppf " %s" (kind_name e.kind);
  match e.kind with
  | Grant { deps } | Wake { deps } ->
    if deps <> [] then
      Format.fprintf ppf " deps=[%s]"
        (String.concat ";" (List.map string_of_int deps))
  | Wait { holder } -> Format.fprintf ppf " holder=%d" holder
  | Acquire | Read | Write | Precommit | Commit_durable | Abort | Release ->
    ()
