(** The memory-resident database of Section 5: a fixed array of integer
    records (account balances), entirely in volatile main memory, with a
    page-structured snapshot on disk, fuzzy checkpointing (§5.3), a
    dirty-page table in stable memory (§5.5), crash, and log-driven
    recovery.

    WAL rule: the caller must flush the log before {!checkpoint} (the
    {!Db} facade and {!Recovery_manager} do), so a snapshot never holds an
    update whose log record is volatile. *)

type t

val create : ?page_io_time:float -> ?faults:Mmdb_fault.Fault_plan.t ->
  ?recorder:Schedule.recorder -> nrecords:int -> records_per_page:int ->
  stable:Stable_memory.t -> unit -> t
(** All balances start at 0; the disk snapshot starts clean.  The
    dirty-page table lives in [stable] (it survives crashes).
    [page_io_time] (default 10 ms) prices checkpoint writes and recovery
    reads.  With [faults] armed, snapshot pages carry out-of-band CRCs:
    checkpoint writes can be rotted by a [Snapshot]-site rule, and
    {!recover} detects (FAULT002) and rebuilds (FAULT009) damaged
    pages.  With [recorder], transactional accesses ({!get} /
    {!apply_update} called with [~txn]) emit domain-stamped Read/Write
    schedule events for {!Mmdb_verify.Txn_check} and
    {!Mmdb_verify.Race_check}. *)

val nrecords : t -> int
val npages : t -> int

val get : ?txn:int -> ?domain:int -> t -> int -> int
(** Current in-memory balance.  When [txn] is given (and a recorder is
    armed) the access is witnessed as a [Read] event stamped with
    [domain] (default 0).  @raise Invalid_argument on bad slot. *)

val snapshot_read : t -> int -> int
(** Degraded read-only service: the slot's value in the last checkpoint
    image.  The snapshot lives on the simulated disk and survives a
    crash, so this stays answerable while recovery replay is in flight —
    stale as of the last completed checkpoint sweep.
    @raise Invalid_argument on bad slot. *)

val snapshot_balances : t -> int array
(** A copy of the whole checkpoint image (stale-read oracle). *)

val apply_update :
  ?txn:int -> ?domain:int -> t -> lsn:int -> slot:int -> value:int -> unit
(** In-memory write; marks the slot's page dirty, recording [lsn] in the
    stable dirty-page table if it is the first update since the page's
    last checkpoint.  When [txn] is given the write is witnessed as a
    [Write] event stamped with [domain]. *)

type checkpoint_stats = { pages_flushed : int; duration : float }

val checkpoint : ?now:float -> ?deadline:float -> t -> checkpoint_stats
(** Fuzzy checkpoint: "data pages are periodically written to disk by a
    background process that sweeps through data buffers to find dirty
    pages."  Writes every dirty page (sorted page order) to the
    snapshot, clears its dirty-table entry, and reports cost (serial
    page writes).  When both [now] and [deadline] are given, the sweep
    stops before the page write that would complete after [deadline] —
    modelling a crash mid-checkpoint; unwritten pages keep their
    dirty-table entries so redo still covers them. *)

val dirty_pages : t -> int

val recovery_start_lsn : t -> int option
(** Minimum LSN in the stable dirty-page table — "the oldest entry in the
    table determines the point in the log from which recovery should
    commence."  [None] when no page has been dirtied since its last
    checkpoint (redo can be skipped entirely). *)

val crash : t -> unit
(** Lose volatile memory: balances are scrambled; the disk snapshot and
    the stable dirty-page table survive. *)

type recover_stats = {
  start_lsn : int;
  records_scanned : int;
  redo_applied : int;  (** total redo ops: local + barrier *)
  undo_applied : int;
  snapshot_pages_read : int;
  pages_rebuilt : int;  (** corrupt snapshot pages rebuilt from the log *)
  recovery_time : float;
      (** modelled cost ({!Mmdb_model.Recovery_model.replay_seconds}):
          snapshot/log reads and local applies divided by [workers],
          plus serial barrier replay, undo, and page write-back *)
  workers : int;  (** replay partitions used *)
  local_value_ops : int;  (** value (after-image) ops applied in-partition *)
  local_command_ops : int;  (** command ops whose record stayed in-partition *)
  barrier_ops : int;  (** command ops replayed at cross-partition barriers *)
  barriers : int;  (** cross-partition command records *)
  pages_written_back : int;  (** end-of-recovery re-checkpointed pages *)
  log_bytes_scanned : int;
  used_domains : bool;  (** real [Domain.spawn] workers ran the replay *)
}

exception Crashed_during_recovery
(** Raised when [crash_after_steps] expires.  The store's volatile state
    is mid-replay garbage; the durable state is valid (pages written
    back so far carry their advanced redo/undo floors).  Protocol: call
    {!crash}, then {!recover} again. *)

val recover :
  ?workers:int ->
  ?use_domains:bool ->
  ?crash_after_steps:int ->
  ?replay_recorder:Schedule.recorder ->
  t ->
  log:Log_record.t list ->
  recover_stats
(** Rebuild memory from the snapshot plus the durable [log] (LSN order):
    redo every eligible record from {!recovery_start_lsn} onward, then
    undo, in reverse order, records of transactions with no commit
    record in [log]; finally write every touched page back to the
    snapshot and reset the dirty-page table.

    Redo is partitioned by page across [workers] (default 1) replay
    partitions ({!Replay}): per-page LSN gates make both value and
    non-idempotent command records safe to replay, and make the whole
    recovery restartable — if it crashes mid-way
    ({!Crashed_during_recovery}, injected via [crash_after_steps]: the
    unified count of redo applies + undo applies + write-back page
    writes), running it again from the surviving durable state is
    correct.  [use_domains] runs partitions as real domains on OCaml 5
    (ignored when [crash_after_steps] or [replay_recorder] forces the
    deterministic scheduler).  [replay_recorder] witnesses every replay
    write as domain-stamped Grant/Write/Release events for
    {!Mmdb_verify.Race_check}.

    With faults armed, snapshot pages failing their CRC are reset and
    rebuilt by replaying the whole log for their slots (FAULT002 /
    FAULT009).

    @raise Crashed_during_recovery when [crash_after_steps] expires
    mid-replay (restart-crash testing).
    @raise Replay.Rendezvous_deadlock defensively if the parallel-replay
    barrier invariant is ever broken. *)

val balances : t -> int array
(** Copy of the in-memory state (test oracle). *)
