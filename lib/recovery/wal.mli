(** Write-ahead log manager implementing Section 5.2's commit strategies.

    - {b Conventional}: every transaction's commit forces its own log-page
      write — at most [1 / page_write_time] = 100 commits/s.
    - {b Group commit}: commit records accumulate in the log buffer; one
      page write commits the whole group (~10 transactions/page → 1000
      commits/s).  "As long as records are sequentially added to the log,
      a pre-committed transaction will have its commit record on disk
      before its dependent transactions."
    - {b Partitioned}: the log is striped over several devices; a commit
      group's write is held until every group it depends on (via the lock
      manager's pre-commit dependencies) is durable — the paper's
      topological ordering of log pages.
    - {b Stable}: commit is instant once the transaction's records are in
      battery-backed stable memory; a background drain writes
      new-values-only pages to disk (Section 5.4's compression).

    Simplification (documented in DESIGN.md): a drained stable-memory page
    is treated as durable from the moment the drain is issued — a
    battery-backed controller finishes in-flight writes across a crash. *)

type strategy =
  | Conventional
  | Group_commit
  | Partitioned of { devices : int }
  | Stable of { devices : int; capacity_bytes : int; compressed : bool }

type t

type ticket
(** A pending commit: resolved once the commit record is durable. *)

exception Unresolved_ticket of { sim : string; txn : int }
(** A commit ticket survived a full flush unresolved — the flush
    contract is broken.  Raised by the simulators ({!Tps_sim},
    {!Mvcc_sim}) rather than a stringly [Failure] so the torture
    harness can classify it. *)

val create : ?page_write_time:float -> ?page_bytes:int ->
  ?faults:Mmdb_fault.Fault_plan.t ->
  ?breaker:Mmdb_overload.Overload.Breaker.t -> ?strict_page_order:bool ->
  clock:Mmdb_storage.Sim_clock.t -> strategy -> t
(** [faults] arms a fault-injection plan shared by every log device:
    pages then carry checksummed physical images, and
    {!surviving_records} models torn writes, read/rest bit flips, and
    stable-memory battery droop at crash time.  Without it, behaviour is
    identical to the unfaulted seed.  [breaker] attaches a circuit
    breaker fed by every device (injected transients are failures,
    clean faulted-path writes successes); it never blocks the log
    itself — see {!Log_device.create}.

    [strict_page_order] (default [false]) chains a page that continues a
    straddling transaction behind the completion of the page holding its
    earlier records.  Required whenever a crash can land mid-page-write
    (the torture harness always enables it): otherwise a straddler's
    commit record can become durable on an idle device while its update
    records are still in flight on a busier one.  The default preserves
    the seed's fully-parallel partitioned timing, which is safe when
    crashes only land at quiesce points. *)

val strategy : t -> strategy
val page_bytes : t -> int

val commit_txn : t -> at:float -> txn:int -> deps:int list ->
  Log_record.t list -> ticket
(** [commit_txn wal ~at ~txn ~deps records] logs a finished transaction
    (its whole record list, commit/abort record last) at simulated time
    [at].  [deps] are the pre-committed transactions it read from (lock
    manager grants); their commit groups must be durable first.
    Transactions must be submitted in nondecreasing [at] order.
    @raise Mmdb_fault.Fault.Io_error from the log device when a fault
    plan is armed and a page write exhausts the retry budget.
    @raise Mmdb_overload.Overload.Shed (OVLD008) when a per-transaction
    retry budget installed on the armed plan runs dry mid-ride. *)

val log_control : t -> at:float -> Log_record.t list -> unit
(** Append non-transactional records (checkpoint brackets) to the log
    stream without a commit ticket.  They ride the open buffer page (or
    stable memory) and become durable with the next flush or page fill. *)

val ticket_txn : ticket -> int

val ticket_completion : ticket -> float option
(** [None] while the commit record sits in a volatile buffer page that has
    not been written (group commit waiting to fill). *)

val flush : t -> at:float -> float
(** Force the open buffer page (and, for [Stable], the stable-memory
    backlog) to disk; returns the time everything issued so far is
    durable.  Resolves outstanding tickets. *)

val quiesce_time : t -> float
(** Completion time of every write scheduled so far (max over devices).
    A crash at or after this time loses only the never-scheduled buffer
    tail — the canonical group-commit loss scenario. *)

val pages_written : t -> int
val disk_bytes_written : t -> int
(** Log bytes that reached disk (post-compression for [Stable]). *)

val durable_records : t -> at:float -> Log_record.t list
(** What a crash at [at] leaves readable: completed device pages, plus
    stable-memory contents for [Stable]. *)

val all_records : t -> Log_record.t list
(** Everything submitted, including still-buffered records (test oracle). *)

val faults : t -> Mmdb_fault.Fault_plan.t
(** The armed plan ({!Mmdb_fault.Fault_plan.none} when unfaulted). *)

val page_spans : t -> (float * float) list
(** [(start, completion)] of every log-page write issued so far, sorted —
    the torture harness crashes inside these windows to exercise
    mid-page-write recovery. *)

val surviving_records : t -> at:float -> Log_record.t list
(** What recovery reads after a crash at [at].  Equal to
    {!durable_records} when no fault plan is armed.  With faults: device
    pages are decoded through their checksummed images (torn in-flight
    pages survive as a valid prefix, transient read flips are repaired
    by reread, at-rest damage truncates at the last valid record), and a
    battery-droop rule drops the newest stable-memory batches
    (FAULT007) before the merge. *)
