(** Transaction-schedule recording (input to {!Mmdb_verify.Txn_check}).

    The Section 5.2 locking protocol — two-phase locking with
    pre-committed transactions — is trusted blindly unless the system can
    show its work.  A {!recorder} captures every lock-manager and
    transaction event as it happens, stamped with the transaction id, the
    key and LSN where applicable, and the simulated time.  The resulting
    trace is an offline-checkable witness of the schedule the executable
    system actually produced: 2PL conformance, deadlock freedom,
    conflict-serializability, and the pre-commit dependency ordering can
    all be audited after the fact.

    Recording is a zero-cost-when-disabled hook: emitters carry a
    [recorder option] and [emit] on [None] does nothing. *)

type kind =
  | Acquire  (** a transaction requested a lock *)
  | Grant of { deps : int list }
      (** the request was granted immediately; [deps] are the
          pre-committed transactions the grantee now depends on *)
  | Wait of { holder : int }
      (** the request blocked behind the current [holder] *)
  | Wake of { deps : int list }
      (** a queued waiter was granted the lock after a release *)
  | Read  (** the transaction read the key's current value *)
  | Write  (** the transaction overwrote the key's value *)
  | Precommit
      (** locks released, log records submitted; the transaction can no
          longer abort *)
  | Commit_durable  (** the commit record reached stable storage *)
  | Abort  (** the transaction rolled back before pre-commit *)
  | Release  (** one lock released (at pre-commit or abort) *)

type event = {
  time : float;  (** simulated seconds *)
  txn : int;
  key : int option;  (** the locked / accessed key, where applicable *)
  lsn : int option;  (** the log record produced, where applicable *)
  domain : int;
      (** the (simulated or real) OCaml domain that executed the event;
          0 for the historical single-domain emitters.  Events of one
          domain are program-ordered by trace position; cross-domain
          ordering exists only through lock release/grant edges — the
          happens-before relation {!Mmdb_verify.Race_check} audits. *)
  ver : float option;
      (** version timestamp for multiversion (MVCC) accesses: a [Write]
          installed a version with this commit timestamp, a [Read] ran
          against a snapshot at this timestamp.  [None] for accesses to
          the single-version store. *)
  kind : kind;
}

type recorder

val recorder : now:(unit -> float) -> recorder
(** A fresh recorder; [now] supplies the simulated-time stamp for each
    event (typically [fun () -> Sim_clock.now clock]). *)

val emit :
  recorder option -> ?at:float -> ?key:int -> ?lsn:int -> ?domain:int ->
  ?ver:float -> txn:int -> kind -> unit
(** Append one event.  [None] recorder: no-op.  [at] overrides the
    [now]-derived stamp — used for durability events whose true time (the
    log ticket's completion) differs from the clock at emission.
    [domain] (default 0) stamps the executing domain; [ver] marks a
    multiversion access with its version timestamp. *)

val events : recorder -> event list
(** Everything recorded so far, in emission order. *)

val domains : event list -> int list
(** The distinct domain stamps appearing in a trace, sorted. *)

val length : recorder -> int
val clear : recorder -> unit

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
(** ["0.003400 txn=4 key=7 lsn=12 Write"]. *)
