(** Multiversion record store — Section 6's closing suggestion: "While
    locking is generally accepted to be the algorithm of choice for disk
    resident databases, a versioning mechanism [REED83] may provide
    superior performance for memory resident systems."

    Each slot keeps a timestamp-ordered version chain; writers install new
    versions at their commit timestamp, and a reader with snapshot
    timestamp [ts] sees, for every slot, the newest version with
    [commit_ts <= ts] — a consistent snapshot with no locks taken.  Old
    versions are pruned up to the oldest active snapshot. *)

type t

val create : ?recorder:Schedule.recorder -> nrecords:int -> unit -> t
(** All slots start at an initial version (timestamp −∞, value 0).  With
    [recorder], accesses carrying [~txn] are witnessed as version-stamped
    ([ver = ts]) Read/Write schedule events, so multiversion schedules
    are auditable by {!Mmdb_verify.Txn_check} and
    {!Mmdb_verify.Race_check} alike. *)

val nrecords : t -> int

val write :
  ?txn:int -> ?domain:int -> t -> ts:float -> slot:int -> value:int -> unit
(** Install a version.  When [txn] is given the install is witnessed as a
    [Write] event with [ver = ts], stamped with [domain] (default 0).
    @raise Invalid_argument if [ts] is not newer than the slot's latest
    version (writers are serialized by the lock manager) or the slot is
    out of range. *)

val read : ?txn:int -> ?domain:int -> t -> ts:float -> slot:int -> int
(** Snapshot read: the newest value with [commit_ts <= ts].  When [txn]
    is given the access is witnessed as a [Read] event with [ver = ts]. *)

val read_latest : t -> slot:int -> int

val version_count : t -> int
(** Total stored versions across all slots (space cost of versioning). *)

val gc : t -> oldest_active_ts:float -> int
(** Drop versions superseded before [oldest_active_ts]; keeps, per slot,
    the newest version at-or-before that timestamp plus everything newer.
    Returns the number of versions reclaimed. *)
