(** Locking vs versioning under long readers — quantifying Section 6's
    conjecture that "a versioning mechanism [REED83] may provide superior
    performance for memory resident systems".

    The workload mixes short update transactions (instant execution,
    group-commit logging, as in {!Tps_sim}) with periodic {e long
    read-only} transactions that scan the whole account table:

    - Under {b two-phase locking}, a scanning reader holds a shared lock
      on the table for its whole duration, stalling every writer that
      arrives meanwhile (and is itself delayed behind in-flight writers).
    - Under {b versioning}, the reader picks a snapshot timestamp and
      reads version chains; writers are never delayed, and the reader's
      snapshot is verified consistent (zero-sum balances) even while
      writes proceed under it.

    Both schemes commit writers through the same group-commit WAL, so the
    difference isolates the concurrency-control choice. *)

type scheme = Locking | Versioning

type result = {
  scheme_label : string;
  events : Schedule.event list;
      (** version-store accesses, domain-stamped (writers on domain 0,
          snapshot readers on domain 1, [ver] = version / snapshot
          timestamp); empty unless [record_schedule] was set *)
  writer_tps : float;
  writer_p99_latency : float;
  reader_count : int;
  snapshots_consistent : bool;
      (** every reader saw a zero-sum (transactionally consistent) state *)
  versions_peak : int;  (** space cost: 0 under locking *)
}

val run : ?seed:int -> ?nrecords:int -> ?n_writers:int ->
  ?reader_every:float -> ?reader_duration:float ->
  ?record_schedule:bool -> scheme -> result
(** Defaults: 1000 accounts, 20,000 writers at saturation, a scanning
    reader every 2 simulated seconds holding its snapshot/lock for 1 s.
    [record_schedule] (default false) witnesses every version-store
    access in [events] for {!Mmdb_verify.Race_check} auditing.
    @raise Wal.Unresolved_ticket if a commit ticket is still pending
    after the final flush (a WAL-invariant violation).
    @raise Mmdb_fault.Fault.Io_error from the log device when a fault
    plan is armed. *)
