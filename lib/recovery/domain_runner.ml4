(* OCaml < 5.0 fallback: no Domain module, so workers run sequentially
   in index order.  Selected by a dune copy rule; the multicore
   implementation lives in domain_runner.ml5. *)

let available = false

let run ~n f =
  if n < 0 then invalid_arg "Domain_runner.run: n < 0";
  for i = 0 to n - 1 do
    f i
  done
