module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan
module Overload = Mmdb_overload.Overload

type page = {
  start : float; (* when the device began writing this page *)
  completion : float;
  protected : bool; (* battery-backed: durable from [start] *)
  records : Log_record.t list;
  image : bytes option; (* physical encoding; built when faults armed *)
}

type t = {
  page_write_time : float;
  page_size : int;
  clock : Mmdb_storage.Sim_clock.t;
  faults : Fault_plan.t;
  breaker : Overload.Breaker.t option;
  mutable busy : float;
  mutable pages : page list; (* reversed *)
  mutable npages : int;
  mutable nbytes : int;
}

let create ?(page_write_time = 10e-3) ?(page_bytes = 4096) ?faults ?breaker
    ~clock () =
  if page_write_time <= 0.0 then invalid_arg "Log_device: write time <= 0";
  if page_bytes <= 0 then invalid_arg "Log_device: page_bytes <= 0";
  {
    page_write_time;
    page_size = page_bytes;
    clock;
    faults = (match faults with Some f -> f | None -> Fault_plan.none ());
    breaker;
    busy = 0.0;
    pages = [];
    npages = 0;
    nbytes = 0;
  }

(* Device-health reporting for an attached circuit breaker: an injected
   transient counts as a device error, a clean faulted-path write as a
   success.  The breaker never blocks the device — WAL ordering must
   hold regardless — it only informs service-layer shedding. *)
let breaker_note t ~at ~ok =
  match t.breaker with
  | None -> ()
  | Some b ->
    if ok then Overload.Breaker.record_success b ~now:at
    else Overload.Breaker.record_failure b ~now:at

let page_bytes t = t.page_size

let encode_records ~compressed records =
  let total =
    List.fold_left
      (fun acc r -> acc + Log_record.size_bytes ~compressed r)
      0 records
  in
  let buf = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun r -> off := !off + Log_record.encode_into ~compressed r buf ~pos:!off)
    records;
  buf

let flip_bit data bit =
  let i = bit / 8 in
  Bytes.set data i
    (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl (bit mod 8))))

let write_page t ?(protected = false) ?(compressed = false) ~at records ~bytes
    =
  if bytes > t.page_size then
    invalid_arg
      (Printf.sprintf "Log_device.write_page: %d bytes exceed page size %d"
         bytes t.page_size);
  let armed = Fault_plan.is_active t.faults in
  (* Transient device errors delay the write: each failed attempt waits
     out a backoff before the controller retries.  The riding loop lives
     in {!Fault_plan.ride_transient} (one policy, one per-transaction
     budget, shared with the simulated disk). *)
  let delay =
    if not armed then 0.0
    else
      match Fault_plan.draw t.faults Fault.Log_write with
      | Some (Fault.Io_transient { failures }) ->
        breaker_note t ~at ~ok:false;
        let d = ref 0.0 in
        Fault_plan.ride_transient t.faults ~site:"log.write" ~failures
          ~attempt:(fun ~attempt:_ ~backoff -> d := !d +. backoff);
        !d
      | Some Fault.Bit_flip_rest -> -1.0 (* sentinel: damage image below *)
      | Some
          (Fault.Torn_write | Fault.Bit_flip_read | Fault.Battery_droop _)
      | None ->
        breaker_note t ~at ~ok:true;
        0.0
  in
  let rot_at_rest = delay < 0.0 in
  let delay = Float.max delay 0.0 in
  let image =
    if not armed then None
    else begin
      let img = encode_records ~compressed records in
      if rot_at_rest && Bytes.length img > 0 then begin
        let bit = Fault_plan.rand_int t.faults (8 * Bytes.length img) in
        flip_bit img bit;
        Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"log.write"
          (Printf.sprintf "log page %d bit %d flipped at rest" t.npages bit)
      end;
      Some img
    end
  in
  let start = Float.max (at +. delay) t.busy in
  let completion = start +. t.page_write_time in
  t.busy <- completion;
  t.pages <- { start; completion; protected; records; image } :: t.pages;
  t.npages <- t.npages + 1;
  t.nbytes <- t.nbytes + bytes;
  (* Keep the shared clock monotone with device activity. *)
  Mmdb_storage.Sim_clock.advance_to t.clock at;
  completion

let busy_until t = t.busy
let pages_written t = t.npages
let bytes_written t = t.nbytes

let page_durable p ~at =
  p.completion <= at || (p.protected && p.start <= at)

let durable_records t ~at =
  List.concat_map
    (fun p -> if page_durable p ~at then p.records else [])
    (List.rev t.pages)

let durable_pages t ~at =
  List.filter_map
    (fun p ->
      if page_durable p ~at then Some (p.completion, p.records) else None)
    (List.rev t.pages)

let all_records t = List.concat_map (fun p -> p.records) (List.rev t.pages)

let page_spans t =
  List.rev_map (fun p -> (p.start, p.completion)) t.pages

(* Decode a (possibly damaged) page image, riding out transient read
   faults: a checksum failure triggers a reread; if the fresh copy decodes
   cleanly the flip was in flight (repaired), otherwise the damage is on
   the medium and the checksum-valid prefix is all that survives. *)
let decode_image t ~idx img =
  let read_once ~inject =
    let copy = Bytes.copy img in
    (if inject && Bytes.length copy > 0 then
       match Fault_plan.draw t.faults Fault.Log_read with
       | Some Fault.Bit_flip_read ->
         let bit = Fault_plan.rand_int t.faults (8 * Bytes.length copy) in
         flip_bit copy bit;
         Fault_plan.note_injected t.faults ~code:"FAULT002" ~site:"log.read"
           (Printf.sprintf "log page %d bit %d flipped in flight" idx bit)
       | Some
           ( Fault.Torn_write | Fault.Bit_flip_rest | Fault.Io_transient _
           | Fault.Battery_droop _ )
       | None -> ());
    Log_record.decode_run copy ~pos:0 ~len:(Bytes.length copy)
  in
  match read_once ~inject:true with
  | records, None -> records
  | first_records, Some err -> (
    Fault_plan.note_detected t.faults ~code:"FAULT002" ~site:"log.read"
      (Printf.sprintf "log page %d: %s" idx err);
    match read_once ~inject:false with
    | records, None ->
      Fault_plan.note_repaired t.faults ~code:"FAULT002" ~site:"log.read"
        (Printf.sprintf "log page %d clean on reread" idx);
      records
    | records, Some err2 ->
      (* Same damage twice: it is on the medium.  Keep the valid prefix. *)
      Fault_plan.note_unrecoverable t.faults ~code:"FAULT011" ~site:"log.read"
        (Printf.sprintf "log page %d corrupt at rest: %s" idx err2);
      ignore first_records;
      records)

let surviving_pages t ~at =
  if not (Fault_plan.is_active t.faults) then durable_pages t ~at
  else
    let pages = List.rev t.pages in
    List.concat
      (List.mapi
         (fun idx p ->
           if page_durable p ~at then
             match p.image with
             | None -> [ (p.completion, p.records) ]
             | Some img -> [ (p.completion, decode_image t ~idx img) ]
           else if p.start <= at && at < p.completion && not p.protected then
             (* The page in flight at the crash: with a torn-write rule
                armed, a checksum-valid prefix of it persists. *)
             match (Fault_plan.peek t.faults Fault.Log_write, p.image) with
             | Some Fault.Torn_write, Some img when Bytes.length img > 0 ->
               let cut = Fault_plan.rand_int t.faults (Bytes.length img) in
               Fault_plan.note_injected t.faults ~code:"FAULT001"
                 ~site:"log.write"
                 (Printf.sprintf "log page %d torn after byte %d" idx cut);
               let prefix = Bytes.sub img 0 cut in
               let records, err =
                 Log_record.decode_run prefix ~pos:0 ~len:cut
               in
               (match err with
               | Some e ->
                 Fault_plan.note_detected t.faults ~code:"FAULT008"
                   ~site:"log.read"
                   (Printf.sprintf
                      "log page %d tail truncated at last valid record (%s)"
                      idx e)
               | None -> ());
               [ (p.completion, records) ]
             | _ -> []
           else [])
         pages)
