(** Recombining a partitioned log (Section 5.2).

    "For recovery processing, a single log is recreated by merging the log
    fragments, as in a sort-merge.  For example, to roll backwards through
    the log, the most recent log page in each fragment is examined.  The
    page with the most recent timestamp is processed first, it is replaced
    by the next page in that fragment, and the most recent log page of the
    group is again determined."

    Pages from different devices may complete out of LSN order (an idle
    device finishes a later-filled page before a busy one finishes an
    earlier page), but the commit-group dependency ordering guarantees
    that any two {e conflicting} transactions' pages are
    timestamp-ordered, so the merged sequence is a correct redo/undo
    order. *)

val merge : (float * Log_record.t list) list list -> Log_record.t list
(** [merge fragments] combines per-device page lists (each ascending by
    completion time) into one forward log, ordering pages by completion
    timestamp with the page's minimum LSN breaking ties and, when both
    are equal (or a page holds no records at all — its minimum LSN is
    vacuous), the page's fragment position.  The order is therefore a
    deterministic function of the input alone: equal-timestamp pages
    across devices and empty fragments cannot reshuffle with heap
    internals.  [merge [] = []]. *)

val backward : (float * Log_record.t list) list list -> Log_record.t list
(** The paper's roll-backward order: newest record first (the reverse of
    {!merge}). *)
