(** Discrete-event transaction-throughput simulation (Section 5.2).

    Transactions execute instantaneously in the memory-resident database
    (the paper: "transactions no longer need to read or write data pages
    ... they still need to perform at least one log I/O"); throughput is
    therefore bounded by the commit strategy's log behaviour.  Each
    transaction takes its account locks, applies its updates, pre-commits
    (releasing locks into the pre-committed sets), and submits its log;
    it reports committed when its commit record is durable. *)

type result = {
  strategy_label : string;
  committed : int;
  makespan : float;  (** first arrival to last commit, seconds *)
  tps : float;
  latency : Mmdb_util.Stats.summary;  (** arrival-to-durable-commit *)
  log_pages : int;
  log_disk_bytes : int;
}

val strategy_label : Wal.strategy -> string

val run : ?seed:int -> ?nrecords:int -> ?updates_per_txn:int ->
  ?arrival_interval:float -> n_txns:int -> Wal.strategy -> result
(** [run ~n_txns strategy] pushes [n_txns] banking transactions through
    the strategy.  [arrival_interval] (default 0 = saturation: all work
    available immediately) spaces arrivals for open-loop runs;
    [nrecords] (default 1000) is the account-table size;
    [updates_per_txn] defaults to the paper's 6 (400-byte logs).
    @raise Wal.Unresolved_ticket if a commit ticket is still pending
    after the final flush (a WAL-invariant violation).
    @raise Mmdb_fault.Fault.Io_error from the log device when a fault
    plan is armed. *)

val paper_ladder : ?n_txns:int -> unit -> (string * float * float) list
(** The Section 5.2 ladder: measured vs predicted tps for conventional,
    group commit, partitioned x{2,4}, and stable memory
    (compressed) — [(label, measured_tps, model_tps)]. *)
