type batch = { records : Log_record.t list; bytes : int }

type t = {
  capacity_bytes : int;
  mutable used_bytes : int;
  batches : batch Queue.t;
  table : (int, int) Hashtbl.t;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Stable_memory.create: capacity <= 0";
  {
    capacity_bytes;
    used_bytes = 0;
    batches = Queue.create ();
    table = Hashtbl.create 256;
  }

let capacity t = t.capacity_bytes
let used t = t.used_bytes
let available t = t.capacity_bytes - t.used_bytes

let put_records t records ~bytes =
  if bytes < 0 then invalid_arg "Stable_memory.put_records: negative bytes";
  if bytes > available t then false
  else begin
    Queue.push { records; bytes } t.batches;
    t.used_bytes <- t.used_bytes + bytes;
    true
  end

let drain t ~max_bytes =
  let out = ref [] in
  let taken = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.batches with
    | Some b when !taken + b.bytes <= max_bytes ->
      ignore (Queue.pop t.batches);
      out := List.rev_append b.records !out;
      taken := !taken + b.bytes;
      t.used_bytes <- t.used_bytes - b.bytes
    | Some _ | None -> continue := false
  done;
  (List.rev !out, !taken)

let peek_batch t =
  match Queue.peek_opt t.batches with
  | Some b -> Some (b.records, b.bytes)
  | None -> None

let drop_batch t =
  match Queue.pop t.batches with
  | b -> t.used_bytes <- t.used_bytes - b.bytes
  | exception Queue.Empty ->
    Mmdb_fault.Fault.io_error ~code:"FAULT010" ~site:"stable"
      "drop_batch on empty stable memory"

let records t =
  List.concat_map (fun b -> b.records)
    (List.of_seq (Queue.to_seq t.batches))

let batch_count t = Queue.length t.batches

(* Battery-droop view: what survives a crash in which the battery could
   only hold up the oldest part of stable memory.  Read-only — the crash
   itself is simulated elsewhere. *)
let records_dropping_newest t ~batches =
  if batches < 0 then
    invalid_arg "Stable_memory.records_dropping_newest: negative batches";
  let n = Queue.length t.batches in
  let keep = max 0 (n - batches) in
  let kept = ref [] in
  let lost = ref 0 in
  let i = ref 0 in
  Queue.iter
    (fun b ->
      if !i < keep then kept := List.rev_append b.records !kept
      (* perf_lint: one length per dropped batch; linear overall *)
      else lost := !lost + List.length b.records;
      incr i)
    t.batches;
  (List.rev !kept, !lost)

let table_put t ~key ~value = Hashtbl.replace t.table key value
let table_get t ~key = Hashtbl.find_opt t.table key
let table_remove t ~key = Hashtbl.remove t.table key

let table_fold t ~init ~f =
  Hashtbl.fold (fun key value acc -> f acc ~key ~value) t.table init

let table_clear t = Hashtbl.reset t.table
