module U = Mmdb_util

type stream = {
  index : int; (* position in the input fragment list *)
  mutable pages : (float * Log_record.t list) list; (* ascending *)
}

(* Pages are ordered by (completion, min LSN, fragment index).  The
   fragment index makes ties deterministic: two pages can share a
   completion timestamp (devices finishing in the same simulated
   instant) and a record-free page has no LSN at all (min_lsn folds to
   max_int), and the underlying binary heap is not stable, so without
   the third component the merged order would depend on heap
   internals. *)
let page_key ~index (completion, records) =
  let min_lsn =
    List.fold_left (fun acc r -> min acc (Log_record.lsn r)) max_int records
  in
  (completion, min_lsn, index)

let merge fragments =
  let streams = List.mapi (fun index pages -> { index; pages }) fragments in
  let cmp (ka, _) (kb, _) = compare ka kb in
  let heap = U.Heap.create ~cmp () in
  List.iter
    (fun s ->
      match s.pages with
      | page :: rest ->
        s.pages <- rest;
        U.Heap.push heap (page_key ~index:s.index page, (page, s))
      | [] -> ())
    streams;
  let out = ref [] in
  let rec drain () =
    match U.Heap.pop heap with
    | None -> ()
    | Some (_, ((_, records), s)) ->
      out := List.rev_append records !out;
      (match s.pages with
      | page :: rest ->
        s.pages <- rest;
        U.Heap.push heap (page_key ~index:s.index page, (page, s))
      | [] -> ());
      drain ()
  in
  drain ();
  List.rev !out

let backward fragments = List.rev (merge fragments)
