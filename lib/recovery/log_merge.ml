module U = Mmdb_util

type stream = {
  mutable pages : (float * Log_record.t list) list; (* ascending *)
}

let page_key (completion, records) =
  let min_lsn =
    List.fold_left (fun acc r -> min acc (Log_record.lsn r)) max_int records
  in
  (completion, min_lsn)

let merge fragments =
  let streams = List.map (fun pages -> { pages }) fragments in
  let cmp (ka, _) (kb, _) = compare ka kb in
  let heap = U.Heap.create ~cmp () in
  List.iter
    (fun s ->
      match s.pages with
      | page :: rest ->
        s.pages <- rest;
        U.Heap.push heap (page_key page, (page, s))
      | [] -> ())
    streams;
  let out = ref [] in
  let rec drain () =
    match U.Heap.pop heap with
    | None -> ()
    | Some (_, ((_, records), s)) ->
      out := List.rev_append records !out;
      (match s.pages with
      | page :: rest ->
        s.pages <- rest;
        U.Heap.push heap (page_key page, (page, s))
      | [] -> ());
      drain ()
  in
  drain ();
  List.rev !out

let backward fragments = List.rev (merge fragments)
