module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

type strategy =
  | Conventional
  | Group_commit
  | Partitioned of { devices : int }
  | Stable of { devices : int; capacity_bytes : int; compressed : bool }

type ticket = { tkt_txn : int; mutable completion : float option }

(* A simulator flushed its WAL yet a commit ticket never resolved —
   the flush contract is broken.  Typed (with the offending simulator
   and transaction) so the torture harness can classify it. *)
exception Unresolved_ticket of { sim : string; txn : int }

let () =
  Printexc.register_printer (function
    | Unresolved_ticket { sim; txn } ->
      Some
        (Printf.sprintf
           "Wal.Unresolved_ticket { sim = %S; txn = %d } (commit ticket \
            unresolved after flush)"
           sim txn)
    | _ -> None)

type open_page = {
  mutable op_records : Log_record.t list; (* reversed *)
  mutable op_bytes : int;
  mutable op_tickets : (ticket * int list) list; (* ticket, txn deps *)
  mutable op_page_dep : float;
      (* completion of the page holding earlier records of a transaction
         that straddles into this page: this page must not be issued (and
         so cannot become durable) before its predecessor — §5.2's
         topological ordering applied within a transaction.  Without it,
         a crash could preserve a straddler's commit record while its
         update records are still in flight on another device. *)
}

type t = {
  strat : strategy;
  page_size : int;
  clock : Mmdb_storage.Sim_clock.t;
  devices : Log_device.t array;
  mutable next_device : int;
  mutable page : open_page;
  stable : Stable_memory.t option;
  compressed : bool;
  faults : Fault_plan.t;
  strict : bool; (* chain straddling pages; see [append_record] *)
  txn_durable : (int, float) Hashtbl.t;
  mutable buffered : Log_record.t list; (* reversed: never-flushed oracle *)
  mutable last_at : float;
  mutable stable_last_commit : float; (* monotone stable commit stamps *)
}

let fresh_page () =
  { op_records = []; op_bytes = 0; op_tickets = []; op_page_dep = 0.0 }

let create ?(page_write_time = 10e-3) ?(page_bytes = 4096) ?faults ?breaker
    ?(strict_page_order = false) ~clock strat =
  let faults =
    match faults with Some f -> f | None -> Fault_plan.none ()
  in
  let ndev, stable, compressed =
    match strat with
    | Conventional | Group_commit -> (1, None, false)
    | Partitioned { devices } ->
      if devices <= 0 then invalid_arg "Wal: devices <= 0";
      (devices, None, false)
    | Stable { devices; capacity_bytes; compressed } ->
      if devices <= 0 then invalid_arg "Wal: devices <= 0";
      (devices, Some (Stable_memory.create ~capacity_bytes), compressed)
  in
  {
    strat;
    page_size = page_bytes;
    clock;
    devices =
      Array.init ndev (fun _ ->
          Log_device.create ~page_write_time ~page_bytes ~faults ?breaker
            ~clock ());
    next_device = 0;
    page = fresh_page ();
    stable;
    compressed;
    faults;
    strict = strict_page_order;
    txn_durable = Hashtbl.create 256;
    buffered = [];
    last_at = 0.0;
    stable_last_commit = 0.0;
  }

let strategy t = t.strat
let page_bytes t = t.page_size

let record_size t r = Log_record.size_bytes ~compressed:t.compressed r

let pick_device t =
  let d = t.devices.(t.next_device) in
  t.next_device <- (t.next_device + 1) mod Array.length t.devices;
  d

(* Flush the open buffer page to a device, honouring commit-group
   dependencies: the write is issued no earlier than the durability time
   of every group the page's transactions depend on. *)
let flush_page t ~at =
  if t.page.op_records = [] && t.page.op_tickets = [] then at
  else begin
    let dep_time =
      List.fold_left
        (fun acc (_, deps) ->
          List.fold_left
            (fun acc dep ->
              match Hashtbl.find_opt t.txn_durable dep with
              | Some c -> Float.max acc c
              | None -> acc (* same page: shares this completion *))
            acc deps)
        0.0 t.page.op_tickets
    in
    let issue = Float.max at (Float.max dep_time t.page.op_page_dep) in
    let dev = pick_device t in
    let completion =
      Log_device.write_page dev ~compressed:t.compressed ~at:issue
        (List.rev t.page.op_records)
        ~bytes:t.page.op_bytes
    in
    List.iter
      (fun (tkt, _) ->
        tkt.completion <- Some completion;
        Hashtbl.replace t.txn_durable tkt.tkt_txn completion)
      t.page.op_tickets;
    t.page <- fresh_page ();
    completion
  end

let append_record t ~at r =
  let sz = record_size t r in
  if t.page.op_bytes + sz > t.page_size then begin
    (* Strict mode: does [r] continue a transaction whose earlier records
       sit in the page about to flush?  If so the new page must chain
       behind it — §5.2's topological ordering applied within a
       transaction.  Without the chain, a crash landing mid-write can
       preserve a straddler's commit record while the page holding its
       updates is still in flight on another (busier) device.  Legacy
       mode (the seed's timing model, where crashes only land at quiesce
       points) keeps straddling pages fully parallel. *)
    let straddles =
      t.strict
      &&
      match Log_record.txn r with
      | Some tx ->
        List.exists (fun r' -> Log_record.txn r' = Some tx) t.page.op_records
      | None -> false
    in
    let completion = flush_page t ~at in
    if straddles then t.page.op_page_dep <- completion
  end;
  t.page.op_records <- r :: t.page.op_records;
  t.page.op_bytes <- t.page.op_bytes + sz

(* Stable strategy: drain whole pages from stable memory to the devices
   until [need] bytes fit (or the backlog is empty).  Drains are issued at
   [at]; each device queues its own writes, so multiple devices drain in
   parallel.  Returns the completion time of the last drain issued. *)
let stable_drain t sm ~at ~need =
  (* Disk pages carry the compressed form (new values only, §5.4), so a
     page is packed until its *compressed* size is full — this is where
     compression buys throughput: more transactions per page write. *)
  let batch_disk_bytes records =
    List.fold_left
      (fun acc r -> acc + Log_record.size_bytes ~compressed:t.compressed r)
      0 records
  in
  let last = ref at in
  let continue = ref true in
  while !continue && Stable_memory.available sm < need do
    (* Pack one disk page. *)
    let page_records = ref [] in
    let page_fill = ref 0 in
    let packing = ref true in
    while !packing do
      match Stable_memory.peek_batch sm with
      | Some (records, _stable_bytes) ->
        let sz = batch_disk_bytes records in
        if !page_fill + sz <= t.page_size || !page_fill = 0 then begin
          Stable_memory.drop_batch sm;
          page_records := List.rev_append records !page_records;
          page_fill := !page_fill + sz
        end
        else packing := false
      | None -> packing := false
    done;
    if !page_fill = 0 then continue := false
    else begin
      let dev = pick_device t in
      (* Drain writes are battery-backed: durable from issue (the
         stable-drain simplification in DESIGN.md), so a crash landing
         mid-drain cannot lose records already acknowledged committed. *)
      let completion =
        Log_device.write_page dev ~protected:true ~compressed:t.compressed
          ~at
          (List.rev !page_records)
          ~bytes:(min !page_fill t.page_size)
      in
      last := Float.max !last completion
    end
  done;
  !last

let commit_txn t ~at ~txn ~deps records =
  if at < t.last_at -. 1e-12 then
    invalid_arg "Wal.commit_txn: submissions must be in time order";
  t.last_at <- Float.max t.last_at at;
  t.buffered <- List.rev_append records t.buffered;
  let tkt = { tkt_txn = txn; completion = None } in
  (match t.strat with
  | Stable _ ->
    let sm = match t.stable with Some sm -> sm | None -> assert false in
    (* Stable memory always stores the full (uncompressed) records. *)
    let bytes =
      List.fold_left
        (fun acc r -> acc + Log_record.size_bytes ~compressed:false r)
        0 records
    in
    let needed_drain = Stable_memory.available sm < bytes in
    let drained_until =
      if needed_drain then stable_drain t sm ~at ~need:bytes else at
    in
    let ok = Stable_memory.put_records sm records ~bytes in
    if not ok then
      invalid_arg "Wal: transaction log larger than stable memory";
    (* Commit point: records are in stable memory.  If draining had to
       run to make room, the transaction waited for it to finish.  Commit
       stamps are monotone in submission order — a transaction entering
       stable memory behind a drain-delayed predecessor cannot claim an
       earlier commit point (its dependencies were submitted first). *)
    let committed_at = Float.max drained_until t.stable_last_commit in
    t.stable_last_commit <- committed_at;
    tkt.completion <- Some committed_at;
    Hashtbl.replace t.txn_durable txn committed_at
  | Conventional | Group_commit | Partitioned _ ->
    List.iter (append_record t ~at) records;
    t.page.op_tickets <- (tkt, deps) :: t.page.op_tickets;
    (match t.strat with
    | Conventional -> ignore (flush_page t ~at)
    | Group_commit | Partitioned _ ->
      if t.page.op_bytes >= t.page_size then ignore (flush_page t ~at)
    | Stable _ -> assert false));
  tkt

(* Non-transactional records (checkpoint brackets): appended to the log
   stream without a commit ticket.  They ride the open page (or stable
   memory) and become durable with the next flush or page fill. *)
let log_control t ~at records =
  if at < t.last_at -. 1e-12 then
    invalid_arg "Wal.log_control: submissions must be in time order";
  t.last_at <- Float.max t.last_at at;
  t.buffered <- List.rev_append records t.buffered;
  match t.strat with
  | Stable _ ->
    let sm = match t.stable with Some sm -> sm | None -> assert false in
    let bytes =
      List.fold_left
        (fun acc r -> acc + Log_record.size_bytes ~compressed:false r)
        0 records
    in
    if Stable_memory.available sm < bytes then
      ignore (stable_drain t sm ~at ~need:bytes);
    if not (Stable_memory.put_records sm records ~bytes) then
      invalid_arg "Wal: control records larger than stable memory"
  | Conventional | Group_commit | Partitioned _ ->
    List.iter (append_record t ~at) records

let ticket_txn tkt = tkt.tkt_txn
let ticket_completion tkt = tkt.completion

let flush t ~at =
  match t.strat with
  | Stable _ ->
    let sm = match t.stable with Some sm -> sm | None -> assert false in
    stable_drain t sm ~at ~need:(Stable_memory.capacity sm + 1)
  | Conventional | Group_commit | Partitioned _ -> flush_page t ~at

let quiesce_time t =
  Array.fold_left (fun acc d -> Float.max acc (Log_device.busy_until d)) 0.0
    t.devices

let pages_written t =
  Array.fold_left (fun acc d -> acc + Log_device.pages_written d) 0 t.devices

let disk_bytes_written t =
  Array.fold_left (fun acc d -> acc + Log_device.bytes_written d) 0 t.devices

let durable_records t ~at =
  (* Section 5.2's recovery-time merge of the per-device log fragments by
     page timestamp.  Stable-memory contents are the newest suffix (drains
     are FIFO), so they append after the merged disk log. *)
  let on_disk =
    Log_merge.merge
      (Array.to_list t.devices
      |> List.map (fun d -> Log_device.durable_pages d ~at))
  in
  let in_stable =
    match t.stable with Some sm -> Stable_memory.records sm | None -> []
  in
  on_disk @ in_stable

let all_records t = List.rev t.buffered

let faults t = t.faults

let page_spans t =
  Array.to_list t.devices
  |> List.concat_map Log_device.page_spans
  |> List.sort compare

let surviving_records t ~at =
  let on_disk =
    Log_merge.merge
      (Array.to_list t.devices
      |> List.map (fun d -> Log_device.surviving_pages d ~at))
  in
  let in_stable =
    match t.stable with
    | None -> []
    | Some sm ->
      if not (Fault_plan.is_active t.faults) then Stable_memory.records sm
      else begin
        match Fault_plan.peek t.faults Fault.Stable_crash with
        | Some (Fault.Battery_droop { batches }) ->
          let kept, lost =
            Stable_memory.records_dropping_newest sm ~batches
          in
          if lost > 0 then begin
            Fault_plan.note_injected t.faults ~code:"FAULT007"
              ~site:"stable.crash"
              (Printf.sprintf "battery droop: newest %d batch(es) lost"
                 batches);
            Fault_plan.note_unrecoverable t.faults ~code:"FAULT007"
              ~site:"stable.crash"
              (Printf.sprintf "%d acknowledged record(s) lost" lost)
          end;
          kept
        | Some
            ( Fault.Torn_write | Fault.Bit_flip_read | Fault.Bit_flip_rest
            | Fault.Io_transient _ )
        | None -> Stable_memory.records sm
      end
  in
  on_disk @ in_stable
