(** Overload-resilient service layer: typed load shedding, one retry
    policy for every backoff loop, per-device circuit breakers, deadline
    propagation, and token-bucket admission control.

    Everything here runs on the simulated clock: callers pass [~now]
    explicitly, so the module depends only on {!Mmdb_util} and stays
    deterministic under seeded workloads.  Rejections are typed — a
    {!Shed} carries an OVLD code from {!code_catalogue} — so harnesses
    can assert exactly why a transaction was turned away, and the
    DESIGN.md catalogue-drift gate keeps the codes documented. *)

type reason = { code : string; site : string; detail : string }
(** Why a request was turned away: an OVLD code from {!code_catalogue},
    the site that shed it, and a human-readable detail. *)

exception Shed of reason
(** The one rejection exception of the service layer: admission sheds,
    deadline expiries, breaker-open sheds, and retry-budget exhaustion
    all raise it (distinguished by [reason.code]). *)

val shed : code:string -> site:string -> string -> 'a
(** [shed ~code ~site detail] raises {!Shed}.
    @raise Shed always. *)

type priority = Oltp | Analytic
(** Admission classes: OLTP keeps priority over analytics — under token
    pressure or an open breaker the analytic class sheds first. *)

val priority_name : priority -> string

(** {1 Shared tally}

    One mutable record accumulates the run's overload story, mirroring
    {!Mmdb_fault.Fault.tally}: embed it in
    {!Mmdb_storage.Counters} so shed/timeout counts land next to the
    workload's other operation counters. *)

type tally = {
  mutable admitted : int;
  mutable shed_bucket : int;  (** OVLD001 *)
  mutable shed_backlog : int;  (** OVLD002 *)
  mutable shed_analytic : int;  (** OVLD003 *)
  mutable lock_timeouts : int;  (** OVLD004 *)
  mutable op_timeouts : int;  (** OVLD005 *)
  mutable commit_timeouts : int;  (** OVLD006 *)
  mutable shed_breaker : int;  (** OVLD007 *)
  mutable budget_exhausted : int;  (** OVLD008 *)
  mutable shed_readonly : int;  (** OVLD009 *)
  mutable breaker_trips : int;
  mutable breaker_reopens : int;  (** OVLD010 *)
}

val tally_create : unit -> tally
val tally_reset : tally -> unit
val tally_copy : tally -> tally
val tally_diff : after:tally -> before:tally -> tally

val sheds : tally -> int
(** Requests turned away before doing work (OVLD001/2/3/7/9). *)

val timeouts : tally -> int
(** Deadline expiries (OVLD004/5/6). *)

val tally_total : tally -> int
val note_code : tally -> string -> unit
(** Bump the tally row for an OVLD code (unknown codes are ignored). *)

val pp_tally : Format.formatter -> tally -> unit

(** {1 Retry} *)

module Retry : sig
  (** The unified backoff policy.  The two hand-rolled loops in
      [Disk] and [Log_device] both ride transient faults through
      {!ride} now, so a per-transaction {!budget} can be shared across
      devices — previously each device counted retries alone. *)

  type policy =
    | Linear of { step : float; max_attempts : int }
        (** wait [attempt * step] before retry [attempt] *)
    | Jittered of {
        base : float;
        factor : float;
        cap : float;
        jitter : float;
        max_attempts : int;
      }
        (** seeded jittered exponential: raw wait
            [min cap (base * factor^(attempt-1))], then +/- [jitter]
            fraction drawn from the caller's generator *)

  val device : policy
  (** The legacy device curve (linear 1 ms per attempt, 3 attempts) —
      exactly {!Mmdb_fault.Fault_plan.retry_backoff}'s values, which
      deterministic torture expectations depend on. *)

  val service :
    ?base:float ->
    ?factor:float ->
    ?cap:float ->
    ?jitter:float ->
    ?max_attempts:int ->
    unit ->
    policy
  (** Jittered exponential for service-level (whole-transaction)
      retries.  Defaults: 2 ms base, doubling, 64 ms cap, 50% jitter,
      4 attempts. *)

  val max_attempts : policy -> int

  val backoff : ?rng:Mmdb_util.Xorshift.t -> policy -> attempt:int -> float
  (** Wait before retry [attempt] (1-based).  [rng] feeds the jitter
      draw; without it jittered policies return the raw curve.
      @raise Invalid_argument if [attempt <= 0]. *)

  type budget
  (** A per-transaction retry allowance, drained one unit per retry by
      every device sharing it. *)

  val budget : int -> budget
  val take : budget -> bool
  (** Consume one retry; [false] when the budget is dry. *)

  val remaining : budget -> int
  val size : budget -> int

  val ride :
    policy ->
    ?budget:budget ->
    ?rng:Mmdb_util.Xorshift.t ->
    site:string ->
    failures:int ->
    attempt:(attempt:int -> backoff:float -> unit) ->
    exhausted:(retries:int -> unit) ->
    unit ->
    unit
  (** Ride out a transient fault that fails [failures] consecutive
      attempts: calls [attempt] once per failed try with its backoff
      (the caller charges the device, notes the retry, and waits on its
      own clock).  When [failures] exceeds the policy's attempts,
      [exhausted] is called instead and must raise the caller's typed
      error.
      @raise Shed OVLD008 when the shared [budget] runs dry mid-ride. *)
end

(** {1 Circuit breaker} *)

module Breaker : sig
  (** Per-device circuit breaker: trips open after [threshold]
      consecutive device errors, cools down on the simulated clock,
      then admits a single half-open probe whose outcome closes or
      reopens it. *)

  type state = Closed | Open | Half_open

  val state_name : state -> string

  type t

  val create :
    ?threshold:int -> ?cooldown:float -> ?tally:tally -> name:string ->
    unit -> t
  (** Defaults: 5 consecutive failures, 50 ms cooldown.  [tally] shares
      trip/reopen counts with an external record.
      @raise Invalid_argument on a non-positive threshold or cooldown. *)

  val state : t -> now:float -> state
  (** Current state at [now] (resolves the open-to-half-open cooldown
      transition lazily, so every observer agrees). *)

  val record_failure : t -> now:float -> unit
  (** A device error at [now]: counts toward the trip threshold; in
      half-open state it reopens the breaker (OVLD010). *)

  val record_success : t -> now:float -> unit
  (** A clean device operation at [now]: resets the failure streak; a
      successful half-open probe closes the breaker. *)

  val allow : t -> now:float -> bool
  (** Admission-side gate: closed admits, open sheds, half-open admits
      one probe at a time. *)

  val check : t -> now:float -> site:string -> unit
  (** @raise Shed OVLD007 when {!allow} answers [false]. *)

  val name : t -> string
  val threshold : t -> int
  val cooldown : t -> float
  val consecutive_failures : t -> int
  val trips : t -> int
  val probes : t -> int
  val reopens : t -> int
end

(** {1 Deadlines} *)

module Deadline : sig
  (** A per-transaction time budget on the simulated clock, checked at
      lock acquisition, operator batch boundaries, and commit. *)

  type t

  val make : now:float -> budget:float -> t
  (** @raise Invalid_argument if [budget <= 0]. *)

  val at : float -> t
  (** A deadline at an absolute instant. *)

  val arrival : t -> float
  val expires : t -> float
  val remaining : t -> now:float -> float
  val expired : t -> now:float -> bool

  val check : t -> now:float -> code:string -> site:string -> unit
  (** @raise Shed [code] when expired at [now] (callers pick the stage
      code: OVLD004 locks, OVLD005 operators, OVLD006 commit). *)
end

(** {1 Admission control} *)

module Admission : sig
  (** Token-bucket admission with a backlog/in-flight limiter, priority
      classes, breaker awareness, and a degraded-mode governor.  All
      sheds are typed and land in the shared {!tally}. *)

  type mode =
    | Normal
    | Read_only
        (** during recovery replay: reads served stale, writes shed
            (OVLD009) *)

  type t

  val create :
    ?rate:float ->
    ?burst:float ->
    ?max_lag:float ->
    ?max_inflight:int ->
    ?analytic_floor:float ->
    ?tally:tally ->
    unit ->
    t
  (** [rate] tokens/s refill up to [burst]; arrivals shed when the
      bucket is empty (OVLD001), when the device backlog exceeds
      [max_lag] seconds or [max_inflight] commits are unresolved
      (OVLD002), and — for the analytic class — when fewer than
      [analytic_floor * burst] tokens remain (OVLD003).
      @raise Invalid_argument on non-positive limits. *)

  val tally : t -> tally
  val register_breaker : t -> Breaker.t -> unit
  (** While any registered breaker is not closed, the analytic class is
      shed (OVLD007) — the shed-analytics degraded mode. *)

  val mode : t -> mode
  val set_mode : t -> mode -> unit
  val tokens : t -> now:float -> float

  val admit :
    ?write:bool ->
    ?lag:float ->
    ?inflight:int ->
    t ->
    now:float ->
    priority:priority ->
    unit
  (** Admit one arrival at [now] or shed it.  [lag] is the caller's
      measure of device backlog (seconds of unflushed work); [inflight]
      its count of unresolved commits; [write] defaults to [true].
      @raise Shed with the OVLD code of the first limit hit. *)

  val try_admit :
    ?write:bool ->
    ?lag:float ->
    ?inflight:int ->
    t ->
    now:float ->
    priority:priority ->
    (unit, reason) result
end

val code_catalogue : (string * string) list
(** OVLD code catalogue, mirrored in DESIGN.md's "Overload & degraded
    service" table (the [@perflint] drift gate checks both
    directions). *)
