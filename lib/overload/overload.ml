module U = Mmdb_util

(* ------------------------------------------------------------------ *)
(* Typed rejection                                                     *)
(* ------------------------------------------------------------------ *)

type reason = { code : string; site : string; detail : string }

exception Shed of reason

let () =
  Printexc.register_printer (function
    | Shed { code; site; detail } ->
      Some (Printf.sprintf "Overload.Shed { %s at %s: %s }" code site detail)
    | _ -> None)

let shed ~code ~site detail = raise (Shed { code; site; detail })

type priority = Oltp | Analytic

let priority_name = function Oltp -> "oltp" | Analytic -> "analytic"

(* ------------------------------------------------------------------ *)
(* Shared tally                                                        *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable admitted : int;
  mutable shed_bucket : int; (* OVLD001 *)
  mutable shed_backlog : int; (* OVLD002 *)
  mutable shed_analytic : int; (* OVLD003 *)
  mutable lock_timeouts : int; (* OVLD004 *)
  mutable op_timeouts : int; (* OVLD005 *)
  mutable commit_timeouts : int; (* OVLD006 *)
  mutable shed_breaker : int; (* OVLD007 *)
  mutable budget_exhausted : int; (* OVLD008 *)
  mutable shed_readonly : int; (* OVLD009 *)
  mutable breaker_trips : int;
  mutable breaker_reopens : int; (* OVLD010 *)
}

let tally_create () =
  {
    admitted = 0;
    shed_bucket = 0;
    shed_backlog = 0;
    shed_analytic = 0;
    lock_timeouts = 0;
    op_timeouts = 0;
    commit_timeouts = 0;
    shed_breaker = 0;
    budget_exhausted = 0;
    shed_readonly = 0;
    breaker_trips = 0;
    breaker_reopens = 0;
  }

let tally_reset t =
  t.admitted <- 0;
  t.shed_bucket <- 0;
  t.shed_backlog <- 0;
  t.shed_analytic <- 0;
  t.lock_timeouts <- 0;
  t.op_timeouts <- 0;
  t.commit_timeouts <- 0;
  t.shed_breaker <- 0;
  t.budget_exhausted <- 0;
  t.shed_readonly <- 0;
  t.breaker_trips <- 0;
  t.breaker_reopens <- 0

let tally_copy t = { t with admitted = t.admitted }

let tally_diff ~after ~before =
  {
    admitted = after.admitted - before.admitted;
    shed_bucket = after.shed_bucket - before.shed_bucket;
    shed_backlog = after.shed_backlog - before.shed_backlog;
    shed_analytic = after.shed_analytic - before.shed_analytic;
    lock_timeouts = after.lock_timeouts - before.lock_timeouts;
    op_timeouts = after.op_timeouts - before.op_timeouts;
    commit_timeouts = after.commit_timeouts - before.commit_timeouts;
    shed_breaker = after.shed_breaker - before.shed_breaker;
    budget_exhausted = after.budget_exhausted - before.budget_exhausted;
    shed_readonly = after.shed_readonly - before.shed_readonly;
    breaker_trips = after.breaker_trips - before.breaker_trips;
    breaker_reopens = after.breaker_reopens - before.breaker_reopens;
  }

let sheds t =
  t.shed_bucket + t.shed_backlog + t.shed_analytic + t.shed_breaker
  + t.shed_readonly

let timeouts t = t.lock_timeouts + t.op_timeouts + t.commit_timeouts
let tally_total t = sheds t + timeouts t + t.budget_exhausted

let note_code t code =
  match code with
  | "OVLD001" -> t.shed_bucket <- t.shed_bucket + 1
  | "OVLD002" -> t.shed_backlog <- t.shed_backlog + 1
  | "OVLD003" -> t.shed_analytic <- t.shed_analytic + 1
  | "OVLD004" -> t.lock_timeouts <- t.lock_timeouts + 1
  | "OVLD005" -> t.op_timeouts <- t.op_timeouts + 1
  | "OVLD006" -> t.commit_timeouts <- t.commit_timeouts + 1
  | "OVLD007" -> t.shed_breaker <- t.shed_breaker + 1
  | "OVLD008" -> t.budget_exhausted <- t.budget_exhausted + 1
  | "OVLD009" -> t.shed_readonly <- t.shed_readonly + 1
  | "OVLD010" -> t.breaker_reopens <- t.breaker_reopens + 1
  | _ -> ()

let pp_tally ppf t =
  Format.fprintf ppf
    "admitted=%d shed[bucket=%d backlog=%d analytic=%d breaker=%d ro=%d] \
     timeout[lock=%d op=%d commit=%d] budget=%d trips=%d reopens=%d"
    t.admitted t.shed_bucket t.shed_backlog t.shed_analytic t.shed_breaker
    t.shed_readonly t.lock_timeouts t.op_timeouts t.commit_timeouts
    t.budget_exhausted t.breaker_trips t.breaker_reopens

(* ------------------------------------------------------------------ *)
(* Retry: one backoff policy for every retry loop                      *)
(* ------------------------------------------------------------------ *)

module Retry = struct
  type policy =
    | Linear of { step : float; max_attempts : int }
    | Jittered of {
        base : float;
        factor : float;
        cap : float;
        jitter : float;
        max_attempts : int;
      }

  (* The device curve predates this module: linear [attempt * 1 ms],
     three attempts.  Its exact values are baked into deterministic
     torture and bench expectations, so it is a named constant here
     rather than something each device re-derives. *)
  let device = Linear { step = 1e-3; max_attempts = 3 }

  let service ?(base = 2e-3) ?(factor = 2.0) ?(cap = 64e-3) ?(jitter = 0.5)
      ?(max_attempts = 4) () =
    if base <= 0.0 then invalid_arg "Retry.service: base <= 0";
    if factor < 1.0 then invalid_arg "Retry.service: factor < 1";
    if cap < base then invalid_arg "Retry.service: cap < base";
    if jitter < 0.0 || jitter > 1.0 then
      invalid_arg "Retry.service: jitter outside [0, 1]";
    if max_attempts <= 0 then invalid_arg "Retry.service: max_attempts <= 0";
    Jittered { base; factor; cap; jitter; max_attempts }

  let max_attempts = function
    | Linear { max_attempts; _ } | Jittered { max_attempts; _ } -> max_attempts

  let backoff ?rng policy ~attempt =
    if attempt <= 0 then invalid_arg "Retry.backoff: attempt <= 0";
    match policy with
    | Linear { step; _ } -> float_of_int attempt *. step
    | Jittered { base; factor; cap; jitter; _ } ->
      let raw = Float.min cap (base *. (factor ** float_of_int (attempt - 1))) in
      let j =
        match rng with
        | None -> 0.0
        | Some rng -> jitter *. raw *. (U.Xorshift.float rng 2.0 -. 1.0)
      in
      Float.max 0.0 (raw +. j)

  type budget = { mutable left : int; size : int }

  let budget n =
    if n < 0 then invalid_arg "Retry.budget: negative";
    { left = n; size = n }

  let take b =
    if b.left <= 0 then false
    else begin
      b.left <- b.left - 1;
      true
    end

  let remaining b = b.left
  let size b = b.size

  (* The one transient-riding loop shared by the simulated disk and the
     log devices.  [attempt] performs one failed try (charge the device,
     note the retry, wait out [backoff]); [exhausted] must raise the
     caller's typed error.  An optional per-transaction [budget] is
     drained one unit per retry across every device sharing it. *)
  let ride policy ?budget ?rng ~site ~failures ~attempt ~exhausted () =
    if failures > max_attempts policy then exhausted ~retries:(max_attempts policy)
    else
      for i = 1 to failures do
        (match budget with
        | Some b when not (take b) ->
          shed ~code:"OVLD008" ~site
            (Printf.sprintf
               "per-transaction retry budget (%d) exhausted at attempt %d"
               b.size i)
        | Some _ | None -> ());
        attempt ~attempt:i ~backoff:(backoff ?rng policy ~attempt:i)
      done
end

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state = Closed | Open | Half_open

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"

  type t = {
    name : string;
    threshold : int;
    cooldown : float;
    tally : tally;
    mutable st : state;
    mutable consecutive : int;
    mutable opened_at : float;
    mutable probe_inflight : bool;
    mutable trips : int;
    mutable probes : int;
    mutable reopens : int;
  }

  let create ?(threshold = 5) ?(cooldown = 50e-3) ?tally ~name () =
    if threshold <= 0 then invalid_arg "Breaker.create: threshold <= 0";
    if cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown <= 0";
    {
      name;
      threshold;
      cooldown;
      tally = (match tally with Some t -> t | None -> tally_create ());
      st = Closed;
      consecutive = 0;
      opened_at = 0.0;
      probe_inflight = false;
      trips = 0;
      probes = 0;
      reopens = 0;
    }

  (* Open -> Half_open is a function of the clock, not of an event:
     resolve it lazily so every observer agrees on the state at [now]. *)
  let tick t ~now =
    match t.st with
    | Open when now >= t.opened_at +. t.cooldown ->
      t.st <- Half_open;
      t.probe_inflight <- false
    | Open | Closed | Half_open -> ()

  let state t ~now =
    tick t ~now;
    t.st

  let trip t ~now ~reopen =
    t.st <- Open;
    t.opened_at <- now;
    t.consecutive <- 0;
    t.probe_inflight <- false;
    if reopen then begin
      t.reopens <- t.reopens + 1;
      t.tally.breaker_reopens <- t.tally.breaker_reopens + 1
    end
    else begin
      t.trips <- t.trips + 1;
      t.tally.breaker_trips <- t.tally.breaker_trips + 1
    end

  let record_failure t ~now =
    tick t ~now;
    match t.st with
    | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.threshold then trip t ~now ~reopen:false
    | Half_open ->
      (* OVLD010: the probe found the device still failing. *)
      trip t ~now ~reopen:true
    | Open -> ()

  let record_success t ~now =
    tick t ~now;
    match t.st with
    | Closed -> t.consecutive <- 0
    | Half_open ->
      t.st <- Closed;
      t.consecutive <- 0;
      t.probe_inflight <- false
    | Open -> ()

  (* Admission-side gate: Closed admits, Open sheds, Half_open admits a
     single probe at a time. *)
  let allow t ~now =
    tick t ~now;
    match t.st with
    | Closed -> true
    | Open -> false
    | Half_open ->
      if t.probe_inflight then false
      else begin
        t.probe_inflight <- true;
        t.probes <- t.probes + 1;
        true
      end

  let check t ~now ~site =
    if not (allow t ~now) then
      shed ~code:"OVLD007" ~site
        (Printf.sprintf "circuit breaker %s is %s" t.name
           (state_name t.st))

  let name t = t.name
  let threshold t = t.threshold
  let cooldown t = t.cooldown
  let consecutive_failures t = t.consecutive
  let trips t = t.trips
  let probes t = t.probes
  let reopens t = t.reopens
end

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

module Deadline = struct
  type t = { arrival : float; expires : float }

  let make ~now ~budget =
    if budget <= 0.0 then invalid_arg "Deadline.make: budget <= 0";
    { arrival = now; expires = now +. budget }

  let at expires = { arrival = expires; expires }
  let arrival t = t.arrival
  let expires t = t.expires
  let remaining t ~now = t.expires -. now
  let expired t ~now = now > t.expires

  let check t ~now ~code ~site =
    if expired t ~now then
      shed ~code ~site
        (Printf.sprintf "deadline exceeded by %.6fs" (now -. t.expires))
end

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

module Admission = struct
  type mode = Normal | Read_only

  type t = {
    rate : float;
    burst : float;
    max_lag : float;
    max_inflight : int;
    analytic_floor : float;
    mutable tokens : float;
    mutable refilled_at : float;
    mutable breakers : Breaker.t list;
    mutable mode : mode;
    adm_tally : tally;
  }

  let create ?(rate = 1000.0) ?(burst = 100.0) ?(max_lag = 0.25)
      ?(max_inflight = max_int) ?(analytic_floor = 0.5) ?tally () =
    if rate <= 0.0 then invalid_arg "Admission.create: rate <= 0";
    if burst < 1.0 then invalid_arg "Admission.create: burst < 1";
    if max_lag <= 0.0 then invalid_arg "Admission.create: max_lag <= 0";
    if max_inflight <= 0 then invalid_arg "Admission.create: max_inflight <= 0";
    if analytic_floor < 0.0 || analytic_floor > 1.0 then
      invalid_arg "Admission.create: analytic_floor outside [0, 1]";
    {
      rate;
      burst;
      max_lag;
      max_inflight;
      analytic_floor;
      tokens = burst;
      refilled_at = 0.0;
      breakers = [];
      mode = Normal;
      adm_tally = (match tally with Some t -> t | None -> tally_create ());
    }

  let tally t = t.adm_tally
  let register_breaker t b = t.breakers <- b :: t.breakers
  let mode t = t.mode
  let set_mode t m = t.mode <- m

  let refill t ~now =
    if now > t.refilled_at then begin
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.refilled_at) *. t.rate));
      t.refilled_at <- now
    end

  let tokens t ~now =
    refill t ~now;
    t.tokens

  let breakers_clear t ~now =
    List.for_all (fun b -> Breaker.state b ~now = Breaker.Closed) t.breakers

  let reject t ~code ~site detail =
    note_code t.adm_tally code;
    shed ~code ~site detail

  let admit ?(write = true) ?(lag = 0.0) ?(inflight = 0) t ~now ~priority =
    let site = "admission" in
    refill t ~now;
    (match t.mode with
    | Read_only when write ->
      reject t ~code:"OVLD009" ~site
        "degraded read-only service: writes rejected until replay completes"
    | Read_only | Normal -> ());
    if priority = Analytic && not (breakers_clear t ~now) then
      reject t ~code:"OVLD007" ~site
        "circuit breaker open: analytic class shed while the device recovers";
    if lag > t.max_lag then
      reject t ~code:"OVLD002" ~site
        (Printf.sprintf "device backlog %.3fs exceeds %.3fs" lag t.max_lag);
    if inflight >= t.max_inflight then
      reject t ~code:"OVLD002" ~site
        (Printf.sprintf "%d transactions in flight (limit %d)" inflight
           t.max_inflight);
    if priority = Analytic && t.tokens < t.analytic_floor *. t.burst then
      reject t ~code:"OVLD003" ~site
        (Printf.sprintf
           "analytic class needs %.0f%% token headroom (%.1f of %.0f left)"
           (100.0 *. t.analytic_floor) t.tokens t.burst);
    if t.tokens < 1.0 then
      reject t ~code:"OVLD001" ~site
        (Printf.sprintf "token bucket empty (%s arrival shed)"
           (priority_name priority));
    t.tokens <- t.tokens -. 1.0;
    t.adm_tally.admitted <- t.adm_tally.admitted + 1

  let try_admit ?write ?lag ?inflight t ~now ~priority =
    match admit ?write ?lag ?inflight t ~now ~priority with
    | () -> Ok ()
    | exception Shed r -> Error r
end

(* ------------------------------------------------------------------ *)
(* Catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let code_catalogue =
  [
    ("OVLD001", "admission: token bucket empty, arrival shed");
    ("OVLD002", "admission: device backlog or in-flight limit exceeded");
    ("OVLD003", "admission: analytic class shed to keep OLTP headroom");
    ("OVLD004", "deadline expired acquiring or waiting for a lock");
    ("OVLD005", "deadline expired at an operator batch boundary");
    ("OVLD006", "deadline expired at commit; transaction rolled back");
    ("OVLD007", "circuit breaker open: request shed while device recovers");
    ("OVLD008", "per-transaction retry budget exhausted");
    ("OVLD009", "degraded read-only service: write rejected during replay");
    ("OVLD010", "half-open probe failed: breaker reopened");
  ]
