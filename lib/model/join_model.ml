module C = Mmdb_storage.Cost

type workload = {
  r_pages : int;
  s_pages : int;
  r_tuples_per_page : int;
  s_tuples_per_page : int;
  cost : C.t;
}

type ops = {
  comps : float;
  hashes : float;
  moves : float;
  swaps : float;
  seq_ios : float;
  rand_ios : float;
}

let zero_ops =
  {
    comps = 0.0;
    hashes = 0.0;
    moves = 0.0;
    swaps = 0.0;
    seq_ios = 0.0;
    rand_ios = 0.0;
  }

let add_ops a b =
  {
    comps = a.comps +. b.comps;
    hashes = a.hashes +. b.hashes;
    moves = a.moves +. b.moves;
    swaps = a.swaps +. b.swaps;
    seq_ios = a.seq_ios +. b.seq_ios;
    rand_ios = a.rand_ios +. b.rand_ios;
  }

let scale_ops k a =
  {
    comps = k *. a.comps;
    hashes = k *. a.hashes;
    moves = k *. a.moves;
    swaps = k *. a.swaps;
    seq_ios = k *. a.seq_ios;
    rand_ios = k *. a.rand_ios;
  }

let seconds (c : C.t) o =
  (o.comps *. c.C.comp) +. (o.hashes *. c.C.hash) +. (o.moves *. c.C.move)
  +. (o.swaps *. c.C.swap)
  +. (o.seq_ios *. c.C.io_seq)
  +. (o.rand_ios *. c.C.io_rand)

let pp_ops ppf o =
  Format.fprintf ppf
    "comps=%.0f hashes=%.0f moves=%.0f swaps=%.0f seq=%.0f rand=%.0f" o.comps
    o.hashes o.moves o.swaps o.seq_ios o.rand_ios

let table2_workload =
  {
    r_pages = 10_000;
    s_pages = 10_000;
    r_tuples_per_page = 40;
    s_tuples_per_page = 40;
    cost = C.table2;
  }

let r_tuples w = w.r_pages * w.r_tuples_per_page
let s_tuples w = w.s_pages * w.s_tuples_per_page

let min_memory w =
  int_of_float (Float.ceil (sqrt (float_of_int w.s_pages *. w.cost.C.fudge)))

let validate w ~m =
  if w.r_pages > w.s_pages then
    invalid_arg "Join_model: requires |R| <= |S|";
  if m < min_memory w then
    invalid_arg
      (Printf.sprintf "Join_model: |M| = %d below sqrt(|S|*F) = %d" m
         (min_memory w))

let fi = float_of_int

(* log2 clamped below at 0 (a priority queue of <= 1 element is free). *)
let log2_pos x = if x <= 1.0 then 0.0 else Float.log2 x

let sort_merge_ops w ~m =
  validate w ~m;
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let mf = fi m in
  (* Tuples resident while forming runs with a priority queue (never more
     than the relation itself). *)
  let mr = Float.min (mf *. fi w.r_tuples_per_page) rr
  and ms = Float.min (mf *. fi w.s_tuples_per_page) ss in
  (* Each priority-queue step is one comparison plus one exchange. *)
  let queue_steps = (rr *. log2_pos mr) +. (ss *. log2_pos ms) in
  let join_comps = rr +. ss in
  if mf >= fi w.s_pages *. c.C.fudge then
    (* Everything sorts in memory: no run I/O, no merge queue. *)
    {
      zero_ops with
      comps = queue_steps +. join_comps;
      swaps = queue_steps;
    }
  else begin
    let pages = fi (w.r_pages + w.s_pages) in
    (* Runs average 2|M| pages; the final merge drives a selection tree
       over all runs of both relations. *)
    let nruns_r = fi w.r_pages *. c.C.fudge /. (2.0 *. mf) in
    let nruns_s = fi w.s_pages *. c.C.fudge /. (2.0 *. mf) in
    let merge_steps = (rr +. ss) *. log2_pos (nruns_r +. nruns_s) in
    {
      zero_ops with
      comps = queue_steps +. merge_steps +. join_comps;
      swaps = queue_steps +. merge_steps;
      seq_ios = pages;
      rand_ios = pages;
    }
  end

let sort_merge w ~m = seconds w.cost (sort_merge_ops w ~m)

let simple_hash_passes w ~m =
  let a = Float.ceil (fi w.r_pages *. w.cost.C.fudge /. fi m) in
  max 1 (int_of_float a)

let simple_hash_ops w ~m =
  validate w ~m;
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let a = fi (simple_hash_passes w ~m) in
  let base =
    {
      zero_ops with
      hashes = rr +. ss;
      moves = rr;
      comps = ss *. c.C.fudge;
    }
  in
  if a <= 1.0 then base
  else begin
    (* Pages of R absorbed per pass: |M|/F. *)
    let absorbed = fi m /. c.C.fudge in
    let tri = a *. (a -. 1.0) /. 2.0 in
    let passed_r_pages =
      Float.max 0.0 (((a -. 1.0) *. fi w.r_pages) -. (tri *. absorbed))
    in
    let passed_s_pages =
      Float.max 0.0
        (((a -. 1.0) *. fi w.s_pages)
        -. (tri *. absorbed *. (fi w.s_pages /. fi w.r_pages)))
    in
    let passed_r_tuples = passed_r_pages *. fi w.r_tuples_per_page in
    let passed_s_tuples = passed_s_pages *. fi w.s_tuples_per_page in
    add_ops base
      {
        zero_ops with
        hashes = passed_r_tuples +. passed_s_tuples;
        moves = passed_r_tuples +. passed_s_tuples;
        seq_ios = (passed_r_pages +. passed_s_pages) *. 2.0;
      }
  end

let simple_hash w ~m = seconds w.cost (simple_hash_ops w ~m)

(* Shared second-phase + partition-phase structure of GRACE and hybrid;
   [q] is the fraction of R (and S) joined without touching disk and
   [write_seq] selects IOseq for the partition-write when there is at most
   one output buffer. *)
let partitioned_hash_ops w ~q ~write_seq =
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let pages = fi (w.r_pages + w.s_pages) in
  let spill = 1.0 -. q in
  let write_pages = pages *. spill in
  {
    comps = ss *. c.C.fudge; (* probe for each S tuple *)
    hashes =
      (rr +. ss) (* partition both relations *)
      +. ((rr +. ss) *. spill); (* phase-2 build/probe hash *)
    moves =
      ((rr +. ss) *. spill) (* to output buffers *)
      +. rr; (* move R tuples into hash tables *)
    swaps = 0.0;
    seq_ios =
      (if write_seq then write_pages else 0.0)
      +. write_pages; (* read partitions back *)
    rand_ios = (if write_seq then 0.0 else write_pages);
  }

let grace_hash_ops w ~m =
  validate w ~m;
  (* GRACE partitions everything regardless of memory size, with |M|
     output buffers -> random writes. *)
  partitioned_hash_ops w ~q:0.0 ~write_seq:false

let grace_hash w ~m = seconds w.cost (grace_hash_ops w ~m)

let hybrid_partitions w ~m =
  let rf = fi w.r_pages *. w.cost.C.fudge in
  if rf <= fi m then 0
  else max 1 (int_of_float (Float.ceil ((rf -. fi m) /. (fi m -. 1.0))))

let hybrid_q w ~m =
  let b = hybrid_partitions w ~m in
  if b = 0 then 1.0
  else begin
    let r0_pages = fi (m - b) /. w.cost.C.fudge in
    Float.min 1.0 (Float.max 0.0 (r0_pages /. fi w.r_pages))
  end

let hybrid_hash_ops w ~m =
  validate w ~m;
  let b = hybrid_partitions w ~m in
  let q = hybrid_q w ~m in
  partitioned_hash_ops w ~q ~write_seq:(b <= 1)

let hybrid_hash w ~m = seconds w.cost (hybrid_hash_ops w ~m)

let ops_of_algorithm name w ~m =
  match name with
  | "sort-merge" -> sort_merge_ops w ~m
  | "simple" -> simple_hash_ops w ~m
  | "grace" -> grace_hash_ops w ~m
  | "hybrid" -> hybrid_hash_ops w ~m
  | other -> invalid_arg ("Join_model.ops_of_algorithm: " ^ other)

let all_four w ~m =
  [
    ("sort-merge", sort_merge w ~m);
    ("simple", simple_hash w ~m);
    ("grace", grace_hash w ~m);
    ("hybrid", hybrid_hash w ~m);
  ]

let all_four_ops w ~m =
  [
    ("sort-merge", sort_merge_ops w ~m);
    ("simple", simple_hash_ops w ~m);
    ("grace", grace_hash_ops w ~m);
    ("hybrid", hybrid_hash_ops w ~m);
  ]
