(** Analytic cost model for Section 3: the four join algorithms.

    Transcribes the paper's cost formulas for sort-merge, simple-hash,
    GRACE-hash and hybrid-hash joins.  Costs are simulated seconds under a
    {!Mmdb_storage.Cost} machine model (Table 2 by default).  As in the
    paper, the initial read of both relations and the write of the result
    are excluded (identical for every algorithm), and the two-pass
    assumption [√(|S|·F) <= |M|] is required. *)

type workload = {
  r_pages : int;  (** [|R|], pages (the smaller relation) *)
  s_pages : int;  (** [|S|], pages *)
  r_tuples_per_page : int;
  s_tuples_per_page : int;
  cost : Mmdb_storage.Cost.t;  (** machine constants incl. fudge factor F *)
}

type ops = {
  comps : float;  (** key comparisons *)
  hashes : float;  (** hash-function applications *)
  moves : float;  (** tuple moves into tables/buffers *)
  swaps : float;  (** priority-queue element exchanges *)
  seq_ios : float;  (** sequential page transfers *)
  rand_ios : float;  (** random page transfers *)
}
(** Per-term operation counts — the cost breakdown behind each formula.
    Every [*_ops] function below returns the symbolic count of abstract
    machine operations; {!seconds} prices them under a {!Mmdb_storage.Cost}
    vector.  [seconds w.cost (sort_merge_ops w ~m) = sort_merge w ~m]
    (up to float associativity), and likewise for the other three. *)

val zero_ops : ops
val add_ops : ops -> ops -> ops
val scale_ops : float -> ops -> ops

val seconds : Mmdb_storage.Cost.t -> ops -> float
(** Price an operation vector in simulated seconds. *)

val pp_ops : Format.formatter -> ops -> unit

val table2_workload : workload
(** Figure 1's setting: [|R| = |S| = 10,000] pages, 40 tuples/page,
    Table 2 constants. *)

val r_tuples : workload -> int
(** [||R||]. *)

val s_tuples : workload -> int
(** [||S||]. *)

val min_memory : workload -> int
(** [⌈√(|S|·F)⌉] — smallest [|M|] for which the formulas are valid. *)

val validate : workload -> m:int -> unit
(** @raise Invalid_argument if [|R| > |S|] or [m < min_memory]. *)

val sort_merge : workload -> m:int -> float
(** Replacement-selection run formation, one n-way merge, merge-join.
    When [m >= |S|·F] the sort happens entirely in memory and all I/O
    terms vanish (the "improves to ~900 seconds" note under Figure 1). *)

val simple_hash : workload -> m:int -> float
(** Multipass simple hash; [A = ⌈|R|·F / m⌉] passes with passed-over
    tuples rewritten and rescanned each pass. *)

val simple_hash_passes : workload -> m:int -> int
(** [A]. *)

val grace_hash : workload -> m:int -> float
(** GRACE: always partitions both relations to disk (random writes — one
    output buffer per partition), then joins partition pairs by hashing. *)

val hybrid_hash : workload -> m:int -> float
(** Hybrid: [B] disk partitions plus an in-memory partition [R0] covering
    fraction [q] of R.  Writing uses [IOseq] when [B <= 1] and [IOrand]
    otherwise — the discontinuity at [|M| = |R|·F/2] discussed under
    Figure 1. *)

val hybrid_partitions : workload -> m:int -> int
(** [B = max(0, ⌈(|R|·F − |M|) / (|M| − 1)⌉)]. *)

val hybrid_q : workload -> m:int -> float
(** [q = |R0| / |R|]: fraction of R (and, by uniformity, of S) processed
    without touching disk. *)

val sort_merge_ops : workload -> m:int -> ops
val simple_hash_ops : workload -> m:int -> ops
val grace_hash_ops : workload -> m:int -> ops
val hybrid_hash_ops : workload -> m:int -> ops
(** Per-term breakdowns of the four formulas; the [float] variants above
    are [seconds cost (…_ops w ~m)]. *)

val ops_of_algorithm : string -> workload -> m:int -> ops
(** Dispatch by the {!all_four} name ("sort-merge" | "simple" | "grace" |
    "hybrid").  @raise Invalid_argument on any other name. *)

val all_four : workload -> m:int -> (string * float) list
(** [("sort-merge", t); ("simple", t); ("grace", t); ("hybrid", t)]. *)

val all_four_ops : workload -> m:int -> (string * ops) list
(** Same order as {!all_four}, with per-term breakdowns. *)
