(** Per-term cost predictions for the executable operators that the four
    join formulas of {!Join_model} do not cover: external sort,
    aggregation, duplicate elimination, set operations, division and
    nested loops.

    Each function extends the paper's Section 3 accounting conventions
    (comps/hashes/moves/swaps, sequential vs random page transfers;
    initial input scans are free) to one operator in [lib/exec], evaluated
    at a given input size.  Predictions are idealized the same way the
    paper's formulas are — e.g. a priority queue costs one comparison and
    one exchange per [n·log2 m] step — so an implementation conforms up to
    a small constant factor, which [Mmdb_verify.Model_check] declares
    per-operator as its tolerance band. *)

type input = {
  tuples : int;
  pages : int;
  tuples_per_page : int;
}

val input : tuples:int -> pages:int -> tuples_per_page:int -> input

val pages_of : tuples:int -> tuples_per_page:int -> int
(** [⌈tuples / tuples_per_page⌉]. *)

val expected_runs : mem_pages:int -> pages:int -> int
(** Replacement-selection run count: [⌈pages / 2|M|⌉]. *)

val spill_fraction : mem_pages:int -> fudge:float -> pages:int -> int * float
(** [(B, q)] as in the hybrid join: disk-partition count and resident
    fraction for an input of [pages] pages. *)

val sort_ops : mem_pages:int -> input -> Join_model.ops
(** External sort: run formation + n-way merge + run and output I/O. *)

val aggregate_ops :
  mem_pages:int ->
  fudge:float ->
  comp_specs:int ->
  groups:int ->
  out_tuples_per_page:int ->
  input ->
  Join_model.ops
(** Hybrid hash aggregation into [groups] groups; [comp_specs] is the
    number of Min/Max specs (each charges a comparison per tuple). *)

val distinct_ops :
  mem_pages:int ->
  fudge:float ->
  distinct:int ->
  out_tuples_per_page:int ->
  input ->
  Join_model.ops
(** Hybrid hash duplicate elimination; [input] describes the projected
    staging relation (narrower tuples, fewer pages than the source). *)

val sort_distinct_ops :
  mem_pages:int -> distinct:int -> out_tuples_per_page:int -> input ->
  Join_model.ops
(** Sort-based duplicate elimination: project, external-sort, scan. *)

type set_op_kind = Union | Intersection | Difference

val set_op_ops :
  mem_pages:int ->
  fudge:float ->
  kind:set_op_kind ->
  out_tuples:int ->
  out_tuples_per_page:int ->
  input ->
  input ->
  Join_model.ops
(** Partitioned-hash set operation over left and right inputs. *)

val division_ops :
  mem_pages:int ->
  fudge:float ->
  quotient_groups:int ->
  out_tuples_per_page:int ->
  divisor:input ->
  input ->
  Join_model.ops
(** Hash division: divisor key set resident, dividend grouped by quotient
    (partitioned hybrid-style when it overflows memory). *)

val nested_loop_ops : input -> input -> Join_model.ops
(** [nested_loop_ops outer inner]: the charged nested-loops baseline —
    one comparison per tuple pair, the inner relation rescanned per outer
    tuple. *)
