type t = {
  r_tuples : int;
  key_width : int;
  tuple_width : int;
  page_size : int;
  pointer_width : int;
  z : float;
  y : float;
}

let default =
  {
    r_tuples = 1_000_000;
    key_width = 8;
    tuple_width = 40;
    page_size = 4096;
    pointer_width = 4;
    z = 20.0;
    y = 1.0;
  }

let ceil_div_f a b = Float.ceil (a /. b)

let avl_comparisons t = Float.log2 (float_of_int t.r_tuples) +. 0.25

let avl_pages t =
  let node = t.tuple_width + (2 * t.pointer_width) in
  int_of_float
    (ceil_div_f
       (float_of_int (t.r_tuples * node))
       (float_of_int t.page_size))

let btree_fanout t =
  0.69 *. float_of_int t.page_size
  /. float_of_int (t.key_width + t.pointer_width)

let btree_leaf_pages t =
  let tuples_per_leaf = 0.69 *. float_of_int t.page_size /. float_of_int t.tuple_width in
  int_of_float (ceil_div_f (float_of_int t.r_tuples) tuples_per_leaf)

let btree_height t =
  let d = float_of_int (btree_leaf_pages t) in
  let f = btree_fanout t in
  int_of_float (Float.ceil (Float.log d /. Float.log f))

let btree_pages t =
  let d = float_of_int (btree_leaf_pages t) in
  let f = btree_fanout t in
  int_of_float (Float.ceil (d *. f /. (f -. 1.0)))

let btree_comparisons t = Float.ceil (Float.log2 (float_of_int t.r_tuples))

let resident_fraction pages m =
  let h = float_of_int m /. float_of_int pages in
  Float.min 1.0 (Float.max 0.0 h)

type terms = { page_reads : float; comparisons : float }

let cost_of_terms t terms = (t.z *. terms.page_reads) +. terms.comparisons

let avl_random_terms t ~m =
  let c = avl_comparisons t in
  let h = resident_fraction (avl_pages t) m in
  { page_reads = c *. (1.0 -. h); comparisons = t.y *. c }

let btree_random_terms t ~m =
  let h' = resident_fraction (btree_pages t) m in
  let height = float_of_int (btree_height t) in
  {
    page_reads = (height +. 1.0) *. (1.0 -. h');
    comparisons = btree_comparisons t;
  }

let avl_random_cost t ~m = cost_of_terms t (avl_random_terms t ~m)
let btree_random_cost t ~m = cost_of_terms t (btree_random_terms t ~m)

let avl_preferred t ~m = btree_random_cost t ~m -. avl_random_cost t ~m > 0.0

(* The cost difference is monotone in m (more memory always helps the AVL
   tree at least as much: its structure is larger so a given m covers less
   of it, but d(cost)/dH is -Z·C for AVL vs -Z·(height+1)·S/S' for B+,
   and C = log2||R|| >> height+1).  Bisection on H = m/S is safe. *)
let crossover_h t =
  let s = avl_pages t in
  let preferred_at h =
    let m = int_of_float (Float.ceil (h *. float_of_int s)) in
    avl_preferred t ~m
  in
  if preferred_at 0.0 then 0.0
  else if not (preferred_at 1.0) then 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 40 do
      let mid = 0.5 *. (!lo +. !hi) in
      if preferred_at mid then hi := mid else lo := mid
    done;
    !hi
  end

let avl_seq_terms t ~m ~n =
  let h = resident_fraction (avl_pages t) m in
  let nf = float_of_int n in
  { page_reads = nf *. (1.0 -. h); comparisons = t.y *. nf }

let btree_seq_terms t ~m ~n =
  let h' = resident_fraction (btree_pages t) m in
  let tuples_per_leaf =
    0.69 *. float_of_int t.page_size /. float_of_int t.tuple_width
  in
  let leaves = ceil_div_f (float_of_int n) tuples_per_leaf in
  { page_reads = leaves *. (1.0 -. h'); comparisons = float_of_int n }

let avl_seq_cost t ~m ~n = cost_of_terms t (avl_seq_terms t ~m ~n)
let btree_seq_cost t ~m ~n = cost_of_terms t (btree_seq_terms t ~m ~n)

let crossover_h_seq t ~n =
  let s = avl_pages t in
  let preferred_at h =
    let m = int_of_float (Float.ceil (h *. float_of_int s)) in
    btree_seq_cost t ~m ~n -. avl_seq_cost t ~m ~n > 0.0
  in
  if preferred_at 0.0 then 0.0
  else if not (preferred_at 1.0) then 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 40 do
      let mid = 0.5 *. (!lo +. !hi) in
      if preferred_at mid then hi := mid else lo := mid
    done;
    !hi
  end

let pp ppf t =
  Format.fprintf ppf
    "||R||=%d K=%d t=%d P=%d s=%d Z=%.1f Y=%.2f (S=%d S'=%d height=%d)"
    t.r_tuples t.key_width t.tuple_width t.page_size t.pointer_width t.z t.y
    (avl_pages t) (btree_pages t) (btree_height t)
