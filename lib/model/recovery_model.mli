(** Analytic throughput model for Section 5: recovery in memory-resident
    databases.

    The paper's arithmetic: a "typical" transaction writes 400 bytes of log
    (40 begin/end + 360 old/new values); one 4096-byte log page writes in
    10 ms.  Conventional commit needs a log I/O per transaction (100 tps);
    group commit packs ~10 transactions per page (1000 tps); partitioning
    the log over [n] devices multiplies further; stable memory permits
    compressing to new-values-only (§5.4), roughly halving log volume. *)

type t = {
  begin_end_bytes : int;  (** per-transaction begin/end records *)
  old_values_bytes : int;  (** undo half of the update records *)
  new_values_bytes : int;  (** redo half *)
  log_page_bytes : int;
  page_write_time : float;  (** seconds per log-page write, no seek *)
}

val gray_banking : t
(** The paper's figures: 40 + 180 + 180 bytes, 4096-byte pages, 10 ms. *)

type log_terms = {
  begin_end : int;
  old_values : int;  (** 0 when compressed (§5.4 drops the undo half) *)
  new_values : int;
}
(** Per-term breakdown of the log volume; {!log_bytes_per_txn} is the
    field sum. *)

val log_terms : t -> compressed:bool -> log_terms

type tps_terms = {
  txns_per_io : float;  (** transactions committed per log-page write *)
  ios_per_second : float;  (** log-page writes per second, all devices *)
}
(** Per-term breakdown of a throughput figure;
    [tps = txns_per_io · ios_per_second]. *)

val tps_of_terms : tps_terms -> float
val conventional_terms : t -> tps_terms
val group_commit_terms : t -> tps_terms
val partitioned_terms : t -> devices:int -> tps_terms
val stable_memory_terms : t -> devices:int -> compressed:bool -> tps_terms

val log_bytes_per_txn : t -> compressed:bool -> int
(** 400 bytes uncompressed; begin/end + new values only when
    [compressed] (§5.4 stable-memory compression). *)

val txns_per_page : t -> compressed:bool -> int
(** Transactions whose log records fit in one log page. *)

val conventional_tps : t -> float
(** One log I/O per commit: [1 / page_write_time] — the paper's 100. *)

val group_commit_tps : t -> float
(** [txns_per_page / page_write_time] — the paper's 1000. *)

val partitioned_tps : t -> devices:int -> float
(** Group commit with the log striped over [devices] drives. *)

val stable_memory_tps : t -> devices:int -> compressed:bool -> float
(** Stable memory: commits are instant, but steady-state throughput is
    still bounded by draining log pages to disk; compression raises the
    bound by packing more transactions per page. *)

val log_compression_ratio : t -> float
(** Disk-log bytes with compression / without — ~0.55 for the paper's
    figures ("approximately half"). *)

(** {1 Parallel-replay recovery time}

    Amdahl-style recovery-time model for partitioned parallel replay:
    snapshot/log reads and partition-local applies divide by the worker
    count; the write-back of recovered pages and the serial portions of
    replay (cross-partition command re-execution, undo) do not. *)

val value_apply_time : float
(** Seconds to re-install one value (after-image) record: a memory
    store, 1 µs. *)

val command_apply_time : float
(** Seconds to re-execute one command (operation) record: procedure
    re-execution, 50 µs — the adaptive-logging trade: ~50x slower to
    replay, ~7x smaller to log. *)

type replay_terms = {
  parallel_io : float;  (** snapshot + log-suffix reads, divisible by W *)
  parallel_apply : float;  (** partition-local redo applies *)
  serial_io : float;  (** end-of-recovery page write-back *)
  serial_apply : float;  (** barrier command replay + undo *)
  workers : int;
}
(** [replay_seconds = (parallel_io + parallel_apply)/workers
                      + serial_io + serial_apply]. *)

val replay_terms :
  page_io_time:float ->
  log_page_bytes:int ->
  workers:int ->
  snapshot_pages:int ->
  log_bytes:int ->
  local_value_ops:int ->
  local_command_ops:int ->
  serial_command_ops:int ->
  undo_ops:int ->
  writeback_pages:int ->
  replay_terms
(** Price a recovery run from its observable counters (the fields of
    [Kv_store.recover_stats]).  @raise Invalid_argument on
    [workers <= 0] or [log_page_bytes <= 0]. *)

val replay_seconds : replay_terms -> float

val value_bytes_per_txn : t -> updates_per_txn:int -> int
(** Wire bytes a value-logged transaction writes: begin/commit plus a
    60-byte update record per write. *)

val command_bytes_per_txn : t -> updates_per_txn:int -> int
(** Wire bytes a command-logged transaction writes: begin/commit plus a
    20-byte command header and 8 bytes per op. *)

val adaptive_command_wins :
  t -> workers:int -> updates_per_txn:int -> cross_partition:bool -> bool
(** The adaptive-logging rule: [true] when command logging's predicted
    per-transaction recovery cost (smaller log, slow serial replay when
    [cross_partition]) beats value logging's at [workers] replay
    partitions.  Cross-partition commands replay at the serial
    rendezvous, so the rule flips to value logging as [workers] grows. *)
