module JM = Join_model

type input = { tuples : int; pages : int; tuples_per_page : int }

let input ~tuples ~pages ~tuples_per_page = { tuples; pages; tuples_per_page }

let fi = float_of_int
let log2_pos x = if x <= 1.0 then 0.0 else Float.log2 x
let pages_of ~tuples ~tuples_per_page =
  if tuples = 0 then 0 else ((tuples + tuples_per_page - 1) / tuples_per_page)

(* Replacement selection produces runs averaging 2|M| pages. *)
let expected_runs ~mem_pages ~pages =
  if pages = 0 then 1
  else max 1 (int_of_float (Float.ceil (fi pages /. (2.0 *. fi mem_pages))))

let sort_ops ~mem_pages i =
  let n = fi i.tuples and p = fi i.pages in
  let capacity = Float.min n (fi (mem_pages * i.tuples_per_page)) in
  let nruns = expected_runs ~mem_pages ~pages:i.pages in
  (* Run formation: n·log2(heap) queue steps, plus one run-destination
     comparison per replaced tuple when the input exceeds the heap. *)
  let steps_run = n *. log2_pos capacity in
  let dest_comps = if n > capacity then n else 0.0 in
  (* Final merge: a selection tree over the runs. *)
  let steps_merge = if nruns > 1 then n *. log2_pos (fi nruns) else 0.0 in
  {
    JM.comps = steps_run +. steps_merge +. dest_comps;
    hashes = 0.0;
    moves = 0.0;
    swaps = steps_run +. steps_merge;
    (* Runs written (~p pages), read back sequentially when a single run
       remains, plus the sorted output written sequentially (~p pages). *)
    seq_ios = p +. (if nruns <= 1 then p else 0.0) +. p;
    rand_ios = (if nruns > 1 then p else 0.0);
  }

let spill_fraction ~mem_pages ~fudge ~pages =
  let b =
    let rf = fi pages *. fudge in
    let m = fi mem_pages in
    if rf <= m then 0
    else max 1 (int_of_float (Float.ceil ((rf -. m) /. (m -. 1.0))))
  in
  let q =
    if b = 0 then 1.0
    else
      let r0 = fi (mem_pages - b) /. fudge in
      Float.min 1.0 (Float.max 0.0 (r0 /. fi (max 1 pages)))
  in
  (b, q)

let aggregate_ops ~mem_pages ~fudge ~comp_specs ~groups ~out_tuples_per_page i
    =
  let n = fi i.tuples and p = fi i.pages in
  let b, q = spill_fraction ~mem_pages ~fudge ~pages:i.pages in
  let spill = if b = 0 then 0.0 else 1.0 -. q in
  let out_pages = fi (pages_of ~tuples:groups ~tuples_per_page:out_tuples_per_page) in
  {
    (* One group-table lookup plus one comp per Min/Max spec per tuple. *)
    JM.comps = n *. (1.0 +. fi comp_specs);
    (* Every tuple is hashed once when fed to a group table; with spilling
       the partition split hashes each tuple once more. *)
    hashes = (n *. (if b = 0 then 1.0 else 2.0));
    (* A move per fresh group, plus a move per spilled tuple. *)
    moves = fi groups +. (n *. spill);
    swaps = 0.0;
    seq_ios =
      (p *. spill) (* read partitions back *)
      +. (if b <= 1 then p *. spill else 0.0) (* partition writes *)
      +. out_pages (* result written *);
    rand_ios = (if b > 1 then p *. spill else 0.0);
  }

let distinct_ops ~mem_pages ~fudge ~distinct ~out_tuples_per_page i =
  let n = fi i.tuples and p = fi i.pages in
  (* [i] describes the *projected* staging relation: dedup partitions by
     its page count and spills its (narrower) pages. *)
  let b, q = spill_fraction ~mem_pages ~fudge ~pages:i.pages in
  let spill = if b = 0 then 0.0 else 1.0 -. q in
  let out_pages =
    fi (pages_of ~tuples:distinct ~tuples_per_page:out_tuples_per_page)
  in
  {
    (* One seen-table membership comp per tuple. *)
    JM.comps = n;
    (* Whole-tuple hash at the split; spilled tuples hash again on
       re-read. *)
    hashes = n +. (n *. spill);
    (* Projector move per tuple, plus a move per spilled tuple. *)
    moves = n +. (n *. spill);
    swaps = 0.0;
    seq_ios =
      (p *. spill)
      +. (if b <= 1 then p *. spill else 0.0)
      +. out_pages;
    rand_ios = (if b > 1 then p *. spill else 0.0);
  }

let sort_distinct_ops ~mem_pages ~distinct ~out_tuples_per_page i =
  let n = fi i.tuples in
  let out_pages =
    fi (pages_of ~tuples:distinct ~tuples_per_page:out_tuples_per_page)
  in
  let sort = sort_ops ~mem_pages i in
  JM.add_ops sort
    {
      (* Projector move per tuple; run-boundary comp plus seen-table comp
         per sorted tuple; deduped output written sequentially. *)
      JM.comps = 2.0 *. n;
      hashes = 0.0;
      moves = n;
      swaps = 0.0;
      seq_ios = out_pages;
      rand_ios = 0.0;
    }

type set_op_kind = Union | Intersection | Difference

let set_op_ops ~mem_pages ~fudge ~kind ~out_tuples ~out_tuples_per_page l r =
  let nl = fi l.tuples and nr = fi r.tuples in
  let pages = fi (l.pages + r.pages) in
  let b, _q = spill_fraction ~mem_pages ~fudge ~pages:(max l.pages r.pages) in
  (* split_whole has no memory fraction: either everything stays resident
     (b = 0) or both inputs spill entirely. *)
  let spill = if b = 0 then 0.0 else 1.0 in
  let out_pages =
    fi (pages_of ~tuples:out_tuples ~tuples_per_page:out_tuples_per_page)
  in
  (* One membership comp per left tuple, plus one dedup comp per emit
     attempt (union also re-emits the right side). *)
  let emit_comps =
    match kind with
    | Union -> nl +. nr
    | Intersection | Difference -> fi out_tuples
  in
  {
    JM.comps = nl +. emit_comps;
    hashes = nl +. nr;
    moves = (nr (* membership table over the right side *))
            +. ((nl +. nr) *. spill);
    swaps = 0.0;
    seq_ios =
      (pages *. spill)
      +. (if b <= 1 then pages *. spill else 0.0)
      +. out_pages;
    rand_ios = (if b > 1 then pages *. spill else 0.0);
  }

let division_ops ~mem_pages ~fudge ~quotient_groups ~out_tuples_per_page
    ~divisor r =
  let nr = fi r.tuples and ns = fi divisor.tuples in
  let p = fi r.pages in
  let b, _q = spill_fraction ~mem_pages ~fudge ~pages:r.pages in
  let spill = if b = 0 then 0.0 else 1.0 in
  let out_pages =
    fi (pages_of ~tuples:quotient_groups ~tuples_per_page:out_tuples_per_page)
  in
  {
    (* One divisor-membership comp per dividend tuple. *)
    JM.comps = nr;
    (* Divisor keys hashed once; each dividend tuple hashes its quotient
       (again at the split when partitioned). *)
    hashes = ns +. nr +. (nr *. spill);
    moves = fi quotient_groups +. (nr *. spill);
    swaps = 0.0;
    seq_ios =
      (p *. spill)
      +. (if b <= 1 then p *. spill else 0.0)
      +. out_pages;
    rand_ios = (if b > 1 then p *. spill else 0.0);
  }

let nested_loop_ops outer inner =
  {
    JM.comps = fi outer.tuples *. fi inner.tuples;
    hashes = 0.0;
    moves = 0.0;
    swaps = 0.0;
    (* The inner relation is rescanned once per outer tuple. *)
    seq_ios = fi outer.tuples *. fi inner.pages;
    rand_ios = 0.0;
  }
