type t = {
  begin_end_bytes : int;
  old_values_bytes : int;
  new_values_bytes : int;
  log_page_bytes : int;
  page_write_time : float;
}

let gray_banking =
  {
    begin_end_bytes = 40;
    old_values_bytes = 180;
    new_values_bytes = 180;
    log_page_bytes = 4096;
    page_write_time = 10e-3;
  }

type log_terms = {
  begin_end : int;
  old_values : int;
  new_values : int;
}

let log_terms t ~compressed =
  {
    begin_end = t.begin_end_bytes;
    old_values = (if compressed then 0 else t.old_values_bytes);
    new_values = t.new_values_bytes;
  }

let log_bytes_per_txn t ~compressed =
  let lt = log_terms t ~compressed in
  lt.begin_end + lt.old_values + lt.new_values

let txns_per_page t ~compressed =
  max 1 (t.log_page_bytes / log_bytes_per_txn t ~compressed)

type tps_terms = {
  txns_per_io : float;  (** transactions committed per log-page write *)
  ios_per_second : float;  (** log-page writes per second, all devices *)
}

let tps_of_terms terms = terms.txns_per_io *. terms.ios_per_second

let conventional_terms t =
  { txns_per_io = 1.0; ios_per_second = 1.0 /. t.page_write_time }

let group_commit_terms t =
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed:false);
    ios_per_second = 1.0 /. t.page_write_time;
  }

let partitioned_terms t ~devices =
  if devices <= 0 then invalid_arg "Recovery_model.partitioned_tps: devices";
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed:false);
    ios_per_second = float_of_int devices /. t.page_write_time;
  }

let stable_memory_terms t ~devices ~compressed =
  if devices <= 0 then invalid_arg "Recovery_model.stable_memory_tps: devices";
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed);
    ios_per_second = float_of_int devices /. t.page_write_time;
  }

let conventional_tps t = tps_of_terms (conventional_terms t)

let group_commit_tps t =
  float_of_int (txns_per_page t ~compressed:false) /. t.page_write_time

let partitioned_tps t ~devices =
  if devices <= 0 then invalid_arg "Recovery_model.partitioned_tps: devices";
  float_of_int devices *. group_commit_tps t

let stable_memory_tps t ~devices ~compressed =
  if devices <= 0 then invalid_arg "Recovery_model.stable_memory_tps: devices";
  float_of_int (devices * txns_per_page t ~compressed) /. t.page_write_time

let log_compression_ratio t =
  float_of_int (log_bytes_per_txn t ~compressed:true)
  /. float_of_int (log_bytes_per_txn t ~compressed:false)
