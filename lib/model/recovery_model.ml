type t = {
  begin_end_bytes : int;
  old_values_bytes : int;
  new_values_bytes : int;
  log_page_bytes : int;
  page_write_time : float;
}

let gray_banking =
  {
    begin_end_bytes = 40;
    old_values_bytes = 180;
    new_values_bytes = 180;
    log_page_bytes = 4096;
    page_write_time = 10e-3;
  }

type log_terms = {
  begin_end : int;
  old_values : int;
  new_values : int;
}

let log_terms t ~compressed =
  {
    begin_end = t.begin_end_bytes;
    old_values = (if compressed then 0 else t.old_values_bytes);
    new_values = t.new_values_bytes;
  }

let log_bytes_per_txn t ~compressed =
  let lt = log_terms t ~compressed in
  lt.begin_end + lt.old_values + lt.new_values

let txns_per_page t ~compressed =
  max 1 (t.log_page_bytes / log_bytes_per_txn t ~compressed)

type tps_terms = {
  txns_per_io : float;  (** transactions committed per log-page write *)
  ios_per_second : float;  (** log-page writes per second, all devices *)
}

let tps_of_terms terms = terms.txns_per_io *. terms.ios_per_second

let conventional_terms t =
  { txns_per_io = 1.0; ios_per_second = 1.0 /. t.page_write_time }

let group_commit_terms t =
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed:false);
    ios_per_second = 1.0 /. t.page_write_time;
  }

let partitioned_terms t ~devices =
  if devices <= 0 then invalid_arg "Recovery_model.partitioned_tps: devices";
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed:false);
    ios_per_second = float_of_int devices /. t.page_write_time;
  }

let stable_memory_terms t ~devices ~compressed =
  if devices <= 0 then invalid_arg "Recovery_model.stable_memory_tps: devices";
  {
    txns_per_io = float_of_int (txns_per_page t ~compressed);
    ios_per_second = float_of_int devices /. t.page_write_time;
  }

let conventional_tps t = tps_of_terms (conventional_terms t)

let group_commit_tps t =
  float_of_int (txns_per_page t ~compressed:false) /. t.page_write_time

let partitioned_tps t ~devices =
  if devices <= 0 then invalid_arg "Recovery_model.partitioned_tps: devices";
  float_of_int devices *. group_commit_tps t

let stable_memory_tps t ~devices ~compressed =
  if devices <= 0 then invalid_arg "Recovery_model.stable_memory_tps: devices";
  float_of_int (devices * txns_per_page t ~compressed) /. t.page_write_time

let log_compression_ratio t =
  float_of_int (log_bytes_per_txn t ~compressed:true)
  /. float_of_int (log_bytes_per_txn t ~compressed:false)

(* ---- Parallel-replay recovery time (PR 8) ---------------------------- *)

let value_apply_time = 1e-6
let command_apply_time = 50e-6

type replay_terms = {
  parallel_io : float;
  parallel_apply : float;
  serial_io : float;
  serial_apply : float;
  workers : int;
}

let replay_terms ~page_io_time ~log_page_bytes ~workers ~snapshot_pages
    ~log_bytes ~local_value_ops ~local_command_ops ~serial_command_ops
    ~undo_ops ~writeback_pages =
  if workers <= 0 then invalid_arg "Recovery_model.replay_terms: workers";
  if log_page_bytes <= 0 then
    invalid_arg "Recovery_model.replay_terms: log_page_bytes";
  let log_pages = (log_bytes + log_page_bytes - 1) / log_page_bytes in
  {
    parallel_io = float_of_int (snapshot_pages + log_pages) *. page_io_time;
    parallel_apply =
      (float_of_int local_value_ops *. value_apply_time)
      +. (float_of_int local_command_ops *. command_apply_time);
    serial_io = float_of_int writeback_pages *. page_io_time;
    serial_apply =
      (float_of_int serial_command_ops *. command_apply_time)
      +. (float_of_int undo_ops *. value_apply_time);
    workers;
  }

let replay_seconds rt =
  ((rt.parallel_io +. rt.parallel_apply) /. float_of_int rt.workers)
  +. rt.serial_io +. rt.serial_apply

(* The wire sizes actually paid by the two logging modes (matching
   Log_record.size_bytes): a value-logged transaction writes
   begin/commit (2 x 20) plus 60 bytes per update; a command-logged
   transaction writes begin/commit plus one 20-byte command header and
   8 bytes per op. *)
let value_bytes_per_txn t ~updates_per_txn =
  t.begin_end_bytes + (60 * updates_per_txn)

let command_bytes_per_txn t ~updates_per_txn =
  t.begin_end_bytes + 20 + (8 * updates_per_txn)

(* Adaptive-logging decision rule (Yao et al.'s adaptive logging,
   priced with this model's constants).  Per-transaction recovery-time
   contribution at [workers] partitions:

     value:    io(value_bytes)/W   + u·value_apply/W
     command:  io(command_bytes)/W + u·command_apply/W     (local)
               io(command_bytes)/W + u·command_apply       (cross-partition:
                                                            the barrier op
                                                            replays serially)

   Command records always win on log volume; they lose at high [workers]
   when the transaction spans partitions, because re-execution is pinned
   to the serial rendezvous while value records keep shrinking with W. *)
let adaptive_command_wins t ~workers ~updates_per_txn ~cross_partition =
  let w = float_of_int (max 1 workers) in
  let u = float_of_int updates_per_txn in
  let io bytes =
    float_of_int bytes /. float_of_int t.log_page_bytes *. t.page_write_time
  in
  let value_cost =
    (io (value_bytes_per_txn t ~updates_per_txn) /. w)
    +. (u *. value_apply_time /. w)
  in
  let command_io = io (command_bytes_per_txn t ~updates_per_txn) /. w in
  let command_apply =
    if cross_partition then u *. command_apply_time
    else u *. command_apply_time /. w
  in
  command_io +. command_apply < value_cost
