(** Analytic cost model for Section 2: AVL vs B+-tree access methods.

    Costs are in units of one B+-tree comparison, using the paper's
    function [cost = Z·|page reads| + |comparisons|] where [Z] (realistic
    range 10..30) prices a page read in comparisons and an AVL comparison
    costs [Y <= 1] B+-tree comparisons.

    Reproduces:
    - the AVL structure size [S = ⌈||R||·(t + 2s) / P⌉],
    - the B+-tree fanout [0.69·P/(K+s)], leaf count
      [D = ||R|| / (0.69·P/t)], height [⌈log_fanout D⌉],
    - random-access costs [Z·C·(1 − |M|/S) + Y·C] and
      [Z·(height+1)·(1 − |M|/S') + C'],
    - the Table 1 crossover: the smallest memory fraction [H = |M|/S] at
      which the AVL tree becomes the cheaper structure,
    - the sequential-access analogue (inequality (2); [H'] per the paper
      behaves like [H], which the bench verifies). *)

type t = {
  r_tuples : int;  (** [||R||] *)
  key_width : int;  (** [K] bytes *)
  tuple_width : int;  (** [t] bytes *)
  page_size : int;  (** [P] bytes *)
  pointer_width : int;  (** [s] bytes *)
  z : float;  (** page-read cost in comparisons, 10..30 *)
  y : float;  (** AVL comparison cost relative to B+-tree, <= 1 *)
}

val default : t
(** One million 40-byte tuples, 8-byte keys, 4 KiB pages, 4-byte pointers,
    Z = 20, Y = 1. *)

val avl_comparisons : t -> float
(** [C = log2 ||R|| + 0.25]. *)

val avl_pages : t -> int
(** [S]: pages occupied by the AVL structure (tuple + two pointers per
    node). *)

val btree_fanout : t -> float
(** Effective fanout [0.69·P/(K+s)] (69% occupancy per Yao). *)

val btree_leaf_pages : t -> int
(** [D]: leaf pages at 69% occupancy. *)

val btree_height : t -> int
(** Index height [⌈log_fanout D⌉]. *)

val btree_pages : t -> int
(** [S']: total pages (leaves plus the geometric index overhead
    [D·f/(f−1)]). *)

val btree_comparisons : t -> float
(** [C' = ⌈log2 ||R||⌉]. *)

type terms = {
  page_reads : float;  (** expected page faults for the access *)
  comparisons : float;  (** comparisons, in B+-tree-comparison units *)
}
(** Per-term breakdown of an access cost; {!cost_of_terms} prices it as
    [Z·page_reads + comparisons].  Each [*_cost] function below equals
    [cost_of_terms] of its [*_terms] counterpart. *)

val cost_of_terms : t -> terms -> float
val avl_random_terms : t -> m:int -> terms
val btree_random_terms : t -> m:int -> terms
val avl_seq_terms : t -> m:int -> n:int -> terms
val btree_seq_terms : t -> m:int -> n:int -> terms

val avl_random_cost : t -> m:int -> float
(** Cost of one random-key lookup with [m] pages of buffer:
    [Z·C·max(0, 1 − m/S) + Y·C]. *)

val btree_random_cost : t -> m:int -> float
(** [Z·(height+1)·max(0, 1 − m/S') + C']. *)

val avl_preferred : t -> m:int -> bool
(** [cost(B+) − cost(AVL) > 0] at [m] pages. *)

val crossover_h : t -> float
(** Smallest fraction [H = m/S] of the AVL structure that must be
    memory-resident for the AVL tree to win (1.0 if it never wins below
    full residency; 0.0 if it always wins).  Found by bisection;
    [m' = H·S] is also used for the B+-tree's [H' = m/S']. *)

val avl_seq_cost : t -> m:int -> n:int -> float
(** Sequential case: read [n] records from a located start.  The AVL
    successor walk touches ~[n] nodes, each on a distinct page with fault
    probability [1 − m/S]; comparisons [Y·n]. *)

val btree_seq_cost : t -> m:int -> n:int -> float
(** The B+-tree walk reads [n / (0.69·P/t)] chained leaves with fault
    probability [1 − m/S']; comparisons [n]. *)

val crossover_h_seq : t -> n:int -> float
(** Sequential-access analogue of {!crossover_h}. *)

val pp : Format.formatter -> t -> unit
