module D = Mmdb_util.Diag
module E = Lint_engine

(* The performance-hazard rule set over {!Lint_engine}.  Where
   Domain_lint classifies module-level *bindings*, this pass walks every
   *expression* (via [Ast_iterator], so unmatched constructors — whose
   shapes vary across compiler versions — are traversed by the
   version's own default iterator) looking for accidentally-super-linear
   idioms on a main-memory system's per-operation paths:

   - PERF101  [xs @ [x]] — building a list by tail-append.  O(|xs|)
     per append, quadratic the moment the result feeds the next append
     (the CLOCK-hand and log-building bugs this pass was built to
     retire).  Flagged everywhere: even a one-shot tail-append copies
     the whole prefix, and the idiom's cheap uses rot into hot ones.
   - PERF102  [List.nth]/[List.length] under iteration (a loop, an
     enclosing recursive function, or a traversal callback) — O(n) per
     step, O(n²) per sweep.
   - PERF103  polymorphic [compare]/[Hashtbl.hash] in the hot
     directories (lib/exec, lib/storage, lib/index) — the generic
     structural walk costs a call per node where a monomorphic
     [Int.compare] inlines to a machine instruction.
   - PERF104  non-tail self-recursion over list-structured data: a
     recursive function that matches a [_ :: _] pattern and calls
     itself in value-consumed position (an argument of a call or a
     constructor, deeper than the definition site's own position) —
     stack depth grows with unbounded input.
   - PERF105  string concatenation ([^]) under iteration — each [^]
     copies both operands; accumulate in a [Buffer] instead.

   PERF100 marks a file the pass could not parse.  A finding is
   silenced by a [(* perf_lint: why *)] comment on the flagged line or
   within the two lines above it — the same textual convention as
   Domain_lint's [race_check:] whitelist. *)

type status = Whitelisted of string | Flagged

type finding = {
  file : string;
  line : int;
  code : string;
  name : string;  (* enclosing binding *)
  construct : string;
  status : status;
}

let marker = "perf_lint:"

(* PERF103 applies where polymorphic structural walks are per-operation
   costs; paths are matched as substrings so both absolute checkout
   paths and root-relative sandbox paths qualify. *)
let hot_dir file =
  let has sub =
    let n = String.length file and m = String.length sub in
    let rec go i = i + m <= n && (String.sub file i m = sub || go (i + 1)) in
    go 0
  in
  has "exec/" || has "storage/" || has "index/"

let ident_of (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    Some (String.concat "." (Longident.flatten txt))
  | _ -> None

(* A syntactic list literal: a cons chain of literal cells ending in
   [[]].  [xs @ [x]] parses as [(@) xs (x :: [])]. *)
let rec is_literal_list (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) ->
    true
  | Parsetree.Pexp_construct
      ({ txt = Longident.Lident "::"; _ }, Some payload) -> (
    match payload.Parsetree.pexp_desc with
    | Parsetree.Pexp_tuple [ _; tl ] -> is_literal_list tl
    | _ -> false)
  | _ -> false

(* Traversal callbacks: an argument of one of these runs once per
   element, so the argument subtree counts as "under iteration". *)
let iteration_fn name =
  match String.rindex_opt name '.' with
  | None -> false
  | Some i -> (
    match String.sub name (i + 1) (String.length name - i - 1) with
    | "iter" | "iteri" | "iter2" | "map" | "mapi" | "map2" | "rev_map"
    | "fold" | "fold_left" | "fold_right" | "filter" | "filteri"
    | "filter_map" | "concat_map" | "exists" | "for_all" | "find"
    | "find_opt" | "find_all" | "partition" | "sort" | "stable_sort"
    | "sort_uniq" ->
      true
    | _ -> false)

(* PERF104 bookkeeping: one scope per [let rec] binding group member,
   live while its group's bodies are scanned.  [base] records the
   consumed-position depth at the group's definition site, so a tail
   call inside e.g. an iterator callback that lexically *encloses* the
   whole definition is not mistaken for a non-tail self-call. *)
type rec_scope = {
  fname : string;
  base : int;
  mutable has_list_match : bool;
  mutable calls : (int * string) list;  (* (line, construct), newest first *)
}

let scan_source ~file source =
  let lines = E.lines_of_source source in
  let in_hot_dir = hot_dir file in
  let findings = ref [] in
  let loop_depth = ref 0 in
  let consumed = ref 0 in
  let rec_scopes : rec_scope list ref = ref [] in
  let cur_name = ref "_" in
  let under_iteration () = !loop_depth > 0 || !rec_scopes <> [] in
  let emit ~line ~code ~construct =
    let status =
      match
        E.justification ~marker ~lines ~start_line:line ~end_line:line
      with
      | Some why -> Whitelisted why
      | None -> Flagged
    in
    findings := { file; line; code; name = !cur_name; construct; status }
                :: !findings
  in
  let line_of (e : Parsetree.expression) =
    e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum
  in
  let super = Ast_iterator.default_iterator in
  (* Rule checks fire at each node; context (loops, consumed position,
     recursive scopes) is mutable state saved/restored around the
     recursive visits. *)
  let rec expr it (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } ->
      (match Longident.flatten txt with
      | ([ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ])
        when in_hot_dir ->
        emit ~line:(line_of e) ~code:"PERF103" ~construct:"compare"
      | [ "Hashtbl"; "hash" ] when in_hot_dir ->
        emit ~line:(line_of e) ~code:"PERF103" ~construct:"Hashtbl.hash"
      | _ -> ());
      super.Ast_iterator.expr it e
    | Parsetree.Pexp_while _ | Parsetree.Pexp_for _ ->
      incr loop_depth;
      super.Ast_iterator.expr it e;
      decr loop_depth
    | Parsetree.Pexp_let (rf, vbs, body) ->
      bindings it ~recursive:(rf = Asttypes.Recursive) vbs;
      expr it body
    | Parsetree.Pexp_apply (f, args) ->
      (match ident_of f with
      | Some ("@" | "Stdlib.@" | "List.append") -> (
        match List.rev args with
        | (_, last) :: _ when is_literal_list last ->
          emit ~line:(line_of e) ~code:"PERF101" ~construct:"xs @ [x]"
        | _ -> ())
      | Some (("List.nth" | "List.nth_opt" | "List.length") as n)
        when under_iteration () ->
        emit ~line:(line_of e) ~code:"PERF102" ~construct:n
      | Some ("^" | "Stdlib.^") when under_iteration () ->
        emit ~line:(line_of e) ~code:"PERF105" ~construct:"s ^ t"
      | Some n -> (
        match List.find_opt (fun s -> s.fname = n) !rec_scopes with
        | Some s when !consumed > s.base ->
          s.calls <-
            (line_of e, Printf.sprintf "%s _ (non-tail)" n) :: s.calls
        | Some _ | None -> ())
      | _ -> ());
      expr it f;
      let iterated =
        match ident_of f with Some n -> iteration_fn n | None -> false
      in
      if iterated then incr loop_depth;
      incr consumed;
      (* perf_lint: AST recursion; depth is bounded by source nesting *)
      List.iter (fun (_, a) -> expr it a) args;
      decr consumed;
      if iterated then decr loop_depth
    | Parsetree.Pexp_construct (_, Some payload) ->
      incr consumed;
      (* perf_lint: AST recursion; depth is bounded by source nesting *)
      expr it payload;
      decr consumed
    | _ -> super.Ast_iterator.expr it e
  (* A binding group: recursive groups open PERF104 scopes for every
     member (so mutual recursion is covered), flushed — gated on a
     [_ :: _] pattern appearing in a member body, i.e. recursion over
     list-structured data — when the group closes. *)
  and bindings it ~recursive vbs =
    let scan_vb (vb : Parsetree.value_binding) =
      let saved = !cur_name in
      let n = E.pattern_name vb.Parsetree.pvb_pat in
      if n <> "_" then cur_name := n;
      it.Ast_iterator.pat it vb.Parsetree.pvb_pat;
      expr it vb.Parsetree.pvb_expr;
      cur_name := saved
    in
    if not recursive then List.iter scan_vb vbs
    else begin
      let scopes =
        List.map
          (fun (vb : Parsetree.value_binding) ->
            {
              fname = E.pattern_name vb.Parsetree.pvb_pat;
              base = !consumed;
              has_list_match = false;
              calls = [];
            })
          vbs
      in
      let saved_scopes = !rec_scopes in
      rec_scopes := List.rev_append scopes saved_scopes;
      List.iter scan_vb vbs;
      rec_scopes := saved_scopes;
      List.iter
        (fun s ->
          if s.has_list_match then
            List.iter
              (fun (line, construct) -> emit ~line ~code:"PERF104" ~construct)
              (List.rev s.calls))
        scopes
    end
  in
  let pat it (p : Parsetree.pattern) =
    (match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_construct ({ txt = Longident.Lident "::"; _ }, _) ->
      List.iter (fun s -> s.has_list_match <- true) !rec_scopes
    | _ -> ());
    super.Ast_iterator.pat it p
  in
  let structure_item it (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (rf, vbs) ->
      bindings it ~recursive:(rf = Asttypes.Recursive) vbs
    | _ -> super.Ast_iterator.structure_item it si
  in
  let it =
    {
      super with
      Ast_iterator.expr;
      Ast_iterator.pat;
      Ast_iterator.structure_item;
    }
  in
  match E.parse_structure ~file source with
  | Ok items ->
    it.Ast_iterator.structure it items;
    Ok
      (List.sort
         (fun a b ->
           match compare a.line b.line with
           | 0 -> compare a.code b.code
           | c -> c)
         !findings)
  | Error _ ->
    Error
      (D.error ~code:"PERF100" ~path:file
         "source failed to parse (perf lint could not scan this file)")

let ml_files = E.ml_files
let scan_files files = E.scan_files ~scan:scan_source files

let scan_lib ?root () =
  E.scan_lib ?root ~what:"Perf_lint" ~scan:scan_source
    ~refile:(fun strip f -> { f with file = strip f.file })
    ()

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let describe = function
  | "PERF101" ->
    "list built by tail-append (O(n) copy per append, quadratic under \
     accumulation) — cons and List.rev once, or use a Queue"
  | "PERF102" ->
    "O(n) list primitive under iteration (O(n\xc2\xb2) per sweep) — use an \
     array, a counter, or List.compare_length_with"
  | "PERF103" ->
    "polymorphic compare/hash on a hot path — use a monomorphic \
     comparator (Int.compare, a record comparator)"
  | "PERF104" ->
    "non-tail self-recursion over list-structured data (stack grows \
     with input) — use an accumulator"
  | "PERF105" ->
    "string concatenation under iteration (copies both operands each \
     time) — accumulate in a Buffer"
  | _ -> "performance hazard"

let diags_of_findings fs =
  List.filter_map
    (fun f ->
      match f.status with
      | Whitelisted _ -> None
      | Flagged ->
        Some
          (D.error ~code:f.code
             ~path:(Printf.sprintf "%s:%d" f.file f.line)
             (Printf.sprintf
                "%s: `%s' in %s — fix it or justify with a \
                 (* perf_lint: ... *) comment"
                (describe f.code) f.construct f.name)))
    fs

let pp_inventory ppf fs =
  if fs = [] then Format.fprintf ppf "no performance hazards found@."
  else
    List.iter
      (fun f ->
        Format.fprintf ppf "%-34s %-24s %s@."
          (Printf.sprintf "%s:%d" f.file f.line)
          (Printf.sprintf "%s in %s" f.construct f.name)
          (match f.status with
          | Whitelisted why -> Printf.sprintf "whitelisted: %s" why
          | Flagged -> Printf.sprintf "FLAGGED %s" f.code))
      fs

let code_catalogue =
  [
    ("PERF100", "source failed to parse; perf lint scan incomplete");
    ("PERF101", "list built by tail-append (xs @ [x]); quadratic under accumulation");
    ("PERF102", "List.nth/List.length under iteration (O(n) per step)");
    ("PERF103", "polymorphic compare/Hashtbl.hash on a hot path (exec/storage/index)");
    ("PERF104", "non-tail self-recursion over list-structured data");
    ("PERF105", "string concatenation (^) under iteration");
  ]
