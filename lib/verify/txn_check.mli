(** Transaction-schedule sanitizer: offline analyzers over a recorded
    {!Mmdb_recovery.Schedule} trace.

    Section 5.2 of the paper rests its whole recovery argument on a
    locking protocol with pre-committed transactions: strict two-phase
    locking until pre-commit, pre-committed transactions never abort or
    re-acquire, and a transaction's commit record must not become durable
    before the commit records of the pre-committed transactions it
    depends on.  These analyzers check that the executable system's
    actual schedules obey all of it, in the spirit of classic
    serializability theory (Eswaran et al.) and ARIES-style protocol
    validation.  Stable error codes:

    - [TXN001] — lock granted after the transaction's first release
      (two-phase-locking growing-phase violation)
    - [TXN002] — read or write of a key without holding its lock
    - [TXN003] — lock still held after pre-commit (pre-commit must
      release every lock)
    - [TXN004] — pre-committed transaction acquired a lock
    - [TXN005] — pre-committed transaction aborted
    - [TXN006] — deadlock: cycle in the waits-for graph (reported with
      the cycle as witness)
    - [TXN007] — conflict-serializability violation: cycle in the
      precedence graph over committed transactions (reported with a
      witness edge list)
    - [TXN008] — pre-commit dependency violation: a commit became
      durable before a recorded dependency's commit, the dependency's
      commit record is missing from / out of order in the log, or the
      dependency aborted
    - [TXN101] (warning) — transactions acquire the same pair of keys in
      opposite orders (lock-order lint: a latent deadlock)

    Diagnostic paths locate the offence as ["txn=7 key=3"],
    ["txn=7 dep=4"] or ["txn=7"]. *)

val check_2pl : Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** 2PL / pre-commit protocol conformance: TXN001–TXN005.  Transactions
    still active (not yet pre-committed) at the end of a trace are
    tolerated — traces may be truncated by a crash. *)

val check_deadlock :
  Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** Waits-for-graph deadlock detection (TXN006, each distinct cycle
    reported once, with the cycle's transactions and keys) plus the
    lock-order lint (TXN101, once per conflicting key pair). *)

val check_serializability :
  Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** Builds the precedence (conflict) graph over committed transactions —
    an edge [a -> b] when [a] accessed a key before [b] did and at least
    one access was a write — and reports each cycle as TXN007 with a
    witness.  Aborted transactions' accesses are excluded (their effects
    are rolled back). *)

val check_dependencies :
  ?log:Mmdb_recovery.Log_record.t list ->
  Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** The paper's group-commit invariant (TXN008): for every dependency
    [d] recorded in a grant to transaction [t] — [d] was pre-committed
    when [t] took the lock — checks that (a) when both durability times
    are recorded, [d]'s commit became durable no later than [t]'s, and
    (b) against [log] (submission order): [d] neither aborted nor had its
    commit record submitted after [t]'s.  Omitting [log] (or passing
    [[]]) skips the log cross-checks. *)

val audit :
  ?log:Mmdb_recovery.Log_record.t list ->
  Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** All four analyzers, concatenated. *)

val ok :
  ?log:Mmdb_recovery.Log_record.t list ->
  Mmdb_recovery.Schedule.event list -> bool
(** No error-severity findings (TXN101 warnings allowed). *)

val code_catalogue : (string * string) list
(** [(code, one-line description)] for every code above. *)
