(** Seeded interleaved-workload fuzzer for the transaction sanitizer.

    Drives {!Mmdb_recovery.Lock_manager} and {!Mmdb_recovery.Wal}
    directly with concurrent banking transactions — staged lock
    acquisition (so transactions genuinely wait on each other), random
    aborts with in-memory rollback, deadlock victims, optional crashes
    mid-schedule — records everything through a
    {!Mmdb_recovery.Schedule} recorder, and runs {!Txn_check.audit} over
    the result.

    Determinism: all randomness comes from {!Mmdb_util.Xorshift} seeded
    with [seed]; the same parameters always produce the same schedule,
    log, and diagnostics.

    By default each transaction acquires its keys in sorted order, so the
    run is deadlock-free and a clean build must produce {e zero}
    error-severity diagnostics (CI gates on this).  With
    [~scramble:true] acquisition order is shuffled per transaction:
    deadlocks become possible, are resolved by aborting a victim, and the
    waits-for analyzer must report each one as TXN006 (plus TXN101
    lock-order warnings). *)

type inject = [ `Ww | `Rw | `Unguarded | `Release_no_acquire | `Snapshot ]
(** Seeded positive controls: each injects one specific race into the
    recorded trace via ghost transactions on private domains and keys,
    mapping to exactly one expected code — [`Ww] → RACE001, [`Rw] →
    RACE002, [`Unguarded] → RACE003 (lockset fallback only),
    [`Release_no_acquire] → RACE004, [`Snapshot] → RACE005. *)

type outcome = {
  events : Mmdb_recovery.Schedule.event list;  (** the recorded trace *)
  log : Mmdb_recovery.Log_record.t list;
      (** every record submitted to the WAL, in order *)
  diags : Mmdb_util.Diag.t list;  (** [Txn_check.audit ~log events] *)
  race_diags : Mmdb_util.Diag.t list;  (** [Race_check.audit events] *)
  injected : string list;
      (** expected RACE codes, one per injection, in injection order *)
  committed : int;  (** transactions that pre-committed *)
  aborted : int;  (** voluntary aborts plus deadlock victims *)
  waits : int;  (** lock requests that had to queue *)
  deadlocks : int;
      (** victims killed because every in-flight transaction was queued
          (may exceed distinct TXN006 cycles: a kill outside the cycle
          forces another round) *)
  crashed : bool;  (** the run stopped mid-schedule without a flush *)
  ovld_codes : (string * int) list;
      (** OVLD shed/timeout histogram from spike mode ([[]] without
          [~spike]): OVLD001 arrivals shed by the starved token bucket,
          OVLD004 waiters aborted when their lock-wait deadline passed *)
}

val run :
  ?txns:int ->
  ?accounts:int ->
  ?inflight:int ->
  ?abort_pct:int ->
  ?scramble:bool ->
  ?crash:bool ->
  ?domains:int ->
  ?spike:bool ->
  ?inject:inject list ->
  seed:int ->
  unit ->
  outcome
(** [run ~seed ()] executes one fuzzed workload.  Defaults: [txns] = 40
    transfer transactions of 2–4 accounts each over [accounts] = 16
    accounts (small on purpose — contention is the point), up to
    [inflight] = 4 transactions interleaved, [abort_pct] = 15 percent
    voluntary aborts, [scramble] = false (sorted, deadlock-free
    acquisition), [crash] = false.  With [crash:true] the driver stops
    roughly two-thirds through without flushing the log: the trace is
    truncated (in-flight transactions never finish) and the analyzers
    must still accept it.

    [spike] (default false) models an overload spike: arrivals pass a
    deliberately starved token bucket (sheds land in [ovld_codes] as
    OVLD001) and every admitted transaction carries a short lock-wait
    deadline — {!Mmdb_recovery.Lock_manager.expire_waiters} sweeps
    expired waiters each tick and the driver aborts them through the
    audited Begin/Abort path (OVLD004).  A clean run must still produce
    zero error diagnostics: shed arrivals never touch the lock manager,
    and timed-out waiters leave no locks and no balance changes.

    [domains] (default 1) assigns transaction [id] to simulated domain
    [id mod domains]; with [domains > 1] the trace is a genuine
    multi-domain interleaving whose only cross-domain ordering comes
    from lock edges, so a clean 2PL run must produce zero race
    diagnostics.  [inject] appends seeded positive-control races (see
    {!inject}); [injected] lists the codes {!Race_check.audit} is
    expected to flag.  Injected ghost accesses are deliberately
    lock-free, so they also surface as protocol errors in [diags] —
    race gates assert on [race_diags] only. *)
