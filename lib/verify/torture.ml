module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan
module R = Mmdb_recovery

type verdict =
  | Clean
  | Repaired
  | Flagged of string list
  | Silent of string list

type failure = {
  f_strategy : string;
  f_spec : string;
  f_crash_at : float;
  f_crash_steps : int option;
  f_violations : string list;
}

type combo = {
  cb_strategy : string;
  cb_spec : string;
  cb_runs : int;
  cb_clean : int;
  cb_repaired : int;
  cb_flagged : int;
  cb_silent : int;
}

type report = {
  combos : combo list;
  total_runs : int;
  restart_runs : int;
  silent : failure list;
  flagged : failure list;
  tally : Fault.tally;
  events : (string * int) list;
}

let default_specs =
  [ "none"; "torn-tail"; "bitflip"; "torn-tail,bitflip"; "io-error";
    "battery-droop"; "media"; "snapshot-rot" ]

let default_strategies =
  [
    R.Wal.Conventional;
    R.Wal.Group_commit;
    R.Wal.Partitioned { devices = 2 };
    R.Wal.Stable { devices = 2; capacity_bytes = 8192; compressed = true };
  ]

(* Sweep under the hardest replay configuration: four partitions with
   adaptive logging, so every crash point also exercises barrier
   rendezvous and the value/command decision.  Simulated scheduler keeps
   the sweep deterministic in [seed]. *)
let default_replay =
  {
    R.Recovery_manager.workers = 4;
    use_domains = false;
    logging = R.Recovery_manager.Adaptive_logging;
    crash_steps = None;
    record_replay = false;
    serve_stale = false;
  }

(* Small, contended workload: every run is milliseconds, so the sweep can
   afford hundreds of crash points. *)
let base_config ~seed ~txns strategy rules =
  {
    R.Recovery_manager.default_config with
    R.Recovery_manager.nrecords = 64;
    records_per_page = 8;
    updates_per_txn = 4;
    n_txns = txns;
    checkpoint_every = Some (max 4 (txns / 3));
    strategy;
    faults = rules;
    seed;
  }

(* Candidate crash instants for one (strategy, spec) combination, taken
   from a crash-free probe run: just after each log-page write is issued
   and at its midpoint (mid-page-write torture), between transaction
   arrivals, and well past quiesce (clean-shutdown control). *)
let crash_points (probe : R.Recovery_manager.outcome) ~txns ~max_points =
  let pts = ref [] in
  let last_completion = ref 0.0 in
  List.iter
    (fun (s, c) ->
      last_completion := Float.max !last_completion c;
      pts := (s +. 1e-6) :: ((s +. c) /. 2.0) :: !pts)
    probe.R.Recovery_manager.page_spans;
  let stride = max 1 (txns / 8) in
  let i = ref 0 in
  while !i < txns do
    pts := ((float_of_int !i *. 1e-3) +. 5e-4) :: !pts;
    i := !i + stride
  done;
  pts := (!last_completion +. 1.0) :: !pts;
  let all = List.sort_uniq compare (List.filter (fun t -> t > 0.0) !pts) in
  let n = List.length all in
  if n <= max_points then all
  else
    (* Evenly subsample to the cap. *)
    List.filteri (fun i _ -> i * max_points / n <> (i - 1) * max_points / n) all

(* The sweep's central property: no silent corruption.  Either every
   invariant holds, or the fault plane reported an unrecoverable loss
   (battery droop dropping acknowledged commits, at-rest media damage
   destroying committed log records).  An invariant violation without an
   unrecoverable report is a bug in the recovery stack. *)
let evaluate (o : R.Recovery_manager.outcome) =
  let violations =
    List.filter_map
      (fun (bad, name) -> if bad then Some name else None)
      [
        (not o.R.Recovery_manager.consistent, "state diverges from golden replay");
        (not o.R.Recovery_manager.money_conserved, "money not conserved");
        (not o.R.Recovery_manager.durability_ok, "acknowledged commit lost");
        ( not (Log_check.ok ~complete:false o.R.Recovery_manager.durable_log),
          "durable log fails protocol audit" );
      ]
  in
  match violations with
  | [] ->
    if Fault.tally_total o.R.Recovery_manager.fault_tally = 0 then Clean
    else Repaired
  | v ->
    if o.R.Recovery_manager.fault_tally.Fault.unrecoverable > 0 then Flagged v
    else Silent v

let add_tally ~into (t : Fault.tally) =
  into.Fault.injected <- into.Fault.injected + t.Fault.injected;
  into.Fault.detected <- into.Fault.detected + t.Fault.detected;
  into.Fault.retried <- into.Fault.retried + t.Fault.retried;
  into.Fault.repaired <- into.Fault.repaired + t.Fault.repaired;
  into.Fault.unrecoverable <- into.Fault.unrecoverable + t.Fault.unrecoverable;
  into.Fault.retry_backoff <- into.Fault.retry_backoff +. t.Fault.retry_backoff

(* Up to [k] crash points spread evenly across [points] (first, interior,
   last): the late points sit past quiesce, where the merged log is
   longest and a mid-replay crash interrupts the most work. *)
let spread_points k points =
  let arr = Array.of_list points in
  let n = Array.length arr in
  if n = 0 || k <= 0 then []
  else begin
    let k = min k n in
    List.init k (fun i -> arr.(i * (n - 1) / max 1 (k - 1)))
    |> List.sort_uniq compare
  end

let run ?(seed = 7) ?(txns = 48) ?(specs = default_specs)
    ?(strategies = default_strategies) ?(max_points_per_combo = 32)
    ?(replay = default_replay) ?(restart_points_per_combo = 3)
    ?(restart_steps = [ 1; 8; 64 ]) () =
  let combos = ref [] in
  let silent = ref [] in
  let flagged = ref [] in
  let total = ref 0 in
  let restarts = ref 0 in
  let tally = Fault.tally_create () in
  let events = Hashtbl.create 16 in
  List.iter
    (fun strategy ->
      let label = R.Tps_sim.strategy_label strategy in
      List.iter
        (fun spec ->
          let rules =
            match Fault_plan.of_spec spec with
            | Ok r -> r
            (* perf_lint: error path; raises immediately *)
            | Error m -> invalid_arg ("Torture: bad fault spec: " ^ m)
          in
          let cfg =
            { (base_config ~seed ~txns strategy rules) with
              R.Recovery_manager.replay }
          in
          let probe = R.Recovery_manager.run cfg in
          let points =
            crash_points probe ~txns ~max_points:max_points_per_combo
          in
          let cb = ref
              {
                cb_strategy = label;
                cb_spec = spec;
                cb_runs = 0;
                cb_clean = 0;
                cb_repaired = 0;
                cb_flagged = 0;
                cb_silent = 0;
              }
          in
          let exec ~ct ~steps =
            let o =
              R.Recovery_manager.run
                { cfg with
                  R.Recovery_manager.crash_at = Some ct;
                  replay =
                    { cfg.R.Recovery_manager.replay with
                      R.Recovery_manager.crash_steps = steps };
                }
            in
            incr total;
            restarts :=
              !restarts + max 0 (o.R.Recovery_manager.recovery_attempts - 1);
            add_tally ~into:tally o.R.Recovery_manager.fault_tally;
            List.iter
              (fun (code, n) ->
                Hashtbl.replace events code
                  (n + Option.value ~default:0 (Hashtbl.find_opt events code)))
              o.R.Recovery_manager.fault_events;
            let fail v =
              {
                f_strategy = label;
                f_spec = spec;
                f_crash_at = ct;
                f_crash_steps = steps;
                f_violations = v;
              }
            in
            match evaluate o with
            | Clean ->
              cb := { !cb with cb_runs = !cb.cb_runs + 1;
                      cb_clean = !cb.cb_clean + 1 }
            | Repaired ->
              cb := { !cb with cb_runs = !cb.cb_runs + 1;
                      cb_repaired = !cb.cb_repaired + 1 }
            | Flagged v ->
              flagged := fail v :: !flagged;
              cb := { !cb with cb_runs = !cb.cb_runs + 1;
                      cb_flagged = !cb.cb_flagged + 1 }
            | Silent v ->
              silent := fail v :: !silent;
              cb := { !cb with cb_runs = !cb.cb_runs + 1;
                      cb_silent = !cb.cb_silent + 1 }
          in
          List.iter (fun ct -> exec ~ct ~steps:None) points;
          (* Restart-crash runs: crash at [ct], then crash {e again} after
             [n] replay/write-back steps of the resulting recovery, restart,
             and demand the same no-silent-corruption property. *)
          List.iter
            (fun ct ->
              List.iter (fun n -> exec ~ct ~steps:(Some n)) restart_steps)
            (spread_points restart_points_per_combo points);
          combos := !cb :: !combos)
        specs)
    strategies;
  {
    combos = List.rev !combos;
    total_runs = !total;
    restart_runs = !restarts;
    silent = List.rev !silent;
    flagged = List.rev !flagged;
    tally;
    events =
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) events []
      |> List.sort compare;
  }

let ok r = r.silent = []

let pp_failure ppf f =
  Format.fprintf ppf "%-14s %-20s crash_at=%.6f%s: %s" f.f_strategy f.f_spec
    f.f_crash_at
    (match f.f_crash_steps with
    | None -> ""
    | Some n -> Printf.sprintf " crash_steps=%d" n)
    (String.concat "; " f.f_violations)

let pp ppf r =
  Format.fprintf ppf "%-14s %-20s %5s %6s %9s %8s %7s@." "strategy" "faults"
    "runs" "clean" "repaired" "flagged" "silent";
  List.iter
    (fun cb ->
      Format.fprintf ppf "%-14s %-20s %5d %6d %9d %8d %7d@." cb.cb_strategy
        cb.cb_spec cb.cb_runs cb.cb_clean cb.cb_repaired cb.cb_flagged
        cb.cb_silent)
    r.combos;
  Format.fprintf ppf
    "@.%d crash-recovery runs (%d mid-replay restarts); faults %a@."
    r.total_runs r.restart_runs Fault.pp_tally r.tally;
  if r.events <> [] then begin
    Format.fprintf ppf "fault events:";
    List.iter (fun (c, n) -> Format.fprintf ppf " %s=%d" c n) r.events;
    Format.fprintf ppf "@."
  end;
  List.iter (fun f -> Format.fprintf ppf "SILENT: %a@." pp_failure f) r.silent;
  if r.silent = [] then
    Format.fprintf ppf "torture: ok (no silent corruption)@."
  else
    Format.fprintf ppf "torture: %d silent corruption case(s)@."
      (List.length r.silent)
