(** Verification layer: static plan checking, WAL protocol auditing, and
    runtime invariant sanitizers, unified behind {!Audit}.

    The plan checker lives in {!Mmdb_planner.Plan_check} (the planner
    runs it before execution) and the diagnostic type in
    {!Mmdb_util.Diag}; both are re-exported here so [Mmdb_verify] is the
    one-stop namespace for tooling. *)

module Diag = Mmdb_util.Diag
module Plan_check = Mmdb_planner.Plan_check
module Log_check = Log_check
module Pool_check = Pool_check
module Schedule = Mmdb_recovery.Schedule
module Txn_check = Txn_check
module Txn_fuzz = Txn_fuzz
module Torture = Torture
module Model_check = Model_check
module Race_check = Race_check
module Lint_engine = Lint_engine
module Domain_lint = Domain_lint
module Perf_lint = Perf_lint
module Exn_flow = Exn_flow
module Audit = Audit

(** Every stable diagnostic code with a one-line description. *)
let code_catalogue =
  Plan_check.code_catalogue @ Log_check.code_catalogue
  @ Pool_check.code_catalogue @ Txn_check.code_catalogue
  @ Audit.code_catalogue @ Model_check.code_catalogue
  @ Race_check.code_catalogue @ Domain_lint.code_catalogue
  @ Perf_lint.code_catalogue @ Exn_flow.code_catalogue
  @ Mmdb_overload.Overload.code_catalogue
