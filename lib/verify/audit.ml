module D = Mmdb_util.Diag

type component =
  | Btree of string * Mmdb_index.Btree.t
  | Avl of string * Mmdb_index.Avl.t
  | Paged_bst of string * Mmdb_index.Paged_bst.t
  | Heap_check of string * (unit -> bool)
  | Pool of { name : string; pool : Mmdb_storage.Buffer_pool.t;
              expect_unpinned : bool }
  | Log of { name : string; complete : bool;
             records : Mmdb_recovery.Log_record.t list }
  | Plan of { name : string; catalog : Mmdb_planner.Catalog.t;
              expr : Mmdb_planner.Algebra.expr }
  | Schedule of { name : string;
                  events : Mmdb_recovery.Schedule.event list;
                  log : Mmdb_recovery.Log_record.t list }
  | Model of { name : string; check : unit -> Mmdb_util.Diag.t list }
  | Race of { name : string; events : Mmdb_recovery.Schedule.event list }
  | Perf of { name : string; root : string option }
  | Exn of { name : string; root : string option }

let structure_diag ~code ~what ok =
  if ok then []
  else [ D.error ~code ~path:"$" (what ^ " invariant violated") ]

let run = function
  | Btree (_, t) ->
    structure_diag ~code:"IDX001" ~what:"B-tree"
      (Mmdb_index.Btree.check_invariants t)
  | Avl (_, t) ->
    structure_diag ~code:"IDX002" ~what:"AVL"
      (Mmdb_index.Avl.check_invariants t)
  | Paged_bst (_, t) ->
    structure_diag ~code:"IDX003" ~what:"paged BST"
      (Mmdb_index.Paged_bst.check_invariants t)
  | Heap_check (_, check) ->
    structure_diag ~code:"IDX004" ~what:"heap" (check ())
  | Pool { pool; expect_unpinned; _ } -> Pool_check.audit ~expect_unpinned pool
  | Log { complete; records; _ } -> Log_check.audit ~complete records
  | Plan { catalog; expr; _ } -> Mmdb_planner.Plan_check.check catalog expr
  | Schedule { events; log; _ } -> Txn_check.audit ~log events
  | Model { check; _ } -> check ()
  | Race { events; _ } -> Race_check.audit events
  | Perf { root; _ } -> (
    match Perf_lint.scan_lib ?root () with
    | Error m -> [ D.error ~code:"PERF100" ~path:"lib" m ]
    | Ok (findings, parse_diags) ->
      parse_diags @ Perf_lint.diags_of_findings findings)
  | Exn { root; _ } -> (
    match Exn_flow.scan_lib ?root () with
    | Error m -> [ D.error ~code:"EXN100" ~path:"lib" m ]
    | Ok (findings, parse_diags) ->
      parse_diags @ Exn_flow.diags_of_findings findings)

let name_of = function
  | Btree (n, _) | Avl (n, _) | Paged_bst (n, _) | Heap_check (n, _) -> n
  | Pool { name; _ } | Log { name; _ } | Plan { name; _ }
  | Schedule { name; _ } | Model { name; _ } | Race { name; _ }
  | Perf { name; _ } | Exn { name; _ } -> name

let run_all components = List.map (fun c -> (name_of c, run c)) components

let ok components =
  List.for_all (fun c -> not (D.has_errors (run c))) components

let report ppf results =
  let all_clean = ref true in
  List.iter
    (fun (name, diags) ->
      if diags = [] then Format.fprintf ppf "%-24s ok@." name
      else begin
        if D.has_errors diags then all_clean := false;
        Format.fprintf ppf "%-24s %s@." name (D.summary diags);
        List.iter (fun d -> Format.fprintf ppf "  %a@." D.pp d) diags
      end)
    results;
  let total = List.concat_map snd results in
  Format.fprintf ppf "audit: %d component%s, %s@." (List.length results)
    (if List.length results = 1 then "" else "s")
    (D.summary total);
  !all_clean

let code_catalogue =
  [
    ("IDX001", "B-tree invariant violated");
    ("IDX002", "AVL invariant violated");
    ("IDX003", "paged BST invariant violated");
    ("IDX004", "heap property violated");
  ]
