(** Shared machinery for the source-level lint passes.

    {!Domain_lint} (shared-state inventory, [RACE1xx]) and {!Perf_lint}
    (performance hazards, [PERF1xx]) are thin rule sets — a
    [scan_source] function each — over this engine, which owns
    everything pass-independent: [.ml] discovery, repository-root
    location (checkout and dune-sandbox alike), the textual
    justification-comment convention, parsing, and the file/library
    scan drivers with root-relative path reporting. *)

val read_file : string -> string

val lines_of_source : string -> string array
(** Source text as a 1-indexed-by-convention line array (index [i - 1]
    holds line [i]), for justification-comment lookups. *)

val files_with_suffix : string -> string -> string list
(** [files_with_suffix suffix dir]: all files ending in [suffix] under
    [dir], sorted depth-first (deterministic sweeps). *)

val ml_files : string -> string list
(** All [.ml] files under a directory, sorted (deterministic sweeps). *)

val mli_files : string -> string list
(** All [.mli] files under a directory, sorted. *)

val module_of_file : string -> string
(** The OCaml module a source path compiles to: capitalized basename
    without its extension ([lib/fault/fault_plan.ml] → ["Fault_plan"]). *)

val find_root : unit -> string option
(** Walk up from the current directory until a [dune-project] with a
    [lib/] sibling appears — works both from a checkout and from inside
    dune's sandbox. *)

val justification :
  marker:string ->
  lines:string array ->
  start_line:int ->
  end_line:int ->
  string option
(** The text of a [(* <marker> why *)] comment found inside the line
    window or within the two lines above it ([marker] includes the
    colon, e.g. ["race_check:"]).  Comments are not in the parsetree,
    so the match is textual. *)

val pattern_name : Parsetree.pattern -> string
(** The bound variable name, or ["_"] for non-variable patterns. *)

val parse_structure :
  file:string -> string -> (Parsetree.structure, exn) result
(** Parse one compilation unit's source text with [file] as the
    reported filename. *)

val parse_interface :
  file:string -> string -> (Parsetree.signature, exn) result
(** Parse one interface's source text with [file] as the reported
    filename. *)

val exported_values : Parsetree.signature -> string list
(** The names of an interface's top-level [val] items, in order —
    the exported-function set the interprocedural passes treat as a
    module's public surface. *)

val strip_prefix : root:string -> string -> string
(** Rewrite an absolute path under [root] to a root-relative one (the
    stable spelling used in findings); other paths pass through. *)

val locate_root : ?root:string -> what:string -> unit -> (string, string) result
(** [root] when given, otherwise {!find_root}; [Error] carries the
    pass-named message used by the lib scans. *)

val lib_sources :
  ?root:string ->
  what:string ->
  unit ->
  ((string * string) list * (string * string) list, string) result
(** Every [.ml] and [.mli] under [lib/] as [(root-relative path, source
    text)] pairs — the whole-program input of the interprocedural
    passes.  Root located as in {!locate_root}. *)

val scan_files :
  scan:(file:string -> string -> ('a list, Mmdb_util.Diag.t) result) ->
  string list ->
  'a list * Mmdb_util.Diag.t list
(** Run a pass over the given paths; per-file parse failures become
    diagnostics rather than aborting the sweep. *)

val scan_lib :
  ?root:string ->
  what:string ->
  scan:(file:string -> string -> ('a list, Mmdb_util.Diag.t) result) ->
  refile:((string -> string) -> 'a -> 'a) ->
  unit ->
  ('a list * Mmdb_util.Diag.t list, string) result
(** Locate the repository root (or use [root]), then run a pass over
    every [.ml] under [lib/].  [refile strip] rewrites a finding's
    stored path with the root-stripping function so reports are stable
    across checkouts; [what] names the pass in the no-root error. *)
