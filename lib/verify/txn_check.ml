module D = Mmdb_util.Diag
module Sch = Mmdb_recovery.Schedule
module L = Mmdb_recovery.Log_record
module IntSet = Set.Make (Int)

let path_txn txn = Printf.sprintf "txn=%d" txn
let path_key txn key = Printf.sprintf "txn=%d key=%d" txn key
let path_dep txn dep = Printf.sprintf "txn=%d dep=%d" txn dep

(* ------------------------------------------------------------------ *)
(* TXN001-TXN005: 2PL / pre-commit protocol conformance                *)
(* ------------------------------------------------------------------ *)

type phase = Active | Precommitted | Aborted | Finished

type txn_2pl = {
  mutable held : IntSet.t;
  mutable released_any : bool;
  mutable phase : phase;
}

let check_2pl events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let txns : (int, txn_2pl) Hashtbl.t = Hashtbl.create 64 in
  let reported : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let once ~code ~txn ~key f =
    if not (Hashtbl.mem reported (code, txn, key)) then begin
      Hashtbl.replace reported (code, txn, key) ();
      f ()
    end
  in
  let state txn =
    match Hashtbl.find_opt txns txn with
    | Some s -> s
    | None ->
      let s = { held = IntSet.empty; released_any = false; phase = Active } in
      Hashtbl.replace txns txn s;
      s
  in
  let granted txn key =
    let st = state txn in
    if st.phase = Precommitted || st.phase = Finished then
      (* Don't track the illegal key in [held]: one protocol bug should
         not cascade into a follow-on TXN003. *)
      once ~code:"TXN004" ~txn ~key (fun () ->
          add
            (D.error ~code:"TXN004" ~path:(path_key txn key)
               (Printf.sprintf
                  "pre-committed transaction %d acquired the lock on key %d"
                  txn key)))
    else begin
      if st.released_any && not (IntSet.mem key st.held) then
        add
          (D.error ~code:"TXN001" ~path:(path_key txn key)
             (Printf.sprintf
                "transaction %d acquired key %d after its first release \
                 (two-phase locking growing phase is over)"
                txn key));
      st.held <- IntSet.add key st.held
    end
  in
  List.iter
    (fun (e : Sch.event) ->
      let txn = e.Sch.txn in
      match (e.Sch.kind, e.Sch.key) with
      | Sch.Acquire, Some key ->
        let st = state txn in
        if st.phase = Precommitted || st.phase = Finished then
          once ~code:"TXN004" ~txn ~key (fun () ->
              add
                (D.error ~code:"TXN004" ~path:(path_key txn key)
                   (Printf.sprintf
                      "pre-committed transaction %d requested the lock on \
                       key %d"
                      txn key)))
      | (Sch.Grant _ | Sch.Wake _), Some key -> granted txn key
      | (Sch.Read | Sch.Write), Some key ->
        let st = state txn in
        if not (IntSet.mem key st.held) then
          once ~code:"TXN002" ~txn ~key (fun () ->
              add
                (D.error ~code:"TXN002" ~path:(path_key txn key)
                   (Printf.sprintf
                      "transaction %d %s key %d without holding its lock" txn
                      (match e.Sch.kind with
                      | Sch.Read -> "read"
                      | _ -> "wrote")
                      key)))
      | Sch.Release, Some key ->
        let st = state txn in
        st.held <- IntSet.remove key st.held;
        st.released_any <- true
      | Sch.Precommit, _ -> (state txn).phase <- Precommitted
      | Sch.Abort, _ ->
        let st = state txn in
        if st.phase = Precommitted then
          add
            (D.error ~code:"TXN005" ~path:(path_txn txn)
               (Printf.sprintf
                  "pre-committed transaction %d aborted (pre-committed \
                   transactions never abort)"
                  txn));
        st.phase <- Aborted
      | Sch.Commit_durable, _ ->
        let st = state txn in
        if st.phase = Precommitted && not (IntSet.is_empty st.held) then
          add
            (D.error ~code:"TXN003" ~path:(path_txn txn)
               (Printf.sprintf
                  "transaction %d still holds key%s %s at commit durability \
                   (pre-commit must release every lock)"
                  txn
                  (if IntSet.cardinal st.held = 1 then "" else "s")
                  (String.concat ","
                     (List.map string_of_int (IntSet.elements st.held)))));
        st.phase <- Finished
      | Sch.Wait _, _ ->
        (* Queueing neither grants nor accesses anything. *)
        ()
      | (Sch.Grant _ | Sch.Wake _ | Sch.Acquire | Sch.Read | Sch.Write
        | Sch.Release), None ->
        (* A lock/access event without a key is a malformed trace entry;
           nothing protocol-level to check. *)
        ())
    events;
  Hashtbl.iter
    (fun txn st ->
      if st.phase = Precommitted && not (IntSet.is_empty st.held) then
        add
          (D.error ~code:"TXN003" ~path:(path_txn txn)
             (Printf.sprintf
                "transaction %d pre-committed but never released key%s %s"
                txn
                (if IntSet.cardinal st.held = 1 then "" else "s")
                (String.concat ","
                   (List.map string_of_int (IntSet.elements st.held))))))
    txns;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* TXN006 / TXN101: waits-for deadlock detection and lock-order lint   *)
(* ------------------------------------------------------------------ *)

let check_deadlock events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let key_holder : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let waiting : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* acquisition order per txn, newest first, for the lock-order lint *)
  let acq_order : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let cycles_seen : (int list, unit) Hashtbl.t = Hashtbl.create 4 in
  let report_cycle cycle =
    (* [cycle] is [t1; t2; ...; tn] where each waits for the next and tn
       waits for t1. *)
    let canon = List.sort compare cycle in
    if not (Hashtbl.mem cycles_seen canon) then begin
      Hashtbl.replace cycles_seen canon ();
      let arr = Array.of_list cycle in
      let hops =
        List.mapi
          (fun i t ->
            let next = arr.((i + 1) mod Array.length arr) in
            let key =
              match Hashtbl.find_opt waiting t with Some k -> k | None -> -1
            in
            Printf.sprintf "txn %d waits for key %d held by txn %d" t key
              next)
          cycle
      in
      add
        (D.error ~code:"TXN006"
           ~path:
             (Printf.sprintf "cycle=%s"
                (String.concat "->" (List.map string_of_int cycle)))
           ("deadlock: " ^ String.concat ", " hops))
    end
  in
  (* Follow the (single-valued) waits-for chain from [start]; each txn
     waits for at most one key and each key has at most one holder, so a
     cycle is a lasso reachable by plain chain-walking. *)
  let detect_from start =
    let rec walk seen t =
      match Hashtbl.find_opt waiting t with
      | None -> ()
      | Some k -> (
        match Hashtbl.find_opt key_holder k with
        | None -> ()
        | Some h ->
          if List.mem h seen then begin
            (* Cycle = the suffix of [seen] (oldest first) from [h]. *)
            let rec suffix = function
              | [] -> []
              | x :: rest -> if x = h then x :: rest else suffix rest
            in
            report_cycle (suffix (List.rev seen))
          end
          else walk (h :: seen) h)
    in
    walk [ start ] start
  in
  List.iter
    (fun (e : Sch.event) ->
      let txn = e.Sch.txn in
      match (e.Sch.kind, e.Sch.key) with
      | (Sch.Grant _ | Sch.Wake _), Some key ->
        Hashtbl.replace key_holder key txn;
        Hashtbl.remove waiting txn;
        let sofar =
          match Hashtbl.find_opt acq_order txn with Some l -> l | None -> []
        in
        if not (List.mem key sofar) then
          Hashtbl.replace acq_order txn (key :: sofar);
        (* The lock changed hands: any waiter on [key] now waits for the
           new holder, which can close a cycle. *)
        Hashtbl.iter
          (fun w k -> if k = key && w <> txn then detect_from w)
          waiting
      | Sch.Wait _, Some key ->
        Hashtbl.replace waiting txn key;
        detect_from txn
      | Sch.Release, Some key -> (
        match Hashtbl.find_opt key_holder key with
        | Some h when h = txn -> Hashtbl.remove key_holder key
        | Some _ | None -> ())
      | Sch.Abort, _ -> Hashtbl.remove waiting txn
      | _ -> ())
    events;
  (* Lock-order lint: the same key pair taken in both orders by
     different transactions is a latent deadlock even if this trace got
     lucky. *)
  let pair_dir : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let pairs_reported : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.iter
    (fun txn rev_order ->
      let order = List.rev rev_order in
      let rec walk = function
        | [] -> ()
        | first :: rest ->
          List.iter
            (fun second ->
              let pair = (min first second, max first second) in
              match Hashtbl.find_opt pair_dir pair with
              | None -> Hashtbl.replace pair_dir pair (first, txn)
              | Some (dir_first, other_txn) ->
                if
                  dir_first <> first
                  && other_txn <> txn
                  && not (Hashtbl.mem pairs_reported pair)
                then begin
                  Hashtbl.replace pairs_reported pair ();
                  add
                    (D.warning ~code:"TXN101"
                       ~path:(Printf.sprintf "keys=%d,%d" (fst pair) (snd pair))
                       (Printf.sprintf
                          "inconsistent lock order: txn %d acquires key %d \
                           before key %d but txn %d acquires them in the \
                           opposite order (latent deadlock)"
                          other_txn dir_first
                          (if dir_first = fst pair then snd pair else fst pair)
                          txn))
                end)
            rest;
          walk rest
      in
      walk order)
    acq_order;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* TXN007: conflict-serializability over committed transactions        *)
(* ------------------------------------------------------------------ *)

let check_serializability events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Fate of each transaction: committed = reached Precommit and never
     aborted (pre-committed transactions cannot abort; if a malformed
     trace shows both, TXN005 catches it and we treat it as aborted
     here). *)
  let precommitted : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let aborted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Sch.event) ->
      match e.Sch.kind with
      | Sch.Precommit -> Hashtbl.replace precommitted e.Sch.txn ()
      | Sch.Abort -> Hashtbl.replace aborted e.Sch.txn ()
      | _ -> ())
    events;
  let committed txn =
    Hashtbl.mem precommitted txn && not (Hashtbl.mem aborted txn)
  in
  (* Conflict edges: a -> b when a accessed a key before b and at least
     one access was a write.  First witness per edge is kept. *)
  let accesses : (int, (int * [ `R | `W ]) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (e : Sch.event) ->
      match (e.Sch.kind, e.Sch.key) with
      | (Sch.Read | Sch.Write), Some key when committed e.Sch.txn ->
        let op = match e.Sch.kind with Sch.Read -> `R | _ -> `W in
        let prev =
          match Hashtbl.find_opt accesses key with Some l -> l | None -> []
        in
        Hashtbl.replace accesses key ((e.Sch.txn, op) :: prev)
      | _ -> ())
    events;
  let edges : (int * int, int * [ `R | `W ] * [ `R | `W ]) Hashtbl.t =
    Hashtbl.create 64
  in
  let succs : (int, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key rev_accs ->
      let accs = Array.of_list (List.rev rev_accs) in
      Array.iteri
        (fun i (ti, oi) ->
          for j = i + 1 to Array.length accs - 1 do
            let tj, oj = accs.(j) in
            if ti <> tj && (oi = `W || oj = `W) then begin
              if not (Hashtbl.mem edges (ti, tj)) then
                Hashtbl.replace edges (ti, tj) (key, oi, oj);
              let s =
                match Hashtbl.find_opt succs ti with
                | Some s -> s
                | None -> IntSet.empty
              in
              Hashtbl.replace succs ti (IntSet.add tj s)
            end
          done)
        accs)
    accesses;
  (* DFS with colors; every back edge closes a cycle, reported once per
     canonical transaction set. *)
  let color : (int, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 64 in
  let cycles_seen : (int list, unit) Hashtbl.t = Hashtbl.create 4 in
  let op_name = function `R -> "R" | `W -> "W" in
  let report_cycle cycle =
    let canon = List.sort compare cycle in
    if not (Hashtbl.mem cycles_seen canon) then begin
      Hashtbl.replace cycles_seen canon ();
      let arr = Array.of_list cycle in
      let hops =
        List.mapi
          (fun i t ->
            let next = arr.((i + 1) mod Array.length arr) in
            match Hashtbl.find_opt edges (t, next) with
            | Some (key, o1, o2) ->
              Printf.sprintf "txn %d -[%s-%s key %d]-> txn %d" t (op_name o1)
                (op_name o2) key next
            | None -> Printf.sprintf "txn %d -> txn %d" t next)
          cycle
      in
      add
        (D.error ~code:"TXN007"
           ~path:
             (Printf.sprintf "cycle=%s"
                (String.concat "->" (List.map string_of_int cycle)))
           ("schedule not conflict-serializable: " ^ String.concat ", " hops))
    end
  in
  let rec dfs stack t =
    Hashtbl.replace color t `Grey;
    let ss =
      match Hashtbl.find_opt succs t with Some s -> s | None -> IntSet.empty
    in
    IntSet.iter
      (fun n ->
        match Hashtbl.find_opt color n with
        | Some `Grey ->
          (* Back edge: the cycle is the stack suffix from [n]. *)
          let rec suffix = function
            | [] -> []
            | x :: rest -> if x = n then x :: rest else suffix rest
          in
          report_cycle (suffix (List.rev (t :: stack)))
        | Some `Black -> ()
        (* perf_lint: DFS depth is bounded by the distinct txns seen *)
        | None -> dfs (t :: stack) n)
      ss;
    Hashtbl.replace color t `Black
  in
  Hashtbl.iter (fun t _ -> if not (Hashtbl.mem color t) then dfs [] t) succs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* TXN008: pre-commit dependency audit                                 *)
(* ------------------------------------------------------------------ *)

let check_dependencies ?(log = []) events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Recorded dependencies: txn -> pre-committed txns it picked up via
     lock grants. *)
  let deps : (int, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  let durable : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Sch.event) ->
      match e.Sch.kind with
      | Sch.Grant { deps = ds } | Sch.Wake { deps = ds } ->
        if ds <> [] then begin
          let s =
            match Hashtbl.find_opt deps e.Sch.txn with
            | Some s -> s
            | None -> IntSet.empty
          in
          Hashtbl.replace deps e.Sch.txn
            (List.fold_left (fun s d -> IntSet.add d s) s ds)
        end
      | Sch.Commit_durable ->
        if not (Hashtbl.mem durable e.Sch.txn) then
          Hashtbl.replace durable e.Sch.txn e.Sch.time
      | _ -> ())
    events;
  (* Log cross-reference: submission position of each commit record, and
     which transactions aborted. *)
  let commit_pos : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let abort_rec : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      match r with
      | L.Commit { txn; _ } ->
        if not (Hashtbl.mem commit_pos txn) then
          Hashtbl.replace commit_pos txn i
      | L.Abort { txn; _ } -> Hashtbl.replace abort_rec txn ()
      | L.Begin _ | L.Update _ | L.Command _ | L.Ckpt_begin _ | L.Ckpt_end _
        -> ())
    log;
  let dep_list =
    Hashtbl.fold (fun txn ds acc -> (txn, IntSet.elements ds) :: acc) deps []
    |> List.sort compare
  in
  List.iter
    (fun (txn, ds) ->
      List.iter
        (fun dep ->
          (match (Hashtbl.find_opt durable txn, Hashtbl.find_opt durable dep)
           with
          | Some t_txn, Some t_dep ->
            if t_dep > t_txn then
              add
                (D.error ~code:"TXN008" ~path:(path_dep txn dep)
                   (Printf.sprintf
                      "commit of txn %d durable at %.6f before its \
                       dependency %d (durable %.6f): the group-commit \
                       ordering invariant is broken"
                      txn t_txn dep t_dep))
          | Some _, None ->
            (* The dependant is durable but the dependency never became
               so — only checkable against the log below (a truncated
               trace may simply not have recorded it). *)
            ()
          | None, _ -> ());
          if log <> [] then begin
            if Hashtbl.mem abort_rec dep then
              add
                (D.error ~code:"TXN008" ~path:(path_dep txn dep)
                   (Printf.sprintf
                      "txn %d depends on pre-committed txn %d, but the log \
                       records txn %d aborting"
                      txn dep dep))
            else
              match
                (Hashtbl.find_opt commit_pos txn, Hashtbl.find_opt commit_pos dep)
              with
              | Some _, None ->
                add
                  (D.error ~code:"TXN008" ~path:(path_dep txn dep)
                     (Printf.sprintf
                        "txn %d committed but its dependency %d has no \
                         commit record in the log"
                        txn dep))
              | Some p_txn, Some p_dep ->
                if p_dep > p_txn then
                  add
                    (D.error ~code:"TXN008" ~path:(path_dep txn dep)
                       (Printf.sprintf
                          "commit record of dependency %d submitted after \
                           dependant %d's (log positions %d > %d)"
                          dep txn p_dep p_txn))
              | None, _ -> ()
          end)
        ds)
    dep_list;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let audit ?log events =
  check_2pl events @ check_deadlock events @ check_serializability events
  @ check_dependencies ?log events

let ok ?log events = not (D.has_errors (audit ?log events))

let code_catalogue =
  [
    ("TXN001", "lock acquired after the transaction's first release (2PL)");
    ("TXN002", "read/write of a key without holding its lock");
    ("TXN003", "lock still held after pre-commit");
    ("TXN004", "pre-committed transaction acquired a lock");
    ("TXN005", "pre-committed transaction aborted");
    ("TXN006", "deadlock: cycle in the waits-for graph");
    ("TXN007", "schedule not conflict-serializable (precedence cycle)");
    ("TXN008", "commit durable/logged before a recorded dependency's");
    ("TXN101", "inconsistent lock-acquisition order across transactions \
                (warning)");
  ]
