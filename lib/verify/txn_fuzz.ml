module R = Mmdb_recovery
module S = Mmdb_storage
module X = Mmdb_util.Xorshift
module O = Mmdb_overload.Overload

type inject = [ `Ww | `Rw | `Unguarded | `Release_no_acquire | `Snapshot ]

type outcome = {
  events : R.Schedule.event list;
  log : R.Log_record.t list;
  diags : Mmdb_util.Diag.t list;
  race_diags : Mmdb_util.Diag.t list;
  injected : string list;
  committed : int;
  aborted : int;
  waits : int;
  deadlocks : int;
  crashed : bool;
  ovld_codes : (string * int) list;
}

type txn_state = Running | Waiting of int  (** the key it queued on *)

type txn = {
  id : int;
  mutable to_acquire : (int * int) list;  (** (slot, delta) not yet locked *)
  mutable acquired : (int * int) list;  (** newest first *)
  mutable deps : int list;  (** pre-committed txns from grants *)
  mutable state : txn_state;
  will_abort : bool;
  deadline : O.Deadline.t option;
}

(* Spike-mode knobs: a starved token bucket (arrivals come every
   simulated tick, tokens refill far slower) plus a lock-wait deadline
   a couple of dozen ticks long, so both admission sheds (OVLD001) and
   expired waiters (OVLD004) occur in ordinary seeded runs. *)
let spike_rate = 2000.0
let spike_burst = 2.0
let spike_budget = 5e-4

let run ?(txns = 40) ?(accounts = 16) ?(inflight = 4) ?(abort_pct = 15)
    ?(scramble = false) ?(crash = false) ?(domains = 1) ?(spike = false)
    ?(inject : inject list = []) ~seed () =
  if txns < 1 then invalid_arg "Txn_fuzz.run: txns < 1";
  if accounts < 4 then invalid_arg "Txn_fuzz.run: accounts < 4";
  if domains < 1 then invalid_arg "Txn_fuzz.run: domains < 1";
  let rng = X.create seed in
  let clock = S.Sim_clock.create () in
  let recorder = R.Schedule.recorder ~now:(fun () -> S.Sim_clock.now clock) in
  let rec_opt = Some recorder in
  (* Simulated domain placement: transaction [id] executes on domain
     [id mod domains].  The single-threaded scheduler already interleaves
     transactions arbitrarily, so with [domains > 1] the recorded trace
     is a genuine multi-domain interleaving — every cross-domain ordering
     must come from lock edges, which is exactly what Race_check audits. *)
  let domain_of id = id mod domains in
  let lm = R.Lock_manager.create ~recorder ~domain_of () in
  let admission =
    if spike then Some (O.Admission.create ~rate:spike_rate ~burst:spike_burst ())
    else None
  in
  let ovld = Hashtbl.create 8 in
  let note_ovld c =
    Hashtbl.replace ovld c
      (1 + Option.value ~default:0 (Hashtbl.find_opt ovld c))
  in
  let wal = R.Wal.create ~clock R.Wal.Group_commit in
  let balances = Array.make accounts 1000 in
  let next_lsn = ref 0 in
  let fresh_lsn () =
    incr next_lsn;
    !next_lsn
  in
  let now () = S.Sim_clock.now clock in
  let tick () = S.Sim_clock.advance clock (1e-5 +. X.float rng 2e-4) in
  (* Pre-draw every transaction's plan so the workload is a pure function
     of the seed, independent of interleaving decisions. *)
  let plans =
    Array.init txns (fun _ ->
        let k = X.int_in_range rng ~lo:2 ~hi:4 in
        let slots = X.sample_without_replacement rng ~n:accounts ~k in
        if scramble then X.shuffle rng slots else Array.sort compare slots;
        ( Array.to_list
            (Array.map (fun s -> (s, X.int_in_range rng ~lo:(-50) ~hi:50)) slots),
          X.int rng 100 < abort_pct ))
  in
  let next_plan = ref 0 in
  let next_id = ref 0 in
  let live : txn list ref = ref [] in
  let committed = ref 0 in
  let aborted = ref 0 in
  let waits = ref 0 in
  let deadlocks = ref 0 in
  let tickets = ref [] in
  let remove t = live := List.filter (fun u -> u.id <> t.id) !live in
  (* Grants returned by precommit / release_abort move their waiters back
     to Running; the key a woken transaction was queued on becomes
     acquired, and the grant's dependency list accumulates. *)
  let absorb_grants grants =
    List.iter
      (fun (g : R.Lock_manager.grant) ->
        match List.find_opt (fun u -> u.id = g.R.Lock_manager.granted_txn) !live
        with
        | None -> ()
        | Some w -> (
          match w.state with
          | Waiting key ->
            let delta =
              match List.assoc_opt key w.to_acquire with
              | Some d -> d
              | None -> 0
            in
            w.to_acquire <- List.remove_assoc key w.to_acquire;
            w.acquired <- (key, delta) :: w.acquired;
            w.deps <- g.R.Lock_manager.dependencies @ w.deps;
            w.state <- Running
          | Running -> ()))
      grants
  in
  (* Perform the banking work under locks: read, update, emit Read/Write
     schedule events, build the Update log records.  [t.acquired] is
     newest lock first and [List.map] applies left to right, so effects
     keep that order; the result is also newest first, and each caller
     does one final [List.rev] when assembling the log (oldest lock
     first so it reads naturally) instead of a quadratic tail-append. *)
  let do_updates t =
    List.map
      (fun (slot, delta) ->
        let old_value = balances.(slot) in
        let new_value = old_value + delta in
        let lsn = fresh_lsn () in
        R.Schedule.emit rec_opt ~key:slot ~domain:(domain_of t.id) ~txn:t.id
          R.Schedule.Read;
        balances.(slot) <- new_value;
        R.Schedule.emit rec_opt ~key:slot ~lsn ~domain:(domain_of t.id)
          ~txn:t.id R.Schedule.Write;
        R.Log_record.Update { txn = t.id; lsn; slot; old_value; new_value })
      t.acquired
  in
  let finish_commit t =
    let begin_lsn = fresh_lsn () in
    let rev_body = do_updates t in
    let records =
      R.Log_record.Begin { txn = t.id; lsn = begin_lsn }
      :: List.rev (R.Log_record.Commit { txn = t.id; lsn = fresh_lsn () }
                  :: rev_body)
    in
    absorb_grants (R.Lock_manager.precommit lm ~txn:t.id);
    let tkt = R.Wal.commit_txn wal ~at:(now ()) ~txn:t.id ~deps:t.deps records in
    tickets := tkt :: !tickets;
    incr committed;
    remove t
  in
  let finish_abort t =
    let begin_lsn = fresh_lsn () in
    let rev_body = do_updates t in
    (* Roll back in memory, newest update first, with compensating log
       records (mirrors Txn_db.transact_abort).  [rev_body] is already
       newest first, so [List.rev_map] walks it in rollback order while
       yielding the compensation records newest last. *)
    let rev_compensation =
      List.rev_map
        (fun r ->
          match r with
          | R.Log_record.Update { slot; old_value; new_value; _ } ->
            let lsn = fresh_lsn () in
            balances.(slot) <- old_value;
            R.Schedule.emit rec_opt ~key:slot ~lsn ~domain:(domain_of t.id)
              ~txn:t.id R.Schedule.Write;
            R.Log_record.Update
              {
                txn = t.id;
                lsn;
                slot;
                old_value = new_value;
                new_value = old_value;
              }
          | _ -> assert false)
        rev_body
    in
    absorb_grants (R.Lock_manager.release_abort lm ~txn:t.id);
    let records =
      R.Log_record.Begin { txn = t.id; lsn = begin_lsn }
      :: List.rev_append rev_body
           (List.rev
              (R.Log_record.Abort { txn = t.id; lsn = fresh_lsn () }
              :: rev_compensation))
    in
    ignore (R.Wal.commit_txn wal ~at:(now ()) ~txn:t.id ~deps:[] records);
    incr aborted;
    remove t
  in
  (* A deadlock victim dies while still queued: it logs only Begin/Abort
     (no updates happened yet — writes occur after full acquisition). *)
  let kill_victim t =
    absorb_grants (R.Lock_manager.release_abort lm ~txn:t.id);
    let records =
      [
        R.Log_record.Begin { txn = t.id; lsn = fresh_lsn () };
        R.Log_record.Abort { txn = t.id; lsn = fresh_lsn () };
      ]
    in
    ignore (R.Wal.commit_txn wal ~at:(now ()) ~txn:t.id ~deps:[] records);
    incr aborted;
    remove t
  in
  let step_txn t =
    match t.to_acquire with
    | (key, delta) :: rest -> (
      (* exn_flow: staged acquisition across fuzzer steps; releases
         happen in the abort/commit steps ([abort_txn], [kill_victim]). *)
      match R.Lock_manager.acquire ?deadline:t.deadline lm ~txn:t.id ~key with
      | Some g ->
        t.to_acquire <- rest;
        t.acquired <- (key, delta) :: t.acquired;
        t.deps <- g.R.Lock_manager.dependencies @ t.deps
      | None ->
        (* Keep the entry in [to_acquire]: the wake-up path pops it (and
           its delta) when the grant arrives. *)
        ignore rest;
        t.state <- Waiting key;
        incr waits)
    | [] -> if t.will_abort then finish_abort t else finish_commit t
  in
  let crash_after =
    if crash then max 1 (txns * 2 / 3) else max_int (* committed+aborted *)
  in
  let crashed = ref false in
  let running () = List.filter (fun t -> t.state = Running) !live in
  (try
     while !live <> [] || !next_plan < txns do
       if !committed + !aborted >= crash_after then begin
         crashed := true;
         raise Exit
       end;
       tick ();
       (* Spike mode: sweep waiters whose lock-wait deadline passed and
          abort each through the same audited Begin/Abort path as a
          deadlock victim — a typed OVLD004 timeout, never an unbounded
          wait. *)
       (match admission with
       | None -> ()
       | Some _ ->
         List.iter
           (fun id ->
             match List.find_opt (fun u -> u.id = id) !live with
             | Some t ->
               note_ovld "OVLD004";
               kill_victim t
             | None -> ())
           (R.Lock_manager.expire_waiters lm ~now:(now ())));
       (* Admit new work (through the token bucket in spike mode: a shed
          arrival consumes its plan — the client was turned away). *)
       if List.compare_length_with !live inflight < 0 && !next_plan < txns
       then begin
         let plan, will_abort = plans.(!next_plan) in
         incr next_plan;
         let admitted =
           match admission with
           | None -> true
           | Some a -> (
             match O.Admission.admit a ~now:(now ()) ~priority:O.Oltp with
             | () -> true
             | exception O.Shed r ->
               note_ovld r.O.code;
               false)
         in
         if admitted then begin
           let id = !next_id in
           incr next_id;
           live :=
             {
               id;
               to_acquire = plan;
               acquired = [];
               deps = [];
               state = Running;
               will_abort;
               deadline =
                 (if spike then
                    Some (O.Deadline.make ~now:(now ()) ~budget:spike_budget)
                  else None);
             }
             :: !live
         end
       end;
       match running () with
       | [] ->
         (* Everyone in flight is queued on someone else: with a finite
            set of transactions each waiting for exactly one held key,
            that is a waits-for cycle.  Break it by aborting a victim. *)
         (match !live with
         | [] -> ()
         | l ->
           incr deadlocks;
           let arr = Array.of_list l in
           kill_victim arr.(X.int rng (Array.length arr)))
       | rs ->
         let arr = Array.of_list rs in
         step_txn arr.(X.int rng (Array.length arr))
     done
   with Exit -> ());
  if not !crashed then begin
    tick ();
    ignore (R.Wal.flush wal ~at:(now ()))
  end;
  (* Emit Commit_durable (exact completion stamps) and finalize, in
     durability order. *)
  let resolved =
    List.filter_map
      (fun tkt ->
        match R.Wal.ticket_completion tkt with
        | Some c when c <= now () -> Some (c, R.Wal.ticket_txn tkt)
        | Some _ | None -> None)
      !tickets
    |> List.sort compare
  in
  List.iter
    (fun (c, txn) ->
      R.Schedule.emit rec_opt ~at:c ~domain:(domain_of txn) ~txn
        R.Schedule.Commit_durable;
      R.Lock_manager.finalize lm ~txn)
    resolved;
  (* Positive controls: seeded injected races.  Each injection uses ghost
     transactions on fresh domains and a private key above the account
     range, so every control maps to exactly one expected RACE code and
     controls do not interfere with each other or the real workload.
     (Ghost accesses are lock-free by design, so they also surface as
     TXN protocol errors in [diags]; race-gated runs assert on
     [race_diags] only.) *)
  let injected =
    List.mapi
      (fun i (kind : inject) ->
        let key = accounts + 1 + i in
        let da = domains + 1 + (2 * i) and db = domains + 2 + (2 * i) in
        let ta = 1_000_000 + (2 * i) and tb = 1_000_001 + (2 * i) in
        match kind with
        | `Ww ->
          R.Schedule.emit rec_opt ~key ~domain:da ~txn:ta R.Schedule.Write;
          R.Schedule.emit rec_opt ~key ~domain:db ~txn:tb R.Schedule.Write;
          "RACE001"
        | `Rw ->
          R.Schedule.emit rec_opt ~key ~domain:da ~txn:ta R.Schedule.Read;
          R.Schedule.emit rec_opt ~key ~domain:db ~txn:tb R.Schedule.Write;
          "RACE002"
        | `Unguarded ->
          (* two lock-free reads: no write/write or read/write pair, so
             only the Eraser lockset fallback can catch it *)
          R.Schedule.emit rec_opt ~key ~domain:da ~txn:ta R.Schedule.Read;
          R.Schedule.emit rec_opt ~key ~domain:db ~txn:tb R.Schedule.Read;
          "RACE003"
        | `Release_no_acquire ->
          R.Schedule.emit rec_opt ~key ~domain:da ~txn:ta R.Schedule.Release;
          "RACE004"
        | `Snapshot ->
          (* version 99 installed mid-scan, below the active snapshot 100 *)
          R.Schedule.emit rec_opt ~key ~domain:da ~ver:100.0 ~txn:ta
            R.Schedule.Read;
          R.Schedule.emit rec_opt ~key ~domain:db ~ver:99.0 ~txn:tb
            R.Schedule.Write;
          R.Schedule.emit rec_opt ~key ~domain:da ~ver:100.0 ~txn:ta
            R.Schedule.Read;
          "RACE005")
      inject
  in
  let events = R.Schedule.events recorder in
  let log = R.Wal.all_records wal in
  {
    events;
    log;
    diags = Txn_check.audit ~log events;
    race_diags = Race_check.audit events;
    injected;
    committed = !committed;
    aborted = !aborted;
    waits = !waits;
    deadlocks = !deadlocks;
    crashed = !crashed;
    ovld_codes =
      List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) ovld []);
  }
