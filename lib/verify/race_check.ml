module D = Mmdb_util.Diag
module Sch = Mmdb_recovery.Schedule
module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

(* Clocks are dense int arrays indexed by domain index (domains are
   discovered up front and remapped to 0..n-1).  Traces are bounded by
   the simulators, so full vector clocks (FastTrack without the epoch
   compression) keep the analyzer simple and obviously correct. *)

let vc_fresh n = Array.make n 0
let vc_copy = Array.copy

let vc_join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

(* [first_concurrent ~d a b]: the first domain e <> d with a[e] > b[e],
   i.e. a prior access by [e] (clock [a]) that does not happen-before the
   current access by domain [d] (clock [b]); [None] when every prior
   access is ordered before this one. *)
let first_concurrent ~d a b =
  let hit = ref None in
  Array.iteri
    (fun e v -> if e <> d && v > b.(e) && !hit = None then hit := Some e)
    a;
  !hit

(* ------------------------------------------------------------------ *)
(* Per-key access state                                                *)
(* ------------------------------------------------------------------ *)

type access = { a_txn : int; a_dom : int (* dense index *) }

type key_state = {
  wvc : int array;  (* last-write clock per domain *)
  winfo : access option array;  (* who wrote it, per domain *)
  rvc : int array;  (* last unversioned-read clock per domain *)
  rinfo : access option array;
  mutable lockset : IntSet.t option;  (* Eraser candidate set; None = fresh *)
  mutable access_domains : IntSet.t;
}

(* Snapshot activity interval: a reader transaction's snapshot is active
   from its first versioned read to its last (trace positions).  Version
   discipline is judged against these intervals, not vector clocks —
   the timestamp allocator is the synchronisation point in MVCC, so a
   version installed {e before} the snapshot began is exactly what the
   snapshot is supposed to read. *)
type snapshot = {
  s_txn : int;
  s_dom : int;  (* dense index *)
  s_ts : float;
  mutable s_lo : int;
  mutable s_hi : int;
}

type state = {
  ndom : int;
  dom_index : (int, int) Hashtbl.t;
  clocks : int array array;  (* C_d per dense domain index *)
  lock_vc : (int, int array) Hashtbl.t;  (* L_k *)
  held : (int, IntSet.t) Hashtbl.t;  (* txn -> keys currently held *)
  keys : (int, key_state) Hashtbl.t;
  reported : (string * int, unit) Hashtbl.t;  (* (code, key) dedup *)
  mutable diags : D.t list;
}

let key_state st _key =
  {
    wvc = vc_fresh st.ndom;
    winfo = Array.make st.ndom None;
    rvc = vc_fresh st.ndom;
    rinfo = Array.make st.ndom None;
    lockset = None;
    access_domains = IntSet.empty;
  }

let get_key st key =
  match Hashtbl.find_opt st.keys key with
  | Some ks -> ks
  | None ->
    let ks = key_state st key in
    Hashtbl.replace st.keys key ks;
    ks

let held st txn =
  match Hashtbl.find_opt st.held txn with Some s -> s | None -> IntSet.empty

let path_key key dom = Printf.sprintf "key=%d dom=%d" key dom

let report st ~code ~key ~dom msg =
  if not (Hashtbl.mem st.reported (code, key)) then begin
    Hashtbl.replace st.reported (code, key) ();
    st.diags <- D.error ~code ~path:(path_key key dom) msg :: st.diags
  end

(* ------------------------------------------------------------------ *)
(* Access checks                                                       *)
(* ------------------------------------------------------------------ *)

let describe { a_txn; a_dom } rev_dom =
  Printf.sprintf "txn %d (domain %d)" a_txn rev_dom.(a_dom)

(* Eraser-style lockset refinement, applied to unversioned accesses
   only (multiversion accesses are protected by version discipline, not
   locks).  The candidate set shrinks to the intersection of every
   holder set; once the key is touched by two domains with an empty
   candidate set, no lock consistently guards it. *)
let lockset_check st ks ~key ~txn ~dom ~rev_dom =
  let locks = held st txn in
  ks.lockset <-
    (match ks.lockset with
    | None -> Some locks
    | Some c -> Some (IntSet.inter c locks));
  ks.access_domains <- IntSet.add dom ks.access_domains;
  if IntSet.cardinal ks.access_domains >= 2 && ks.lockset = Some IntSet.empty
  then
    report st ~code:"RACE003" ~key ~dom:rev_dom.(dom)
      (Printf.sprintf
         "key %d is accessed by %d domains with an empty candidate lockset \
          (no lock consistently guards it; last access by txn %d)"
         key
         (IntSet.cardinal ks.access_domains)
         txn)

(* Unversioned reads only: snapshot reads are judged by version
   discipline (the snapshot-interval pass in [audit]), not locks. *)
let on_read st ks ~key ~txn ~dom ~rev_dom =
  let c = st.clocks.(dom) in
  let me = { a_txn = txn; a_dom = dom } in
  (match first_concurrent ~d:dom ks.wvc c with
  | Some e ->
    let who =
      match ks.winfo.(e) with
      | Some a -> describe a rev_dom
      | None -> Printf.sprintf "domain %d" rev_dom.(e)
    in
    report st ~code:"RACE002" ~key ~dom:rev_dom.(dom)
      (Printf.sprintf
         "read/write race on key %d: read by %s is concurrent with the \
          write by %s (no happens-before edge)"
         key (describe me rev_dom) who)
  | None -> ());
  ks.rvc.(dom) <- c.(dom);
  ks.rinfo.(dom) <- Some me;
  lockset_check st ks ~key ~txn ~dom ~rev_dom

let on_write st ks ~key ~txn ~dom ~ver ~rev_dom =
  let c = st.clocks.(dom) in
  let me = { a_txn = txn; a_dom = dom } in
  (match first_concurrent ~d:dom ks.wvc c with
  | Some e ->
    let who =
      match ks.winfo.(e) with
      | Some a -> describe a rev_dom
      | None -> Printf.sprintf "domain %d" rev_dom.(e)
    in
    report st ~code:"RACE001" ~key ~dom:rev_dom.(dom)
      (Printf.sprintf
         "write/write race on key %d: write by %s is concurrent with the \
          write by %s (no happens-before edge)"
         key (describe me rev_dom) who)
  | None -> ());
  (match ver with
  | None ->
    (match first_concurrent ~d:dom ks.rvc c with
    | Some e ->
      let who =
        match ks.rinfo.(e) with
        | Some a -> describe a rev_dom
        | None -> Printf.sprintf "domain %d" rev_dom.(e)
      in
      report st ~code:"RACE002" ~key ~dom:rev_dom.(dom)
        (Printf.sprintf
           "read/write race on key %d: write by %s is concurrent with the \
            read by %s (no happens-before edge)"
           key (describe me rev_dom) who)
    | None -> ());
    lockset_check st ks ~key ~txn ~dom ~rev_dom
  | Some _ -> ());
  ks.wvc.(dom) <- c.(dom);
  ks.winfo.(dom) <- Some me

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let audit events =
  let domains = Sch.domains events in
  let ndom = max 1 (List.length domains) in
  let dom_index = Hashtbl.create 8 in
  List.iteri (fun i d -> Hashtbl.replace dom_index d i) domains;
  let rev_dom = Array.make ndom 0 in
  List.iteri (fun i d -> rev_dom.(i) <- d) domains;
  let st =
    {
      ndom;
      dom_index;
      (* Each domain starts with its own component at 1: a fresh access
         by domain e (clock e:1) must read as concurrent to a fresh
         access by domain d (which holds e:0 until a join). *)
      clocks =
        Array.init ndom (fun i ->
            let c = vc_fresh ndom in
            c.(i) <- 1;
            c);
      lock_vc = Hashtbl.create 64;
      held = Hashtbl.create 64;
      keys = Hashtbl.create 64;
      reported = Hashtbl.create 16;
      diags = [];
    }
  in
  (* Snapshot machinery: active intervals per (reader txn, snapshot ts)
     and every versioned write with its trace position. *)
  let snapshots : (int * float, snapshot) Hashtbl.t = Hashtbl.create 16 in
  let vwrites = ref [] in
  List.iteri
    (fun idx (e : Sch.event) ->
      let dom =
        match Hashtbl.find_opt st.dom_index e.Sch.domain with
        | Some i -> i
        | None -> 0
      in
      let txn = e.Sch.txn in
      match (e.Sch.kind, e.Sch.key) with
      | (Sch.Grant _ | Sch.Wake _), Some key ->
        (* Acquisition: join the lock's release clock (the happens-before
           edge from the previous critical section on [key]). *)
        (match Hashtbl.find_opt st.lock_vc key with
        | Some l -> vc_join st.clocks.(dom) l
        | None -> ());
        Hashtbl.replace st.held txn (IntSet.add key (held st txn))
      | Sch.Release, Some key ->
        let h = held st txn in
        if not (IntSet.mem key h) then
          report st ~code:"RACE004" ~key ~dom:rev_dom.(dom)
            (Printf.sprintf
               "protocol break on key %d: txn %d released a lock it never \
                acquired"
               key txn)
        else begin
          Hashtbl.replace st.held txn (IntSet.remove key h);
          Hashtbl.replace st.lock_vc key (vc_copy st.clocks.(dom));
          st.clocks.(dom).(dom) <- st.clocks.(dom).(dom) + 1
        end
      | Sch.Read, Some key -> (
        match e.Sch.ver with
        | Some ts -> (
          match Hashtbl.find_opt snapshots (txn, ts) with
          | Some s -> s.s_hi <- idx
          | None ->
            Hashtbl.replace snapshots (txn, ts)
              { s_txn = txn; s_dom = dom; s_ts = ts; s_lo = idx; s_hi = idx })
        | None -> on_read st (get_key st key) ~key ~txn ~dom ~rev_dom)
      | Sch.Write, Some key ->
        (match e.Sch.ver with
        | Some ts -> vwrites := (idx, key, ts, txn, dom) :: !vwrites
        | None -> ());
        on_write st (get_key st key) ~key ~txn ~dom ~ver:e.Sch.ver ~rev_dom
      | (Sch.Acquire | Sch.Wait _), _
      | (Sch.Grant _ | Sch.Wake _ | Sch.Release | Sch.Read | Sch.Write), None
      | (Sch.Precommit | Sch.Commit_durable | Sch.Abort), _ -> ())
    events;
  (* Version discipline: a write installing version [ts] races with every
     still-active snapshot at-or-above [ts] held by another domain — the
     scan may observe the key before and after the install, i.e. an
     inconsistent snapshot.  Installs before the snapshot began are the
     versions it is {e supposed} to read; installs after its last read
     are invisible to it. *)
  List.iter
    (fun (idx, key, ts, txn, dom) ->
      Hashtbl.iter
        (fun _ s ->
          if s.s_dom <> dom && ts <= s.s_ts && s.s_lo < idx && idx < s.s_hi
          then
            report st ~code:"RACE005" ~key ~dom:rev_dom.(dom)
              (Printf.sprintf
                 "snapshot race on key %d: write by txn %d (domain %d) \
                  installs version %g at-or-below the concurrently active \
                  snapshot %g held by txn %d (domain %d)"
                 key txn rev_dom.(dom) ts s.s_ts s.s_txn rev_dom.(s.s_dom)))
        snapshots)
    (List.rev !vwrites);
  List.rev st.diags

let code_catalogue =
  [
    ("RACE001", "write/write race: concurrent unordered writes to one key");
    ("RACE002", "read/write race: unordered read and write of one key");
    ( "RACE003",
      "unguarded shared access: empty candidate lockset across domains \
       (Eraser)" );
    ("RACE004", "lock protocol break: release without a matching acquire");
    ( "RACE005",
      "snapshot race: version installed at-or-below a concurrent active \
       snapshot" );
  ]
