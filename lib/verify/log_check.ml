module D = Mmdb_util.Diag
module L = Mmdb_recovery.Log_record

type txn_state = Active | Done

let path_of r =
  match L.txn r with
  | Some tx -> Printf.sprintf "lsn=%d txn=%d" (L.lsn r) tx
  | None -> Printf.sprintf "lsn=%d" (L.lsn r)

let audit ?(complete = false) records =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err r ~code fmt =
    Printf.ksprintf (fun m -> add (D.error ~code ~path:(path_of r) m)) fmt
  in
  let txns : (int, txn_state) Hashtbl.t = Hashtbl.create 64 in
  let last_lsn = ref None in
  let ckpt_open = ref None in
  List.iter
    (fun r ->
      (match !last_lsn with
      | Some prev when L.lsn r <= prev ->
        err r ~code:"LOG001" "lsn %d not greater than predecessor %d"
          (L.lsn r) prev
      | Some _ | None -> ());
      last_lsn := Some (L.lsn r);
      (match r with
      | L.Begin { txn; _ } ->
        if Hashtbl.mem txns txn then
          err r ~code:"LOG005" "duplicate Begin for transaction %d" txn
        else Hashtbl.replace txns txn Active
      | L.Update { txn; _ } | L.Command { txn; _ } -> (
        match Hashtbl.find_opt txns txn with
        | None ->
          err r ~code:"LOG002" "Update before Begin for transaction %d" txn
        | Some Done ->
          err r ~code:"LOG004" "Update after transaction %d terminated" txn
        | Some Active -> ())
      | L.Commit { txn; _ } | L.Abort { txn; _ } -> (
        let what =
          match r with L.Commit _ -> "Commit" | _ -> "Abort"
        in
        match Hashtbl.find_opt txns txn with
        | None ->
          err r ~code:"LOG003" "%s without Begin for transaction %d" what txn
        | Some Done ->
          err r ~code:"LOG006" "%s after transaction %d already terminated"
            what txn
        | Some Active -> Hashtbl.replace txns txn Done)
      | L.Ckpt_begin { lsn } -> (
        match !ckpt_open with
        | Some open_lsn ->
          err r ~code:"LOG007"
            "Ckpt_begin while checkpoint from lsn %d still open" open_lsn
        | None -> ckpt_open := Some lsn)
      | L.Ckpt_end _ -> (
        match !ckpt_open with
        | Some _ -> ckpt_open := None
        | None -> err r ~code:"LOG007" "Ckpt_end with no checkpoint open")))
    records;
  if complete then begin
    (match !ckpt_open with
    | Some lsn ->
      add
        (D.error ~code:"LOG008"
           ~path:(Printf.sprintf "lsn=%d" lsn)
           "checkpoint never closed in complete log")
    | None -> ());
    let open_txns =
      Hashtbl.fold
        (fun tx st acc -> if st = Active then tx :: acc else acc)
        txns []
      |> List.sort compare
    in
    List.iter
      (fun tx ->
        add
          (D.warning ~code:"LOG101"
             ~path:(Printf.sprintf "txn=%d" tx)
             (Printf.sprintf "transaction %d never terminated in complete log"
                tx)))
      open_txns
  end;
  List.rev !diags

let ok ?complete records = not (D.has_errors (audit ?complete records))

let code_catalogue =
  [
    ("LOG001", "LSNs not strictly increasing");
    ("LOG002", "Update without a prior Begin for its transaction");
    ("LOG003", "Commit/Abort without a prior Begin");
    ("LOG004", "Update after its transaction terminated");
    ("LOG005", "duplicate Begin for a transaction");
    ("LOG006", "duplicate termination (second Commit/Abort)");
    ("LOG007", "checkpoint nesting violation");
    ("LOG008", "dangling Ckpt_begin at end of a complete log");
    ("LOG101", "transaction never terminated in a complete log (warning)");
  ]
