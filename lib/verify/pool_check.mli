(** Buffer-pool sanitizer.

    Audits a {!Mmdb_storage.Buffer_pool} snapshot against its pin/unpin
    and dirty-page accounting protocol.  Stable error codes:

    - [POOL001] — pin leak: a page still pinned at audit time (only when
      [expect_unpinned], the default — a quiescent pool should hold no
      pins)
    - [POOL002] — unpin underflow: more unpins than pins were issued
    - [POOL003] — dirty accounting mismatch: [dirtied <> writebacks +
      dropped_dirty + dirty_resident]
    - [POOL004] — resident frames exceed capacity

    Paths are ["pid=3"] for per-page findings, [""] for pool-wide ones. *)

val audit :
  ?expect_unpinned:bool -> Mmdb_storage.Buffer_pool.t ->
  Mmdb_util.Diag.t list
(** [expect_unpinned] defaults to [true]; pass [false] to audit a pool
    mid-operation without flagging live pins. *)

val ok : ?expect_unpinned:bool -> Mmdb_storage.Buffer_pool.t -> bool

val code_catalogue : (string * string) list
