module D = Mmdb_util.Diag
module E = Lint_engine
module SSet = Set.Make (String)

(* Interprocedural exception-flow and resource-discipline analysis over
   {!Lint_engine}.  Where Domain_lint and Perf_lint are per-file rule
   sets, this pass is whole-program: it collects one record per
   top-level [let] binding across every [.ml] under lib/, builds a call
   graph (ident-resolution heuristic: an unqualified name resolves into
   the enclosing module, a dotted path by its last two components after
   per-file [module X = Path] alias expansion), and computes a fixpoint
   of per-function summaries — the set of exception constructors each
   function may let escape, with handler subtraction (a [try]'s
   unguarded cases remove their constructors; a catch-all that does not
   re-raise removes everything).

   Diagnostic families (EXN100 marks a file the pass could not parse):

   - EXN101  a handler that swallows: a catch-all whose protected body
     can raise a fault-family exception ([Fault.Io_error],
     [Fault.Unrecoverable], [Kv_store.Crashed_during_recovery]) per the
     interprocedural summaries, or a [try <lookup> with Not_found -> e]
     over a lookup with a total [_opt] variant whose handler raises
     nothing.
   - EXN102  an exception escaping a module's exported API (under
     lib/storage, lib/recovery, lib/core, lib/fault, lib/planner)
     whose [.mli] does not carry an [@raise <Exn>] line for it.
   - EXN103  a partial stdlib call ([List.hd]/[List.tl]/[Option.get])
     in a function reachable from a recovery/exec entry point.
   - EXN104  [raise v] of a handler-bound exception — re-raise that
     drops the original backtrace; use
     [Printexc.raise_with_backtrace] (or [Fun.protect]).
   - EXN105  [failwith] reachable from a recovery/exec entry point —
     a stringly-typed [Failure] the torture harness cannot classify.

   - RES101  [Buffer_pool.pin] with no [unpin] in the same function.
   - RES102  [Lock_manager.acquire] with no release-set call
     ([precommit]/[release_abort]/[finalize]) in the same function.
   - RES103  an acquire/release (or pin/unpin) pair whose span contains
     a possibly-raising site, with no [Fun.protect] in the function —
     an exception unwinds past the release.
   - RES104  release-without-acquire ([unpin] with no [pin], a
     release-set call with no [acquire]).

   The RES rules are per-function protocol lints, deliberately blind
   inside the resource's own module; a protocol that hands the release
   to another function (2PL holds locks to commit/abort by design) is
   silenced with the justification convention: a
   [(* exn_flow: why *)] comment on the flagged line or within the two
   lines above it. *)

type status = Whitelisted of string | Flagged

type finding = {
  file : string;
  line : int;
  code : string;
  name : string;  (* enclosing function, Module.fn *)
  construct : string;
  status : status;
}

let marker = "exn_flow:"
let fault_family = [ "Io_error"; "Unrecoverable"; "Crashed_during_recovery" ]

(* Stdlib exceptions a summary may carry but that no [.mli] is asked to
   document (EXN102 would otherwise demand [@raise Failure] on half the
   tree; EXN103/EXN105 own the partial/stringly cases). *)
let generic_exns =
  SSet.of_list
    [
      "Failure"; "Invalid_argument"; "Not_found"; "Exit"; "End_of_file";
      "Division_by_zero"; "Sys_error"; "Assert_failure"; "Match_failure";
      "Stack_overflow"; "Out_of_memory"; "Scan_failure"; "Undefined";
    ]

(* Partial lookups with a total [_opt] twin, for the EXN101 lookup leg. *)
let opt_lookups =
  [
    "Hashtbl.find"; "List.find"; "List.assoc"; "List.assq"; "Sys.getenv";
    "String.index"; "String.rindex";
  ]

let has_sub file sub =
  let n = String.length file and m = String.length sub in
  let rec go i = i + m <= n && (String.sub file i m = sub || go (i + 1)) in
  go 0

let entry_dir file = has_sub file "recovery/" || has_sub file "exec/"

let declared_scope file =
  List.exists (has_sub file)
    [ "storage/"; "recovery/"; "core/"; "fault/"; "planner/" ]

(* ------------------------------------------------------------------ *)
(* Collection: one record per top-level binding                        *)
(* ------------------------------------------------------------------ *)

(* A handler frame: the constructor names one [try]'s unguarded cases
   subtract from everything raised under it ("*" = a catch-all that
   does not re-raise).  Frames carry identity ([==]) so the EXN101
   check can ask "does the body raise, ignoring the frame under
   judgment?". *)
type frame = { fr_names : string list }

type rsite = { r_line : int; r_exn : string; r_frames : frame list }
type csite = { c_line : int; c_raw : string; c_frames : frame list }
type res_kind = Pin | Unpin | Acquire | Release

type swallow_kind =
  | Catch_all of { body_lo : int; body_hi : int }
  | Lookup of { lookup : string; hand_lo : int; hand_hi : int }

type swallow = { w_line : int; w_frame : frame; w_kind : swallow_kind }

type fn = {
  f_module : string;
  f_name : string;
  f_file : string;
  f_line : int;
  mutable f_raises : rsite list;
  mutable f_calls : csite list;
  mutable f_partials : (int * string) list;
  mutable f_failwiths : int list;
  mutable f_swallows : swallow list;
  mutable f_res : (int * res_kind) list;
  mutable f_protect : bool;
  mutable f_reraises : (int * string) list;
  mutable f_summary : SSet.t;
}

let ident_of (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let last_two raw =
  match List.rev (String.split_on_char '.' raw) with
  | a :: b :: _ -> b ^ "." ^ a
  | _ -> raw

let last_component raw =
  match List.rev (String.split_on_char '.' raw) with
  | a :: _ -> a
  | [] -> raw

let line_of (e : Parsetree.expression) =
  e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum

let end_line_of (e : Parsetree.expression) =
  e.Parsetree.pexp_loc.Location.loc_end.Lexing.pos_lnum

(* The constructor names a handler case covers ("*" for a catch-all
   variable/wildcard); an unrecognized pattern covers nothing
   (conservative: the exception may still escape). *)
let rec case_names (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_construct ({ txt; _ }, _) ->
    [ last_component (String.concat "." (Longident.flatten txt)) ]
  | Parsetree.Ppat_or (a, b) -> case_names a @ case_names b
  | Parsetree.Ppat_alias (inner, _) -> case_names inner
  | Parsetree.Ppat_var _ | Parsetree.Ppat_any -> [ "*" ]
  | _ -> []

let bound_var (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_alias (_, { txt; _ }) -> Some txt
  | _ -> None

(* Does [rhs] re-raise the handler-bound variable [v] (by [raise],
   [raise_notrace] or [Printexc.raise_with_backtrace])? *)
let reraises_var v rhs =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, (_, arg) :: _) -> (
      match (ident_of f, arg.Parsetree.pexp_desc) with
      | ( Some
            ( "raise" | "Stdlib.raise" | "raise_notrace"
            | "Stdlib.raise_notrace" | "Printexc.raise_with_backtrace" ),
          Parsetree.Pexp_ident { txt = Longident.Lident x; _ } )
        when x = v ->
        found := true
      | _ -> ())
    | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it rhs;
  !found

type collect_ctx = {
  cx_module : string;
  cx_file : string;
  cx_fns : (string, fn) Hashtbl.t;
  cx_declared : SSet.t ref;
  cx_aliases : (string, string) Hashtbl.t;
  mutable cx_cur : fn option;
  mutable cx_frames : frame list;
  mutable cx_caught : string list;
  mutable cx_anon : int;
}

let fresh_fn cx ~name ~line =
  let key =
    if name = "_" then begin
      cx.cx_anon <- cx.cx_anon + 1;
      Printf.sprintf "%s._init_%d" cx.cx_module cx.cx_anon
    end
    else cx.cx_module ^ "." ^ name
  in
  match Hashtbl.find_opt cx.cx_fns key with
  | Some f -> f
  | None ->
    let f =
      {
        f_module = cx.cx_module;
        f_name = name;
        f_file = cx.cx_file;
        f_line = line;
        f_raises = [];
        f_calls = [];
        f_partials = [];
        f_failwiths = [];
        f_swallows = [];
        f_res = [];
        f_protect = false;
        f_reraises = [];
        f_summary = SSet.empty;
      }
    in
    Hashtbl.replace cx.cx_fns key f;
    f

let with_cur cx f k =
  match cx.cx_cur with
  | Some _ -> k ()  (* nested let: merge into the enclosing binding *)
  | None ->
    cx.cx_cur <- Some f;
    k ();
    cx.cx_cur <- None

let in_fn cx k =
  match cx.cx_cur with Some f -> k f | None -> ()

let normalize cx raw =
  match String.index_opt raw '.' with
  | None -> raw
  | Some i -> (
    let head = String.sub raw 0 i in
    match Hashtbl.find_opt cx.cx_aliases head with
    | Some expansion -> expansion ^ String.sub raw i (String.length raw - i)
    | None -> raw)

let record_raise cx ~line exn =
  in_fn cx (fun f ->
      f.f_raises <-
        { r_line = line; r_exn = exn; r_frames = cx.cx_frames } :: f.f_raises)

let record_call cx ~line raw =
  in_fn cx (fun f ->
      f.f_calls <-
        { c_line = line; c_raw = raw; c_frames = cx.cx_frames } :: f.f_calls)

let record_res cx ~line kind =
  in_fn cx (fun f -> f.f_res <- (line, kind) :: f.f_res)

let collect ~file source ~fns ~declared =
  let cx =
    {
      cx_module = E.module_of_file file;
      cx_file = file;
      cx_fns = fns;
      cx_declared = declared;
      cx_aliases = Hashtbl.create 8;
      cx_cur = None;
      cx_frames = [];
      cx_caught = [];
      cx_anon = 0;
    }
  in
  let super = Ast_iterator.default_iterator in
  let own_module m = cx.cx_module = m in
  let rec expr it (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident _ ->
      (match ident_of e with
      | Some raw -> record_call cx ~line:(line_of e) (normalize cx raw)
      | None -> ());
      super.Ast_iterator.expr it e
    | Parsetree.Pexp_apply (f, args) ->
      apply it e f args
    | Parsetree.Pexp_try (body, cases) ->
      handler it ~line:(line_of e) ~protected:[ body ] ~cases
        ~lookup_body:(Some body)
    | Parsetree.Pexp_match (scrut, cases)
      when List.exists
             (fun (c : Parsetree.case) ->
               match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
               | Parsetree.Ppat_exception _ -> true
               | _ -> false)
             cases ->
      (* [match e with … | exception P -> …]: the exception cases guard
         the scrutinee only; value cases run unprotected. *)
      let exn_cases, value_cases =
        List.partition
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_exception _ -> true
            | _ -> false)
          cases
      in
      let exn_cases =
        List.map
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_exception p -> { c with Parsetree.pc_lhs = p }
            | _ -> c)
          exn_cases
      in
      handler it ~line:(line_of e) ~protected:[ scrut ] ~cases:exn_cases
        ~lookup_body:(Some scrut);
      (* perf_lint: AST recursion; depth bounded by source nesting *)
      List.iter (case it) value_cases
    | _ -> super.Ast_iterator.expr it e
  and apply it e f args =
    let line = line_of e in
    let raw = Option.map (normalize cx) (ident_of f) in
    (match raw with
    | None -> ()
    | Some raw -> (
      record_call cx ~line raw;
      (match raw with
      | "raise" | "Stdlib.raise" | "raise_notrace" | "Stdlib.raise_notrace"
      | "Printexc.raise_with_backtrace" -> (
        match args with
        | (_, arg) :: _ -> (
          match arg.Parsetree.pexp_desc with
          | Parsetree.Pexp_construct ({ txt; _ }, _) ->
            record_raise cx ~line
              (last_component (String.concat "." (Longident.flatten txt)))
          | Parsetree.Pexp_ident { txt = Longident.Lident v; _ }
            when List.mem v cx.cx_caught ->
            (* a re-raise: the summary frame logic already accounts for
               it; plain [raise v] additionally loses the backtrace *)
            if raw = "raise" || raw = "Stdlib.raise" then
              in_fn cx (fun fn -> fn.f_reraises <- (line, v) :: fn.f_reraises)
          | _ -> ())
        | [] -> ())
      | "failwith" | "Stdlib.failwith" ->
        record_raise cx ~line "Failure";
        in_fn cx (fun fn -> fn.f_failwiths <- line :: fn.f_failwiths)
      | "invalid_arg" | "Stdlib.invalid_arg" ->
        record_raise cx ~line "Invalid_argument"
      | "Fun.protect" | "Stdlib.Fun.protect" ->
        in_fn cx (fun fn -> fn.f_protect <- true)
      | _ -> ());
      match last_two raw with
      | ("List.hd" | "List.tl") as p ->
        record_raise cx ~line "Failure";
        in_fn cx (fun fn -> fn.f_partials <- (line, p) :: fn.f_partials)
      | "Option.get" ->
        record_raise cx ~line "Invalid_argument";
        in_fn cx (fun fn ->
            fn.f_partials <- (line, "Option.get") :: fn.f_partials)
      | "Buffer_pool.pin" when not (own_module "Buffer_pool") ->
        record_res cx ~line Pin
      | "Buffer_pool.unpin" when not (own_module "Buffer_pool") ->
        record_res cx ~line Unpin
      | "Lock_manager.acquire" when not (own_module "Lock_manager") ->
        record_res cx ~line Acquire
      | ("Lock_manager.precommit" | "Lock_manager.release_abort"
        | "Lock_manager.finalize")
        when not (own_module "Lock_manager") ->
        record_res cx ~line Release
      | _ -> ()));
    (match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident _ -> ()  (* recorded above *)
    | _ -> expr it f);
    (* perf_lint: AST recursion; depth bounded by source nesting *)
    List.iter (fun (_, a) -> expr it a) args
  (* One [try]/[match-exception]: build the subtraction frame from the
     unguarded cases, classify swallow candidates, walk the protected
     expressions under the frame and the handler bodies outside it. *)
  and handler it ~line ~protected ~cases ~lookup_body =
    let unguarded =
      List.filter
        (fun (c : Parsetree.case) -> c.Parsetree.pc_guard = None)
        cases
    in
    let named =
      List.concat_map
        (fun (c : Parsetree.case) ->
          List.filter
            (fun n -> n <> "*")
            (case_names c.Parsetree.pc_lhs))
        unguarded
    in
    let catch_all =
      List.find_opt
        (fun (c : Parsetree.case) ->
          List.mem "*" (case_names c.Parsetree.pc_lhs))
        unguarded
    in
    let catch_all_swallows =
      match catch_all with
      | None -> false
      | Some c -> (
        match bound_var c.Parsetree.pc_lhs with
        | Some v -> not (reraises_var v c.Parsetree.pc_rhs)
        | None -> true (* [with _ ->] cannot re-raise *))
    in
    let frame =
      { fr_names = (if catch_all_swallows then "*" :: named else named) }
    in
    let body_lo =
      List.fold_left
        (fun acc b -> min acc (line_of b))
        max_int protected
    in
    let body_hi =
      List.fold_left (fun acc b -> max acc (end_line_of b)) 0 protected
    in
    (match (catch_all, catch_all_swallows) with
    | Some _, true ->
      in_fn cx (fun fn ->
          fn.f_swallows <-
            { w_line = line; w_frame = frame;
              w_kind = Catch_all { body_lo; body_hi } }
            :: fn.f_swallows)
    | _ -> ());
    (match (lookup_body, catch_all) with
    | Some body, None when List.mem "Not_found" frame.fr_names -> (
      let head =
        match body.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (hd, _) -> ident_of hd
        | _ -> None
      in
      match head with
      | Some raw when List.mem (last_two (normalize cx raw)) opt_lookups ->
        let nf_case =
          List.find_opt
            (fun (c : Parsetree.case) ->
              List.mem "Not_found" (case_names c.Parsetree.pc_lhs))
            unguarded
        in
        (match nf_case with
        | Some c ->
          in_fn cx (fun fn ->
              fn.f_swallows <-
                {
                  w_line = line;
                  w_frame = frame;
                  w_kind =
                    Lookup
                      {
                        lookup = last_two (normalize cx raw);
                        hand_lo = line_of c.Parsetree.pc_rhs;
                        hand_hi = end_line_of c.Parsetree.pc_rhs;
                      };
                }
                :: fn.f_swallows)
        | None -> ())
      | _ -> ())
    | _ -> ());
    let saved = cx.cx_frames in
    cx.cx_frames <- frame :: saved;
    (* perf_lint: AST recursion; depth bounded by source nesting *)
    List.iter (expr it) protected;
    cx.cx_frames <- saved;
    (* perf_lint: AST recursion; depth bounded by source nesting *)
    List.iter (case it) cases
  and case it (c : Parsetree.case) =
    let saved = cx.cx_caught in
    (match bound_var c.Parsetree.pc_lhs with
    | Some v -> cx.cx_caught <- v :: saved
    | None -> ());
    it.Ast_iterator.pat it c.Parsetree.pc_lhs;
    (* perf_lint: AST recursion; depth bounded by source nesting *)
    Option.iter (expr it) c.Parsetree.pc_guard;
    expr it c.Parsetree.pc_rhs;
    cx.cx_caught <- saved
  in
  let value_binding it (vb : Parsetree.value_binding) =
    match cx.cx_cur with
    | Some _ -> super.Ast_iterator.value_binding it vb
    | None ->
      let name = E.pattern_name vb.Parsetree.pvb_pat in
      let line =
        vb.Parsetree.pvb_loc.Location.loc_start.Lexing.pos_lnum
      in
      let f = fresh_fn cx ~name ~line in
      with_cur cx f (fun () -> super.Ast_iterator.value_binding it vb)
  in
  let structure_item it (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_module mb ->
      (match
         (mb.Parsetree.pmb_name.Asttypes.txt,
          mb.Parsetree.pmb_expr.Parsetree.pmod_desc)
       with
      | Some name, Parsetree.Pmod_ident { txt; _ } ->
        Hashtbl.replace cx.cx_aliases name
          (String.concat "." (Longident.flatten txt))
      | _ -> ());
      super.Ast_iterator.structure_item it si
    | Parsetree.Pstr_exception te ->
      cx.cx_declared :=
        SSet.add
          te.Parsetree.ptyexn_constructor.Parsetree.pext_name.Asttypes.txt
          !(cx.cx_declared);
      super.Ast_iterator.structure_item it si
    | _ -> super.Ast_iterator.structure_item it si
  in
  let it =
    {
      super with
      Ast_iterator.expr;
      Ast_iterator.case;
      Ast_iterator.value_binding;
      Ast_iterator.structure_item;
    }
  in
  match E.parse_structure ~file source with
  | Ok items ->
    it.Ast_iterator.structure it items;
    Ok ()
  | Error _ ->
    Error
      (D.error ~code:"EXN100" ~path:file
         "source failed to parse (exception-flow scan incomplete)")

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

let survives frames e =
  List.for_all
    (fun fr -> not (List.mem "*" fr.fr_names || List.mem e fr.fr_names))
    frames

let resolve fns ~cur_module raw =
  if String.contains raw '.' then
    let k = last_two raw in
    if Hashtbl.mem fns k then Some k else None
  else
    let k = cur_module ^ "." ^ raw in
    if Hashtbl.mem fns k then Some k else None

let fn_keys fns =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) fns [])

let fixpoint fns keys =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun k ->
        let f = Hashtbl.find fns k in
        let s =
          List.fold_left
            (fun acc (r : rsite) ->
              if survives r.r_frames r.r_exn then SSet.add r.r_exn acc
              else acc)
            SSet.empty f.f_raises
        in
        let s =
          List.fold_left
            (fun acc (c : csite) ->
              match resolve fns ~cur_module:f.f_module c.c_raw with
              | None -> acc
              | Some k' ->
                let g = Hashtbl.find fns k' in
                SSet.fold
                  (fun e acc ->
                    if survives c.c_frames e then SSet.add e acc else acc)
                  g.f_summary acc)
            s f.f_calls
        in
        if not (SSet.equal s f.f_summary) then begin
          f.f_summary <- s;
          changed := true
        end)
      keys
  done

(* Entry points: the exported functions (all top-level bindings when a
   module has no [.mli]) of modules under lib/recovery and lib/exec —
   the surfaces the torture/recovery harness drives. *)
let entry_points fns keys mli_exports =
  List.filter
    (fun k ->
      let f = Hashtbl.find fns k in
      f.f_name <> "_"
      && entry_dir f.f_file
      &&
      match Hashtbl.find_opt mli_exports f.f_module with
      | Some exports -> List.mem f.f_name exports
      | None -> true)
    keys

let reachable fns entries =
  let witness = Hashtbl.create 64 in
  let rec visit entry k =
    if not (Hashtbl.mem witness k) then begin
      Hashtbl.replace witness k entry;
      match Hashtbl.find_opt fns k with
      | None -> ()
      | Some f ->
        List.iter
          (fun (c : csite) ->
            match resolve fns ~cur_module:f.f_module c.c_raw with
            | Some k' -> visit entry k'
            | None -> ())
          f.f_calls
    end
  in
  List.iter (fun e -> visit e e) entries;
  witness

let analyze ~mls ~mlis =
  let fns : (string, fn) Hashtbl.t = Hashtbl.create 512 in
  let declared = ref SSet.empty in
  let diags = ref [] in
  let file_lines = Hashtbl.create 64 in
  List.iter
    (fun (file, source) ->
      Hashtbl.replace file_lines file (E.lines_of_source source);
      match collect ~file source ~fns ~declared with
      | Ok () -> ()
      | Error d -> diags := d :: !diags)
    mls;
  (* module -> (mli path, mli source, exported val names) *)
  let mli_tbl = Hashtbl.create 32 in
  let mli_exports = Hashtbl.create 32 in
  List.iter
    (fun (file, source) ->
      match E.parse_interface ~file source with
      | Ok items ->
        let exports = E.exported_values items in
        Hashtbl.replace mli_tbl (E.module_of_file file)
          (file, source, exports);
        Hashtbl.replace mli_exports (E.module_of_file file) exports
      | Error _ ->
        diags :=
          D.error ~code:"EXN100" ~path:file
            "interface failed to parse (exception-flow scan incomplete)"
          :: !diags)
    mlis;
  let keys = fn_keys fns in
  fixpoint fns keys;
  let witness = reachable fns (entry_points fns keys mli_exports) in
  let interesting e =
    (not (SSet.mem e generic_exns))
    && (SSet.mem e !declared || List.mem e fault_family)
  in
  let findings = ref [] in
  let emit ~file ~line ~code ~name ~construct =
    let status =
      match Hashtbl.find_opt file_lines file with
      | Some lines -> (
        match
          E.justification ~marker ~lines ~start_line:line ~end_line:line
        with
        | Some why -> Whitelisted why
        | None -> Flagged)
      | None -> Flagged
    in
    findings := { file; line; code; name; construct; status } :: !findings
  in
  let summary_of_call (f : fn) (c : csite) =
    match resolve fns ~cur_module:f.f_module c.c_raw with
    | None -> SSet.empty
    | Some k -> (Hashtbl.find fns k).f_summary
  in
  List.iter
    (fun k ->
      let f = Hashtbl.find fns k in
      let emit ~line ~code ~construct =
        emit ~file:f.f_file ~line ~code ~name:k ~construct
      in
      (* EXN101: swallowing handlers *)
      List.iter
        (fun w ->
          match w.w_kind with
          | Catch_all { body_lo; body_hi } ->
            let minus_self frames =
              List.filter (fun fr -> not (fr == w.w_frame)) frames
            in
            let escapes =
              List.fold_left
                (fun acc (r : rsite) ->
                  if
                    r.r_line >= body_lo && r.r_line <= body_hi
                    && List.mem r.r_exn fault_family
                    && survives (minus_self r.r_frames) r.r_exn
                  then SSet.add r.r_exn acc
                  else acc)
                SSet.empty f.f_raises
            in
            let escapes =
              List.fold_left
                (fun acc (c : csite) ->
                  if c.c_line >= body_lo && c.c_line <= body_hi then
                    SSet.fold
                      (fun e acc ->
                        if
                          List.mem e fault_family
                          && survives (minus_self c.c_frames) e
                        then SSet.add e acc
                        else acc)
                      (summary_of_call f c) acc
                  else acc)
                escapes f.f_calls
            in
            if not (SSet.is_empty escapes) then
              emit ~line:w.w_line ~code:"EXN101"
                ~construct:
                  (Printf.sprintf "catch-all swallows %s"
                     (String.concat ", " (SSet.elements escapes)))
          | Lookup { lookup; hand_lo; hand_hi } ->
            let handler_raises =
              List.exists
                (fun (r : rsite) ->
                  r.r_line >= hand_lo && r.r_line <= hand_hi)
                f.f_raises
              || List.exists
                   (fun (c : csite) ->
                     c.c_line >= hand_lo && c.c_line <= hand_hi
                     && not (SSet.is_empty (summary_of_call f c)))
                   f.f_calls
            in
            if not handler_raises then
              emit ~line:w.w_line ~code:"EXN101"
                ~construct:
                  (Printf.sprintf "try %s with Not_found (use %s_opt)"
                     lookup lookup))
        f.f_swallows;
      (* EXN104: backtrace-dropping re-raise *)
      List.iter
        (fun (line, v) ->
          emit ~line ~code:"EXN104"
            ~construct:(Printf.sprintf "raise %s (backtrace lost)" v))
        (List.sort compare f.f_reraises);
      (* EXN103 / EXN105: partial & stringly sites on live paths *)
      (match Hashtbl.find_opt witness k with
      | None -> ()
      | Some entry ->
        List.iter
          (fun (line, p) ->
            emit ~line ~code:"EXN103"
              ~construct:(Printf.sprintf "%s (reachable from %s)" p entry))
          (List.sort compare f.f_partials);
        List.iter
          (fun line ->
            emit ~line ~code:"EXN105"
              ~construct:(Printf.sprintf "failwith (reachable from %s)" entry))
          (List.sort compare f.f_failwiths));
      (* RES101-RES104: per-function resource protocol *)
      let res = List.sort compare (List.rev f.f_res) in
      let count kind =
        List.fold_left (fun n (_, k) -> if k = kind then n + 1 else n) 0 res
      in
      let first kind =
        match List.find_opt (fun (_, k) -> k = kind) res with
        | Some (l, _) -> l
        | None -> 0
      in
      let pair ~acq ~rel ~what ~acq_name ~rel_name =
        let na = count acq and nr = count rel in
        if na > 0 && nr = 0 then
          emit ~line:(first acq) ~code:(if acq = Pin then "RES101" else "RES102")
            ~construct:
              (Printf.sprintf "%s with no %s on some path" acq_name rel_name)
        else if nr > 0 && na = 0 then
          emit ~line:(first rel) ~code:"RES104"
            ~construct:
              (Printf.sprintf "%s with no preceding %s" rel_name acq_name)
        else if na > 0 && nr > 0 && not f.f_protect then begin
          let lo = first acq in
          let hi =
            List.fold_left
              (fun acc (l, k) -> if k = rel then max acc l else acc)
              0 res
          in
          let raiser =
            let direct =
              List.find_opt
                (fun (r : rsite) -> r.r_line > lo && r.r_line < hi)
                f.f_raises
            in
            match direct with
            | Some r -> Some r.r_exn
            | None ->
              List.find_map
                (fun (c : csite) ->
                  if c.c_line > lo && c.c_line < hi then
                    SSet.min_elt_opt (summary_of_call f c)
                  else None)
                f.f_calls
          in
          match raiser with
          | Some e ->
            emit ~line:lo ~code:"RES103"
              ~construct:
                (Printf.sprintf
                   "%s span can raise %s with no Fun.protect" what e)
          | None -> ()
        end
      in
      pair ~acq:Pin ~rel:Unpin ~what:"pin..unpin" ~acq_name:"Buffer_pool.pin"
        ~rel_name:"Buffer_pool.unpin";
      pair ~acq:Acquire ~rel:Release ~what:"acquire..release"
        ~acq_name:"Lock_manager.acquire" ~rel_name:"a release-set call")
    keys;
  (* EXN102: undeclared exception escape of an exported API, one
     finding per (module, exception), anchored at the first offending
     exported function. *)
  let exn102 = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let f = Hashtbl.find fns k in
      if f.f_name <> "_" && declared_scope f.f_file then
        match Hashtbl.find_opt mli_tbl f.f_module with
        | Some (mli_path, mli_src, exports) when List.mem f.f_name exports ->
          SSet.iter
            (fun e ->
              if interesting e then begin
                let declares =
                  List.exists
                    (fun l -> has_sub l "@raise" && has_sub l e)
                    (String.split_on_char '\n' mli_src)
                in
                if not declares then
                  (* perf_lint: two short names, once per escaping exn *)
                  let key = f.f_module ^ "/" ^ e in
                  match Hashtbl.find_opt exn102 key with
                  | Some (_, _, line, _) when line <= f.f_line -> ()
                  | _ ->
                    Hashtbl.replace exn102 key (f, e, f.f_line, mli_path)
              end)
            f.f_summary
        | _ -> ())
    keys;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) exn102 []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (_, ((f : fn), e, line, mli_path)) ->
         emit ~file:f.f_file ~line ~code:"EXN102"
           (* perf_lint: two short names, once per EXN102 finding *)
           ~name:(f.f_module ^ "." ^ f.f_name)
           ~construct:
             (Printf.sprintf "%s escapes %s.%s (no @raise in %s)" e
                f.f_module f.f_name mli_path));
  let sorted =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> (
          match compare a.line b.line with
          | 0 -> String.compare a.code b.code
          | c -> c)
        | c -> c)
      !findings
  in
  (sorted, List.rev !diags)

let scan_lib ?root () =
  match E.lib_sources ?root ~what:"Exn_flow" () with
  | Error m -> Error m
  | Ok (mls, mlis) -> Ok (analyze ~mls ~mlis)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let describe = function
  | "EXN101" ->
    "handler swallows a fault-family exception (or a partial lookup \
     with a total _opt variant) — let it propagate, match it \
     explicitly, or use the _opt lookup"
  | "EXN102" ->
    "exception escapes an exported API with no @raise declaration in \
     the .mli — document the contract"
  | "EXN103" ->
    "partial stdlib call reachable from a recovery/exec entry point — \
     replace with an explicit match carrying a diagnostic"
  | "EXN104" ->
    "re-raise by plain raise drops the original backtrace — use \
     Printexc.raise_with_backtrace or Fun.protect"
  | "EXN105" ->
    "failwith reachable from a recovery/exec entry point — raise a \
     typed exception the torture harness can classify"
  | "RES101" -> "Buffer_pool.pin with no unpin in the same function"
  | "RES102" ->
    "Lock_manager.acquire with no release-set call in the same function"
  | "RES103" ->
    "acquire/release span can raise with no Fun.protect — the \
     exception unwinds past the release"
  | "RES104" -> "resource release with no acquire in the same function"
  | _ -> "exception-flow hazard"

let diags_of_findings fs =
  List.filter_map
    (fun f ->
      match f.status with
      | Whitelisted _ -> None
      | Flagged ->
        Some
          (D.error ~code:f.code
             ~path:(Printf.sprintf "%s:%d" f.file f.line)
             (Printf.sprintf
                "%s: `%s' in %s — fix it or justify with a \
                 (* exn_flow: ... *) comment"
                (describe f.code) f.construct f.name)))
    fs

let pp_inventory ppf fs =
  if fs = [] then Format.fprintf ppf "no exception-flow hazards found@."
  else
    List.iter
      (fun f ->
        Format.fprintf ppf "%-34s %-44s %s@."
          (Printf.sprintf "%s:%d" f.file f.line)
          (Printf.sprintf "%s in %s" f.construct f.name)
          (match f.status with
          | Whitelisted why -> Printf.sprintf "whitelisted: %s" why
          | Flagged -> Printf.sprintf "FLAGGED %s" f.code))
      fs

let code_catalogue =
  [
    ("EXN100", "source failed to parse; exception-flow scan incomplete");
    ("EXN101", "catch-all handler can swallow a fault-family exception (or partial lookup with a total _opt variant)");
    ("EXN102", "exception escapes an exported API with no @raise declaration in the .mli");
    ("EXN103", "partial stdlib call (List.hd/List.tl/Option.get) reachable from a recovery/exec entry point");
    ("EXN104", "re-raise by plain raise drops the original backtrace");
    ("EXN105", "failwith reachable from a recovery/exec entry point (untyped Failure)");
    ("RES101", "Buffer_pool.pin not matched by unpin in the same function");
    ("RES102", "Lock_manager.acquire not matched by a release-set call");
    ("RES103", "exception-unsafe acquire/release pairing (needs Fun.protect)");
    ("RES104", "resource release without a matching acquire");
  ]
