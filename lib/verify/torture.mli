(** Crash-point torture harness.

    Sweeps the end-to-end recovery stack ({!Mmdb_recovery.Recovery_manager})
    across every schedulable crash instant — between transaction
    arrivals, just after each log-page write is issued, mid-page-write,
    and past quiesce — for each WAL commit strategy, with and without an
    armed fault plan (torn log tails, read/rest bit flips, transient I/O
    errors, snapshot rot, stable-memory battery droop).

    The property checked is {e no silent corruption}: every run must
    either satisfy all recovery invariants (recovered state equals the
    golden replay, money conserved, every acknowledged commit durable,
    durable log passes the protocol audit) or carry an explicit
    unrecoverable-fault report in its tally (battery droop losing
    acknowledged commits, at-rest media damage destroying committed log
    records).  An invariant violation with a quiet fault plane is a bug
    in the recovery stack and fails the sweep. *)

type verdict =
  | Clean  (** all invariants hold, no faults were even injected *)
  | Repaired  (** faults injected; detected/repaired; invariants hold *)
  | Flagged of string list
      (** invariants violated, but the loss was reported unrecoverable *)
  | Silent of string list
      (** invariants violated with no unrecoverable report — a bug *)

type failure = {
  f_strategy : string;
  f_spec : string;
  f_crash_at : float;
  f_crash_steps : int option;
      (** [Some n]: recovery itself was crashed after [n] replay steps
          and restarted before this verdict was taken *)
  f_violations : string list;
}

type combo = {
  cb_strategy : string;
  cb_spec : string;
  cb_runs : int;
  cb_clean : int;
  cb_repaired : int;
  cb_flagged : int;
  cb_silent : int;
}

type report = {
  combos : combo list;  (** one row per strategy x fault-spec pair *)
  total_runs : int;
  restart_runs : int;
      (** recoveries that were crashed mid-replay and restarted
          (FAULT012); a restart run whose crash budget outlasts the
          replay counts zero *)
  silent : failure list;  (** the sweep fails iff nonempty *)
  flagged : failure list;
  tally : Mmdb_fault.Fault.tally;  (** aggregated over all runs *)
  events : (string * int) list;  (** FAULT-code event counts, aggregated *)
}

val default_specs : string list
(** ["none"], each single-fault spec, and ["torn-tail,bitflip"]. *)

val default_strategies : Mmdb_recovery.Wal.strategy list
(** Conventional, group commit, partitioned-2, and compressed stable
    memory (small capacity, so drains happen under torture). *)

val default_replay : Mmdb_recovery.Recovery_manager.replay_config
(** Four replay partitions, adaptive logging, simulated scheduler: the
    hardest deterministic replay configuration, so every harvested crash
    point also exercises barrier rendezvous and the value-vs-command
    logging decision. *)

val run :
  ?seed:int -> ?txns:int -> ?specs:string list ->
  ?strategies:Mmdb_recovery.Wal.strategy list -> ?max_points_per_combo:int ->
  ?replay:Mmdb_recovery.Recovery_manager.replay_config ->
  ?restart_points_per_combo:int -> ?restart_steps:int list ->
  unit -> report
(** [run ()] sweeps every strategy x spec pair.  Crash points are
    harvested from a crash-free probe run of the same configuration
    (its page-write spans and arrival times), capped at
    [max_points_per_combo] (default 32) per pair.  Deterministic in
    [seed] (default 7): workload, fault schedule, and crash points are
    all derived from it.

    Every run replays under [replay] (default {!default_replay}).  On
    top of the plain sweep, [restart_points_per_combo] (default 3) crash
    points spread across each combo's range are re-run once per entry of
    [restart_steps] (default [[1; 8; 64]]) with the {e recovery itself}
    crashed after that many replay/write-back steps and restarted — the
    restart-crash matrix.  Those runs obey the same no-silent-corruption
    property and are counted in [report.restart_runs]. *)

val ok : report -> bool
(** No silent-corruption failures. *)

val pp : Format.formatter -> report -> unit
(** Per-combo table, aggregate tally, FAULT-event counts, and any silent
    failures. *)

val pp_failure : Format.formatter -> failure -> unit
