module D = Mmdb_util.Diag
module BP = Mmdb_storage.Buffer_pool

let audit ?(expect_unpinned = true) pool =
  let st = BP.stats pool in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if expect_unpinned then
    List.iter
      (fun (pid, pins) ->
        add
          (D.error ~code:"POOL001"
             ~path:(Printf.sprintf "pid=%d" pid)
             (Printf.sprintf "pin leak: page still holds %d pin%s" pins
                (if pins = 1 then "" else "s"))))
      st.BP.pinned_pages;
  if st.BP.unpin_underflows > 0 then
    add
      (D.error ~code:"POOL002" ~path:""
         (Printf.sprintf "%d unpin underflow%s recorded"
            st.BP.unpin_underflows
            (if st.BP.unpin_underflows = 1 then "" else "s")));
  let accounted = st.BP.writebacks + st.BP.dropped_dirty + st.BP.dirty_resident in
  if st.BP.dirtied <> accounted then
    add
      (D.error ~code:"POOL003" ~path:""
         (Printf.sprintf
            "dirty accounting mismatch: dirtied=%d but writebacks=%d + \
             dropped_dirty=%d + dirty_resident=%d = %d"
            st.BP.dirtied st.BP.writebacks st.BP.dropped_dirty
            st.BP.dirty_resident accounted));
  if BP.resident pool > BP.capacity pool then
    add
      (D.error ~code:"POOL004" ~path:""
         (Printf.sprintf "%d resident frames exceed capacity %d"
            (BP.resident pool) (BP.capacity pool)));
  List.rev !diags

let ok ?expect_unpinned pool = not (D.has_errors (audit ?expect_unpinned pool))

let code_catalogue =
  [
    ("POOL001", "pin leak: page still pinned at audit time");
    ("POOL002", "unpin underflow: more unpins than pins");
    ("POOL003", "dirty accounting mismatch");
    ("POOL004", "resident frames exceed capacity");
  ]
