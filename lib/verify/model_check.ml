module D = Mmdb_util.Diag
module U = Mmdb_util
module S = Mmdb_storage
module E = Mmdb_exec
module JM = Mmdb_model.Join_model
module XM = Mmdb_model.Exec_model
module P = Mmdb_planner

(* ------------------------------------------------------------------ *)
(* Tolerance bands                                                     *)
(* ------------------------------------------------------------------ *)

type band = { lo : float; hi : float; abs : float }

let band ?(abs = 0.0) lo hi = { lo; hi; abs }

type tolerance = {
  comps : band;
  hashes : band;
  moves : band;
  swaps : band;
  seq_ios : band;
  rand_ios : band;
  seconds : band;
}

(* Operators that never charge (scan, filter, plain projection run on the
   nocharge paths): predicted zero, observed must be zero. *)
let silent_band = band 1.0 1.0
let silent =
  {
    comps = silent_band;
    hashes = silent_band;
    moves = silent_band;
    swaps = silent_band;
    seq_ios = silent_band;
    rand_ios = silent_band;
    seconds = band ~abs:1e-12 1.0 1.0;
  }

(* The model's terms are the paper's idealized bulk formulas; the
   executable pays per-element realities.  Each declared band states the
   constant-factor room one operator class is allowed (DESIGN.md explains
   every entry):

   - hash operators (build/probe/partition) count hashes and moves
     exactly, so those bands are tight; probe comparisons depend on hash
     collisions versus the model's F·|S| guess, so comps get headroom.
   - priority-queue operators charge at most 2 comparisons per sift level
     against the model's single n·log2 m term, and heapify is cheaper
     than n·log2 n, so sort comps sit in [0.3, 2.5] with swaps tighter.
   - page counts round up per partition/run, so I/O bands carry a small
     absolute allowance in addition to the ratio. *)
let hash_tolerance =
  {
    comps = band ~abs:8.0 0.3 1.8;
    hashes = band ~abs:2.0 0.9 1.4;
    moves = band ~abs:2.0 0.9 1.4;
    swaps = band ~abs:0.0 1.0 1.0;
    seq_ios = band ~abs:8.0 0.5 1.6;
    rand_ios = band ~abs:8.0 0.5 1.6;
    seconds = band ~abs:1e-6 0.4 1.7;
  }

let sort_tolerance =
  {
    comps = band ~abs:8.0 0.3 2.5;
    hashes = band ~abs:0.0 1.0 1.0;
    moves = band ~abs:2.0 0.5 1.5;
    swaps = band ~abs:8.0 0.3 1.6;
    seq_ios = band ~abs:8.0 0.5 1.6;
    rand_ios = band ~abs:8.0 0.5 1.6;
    seconds = band ~abs:1e-6 0.4 1.8;
  }

let tolerance_for kind =
  if kind = "filter" || kind = "project" then silent
  else if String.length kind >= 5 && String.sub kind 0 5 = "scan:" then silent
  else if kind = "join:sort-merge" || kind = "order-by" then sort_tolerance
  else hash_tolerance

let scale_band f b = { lo = b.lo /. f; hi = b.hi *. f; abs = b.abs *. f }

let scale_tolerance f t =
  if f = 1.0 then t
  else
    {
      comps = scale_band f t.comps;
      hashes = scale_band f t.hashes;
      moves = scale_band f t.moves;
      swaps = scale_band f t.swaps;
      seq_ios = scale_band f t.seq_ios;
      rand_ios = scale_band f t.rand_ios;
      seconds = scale_band f t.seconds;
    }

(* ------------------------------------------------------------------ *)
(* Counter projection and band checks                                  *)
(* ------------------------------------------------------------------ *)

let ops_of_counters (c : S.Counters.t) =
  {
    JM.comps = float_of_int c.S.Counters.comparisons;
    hashes = float_of_int c.S.Counters.hashes;
    moves = float_of_int c.S.Counters.moves;
    swaps = float_of_int c.S.Counters.swaps;
    seq_ios = float_of_int (c.S.Counters.seq_reads + c.S.Counters.seq_writes);
    rand_ios =
      float_of_int (c.S.Counters.rand_reads + c.S.Counters.rand_writes);
  }

let check_class ~path ~kind ~code ~label b ~predicted ~observed =
  let lo = (b.lo *. predicted) -. b.abs
  and hi = (b.hi *. predicted) +. b.abs in
  if observed < lo || observed > hi then
    [
      D.error ~code ~path
        (Printf.sprintf
           "%s: observed %s %.6g outside [%.6g, %.6g] (predicted %.6g, band \
            %.2f-%.2fx +/- %g)"
           kind label observed lo hi predicted b.lo b.hi b.abs);
    ]
  else []

let check_ops ~path ~kind ~tol ~cost ~(predicted : JM.ops)
    ~(observed : JM.ops) ~predicted_seconds ~observed_seconds =
  ignore cost;
  check_class ~path ~kind ~code:"MODEL001" ~label:"comparisons" tol.comps
    ~predicted:predicted.JM.comps ~observed:observed.JM.comps
  @ check_class ~path ~kind ~code:"MODEL002" ~label:"hashes" tol.hashes
      ~predicted:predicted.JM.hashes ~observed:observed.JM.hashes
  @ check_class ~path ~kind ~code:"MODEL003" ~label:"moves" tol.moves
      ~predicted:predicted.JM.moves ~observed:observed.JM.moves
  @ check_class ~path ~kind ~code:"MODEL004" ~label:"swaps" tol.swaps
      ~predicted:predicted.JM.swaps ~observed:observed.JM.swaps
  @ check_class ~path ~kind ~code:"MODEL005" ~label:"sequential I/Os"
      tol.seq_ios ~predicted:predicted.JM.seq_ios
      ~observed:observed.JM.seq_ios
  @ check_class ~path ~kind ~code:"MODEL006" ~label:"random I/Os"
      tol.rand_ios ~predicted:predicted.JM.rand_ios
      ~observed:observed.JM.rand_ios
  @ check_class ~path ~kind ~code:"MODEL007" ~label:"seconds" tol.seconds
      ~predicted:predicted_seconds ~observed:observed_seconds

(* ------------------------------------------------------------------ *)
(* Plan conformance                                                    *)
(* ------------------------------------------------------------------ *)

type node_report = {
  path : string;
  kind : string;
  predicted : JM.ops;
  observed : JM.ops;
  predicted_seconds : float;
  observed_seconds : float;
  diags : D.t list;
}

let input_of_obs (o : P.Executor.node_obs) =
  XM.input ~tuples:o.P.Executor.output_tuples ~pages:o.P.Executor.output_pages
    ~tuples_per_page:o.P.Executor.output_tuples_per_page

(* Plan nodes in the executor's post-order with the executor's paths, so
   the static walk and the traced execution can be zipped positionally. *)
let plan_nodes plan =
  let acc = ref [] in
  let rec go path p =
    (match p with
    | P.Optimizer.P_scan _ -> ()
    | P.Optimizer.P_filter { input; _ }
    | P.Optimizer.P_project { input; _ }
    | P.Optimizer.P_aggregate { input; _ }
    | P.Optimizer.P_order_by { input; _ } ->
      (* perf_lint: plan paths are a few segments; audit-scale *)
      go (path ^ ".0") input
    | P.Optimizer.P_join { left; right; _ }
    | P.Optimizer.P_set_op { left; right; _ } ->
      (* perf_lint: plan paths are a few segments; audit-scale *)
      go (path ^ ".0") left;
      go (path ^ ".1") right);
    acc := (path, p) :: !acc
  in
  go "$" plan;
  List.rev !acc

let model011 ~path ~kind msg =
  D.warning ~code:"MODEL011" ~path
    (Printf.sprintf "%s: workload outside model validity (%s); conformance \
                     skipped" kind msg)

(* Predict one node's ops from the observed sizes of its children.  The
   model is evaluated at *actual* input cardinalities so estimation error
   (checked separately as MODEL009) does not contaminate conformance. *)
let predict_node (cfg : P.Optimizer.config) ~kind plan
    (children : P.Executor.node_obs list) (self_obs : P.Executor.node_obs) =
  let mem_pages = cfg.P.Optimizer.mem_pages and fudge = cfg.P.Optimizer.fudge in
  let out_tpp = self_obs.P.Executor.output_tuples_per_page in
  match plan with
  | P.Optimizer.P_scan _ | P.Optimizer.P_filter _ -> Ok JM.zero_ops
  | P.Optimizer.P_project { distinct = false; _ } -> Ok JM.zero_ops
  | P.Optimizer.P_project { distinct = true; _ } -> (
    match children with
    | [ child ] ->
      let tuples = child.P.Executor.output_tuples in
      let staging =
        XM.input ~tuples
          ~pages:(XM.pages_of ~tuples ~tuples_per_page:(max 1 out_tpp))
          ~tuples_per_page:(max 1 out_tpp)
      in
      Ok
        (XM.distinct_ops ~mem_pages ~fudge
           ~distinct:self_obs.P.Executor.output_tuples
           ~out_tuples_per_page:(max 1 out_tpp) staging)
    | _ -> Error "projection expects one input")
  | P.Optimizer.P_join { choice; _ } -> (
    match children with
    | [ l; r ] -> (
      let build, probe =
        if choice.P.Optimizer.swapped then (r, l) else (l, r)
      in
      let w =
        {
          JM.r_pages = build.P.Executor.output_pages;
          s_pages = probe.P.Executor.output_pages;
          r_tuples_per_page = max 1 build.P.Executor.output_tuples_per_page;
          s_tuples_per_page = max 1 probe.P.Executor.output_tuples_per_page;
          cost = { S.Cost.table2 with S.Cost.fudge };
        }
      in
      match JM.validate w ~m:mem_pages with
      | () ->
        Ok
          (JM.ops_of_algorithm
             (E.Joiner.name choice.P.Optimizer.algorithm)
             w ~m:mem_pages)
      | exception Invalid_argument msg -> Error msg)
    | _ -> Error "join expects two inputs")
  | P.Optimizer.P_aggregate { aggs; _ } -> (
    match children with
    | [ child ] ->
      let comp_specs =
        List.length
          (List.filter
             (function
               | E.Aggregate.Min _ | E.Aggregate.Max _ -> true
               | _ -> false)
             aggs)
      in
      Ok
        (XM.aggregate_ops ~mem_pages ~fudge ~comp_specs
           ~groups:self_obs.P.Executor.output_tuples
           ~out_tuples_per_page:(max 1 out_tpp) (input_of_obs child))
    | _ -> Error "aggregate expects one input")
  | P.Optimizer.P_order_by _ -> (
    match children with
    | [ child ] -> Ok (XM.sort_ops ~mem_pages (input_of_obs child))
    | _ -> Error "order-by expects one input")
  | P.Optimizer.P_set_op { op; _ } -> (
    match children with
    | [ l; r ] ->
      let kind_x =
        match op with
        | P.Algebra.Union -> XM.Union
        | P.Algebra.Intersect -> XM.Intersection
        | P.Algebra.Except -> XM.Difference
      in
      Ok
        (XM.set_op_ops ~mem_pages ~fudge ~kind:kind_x
           ~out_tuples:self_obs.P.Executor.output_tuples
           ~out_tuples_per_page:(max 1 out_tpp) (input_of_obs l)
           (input_of_obs r))
    | _ -> Error (Printf.sprintf "%s expects two inputs" kind))

(* Children of node [path] among the traced observations: entries whose
   path is [path ^ "." ^ digit+] with no further dot. *)
let children_of path (obs : P.Executor.node_obs list) =
  let prefix = path ^ "." in
  let pl = String.length prefix in
  List.filter
    (fun (o : P.Executor.node_obs) ->
      let p = o.P.Executor.path in
      String.length p > pl
      && String.sub p 0 pl = prefix
      && not (String.contains_from p pl '.'))
    obs

let check_planned ?(tolerance_scale = 1.0) catalog cfg plan =
  let _result, obs = P.Executor.run_traced catalog cfg plan in
  let nodes = plan_nodes plan in
  let cost = { S.Cost.table2 with S.Cost.fudge = cfg.P.Optimizer.fudge } in
  List.map2
    (fun (path, node) (o : P.Executor.node_obs) ->
      assert (path = o.P.Executor.path);
      let kind = o.P.Executor.kind in
      let observed = ops_of_counters o.P.Executor.self in
      let observed_seconds = o.P.Executor.self_seconds in
      match predict_node cfg ~kind node (children_of path obs) o with
      | Error msg ->
        {
          path;
          kind;
          predicted = JM.zero_ops;
          observed;
          predicted_seconds = 0.0;
          observed_seconds;
          diags = [ model011 ~path ~kind msg ];
        }
      | Ok predicted ->
        let predicted_seconds = JM.seconds cost predicted in
        let tol = scale_tolerance tolerance_scale (tolerance_for kind) in
        let diags =
          check_ops ~path ~kind ~tol ~cost ~predicted ~observed
            ~predicted_seconds ~observed_seconds
        in
        { path; kind; predicted; observed; predicted_seconds;
          observed_seconds; diags })
    nodes obs

let check_plan ?tolerance_scale catalog cfg expr =
  check_planned ?tolerance_scale catalog cfg (P.Optimizer.plan catalog cfg expr)

let report_diags reports = List.concat_map (fun r -> r.diags) reports

let pp_report ppf r =
  Format.fprintf ppf "%-8s %-18s predicted %a / %.4fs@,%-8s %-18s observed  \
                      %a / %.4fs"
    r.path r.kind JM.pp_ops r.predicted r.predicted_seconds "" "" JM.pp_ops
    r.observed r.observed_seconds;
  List.iter (fun d -> Format.fprintf ppf "@,  %a" D.pp d) r.diags

(* ------------------------------------------------------------------ *)
(* Stand-alone join conformance (drives all four algorithms directly,  *)
(* independent of which one the optimizer would pick)                  *)
(* ------------------------------------------------------------------ *)

let workload_of ~fudge r s =
  {
    JM.r_pages = S.Relation.npages r;
    s_pages = S.Relation.npages s;
    r_tuples_per_page = max 1 (S.Relation.tuples_per_page r);
    s_tuples_per_page = max 1 (S.Relation.tuples_per_page s);
    cost = { S.Cost.table2 with S.Cost.fudge };
  }

let check_join ?(tolerance_scale = 1.0) algo ~mem_pages ~fudge r s =
  let name = E.Joiner.name algo in
  let kind = "join:" ^ name in
  let w = workload_of ~fudge r s in
  match JM.validate w ~m:mem_pages with
  | exception Invalid_argument msg -> [ model011 ~path:"$" ~kind msg ]
  | () ->
    let predicted = JM.ops_of_algorithm name w ~m:mem_pages in
    let stats = E.Joiner.run_measured algo ~mem_pages ~fudge r s in
    let observed = ops_of_counters stats.E.Op_stats.counters in
    let tol = scale_tolerance tolerance_scale (tolerance_for kind) in
    check_ops ~path:"$" ~kind ~tol ~cost:w.JM.cost ~predicted ~observed
      ~predicted_seconds:(JM.seconds w.JM.cost predicted)
      ~observed_seconds:stats.E.Op_stats.seconds

(* ------------------------------------------------------------------ *)
(* Optimizer optimality lint                                           *)
(* ------------------------------------------------------------------ *)

let enumeration_cap = 8

let lint_optimality ?(eps = 1e-9) catalog cfg expr =
  let plan = P.Optimizer.plan catalog cfg expr in
  let choices = P.Optimizer.join_choices plan in
  if choices = [] then []
  else begin
    let cost = { S.Cost.table2 with S.Cost.fudge = cfg.P.Optimizer.fudge } in
    let priced =
      List.map
        (fun (c : P.Optimizer.join_choice) ->
          let w = c.P.Optimizer.est_workload
          and m = c.P.Optimizer.est_mem_pages in
          List.map
            (fun (nm, ops) -> (nm, JM.seconds w.JM.cost ops))
            (JM.all_four_ops w ~m))
        choices
    in
    (* Exhaustive enumeration of the 4^k algorithm assignments (capped:
       beyond the cap the per-join minima give the same bound because
       join costs are additive and independent). *)
    let best_total, best_assignment =
      if List.length priced <= enumeration_cap then
        List.fold_left
          (fun acc per_join ->
            List.concat_map
              (fun (total, names) ->
                List.map
                  (fun (nm, c) -> (total +. c, nm :: names))
                  per_join)
              acc)
          [ (0.0, []) ]
          priced
        |> List.fold_left
             (fun (bt, bn) (t, n) -> if t < bt then (t, List.rev n) else (bt, bn))
             (infinity, [])
      else
        ( List.fold_left
            (fun acc per_join ->
              acc
              +. List.fold_left (fun m (_, c) -> Float.min m c) infinity
                   per_join)
            0.0 priced,
          [] )
    in
    let chosen = P.Optimizer.estimated_cost plan in
    let optimality =
      if chosen > (best_total *. (1.0 +. eps)) +. 1e-12 then
        [
          D.error ~code:"MODEL008" ~path:"$"
            (Printf.sprintf
               "optimizer chose a plan costing %.6fs but enumeration finds \
                %.6fs%s"
               chosen best_total
               (if best_assignment = [] then ""
                else " (" ^ String.concat ", " best_assignment ^ ")"));
        ]
      else []
    in
    (* MODEL010: the per-term annotation must re-price to the annotated
       seconds (same constants, float-associativity slack only). *)
    let repriced = JM.seconds cost (P.Optimizer.estimated_ops plan) in
    let annotation =
      if Float.abs (repriced -. chosen) > (1e-9 *. Float.abs chosen) +. 1e-12
      then
        [
          D.error ~code:"MODEL010" ~path:"$"
            (Printf.sprintf
               "plan cost annotation %.9fs disagrees with seconds(ops) = \
                %.9fs"
               chosen repriced);
        ]
      else []
    in
    optimality @ annotation
  end

(* ------------------------------------------------------------------ *)
(* Selectivity conformance                                             *)
(* ------------------------------------------------------------------ *)

(* Selinger-style estimates are coarse (1/ndistinct equalities, 1/3 magic
   fallbacks), so the declared band is wide; it still catches broken
   statistics or an estimator regression of an order of magnitude. *)
let selectivity_band = band ~abs:64.0 0.05 20.0

let check_selectivity ?(band = selectivity_band) catalog expr ~actual =
  let est = P.Selectivity.estimate catalog expr in
  check_class ~path:"$" ~kind:"selectivity" ~code:"MODEL009"
    ~label:"output tuples" band ~predicted:est
    ~observed:(float_of_int actual)

(* ------------------------------------------------------------------ *)
(* Seeded conformance suite                                            *)
(* ------------------------------------------------------------------ *)

type case = { name : string; reports : node_report list; diags : D.t list }

let case_diags c = report_diags c.reports @ c.diags

let suite_diags cases = List.concat_map case_diags cases

let suite_ok cases = not (D.has_errors (suite_diags cases))

let corpus_schema name =
  S.Schema.create ~key:"k"
    [
      S.Schema.column "k" S.Schema.Int;
      S.Schema.column "v" S.Schema.Int;
      S.Schema.column ~width:84 ("pad_" ^ name) S.Schema.Fixed_string;
    ]

let corpus_table ~disk ~rng ~name ~pages =
  let tpp = 40 in
  let n = pages * tpp in
  let schema = corpus_schema name in
  S.Relation.of_tuples ~disk ~name ~schema
    (List.init n (fun i ->
         S.Tuple.encode schema
           [
             S.Tuple.VInt (U.Xorshift.int rng n);
             S.Tuple.VInt i;
             S.Tuple.VStr "";
           ]))

let run_suite ?(seed = 42) ?(tolerance_scale = 1.0) ?(enumerate = true) () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let rng = U.Xorshift.create seed in
  let r = corpus_table ~disk ~rng ~name:"r" ~pages:24 in
  let s = corpus_table ~disk ~rng ~name:"s" ~pages:60 in
  let t = corpus_table ~disk ~rng ~name:"t" ~pages:12 in
  let catalog = P.Catalog.create () in
  List.iter (P.Catalog.register catalog) [ r; s; t ];
  let cfg =
    { P.Optimizer.mem_pages = 16; fudge = 1.2; allow_hash = true }
  in
  let big_cfg = { cfg with P.Optimizer.mem_pages = 256 } in
  let conformance ?(cfg = cfg) name expr =
    let reports = check_plan ~tolerance_scale catalog cfg expr in
    let lint = if enumerate then lint_optimality catalog cfg expr else [] in
    { name; reports; diags = lint }
  in
  let join_case name algo ~mem_pages =
    {
      name;
      reports = [];
      diags = check_join ~tolerance_scale algo ~mem_pages ~fudge:1.2 r s;
    }
  in
  let selectivity_case name expr =
    let plan = P.Optimizer.plan catalog cfg expr in
    let result, _obs = P.Executor.run_traced catalog cfg plan in
    {
      name;
      reports = [];
      diags =
        check_selectivity catalog expr ~actual:(S.Relation.ntuples result);
    }
  in
  let open P.Algebra in
  [
    (* Every join algorithm, resident and spilled. *)
    join_case "join/sort-merge/spilled" E.Joiner.Sort_merge_join
      ~mem_pages:16;
    join_case "join/simple/spilled" E.Joiner.Simple_hash_join ~mem_pages:16;
    join_case "join/grace/spilled" E.Joiner.Grace_hash_join ~mem_pages:16;
    join_case "join/hybrid/spilled" E.Joiner.Hybrid_hash_join ~mem_pages:16;
    join_case "join/sort-merge/resident" E.Joiner.Sort_merge_join
      ~mem_pages:256;
    join_case "join/hybrid/resident" E.Joiner.Hybrid_hash_join ~mem_pages:256;
    (* Planned pipelines: conformance of every traced node + the lint. *)
    conformance "plan/join"
      (join ~left_key:"k" ~right_key:"k" (scan "r") (scan "s"));
    conformance "plan/filter-join"
      (join ~left_key:"k" ~right_key:"k"
         (select ~column:"v" ~op:Lt ~value:(S.Tuple.VInt 480) (scan "r"))
         (scan "s"));
    conformance "plan/two-joins" ~cfg:big_cfg
      (join ~left_key:"r_k" ~right_key:"k"
         (join ~left_key:"k" ~right_key:"k" (scan "r") (scan "t"))
         (scan "s"));
    conformance "plan/aggregate"
      (aggregate ~group_by:"k"
         ~aggs:[ E.Aggregate.Count; E.Aggregate.Sum "v"; E.Aggregate.Max "v" ]
         (scan "s"));
    conformance "plan/distinct" (project ~distinct:true ~columns:[ "k" ] (scan "s"));
    (* Sort the random column: replacement selection on presorted input
       makes one long run, which the expected-runs formula (random input)
       does not model. *)
    conformance "plan/order-by" (order_by ~column:"k" (scan "s"));
    conformance "plan/union" (set_op Union (scan "r") (scan "t"));
    conformance "plan/intersect" (set_op Intersect (scan "r") (scan "s"));
    conformance "plan/except" (set_op Except (scan "s") (scan "r"));
    (* Estimator vs reality. *)
    selectivity_case "selectivity/eq"
      (select ~column:"k" ~op:Eq ~value:(S.Tuple.VInt 17) (scan "s"));
    selectivity_case "selectivity/range"
      (select ~column:"k" ~op:Lt ~value:(S.Tuple.VInt 600) (scan "s"));
    selectivity_case "selectivity/join"
      (join ~left_key:"k" ~right_key:"k" (scan "r") (scan "t"));
  ]

(* ------------------------------------------------------------------ *)
(* Recovery-time conformance (MODEL012)                                *)
(* ------------------------------------------------------------------ *)

module RM = Mmdb_recovery.Recovery_manager
module RMod = Mmdb_model.Recovery_model

(* The store prices each recovery with Recovery_model.replay_seconds
   over its own observable counters; re-derive the prediction from the
   reported recover_stats and demand agreement (a tight band: both
   sides must use the same terms — this catches the two drifting
   apart).  Additionally, on the value-logged workload the parallel
   terms dominate, so recovery time must not increase with the worker
   count. *)
let recovery_time_band = band ~abs:1e-9 0.999 1.001

let check_recovery ?(seed = 7) () =
  let base =
    {
      RM.default_config with
      RM.nrecords = 200;
      records_per_page = 10;
      updates_per_txn = 4;
      n_txns = 300;
      checkpoint_every = Some 100;
      crash_after = Some 260;
      seed;
    }
  in
  let run ~logging ~workers =
    RM.run
      {
        base with
        RM.replay = { RM.default_replay with RM.workers; logging };
      }
  in
  let check_one ~label ~workers (o : RM.outcome) =
    let st = o.RM.recover_stats in
    let path = Printf.sprintf "recovery/%s/workers=%d" label workers in
    let terms =
      RMod.replay_terms ~page_io_time:10e-3 ~log_page_bytes:4096
        ~workers:st.Mmdb_recovery.Kv_store.workers
        ~snapshot_pages:st.Mmdb_recovery.Kv_store.snapshot_pages_read
        ~log_bytes:st.Mmdb_recovery.Kv_store.log_bytes_scanned
        ~local_value_ops:st.Mmdb_recovery.Kv_store.local_value_ops
        ~local_command_ops:st.Mmdb_recovery.Kv_store.local_command_ops
        ~serial_command_ops:st.Mmdb_recovery.Kv_store.barrier_ops
        ~undo_ops:st.Mmdb_recovery.Kv_store.undo_applied
        ~writeback_pages:st.Mmdb_recovery.Kv_store.pages_written_back
    in
    let invariants =
      if o.RM.consistent && o.RM.money_conserved then []
      else
        [
          D.error ~code:"MODEL012" ~path
            "recovery run violated consistency while measuring its time";
        ]
    in
    invariants
    @ check_class ~path ~kind:"recovery" ~code:"MODEL012"
        ~label:"recovery seconds" recovery_time_band
        ~predicted:(RMod.replay_seconds terms)
        ~observed:st.Mmdb_recovery.Kv_store.recovery_time
  in
  let worker_ladder = [ 1; 2; 4 ] in
  let modes =
    [
      ("value", RM.Value_logging);
      ("command", RM.Command_logging);
      ("adaptive", RM.Adaptive_logging);
    ]
  in
  List.concat_map
    (fun (label, logging) ->
      let runs =
        List.map (fun workers -> (workers, run ~logging ~workers))
          worker_ladder
      in
      let conformance =
        List.concat_map
          (fun (workers, o) -> check_one ~label ~workers o)
          runs
      in
      let monotone =
        if label <> "value" then []
        else
          let times =
            List.map
              (fun (w, (o : RM.outcome)) ->
                ( w,
                  o.RM.recover_stats.Mmdb_recovery.Kv_store.recovery_time ))
              runs
          in
          let rec pairs = function
            | (w1, t1) :: ((w2, t2) :: _ as rest) ->
              (if t2 > t1 +. 1e-9 then
                 [
                   D.error ~code:"MODEL012"
                     ~path:(Printf.sprintf "recovery/%s" label)
                     (Printf.sprintf
                        "recovery time not monotone in workers: %.6gs at \
                         W=%d vs %.6gs at W=%d"
                        t2 w2 t1 w1);
                 ]
               else [])
              (* perf_lint: the worker ladder has 3 entries *)
              @ pairs rest
            | [ _ ] | [] -> []
          in
          pairs times
      in
      conformance @ monotone)
    modes

let code_catalogue =
  [
    ("MODEL001", "observed comparisons diverge from the cost model");
    ("MODEL002", "observed hashes diverge from the cost model");
    ("MODEL003", "observed moves diverge from the cost model");
    ("MODEL004", "observed swaps diverge from the cost model");
    ("MODEL005", "observed sequential I/Os diverge from the cost model");
    ("MODEL006", "observed random I/Os diverge from the cost model");
    ("MODEL007", "observed simulated seconds diverge from the cost model");
    ("MODEL008", "optimizer chose a plan above the enumerated minimum");
    ("MODEL009", "selectivity estimate diverges from actual cardinality");
    ("MODEL010", "plan cost annotation inconsistent with its per-term ops");
    ("MODEL011", "workload outside model validity; conformance skipped");
    ("MODEL012", "recovery time diverges from the parallel-replay model");
  ]
