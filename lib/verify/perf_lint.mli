(** Static performance-hazard lint — the paper's "eliminate
    per-operation overheads" claim, enforced mechanically.

    A [compiler-libs] parsetree scan (an [Ast_iterator] over every
    expression, so it composes with any compiler version's constructor
    set) over the library sources flags accidentally-super-linear
    idioms with stable codes:

    - [PERF101] list built by tail-append ([xs @ [x]]) — O(n) copy per
      append, quadratic under accumulation (flagged everywhere: cheap
      uses rot into hot ones);
    - [PERF102] [List.nth]/[List.length] under iteration — inside a
      [for]/[while] loop, an enclosing recursive function, or a
      traversal callback ([List.iter]-family argument);
    - [PERF103] polymorphic [compare]/[Hashtbl.hash] in the hot
      directories ([lib/exec], [lib/storage], [lib/index]);
    - [PERF104] non-tail self-recursion over list-structured data: a
      [let rec] that matches a [_ :: _] pattern and calls itself (or a
      group sibling) in value-consumed position;
    - [PERF105] string concatenation ([^]) under iteration.

    [PERF100] marks a file the pass could not parse.  A finding is
    silenced by a [(* perf_lint: why *)] comment on the flagged line or
    within the two lines above it — the same textual convention as
    {!Domain_lint}'s [race_check:] whitelist; the justification text is
    echoed in the inventory. *)

type status =
  | Whitelisted of string  (** the justification comment's text *)
  | Flagged

type finding = {
  file : string;
  line : int;
  code : string;  (** the [PERF1xx] code *)
  name : string;  (** the enclosing binding *)
  construct : string;  (** e.g. ["xs @ [x]"], ["List.nth"] *)
  status : status;
}

val scan_source :
  file:string -> string -> (finding list, Mmdb_util.Diag.t) result
(** Lint one compilation unit given its source text, findings sorted by
    line.  [file] decides PERF103 applicability (hot-directory paths).
    [Error] carries a [PERF100] diagnostic when the text does not
    parse. *)

val scan_files : string list -> finding list * Mmdb_util.Diag.t list
(** Lint the given [.ml] paths; parse failures become [PERF100]
    diagnostics rather than aborting the sweep. *)

val scan_lib :
  ?root:string ->
  unit ->
  (finding list * Mmdb_util.Diag.t list, string) result
(** Lint every [.ml] under [lib/] (root located as in
    {!Lint_engine.find_root}); finding paths are reported
    root-relative. *)

val ml_files : string -> string list
(** Re-export of {!Lint_engine.ml_files}. *)

val diags_of_findings : finding list -> Mmdb_util.Diag.t list
(** One error per [Flagged] finding; whitelisted findings produce
    nothing. *)

val pp_inventory : Format.formatter -> finding list -> unit
(** The full inventory, one line per finding with its status. *)

val code_catalogue : (string * string) list
