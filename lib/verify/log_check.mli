(** Offline WAL protocol auditor.

    Replays a log-record stream and checks the write-ahead protocol the
    recovery stack depends on.  Stable error codes:

    - [LOG001] — LSNs not strictly increasing
    - [LOG002] — Update without a prior Begin for its transaction
    - [LOG003] — Commit/Abort without a prior Begin
    - [LOG004] — Update after its transaction terminated
    - [LOG005] — duplicate Begin for a transaction
    - [LOG006] — duplicate termination (second Commit/Abort)
    - [LOG007] — checkpoint nesting violation (nested [Ckpt_begin], or
      [Ckpt_end] with no checkpoint open)
    - [LOG008] — dangling [Ckpt_begin] at end of a complete log
    - [LOG101] (warning) — transaction never terminated in a complete log

    Diagnostic paths locate the offending record as ["lsn=42 txn=7"]
    (["lsn=42"] for checkpoint markers). *)

val audit :
  ?complete:bool -> Mmdb_recovery.Log_record.t list ->
  Mmdb_util.Diag.t list
(** [audit ?complete log] returns every violation found, in log order.
    [complete] (default [false]) asserts the log is a clean, untruncated
    run: dangling checkpoints become [LOG008] errors and unterminated
    transactions [LOG101] warnings.  A crash-truncated log should be
    audited with [complete:false] — losing the tail legitimately strands
    open transactions and checkpoints. *)

val ok : ?complete:bool -> Mmdb_recovery.Log_record.t list -> bool
(** No error-severity findings. *)

val code_catalogue : (string * string) list
(** [(code, one-line description)] for every code above. *)
