(** Unified invariant audit: one driver over every analyzer in the
    verification layer plus the invariant hooks the structures already
    expose.  Components are named so a report reads like a checklist.

    Structure codes: [IDX001] B-tree invariant broken, [IDX002] AVL,
    [IDX003] paged BST, [IDX004] heap property. *)

type component =
  | Btree of string * Mmdb_index.Btree.t
  | Avl of string * Mmdb_index.Avl.t
  | Paged_bst of string * Mmdb_index.Paged_bst.t
  | Heap_check of string * (unit -> bool)
      (** {!Mmdb_util.Heap} is polymorphic, so the caller closes over the
          instance: [Heap_check ("merge heap", fun () ->
          Heap.check_invariant h)] *)
  | Pool of { name : string; pool : Mmdb_storage.Buffer_pool.t;
              expect_unpinned : bool }
  | Log of { name : string; complete : bool;
             records : Mmdb_recovery.Log_record.t list }
  | Plan of { name : string; catalog : Mmdb_planner.Catalog.t;
              expr : Mmdb_planner.Algebra.expr }
  | Schedule of { name : string;
                  events : Mmdb_recovery.Schedule.event list;
                  log : Mmdb_recovery.Log_record.t list }
      (** A recorded transaction schedule (see
          {!Mmdb_recovery.Schedule} and {!Txn_check}); [log] is the full
          WAL submission stream cross-checked by the dependency auditor
          ([[]] skips those checks). *)
  | Model of { name : string; check : unit -> Mmdb_util.Diag.t list }
      (** A cost-model conformance check ({!Model_check}), thunked
          because it executes a workload: [Model { name = "model suite";
          check = fun () -> Model_check.suite_diags
          (Model_check.run_suite ()) }]. *)
  | Race of { name : string; events : Mmdb_recovery.Schedule.event list }
      (** A domain-stamped schedule replayed through the
          happens-before race detector ({!Race_check}). *)
  | Perf of { name : string; root : string option }
      (** The static performance-hazard lint ({!Perf_lint}) over
          [lib/]; [root] overrides repository-root discovery. *)
  | Exn of { name : string; root : string option }
      (** The interprocedural exception-flow and resource-discipline
          lint ({!Exn_flow}) over [lib/]; [root] overrides
          repository-root discovery. *)

val run : component -> Mmdb_util.Diag.t list
(** Audit one component. *)

val run_all : component list -> (string * Mmdb_util.Diag.t list) list
(** Audit every component, pairing each name with its findings. *)

val ok : component list -> bool
(** No error-severity finding in any component. *)

val report : Format.formatter -> (string * Mmdb_util.Diag.t list) list -> bool
(** Print one line per component ([ok] or the diagnostics) plus a summary;
    returns [true] when no component reported errors. *)

val code_catalogue : (string * string) list
(** The [IDX] codes owned by this module. *)
