module D = Mmdb_util.Diag
module E = Lint_engine

(* The shared-state rule set over {!Lint_engine}: classification of
   module-level bindings only — file discovery, parsing, whitelist
   comments and the scan drivers live in the engine.  Only
   version-stable constructors are matched (Pstr_value / Pstr_type /
   Pstr_module / Pexp_apply / Pexp_ident / Pexp_lazy /
   Pexp_constraint): the scan must compile across the CI compiler
   matrix. *)

type status =
  | Safe of string
  | Whitelisted of string
  | Per_instance
  | Flagged of string  (* RACE1xx *)

type site = {
  file : string;
  line : int;
  name : string;
  construct : string;
  status : status;
}

(* ------------------------------------------------------------------ *)
(* Expression classification                                           *)
(* ------------------------------------------------------------------ *)

type shape =
  | Mutable_value of string  (* ref / Hashtbl.create / ... *)
  | Lazy_value
  | Rng_value of string  (* shared global generator *)
  | Safe_value of string  (* Atomic.make / Mutex.create *)
  | Plain

let rec classify_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (inner, _) -> classify_expr inner
  | Parsetree.Pexp_lazy _ -> Lazy_value
  | Parsetree.Pexp_apply (f, _) -> (
    match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> (
      let path = Longident.flatten txt in
      let dotted = String.concat "." path in
      match path with
      | _ when List.exists (fun m -> m = "Xorshift") path ->
        Rng_value dotted
      | [ "ref" ] -> Mutable_value "ref"
      | [ m; "make" ] when m = "Atomic" -> Safe_value dotted
      | [ m; "create" ] when m = "Mutex" -> Safe_value dotted
      | [ m; "create" ]
        when m = "Hashtbl" || m = "Buffer" || m = "Queue" || m = "Stack" ->
        Mutable_value dotted
      | [ m; f ]
        when (m = "Array" || m = "Bytes")
             && (f = "make" || f = "create" || f = "init") ->
        Mutable_value dotted
      | _ -> Plain)
    | _ -> Plain)
  | _ -> Plain

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)
(* ------------------------------------------------------------------ *)

let rec scan_structure ~file ~lines acc (items : Parsetree.structure) =
  (* perf_lint: AST recursion; depth is bounded by module nesting *)
  List.fold_left (scan_item ~file ~lines) acc items

and scan_item ~file ~lines acc (item : Parsetree.structure_item) =
  match item.Parsetree.pstr_desc with
  | Parsetree.Pstr_value (_, bindings) ->
    List.fold_left
      (fun acc (vb : Parsetree.value_binding) ->
        let loc = vb.Parsetree.pvb_loc in
        let start_line = loc.Location.loc_start.Lexing.pos_lnum in
        let end_line = loc.Location.loc_end.Lexing.pos_lnum in
        let name = E.pattern_name vb.Parsetree.pvb_pat in
        let add construct code safe =
          let status =
            match safe with
            | Some why -> Safe why
            | None -> (
              match
                E.justification ~marker:"race_check:" ~lines ~start_line
                  ~end_line
              with
              | Some why -> Whitelisted why
              | None -> Flagged code)
          in
          { file; line = start_line; name; construct; status } :: acc
        in
        match classify_expr vb.Parsetree.pvb_expr with
        | Mutable_value c -> add c "RACE101" None
        | Lazy_value -> add "lazy" "RACE102" None
        | Rng_value c -> add c "RACE103" None
        (* perf_lint: one-shot label per reported binding *)
        | Safe_value c -> add c "" (Some (c ^ " is domain-safe"))
        | Plain -> acc)
      acc bindings
  | Parsetree.Pstr_type (_, decls) ->
    List.fold_left
      (fun acc (d : Parsetree.type_declaration) ->
        match d.Parsetree.ptype_kind with
        | Parsetree.Ptype_record labels ->
          let mut =
            List.filter_map
              (fun (l : Parsetree.label_declaration) ->
                match l.Parsetree.pld_mutable with
                | Asttypes.Mutable -> Some l.Parsetree.pld_name.Location.txt
                | Asttypes.Immutable -> None)
              labels
          in
          if mut = [] then acc
          else
            {
              file;
              line = d.Parsetree.ptype_loc.Location.loc_start.Lexing.pos_lnum;
              name = d.Parsetree.ptype_name.Location.txt;
              construct =
                Printf.sprintf "mutable field%s %s"
                  (match mut with [ _ ] -> "" | _ -> "s")
                  (String.concat ", " mut);
              status = Per_instance;
            }
            :: acc
        | _ -> acc)
      acc decls
  | Parsetree.Pstr_module mb -> scan_module ~file ~lines acc mb
  | Parsetree.Pstr_recmodule mbs ->
    (* perf_lint: AST recursion; depth is bounded by module nesting *)
    List.fold_left (scan_module ~file ~lines) acc mbs
  | _ -> acc

and scan_module ~file ~lines acc (mb : Parsetree.module_binding) =
  match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure items -> scan_structure ~file ~lines acc items
  | _ -> acc

let scan_source ~file source =
  let lines = E.lines_of_source source in
  match E.parse_structure ~file source with
  | Ok items -> Ok (List.rev (scan_structure ~file ~lines [] items))
  | Error _ ->
    Error
      (D.error ~code:"RACE100" ~path:file
         "source failed to parse (lint could not inventory this file)")

let ml_files = E.ml_files
let scan_files files = E.scan_files ~scan:scan_source files

let scan_lib ?root () =
  E.scan_lib ?root ~what:"Domain_lint" ~scan:scan_source
    ~refile:(fun strip s -> { s with file = strip s.file })
    ()

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let diags_of_sites sites =
  List.filter_map
    (fun s ->
      match s.status with
      | Flagged code ->
        let what =
          match code with
          | "RACE102" ->
            "top-level lazy value (forcing from two domains is unsafe)"
          | "RACE103" ->
            "shared global random generator (streams must be per-domain, \
             passed by value)"
          | _ -> "top-level mutable state shared by every domain"
        in
        Some
          (D.error ~code
             ~path:(Printf.sprintf "%s:%d" s.file s.line)
             (Printf.sprintf
                "%s: `%s' (%s) — wrap in Atomic/Mutex, make it per-domain, \
                 or justify with a (* race_check: ... *) comment"
                what s.name s.construct))
      | Safe _ | Whitelisted _ | Per_instance -> None)
    sites

let status_label = function
  | Safe why -> "safe: " ^ why
  | Whitelisted why -> "whitelisted: " ^ why
  | Per_instance -> "per-instance (audited dynamically by Race_check)"
  | Flagged code -> "FLAGGED " ^ code

let pp_inventory ppf sites =
  if sites = [] then
    Format.fprintf ppf "no module-level mutable state found@."
  else
    List.iter
      (fun s ->
        Format.fprintf ppf "%-34s %-28s %s@."
          (Printf.sprintf "%s:%d" s.file s.line)
          (Printf.sprintf "%s = %s" s.name s.construct)
          (status_label s.status))
      sites

let code_catalogue =
  [
    ("RACE100", "source failed to parse; lint inventory incomplete");
    ( "RACE101",
      "unjustified top-level mutable value (ref/Hashtbl/Buffer/Queue/Array)"
    );
    ("RACE102", "unjustified top-level lazy value");
    ("RACE103", "shared global random generator (must be per-domain)");
  ]
