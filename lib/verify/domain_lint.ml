module D = Mmdb_util.Diag

(* The lint walks the compiler's own parsetree (compiler-libs), so it
   sees exactly what the type-checker sees.  Only version-stable
   constructors are matched (Pstr_value / Pstr_type / Pstr_module /
   Pexp_apply / Pexp_ident / Pexp_lazy / Pexp_constraint): the scan must
   compile across the CI compiler matrix. *)

type status =
  | Safe of string
  | Whitelisted of string
  | Per_instance
  | Flagged of string  (* RACE1xx *)

type site = {
  file : string;
  line : int;
  name : string;
  construct : string;
  status : status;
}

(* ------------------------------------------------------------------ *)
(* Expression classification                                           *)
(* ------------------------------------------------------------------ *)

type shape =
  | Mutable_value of string  (* ref / Hashtbl.create / ... *)
  | Lazy_value
  | Rng_value of string  (* shared global generator *)
  | Safe_value of string  (* Atomic.make / Mutex.create *)
  | Plain

let rec classify_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (inner, _) -> classify_expr inner
  | Parsetree.Pexp_lazy _ -> Lazy_value
  | Parsetree.Pexp_apply (f, _) -> (
    match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> (
      let path = Longident.flatten txt in
      let dotted = String.concat "." path in
      match path with
      | _ when List.exists (fun m -> m = "Xorshift") path ->
        Rng_value dotted
      | [ "ref" ] -> Mutable_value "ref"
      | [ m; "make" ] when m = "Atomic" -> Safe_value dotted
      | [ m; "create" ] when m = "Mutex" -> Safe_value dotted
      | [ m; "create" ]
        when m = "Hashtbl" || m = "Buffer" || m = "Queue" || m = "Stack" ->
        Mutable_value dotted
      | [ m; f ]
        when (m = "Array" || m = "Bytes")
             && (f = "make" || f = "create" || f = "init") ->
        Mutable_value dotted
      | _ -> Plain)
    | _ -> Plain)
  | _ -> Plain

(* ------------------------------------------------------------------ *)
(* Whitelist comments                                                  *)
(* ------------------------------------------------------------------ *)

(* Comments are not in the parsetree; the justification convention is
   textual: a [(* race_check: why this is domain-safe *)] comment on the
   binding itself or within the two lines above it. *)
let whitelist_of ~lines ~start_line ~end_line =
  let lo = max 1 (start_line - 2) and hi = min (Array.length lines) end_line in
  let marker = "race_check:" in
  let found = ref None in
  for i = lo to hi do
    if !found = None then begin
      let l = lines.(i - 1) in
      match
        (* no Str in the image: a plain substring scan *)
        let n = String.length l and m = String.length marker in
        let rec go j =
          if j + m > n then None
          else if String.sub l j m = marker then Some (j + m)
          else go (j + 1)
        in
        go 0
      with
      | Some j ->
        let rest = String.sub l j (String.length l - j) in
        (* trim the closing "*)" when the comment ends on this line *)
        let rec close k =
          if k + 2 > String.length rest then rest
          else if String.sub rest k 2 = "*)" then String.sub rest 0 k
          else close (k + 1)
        in
        found := Some (String.trim (close 0))
      | None -> ()
    end
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)
(* ------------------------------------------------------------------ *)

let pattern_name (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> txt
  | _ -> "_"

let rec scan_structure ~file ~lines acc (items : Parsetree.structure) =
  List.fold_left (scan_item ~file ~lines) acc items

and scan_item ~file ~lines acc (item : Parsetree.structure_item) =
  match item.Parsetree.pstr_desc with
  | Parsetree.Pstr_value (_, bindings) ->
    List.fold_left
      (fun acc (vb : Parsetree.value_binding) ->
        let loc = vb.Parsetree.pvb_loc in
        let start_line = loc.Location.loc_start.Lexing.pos_lnum in
        let end_line = loc.Location.loc_end.Lexing.pos_lnum in
        let name = pattern_name vb.Parsetree.pvb_pat in
        let add construct code safe =
          let status =
            match safe with
            | Some why -> Safe why
            | None -> (
              match whitelist_of ~lines ~start_line ~end_line with
              | Some why -> Whitelisted why
              | None -> Flagged code)
          in
          { file; line = start_line; name; construct; status } :: acc
        in
        match classify_expr vb.Parsetree.pvb_expr with
        | Mutable_value c -> add c "RACE101" None
        | Lazy_value -> add "lazy" "RACE102" None
        | Rng_value c -> add c "RACE103" None
        | Safe_value c -> add c "" (Some (c ^ " is domain-safe"))
        | Plain -> acc)
      acc bindings
  | Parsetree.Pstr_type (_, decls) ->
    List.fold_left
      (fun acc (d : Parsetree.type_declaration) ->
        match d.Parsetree.ptype_kind with
        | Parsetree.Ptype_record labels ->
          let mut =
            List.filter_map
              (fun (l : Parsetree.label_declaration) ->
                match l.Parsetree.pld_mutable with
                | Asttypes.Mutable -> Some l.Parsetree.pld_name.Location.txt
                | Asttypes.Immutable -> None)
              labels
          in
          if mut = [] then acc
          else
            {
              file;
              line = d.Parsetree.ptype_loc.Location.loc_start.Lexing.pos_lnum;
              name = d.Parsetree.ptype_name.Location.txt;
              construct =
                Printf.sprintf "mutable field%s %s"
                  (if List.length mut = 1 then "" else "s")
                  (String.concat ", " mut);
              status = Per_instance;
            }
            :: acc
        | _ -> acc)
      acc decls
  | Parsetree.Pstr_module mb -> scan_module ~file ~lines acc mb
  | Parsetree.Pstr_recmodule mbs ->
    List.fold_left (scan_module ~file ~lines) acc mbs
  | _ -> acc

and scan_module ~file ~lines acc (mb : Parsetree.module_binding) =
  match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure items -> scan_structure ~file ~lines acc items
  | _ -> acc

let scan_source ~file source =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | items -> Ok (List.rev (scan_structure ~file ~lines [] items))
  | exception _ ->
    Error
      (D.error ~code:"RACE100" ~path:file
         "source failed to parse (lint could not inventory this file)")

(* ------------------------------------------------------------------ *)
(* Filesystem drivers                                                  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc e ->
        let p = Filename.concat dir e in
        if Sys.is_directory p then acc @ ml_files p
        else if Filename.check_suffix e ".ml" then acc @ [ p ]
        else acc)
      [] entries
  | exception Sys_error _ -> []

(* Locate the library sources: the scan runs both from the repository
   root (the CLI) and from inside dune's sandbox (_build/default/test,
   where the alias rule materializes the sources), so walk upward until
   a directory holding both [dune-project] and [lib/] appears. *)
let find_root () =
  let rec up dir n =
    if n > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

let scan_files files =
  List.fold_left
    (fun (sites, diags) f ->
      match scan_source ~file:f (read_file f) with
      | Ok s -> (sites @ s, diags)
      | Error d -> (sites, diags @ [ d ]))
    ([], []) files

let scan_lib ?root () =
  let root = match root with Some r -> Some r | None -> find_root () in
  match root with
  | None -> Error "Domain_lint: could not locate lib/ (no dune-project found)"
  | Some r ->
    let files = ml_files (Filename.concat r "lib") in
    (* Report paths relative to the root so findings are stable across
       checkouts and sandboxes. *)
    let strip f =
      let pre = r ^ Filename.dir_sep in
      let n = String.length pre in
      if String.length f > n && String.sub f 0 n = pre then
        String.sub f n (String.length f - n)
      else f
    in
    let sites, diags = scan_files files in
    Ok
      ( List.map (fun s -> { s with file = strip s.file }) sites,
        List.map
          (fun (d : D.t) -> { d with D.path = strip d.D.path })
          diags )

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let diags_of_sites sites =
  List.filter_map
    (fun s ->
      match s.status with
      | Flagged code ->
        let what =
          match code with
          | "RACE102" ->
            "top-level lazy value (forcing from two domains is unsafe)"
          | "RACE103" ->
            "shared global random generator (streams must be per-domain, \
             passed by value)"
          | _ -> "top-level mutable state shared by every domain"
        in
        Some
          (D.error ~code
             ~path:(Printf.sprintf "%s:%d" s.file s.line)
             (Printf.sprintf
                "%s: `%s' (%s) — wrap in Atomic/Mutex, make it per-domain, \
                 or justify with a (* race_check: ... *) comment"
                what s.name s.construct))
      | Safe _ | Whitelisted _ | Per_instance -> None)
    sites

let status_label = function
  | Safe why -> "safe: " ^ why
  | Whitelisted why -> "whitelisted: " ^ why
  | Per_instance -> "per-instance (audited dynamically by Race_check)"
  | Flagged code -> "FLAGGED " ^ code

let pp_inventory ppf sites =
  if sites = [] then
    Format.fprintf ppf "no module-level mutable state found@."
  else
    List.iter
      (fun s ->
        Format.fprintf ppf "%-34s %-28s %s@."
          (Printf.sprintf "%s:%d" s.file s.line)
          (Printf.sprintf "%s = %s" s.name s.construct)
          (status_label s.status))
      sites

let code_catalogue =
  [
    ("RACE100", "source failed to parse; lint inventory incomplete");
    ( "RACE101",
      "unjustified top-level mutable value (ref/Hashtbl/Buffer/Queue/Array)"
    );
    ("RACE102", "unjustified top-level lazy value");
    ("RACE103", "shared global random generator (must be per-domain)");
  ]
