(* Shared machinery for the source-level lint passes (Domain_lint,
   Perf_lint): file discovery, repository-root location, whitelist-
   comment parsing and the scan drivers.  Each pass is a thin rule set
   — a [scan_source] function — over this engine.

   The passes walk the compiler's own parsetree (compiler-libs), so they
   see exactly what the type-checker sees.  Only version-stable
   constructors may be matched (and [Ast_iterator.default_iterator] used
   for everything else): the scans must compile across the CI compiler
   matrix. *)

module D = Mmdb_util.Diag

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lines_of_source source = Array.of_list (String.split_on_char '\n' source)

(* Sorted depth-first order, accumulator-built: the engine must itself
   pass Perf_lint (no tail-appends). *)
let files_with_suffix suffix dir =
  let rec walk acc dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc e ->
          let p = Filename.concat dir e in
          if Sys.is_directory p then walk acc p
          else if Filename.check_suffix e suffix then p :: acc
          else acc)
        acc entries
    | exception Sys_error _ -> acc
  in
  List.rev (walk [] dir)

let ml_files dir = files_with_suffix ".ml" dir
let mli_files dir = files_with_suffix ".mli" dir

let module_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Locate the library sources: the scans run both from the repository
   root (the CLI) and from inside dune's sandbox (_build/default/test,
   where the alias rules materialize the sources), so walk upward until
   a directory holding both [dune-project] and [lib/] appears. *)
let find_root () =
  let rec up dir n =
    if n > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

(* Comments are not in the parsetree; the justification convention is
   textual: a [(* <marker> why *)] comment inside the [start_line ..
   end_line] window or within the two lines above it. *)
let justification ~marker ~lines ~start_line ~end_line =
  let lo = max 1 (start_line - 2) and hi = min (Array.length lines) end_line in
  let found = ref None in
  for i = lo to hi do
    if !found = None then begin
      let l = lines.(i - 1) in
      match
        (* no Str in the image: a plain substring scan *)
        let n = String.length l and m = String.length marker in
        let rec go j =
          if j + m > n then None
          else if String.sub l j m = marker then Some (j + m)
          else go (j + 1)
        in
        go 0
      with
      | Some j ->
        let rest = String.sub l j (String.length l - j) in
        (* trim the closing "*)" when the comment ends on this line *)
        let rec close k =
          if k + 2 > String.length rest then rest
          else if String.sub rest k 2 = "*)" then String.sub rest 0 k
          else close (k + 1)
        in
        found := Some (String.trim (close 0))
      | None -> ()
    end
  done;
  !found

let pattern_name (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> txt
  | _ -> "_"

let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | items -> Ok items
  | exception e -> Error e

let parse_interface ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.interface lexbuf with
  | items -> Ok items
  | exception e -> Error e

(* Only top-level [val] names: values exported through nested module
   signatures keep their own module path and are resolved (or dropped)
   by the interprocedural passes' name heuristics. *)
let exported_values items =
  List.filter_map
    (fun (si : Parsetree.signature_item) ->
      match si.Parsetree.psig_desc with
      | Parsetree.Psig_value vd -> Some vd.Parsetree.pval_name.Asttypes.txt
      | _ -> None)
    items

let scan_files ~scan files =
  let sites, diags =
    List.fold_left
      (fun (sites, diags) f ->
        match scan ~file:f (read_file f) with
        | Ok s -> (List.rev_append s sites, diags)
        | Error d -> (sites, d :: diags))
      ([], []) files
  in
  (List.rev sites, List.rev diags)

(* Report paths relative to the root so findings are stable across
   checkouts and sandboxes. *)
let strip_prefix ~root f =
  let pre = root ^ Filename.dir_sep in
  let n = String.length pre in
  if String.length f > n && String.sub f 0 n = pre then
    String.sub f n (String.length f - n)
  else f

let locate_root ?root ~what () =
  match (match root with Some r -> Some r | None -> find_root ()) with
  | None -> Error (what ^ ": could not locate lib/ (no dune-project found)")
  | Some r -> Ok r

let lib_sources ?root ~what () =
  match locate_root ?root ~what () with
  | Error m -> Error m
  | Ok r ->
    let dir = Filename.concat r "lib" in
    let load files =
      List.map (fun f -> (strip_prefix ~root:r f, read_file f)) files
    in
    Ok (load (ml_files dir), load (mli_files dir))

let scan_lib ?root ~what ~scan ~refile () =
  let root = match root with Some r -> Some r | None -> find_root () in
  match root with
  | None ->
    Error (what ^ ": could not locate lib/ (no dune-project found)")
  | Some r ->
    let files = ml_files (Filename.concat r "lib") in
    let strip f = strip_prefix ~root:r f in
    let sites, diags = scan_files ~scan files in
    Ok
      ( List.map (refile strip) sites,
        List.map
          (fun (d : D.t) -> { d with D.path = strip d.D.path })
          diags )
