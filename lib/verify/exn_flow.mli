(** Interprocedural exception-flow and resource-discipline lint.

    The fault subsystem's guarantees hold only if [Fault.Io_error],
    [Fault.Unrecoverable] and [Kv_store.Crashed_during_recovery]
    propagate to the recovery/torture harness, and if every
    [Buffer_pool.pin] / [Lock_manager.acquire] is released on every
    path.  This pass checks both statically, whole-program: it collects
    one summary per top-level binding across [lib/] (exceptions
    possibly raised, with handler subtraction; calls; resource events),
    closes the summaries over the call graph (idents resolved by the
    enclosing module for unqualified names and by the last two dotted
    components after [module X = Path] alias expansion), and reports
    with stable codes:

    - [EXN101] a swallowing handler: a catch-all whose protected body
      can raise a fault-family exception per the interprocedural
      summaries (a handler that re-raises its binding is exempt), or a
      [try lookup with Not_found -> e] over a lookup with a total
      [_opt] twin whose handler raises nothing;
    - [EXN102] an exception escaping an exported function of a module
      under [lib/storage], [lib/recovery], [lib/core], [lib/fault] or
      [lib/planner] whose [.mli] has no [@raise <Exn>] line for it
      (generic stdlib exceptions are exempt — EXN103/EXN105 own the
      partial/stringly cases);
    - [EXN103] a partial stdlib call ([List.hd]/[List.tl]/[Option.get])
      in a function reachable from a recovery/exec entry point (an
      exported function of a module under [lib/recovery] or
      [lib/exec]);
    - [EXN104] [raise v] of a handler-bound exception — a re-raise
      that drops the original backtrace;
    - [EXN105] [failwith] reachable from a recovery/exec entry point;
    - [RES101] [Buffer_pool.pin] with no [unpin] in the same function;
    - [RES102] [Lock_manager.acquire] with no release-set call
      ([precommit]/[release_abort]/[finalize]);
    - [RES103] an acquire/release pair whose span contains a
      possibly-raising site and no [Fun.protect];
    - [RES104] a release with no acquire in the same function.

    [EXN100] marks a file (implementation or interface) the pass could
    not parse.  A finding is silenced by an [(* exn_flow: why *)]
    comment on the flagged line or within the two lines above it — the
    same textual convention as the [race_check:]/[perf_lint:]
    whitelists.  The RES rules judge one function at a time and are
    blind inside the resource's own module; protocols that hand the
    release to another function (2PL holds locks to commit/abort) are
    justified, not rewritten. *)

type status =
  | Whitelisted of string  (** the justification comment's text *)
  | Flagged

type finding = {
  file : string;
  line : int;
  code : string;  (** the [EXN1xx]/[RES1xx] code *)
  name : string;  (** the enclosing function, [Module.fn] *)
  construct : string;  (** what was found, with its witness *)
  status : status;
}

val analyze :
  mls:(string * string) list ->
  mlis:(string * string) list ->
  finding list * Mmdb_util.Diag.t list
(** Whole-program analysis over [(path, source)] pairs — the [.mli]s
    supply export lists and [@raise] declarations.  Findings are sorted
    by (file, line, code); the diagnostics are [EXN100] parse failures
    (the rest of the sweep still runs). *)

val scan_lib :
  ?root:string ->
  unit ->
  ((finding list * Mmdb_util.Diag.t list), string) result
(** {!analyze} over every [.ml]/[.mli] under [lib/] (root located as in
    {!Lint_engine.find_root}); paths are reported root-relative. *)

val describe : string -> string
(** One-line description of a code, used in diagnostics. *)

val diags_of_findings : finding list -> Mmdb_util.Diag.t list
(** One error per [Flagged] finding; whitelisted findings produce
    nothing. *)

val pp_inventory : Format.formatter -> finding list -> unit
(** The full inventory, one line per finding with its status. *)

val code_catalogue : (string * string) list
