(** Static shared-state lint — the compile-time half of the
    domain-safety gate in front of the multicore engine.

    A [compiler-libs] parsetree scan over the library sources
    inventories every piece of module-level mutable state: top-level
    [ref] cells, [Hashtbl]/[Buffer]/[Queue]/[Stack] instances,
    [Array]/[Bytes] allocations, [lazy] values, shared global PRNG
    streams, and record types declaring [mutable] fields.  Each site is
    classified:

    - {b safe} — built on [Atomic.make] or [Mutex.create];
    - {b whitelisted} — carries a [(* race_check: why *)] justification
      comment on the binding or within the two lines above it;
    - {b per-instance} — a type {e declaring} mutable fields (instances
      may be domain-local; the dynamic {!Race_check} audits them);
    - {b flagged} — everything else, with a stable code:
      [RACE101] unjustified top-level mutable value,
      [RACE102] unjustified top-level [lazy],
      [RACE103] shared global random generator (streams must be passed
      per-domain by value).  [RACE100] marks a file the lint could not
      parse.

    The emitted inventory is the pre-flight checklist for any PR that
    introduces [Domain.spawn]: every flagged site must become
    domain-safe (or justified) before real parallelism lands. *)

type status =
  | Safe of string  (** reason, e.g. ["Atomic.make is domain-safe"] *)
  | Whitelisted of string  (** the justification comment's text *)
  | Per_instance
      (** mutable-field type declaration; instances audited dynamically *)
  | Flagged of string  (** the [RACE1xx] code *)

type site = {
  file : string;
  line : int;
  name : string;  (** the binding or type name *)
  construct : string;  (** e.g. ["ref"], ["Hashtbl.create"], ["lazy"] *)
  status : status;
}

val scan_source :
  file:string -> string -> (site list, Mmdb_util.Diag.t) result
(** Lint one compilation unit given its source text.  [Error] carries a
    [RACE100] diagnostic when the text does not parse. *)

val scan_files : string list -> site list * Mmdb_util.Diag.t list
(** Lint the given [.ml] paths; parse failures become [RACE100]
    diagnostics rather than aborting the sweep. *)

val scan_lib :
  ?root:string -> unit -> (site list * Mmdb_util.Diag.t list, string) result
(** Locate the repository root (walking up from the current directory
    until a [dune-project] with a [lib/] sibling appears — works both
    from a checkout and from inside dune's sandbox), then lint every
    [.ml] under [lib/].  Site paths are reported root-relative. *)

val ml_files : string -> string list
(** All [.ml] files under a directory, sorted (deterministic sweeps). *)

val diags_of_sites : site list -> Mmdb_util.Diag.t list
(** One error per [Flagged] site; safe / whitelisted / per-instance
    sites produce nothing. *)

val pp_inventory : Format.formatter -> site list -> unit
(** The full inventory, one line per site with its classification. *)

val code_catalogue : (string * string) list
