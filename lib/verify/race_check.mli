(** Happens-before race detector over recorded transaction schedules —
    the dynamic half of the domain-safety gate in front of the multicore
    engine (ROADMAP item 1).

    A {!Mmdb_recovery.Schedule} trace stamped with domains (see
    [Schedule.event.domain]) is replayed through a FastTrack-style
    vector-clock analysis: events of one domain are program-ordered by
    trace position, and cross-domain order exists only through lock
    edges — a [Release] of key [k] happens-before every later
    [Grant]/[Wake] of [k].  Unordered conflicting accesses to one key
    are data races.  An Eraser-style lockset refinement runs alongside
    as a fallback: a key touched by two or more domains whose candidate
    lockset (the intersection of every accessor's held locks) is empty
    is unguarded even if the vector clocks happened to order the
    particular interleaving recorded.

    Multiversion accesses ([Schedule.event.ver] set) are judged by
    version discipline instead of locks: the timestamp allocator is the
    synchronisation point, so a version installed {e before} a snapshot
    began is exactly what the snapshot is supposed to read.  A write
    races only when it installs a version at-or-below a snapshot that is
    {e still active} — between the snapshot's first and last recorded
    read — where the scan may observe state from both sides of the
    install.  A clean MVCC trace therefore audits race-free without any
    lock events.

    Codes (stable):
    - [RACE001] write/write race — concurrent unordered writes to a key
    - [RACE002] read/write race — unordered read and write of a key
    - [RACE003] unguarded shared access — empty candidate lockset across
      ≥ 2 domains (Eraser)
    - [RACE004] lock protocol break — release without a matching acquire
    - [RACE005] snapshot race — version installed at-or-below a
      concurrent active snapshot

    Single-domain traces (every event on domain 0, the historical
    emitters) are totally ordered and audit clean by construction. *)

val audit : Mmdb_recovery.Schedule.event list -> Mmdb_util.Diag.t list
(** Replay the trace and report every race, deduplicated per (code,
    key).  All findings are error severity. *)

val code_catalogue : (string * string) list
(** The [RACE0xx] dynamic-detector codes with one-line descriptions
    (the [RACE1xx] static-lint codes live in {!Domain_lint}). *)
