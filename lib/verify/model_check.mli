(** Cost-model conformance analyzer and optimizer optimality lint.

    Three static/dynamic analyses over the Section 3 cost model, each
    reporting stable [MODEL0xx] diagnostics:

    {ol
    {- {b Conformance}: derive an operator's predicted per-term cost
       ({!Mmdb_model.Join_model.ops}) symbolically, execute it under
       counter instrumentation ({!Mmdb_planner.Executor.run_traced} /
       {!Mmdb_exec.Op_stats}), and flag any counter class whose observed
       value falls outside that operator's declared tolerance band
       (MODEL001–MODEL007).  Predictions are evaluated at the {e actual}
       input sizes so estimation error cannot contaminate conformance.}
    {- {b Optimality lint}: exhaustively enumerate the bounded plan
       space (all algorithm assignments over the plan's joins, priced
       with the same analytic model the optimizer used) and flag chosen
       plans above the enumerated minimum (MODEL008), plus cost
       annotations that do not re-price to their own per-term breakdown
       (MODEL010).}
    {- {b Selectivity}: compare the Selinger-style cardinality estimate
       against the executed result (MODEL009).}}

    Workloads the model does not cover (build larger than probe, memory
    below [√(|S|·F)]) are reported as MODEL011 warnings and skipped
    rather than force-fitted. *)

(** {1 Tolerance policy} *)

type band = { lo : float; hi : float; abs : float }
(** Accept [observed ∈ [lo·predicted − abs, hi·predicted + abs]].
    The ratio part states the constant-factor room an idealized formula
    allows its implementation; [abs] absorbs per-partition rounding. *)

val band : ?abs:float -> float -> float -> band
(** [band ?abs lo hi]; [abs] defaults to [0.]. *)

type tolerance = {
  comps : band;
  hashes : band;
  moves : band;
  swaps : band;
  seq_ios : band;
  rand_ios : band;
  seconds : band;
}

val tolerance_for : string -> tolerance
(** Declared default bands for an operator kind (the strings of
    {!Mmdb_planner.Executor.node_obs}[.kind]: ["join:hybrid"],
    ["order-by"], ["scan:r"], …).  See DESIGN.md for the rationale
    behind each entry. *)

val scale_tolerance : float -> tolerance -> tolerance
(** Widen ([> 1]) or tighten ([< 1]) every band: [lo/f], [hi·f],
    [abs·f]. *)

(** {1 Conformance} *)

val ops_of_counters : Mmdb_storage.Counters.t -> Mmdb_model.Join_model.ops
(** Project observed counters onto the model's six cost classes
    (sequential reads and writes merge into [seq_ios], likewise
    random). *)

type node_report = {
  path : string;  (** plan location, ["$"], ["$.0"], … *)
  kind : string;  (** operator kind as traced by the executor *)
  predicted : Mmdb_model.Join_model.ops;
  observed : Mmdb_model.Join_model.ops;
  predicted_seconds : float;
  observed_seconds : float;
  diags : Mmdb_util.Diag.t list;
}
(** One plan node's predicted-vs-observed comparison. *)

val check_plan :
  ?tolerance_scale:float ->
  Mmdb_planner.Catalog.t ->
  Mmdb_planner.Optimizer.config ->
  Mmdb_planner.Algebra.expr ->
  node_report list
(** Plan the expression, execute it traced, and check every node's
    observed counters against the model's prediction at the node's
    actual input sizes.  [tolerance_scale] widens (> 1) or tightens
    (< 1) every declared band. *)

val check_planned :
  ?tolerance_scale:float ->
  Mmdb_planner.Catalog.t ->
  Mmdb_planner.Optimizer.config ->
  Mmdb_planner.Optimizer.plan ->
  node_report list
(** {!check_plan} for an already-built physical plan. *)

val check_join :
  ?tolerance_scale:float ->
  Mmdb_exec.Joiner.algorithm ->
  mem_pages:int ->
  fudge:float ->
  Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t ->
  Mmdb_util.Diag.t list
(** Conformance for one join algorithm driven directly (independent of
    what the optimizer would choose): build on the first relation, probe
    the second. *)

val report_diags : node_report list -> Mmdb_util.Diag.t list

val pp_report : Format.formatter -> node_report -> unit

(** {1 Optimality lint} *)

val lint_optimality :
  ?eps:float ->
  Mmdb_planner.Catalog.t ->
  Mmdb_planner.Optimizer.config ->
  Mmdb_planner.Algebra.expr ->
  Mmdb_util.Diag.t list
(** Enumerate every algorithm assignment over the plan's joins (priced
    at each join's recorded workload and memory), and report MODEL008
    when the chosen plan costs more than [(1 + eps)] times the
    enumerated minimum, MODEL010 when [estimated_cost] disagrees with
    [seconds (estimated_ops)].  Exhaustive up to 8 joins ([4^8]
    assignments); larger plans fall back to per-join minima, which bound
    the same optimum because join costs are additive. *)

(** {1 Selectivity} *)

val check_selectivity :
  ?band:band ->
  Mmdb_planner.Catalog.t ->
  Mmdb_planner.Algebra.expr ->
  actual:int ->
  Mmdb_util.Diag.t list
(** MODEL009 when the cardinality estimate misses [actual] beyond
    [band] (default: a wide [0.05–20× ± 64] band — Selinger magic
    numbers are coarse by design; the check catches broken statistics,
    not imprecision). *)

(** {1 Seeded suite} *)

type case = {
  name : string;
  reports : node_report list;  (** per-node conformance, when traced *)
  diags : Mmdb_util.Diag.t list;  (** lint/selectivity/direct-join diags *)
}

val run_suite :
  ?seed:int -> ?tolerance_scale:float -> ?enumerate:bool -> unit ->
  case list
(** Build a seeded three-table corpus (24/60/12 pages of 100-byte
    tuples) and run conformance over every operator kind — all four
    join algorithms resident and spilled, planned pipelines (filters,
    multi-join, aggregation, distinct, order-by, set operations) — plus
    the optimality lint ([enumerate = false] skips it) and selectivity
    checks. *)

val case_diags : case -> Mmdb_util.Diag.t list
val suite_diags : case list -> Mmdb_util.Diag.t list

val suite_ok : case list -> bool
(** No error-severity diagnostics anywhere in the suite. *)

(** {1 Recovery-time conformance} *)

val check_recovery : ?seed:int -> unit -> Mmdb_util.Diag.t list
(** MODEL012: run a seeded crash-recovery workload under each logging
    mode (value / command / adaptive) at 1, 2, and 4 replay workers;
    demand (a) the reported recovery time re-derives exactly from the
    run's own counters via {!Mmdb_model.Recovery_model.replay_terms}
    (tight band — catches the store and the model drifting apart),
    (b) recovery stays consistent while being measured, and (c) on the
    value-logged workload recovery time is non-increasing in the worker
    count (the parallel terms dominate there). *)

val code_catalogue : (string * string) list
(** Every MODEL code with a one-line description. *)
