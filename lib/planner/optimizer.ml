module S = Mmdb_storage
module E = Mmdb_exec
module JM = Mmdb_model.Join_model

type config = {
  mem_pages : int;
  fudge : float;
  allow_hash : bool;
}

let default_config = { mem_pages = 256; fudge = 1.2; allow_hash = true }

type join_choice = {
  algorithm : E.Joiner.algorithm;
  swapped : bool;
  est_build_pages : int;
  est_probe_pages : int;
  est_mem_pages : int;
  est_workload : JM.workload;
  est_ops : JM.ops;
  est_seconds : float;
}

type plan =
  | P_scan of string
  | P_filter of { input : plan; pred : Algebra.predicate }
  | P_project of { input : plan; columns : string list; distinct : bool }
  | P_join of {
      left : plan;
      right : plan;
      left_key : string;
      right_key : string;
      choice : join_choice;
    }
  | P_aggregate of {
      input : plan;
      group_by : string;
      aggs : Mmdb_exec.Aggregate.spec list;
    }
  | P_order_by of { input : plan; column : string; descending : bool }
  | P_set_op of { op : Algebra.set_op; left : plan; right : plan }

let unknown_column what name =
  invalid_arg (Printf.sprintf "Optimizer: unknown %s %s" what name)

let rec output_schema catalog = function
  | Algebra.Scan name -> S.Relation.schema (Catalog.find catalog name)
  | Algebra.Select { input; pred } ->
    let schema = output_schema catalog input in
    (* Validate the column exists. *)
    (try ignore (S.Schema.column_index schema pred.Algebra.column)
     with Not_found ->
       unknown_column "column" pred.Algebra.column);
    schema
  | Algebra.Project { input; columns; _ } ->
    E.Projection.project_schema (output_schema catalog input) ~cols:columns
  | Algebra.Join { left; right; left_key; right_key } ->
    let ls = output_schema catalog left and rs = output_schema catalog right in
    let rekey schema key =
      try S.Schema.with_key schema key
      with Not_found -> unknown_column "join column" key
    in
    Mmdb_exec.Join_common.result_schema
      ~r_schema:(rekey ls left_key)
      ~s_schema:(rekey rs right_key)
  | Algebra.Aggregate { input; group_by; aggs } ->
    let schema = output_schema catalog input in
    let rekeyed =
      try S.Schema.with_key schema group_by
      with Not_found -> unknown_column "column" group_by
    in
    E.Aggregate.result_schema rekeyed aggs
  | Algebra.Order_by { input; column; _ } -> (
    let schema = output_schema catalog input in
    try S.Schema.with_key schema column
    with Not_found -> unknown_column "column" column)
  | Algebra.Set_op { left; right; _ } ->
    let ls = output_schema catalog left and rs = output_schema catalog right in
    if S.Schema.tuple_width ls <> S.Schema.tuple_width rs then
      invalid_arg "Optimizer: set operation over incompatible tuple widths";
    ls

let schema_has schema column =
  match S.Schema.column_index schema column with
  | _ -> true
  | exception Not_found -> false

let strip prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

(* Push each selection as far down the tree as its column allows. *)
let rec push_down catalog expr =
  match expr with
  | Algebra.Scan _ -> expr
  | Algebra.Select { input; pred } -> (
    let input = push_down catalog input in
    match input with
    | Algebra.Join { left; right; left_key; right_key } -> (
      let ls = output_schema catalog left in
      let rs = output_schema catalog right in
      let try_side prefix side_schema =
        match strip prefix pred.Algebra.column with
        | Some base when schema_has side_schema base ->
          Some { pred with Algebra.column = base }
        | Some _ | None ->
          if
            (* Unprefixed reference that uniquely matches one side. *)
            schema_has side_schema pred.Algebra.column
          then Some pred
          else None
      in
      match (try_side "r_" ls, try_side "s_" rs) with
      | Some p, None ->
        push_down catalog
          (Algebra.Join
             {
               left = Algebra.Select { input = left; pred = p };
               right;
               left_key;
               right_key;
             })
      | None, Some p ->
        push_down catalog
          (Algebra.Join
             {
               left;
               right = Algebra.Select { input = right; pred = p };
               left_key;
               right_key;
             })
      | Some _, Some _ | None, None -> Algebra.Select { input; pred })
    | _ -> Algebra.Select { input; pred })
  | Algebra.Project { input; columns; distinct } ->
    Algebra.Project { input = push_down catalog input; columns; distinct }
  | Algebra.Join { left; right; left_key; right_key } ->
    Algebra.Join
      {
        left = push_down catalog left;
        right = push_down catalog right;
        left_key;
        right_key;
      }
  | Algebra.Aggregate { input; group_by; aggs } ->
    Algebra.Aggregate { input = push_down catalog input; group_by; aggs }
  | Algebra.Order_by { input; column; descending } ->
    Algebra.Order_by { input = push_down catalog input; column; descending }
  | Algebra.Set_op { op; left; right } ->
    Algebra.Set_op
      { op; left = push_down catalog left; right = push_down catalog right }

let tuples_per_page_of catalog expr =
  let schema = output_schema catalog expr in
  (* Page size comes from the first base relation's disk. *)
  let page_size =
    match Algebra.base_relations expr with
    | name :: _ -> S.Disk.page_size (S.Relation.disk (Catalog.find catalog name))
    | [] -> 4096
  in
  S.Page.capacity ~page_size ~tuple_width:(S.Schema.tuple_width schema)

let est_pages catalog expr =
  max 1 (Selectivity.estimated_pages catalog expr
           ~tuples_per_page:(tuples_per_page_of catalog expr))

let choose_join catalog cfg left right =
  let lp = est_pages catalog left and rp = est_pages catalog right in
  let swapped = rp < lp in
  let build, probe = if swapped then (right, left) else (left, right) in
  let build_pages = min lp rp and probe_pages = max lp rp in
  let workload =
    {
      JM.r_pages = build_pages;
      JM.s_pages = probe_pages;
      JM.r_tuples_per_page = tuples_per_page_of catalog build;
      JM.s_tuples_per_page = tuples_per_page_of catalog probe;
      JM.cost = { S.Cost.table2 with S.Cost.fudge = cfg.fudge };
    }
  in
  let m = max cfg.mem_pages (JM.min_memory workload) in
  (* Hybrid first: on cost ties (e.g. everything in memory, where hybrid
     and simple coincide) the paper's preferred algorithm wins. *)
  let price ops = (ops, JM.seconds workload.JM.cost ops) in
  let candidates =
    if cfg.allow_hash then
      [
        (E.Joiner.Hybrid_hash_join, price (JM.hybrid_hash_ops workload ~m));
        (E.Joiner.Grace_hash_join, price (JM.grace_hash_ops workload ~m));
        (E.Joiner.Simple_hash_join, price (JM.simple_hash_ops workload ~m));
        (E.Joiner.Sort_merge_join, price (JM.sort_merge_ops workload ~m));
      ]
    else
      [ (E.Joiner.Sort_merge_join, price (JM.sort_merge_ops workload ~m)) ]
  in
  let algorithm, (est_ops, est_seconds) =
    (* Strictly-better-by-margin keeps hybrid on floating-point ties
       (hybrid and simple compute identical costs in different summation
       orders when everything fits in memory). *)
    match candidates with
    | [] -> invalid_arg "Optimizer: empty join-candidate list"
    | first :: rest ->
      List.fold_left
        (fun ((_, (_, bc)) as best) ((_, (_, c)) as cand) ->
          if c < bc *. (1.0 -. 1e-9) then cand else best)
        first rest
  in
  {
    algorithm;
    swapped;
    est_build_pages = build_pages;
    est_probe_pages = probe_pages;
    est_mem_pages = m;
    est_workload = workload;
    est_ops;
    est_seconds;
  }

let plan catalog cfg expr =
  let expr = push_down catalog expr in
  let rec go = function
    | Algebra.Scan name -> P_scan name
    | Algebra.Select { input; pred } -> P_filter { input = go input; pred }
    | Algebra.Project { input; columns; distinct } ->
      P_project { input = go input; columns; distinct }
    | Algebra.Join { left; right; left_key; right_key } ->
      let choice = choose_join catalog cfg left right in
      P_join { left = go left; right = go right; left_key; right_key; choice }
    | Algebra.Aggregate { input; group_by; aggs } ->
      P_aggregate { input = go input; group_by; aggs }
    | Algebra.Order_by { input; column; descending } ->
      P_order_by { input = go input; column; descending }
    | Algebra.Set_op { op; left; right } ->
      P_set_op { op; left = go left; right = go right }
  in
  go expr

let rec estimated_cost = function
  | P_scan _ -> 0.0
  | P_filter { input; _ } | P_project { input; _ } | P_aggregate { input; _ }
  | P_order_by { input; _ } ->
    estimated_cost input
  | P_join { left; right; choice; _ } ->
    choice.est_seconds +. estimated_cost left +. estimated_cost right
  | P_set_op { left; right; _ } ->
    estimated_cost left +. estimated_cost right

let rec estimated_ops = function
  | P_scan _ -> JM.zero_ops
  | P_filter { input; _ } | P_project { input; _ } | P_aggregate { input; _ }
  | P_order_by { input; _ } ->
    estimated_ops input
  | P_join { left; right; choice; _ } ->
    JM.add_ops choice.est_ops
      (JM.add_ops (estimated_ops left) (estimated_ops right))
  | P_set_op { left; right; _ } ->
    JM.add_ops (estimated_ops left) (estimated_ops right)

let estimated_pages = est_pages

let rec join_choices = function
  | P_scan _ -> []
  | P_filter { input; _ } | P_project { input; _ } | P_aggregate { input; _ }
  | P_order_by { input; _ } ->
    join_choices input
  | P_join { left; right; choice; _ } ->
    choice :: (join_choices left @ join_choices right)
  | P_set_op { left; right; _ } -> join_choices left @ join_choices right

let explain plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make indent ' ' in
    match p with
    | P_scan name -> Buffer.add_string buf (Printf.sprintf "%sscan %s\n" pad name)
    | P_filter { input; pred } ->
      Buffer.add_string buf
        (Printf.sprintf "%sfilter %s\n" pad pred.Algebra.column);
      go (indent + 2) input
    | P_project { input; columns; distinct } ->
      Buffer.add_string buf
        (Printf.sprintf "%sproject%s [%s]\n" pad
           (if distinct then " distinct" else "")
           (String.concat ", " columns));
      go (indent + 2) input
    | P_join { left; right; left_key; right_key; choice } ->
      Buffer.add_string buf
        (Printf.sprintf
           "%sjoin (%s) %s=%s build=%s pages=%d/%d est=%.3fs\n" pad
           (E.Joiner.name choice.algorithm)
           left_key right_key
           (if choice.swapped then "right" else "left")
           choice.est_build_pages choice.est_probe_pages choice.est_seconds);
      go (indent + 2) left;
      go (indent + 2) right
    | P_aggregate { input; group_by; aggs } ->
      Buffer.add_string buf
        (Printf.sprintf "%saggregate by %s (%d aggs)\n" pad group_by
           (* perf_lint: explain printer; one length per aggregate node *)
           (List.length aggs));
      go (indent + 2) input
    | P_order_by { input; column; descending } ->
      Buffer.add_string buf
        (Printf.sprintf "%sorder by %s%s\n" pad column
           (if descending then " desc" else ""));
      go (indent + 2) input
    | P_set_op { op; left; right } ->
      let name =
        match op with
        | Algebra.Union -> "union"
        | Algebra.Intersect -> "intersect"
        | Algebra.Except -> "except"
      in
      Buffer.add_string buf (Printf.sprintf "%s%s\n" pad name);
      go (indent + 2) left;
      go (indent + 2) right
  in
  go 0 plan;
  Buffer.contents buf
