(** A small SQL front-end over the Section 4 planner.

    Grammar (keywords case-insensitive):
    {v
    query   ::= select ((UNION | INTERSECT | EXCEPT) select)*
                [ORDER BY col [ASC|DESC]]
    select  ::= SELECT [DISTINCT] items FROM table
                (JOIN table ON col = col)*
                [WHERE pred (AND pred)*] [GROUP BY col]
    items   ::= '*' | item (',' item)*
    item    ::= column | COUNT("*") | SUM(col) | MIN(col) | MAX(col) | AVG(col)
    pred    ::= column op literal      op ::= = | <> | != | < | <= | > | >=
    literal ::= integer | 'string'
    v}

    Joins are left-deep; after a join, columns of the left input are
    prefixed [r_] and of the right [s_], per
    {!Optimizer.output_schema}.  With GROUP BY, the select list must be
    the group column followed by aggregate items. *)

type statement =
  | Query of Algebra.expr
  | Insert of { table : string; rows : Mmdb_storage.Tuple.value list list }
      (** [INSERT INTO t VALUES (..), (..)] *)
  | Delete of { table : string; preds : Algebra.predicate list }
      (** [DELETE FROM t [WHERE ...]]; empty [preds] = delete all *)
  | Update of {
      table : string;
      sets : (string * Mmdb_storage.Tuple.value) list;
      preds : Algebra.predicate list;
    }  (** [UPDATE t SET c = lit [, ...] [WHERE ...]] *)
  | Create_table of { table : string; schema : Mmdb_storage.Schema.t }
      (** [CREATE TABLE t (c INT [PRIMARY KEY], c STRING(w), ...)] — the
          key defaults to the first column *)
  | Drop_table of string  (** [DROP TABLE t] *)

val parse : string -> (Algebra.expr, string) result
(** Parse a query into the algebra; [Error msg] pinpoints the offending
    token. *)

val parse_checked :
  Catalog.t -> string -> (Algebra.expr, Mmdb_util.Diag.t list) result
(** Parse {e and} statically validate against the catalog with
    {!Plan_check}.  Lexer/parser failures surface as a single [SQL001]
    diagnostic; well-parsed but ill-typed queries carry the checker's
    [PLAN...] codes.  [Ok expr] guarantees the expression executes
    without schema/type errors (warnings do not block). *)

val parse_exn : string -> Algebra.expr
(** @raise Invalid_argument on parse errors. *)

val parse_statement : string -> (statement, string) result
(** Parse a query {e or} DML statement. *)

val parse_statement_exn : string -> statement
(** @raise Invalid_argument on parse errors. *)
