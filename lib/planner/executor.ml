module S = Mmdb_storage
module E = Mmdb_exec

let temp_counter = ref 0

let temp_name prefix =
  incr temp_counter;
  Printf.sprintf "%s#%d" prefix !temp_counter

let disk_of catalog plan =
  let rec first_scan = function
    | Optimizer.P_scan name -> Some name
    | Optimizer.P_filter { input; _ }
    | Optimizer.P_project { input; _ }
    | Optimizer.P_aggregate { input; _ } -> first_scan input
    | Optimizer.P_order_by { input; _ } -> first_scan input
    | Optimizer.P_set_op { left; right; _ } -> (
      match first_scan left with Some n -> Some n | None -> first_scan right)
    | Optimizer.P_join { left; right; _ } -> (
      match first_scan left with Some n -> Some n | None -> first_scan right)
  in
  match first_scan plan with
  | Some name -> S.Relation.disk (Catalog.find catalog name)
  | None -> invalid_arg "Executor: plan references no base relation"

let rekey rel key =
  let schema = S.Relation.schema rel in
  if S.Schema.key_index schema = S.Schema.column_index schema key then rel
  else S.Relation.with_schema rel (S.Schema.with_key schema key)

let rec run catalog cfg plan =
  let disk = disk_of catalog plan in
  match plan with
  | Optimizer.P_scan name -> Catalog.find catalog name
  | Optimizer.P_filter { input; pred } ->
    let src = run catalog cfg input in
    let schema = S.Relation.schema src in
    let out =
      S.Relation.create ~disk ~name:(temp_name "filter") ~schema
    in
    S.Relation.iter_tuples_nocharge src (fun tuple ->
        if Algebra.eval_predicate schema pred tuple then
          S.Relation.append_nocharge out tuple);
    S.Relation.seal out;
    out
  | Optimizer.P_project { input; columns; distinct } ->
    let src = run catalog cfg input in
    if distinct then
      E.Projection.distinct ~mem_pages:cfg.Optimizer.mem_pages
        ~fudge:cfg.Optimizer.fudge ~cols:columns src
    else begin
      let schema = S.Relation.schema src in
      let out_schema = E.Projection.project_schema schema ~cols:columns in
      let out =
        S.Relation.create ~disk ~name:(temp_name "project") ~schema:out_schema
      in
      let widths =
        List.map
          (fun c ->
            let i = S.Schema.column_index schema c in
            (S.Schema.offset schema i, (S.Schema.column_at schema i).S.Schema.width))
          columns
      in
      let total = S.Schema.tuple_width out_schema in
      S.Relation.iter_tuples_nocharge src (fun tuple ->
          let row = Bytes.make total '\000' in
          let dst = ref 0 in
          List.iter
            (fun (off, w) ->
              Bytes.blit tuple off row !dst w;
              dst := !dst + w)
            widths;
          S.Relation.append_nocharge out row);
      S.Relation.seal out;
      out
    end
  | Optimizer.P_join { left; right; left_key; right_key; choice } ->
    let lrel = rekey (run catalog cfg left) left_key in
    let rrel = rekey (run catalog cfg right) right_key in
    let build, probe, build_is_left =
      if choice.Optimizer.swapped then (rrel, lrel, false)
      else (lrel, rrel, true)
    in
    let l_schema = S.Relation.schema lrel in
    let r_schema = S.Relation.schema rrel in
    let out_schema =
      E.Join_common.result_schema ~r_schema:l_schema ~s_schema:r_schema
    in
    let out = S.Relation.create ~disk ~name:(temp_name "join") ~schema:out_schema in
    let emit build_tup probe_tup =
      let left_tup, right_tup =
        if build_is_left then (build_tup, probe_tup) else (probe_tup, build_tup)
      in
      S.Relation.append_nocharge out
        (E.Join_common.concat_tuples ~r_schema:l_schema ~s_schema:r_schema
           left_tup right_tup)
    in
    ignore
      (E.Joiner.run choice.Optimizer.algorithm
         ~mem_pages:cfg.Optimizer.mem_pages ~fudge:cfg.Optimizer.fudge build
         probe emit);
    S.Relation.seal out;
    out
  | Optimizer.P_aggregate { input; group_by; aggs } ->
    let src = rekey (run catalog cfg input) group_by in
    E.Aggregate.hybrid ~mem_pages:cfg.Optimizer.mem_pages
      ~fudge:cfg.Optimizer.fudge src aggs
  | Optimizer.P_set_op { op; left; right } ->
    let l = run catalog cfg left and r = run catalog cfg right in
    let f =
      match op with
      | Algebra.Union -> E.Set_ops.union ?seed:None
      | Algebra.Intersect -> E.Set_ops.intersection ?seed:None
      | Algebra.Except -> E.Set_ops.difference ?seed:None
    in
    f ~mem_pages:cfg.Optimizer.mem_pages ~fudge:cfg.Optimizer.fudge l r
  | Optimizer.P_order_by { input; column; descending } ->
    let src = rekey (run catalog cfg input) column in
    let sorted = E.External_sort.sort ~mem_pages:cfg.Optimizer.mem_pages src in
    if not descending then sorted
    else begin
      (* Reverse scan materialised back-to-front. *)
      let acc = ref [] in
      S.Relation.iter_tuples_nocharge sorted (fun t -> acc := t :: !acc);
      let out =
        S.Relation.create ~disk ~name:(temp_name "order_desc")
          ~schema:(S.Relation.schema sorted)
      in
      List.iter (S.Relation.append_nocharge out) !acc;
      S.Relation.free_pages sorted;
      S.Relation.seal out;
      out
    end

let query catalog cfg expr = run catalog cfg (Optimizer.plan catalog cfg expr)

let query_checked catalog cfg expr =
  match Plan_check.check_schema catalog expr with
  | Error diags -> Error diags
  | Ok _ -> Ok (query catalog cfg expr)

let rows rel =
  let schema = S.Relation.schema rel in
  let acc = ref [] in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      acc := S.Tuple.decode schema tuple :: !acc);
  List.rev !acc
