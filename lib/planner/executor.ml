module S = Mmdb_storage
module E = Mmdb_exec
module O = Mmdb_overload.Overload

(* Deadline check at an operator boundary: raised between nodes, when no
   intermediate result is mid-construction and nothing is pinned, so an
   expired query aborts with the pool clean by construction. *)
let check_deadline env d =
  let now = S.Sim_clock.now env.S.Env.clock in
  if O.Deadline.expired d ~now then begin
    O.note_code env.S.Env.counters.S.Counters.ovld "OVLD005";
    O.shed ~code:"OVLD005" ~site:"exec.node"
      (Printf.sprintf "query deadline exceeded by %.6f s at an operator \
                       boundary"
         (now -. O.Deadline.expires d))
  end

(* race_check: planner-local temp-name tick, single-domain; a duplicate
   temp name would be cosmetic, not a safety issue *)
let temp_counter = ref 0

let temp_name prefix =
  incr temp_counter;
  Printf.sprintf "%s#%d" prefix !temp_counter

let base_relation catalog plan =
  let rec first_scan = function
    | Optimizer.P_scan name -> Some name
    | Optimizer.P_filter { input; _ }
    | Optimizer.P_project { input; _ }
    | Optimizer.P_aggregate { input; _ } -> first_scan input
    | Optimizer.P_order_by { input; _ } -> first_scan input
    | Optimizer.P_set_op { left; right; _ } -> (
      match first_scan left with Some n -> Some n | None -> first_scan right)
    | Optimizer.P_join { left; right; _ } -> (
      match first_scan left with Some n -> Some n | None -> first_scan right)
  in
  match first_scan plan with
  | Some name -> Catalog.find catalog name
  | None -> invalid_arg "Executor: plan references no base relation"

let disk_of catalog plan = S.Relation.disk (base_relation catalog plan)

let rekey rel key =
  let schema = S.Relation.schema rel in
  if S.Schema.key_index schema = S.Schema.column_index schema key then rel
  else S.Relation.with_schema rel (S.Schema.with_key schema key)

(* One plan node's own work; children execute through [recurse] so callers
   can interpose instrumentation (see {!run_traced}). *)
let run_node ~recurse catalog cfg plan =
  let disk = disk_of catalog plan in
  match plan with
  | Optimizer.P_scan name -> Catalog.find catalog name
  | Optimizer.P_filter { input; pred } ->
    let src = recurse catalog cfg input in
    let schema = S.Relation.schema src in
    let out =
      S.Relation.create ~disk ~name:(temp_name "filter") ~schema
    in
    S.Relation.iter_tuples_nocharge src (fun tuple ->
        if Algebra.eval_predicate schema pred tuple then
          S.Relation.append_nocharge out tuple);
    S.Relation.seal out;
    out
  | Optimizer.P_project { input; columns; distinct } ->
    let src = recurse catalog cfg input in
    if distinct then
      E.Projection.distinct ~mem_pages:cfg.Optimizer.mem_pages
        ~fudge:cfg.Optimizer.fudge ~cols:columns src
    else begin
      let schema = S.Relation.schema src in
      let out_schema = E.Projection.project_schema schema ~cols:columns in
      let out =
        S.Relation.create ~disk ~name:(temp_name "project") ~schema:out_schema
      in
      let widths =
        List.map
          (fun c ->
            let i = S.Schema.column_index schema c in
            (S.Schema.offset schema i, (S.Schema.column_at schema i).S.Schema.width))
          columns
      in
      let total = S.Schema.tuple_width out_schema in
      S.Relation.iter_tuples_nocharge src (fun tuple ->
          let row = Bytes.make total '\000' in
          let dst = ref 0 in
          List.iter
            (fun (off, w) ->
              Bytes.blit tuple off row !dst w;
              dst := !dst + w)
            widths;
          S.Relation.append_nocharge out row);
      S.Relation.seal out;
      out
    end
  | Optimizer.P_join { left; right; left_key; right_key; choice } ->
    let lrel = rekey (recurse catalog cfg left) left_key in
    let rrel = rekey (recurse catalog cfg right) right_key in
    let build, probe, build_is_left =
      if choice.Optimizer.swapped then (rrel, lrel, false)
      else (lrel, rrel, true)
    in
    let l_schema = S.Relation.schema lrel in
    let r_schema = S.Relation.schema rrel in
    let out_schema =
      E.Join_common.result_schema ~r_schema:l_schema ~s_schema:r_schema
    in
    let out = S.Relation.create ~disk ~name:(temp_name "join") ~schema:out_schema in
    let emit build_tup probe_tup =
      let left_tup, right_tup =
        if build_is_left then (build_tup, probe_tup) else (probe_tup, build_tup)
      in
      S.Relation.append_nocharge out
        (E.Join_common.concat_tuples ~r_schema:l_schema ~s_schema:r_schema
           left_tup right_tup)
    in
    ignore
      (E.Joiner.run choice.Optimizer.algorithm
         ~mem_pages:cfg.Optimizer.mem_pages ~fudge:cfg.Optimizer.fudge build
         probe emit);
    S.Relation.seal out;
    out
  | Optimizer.P_aggregate { input; group_by; aggs } ->
    let src = rekey (recurse catalog cfg input) group_by in
    E.Aggregate.hybrid ~mem_pages:cfg.Optimizer.mem_pages
      ~fudge:cfg.Optimizer.fudge src aggs
  | Optimizer.P_set_op { op; left; right } ->
    (* Sequential lets: the left child must execute first so traced paths
       ($.0 = left) are deterministic. *)
    let l = recurse catalog cfg left in
    let r = recurse catalog cfg right in
    let f =
      match op with
      | Algebra.Union -> E.Set_ops.union ?seed:None
      | Algebra.Intersect -> E.Set_ops.intersection ?seed:None
      | Algebra.Except -> E.Set_ops.difference ?seed:None
    in
    f ~mem_pages:cfg.Optimizer.mem_pages ~fudge:cfg.Optimizer.fudge l r
  | Optimizer.P_order_by { input; column; descending } ->
    let src = rekey (recurse catalog cfg input) column in
    let sorted = E.External_sort.sort ~mem_pages:cfg.Optimizer.mem_pages src in
    if not descending then sorted
    else begin
      (* Reverse scan materialised back-to-front. *)
      let acc = ref [] in
      S.Relation.iter_tuples_nocharge sorted (fun t -> acc := t :: !acc);
      let out =
        S.Relation.create ~disk ~name:(temp_name "order_desc")
          ~schema:(S.Relation.schema sorted)
      in
      List.iter (S.Relation.append_nocharge out) !acc;
      S.Relation.free_pages sorted;
      S.Relation.seal out;
      out
    end

let rec run_plain catalog cfg plan = run_node ~recurse:run_plain catalog cfg plan

let run ?deadline catalog cfg plan =
  match deadline with
  | None -> run_plain catalog cfg plan
  | Some d ->
    let env = S.Relation.env (base_relation catalog plan) in
    let rec go catalog cfg plan =
      check_deadline env d;
      run_node ~recurse:go catalog cfg plan
    in
    go catalog cfg plan

type node_obs = {
  path : string;
  kind : string;
  output_tuples : int;
  output_pages : int;
  output_tuples_per_page : int;
  total : S.Counters.t;
  self : S.Counters.t;
  total_seconds : float;
  self_seconds : float;
}

let kind_of = function
  | Optimizer.P_scan name -> "scan:" ^ name
  | Optimizer.P_filter _ -> "filter"
  | Optimizer.P_project { distinct; _ } ->
    if distinct then "project-distinct" else "project"
  | Optimizer.P_join { choice; _ } ->
    "join:" ^ E.Joiner.name choice.Optimizer.algorithm
  | Optimizer.P_aggregate _ -> "aggregate"
  | Optimizer.P_order_by _ -> "order-by"
  | Optimizer.P_set_op { op; _ } -> (
    match op with
    | Algebra.Union -> "union"
    | Algebra.Intersect -> "intersect"
    | Algebra.Except -> "except")

let run_traced ?deadline catalog cfg plan =
  let env = S.Relation.env (base_relation catalog plan) in
  let acc = ref [] in
  let rec go path plan =
    (match deadline with Some d -> check_deadline env d | None -> ());
    let before = S.Counters.snapshot env.S.Env.counters in
    let t0 = S.Env.elapsed env in
    let child_diffs = ref [] in
    let child_seconds = ref 0.0 in
    let idx = ref 0 in
    let recurse _catalog _cfg child =
      let cb = S.Counters.snapshot env.S.Env.counters in
      let ct0 = S.Env.elapsed env in
      let r = go (Printf.sprintf "%s.%d" path !idx) child in
      incr idx;
      child_diffs :=
        S.Counters.diff ~after:env.S.Env.counters ~before:cb :: !child_diffs;
      child_seconds := !child_seconds +. (S.Env.elapsed env -. ct0);
      r
    in
    let out = run_node ~recurse catalog cfg plan in
    let total = S.Counters.diff ~after:env.S.Env.counters ~before in
    let total_seconds = S.Env.elapsed env -. t0 in
    (* The node's own work is the total minus every child's activity. *)
    let self =
      List.fold_left
        (fun a c -> S.Counters.diff ~after:a ~before:c)
        total !child_diffs
    in
    acc :=
      {
        path;
        kind = kind_of plan;
        output_tuples = S.Relation.ntuples out;
        output_pages = S.Relation.npages out;
        output_tuples_per_page = S.Relation.tuples_per_page out;
        total;
        self;
        total_seconds;
        self_seconds = total_seconds -. !child_seconds;
      }
      :: !acc;
    out
  in
  let result = go "$" plan in
  (result, List.rev !acc)

let query ?deadline catalog cfg expr =
  run ?deadline catalog cfg (Optimizer.plan catalog cfg expr)

let query_checked ?deadline catalog cfg expr =
  match Plan_check.check_schema catalog expr with
  | Error diags -> Error diags
  | Ok _ -> Ok (query ?deadline catalog cfg expr)

let rows rel =
  let schema = S.Relation.schema rel in
  let acc = ref [] in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      acc := S.Tuple.decode schema tuple :: !acc);
  List.rev !acc
