module S = Mmdb_storage
module E = Mmdb_exec

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Star
  | Comma
  | Lparen
  | Rparen
  | Op of Algebra.cmp_op
  | Eof

let keyword s = String.uppercase_ascii s

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go i =
    if i >= n then Ok (List.rev (Eof :: !tokens))
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '*' ->
        tokens := Star :: !tokens;
        go (i + 1)
      | ',' ->
        tokens := Comma :: !tokens;
        go (i + 1)
      | '(' ->
        tokens := Lparen :: !tokens;
        go (i + 1)
      | ')' ->
        tokens := Rparen :: !tokens;
        go (i + 1)
      | '=' ->
        tokens := Op Algebra.Eq :: !tokens;
        go (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
        tokens := Op Algebra.Ne :: !tokens;
        go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        tokens := Op Algebra.Ne :: !tokens;
        go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
        tokens := Op Algebra.Le :: !tokens;
        go (i + 2)
      | '<' ->
        tokens := Op Algebra.Lt :: !tokens;
        go (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        tokens := Op Algebra.Ge :: !tokens;
        go (i + 2)
      | '>' ->
        tokens := Op Algebra.Gt :: !tokens;
        go (i + 1)
      | '\'' ->
        let rec find j =
          if j >= n then error "unterminated string literal"
          else if input.[j] = '\'' then begin
            tokens := Str (String.sub input (i + 1) (j - i - 1)) :: !tokens;
            go (j + 1)
          end
          else find (j + 1)
        in
        find (i + 1)
      | '0' .. '9' | '-' ->
        let j = ref i in
        if input.[!j] = '-' then incr j;
        let start_digits = !j in
        while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do
          incr j
        done;
        if !j = start_digits then error "bad number at %S" (String.sub input i 1)
        else begin
          tokens := Int (int_of_string (String.sub input i (!j - i))) :: !tokens;
          go !j
        end
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref i in
        while
          !j < n
          && (match input.[!j] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
             | _ -> false)
        do
          incr j
        done;
        tokens := Ident (String.sub input i (!j - i)) :: !tokens;
        go !j
      | c -> error "unexpected character %C" c
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type select_item = Col of string | Agg of E.Aggregate.spec

type statement =
  | Query of Algebra.expr
  | Insert of { table : string; rows : S.Tuple.value list list }
  | Delete of { table : string; preds : Algebra.predicate list }
  | Update of {
      table : string;
      sets : (string * S.Tuple.value) list;
      preds : Algebra.predicate list;
    }
  | Create_table of { table : string; schema : S.Schema.t }
  | Drop_table of string

exception Parse_error of string

(* exn_flow: Parse_error only leaves the [fail] closure, called under the
   [with Parse_error m -> Error m] handler at this function's tail. *)
let parse_statement input =
  match tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
    let stream = ref tokens in
    let peek () = match !stream with t :: _ -> t | [] -> Eof in
    let advance () =
      match !stream with _ :: rest -> stream := rest | [] -> ()
    in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
    let describe = function
      | Ident s -> Printf.sprintf "identifier %S" s
      | Int v -> Printf.sprintf "integer %d" v
      | Str s -> Printf.sprintf "string %S" s
      | Star -> "'*'"
      | Comma -> "','"
      | Lparen -> "'('"
      | Rparen -> "')'"
      | Op _ -> "comparison operator"
      | Eof -> "end of input"
    in
    let expect_ident what =
      match peek () with
      | Ident s ->
        advance ();
        s
      | t -> fail "expected %s, found %s" what (describe t)
    in
    let expect_keyword kw =
      match peek () with
      | Ident s when keyword s = kw -> advance ()
      | t -> fail "expected %s, found %s" kw (describe t)
    in
    let accept_keyword kw =
      match peek () with
      | Ident s when keyword s = kw ->
        advance ();
        true
      | _ -> false
    in
    let parse_item () =
      match peek () with
      | Ident s when
          List.mem (keyword s) [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]
          && List.length !stream > 1
          && (match !stream with _ :: Lparen :: _ -> true | _ -> false) ->
        advance ();
        advance ();
        (* '(' *)
        let agg =
          match keyword s with
          | "COUNT" -> (
            match peek () with
            | Star ->
              advance ();
              E.Aggregate.Count
            | _ ->
              (* COUNT(col) counts group members too *)
              let _ = expect_ident "column" in
              E.Aggregate.Count)
          | "SUM" -> E.Aggregate.Sum (expect_ident "column")
          | "MIN" -> E.Aggregate.Min (expect_ident "column")
          | "MAX" -> E.Aggregate.Max (expect_ident "column")
          | "AVG" -> E.Aggregate.Avg (expect_ident "column")
          | _ -> assert false
        in
        (match peek () with
        | Rparen -> advance ()
        | t -> fail "expected ')', found %s" (describe t));
        Agg agg
      | Ident s ->
        advance ();
        Col s
      | t -> fail "expected a column or aggregate, found %s" (describe t)
    in
    let parse_items () =
      match peek () with
      | Star ->
        advance ();
        None
      | _ ->
        let rec more acc =
          let item = parse_item () in
          match peek () with
          | Comma ->
            advance ();
            more (item :: acc)
          | _ -> List.rev (item :: acc)
        in
        Some (more [])
    in
    let parse_predicate () =
      let column = expect_ident "column" in
      let op =
        match peek () with
        | Op o ->
          advance ();
          o
        | t -> fail "expected a comparison operator, found %s" (describe t)
      in
      let value =
        match peek () with
        | Int v ->
          advance ();
          S.Tuple.VInt v
        | Str s ->
          advance ();
          S.Tuple.VStr s
        | t -> fail "expected a literal, found %s" (describe t)
      in
      { Algebra.column; Algebra.op; Algebra.value }
    in
    try
      let parse_literal () =
        match peek () with
        | Int v ->
          advance ();
          S.Tuple.VInt v
        | Str str ->
          advance ();
          S.Tuple.VStr str
        | t -> fail "expected a literal, found %s" (describe t)
      in
      let parse_where_clause () =
        if accept_keyword "WHERE" then begin
          let rec preds acc =
            let p = parse_predicate () in
            if accept_keyword "AND" then preds (p :: acc)
            else List.rev (p :: acc)
          in
          preds []
        end
        else []
      in
      let expect_eof () =
        match peek () with
        | Eof -> ()
        | t -> fail "unexpected %s after the end of the statement" (describe t)
      in
      let parse_insert () =
        (* INSERT INTO t VALUES (..), (..) *)
        expect_keyword "INTO";
        let table = expect_ident "table name" in
        expect_keyword "VALUES";
        let parse_row () =
          (match peek () with
          | Lparen -> advance ()
          | t -> fail "expected '(', found %s" (describe t));
          let rec vals acc =
            let v = parse_literal () in
            match peek () with
            | Comma ->
              advance ();
              vals (v :: acc)
            | Rparen ->
              advance ();
              List.rev (v :: acc)
            | t -> fail "expected ',' or ')', found %s" (describe t)
          in
          vals []
        in
        let rec rows acc =
          let row = parse_row () in
          if peek () = Comma then begin
            advance ();
            rows (row :: acc)
          end
          else List.rev (row :: acc)
        in
        let all = rows [] in
        expect_eof ();
        Insert { table; rows = all }
      in
      let parse_delete () =
        expect_keyword "FROM";
        let table = expect_ident "table name" in
        let preds = parse_where_clause () in
        expect_eof ();
        Delete { table; preds }
      in
      let parse_update () =
        let table = expect_ident "table name" in
        expect_keyword "SET";
        let rec sets acc =
          let col = expect_ident "column" in
          (match peek () with
          | Op Algebra.Eq -> advance ()
          | t -> fail "expected '=', found %s" (describe t));
          let v = parse_literal () in
          if peek () = Comma then begin
            advance ();
            sets ((col, v) :: acc)
          end
          else List.rev ((col, v) :: acc)
        in
        let sets = sets [] in
        let preds = parse_where_clause () in
        expect_eof ();
        Update { table; sets; preds }
      in
      let parse_create () =
        expect_keyword "TABLE";
        let table = expect_ident "table name" in
        (match peek () with
        | Lparen -> advance ()
        | t -> fail "expected '(', found %s" (describe t));
        let key = ref None in
        let rec cols acc =
          let cname = expect_ident "column name" in
          let col =
            match peek () with
            | Ident s when keyword s = "INT" ->
              advance ();
              S.Schema.column cname S.Schema.Int
            | Ident s when keyword s = "STRING" ->
              advance ();
              (match peek () with
              | Lparen -> advance ()
              | t -> fail "expected '(', found %s" (describe t));
              let width =
                match peek () with
                | Int w when w > 0 ->
                  advance ();
                  w
                | t -> fail "expected a positive width, found %s" (describe t)
              in
              (match peek () with
              | Rparen -> advance ()
              | t -> fail "expected ')', found %s" (describe t));
              S.Schema.column ~width cname S.Schema.Fixed_string
            | t -> fail "expected INT or STRING(n), found %s" (describe t)
          in
          if accept_keyword "PRIMARY" then begin
            expect_keyword "KEY";
            match !key with
            | None -> key := Some cname
            | Some _ -> fail "multiple PRIMARY KEY columns"
          end;
          match peek () with
          | Comma ->
            advance ();
            cols (col :: acc)
          | Rparen ->
            advance ();
            List.rev (col :: acc)
          | t -> fail "expected ',' or ')', found %s" (describe t)
        in
        let columns = cols [] in
        expect_eof ();
        let key =
          match !key with
          | Some k -> k
          | None -> (
            match columns with
            | (c : S.Schema.column) :: _ -> c.S.Schema.name
            | [] -> fail "empty column list")
        in
        Create_table { table; schema = S.Schema.create ~key columns }
      in
      let parse_drop () =
        expect_keyword "TABLE";
        let table = expect_ident "table name" in
        expect_eof ();
        Drop_table table
      in
      match peek () with
      | Ident s when keyword s = "CREATE" ->
        advance ();
        Ok (parse_create ())
      | Ident s when keyword s = "DROP" ->
        advance ();
        Ok (parse_drop ())
      | Ident s when keyword s = "INSERT" ->
        advance ();
        Ok (parse_insert ())
      | Ident s when keyword s = "DELETE" ->
        advance ();
        Ok (parse_delete ())
      | Ident s when keyword s = "UPDATE" ->
        advance ();
        Ok (parse_update ())
      | _ ->
      let parse_select () =
      expect_keyword "SELECT";
      let distinct = accept_keyword "DISTINCT" in
      let items = parse_items () in
      expect_keyword "FROM";
      let base = expect_ident "table name" in
      let from = ref (Algebra.scan base) in
      while accept_keyword "JOIN" do
        let table = expect_ident "table name" in
        expect_keyword "ON";
        let left_key = expect_ident "column" in
        (match peek () with
        | Op Algebra.Eq -> advance ()
        | t -> fail "expected '=', found %s" (describe t));
        let right_key = expect_ident "column" in
        from := Algebra.join ~left_key ~right_key !from (Algebra.scan table)
      done;
      let with_where = ref !from in
      if accept_keyword "WHERE" then begin
        let rec preds () =
          let p = parse_predicate () in
          with_where := Algebra.Select { input = !with_where; pred = p };
          if accept_keyword "AND" then preds ()
        in
        preds ()
      end;
      let result =
        if accept_keyword "GROUP" then begin
          expect_keyword "BY";
          let group_by = expect_ident "column" in
          let aggs =
            match items with
            | None -> fail "GROUP BY requires an explicit select list"
            | Some items -> (
              match items with
              | Col g :: rest when g = group_by ->
                List.map
                  (function
                    | Agg a -> a
                    | Col c ->
                      fail
                        "non-aggregated column %S in a GROUP BY select list" c)
                  rest
              | _ ->
                fail
                  "the select list must start with the GROUP BY column %S"
                  group_by)
          in
          if aggs = [] then fail "GROUP BY needs at least one aggregate";
          Algebra.aggregate ~group_by ~aggs !with_where
        end
        else
          match items with
          | None -> !with_where
          | Some items ->
            let columns =
              List.map
                (function
                  | Col c -> c
                  | Agg _ -> fail "aggregates require GROUP BY")
                items
            in
            Algebra.project ~distinct ~columns !with_where
      in
      result
      in
      let result = parse_select () in
      let rec set_ops acc =
        let combine op =
          advance ();
          let rhs = parse_select () in
          set_ops (Algebra.set_op op acc rhs)
        in
        match peek () with
        | Ident s when keyword s = "UNION" -> combine Algebra.Union
        | Ident s when keyword s = "INTERSECT" -> combine Algebra.Intersect
        | Ident s when keyword s = "EXCEPT" -> combine Algebra.Except
        | _ -> acc
      in
      let result = set_ops result in
      let result =
        if accept_keyword "ORDER" then begin
          expect_keyword "BY";
          let column = expect_ident "column" in
          let descending =
            if accept_keyword "DESC" then true
            else begin
              ignore (accept_keyword "ASC");
              false
            end
          in
          Algebra.order_by ~descending ~column result
        end
        else result
      in
      (match peek () with
      | Eof -> ()
      | t -> fail "unexpected %s after the end of the query" (describe t));
      Ok (Query result)
    with Parse_error m -> Error m)

let parse input =
  match parse_statement input with
  | Ok (Query e) -> Ok e
  | Ok (Insert _ | Delete _ | Update _ | Create_table _ | Drop_table _) ->
    Error "expected a query, found a DML/DDL statement"
  | Error m -> Error m

let parse_checked catalog input =
  match parse input with
  | Error m -> Error [ Mmdb_util.Diag.error ~code:"SQL001" ~path:"" m ]
  | Ok expr -> (
    match Plan_check.check_schema catalog expr with
    | Ok _ -> Ok expr
    | Error diags -> Error diags)

let parse_exn input =
  match parse input with
  | Ok e -> e
  | Error m -> invalid_arg ("Sql.parse: " ^ m)

let parse_statement_exn input =
  match parse_statement input with
  | Ok st -> st
  | Error m -> invalid_arg ("Sql.parse_statement: " ^ m)
