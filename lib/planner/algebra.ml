module S = Mmdb_storage

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type set_op = Union | Intersect | Except

type predicate = {
  column : string;
  op : cmp_op;
  value : S.Tuple.value;
}

type expr =
  | Scan of string
  | Select of { input : expr; pred : predicate }
  | Project of { input : expr; columns : string list; distinct : bool }
  | Join of { left : expr; right : expr; left_key : string; right_key : string }
  | Aggregate of {
      input : expr;
      group_by : string;
      aggs : Mmdb_exec.Aggregate.spec list;
    }
  | Order_by of { input : expr; column : string; descending : bool }
  | Set_op of { op : set_op; left : expr; right : expr }

let scan name = Scan name
let select ~column ~op ~value input = Select { input; pred = { column; op; value } }
let project ?(distinct = false) ~columns input = Project { input; columns; distinct }
let join ~left_key ~right_key left right = Join { left; right; left_key; right_key }
let aggregate ~group_by ~aggs input = Aggregate { input; group_by; aggs }

let order_by ?(descending = false) ~column input =
  Order_by { input; column; descending }

let set_op op left right = Set_op { op; left; right }

let cmp_result op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let eval_predicate schema pred tuple =
  let idx = S.Schema.column_index schema pred.column in
  let col = S.Schema.column_at schema idx in
  match (col.S.Schema.ty, pred.value) with
  | S.Schema.Int, S.Tuple.VInt v ->
    cmp_result pred.op (Int.compare (S.Tuple.get_int schema tuple idx) v)
  | S.Schema.Fixed_string, S.Tuple.VStr v ->
    cmp_result pred.op (String.compare (S.Tuple.get_str schema tuple idx) v)
  | S.Schema.Int, S.Tuple.VStr _ | S.Schema.Fixed_string, S.Tuple.VInt _ ->
    invalid_arg ("Algebra: predicate type mismatch on column " ^ pred.column)

let rec base_relations = function
  | Scan name -> [ name ]
  | Select { input; _ } | Project { input; _ } | Aggregate { input; _ }
  | Order_by { input; _ } ->
    base_relations input
  | Join { left; right; _ } | Set_op { left; right; _ } ->
    base_relations left @ base_relations right

let op_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let value_string = function
  | S.Tuple.VInt v -> string_of_int v
  | S.Tuple.VStr s -> Printf.sprintf "%S" s

let rec pp ppf = function
  | Scan name -> Format.fprintf ppf "%s" name
  | Select { input; pred } ->
    Format.fprintf ppf "select[%s %s %s](%a)" pred.column (op_string pred.op)
      (value_string pred.value) pp input
  | Project { input; columns; distinct } ->
    Format.fprintf ppf "project%s[%s](%a)"
      (if distinct then "-distinct" else "")
      (String.concat "," columns) pp input
  | Join { left; right; left_key; right_key } ->
    Format.fprintf ppf "join[%s=%s](%a, %a)" left_key right_key pp left pp
      right
  | Aggregate { input; group_by; aggs } ->
    Format.fprintf ppf "aggregate[by %s; %d aggs](%a)" group_by
      (* perf_lint: pretty-printer; one length per aggregate node *)
      (List.length aggs) pp input
  | Order_by { input; column; descending } ->
    Format.fprintf ppf "order[%s%s](%a)" column
      (if descending then " desc" else "")
      pp input
  | Set_op { op; left; right } ->
    let name =
      match op with
      | Union -> "union"
      | Intersect -> "intersect"
      | Except -> "except"
    in
    Format.fprintf ppf "%s(%a, %a)" name pp left pp right
