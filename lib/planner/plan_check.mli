(** Static type/schema checker for {!Algebra.expr} against a {!Catalog}.

    The Section 4 planner assumes every plan is well-formed: relations
    exist, predicate literals match column types, join keys are
    comparable, set-operation inputs share a schema.  Today those
    assumptions surface as runtime exceptions mid-execution (or worse,
    as byte-level misreads).  [Plan_check] validates them {e statically},
    before any operator runs, and reports structured diagnostics with
    stable codes instead of raising.

    Error codes (stable; one test per code in [test_verify]):

    - [PLAN001] unknown base relation
    - [PLAN002] unknown column (predicate, projection, join key, group or
      order key, aggregate argument)
    - [PLAN003] predicate literal type incompatible with the column type
    - [PLAN004] join keys have incompatible types or widths
    - [PLAN005] set-operation inputs have incompatible schemas
    - [PLAN006] aggregate over a non-integer column
    - [PLAN007] aggregate with an empty spec list
    - [PLAN008] projection with an empty column list
    - [PLAN009] duplicate column in a projection

    Warning codes:

    - [PLAN101] redundant DISTINCT (feeding a deduplicating set
      operation, another DISTINCT, or a re-grouping aggregate)
    - [PLAN102] predicate selects nothing according to catalog statistics
    - [PLAN103] ORDER BY whose ordering is destroyed by an enclosing
      hash-based operator (join, aggregate, set operation)
    - [PLAN104] string literal wider than the column it is compared to

    Paths locate the offending node: ["$"] is the expression root,
    ["$.input.left"] its input's left child, etc. *)

val check : Catalog.t -> Algebra.expr -> Mmdb_util.Diag.t list
(** All diagnostics for [expr], errors and warnings, in tree order.
    Never raises. *)

val check_schema :
  Catalog.t ->
  Algebra.expr ->
  (Mmdb_storage.Schema.t, Mmdb_util.Diag.t list) result
(** [Ok schema] (the expression's output schema, matching
    {!Optimizer.output_schema}) when no errors were found — warnings are
    discarded; [Error diags] otherwise with the full diagnostic list. *)

val ok : Catalog.t -> Algebra.expr -> bool
(** No error-severity diagnostics. *)

val code_catalogue : (string * string) list
(** Every stable code with a one-line description, for tooling and docs. *)
