(** Plan execution over the storage and operator layers.

    Intermediate results materialise as temporary relations on the same
    simulated disk as the base tables.  Join inputs are re-keyed views
    ({!Mmdb_storage.Relation.with_schema}) so any column can serve as the
    join key; join outputs concatenate left-then-right regardless of which
    side the optimizer chose to build on. *)

val run : ?deadline:Mmdb_overload.Overload.Deadline.t -> Catalog.t ->
  Optimizer.config -> Optimizer.plan -> Mmdb_storage.Relation.t
(** Execute a plan, returning the (sealed) result relation.  Its schema
    matches {!Optimizer.output_schema} of the planned expression.  When
    [deadline] is given it is checked at every operator boundary (before
    each node runs): an expired query aborts between operators — when no
    intermediate result is mid-construction and nothing is pinned — so
    the buffer pool audits clean.
    @raise Mmdb_overload.Overload.Shed (OVLD005) when [deadline] expires
    at an operator boundary.
    @raise Mmdb_fault.Fault.Io_error and
    @raise Mmdb_fault.Fault.Unrecoverable from the storage layer when a
    fault plan is armed (execution reads and spills pages). *)

type node_obs = {
  path : string;  (** ["$"] for the root, ["$.0"], ["$.0.1"], … below *)
  kind : string;  (** ["scan:name"], ["filter"], ["join:hybrid"], … *)
  output_tuples : int;
  output_pages : int;
  output_tuples_per_page : int;
  total : Mmdb_storage.Counters.t;  (** node including its inputs *)
  self : Mmdb_storage.Counters.t;  (** node alone (children subtracted) *)
  total_seconds : float;
  self_seconds : float;
}
(** Per-node observation from an instrumented execution. *)

val run_traced : ?deadline:Mmdb_overload.Overload.Deadline.t -> Catalog.t ->
  Optimizer.config -> Optimizer.plan ->
  Mmdb_storage.Relation.t * node_obs list
(** Like {!run}, but records each plan node's observed operation counters
    and simulated seconds, in post-order.  The [self] fields isolate one
    operator's charges so they can be checked against the cost model's
    prediction for that node ([Mmdb_verify.Model_check]).
    @raise Mmdb_overload.Overload.Shed (OVLD005) when [deadline] expires
    at an operator boundary. *)

val query : ?deadline:Mmdb_overload.Overload.Deadline.t -> Catalog.t ->
  Optimizer.config -> Algebra.expr -> Mmdb_storage.Relation.t
(** [query catalog cfg expr] = plan + run.
    @raise Mmdb_overload.Overload.Shed (OVLD005) when [deadline] expires
    at an operator boundary. *)

val query_checked : ?deadline:Mmdb_overload.Overload.Deadline.t ->
  Catalog.t -> Optimizer.config -> Algebra.expr ->
  (Mmdb_storage.Relation.t, Mmdb_util.Diag.t list) result
(** Like {!query}, but the expression is first validated with
    {!Plan_check}: ill-formed plans come back as [Error diags] without
    touching any operator, instead of raising mid-execution.  Well-formed
    plans execute normally (warnings do not block execution). *)

val rows : Mmdb_storage.Relation.t -> Mmdb_storage.Tuple.value list list
(** Decode every tuple (convenience for examples and tests). *)
