(** Plan execution over the storage and operator layers.

    Intermediate results materialise as temporary relations on the same
    simulated disk as the base tables.  Join inputs are re-keyed views
    ({!Mmdb_storage.Relation.with_schema}) so any column can serve as the
    join key; join outputs concatenate left-then-right regardless of which
    side the optimizer chose to build on. *)

val run : Catalog.t -> Optimizer.config -> Optimizer.plan ->
  Mmdb_storage.Relation.t
(** Execute a plan, returning the (sealed) result relation.  Its schema
    matches {!Optimizer.output_schema} of the planned expression. *)

val query : Catalog.t -> Optimizer.config -> Algebra.expr ->
  Mmdb_storage.Relation.t
(** [query catalog cfg expr] = plan + run. *)

val query_checked : Catalog.t -> Optimizer.config -> Algebra.expr ->
  (Mmdb_storage.Relation.t, Mmdb_util.Diag.t list) result
(** Like {!query}, but the expression is first validated with
    {!Plan_check}: ill-formed plans come back as [Error diags] without
    touching any operator, instead of raising mid-execution.  Well-formed
    plans execute normally (warnings do not block execution). *)

val rows : Mmdb_storage.Relation.t -> Mmdb_storage.Tuple.value list list
(** Decode every tuple (convenience for examples and tests). *)
