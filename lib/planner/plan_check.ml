module S = Mmdb_storage
module E = Mmdb_exec
module D = Mmdb_util.Diag

let code_catalogue =
  [
    ("PLAN001", "unknown base relation");
    ("PLAN002", "unknown column");
    ("PLAN003", "predicate literal type incompatible with column type");
    ("PLAN004", "join keys have incompatible types or widths");
    ("PLAN005", "set-operation inputs have incompatible schemas");
    ("PLAN006", "aggregate over a non-integer column");
    ("PLAN007", "aggregate with an empty spec list");
    ("PLAN008", "projection with an empty column list");
    ("PLAN009", "duplicate column in a projection");
    ("PLAN101", "redundant DISTINCT under a deduplicating operator");
    ("PLAN102", "predicate selects nothing according to catalog statistics");
    ("PLAN103", "ORDER BY destroyed by an enclosing hash-based operator");
    ("PLAN104", "string literal wider than the compared column");
  ]

let render_path rev_segs = String.concat "." ("$" :: List.rev rev_segs)

let ty_string = function
  | S.Schema.Int -> "int"
  | S.Schema.Fixed_string -> "string"

let find_col schema name =
  match S.Schema.column_index schema name with
  | i -> Some (S.Schema.column_at schema i)
  | exception Not_found -> None

let column_names schema =
  List.map (fun (c : S.Schema.column) -> c.S.Schema.name)
    (S.Schema.columns schema)

(* Diagnostics accumulate in source order through a mutable list. *)
type ctx = { catalog : Catalog.t; mutable diags : D.t list }

let err ctx ~code ~path fmt =
  Printf.ksprintf
    (fun m -> ctx.diags <- D.error ~code ~path:(render_path path) m :: ctx.diags)
    fmt

let warn ctx ~code ~path fmt =
  Printf.ksprintf
    (fun m ->
      ctx.diags <- D.warning ~code ~path:(render_path path) m :: ctx.diags)
    fmt

(* Unknown-column error with the available names, to make the CLI output
   actionable. *)
let unknown_column ctx ~path ~what schema name =
  err ctx ~code:"PLAN002" ~path "unknown %s %S (have: %s)" what name
    (String.concat ", " (column_names schema))

(* PLAN102: a predicate over a base-table integer column whose literal
   falls outside the column's observed [min, max]. *)
let check_predicate_stats ctx ~path input (pred : Algebra.predicate) =
  match (input, pred.Algebra.value) with
  | Algebra.Scan table, S.Tuple.VInt v when Catalog.mem ctx.catalog table -> (
    match Catalog.column_stats ctx.catalog ~table ~column:pred.Algebra.column with
    | { Catalog.min_int = Some mn; Catalog.max_int = Some mx; _ } ->
      let empty =
        match pred.Algebra.op with
        | Algebra.Eq -> v < mn || v > mx
        | Algebra.Lt -> v <= mn
        | Algebra.Le -> v < mn
        | Algebra.Gt -> v >= mx
        | Algebra.Ge -> v > mx
        | Algebra.Ne -> false
      in
      if empty then
        warn ctx ~code:"PLAN102" ~path
          "predicate %s %s %d selects nothing: %s.%s ranges over [%d, %d]"
          pred.Algebra.column
          (Algebra.op_string pred.Algebra.op)
          v table pred.Algebra.column mn mx
    | { Catalog.min_int = None; _ } | { Catalog.max_int = None; _ } -> ()
    | exception Not_found -> ())
  | _ -> ()

let check_predicate ctx ~path input schema (pred : Algebra.predicate) =
  match find_col schema pred.Algebra.column with
  | None -> unknown_column ctx ~path ~what:"predicate column" schema pred.Algebra.column
  | Some col -> (
    match (col.S.Schema.ty, pred.Algebra.value) with
    | S.Schema.Int, S.Tuple.VInt _ -> check_predicate_stats ctx ~path input pred
    | S.Schema.Fixed_string, S.Tuple.VStr s ->
      if String.length s > col.S.Schema.width then
        warn ctx ~code:"PLAN104" ~path
          "string literal %S is %d bytes wide but column %S holds %d: the \
           comparison can never be an equality"
          s (String.length s) pred.Algebra.column col.S.Schema.width
    | S.Schema.Int, S.Tuple.VStr s ->
      err ctx ~code:"PLAN003" ~path
        "predicate compares integer column %S with string literal %S"
        pred.Algebra.column s
    | S.Schema.Fixed_string, S.Tuple.VInt v ->
      err ctx ~code:"PLAN003" ~path
        "predicate compares string column %S with integer literal %d"
        pred.Algebra.column v)

(* Warn when [child]'s work is discarded by the enclosing operator
   [inside]. *)
let check_discarded ctx ~path ~inside child =
  match child with
  | Algebra.Project { distinct = true; _ } ->
    warn ctx ~code:"PLAN101" ~path
      "DISTINCT is redundant under %s, which deduplicates or regroups its \
       input anyway"
      inside
  | Algebra.Order_by { column; _ } ->
    warn ctx ~code:"PLAN103" ~path
      "ORDER BY %s is wasted: the enclosing %s does not preserve input order"
      column inside
  | _ -> ()

let rec dedup = function
  | [] -> []
  (* perf_lint: projection column lists are a handful of names *)
  | x :: rest -> if List.mem x rest then dedup rest else x :: dedup rest

(* Returns the node's output schema when it could be determined; [None]
   suppresses dependent checks upstream (no cascading errors). *)
let rec infer ctx path expr : S.Schema.t option =
  match expr with
  | Algebra.Scan name ->
    if Catalog.mem ctx.catalog name then
      Some (S.Relation.schema (Catalog.find ctx.catalog name))
    else begin
      err ctx ~code:"PLAN001" ~path "unknown relation %S (have: %s)" name
        (String.concat ", " (List.sort compare (Catalog.names ctx.catalog)));
      None
    end
  | Algebra.Select { input; pred } ->
    let s = infer ctx ("input" :: path) input in
    (match s with
    | Some schema -> check_predicate ctx ~path input schema pred
    | None -> ());
    s
  | Algebra.Project { input; columns; distinct = _ } -> (
    let s = infer ctx ("input" :: path) input in
    if columns = [] then begin
      err ctx ~code:"PLAN008" ~path "projection with an empty column list";
      None
    end
    else begin
      let dups =
        (* perf_lint: projection column lists are a handful of names *)
        dedup (List.filter (fun c ->
            List.length (List.filter (String.equal c) columns) > 1) columns)
      in
      List.iter
        (fun c ->
          err ctx ~code:"PLAN009" ~path "column %S appears more than once in \
                                         the projection" c)
        dups;
      match s with
      | None -> None
      | Some schema ->
        let missing =
          List.filter (fun c -> find_col schema c = None) (dedup columns)
        in
        List.iter
          (fun c -> unknown_column ctx ~path ~what:"projected column" schema c)
          missing;
        if dups = [] && missing = [] then
          Some (E.Projection.project_schema schema ~cols:columns)
        else None
    end)
  | Algebra.Join { left; right; left_key; right_key } -> (
    let ls = infer ctx ("left" :: path) left in
    let rs = infer ctx ("right" :: path) right in
    check_discarded ctx ~path:("left" :: path) ~inside:"a join" left;
    check_discarded ctx ~path:("right" :: path) ~inside:"a join" right;
    match (ls, rs) with
    | Some lsch, Some rsch -> (
      let lcol = find_col lsch left_key in
      let rcol = find_col rsch right_key in
      if lcol = None then
        unknown_column ctx ~path:("left" :: path) ~what:"join key" lsch left_key;
      if rcol = None then
        unknown_column ctx ~path:("right" :: path) ~what:"join key" rsch
          right_key;
      match (lcol, rcol) with
      | Some lc, Some rc ->
        if lc.S.Schema.ty <> rc.S.Schema.ty || lc.S.Schema.width <> rc.S.Schema.width
        then begin
          err ctx ~code:"PLAN004" ~path
            "join keys are incompatible: %S is %s(%d) but %S is %s(%d)"
            left_key (ty_string lc.S.Schema.ty) lc.S.Schema.width right_key
            (ty_string rc.S.Schema.ty) rc.S.Schema.width;
          None
        end
        else
          Some
            (E.Join_common.result_schema
               ~r_schema:(S.Schema.with_key lsch left_key)
               ~s_schema:(S.Schema.with_key rsch right_key))
      | _ -> None)
    | _ -> None)
  | Algebra.Aggregate { input; group_by; aggs } -> (
    let s = infer ctx ("input" :: path) input in
    check_discarded ctx ~path:("input" :: path) ~inside:"an aggregate" input;
    if aggs = [] then begin
      err ctx ~code:"PLAN007" ~path "aggregate with an empty spec list";
      None
    end
    else
      match s with
      | None -> None
      | Some schema ->
        let group_ok =
          match find_col schema group_by with
          | Some _ -> true
          | None ->
            unknown_column ctx ~path ~what:"group-by column" schema group_by;
            false
        in
        let agg_ok sp =
          match sp with
          | E.Aggregate.Count -> true
          | E.Aggregate.Sum c | E.Aggregate.Min c | E.Aggregate.Max c
          | E.Aggregate.Avg c -> (
            match find_col schema c with
            | None ->
              unknown_column ctx ~path ~what:"aggregate column" schema c;
              false
            | Some col ->
              if col.S.Schema.ty <> S.Schema.Int then begin
                err ctx ~code:"PLAN006" ~path
                  "aggregate over non-integer column %S (type %s)" c
                  (ty_string col.S.Schema.ty);
                false
              end
              else true)
        in
        let aggs_ok = List.for_all agg_ok aggs in
        if group_ok && aggs_ok then
          Some (E.Aggregate.result_schema (S.Schema.with_key schema group_by) aggs)
        else None)
  | Algebra.Order_by { input; column; descending = _ } -> (
    let s = infer ctx ("input" :: path) input in
    match s with
    | None -> None
    | Some schema -> (
      match find_col schema column with
      | Some _ -> Some (S.Schema.with_key schema column)
      | None ->
        unknown_column ctx ~path ~what:"order-by column" schema column;
        None))
  | Algebra.Set_op { op = _; left; right } -> (
    let ls = infer ctx ("left" :: path) left in
    let rs = infer ctx ("right" :: path) right in
    check_discarded ctx ~path:("left" :: path) ~inside:"a set operation" left;
    check_discarded ctx ~path:("right" :: path) ~inside:"a set operation" right;
    match (ls, rs) with
    | Some lsch, Some rsch ->
      let lcols = S.Schema.columns lsch and rcols = S.Schema.columns rsch in
      (* perf_lint: schema widths are tiny; runs once per set-op node *)
      let nl = List.length lcols and nr = List.length rcols in
      if nl <> nr then begin
        err ctx ~code:"PLAN005" ~path
          "set-operation inputs have %d and %d columns" nl nr;
        None
      end
      else begin
        let mismatches =
          List.filter_map
            (fun ((l : S.Schema.column), (r : S.Schema.column)) ->
              if l.S.Schema.ty <> r.S.Schema.ty || l.S.Schema.width <> r.S.Schema.width
              then Some (l, r)
              else None)
            (List.combine lcols rcols)
        in
        List.iter
          (fun ((l : S.Schema.column), (r : S.Schema.column)) ->
            err ctx ~code:"PLAN005" ~path
              "set-operation column mismatch: %S is %s(%d) but %S is %s(%d)"
              l.S.Schema.name (ty_string l.S.Schema.ty) l.S.Schema.width
              r.S.Schema.name (ty_string r.S.Schema.ty) r.S.Schema.width)
          mismatches;
        if mismatches = [] then Some lsch else None
      end
    | _ -> None)

let check catalog expr =
  let ctx = { catalog; diags = [] } in
  ignore (infer ctx [] expr);
  List.rev ctx.diags

let check_schema catalog expr =
  let ctx = { catalog; diags = [] } in
  match infer ctx [] expr with
  | Some schema when not (D.has_errors ctx.diags) -> Ok schema
  | Some _ | None -> Error (List.rev ctx.diags)

let ok catalog expr = not (D.has_errors (check catalog expr))
