(** Relational-algebra expressions — the input language of the Section 4
    planner. *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type set_op = Union | Intersect | Except

type predicate = {
  column : string;
  op : cmp_op;
  value : Mmdb_storage.Tuple.value;
}

type expr =
  | Scan of string  (** base relation by catalog name *)
  | Select of { input : expr; pred : predicate }
  | Project of { input : expr; columns : string list; distinct : bool }
  | Join of { left : expr; right : expr; left_key : string; right_key : string }
      (** equi-join on the named columns *)
  | Aggregate of {
      input : expr;
      group_by : string;
      aggs : Mmdb_exec.Aggregate.spec list;
    }
  | Order_by of { input : expr; column : string; descending : bool }
      (** final presentation sort — Section 4's point is that hash plans
          never need one {e internally} *)
  | Set_op of { op : set_op; left : expr; right : expr }
      (** distinct union/intersection/difference of byte-compatible
          inputs (Section 3.9's "other relational operations") *)

val scan : string -> expr
val select : column:string -> op:cmp_op -> value:Mmdb_storage.Tuple.value ->
  expr -> expr
val project : ?distinct:bool -> columns:string list -> expr -> expr
val join : left_key:string -> right_key:string -> expr -> expr -> expr
val aggregate : group_by:string -> aggs:Mmdb_exec.Aggregate.spec list ->
  expr -> expr

val order_by : ?descending:bool -> column:string -> expr -> expr
val set_op : set_op -> expr -> expr -> expr

val eval_predicate : Mmdb_storage.Schema.t -> predicate -> bytes -> bool
(** Apply a predicate to an encoded tuple.
    @raise Invalid_argument on unknown column or type mismatch. *)

val base_relations : expr -> string list
(** Names of the base relations referenced, left-to-right, with
    duplicates. *)

val op_string : cmp_op -> string
(** SQL spelling: ["="], ["<>"], ["<"], ... *)

val pp : Format.formatter -> expr -> unit
