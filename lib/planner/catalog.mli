(** Table catalog with per-column statistics for selectivity estimation. *)

type column_stats = {
  ndistinct : int;
  min_int : int option;  (** populated for integer columns *)
  max_int : int option;
  quantiles : int array option;
      (** equi-depth histogram cut points for integer columns: [k] sorted
          values splitting the column into [k+1] equal-count buckets;
          sharpens range selectivity on skewed data *)
}

type table_stats = {
  ntuples : int;
  npages : int;
  columns : (string * column_stats) list;
}

type t

val create : unit -> t

val register : t -> Mmdb_storage.Relation.t -> unit
(** Add (or replace) a table under its relation name, computing stats with
    one uncharged scan.
    @raise Mmdb_fault.Fault.Io_error from the storage layer when a fault
    plan is armed (the stats scan reads pages). *)

val find : t -> string -> Mmdb_storage.Relation.t
(** @raise Not_found on unknown table names. *)

val mem : t -> string -> bool
val names : t -> string list

val stats : t -> string -> table_stats
(** @raise Not_found on unknown table names. *)

val column_stats : t -> table:string -> column:string -> column_stats
(** @raise Not_found if either is unknown. *)

val refresh : t -> string -> unit
(** Recompute statistics after the relation changed. *)

val remove : t -> string -> unit
(** Forget a table (no-op when absent). *)
