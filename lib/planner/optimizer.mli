(** Access planning for large memories (Section 4).

    Selinger-style planning collapses once hash algorithms win: "since the
    performance of these algorithms is not affected by the input order of
    the tuples and since there is only one algorithm to choose from, query
    optimization is reduced to simply ordering the operators so that the
    most selective operations are pushed towards the bottom of the query
    tree."  The optimizer therefore: (1) pushes selections below joins;
    (2) orients each join so the smaller estimated input is the build
    side; (3) prices the four Section 3 algorithms with the analytic model
    and keeps the cheapest — hybrid hash whenever [|M| >= √(|S|·F)].

    The [allow_hash = false] mode restricts the choice to sort-merge — the
    disk-era optimizer used as the baseline in experiment E8. *)

type config = {
  mem_pages : int;
  fudge : float;
  allow_hash : bool;
}

val default_config : config
(** 256 pages, F = 1.2, hashing allowed. *)

type join_choice = {
  algorithm : Mmdb_exec.Joiner.algorithm;
  swapped : bool;  (** true when the right input becomes the build side *)
  est_build_pages : int;
  est_probe_pages : int;
  est_mem_pages : int;  (** [max mem_pages √(|S|·F)], the priced memory *)
  est_workload : Mmdb_model.Join_model.workload;  (** the priced workload *)
  est_ops : Mmdb_model.Join_model.ops;
      (** per-term breakdown of [est_seconds] *)
  est_seconds : float;  (** analytic cost under Table 2 constants *)
}

type plan =
  | P_scan of string
  | P_filter of { input : plan; pred : Algebra.predicate }
  | P_project of { input : plan; columns : string list; distinct : bool }
  | P_join of {
      left : plan;
      right : plan;
      left_key : string;
      right_key : string;
      choice : join_choice;
    }
  | P_aggregate of {
      input : plan;
      group_by : string;
      aggs : Mmdb_exec.Aggregate.spec list;
    }
  | P_order_by of { input : plan; column : string; descending : bool }
  | P_set_op of { op : Algebra.set_op; left : plan; right : plan }

val output_schema : Catalog.t -> Algebra.expr -> Mmdb_storage.Schema.t
(** Schema of an expression's result.  Join results carry columns prefixed
    [r_]/[s_] (left/right).  @raise Not_found on unknown tables,
    [Invalid_argument] on unknown columns. *)

val plan : Catalog.t -> config -> Algebra.expr -> plan
(** Optimize an expression. *)

val estimated_cost : plan -> float
(** Sum of the join choices' analytic costs (seconds). *)

val estimated_ops : plan -> Mmdb_model.Join_model.ops
(** Per-term breakdown of {!estimated_cost}: the sum of every join
    choice's [est_ops].  [Join_model.seconds cost (estimated_ops p)]
    agrees with [estimated_cost p] up to float associativity — checked by
    [Mmdb_verify.Model_check] as MODEL010. *)

val estimated_pages : Catalog.t -> Algebra.expr -> int
(** Estimated result size in pages (selectivity-scaled, at least 1) — the
    figure {!plan} prices join workloads with, exposed so the optimality
    lint can re-derive the plan space independently. *)

val join_choices : plan -> join_choice list
(** Every join choice in the plan, preorder. *)

val explain : plan -> string
(** Human-readable plan tree with algorithm choices and estimates. *)
