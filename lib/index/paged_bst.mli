(** Unbalanced paged binary search tree — the structure dismissed in
    Section 2's footnote: "if a paged binary tree organization is used
    instead, the fanout per node will be slightly worse than the B-tree;
    furthermore, paged binary trees are not balanced and the worst case
    access time may be significantly poorer than in the case of a B-tree"
    (citing CESA82/MUNT70).

    A plain BST over tuples, nodes packed into pages in allocation order
    (same placement scheme as {!Avl} under {!Pager}).  No rebalancing:
    random insertion gives ~1.39·log2 n expected comparisons, but sorted
    insertion degrades to a linked list — the bench quantifies the
    footnote. *)

type t

val create : env:Mmdb_storage.Env.t -> schema:Mmdb_storage.Schema.t ->
  unit -> t

val length : t -> int
val height : t -> int
val node_count : t -> int

val insert : t -> bytes -> unit
(** Equal-key insert replaces the stored tuple. *)

val search : t -> bytes -> bytes option

val delete : t -> bytes -> bool
(** Remove the tuple with the given encoded key; [false] when absent.
    Standard BST splice (in-order successor for two-child nodes); freed
    node slots are abandoned, not reused, so {!node_count} never
    shrinks. *)

val iter_in_order : t -> (bytes -> unit) -> unit

val set_visit_hook : t -> (int -> unit) option -> unit
(** Node-touch hook for {!Pager}-style page-fault accounting. *)

val check_invariants : t -> bool
(** BST ordering (no balance requirement, of course). *)
