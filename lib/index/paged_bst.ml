module S = Mmdb_storage

let nil = -1

type t = {
  env : S.Env.t;
  schema : S.Schema.t;
  mutable tuples : bytes array;
  mutable left : int array;
  mutable right : int array;
  mutable allocated : int;
  mutable root : int;
  mutable count : int;
  mutable visit : (int -> unit) option;
}

let create ~env ~schema () =
  {
    env;
    schema;
    tuples = [||];
    left = [||];
    right = [||];
    allocated = 0;
    root = nil;
    count = 0;
    visit = None;
  }

let length t = t.count
let node_count t = t.allocated
let set_visit_hook t hook = t.visit <- hook
let touch t n = match t.visit with Some f -> f n | None -> ()
let charge_comp t = S.Env.charge_comp t.env

let grow t =
  let cap = Array.length t.tuples in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nt = Array.make ncap Bytes.empty in
  let nl = Array.make ncap nil in
  let nr = Array.make ncap nil in
  Array.blit t.tuples 0 nt 0 cap;
  Array.blit t.left 0 nl 0 cap;
  Array.blit t.right 0 nr 0 cap;
  t.tuples <- nt;
  t.left <- nl;
  t.right <- nr

let alloc t tuple =
  if t.allocated = Array.length t.tuples then grow t;
  let s = t.allocated in
  t.allocated <- s + 1;
  t.tuples.(s) <- tuple;
  t.left.(s) <- nil;
  t.right.(s) <- nil;
  s

let height t =
  let rec go n =
    if n = nil then 0 else 1 + max (go t.left.(n)) (go t.right.(n))
  in
  go t.root

let insert t tuple =
  if Bytes.length tuple <> S.Schema.tuple_width t.schema then
    invalid_arg "Paged_bst.insert: tuple width mismatch";
  if t.root = nil then begin
    t.root <- alloc t tuple;
    t.count <- 1
  end
  else begin
    (* Iterative descent: no rebalancing ever happens. *)
    let n = ref t.root in
    let continue = ref true in
    while !continue do
      touch t !n;
      charge_comp t;
      let c = S.Tuple.compare_keys t.schema tuple t.tuples.(!n) in
      if c = 0 then begin
        t.tuples.(!n) <- tuple;
        continue := false
      end
      else if c < 0 then
        if t.left.(!n) = nil then begin
          t.left.(!n) <- alloc t tuple;
          t.count <- t.count + 1;
          continue := false
        end
        else n := t.left.(!n)
      else if t.right.(!n) = nil then begin
        t.right.(!n) <- alloc t tuple;
        t.count <- t.count + 1;
        continue := false
      end
      else n := t.right.(!n)
    done
  end

let search t key =
  let rec go n =
    if n = nil then None
    else begin
      touch t n;
      charge_comp t;
      let c = S.Tuple.compare_key_to t.schema t.tuples.(n) key in
      if c = 0 then Some t.tuples.(n)
      else if c > 0 then go t.left.(n)
      else go t.right.(n)
    end
  in
  go t.root

let delete t key =
  let parent = ref nil in
  let from_left = ref false in
  let n = ref t.root in
  let found = ref false in
  while (not !found) && !n <> nil do
    touch t !n;
    charge_comp t;
    let c = S.Tuple.compare_key_to t.schema t.tuples.(!n) key in
    if c = 0 then found := true
    else begin
      parent := !n;
      if c > 0 then begin
        from_left := true;
        n := t.left.(!n)
      end
      else begin
        from_left := false;
        n := t.right.(!n)
      end
    end
  done;
  if not !found then false
  else begin
    let replace_child child =
      if !parent = nil then t.root <- child
      else if !from_left then t.left.(!parent) <- child
      else t.right.(!parent) <- child
    in
    let node = !n in
    if t.left.(node) = nil then replace_child t.right.(node)
    else if t.right.(node) = nil then replace_child t.left.(node)
    else begin
      (* Two children: move the in-order successor's tuple up, splice the
         successor out.  The freed slot is simply abandoned — allocation
         order (page placement) of live nodes is untouched. *)
      let sp = ref node in
      let s_from_left = ref false in
      let s = ref t.right.(node) in
      while t.left.(!s) <> nil do
        touch t !s;
        sp := !s;
        s_from_left := true;
        s := t.left.(!s)
      done;
      t.tuples.(node) <- t.tuples.(!s);
      if !s_from_left then t.left.(!sp) <- t.right.(!s)
      else t.right.(!sp) <- t.right.(!s)
    end;
    t.count <- t.count - 1;
    true
  end

let iter_in_order t f =
  (* Explicit stack: the degenerate (sorted-insertion) tree would blow the
     call stack with naive recursion. *)
  let stack = ref [] in
  let n = ref t.root in
  let continue = ref true in
  while !continue do
    if !n <> nil then begin
      stack := !n :: !stack;
      n := t.left.(!n)
    end
    else
      match !stack with
      | [] -> continue := false
      | top :: rest ->
        stack := rest;
        f t.tuples.(top);
        n := t.right.(top)
  done

let check_invariants t =
  let ok = ref true in
  let prev = ref None in
  iter_in_order t (fun tup ->
      (match !prev with
      | Some p -> if S.Tuple.compare_keys t.schema p tup >= 0 then ok := false
      | None -> ());
      prev := Some tup);
  let seen = ref 0 in
  iter_in_order t (fun _ -> incr seen);
  !ok && !seen = t.count
