module S = Mmdb_storage

let nil = -1

type leaf = {
  mutable tuples : bytes array; (* capacity lcap + 1 (transient overflow) *)
  mutable ln : int;
  mutable next : int;
}

type internal = {
  mutable keys : bytes array; (* capacity fanout (transient overflow) *)
  mutable kn : int; (* number of separator keys; children = kn + 1 *)
  mutable children : int array; (* capacity fanout + 1 *)
}

type node = Leaf of leaf | Internal of internal | Free

type t = {
  env : S.Env.t;
  schema : S.Schema.t;
  fanout : int; (* max children of an internal node *)
  lcap : int; (* max tuples per leaf *)
  mutable nodes : node array;
  mutable allocated : int;
  mutable free_slots : int list;
  mutable root : int;
  mutable count : int;
  mutable first_leaf : int;
  mutable visit : (int -> unit) option;
}

let env t = t.env
let schema t = t.schema
let length t = t.count
let fanout t = t.fanout
let leaf_capacity t = t.lcap
let set_visit_hook t hook = t.visit <- hook
let touch t n = match t.visit with Some f -> f n | None -> ()
let charge_comp t = S.Env.charge_comp t.env

let node t n =
  match t.nodes.(n) with
  | Free -> invalid_arg "Btree: access to freed node"
  | nd -> nd

let grow t =
  let cap = Array.length t.nodes in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nn = Array.make ncap Free in
  Array.blit t.nodes 0 nn 0 cap;
  t.nodes <- nn

let alloc t nd =
  let slot =
    match t.free_slots with
    | s :: rest ->
      t.free_slots <- rest;
      s
    | [] ->
      if t.allocated = Array.length t.nodes then grow t;
      let s = t.allocated in
      t.allocated <- s + 1;
      s
  in
  t.nodes.(slot) <- nd;
  slot

let free_node t n =
  t.nodes.(n) <- Free;
  t.free_slots <- n :: t.free_slots

let new_leaf t =
  alloc t
    (Leaf { tuples = Array.make (t.lcap + 1) Bytes.empty; ln = 0; next = nil })

let new_internal t =
  alloc t
    (Internal
       {
         keys = Array.make t.fanout Bytes.empty;
         kn = 0;
         children = Array.make (t.fanout + 1) nil;
       })

let create ~env ~schema ?(page_size = 4096) ?(pointer_width = 4) () =
  let k = S.Schema.key_width schema in
  let tw = S.Schema.tuple_width schema in
  let fanout = page_size / (k + pointer_width) in
  let lcap = (page_size - S.Page.header_size) / tw in
  if fanout < 3 then invalid_arg "Btree.create: fanout below 3";
  if lcap < 2 then invalid_arg "Btree.create: leaf capacity below 2";
  let t =
    {
      env;
      schema;
      fanout;
      lcap;
      nodes = [||];
      allocated = 0;
      free_slots = [];
      root = nil;
      count = 0;
      first_leaf = nil;
      visit = None;
    }
  in
  let root = new_leaf t in
  t.root <- root;
  t.first_leaf <- root;
  t

let node_count t = t.allocated - List.length t.free_slots

let leaf_count t =
  let c = ref 0 in
  for i = 0 to t.allocated - 1 do
    match t.nodes.(i) with Leaf _ -> incr c | Internal _ | Free -> ()
  done;
  !c

let rec height_of t n =
  match node t n with
  | Leaf _ -> 1
  | Internal nd -> 1 + height_of t nd.children.(0)
  | Free -> assert false

let height t = height_of t t.root

let compare_key a b = Bytes.compare a b

(* First child index i such that key < keys.(i); charged binary search. *)
let child_index t (nd : internal) key =
  let lo = ref 0 and hi = ref nd.kn in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    charge_comp t;
    if compare_key key nd.keys.(mid) < 0 then hi := mid else lo := mid + 1
  done;
  !lo

(* First tuple index i such that key <= key(tuples.(i)); charged. *)
let leaf_lower_bound t (lf : leaf) key =
  let lo = ref 0 and hi = ref lf.ln in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    charge_comp t;
    if S.Tuple.compare_key_to t.schema lf.tuples.(mid) key < 0 then
      lo := mid + 1
    else hi := mid
  done;
  !lo

let tuple_key t tup = S.Tuple.key_bytes t.schema tup

let search t key =
  let rec go n =
    touch t n;
    match node t n with
    | Leaf lf ->
      let i = leaf_lower_bound t lf key in
      if i < lf.ln then begin
        charge_comp t;
        if S.Tuple.compare_key_to t.schema lf.tuples.(i) key = 0 then
          Some lf.tuples.(i)
        else None
      end
      else None
    | Internal nd -> go nd.children.(child_index t nd key)
    | Free -> assert false
  in
  go t.root

(* Insert: returns (Some (sep_key, right_id)) when the child split. *)
let insert t tuple =
  if Bytes.length tuple <> S.Schema.tuple_width t.schema then
    invalid_arg "Btree.insert: tuple width mismatch";
  let key = tuple_key t tuple in
  let rec ins n =
    touch t n;
    match node t n with
    | Leaf lf ->
      let i = leaf_lower_bound t lf key in
      if
        i < lf.ln
        && (charge_comp t;
            S.Tuple.compare_key_to t.schema lf.tuples.(i) key = 0)
      then begin
        lf.tuples.(i) <- tuple;
        None
      end
      else begin
        (* Shift right to open slot i (arrays have one overflow slot). *)
        for j = lf.ln downto i + 1 do
          lf.tuples.(j) <- lf.tuples.(j - 1)
        done;
        lf.tuples.(i) <- tuple;
        lf.ln <- lf.ln + 1;
        t.count <- t.count + 1;
        if lf.ln <= t.lcap then None
        else begin
          (* Split: upper half moves to a fresh right sibling. *)
          let mid = lf.ln / 2 in
          let right_id = new_leaf t in
          let right =
            match node t right_id with Leaf r -> r | _ -> assert false
          in
          for j = mid to lf.ln - 1 do
            right.tuples.(j - mid) <- lf.tuples.(j);
            lf.tuples.(j) <- Bytes.empty
          done;
          right.ln <- lf.ln - mid;
          lf.ln <- mid;
          right.next <- lf.next;
          lf.next <- right_id;
          Some (tuple_key t right.tuples.(0), right_id)
        end
      end
    | Internal nd -> (
      let ci = child_index t nd key in
      match ins nd.children.(ci) with
      | None -> None
      | Some (sep, right_id) ->
        for j = nd.kn downto ci + 1 do
          nd.keys.(j) <- nd.keys.(j - 1);
          nd.children.(j + 1) <- nd.children.(j)
        done;
        nd.keys.(ci) <- sep;
        nd.children.(ci + 1) <- right_id;
        nd.kn <- nd.kn + 1;
        if nd.kn < t.fanout then None
        else begin
          (* Split internal: middle key moves up. *)
          let mid = nd.kn / 2 in
          let up_key = nd.keys.(mid) in
          let right_id = new_internal t in
          let right =
            match node t right_id with Internal r -> r | _ -> assert false
          in
          for j = mid + 1 to nd.kn - 1 do
            right.keys.(j - mid - 1) <- nd.keys.(j);
            nd.keys.(j) <- Bytes.empty
          done;
          for j = mid + 1 to nd.kn do
            right.children.(j - mid - 1) <- nd.children.(j);
            nd.children.(j) <- nil
          done;
          right.kn <- nd.kn - mid - 1;
          nd.keys.(mid) <- Bytes.empty;
          nd.kn <- mid;
          Some (up_key, right_id)
        end)
    | Free -> assert false
  in
  match ins t.root with
  | None -> ()
  | Some (sep, right_id) ->
    let new_root_id = new_internal t in
    let nr =
      match node t new_root_id with Internal r -> r | _ -> assert false
    in
    nr.kn <- 1;
    nr.keys.(0) <- sep;
    nr.children.(0) <- t.root;
    nr.children.(1) <- right_id;
    t.root <- new_root_id

let leaf_min t = t.lcap / 2
let internal_min_children t = t.fanout / 2

(* Rebalance child [ci] of internal [nd] after a deletion underflow. *)
let fix_underflow t (nd : internal) ci =
  let child_id = nd.children.(ci) in
  let merge_leaves li ri sep_idx =
    let l = match node t nd.children.(li) with Leaf x -> x | _ -> assert false in
    let r = match node t nd.children.(ri) with Leaf x -> x | _ -> assert false in
    for j = 0 to r.ln - 1 do
      l.tuples.(l.ln + j) <- r.tuples.(j)
    done;
    l.ln <- l.ln + r.ln;
    l.next <- r.next;
    free_node t nd.children.(ri);
    for j = sep_idx to nd.kn - 2 do
      nd.keys.(j) <- nd.keys.(j + 1)
    done;
    for j = ri to nd.kn - 1 do
      nd.children.(j) <- nd.children.(j + 1)
    done;
    nd.keys.(nd.kn - 1) <- Bytes.empty;
    nd.children.(nd.kn) <- nil;
    nd.kn <- nd.kn - 1
  in
  let merge_internals li ri sep_idx =
    let l =
      match node t nd.children.(li) with Internal x -> x | _ -> assert false
    in
    let r =
      match node t nd.children.(ri) with Internal x -> x | _ -> assert false
    in
    l.keys.(l.kn) <- nd.keys.(sep_idx);
    for j = 0 to r.kn - 1 do
      l.keys.(l.kn + 1 + j) <- r.keys.(j)
    done;
    for j = 0 to r.kn do
      l.children.(l.kn + 1 + j) <- r.children.(j)
    done;
    l.kn <- l.kn + 1 + r.kn;
    free_node t nd.children.(ri);
    for j = sep_idx to nd.kn - 2 do
      nd.keys.(j) <- nd.keys.(j + 1)
    done;
    for j = ri to nd.kn - 1 do
      nd.children.(j) <- nd.children.(j + 1)
    done;
    nd.keys.(nd.kn - 1) <- Bytes.empty;
    nd.children.(nd.kn) <- nil;
    nd.kn <- nd.kn - 1
  in
  match node t child_id with
  | Free -> assert false
  | Leaf lf ->
    if lf.ln >= leaf_min t then ()
    else begin
      let borrowed = ref false in
      if ci > 0 then begin
        match node t nd.children.(ci - 1) with
        | Leaf left when left.ln > leaf_min t ->
          (* Move left's last tuple to the front of lf. *)
          for j = lf.ln downto 1 do
            lf.tuples.(j) <- lf.tuples.(j - 1)
          done;
          lf.tuples.(0) <- left.tuples.(left.ln - 1);
          left.tuples.(left.ln - 1) <- Bytes.empty;
          left.ln <- left.ln - 1;
          lf.ln <- lf.ln + 1;
          nd.keys.(ci - 1) <- tuple_key t lf.tuples.(0);
          borrowed := true
        | _ -> ()
      end;
      if (not !borrowed) && ci < nd.kn then begin
        match node t nd.children.(ci + 1) with
        | Leaf right when right.ln > leaf_min t ->
          lf.tuples.(lf.ln) <- right.tuples.(0);
          lf.ln <- lf.ln + 1;
          for j = 0 to right.ln - 2 do
            right.tuples.(j) <- right.tuples.(j + 1)
          done;
          right.tuples.(right.ln - 1) <- Bytes.empty;
          right.ln <- right.ln - 1;
          nd.keys.(ci) <- tuple_key t right.tuples.(0);
          borrowed := true
        | _ -> ()
      end;
      if not !borrowed then
        if ci > 0 then merge_leaves (ci - 1) ci (ci - 1)
        else merge_leaves ci (ci + 1) ci
    end
  | Internal ch ->
    if ch.kn + 1 >= internal_min_children t then ()
    else begin
      let borrowed = ref false in
      if ci > 0 then begin
        match node t nd.children.(ci - 1) with
        | Internal left when left.kn + 1 > internal_min_children t ->
          for j = ch.kn downto 1 do
            ch.keys.(j) <- ch.keys.(j - 1)
          done;
          for j = ch.kn + 1 downto 1 do
            ch.children.(j) <- ch.children.(j - 1)
          done;
          ch.keys.(0) <- nd.keys.(ci - 1);
          ch.children.(0) <- left.children.(left.kn);
          ch.kn <- ch.kn + 1;
          nd.keys.(ci - 1) <- left.keys.(left.kn - 1);
          left.keys.(left.kn - 1) <- Bytes.empty;
          left.children.(left.kn) <- nil;
          left.kn <- left.kn - 1;
          borrowed := true
        | _ -> ()
      end;
      if (not !borrowed) && ci < nd.kn then begin
        match node t nd.children.(ci + 1) with
        | Internal right when right.kn + 1 > internal_min_children t ->
          ch.keys.(ch.kn) <- nd.keys.(ci);
          ch.children.(ch.kn + 1) <- right.children.(0);
          ch.kn <- ch.kn + 1;
          nd.keys.(ci) <- right.keys.(0);
          for j = 0 to right.kn - 2 do
            right.keys.(j) <- right.keys.(j + 1)
          done;
          for j = 0 to right.kn - 1 do
            right.children.(j) <- right.children.(j + 1)
          done;
          right.keys.(right.kn - 1) <- Bytes.empty;
          right.children.(right.kn) <- nil;
          right.kn <- right.kn - 1;
          borrowed := true
        | _ -> ()
      end;
      if not !borrowed then
        if ci > 0 then merge_internals (ci - 1) ci (ci - 1)
        else merge_internals ci (ci + 1) ci
    end

let delete t key =
  let deleted = ref false in
  let rec del n =
    touch t n;
    match node t n with
    | Leaf lf ->
      let i = leaf_lower_bound t lf key in
      if
        i < lf.ln
        && (charge_comp t;
            S.Tuple.compare_key_to t.schema lf.tuples.(i) key = 0)
      then begin
        for j = i to lf.ln - 2 do
          lf.tuples.(j) <- lf.tuples.(j + 1)
        done;
        lf.tuples.(lf.ln - 1) <- Bytes.empty;
        lf.ln <- lf.ln - 1;
        deleted := true;
        t.count <- t.count - 1
      end
    | Internal nd ->
      let ci = child_index t nd key in
      del nd.children.(ci);
      if !deleted then fix_underflow t nd ci
    | Free -> assert false
  in
  del t.root;
  (* Shrink the root if it lost all separators. *)
  (match node t t.root with
  | Internal nd when nd.kn = 0 ->
    let only = nd.children.(0) in
    free_node t t.root;
    t.root <- only
  | Internal _ | Leaf _ -> ()
  | Free -> assert false);
  !deleted

let min_tuple t =
  match node t t.first_leaf with
  | Leaf lf -> if lf.ln > 0 then Some lf.tuples.(0) else None
  | Internal _ | Free -> assert false

let max_tuple t =
  let rec go n =
    match node t n with
    | Leaf lf -> if lf.ln > 0 then Some lf.tuples.(lf.ln - 1) else None
    | Internal nd -> go nd.children.(nd.kn)
    | Free -> assert false
  in
  go t.root

let iter_in_order t f =
  let rec walk n =
    if n <> nil then
      match node t n with
      | Leaf lf ->
        for i = 0 to lf.ln - 1 do
          f lf.tuples.(i)
        done;
        walk lf.next
      | Internal _ | Free -> assert false
  in
  walk t.first_leaf

let scan_from t key n =
  (* Charged descent to the leaf holding the first key >= key. *)
  let rec descend nid =
    touch t nid;
    match node t nid with
    | Leaf lf -> (nid, lf, leaf_lower_bound t lf key)
    | Internal nd -> descend nd.children.(child_index t nd key)
    | Free -> assert false
  in
  let _, lf0, i0 = descend t.root in
  let acc = ref [] in
  let remaining = ref n in
  (* Walk the leaf chain collecting tuples. *)
  let cur = ref (Some (lf0, i0)) in
  while !remaining > 0 && !cur <> None do
    match !cur with
    | None -> ()
    | Some (lf, i) ->
      if i < lf.ln then begin
        acc := lf.tuples.(i) :: !acc;
        decr remaining;
        cur := Some (lf, i + 1)
      end
      else if lf.next = nil then cur := None
      else begin
        touch t lf.next;
        match node t lf.next with
        | Leaf nxt -> cur := Some (nxt, 0)
        | Internal _ | Free -> assert false
      end
  done;
  List.rev !acc

let range_scan t ~lo ~hi f =
  let rec descend nid =
    touch t nid;
    match node t nid with
    | Leaf lf -> (lf, leaf_lower_bound t lf lo)
    | Internal nd -> descend nd.children.(child_index t nd lo)
    | Free -> assert false
  in
  let lf0, i0 = descend t.root in
  let exception Stop in
  let visit_leaf (lf : leaf) start =
    for i = start to lf.ln - 1 do
      charge_comp t;
      if S.Tuple.compare_key_to t.schema lf.tuples.(i) hi > 0 then raise Stop;
      f lf.tuples.(i)
    done
  in
  (try
     let cur = ref (Some (lf0, i0)) in
     while !cur <> None do
       match !cur with
       | None -> ()
       | Some (lf, start) ->
         visit_leaf lf start;
         if lf.next = nil then cur := None
         else begin
           touch t lf.next;
           match node t lf.next with
           | Leaf nxt -> cur := Some (nxt, 0)
           | Internal _ | Free -> assert false
         end
     done
   with Stop -> ())

let avg_leaf_occupancy t =
  let total = ref 0 and leaves = ref 0 in
  for i = 0 to t.allocated - 1 do
    match t.nodes.(i) with
    | Leaf lf ->
      total := !total + lf.ln;
      incr leaves
    | Internal _ | Free -> ()
  done;
  if !leaves = 0 then 0.0
  else float_of_int !total /. float_of_int (!leaves * t.lcap)

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let rec depth n =
    match node t n with
    | Leaf _ -> 1
    | Internal nd -> 1 + depth nd.children.(0)
    | Free ->
      fail ();
      1
  in
  let d = depth t.root in
  (* Bounds are exclusive lo (>=) and exclusive hi (<): keys k in subtree
     satisfy lo <= k < hi when the bound is present. *)
  let in_bounds key lo hi =
    (match lo with Some l -> Bytes.compare key l >= 0 | None -> true)
    && match hi with Some h -> Bytes.compare key h < 0 | None -> true
  in
  let rec check n level lo hi =
    match node t n with
    | Leaf lf ->
      if level <> d then fail ();
      if n <> t.root && lf.ln < leaf_min t then fail ();
      for i = 0 to lf.ln - 1 do
        let k = tuple_key t lf.tuples.(i) in
        if not (in_bounds k lo hi) then fail ();
        if i > 0 then
          if S.Tuple.compare_keys t.schema lf.tuples.(i - 1) lf.tuples.(i) >= 0
          then fail ()
      done
    | Internal nd ->
      if nd.kn < 1 then fail ();
      if n <> t.root && nd.kn + 1 < internal_min_children t then fail ();
      for i = 0 to nd.kn - 1 do
        if not (in_bounds nd.keys.(i) lo hi) then fail ();
        if i > 0 && Bytes.compare nd.keys.(i - 1) nd.keys.(i) >= 0 then fail ()
      done;
      for i = 0 to nd.kn do
        let clo = if i = 0 then lo else Some nd.keys.(i - 1) in
        let chi = if i = nd.kn then hi else Some nd.keys.(i) in
        check nd.children.(i) (level + 1) clo chi
      done
    | Free -> fail ()
  in
  check t.root 1 None None;
  (* Leaf chain visits exactly [count] tuples in ascending order. *)
  let seen = ref 0 in
  let prev = ref None in
  iter_in_order t (fun tup ->
      incr seen;
      (match !prev with
      | Some p -> if S.Tuple.compare_keys t.schema p tup >= 0 then fail ()
      | None -> ());
      prev := Some tup);
  if !seen <> t.count then fail ();
  !ok

(* Split [n] items into chunks of [target], rebalancing the final two
   chunks when the tail would fall below [minimum]. *)
let chunk_sizes ~n ~target ~minimum =
  if n = 0 then []
  else begin
    let full = n / target and rem = n mod target in
    let sizes =
      if rem = 0 then List.init full (fun _ -> target)
      else List.init (full + 1) (fun i -> if i = full then rem else target)
    in
    match List.rev sizes with
    | last :: prev :: rest when last < minimum ->
      let move = minimum - last in
      List.rev ((last + move) :: (prev - move) :: rest)
    | _ -> sizes
  end

let bulk_load ~env ~schema ?(page_size = 4096) ?(pointer_width = 4)
    ?(occupancy = 1.0) tuples =
  if occupancy <= 0.5 || occupancy > 1.0 then
    invalid_arg "Btree.bulk_load: occupancy outside (0.5, 1.0]";
  let t = create ~env ~schema ~page_size ~pointer_width () in
  (* Validate ordering. *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if S.Tuple.compare_keys schema a b >= 0 then
        invalid_arg "Btree.bulk_load: input not strictly key-sorted";
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted tuples;
  let n = List.length tuples in
  if n = 0 then t
  else begin
    (* The fresh tree owns an empty root leaf; rebuild from scratch. *)
    let leaf_target =
      max 1 (int_of_float (Float.round (occupancy *. float_of_int t.lcap)))
    in
    let leaf_minimum = min leaf_target (leaf_min t) in
    let sizes = chunk_sizes ~n ~target:leaf_target ~minimum:(max 1 leaf_minimum) in
    let remaining = ref tuples in
    let take k =
      let rec go acc k =
        if k = 0 then List.rev acc
        else
          match !remaining with
          | x :: rest ->
            remaining := rest;
            go (x :: acc) (k - 1)
          | [] -> assert false
      in
      go [] k
    in
    (* Build the leaf level, chained left-to-right. *)
    let leaves =
      List.map
        (fun size ->
          let id = new_leaf t in
          let lf = match node t id with Leaf l -> l | _ -> assert false in
          List.iteri (fun i tup -> lf.tuples.(i) <- tup) (take size);
          lf.ln <- size;
          (id, tuple_key t lf.tuples.(0)))
        sizes
    in
    let rec chain = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        (match node t a with
        | Leaf lf -> lf.next <- b
        | Internal _ | Free -> assert false);
        chain rest
      | [ _ ] | [] -> ()
    in
    chain leaves;
    t.count <- n;
    (* Build internal levels bottom-up until one node remains. *)
    let child_target =
      max 2 (int_of_float (occupancy *. float_of_int t.fanout))
    in
    let child_minimum = max 2 (internal_min_children t) in
    let rec build level =
      match level with
      | [ (only, _) ] ->
        (* Free the placeholder root leaf, then install. *)
        free_node t t.root;
        t.root <- only;
        t.first_leaf <- fst (List.hd leaves)
      | _ ->
        (* perf_lint: one length per level; levels shrink geometrically *)
        let nchildren = List.length level in
        let sizes =
          chunk_sizes ~n:nchildren ~target:child_target
            ~minimum:(min child_target child_minimum)
        in
        let remaining = ref level in
        let take k =
          let rec go acc k =
            if k = 0 then List.rev acc
            else
              match !remaining with
              | x :: rest ->
                remaining := rest;
                go (x :: acc) (k - 1)
              | [] -> assert false
          in
          go [] k
        in
        let parents =
          List.map
            (fun size ->
              let id = new_internal t in
              let nd =
                match node t id with Internal x -> x | _ -> assert false
              in
              let children = take size in
              List.iteri
                (fun i (cid, ckey) ->
                  nd.children.(i) <- cid;
                  if i > 0 then nd.keys.(i - 1) <- ckey)
                children;
              nd.kn <- size - 1;
              (id, snd (List.hd children)))
            sizes
        in
        build parents
    in
    build (List.map (fun (id, k) -> (id, k)) leaves);
    t
  end
