module S = Mmdb_storage
module I = Mmdb_index
module P = Mmdb_planner

type index_kind = Avl_index | Btree_index

type table = {
  mutable rel : S.Relation.t;
  mutable avl : I.Avl.t option;
  mutable btree : I.Btree.t option;
}

type t = {
  env : S.Env.t;
  disk : S.Disk.t;
  mem_pages : int;
  cat : P.Catalog.t;
  tables : (string, table) Hashtbl.t;
  planner_cfg : P.Optimizer.config;
}

let create ?(page_size = 4096) ?(mem_pages = 256) ?(cost = S.Cost.table2) () =
  let env = S.Env.create ~cost () in
  {
    env;
    disk = S.Disk.create ~env ~page_size;
    mem_pages;
    cat = P.Catalog.create ();
    tables = Hashtbl.create 16;
    planner_cfg =
      {
        P.Optimizer.mem_pages;
        P.Optimizer.fudge = cost.S.Cost.fudge;
        P.Optimizer.allow_hash = true;
      };
  }

let env t = t.env
let mem_pages t = t.mem_pages
let catalog t = t.cat

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> raise Not_found

let create_table t ~name ~schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Db.create_table: table exists: " ^ name);
  let rel = S.Relation.create ~disk:t.disk ~name ~schema in
  Hashtbl.replace t.tables name { rel; avl = None; btree = None };
  P.Catalog.register t.cat rel

let table_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []

let insert_encoded tbl tuple =
  S.Relation.append_nocharge tbl.rel tuple;
  (match tbl.avl with Some ix -> I.Avl.insert ix tuple | None -> ());
  match tbl.btree with Some ix -> I.Btree.insert ix tuple | None -> ()

let insert t ~table values =
  let tbl = find_table t table in
  let tuple = S.Tuple.encode (S.Relation.schema tbl.rel) values in
  insert_encoded tbl tuple

let analyze t =
  Hashtbl.iter
    (fun name tbl ->
      S.Relation.seal tbl.rel;
      ignore name;
      P.Catalog.register t.cat tbl.rel)
    t.tables

let insert_many t ~table rows =
  let tbl = find_table t table in
  let schema = S.Relation.schema tbl.rel in
  List.iter (fun values -> insert_encoded tbl (S.Tuple.encode schema values)) rows;
  S.Relation.seal tbl.rel;
  P.Catalog.register t.cat tbl.rel

let create_index t ~table kind =
  let tbl = find_table t table in
  let schema = S.Relation.schema tbl.rel in
  match kind with
  | Avl_index ->
    if tbl.avl <> None then invalid_arg "Db.create_index: AVL index exists";
    let ix = I.Avl.create ~env:t.env ~schema () in
    S.Relation.iter_tuples_nocharge tbl.rel (I.Avl.insert ix);
    tbl.avl <- Some ix
  | Btree_index ->
    if tbl.btree <> None then invalid_arg "Db.create_index: B+-tree index exists";
    let ix =
      I.Btree.create ~env:t.env ~schema
        ~page_size:(S.Disk.page_size t.disk) ()
    in
    S.Relation.iter_tuples_nocharge tbl.rel (I.Btree.insert ix);
    tbl.btree <- Some ix

let encode_key schema value =
  match value with
  | S.Tuple.VInt v -> S.Tuple.encode_int_key schema v
  | S.Tuple.VStr s ->
    let w = S.Schema.key_width schema in
    if String.length s > w then invalid_arg "Db: key string too wide";
    let b = Bytes.make w '\000' in
    Bytes.blit_string s 0 b 0 (String.length s);
    b

let lookup t ~table ~key =
  let tbl = find_table t table in
  let schema = S.Relation.schema tbl.rel in
  let kb = encode_key schema key in
  let found =
    match (tbl.avl, tbl.btree) with
    | Some ix, _ -> I.Avl.search ix kb
    | None, Some ix -> I.Btree.search ix kb
    | None, None ->
      (* Scan fallback: charged comparisons, as an unindexed scan would. *)
      let hit = ref None in
      S.Relation.iter_tuples_nocharge tbl.rel (fun tuple ->
          S.Env.charge_comp t.env;
          if !hit = None && S.Tuple.compare_key_to schema tuple kb = 0 then
            hit := Some tuple);
      !hit
  in
  Option.map (S.Tuple.decode schema) found

let range t ~table ~lo ~hi =
  let tbl = find_table t table in
  let schema = S.Relation.schema tbl.rel in
  let lob = encode_key schema lo and hib = encode_key schema hi in
  let acc = ref [] in
  let collect tuple = acc := S.Tuple.decode schema tuple :: !acc in
  (match (tbl.btree, tbl.avl) with
  | Some ix, _ -> I.Btree.range_scan ix ~lo:lob ~hi:hib collect
  | None, Some ix -> I.Avl.range_scan ix ~lo:lob ~hi:hib collect
  | None, None ->
    let matches = ref [] in
    S.Relation.iter_tuples_nocharge tbl.rel (fun tuple ->
        S.Env.charge_comps t.env 2;
        if
          S.Tuple.compare_key_to schema tuple lob >= 0
          && S.Tuple.compare_key_to schema tuple hib <= 0
        then matches := tuple :: !matches);
    List.iter collect
      (List.sort (S.Tuple.compare_keys schema) (List.rev !matches)));
  List.rev !acc

let check t expr = P.Plan_check.check t.cat expr

let query t expr =
  match P.Executor.query_checked t.cat t.planner_cfg expr with
  | Ok rel -> rel
  | Error diags ->
    invalid_arg
      (Format.asprintf "Db.query: invalid plan:@ %a" Mmdb_util.Diag.pp_list
         diags)

let query_rows t expr = P.Executor.rows (query t expr)

let audit t =
  let names = List.sort compare (table_names t) in
  let comps =
    List.concat_map
      (fun name ->
        let tbl = find_table t name in
        (match tbl.avl with
        (* perf_lint: audit labels; one concat per table *)
        | Some ix -> [ Mmdb_verify.Audit.Avl (name ^ ".avl", ix) ]
        | None -> [])
        @
        match tbl.btree with
        (* perf_lint: audit labels; one concat per table *)
        | Some ix -> [ Mmdb_verify.Audit.Btree (name ^ ".btree", ix) ]
        | None -> [])
      names
  in
  Mmdb_verify.Audit.run_all comps

let explain t expr =
  P.Optimizer.explain (P.Optimizer.plan t.cat t.planner_cfg expr)

(* exn_flow: Parse_error is caught at Sql.parse_statement's own tail
   (lexical-model false positive; parse_exn raises Invalid_argument). *)
let sql t text = query_rows t (P.Sql.parse_exn text)
let sql_explain t text = explain t (P.Sql.parse_exn text)

type exec_result = Rows of S.Tuple.value list list | Affected of int

(* Rebuild a table's relation with [keep]-filtered, [transform]-mapped
   tuples; refresh its indexes and statistics. *)
let rebuild_table t name tbl ~keep ~transform =
  let schema = S.Relation.schema tbl.rel in
  let affected = ref 0 in
  let fresh = S.Relation.create ~disk:t.disk ~name ~schema in
  S.Relation.iter_tuples_nocharge tbl.rel (fun tuple ->
      if keep tuple then S.Relation.append_nocharge fresh tuple
      else begin
        incr affected;
        match transform tuple with
        | Some tuple' -> S.Relation.append_nocharge fresh tuple'
        | None -> ()
      end);
  S.Relation.seal fresh;
  S.Relation.free_pages tbl.rel;
  tbl.rel <- fresh;
  (* Rebuild indexes from scratch. *)
  if tbl.avl <> None then begin
    let ix = I.Avl.create ~env:t.env ~schema () in
    S.Relation.iter_tuples_nocharge fresh (I.Avl.insert ix);
    tbl.avl <- Some ix
  end;
  if tbl.btree <> None then begin
    let ix =
      I.Btree.create ~env:t.env ~schema ~page_size:(S.Disk.page_size t.disk) ()
    in
    S.Relation.iter_tuples_nocharge fresh (I.Btree.insert ix);
    tbl.btree <- Some ix
  end;
  P.Catalog.register t.cat fresh;
  !affected

let matches_all schema preds tuple =
  List.for_all (fun pred -> P.Algebra.eval_predicate schema pred tuple) preds

let execute t text =
  match P.Sql.parse_statement_exn text with
  | P.Sql.Query expr -> Rows (query_rows t expr)
  | P.Sql.Insert { table; rows } ->
    let tbl = find_table t table in
    let schema = S.Relation.schema tbl.rel in
    List.iter
      (fun values -> insert_encoded tbl (S.Tuple.encode schema values))
      rows;
    S.Relation.seal tbl.rel;
    P.Catalog.register t.cat tbl.rel;
    Affected (List.length rows)
  | P.Sql.Delete { table; preds } ->
    let tbl = find_table t table in
    let schema = S.Relation.schema tbl.rel in
    Affected
      (rebuild_table t table tbl
         ~keep:(fun tuple -> not (matches_all schema preds tuple))
         ~transform:(fun _ -> None))
  | P.Sql.Update { table; sets; preds } ->
    let tbl = find_table t table in
    let schema = S.Relation.schema tbl.rel in
    let set_indices =
      List.map (fun (col, v) -> (S.Schema.column_index schema col, v)) sets
    in
    Affected
      (rebuild_table t table tbl
         ~keep:(fun tuple -> not (matches_all schema preds tuple))
         ~transform:(fun tuple ->
           let values = Array.of_list (S.Tuple.decode schema tuple) in
           List.iter (fun (i, v) -> values.(i) <- v) set_indices;
           Some (S.Tuple.encode schema (Array.to_list values))))
  | P.Sql.Create_table { table; schema } ->
    create_table t ~name:table ~schema;
    Affected 0
  | P.Sql.Drop_table table ->
    let tbl = find_table t table in
    S.Relation.free_pages tbl.rel;
    Hashtbl.remove t.tables table;
    P.Catalog.remove t.cat table;
    Affected 0

let stats t =
  Format.asprintf "simulated %.3fs; %a" (S.Env.elapsed t.env) S.Counters.pp
    t.env.S.Env.counters

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let magic = "MMDB0001"

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Db.save: u16 overflow";
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Db.save: u32 overflow";
  put_u16 buf (v lsr 16);
  put_u16 buf (v land 0xFFFF)

let put_string buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let save t path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let names = List.sort compare (table_names t) in
  put_u32 buf (List.length names);
  List.iter
    (fun name ->
      let tbl = find_table t name in
      S.Relation.seal tbl.rel;
      let schema = S.Relation.schema tbl.rel in
      put_string buf name;
      let cols = S.Schema.columns schema in
      (* perf_lint: save path; one length per table, bounded by schema *)
      put_u16 buf (List.length cols);
      List.iter
        (fun (c : S.Schema.column) ->
          put_string buf c.S.Schema.name;
          put_u8 buf
            (match c.S.Schema.ty with S.Schema.Int -> 0 | S.Schema.Fixed_string -> 1);
          put_u16 buf c.S.Schema.width)
        cols;
      put_u16 buf (S.Schema.key_index schema);
      put_u8 buf (if tbl.avl <> None then 1 else 0);
      put_u8 buf (if tbl.btree <> None then 1 else 0);
      put_u32 buf (S.Relation.ntuples tbl.rel);
      S.Relation.iter_tuples_nocharge tbl.rel (fun tuple ->
          Buffer.add_bytes buf tuple))
    names;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Buffer.output_buffer oc buf;
      close_out oc)

let load ?page_size ?mem_pages ?cost path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let pos = ref 0 in
  let need n =
    if !pos + n > len then invalid_arg "Db.load: truncated file"
  in
  let get_u8 () =
    need 1;
    let v = Char.code data.[!pos] in
    incr pos;
    v
  in
  let get_u16 () =
    let hi = get_u8 () in
    let lo = get_u8 () in
    (hi lsl 8) lor lo
  in
  let get_u32 () =
    let hi = get_u16 () in
    let lo = get_u16 () in
    (hi lsl 16) lor lo
  in
  let get_string () =
    let n = get_u16 () in
    need n;
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  need (String.length magic);
  if String.sub data 0 (String.length magic) <> magic then
    invalid_arg "Db.load: bad magic (not an mmdb file or wrong version)";
  pos := String.length magic;
  let db =
    create
      ?page_size
      ?mem_pages
      ?cost
      ()
  in
  let ntables = get_u32 () in
  for _ = 1 to ntables do
    let name = get_string () in
    let ncols = get_u16 () in
    let cols =
      List.init ncols (fun _ ->
          let cname = get_string () in
          let ty =
            match get_u8 () with
            | 0 -> S.Schema.Int
            | 1 -> S.Schema.Fixed_string
            | b -> invalid_arg (Printf.sprintf "Db.load: bad column type %d" b)
          in
          let width = get_u16 () in
          S.Schema.column ~width cname ty)
    in
    let key_index = get_u16 () in
    if key_index >= ncols then invalid_arg "Db.load: bad key index";
    let key =
      (* perf_lint: load path; one nth per table, bounded by schema *)
      (List.nth (List.map (fun (c : S.Schema.column) -> c.S.Schema.name) cols)
         key_index)
    in
    let schema = S.Schema.create ~key cols in
    let has_avl = get_u8 () = 1 in
    let has_btree = get_u8 () = 1 in
    let ntuples = get_u32 () in
    let width = S.Schema.tuple_width schema in
    create_table db ~name ~schema;
    let tbl = find_table db name in
    for _ = 1 to ntuples do
      need width;
      let tuple = Bytes.of_string (String.sub data !pos width) in
      pos := !pos + width;
      insert_encoded tbl tuple
    done;
    S.Relation.seal tbl.rel;
    P.Catalog.register db.cat tbl.rel;
    if has_avl then create_index db ~table:name Avl_index;
    if has_btree then create_index db ~table:name Btree_index
  done;
  if !pos <> len then invalid_arg "Db.load: trailing bytes";
  db
