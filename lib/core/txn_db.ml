module R = Mmdb_recovery
module S = Mmdb_storage

type commit_outcome = {
  txn_id : int;
  submitted_at : float;
  durable_at : float option;
}

type t = {
  clock : S.Sim_clock.t;
  wal : R.Wal.t;
  mutable locks : R.Lock_manager.t;
  recorder : R.Schedule.recorder option;
  stable : R.Stable_memory.t;
  kv : R.Kv_store.t;
  mutable next_txn : int;
  mutable next_lsn : int;
  mutable crashed : bool;
  mutable open_tickets : R.Wal.ticket list;
}

let create ?(strategy = R.Wal.Group_commit) ?(nrecords = 1000)
    ?(records_per_page = 20) ?(stable_bytes = 1 lsl 20)
    ?(record_schedule = false) () =
  let clock = S.Sim_clock.create () in
  let stable = R.Stable_memory.create ~capacity_bytes:stable_bytes in
  let recorder =
    if record_schedule then
      Some (R.Schedule.recorder ~now:(fun () -> S.Sim_clock.now clock))
    else None
  in
  {
    clock;
    wal = R.Wal.create ~clock strategy;
    locks = R.Lock_manager.create ?recorder ();
    recorder;
    stable;
    kv = R.Kv_store.create ?recorder ~nrecords ~records_per_page ~stable ();
    next_txn = 0;
    next_lsn = 0;
    crashed = false;
    open_tickets = [];
  }

let nrecords t = R.Kv_store.nrecords t.kv
let balance t slot = R.Kv_store.get t.kv slot
let now t = S.Sim_clock.now t.clock
let advance t dt = S.Sim_clock.advance t.clock dt

let check_alive t =
  if t.crashed then invalid_arg "Txn_db: crashed; recover first"

let fresh_lsn t =
  t.next_lsn <- t.next_lsn + 1;
  t.next_lsn

(* Finalize lock-manager state for transactions whose commits became
   durable by [at]; the schedule gets a Commit_durable event stamped with
   the exact completion time (not the retire time). *)
let retire t ~at =
  let still_open =
    List.filter
      (fun tkt ->
        match R.Wal.ticket_completion tkt with
        | Some c when c <= at ->
          let txn = R.Wal.ticket_txn tkt in
          R.Schedule.emit t.recorder ~at:c ~txn R.Schedule.Commit_durable;
          (* exn_flow: 2PL hands release to commit retirement — these
             locks were acquired in [transact], not in this function. *)
          R.Lock_manager.finalize t.locks ~txn;
          false
        | Some _ | None -> true)
      t.open_tickets
  in
  t.open_tickets <- still_open

(* A slot locked twice inside one transaction would hit the lock
   manager's re-acquire path, whose empty grant muddies the dependency
   accounting — reject it up front. *)
let check_slots ~what updates =
  if updates = [] then invalid_arg (what ^ ": no updates");
  let slots = List.sort compare (List.map fst updates) in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  match dup slots with
  | Some s ->
    invalid_arg (Printf.sprintf "%s: duplicate slot %d in update list" what s)
  | None -> ()

let transact t updates =
  check_alive t;
  check_slots ~what:"Txn_db.transact" updates;
  let at = now t in
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  let deps =
    List.concat_map
      (fun (slot, _) ->
        (* exn_flow: 2PL — locks release at commit retirement ([retire]);
           a mid-txn raise means crash, which resets the lock table. *)
        match R.Lock_manager.acquire t.locks ~txn ~key:slot with
        | Some g -> g.R.Lock_manager.dependencies
        | None -> assert false)
      updates
  in
  let begin_lsn = fresh_lsn t in
  (* Newest-first accumulation ([List.rev_map] applies left to right,
     so LSNs are still drawn in update order); one final [List.rev]
     puts the log in natural order without a quadratic tail-append. *)
  let rev_body =
    List.rev_map
      (fun (slot, delta) ->
        let old_value = R.Kv_store.get ~txn t.kv slot in
        let new_value = old_value + delta in
        let lsn = fresh_lsn t in
        R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:new_value;
        R.Log_record.Update { txn; lsn; slot; old_value; new_value })
      updates
  in
  let records =
    R.Log_record.Begin { txn; lsn = begin_lsn }
    :: List.rev (R.Log_record.Commit { txn; lsn = fresh_lsn t } :: rev_body)
  in
  ignore (R.Lock_manager.precommit t.locks ~txn);
  let ticket = R.Wal.commit_txn t.wal ~at ~txn ~deps records in
  t.open_tickets <- ticket :: t.open_tickets;
  retire t ~at;
  { txn_id = txn; submitted_at = at; durable_at = R.Wal.ticket_completion ticket }

let transact_abort t updates =
  check_alive t;
  check_slots ~what:"Txn_db.transact_abort" updates;
  let at = now t in
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  List.iter
    (fun (slot, _) ->
      (* exn_flow: released via [release_abort] below, after the rollback
         — auto-release without the rollback would break 2PL. *)
      match R.Lock_manager.acquire t.locks ~txn ~key:slot with
      | Some _ -> ()
      | None -> assert false)
    updates;
  (* Apply, remembering old values for the rollback.  Accumulated
     newest first ([List.rev_map] applies left to right, preserving
     update/LSN order) so the final log assembly needs no tail-append. *)
  let begin_lsn = fresh_lsn t in
  let rev_body =
    List.rev_map
      (fun (slot, delta) ->
        let old_value = R.Kv_store.get ~txn t.kv slot in
        let new_value = old_value + delta in
        let lsn = fresh_lsn t in
        R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:new_value;
        R.Log_record.Update { txn; lsn; slot; old_value; new_value })
      updates
  in
  (* Roll back in memory, newest first, logging compensating updates so
     redo replays the rollback too (otherwise a later committed write to
     the same slot would be clobbered by recovery's undo).  [rev_body]
     is already newest first; [List.rev_map] keeps that rollback order
     while yielding the compensation records newest last. *)
  let rev_compensation =
    List.rev_map
      (fun r ->
        match r with
        | R.Log_record.Update { slot; old_value; new_value; _ } ->
          let lsn = fresh_lsn t in
          R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:old_value;
          R.Log_record.Update
            { txn; lsn; slot; old_value = new_value; new_value = old_value }
        (* interactive transactions log value records only *)
        | R.Log_record.Begin _ | R.Log_record.Commit _ | R.Log_record.Abort _
        | R.Log_record.Command _ | R.Log_record.Ckpt_begin _
        | R.Log_record.Ckpt_end _ -> assert false)
      rev_body
  in
  ignore (R.Lock_manager.release_abort t.locks ~txn);
  let records =
    R.Log_record.Begin { txn; lsn = begin_lsn }
    :: List.rev_append rev_body
         (List.rev
            (R.Log_record.Abort { txn; lsn = fresh_lsn t }
            :: rev_compensation))
  in
  ignore (R.Wal.commit_txn t.wal ~at ~txn ~deps:[] records);
  txn

let flush t =
  check_alive t;
  let done_at = R.Wal.flush t.wal ~at:(now t) in
  S.Sim_clock.advance_to t.clock (Float.max done_at (R.Wal.quiesce_time t.wal));
  retire t ~at:(now t)

let checkpoint t =
  check_alive t;
  R.Wal.log_control t.wal ~at:(now t)
    [ R.Log_record.Ckpt_begin { lsn = fresh_lsn t } ];
  flush t;
  let st = R.Kv_store.checkpoint t.kv in
  R.Wal.log_control t.wal ~at:(now t)
    [ R.Log_record.Ckpt_end { lsn = fresh_lsn t } ];
  st

let crash t =
  check_alive t;
  R.Kv_store.crash t.kv;
  t.crashed <- true;
  t.open_tickets <- [];
  (* The lock table is volatile state: a crash loses holders, waiters and
     pre-committed sets alike (their transactions are decided by the
     durable log, not by lock-manager residue). *)
  t.locks <- R.Lock_manager.create ?recorder:t.recorder ()

let recover t =
  if not t.crashed then invalid_arg "Txn_db.recover: not crashed";
  let log = R.Wal.durable_records t.wal ~at:(now t) in
  let stats = R.Kv_store.recover t.kv ~log in
  t.crashed <- false;
  stats

let committed_txns t =
  let log = R.Wal.durable_records t.wal ~at:(now t) in
  List.filter_map
    (fun r ->
      match r with
      | R.Log_record.Commit { txn; _ } -> Some txn
      | R.Log_record.Begin _ | R.Log_record.Update _ | R.Log_record.Command _
      | R.Log_record.Abort _ | R.Log_record.Ckpt_begin _
      | R.Log_record.Ckpt_end _ -> None)
    log

let schedule t =
  match t.recorder with
  | Some r -> R.Schedule.events r
  | None -> []

let log_records t = R.Wal.all_records t.wal
let log_pages t = R.Wal.pages_written t.wal
let log_disk_bytes t = R.Wal.disk_bytes_written t.wal
