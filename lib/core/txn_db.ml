module R = Mmdb_recovery
module S = Mmdb_storage
module F = Mmdb_fault.Fault_plan
module O = Mmdb_overload.Overload

type commit_outcome = {
  txn_id : int;
  submitted_at : float;
  durable_at : float option;
}

type t = {
  clock : S.Sim_clock.t;
  wal : R.Wal.t;
  mutable locks : R.Lock_manager.t;
  recorder : R.Schedule.recorder option;
  stable : R.Stable_memory.t;
  kv : R.Kv_store.t;
  admission : O.Admission.t option;
  ovld : O.tally;
  work_per_update : float;
  faults : F.t option;
  retry_budget : int option;
  tickets : (int, R.Wal.ticket) Hashtbl.t;
  mutable next_txn : int;
  mutable next_lsn : int;
  mutable crashed : bool;
  mutable open_tickets : R.Wal.ticket list;
}

let create ?(strategy = R.Wal.Group_commit) ?(nrecords = 1000)
    ?(records_per_page = 20) ?(stable_bytes = 1 lsl 20)
    ?(record_schedule = false) ?admission ?(work_per_update = 0.0) ?faults
    ?breaker ?retry_budget () =
  if work_per_update < 0.0 then
    invalid_arg "Txn_db.create: work_per_update < 0";
  (match retry_budget with
  | Some n when n < 0 -> invalid_arg "Txn_db.create: retry_budget < 0"
  | Some _ | None -> ());
  let clock = S.Sim_clock.create () in
  let stable = R.Stable_memory.create ~capacity_bytes:stable_bytes in
  let recorder =
    if record_schedule then
      Some (R.Schedule.recorder ~now:(fun () -> S.Sim_clock.now clock))
    else None
  in
  (* An attached breaker also informs admission: while it is open the
     analytic class is shed (the shed-analytics degraded mode). *)
  (match (admission, breaker) with
  | Some a, Some b -> O.Admission.register_breaker a b
  | (Some _ | None), _ -> ());
  {
    clock;
    wal = R.Wal.create ~clock ?faults ?breaker strategy;
    locks = R.Lock_manager.create ?recorder ();
    recorder;
    stable;
    kv = R.Kv_store.create ?recorder ~nrecords ~records_per_page ~stable ();
    admission;
    ovld =
      (match admission with
      | Some a -> O.Admission.tally a
      | None -> O.tally_create ());
    work_per_update;
    faults;
    retry_budget;
    tickets = Hashtbl.create 256;
    next_txn = 0;
    next_lsn = 0;
    crashed = false;
    open_tickets = [];
  }

let nrecords t = R.Kv_store.nrecords t.kv
let balance t slot = R.Kv_store.get t.kv slot

let balance_stale t slot = R.Kv_store.snapshot_read t.kv slot

let now t = S.Sim_clock.now t.clock
let advance t dt = S.Sim_clock.advance t.clock dt
let overload_tally t = t.ovld
let admission t = t.admission

(* Seconds of log-device backlog at [now]: the admission controller's
   congestion signal (writes queue behind [Wal.quiesce_time]). *)
let log_lag t = Float.max 0.0 (R.Wal.quiesce_time t.wal -. now t)

let completion t ~txn =
  match Hashtbl.find_opt t.tickets txn with
  | Some tkt -> R.Wal.ticket_completion tkt
  | None -> None

let check_alive t =
  if t.crashed then invalid_arg "Txn_db: crashed; recover first"

let fresh_lsn t =
  t.next_lsn <- t.next_lsn + 1;
  t.next_lsn

(* Finalize lock-manager state for transactions whose commits became
   durable by [at]; the schedule gets a Commit_durable event stamped with
   the exact completion time (not the retire time). *)
let retire t ~at =
  let still_open =
    List.filter
      (fun tkt ->
        match R.Wal.ticket_completion tkt with
        | Some c when c <= at ->
          let txn = R.Wal.ticket_txn tkt in
          R.Schedule.emit t.recorder ~at:c ~txn R.Schedule.Commit_durable;
          (* exn_flow: 2PL hands release to commit retirement — these
             locks were acquired in [transact], not in this function. *)
          R.Lock_manager.finalize t.locks ~txn;
          false
        | Some _ | None -> true)
      t.open_tickets
  in
  t.open_tickets <- still_open

(* A slot locked twice inside one transaction would hit the lock
   manager's re-acquire path, whose empty grant muddies the dependency
   accounting — reject it up front. *)
let check_slots ~what updates =
  if updates = [] then invalid_arg (what ^ ": no updates");
  let slots = List.sort compare (List.map fst updates) in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  match dup slots with
  | Some s ->
    invalid_arg (Printf.sprintf "%s: duplicate slot %d in update list" what s)
  | None -> ()

(* Per-transaction I/O retry budget: installed on the shared fault plan
   for the duration of one transaction, so every transient-retry ride it
   triggers (log device, disk) draws from the same pool. *)
let install_budget t =
  match (t.retry_budget, t.faults) with
  | Some n, Some plan -> F.set_retry_budget plan (Some (O.Retry.budget n))
  | (Some _ | None), (Some _ | None) -> ()

let clear_budget t =
  match t.faults with
  | Some plan -> F.set_retry_budget plan None
  | None -> ()

let shed_expired t ~txn ~code ~site d =
  O.note_code t.ovld code;
  O.shed ~code ~site
    (Printf.sprintf "txn %d exceeded its deadline by %.6f s" txn
       (now t -. O.Deadline.expires d))

(* Deadline blew before the transaction touched memory: release whatever
   it holds, log an empty Begin/Abort pair so the durable log and the
   schedule audit both see a complete (aborted) transaction, then raise
   the typed shed. *)
let abort_expired_locking t ~txn ~code ~site d =
  (* exn_flow: release half of the timeout-abort path; the locks were
     acquired by [transact]'s staged lock loop, which calls this. *)
  ignore (R.Lock_manager.release_abort t.locks ~txn);
  let begin_lsn = fresh_lsn t in
  let records =
    [
      R.Log_record.Begin { txn; lsn = begin_lsn };
      R.Log_record.Abort { txn; lsn = fresh_lsn t };
    ]
  in
  ignore (R.Wal.commit_txn t.wal ~at:(now t) ~txn ~deps:[] records);
  shed_expired t ~txn ~code ~site d

let transact ?(priority = O.Oltp) ?deadline t updates =
  (* Degraded read-only mode: while recovery replay is pending, an
     admission-governed service sheds writes with a typed OVLD009 instead
     of failing the caller with an untyped invalid-arg. *)
  (match t.admission with
  | Some a when t.crashed && O.Admission.mode a = O.Admission.Read_only ->
    O.note_code t.ovld "OVLD009";
    O.shed ~code:"OVLD009" ~site:"txn.begin"
      "service is read-only until recovery replay completes (use \
       balance_stale for snapshot reads)"
  | Some _ | None -> ());
  check_alive t;
  check_slots ~what:"Txn_db.transact" updates;
  let at = now t in
  (match t.admission with
  | Some a ->
    O.Admission.admit a ~now:at ~priority ~lag:(log_lag t)
      ~inflight:(List.length t.open_tickets)
  | None -> ());
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  install_budget t;
  Fun.protect
    ~finally:(fun () -> clear_budget t)
    (fun () ->
      let expired d = O.Deadline.expired d ~now:(now t) in
      let deps =
        List.concat_map
          (fun (slot, _) ->
            (match deadline with
            | Some d when expired d ->
              abort_expired_locking t ~txn ~code:"OVLD004" ~site:"txn.lock" d
            | Some _ | None -> ());
            (* exn_flow: 2PL — locks release at commit retirement
               ([retire]); a mid-txn raise means crash, which resets the
               lock table. *)
            match R.Lock_manager.acquire ?deadline t.locks ~txn ~key:slot with
            | Some g -> g.R.Lock_manager.dependencies
            | None -> assert false)
          updates
      in
      let begin_lsn = fresh_lsn t in
      (* Newest-first accumulation ([List.rev_map] applies left to right,
         so LSNs are still drawn in update order); one final [List.rev]
         puts the log in natural order without a quadratic tail-append.
         Each update costs [work_per_update] of simulated time, which is
         what makes a mid-transaction deadline expiry reachable. *)
      let rev_body =
        List.rev_map
          (fun (slot, delta) ->
            if t.work_per_update > 0.0 then
              S.Sim_clock.advance t.clock t.work_per_update;
            let old_value = R.Kv_store.get ~txn t.kv slot in
            let new_value = old_value + delta in
            let lsn = fresh_lsn t in
            R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:new_value;
            R.Log_record.Update { txn; lsn; slot; old_value; new_value })
          updates
      in
      (match deadline with
      | Some d when expired d ->
        (* Deadline blew mid-transaction: compensate in memory (newest
           first, mirroring [transact_abort]), log the rollback, release
           the locks, and shed typed — recovery replays the rollback, so
           a later committed write to the same slot is never clobbered. *)
        let rev_compensation =
          List.rev_map
            (fun r ->
              match r with
              | R.Log_record.Update { slot; old_value; new_value; _ } ->
                let lsn = fresh_lsn t in
                R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:old_value;
                R.Log_record.Update
                  {
                    txn;
                    lsn;
                    slot;
                    old_value = new_value;
                    new_value = old_value;
                  }
              | R.Log_record.Begin _ | R.Log_record.Commit _
              | R.Log_record.Abort _ | R.Log_record.Command _
              | R.Log_record.Ckpt_begin _ | R.Log_record.Ckpt_end _ ->
                assert false)
            rev_body
        in
        ignore (R.Lock_manager.release_abort t.locks ~txn);
        let records =
          R.Log_record.Begin { txn; lsn = begin_lsn }
          :: List.rev_append rev_body
               (List.rev
                  (R.Log_record.Abort { txn; lsn = fresh_lsn t }
                  :: rev_compensation))
        in
        ignore (R.Wal.commit_txn t.wal ~at:(now t) ~txn ~deps:[] records);
        shed_expired t ~txn ~code:"OVLD006" ~site:"txn.commit" d
      | Some _ | None -> ());
      let commit_at = now t in
      let records =
        R.Log_record.Begin { txn; lsn = begin_lsn }
        :: List.rev
             (R.Log_record.Commit { txn; lsn = fresh_lsn t } :: rev_body)
      in
      ignore (R.Lock_manager.precommit t.locks ~txn);
      let ticket = R.Wal.commit_txn t.wal ~at:commit_at ~txn ~deps records in
      Hashtbl.replace t.tickets txn ticket;
      t.open_tickets <- ticket :: t.open_tickets;
      retire t ~at:commit_at;
      {
        txn_id = txn;
        submitted_at = at;
        durable_at = R.Wal.ticket_completion ticket;
      })

let transact_abort t updates =
  check_alive t;
  check_slots ~what:"Txn_db.transact_abort" updates;
  let at = now t in
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  List.iter
    (fun (slot, _) ->
      (* exn_flow: released via [release_abort] below, after the rollback
         — auto-release without the rollback would break 2PL. *)
      match R.Lock_manager.acquire t.locks ~txn ~key:slot with
      | Some _ -> ()
      | None -> assert false)
    updates;
  (* Apply, remembering old values for the rollback.  Accumulated
     newest first ([List.rev_map] applies left to right, preserving
     update/LSN order) so the final log assembly needs no tail-append. *)
  let begin_lsn = fresh_lsn t in
  let rev_body =
    List.rev_map
      (fun (slot, delta) ->
        let old_value = R.Kv_store.get ~txn t.kv slot in
        let new_value = old_value + delta in
        let lsn = fresh_lsn t in
        R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:new_value;
        R.Log_record.Update { txn; lsn; slot; old_value; new_value })
      updates
  in
  (* Roll back in memory, newest first, logging compensating updates so
     redo replays the rollback too (otherwise a later committed write to
     the same slot would be clobbered by recovery's undo).  [rev_body]
     is already newest first; [List.rev_map] keeps that rollback order
     while yielding the compensation records newest last. *)
  let rev_compensation =
    List.rev_map
      (fun r ->
        match r with
        | R.Log_record.Update { slot; old_value; new_value; _ } ->
          let lsn = fresh_lsn t in
          R.Kv_store.apply_update ~txn t.kv ~lsn ~slot ~value:old_value;
          R.Log_record.Update
            { txn; lsn; slot; old_value = new_value; new_value = old_value }
        (* interactive transactions log value records only *)
        | R.Log_record.Begin _ | R.Log_record.Commit _ | R.Log_record.Abort _
        | R.Log_record.Command _ | R.Log_record.Ckpt_begin _
        | R.Log_record.Ckpt_end _ -> assert false)
      rev_body
  in
  ignore (R.Lock_manager.release_abort t.locks ~txn);
  let records =
    R.Log_record.Begin { txn; lsn = begin_lsn }
    :: List.rev_append rev_body
         (List.rev
            (R.Log_record.Abort { txn; lsn = fresh_lsn t }
            :: rev_compensation))
  in
  ignore (R.Wal.commit_txn t.wal ~at ~txn ~deps:[] records);
  txn

let flush t =
  check_alive t;
  let done_at = R.Wal.flush t.wal ~at:(now t) in
  S.Sim_clock.advance_to t.clock (Float.max done_at (R.Wal.quiesce_time t.wal));
  retire t ~at:(now t)

let checkpoint t =
  check_alive t;
  R.Wal.log_control t.wal ~at:(now t)
    [ R.Log_record.Ckpt_begin { lsn = fresh_lsn t } ];
  flush t;
  let st = R.Kv_store.checkpoint t.kv in
  R.Wal.log_control t.wal ~at:(now t)
    [ R.Log_record.Ckpt_end { lsn = fresh_lsn t } ];
  st

let crash t =
  check_alive t;
  R.Kv_store.crash t.kv;
  t.crashed <- true;
  t.open_tickets <- [];
  (* Degrade rather than refuse: with an admission controller attached,
     the service keeps answering stale snapshot reads ([balance_stale])
     and sheds writes typed (OVLD009) until [recover] runs. *)
  (match t.admission with
  | Some a -> O.Admission.set_mode a O.Admission.Read_only
  | None -> ());
  (* The lock table is volatile state: a crash loses holders, waiters and
     pre-committed sets alike (their transactions are decided by the
     durable log, not by lock-manager residue). *)
  t.locks <- R.Lock_manager.create ?recorder:t.recorder ()

let recover t =
  if not t.crashed then invalid_arg "Txn_db.recover: not crashed";
  let log = R.Wal.durable_records t.wal ~at:(now t) in
  let stats = R.Kv_store.recover t.kv ~log in
  t.crashed <- false;
  (match t.admission with
  | Some a -> O.Admission.set_mode a O.Admission.Normal
  | None -> ());
  stats

let committed_txns t =
  let log = R.Wal.durable_records t.wal ~at:(now t) in
  List.filter_map
    (fun r ->
      match r with
      | R.Log_record.Commit { txn; _ } -> Some txn
      | R.Log_record.Begin _ | R.Log_record.Update _ | R.Log_record.Command _
      | R.Log_record.Abort _ | R.Log_record.Ckpt_begin _
      | R.Log_record.Ckpt_end _ -> None)
    log

let schedule t =
  match t.recorder with
  | Some r -> R.Schedule.events r
  | None -> []

let log_records t = R.Wal.all_records t.wal
let log_pages t = R.Wal.pages_written t.wal
let log_disk_bytes t = R.Wal.disk_bytes_written t.wal
