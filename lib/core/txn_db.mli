(** Transactional facade over the Section 5 recovery stack: a
    memory-resident account store with write-ahead logging, a pluggable
    commit strategy, pre-commit locking, fuzzy checkpoints, crash, and
    recovery — driven incrementally (one transaction at a time) rather
    than by the batch {!Mmdb_recovery.Recovery_manager}. *)

type t

val create : ?strategy:Mmdb_recovery.Wal.strategy -> ?nrecords:int ->
  ?records_per_page:int -> ?stable_bytes:int -> ?record_schedule:bool ->
  ?admission:Mmdb_overload.Overload.Admission.t -> ?work_per_update:float ->
  ?faults:Mmdb_fault.Fault_plan.t -> ?breaker:Mmdb_overload.Overload.Breaker.t ->
  ?retry_budget:int -> unit -> t
(** Defaults: group commit, 1000 accounts, 20 per page, 1 MiB stable
    memory, schedule recording off.  With [record_schedule:true] every
    lock-manager and transaction event is captured as a
    {!Mmdb_recovery.Schedule.event} (see {!schedule}) so
    {!Mmdb_verify.Txn_check} can audit the run.

    Overload extensions: [admission] gates {!transact} (token bucket,
    backlog, priority classes — {!Mmdb_overload.Overload.Admission});
    [work_per_update] (default 0, preserving historical timing) advances
    the simulated clock per applied update so deadlines can expire
    mid-transaction; [faults] arms the WAL's log devices with an
    injection plan; [breaker] attaches a circuit breaker to those
    devices (and registers it with [admission], enabling the
    shed-analytics degraded mode); [retry_budget] caps transient I/O
    retries {e per transaction} across all devices sharing the plan.
    @raise Invalid_argument if [work_per_update] or [retry_budget] is
    negative. *)

val nrecords : t -> int

val balance : t -> int -> int
(** Current in-memory balance.
    @raise Invalid_argument after a crash (recover first). *)

val balance_stale : t -> int -> int
(** Degraded read-only service: the slot's value in the last checkpoint
    image.  Unlike {!balance} this stays answerable while crashed
    (the snapshot survives on the simulated disk) — stale as of the last
    completed checkpoint sweep.  @raise Invalid_argument on bad slot. *)

val now : t -> float
(** Current simulated time. *)

val advance : t -> float -> unit
(** Move simulated time forward (models think time between
    transactions). *)

val overload_tally : t -> Mmdb_overload.Overload.tally
(** Shed/timeout/breaker tallies for this service (shared with the
    admission controller's tally when one was supplied). *)

val admission : t -> Mmdb_overload.Overload.Admission.t option
(** The admission controller supplied at {!create}, if any. *)

val log_lag : t -> float
(** Seconds of log-device backlog at the current instant (how far
    [Wal.quiesce_time] is ahead of now) — the congestion signal fed to
    admission control. *)

val completion : t -> txn:int -> float option
(** Durability time of [txn]'s commit, once its group-commit ticket
    resolved ([None] while still buffered or for unknown ids) — the
    latency oracle for the overload bench. *)

type commit_outcome = {
  txn_id : int;
  submitted_at : float;
  durable_at : float option;
      (** [None] while the commit record waits in a group-commit buffer *)
}

val transact :
  ?priority:Mmdb_overload.Overload.priority ->
  ?deadline:Mmdb_overload.Overload.Deadline.t ->
  t -> (int * int) list -> commit_outcome
(** [transact db updates] runs one transaction applying [(slot, delta)]
    pairs at the current simulated time: admission check (when a
    controller is attached), locks, in-memory update, log append,
    pre-commit.  [priority] (default [Oltp]) selects the admission
    class; [deadline] bounds the transaction's time budget — checked
    before each lock acquisition (OVLD004) and at the commit point after
    the updates ran (OVLD006: rolled back in memory with compensation
    records, locks released, nothing committed).
    @raise Invalid_argument on bad slots, an empty update list, or a
    slot appearing twice in one update list (the re-acquire path would
    muddy pre-commit dependency accounting).
    @raise Mmdb_overload.Overload.Shed with the OVLD code naming the
    rejection: admission (OVLD001/002/003/007), deadline expiry
    (OVLD004/006), per-transaction retry-budget exhaustion (OVLD008),
    or a write during degraded read-only mode after {!crash} (OVLD009).
    Every shed leaves no locks held and no balances changed.
    @raise Mmdb_fault.Fault.Io_error from the log device when a fault
    plan is armed. *)

val transact_abort : t -> (int * int) list -> int
(** Run a transaction that aborts {e before} pre-commit (the paper's
    invariant: pre-committed transactions never abort): updates are
    applied then rolled back in memory, locks release immediately, and the
    log records end with an Abort.  Returns the transaction id. *)

val flush : t -> unit
(** Force the log out (resolves pending group commits) and advance the
    clock to durability. *)

val checkpoint : t -> Mmdb_recovery.Kv_store.checkpoint_stats
(** Fuzzy checkpoint: log [Ckpt_begin], flush the log (WAL rule), sweep
    dirty pages to the snapshot, log [Ckpt_end]. *)

val crash : t -> unit
(** Lose volatile state at the current instant (pending group-commit
    buffers and the lock table are lost; completed and scheduled log
    writes survive, as does stable memory).  With an admission controller
    attached the service enters degraded read-only mode: {!balance_stale}
    keeps answering from the checkpoint image and {!transact} sheds
    OVLD009 until {!recover} restores normal service. *)

val recover : t -> Mmdb_recovery.Kv_store.recover_stats
(** Rebuild memory from the snapshot and the durable log.
    @raise Invalid_argument unless crashed.
    @raise Mmdb_recovery.Kv_store.Crashed_during_recovery when the
    store's crash hook fires mid-replay (restart-crash testing).
    @raise Mmdb_recovery.Replay.Rendezvous_deadlock defensively if the
    parallel-replay barrier invariant is ever broken. *)

val committed_txns : t -> int list
(** Transaction ids whose commit records are currently durable. *)

val schedule : t -> Mmdb_recovery.Schedule.event list
(** The recorded transaction schedule, in emission order (audit input for
    {!Mmdb_verify.Txn_check}); [[]] unless the database was created with
    [record_schedule:true].  [Commit_durable] events are stamped with the
    exact log-ticket completion time, so they can carry earlier
    timestamps than trace-order neighbours. *)

val log_records : t -> Mmdb_recovery.Log_record.t list
(** Everything submitted to the WAL so far, in order (audit input for
    {!Mmdb_verify.Log_check} and {!Mmdb_verify.Txn_check}). *)

val log_pages : t -> int
val log_disk_bytes : t -> int
