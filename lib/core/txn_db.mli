(** Transactional facade over the Section 5 recovery stack: a
    memory-resident account store with write-ahead logging, a pluggable
    commit strategy, pre-commit locking, fuzzy checkpoints, crash, and
    recovery — driven incrementally (one transaction at a time) rather
    than by the batch {!Mmdb_recovery.Recovery_manager}. *)

type t

val create : ?strategy:Mmdb_recovery.Wal.strategy -> ?nrecords:int ->
  ?records_per_page:int -> ?stable_bytes:int -> ?record_schedule:bool ->
  unit -> t
(** Defaults: group commit, 1000 accounts, 20 per page, 1 MiB stable
    memory, schedule recording off.  With [record_schedule:true] every
    lock-manager and transaction event is captured as a
    {!Mmdb_recovery.Schedule.event} (see {!schedule}) so
    {!Mmdb_verify.Txn_check} can audit the run. *)

val nrecords : t -> int

val balance : t -> int -> int
(** Current in-memory balance.
    @raise Invalid_argument after a crash (recover first). *)

val now : t -> float
(** Current simulated time. *)

val advance : t -> float -> unit
(** Move simulated time forward (models think time between
    transactions). *)

type commit_outcome = {
  txn_id : int;
  submitted_at : float;
  durable_at : float option;
      (** [None] while the commit record waits in a group-commit buffer *)
}

val transact : t -> (int * int) list -> commit_outcome
(** [transact db updates] runs one transaction applying [(slot, delta)]
    pairs at the current simulated time: locks, in-memory update, log
    append, pre-commit.  @raise Invalid_argument on bad slots, an empty
    update list, or a slot appearing twice in one update list (the
    re-acquire path would muddy pre-commit dependency accounting).
    @raise Mmdb_fault.Fault.Io_error from the log device when a fault
    plan is armed. *)

val transact_abort : t -> (int * int) list -> int
(** Run a transaction that aborts {e before} pre-commit (the paper's
    invariant: pre-committed transactions never abort): updates are
    applied then rolled back in memory, locks release immediately, and the
    log records end with an Abort.  Returns the transaction id. *)

val flush : t -> unit
(** Force the log out (resolves pending group commits) and advance the
    clock to durability. *)

val checkpoint : t -> Mmdb_recovery.Kv_store.checkpoint_stats
(** Fuzzy checkpoint: log [Ckpt_begin], flush the log (WAL rule), sweep
    dirty pages to the snapshot, log [Ckpt_end]. *)

val crash : t -> unit
(** Lose volatile state at the current instant (pending group-commit
    buffers and the lock table are lost; completed and scheduled log
    writes survive, as does stable memory). *)

val recover : t -> Mmdb_recovery.Kv_store.recover_stats
(** Rebuild memory from the snapshot and the durable log.
    @raise Invalid_argument unless crashed.
    @raise Mmdb_recovery.Kv_store.Crashed_during_recovery when the
    store's crash hook fires mid-replay (restart-crash testing).
    @raise Mmdb_recovery.Replay.Rendezvous_deadlock defensively if the
    parallel-replay barrier invariant is ever broken. *)

val committed_txns : t -> int list
(** Transaction ids whose commit records are currently durable. *)

val schedule : t -> Mmdb_recovery.Schedule.event list
(** The recorded transaction schedule, in emission order (audit input for
    {!Mmdb_verify.Txn_check}); [[]] unless the database was created with
    [record_schedule:true].  [Commit_durable] events are stamped with the
    exact log-ticket completion time, so they can carry earlier
    timestamps than trace-order neighbours. *)

val log_records : t -> Mmdb_recovery.Log_record.t list
(** Everything submitted to the WAL so far, in order (audit input for
    {!Mmdb_verify.Log_check} and {!Mmdb_verify.Txn_check}). *)

val log_pages : t -> int
val log_disk_bytes : t -> int
