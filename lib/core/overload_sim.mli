(** Open-loop overload experiment over the transactional service.

    Arrivals follow a Poisson process at the offered rate — they keep
    coming whether or not the service keeps up, which is the regime
    where an unprotected main-memory DBMS collapses: the log device
    (§5.2's bottleneck) queues every admitted commit, its backlog only
    grows, and soon {e every} transaction misses its deadline.  With the
    service layer armed (admission control, per-transaction deadlines,
    circuit breaker, degraded modes), excess offered load is shed with
    typed OVLD rejections and the admitted work still completes in
    time — graceful degradation instead of collapse. *)

type config = {
  seed : int;
  nrecords : int;
  duration : float;  (** simulated seconds of arrivals *)
  base_rate : float;  (** offered arrivals/second outside the spike *)
  spike_mult : float;  (** rate multiplier inside [spike_window] *)
  spike_window : float * float;
  deadline_budget : float;  (** per-transaction time budget, seconds *)
  analytic_fraction : float;  (** fraction of arrivals in the analytic class *)
  updates_per_txn : int;
  work_per_update : float;  (** simulated CPU seconds per applied update *)
  admission : bool;  (** arm the admission controller *)
  enforce_deadlines : bool;
      (** abort expired transactions in the service (OVLD004/6); when
          off, deadlines exist only in the client's eyes — late commits
          still count against goodput, and nothing stops the backlog
          from snowballing (the collapse control) *)
  rate_limit : float;  (** token-bucket refill rate (admitted txns/s) *)
  burst : float;  (** token-bucket capacity *)
  max_lag : float;  (** admission's log-backlog bound, seconds *)
  storm : bool;  (** arm the [storm] fault spec (transient log faults) *)
  retry_budget : int option;  (** per-transaction transient-retry budget *)
  strategy : Mmdb_recovery.Wal.strategy;
  record_schedule : bool;  (** audit the run with Txn_check afterwards *)
}

val default_config : config
(** 3 s at 700/s with a 10x spike in [1,2) s, 50 ms deadlines, 15%
    analytic, admission armed at 900/s, no storm, group commit. *)

type bucket = {
  b_start : float;
  b_arrivals : int;
  b_goodput : int;  (** committed and durable within deadline *)
  b_shed : int;
  b_timed_out : int;
  b_late : int;  (** committed but durable past the deadline *)
  b_p99_latency : float;  (** of durable commits arriving in this bucket *)
}
(** One 100 ms slice of the run (the degradation curve). *)

type outcome = {
  label : string;
  arrivals : int;
  committed : int;
  goodput_txns : int;  (** commits durable within their deadline *)
  goodput_tps : float;
  shed : int;  (** typed admission rejections (OVLD001/2/3/7/9) *)
  timed_out : int;  (** typed deadline expiries (OVLD004/5/6) *)
  late : int;  (** committed but durable past the deadline *)
  io_failures : int;  (** Io_error escapes (retry rides exhausted) *)
  p50_latency : float;
  p99_latency : float;
  shed_codes : (string * int) list;  (** OVLD code histogram, sorted *)
  tally : Mmdb_overload.Overload.tally;
  breaker_trips : int;
  breaker_reopens : int;
  breaker_final : string;  (** "closed" / "open" / "half-open" at the end *)
  buckets : bucket list;
  money_conserved : bool;  (** balances still sum to zero *)
  audit_errors : int;
      (** Txn_check errors over the recorded schedule; 0 when
          [record_schedule] was off (nothing to audit) *)
}

val run : config -> outcome
(** Drive one open-loop run and classify every arrival: goodput, late,
    shed (by OVLD code), timed out, or lost to I/O.
    @raise Invalid_argument on a non-positive duration or base rate. *)
