(** The main-memory database facade: tables, indexes, declarative queries
    through the Section 4 planner, and instrumentation.

    A database owns one simulated disk, one instrumentation environment,
    and a memory budget [|M|] in pages that every operator respects.  The
    query path exercises the whole stack the paper describes: storage
    pages, AVL/B+-tree indexes (Section 2), hash-based operators
    (Section 3), and selectivity-ordered planning (Section 4).  For the
    transactional/recovery side (Section 5) see {!Txn_db}. *)

type t

type index_kind = Avl_index | Btree_index

val create : ?page_size:int -> ?mem_pages:int -> ?cost:Mmdb_storage.Cost.t ->
  unit -> t
(** Defaults: 4096-byte pages, 256 memory pages, Table 2 costs. *)

val env : t -> Mmdb_storage.Env.t
val mem_pages : t -> int
val catalog : t -> Mmdb_planner.Catalog.t

val create_table : t -> name:string -> schema:Mmdb_storage.Schema.t -> unit
(** @raise Invalid_argument if the name is taken.
    @raise Mmdb_fault.Fault.Io_error from the storage layer when a
    fault plan is armed (registration touches pages). *)

val table_names : t -> string list

val insert : t -> table:string -> Mmdb_storage.Tuple.value list -> unit
(** Append a row (uncharged, as workload setup); maintains any indexes.
    @raise Not_found on unknown table. *)

val insert_many : t -> table:string -> Mmdb_storage.Tuple.value list list ->
  unit
(** Bulk insert; refreshes catalog statistics once at the end. *)

val analyze : t -> unit
(** Refresh optimizer statistics for every table (automatic after
    [insert_many]; call manually after many single [insert]s). *)

val create_index : t -> table:string -> index_kind -> unit
(** Index the table on its schema key.  Existing rows are loaded.
    @raise Invalid_argument if an index of that kind already exists. *)

val lookup : t -> table:string -> key:Mmdb_storage.Tuple.value ->
  Mmdb_storage.Tuple.value list option
(** Point lookup by key via the best available index (AVL preferred when
    both exist, per Section 2 fully-resident results); falls back to a
    scan.  @raise Invalid_argument on key type mismatch. *)

val range : t -> table:string -> lo:Mmdb_storage.Tuple.value ->
  hi:Mmdb_storage.Tuple.value -> Mmdb_storage.Tuple.value list list
(** Inclusive key-range query via an index (or scan fallback), ascending. *)

val query : t -> Mmdb_planner.Algebra.expr -> Mmdb_storage.Relation.t
(** Statically check ({!Mmdb_planner.Plan_check}), optimize, and execute.
    @raise Invalid_argument with the rendered diagnostics when the plan is
    ill-formed (use {!check} to inspect them structurally).
    @raise Mmdb_fault.Fault.Io_error and
    @raise Mmdb_fault.Fault.Unrecoverable from the storage layer when a
    fault plan is armed (execution reads pages).
    @raise Mmdb_overload.Overload.Shed (OVLD005) via the executor's
    operator-boundary deadline checks when a deadline-carrying caller
    reaches this path. *)

val check : t -> Mmdb_planner.Algebra.expr -> Mmdb_util.Diag.t list
(** Static plan diagnostics against this database's catalog, without
    executing. *)

val audit : t -> (string * Mmdb_util.Diag.t list) list
(** Run {!Mmdb_verify.Audit} over every index of every table (components
    named ["table.avl"] / ["table.btree"], sorted). *)

val sql : t -> string -> Mmdb_storage.Tuple.value list list
(** [sql db "SELECT dept, COUNT( * ) FROM emp GROUP BY dept"] — parse
    ({!Mmdb_planner.Sql}), plan, execute, decode.
    @raise Invalid_argument on parse errors. *)

val sql_explain : t -> string -> string
(** The plan for a SQL query. *)

type exec_result =
  | Rows of Mmdb_storage.Tuple.value list list
  | Affected of int

val execute : t -> string -> exec_result
(** [execute db stmt] runs a query {e or} DML statement:
    [INSERT INTO t VALUES (..)], [DELETE FROM t WHERE ..],
    [UPDATE t SET c = lit WHERE ..].  DML maintains indexes and refreshes
    optimizer statistics; DELETE/UPDATE rebuild the table (the
    memory-resident analogue of compaction).
    @raise Invalid_argument on parse/arity errors, [Not_found] on unknown
    tables. *)

val query_rows : t -> Mmdb_planner.Algebra.expr ->
  Mmdb_storage.Tuple.value list list
(** {!query} decoded. *)

val explain : t -> Mmdb_planner.Algebra.expr -> string
(** The optimizer's plan for the expression. *)

val stats : t -> string
(** One-line simulated-time / counter summary since creation. *)

val save : t -> string -> unit
(** [save db path] writes every table (schema, rows, index kinds) to a
    single binary file.  The format is versioned and
    architecture-independent (fixed-width big-endian fields; tuple bytes
    are stored verbatim — they are already order-preserving encodings). *)

val load : ?page_size:int -> ?mem_pages:int -> ?cost:Mmdb_storage.Cost.t ->
  string -> t
(** [load path] reconstructs a database saved with {!save}: tables are
    bulk-loaded, declared indexes rebuilt, statistics recomputed.
    @raise Invalid_argument on a bad magic number, version, or truncated
    file. *)
