module R = Mmdb_recovery
module U = Mmdb_util
module F = Mmdb_fault.Fault_plan
module Fault = Mmdb_fault.Fault
module O = Mmdb_overload.Overload

type config = {
  seed : int;
  nrecords : int;
  duration : float;
  base_rate : float;
  spike_mult : float;
  spike_window : float * float;
  deadline_budget : float;
  analytic_fraction : float;
  updates_per_txn : int;
  work_per_update : float;
  admission : bool;
  enforce_deadlines : bool;
  rate_limit : float;
  burst : float;
  max_lag : float;
  storm : bool;
  retry_budget : int option;
  strategy : R.Wal.strategy;
  record_schedule : bool;
}

let default_config =
  {
    seed = 7;
    nrecords = 512;
    duration = 3.0;
    base_rate = 700.0;
    spike_mult = 10.0;
    spike_window = (1.0, 2.0);
    deadline_budget = 0.05;
    analytic_fraction = 0.15;
    updates_per_txn = 2;
    work_per_update = 250e-6;
    admission = true;
    enforce_deadlines = true;
    rate_limit = 900.0;
    burst = 64.0;
    max_lag = 0.05;
    storm = false;
    retry_budget = Some 8;
    strategy = R.Wal.Group_commit;
    record_schedule = false;
  }

type bucket = {
  b_start : float;
  b_arrivals : int;
  b_goodput : int;  (** committed and durable within deadline *)
  b_shed : int;
  b_timed_out : int;
  b_late : int;  (** committed but durable past the deadline *)
  b_p99_latency : float;  (** of durable commits arriving in this bucket *)
}

type outcome = {
  label : string;
  arrivals : int;
  committed : int;
  goodput_txns : int;
  goodput_tps : float;
  shed : int;
  timed_out : int;
  late : int;
  io_failures : int;
  p50_latency : float;
  p99_latency : float;
  shed_codes : (string * int) list;
  tally : O.tally;
  breaker_trips : int;
  breaker_reopens : int;
  breaker_final : string;
  buckets : bucket list;
  money_conserved : bool;
  audit_errors : int;
      (** Txn_check errors over the recorded schedule; 0 when
          [record_schedule] was off (nothing to audit) *)
}

let bucket_width = 0.1

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let i = int_of_float (Float.of_int (n - 1) *. p) in
    sorted.(min (n - 1) (max 0 i))

(* An arrival that never got a ticket: shed with a typed code, or lost
   to an I/O error that escaped the retry ride. *)
type fate = Shed_code of string | Io_failed

let run cfg =
  if cfg.duration <= 0.0 then invalid_arg "Overload_sim: duration <= 0";
  if cfg.base_rate <= 0.0 then invalid_arg "Overload_sim: base_rate <= 0";
  let rng = U.Xorshift.create cfg.seed in
  let tally = O.tally_create () in
  let admission =
    if cfg.admission then
      Some
        (O.Admission.create ~rate:cfg.rate_limit ~burst:cfg.burst
           ~max_lag:cfg.max_lag ~tally ())
    else None
  in
  let breaker = O.Breaker.create ~tally ~name:"log" () in
  let faults =
    if not cfg.storm then None
    else
      match F.of_spec "storm" with
      | Ok rules -> Some (F.create ~seed:cfg.seed rules)
      | Error m -> invalid_arg ("Overload_sim: " ^ m)
  in
  let db =
    Txn_db.create ~strategy:cfg.strategy ~nrecords:cfg.nrecords
      ~record_schedule:cfg.record_schedule ?admission
      ~work_per_update:cfg.work_per_update ?faults ~breaker
      ?retry_budget:cfg.retry_budget ()
  in
  let spike_lo, spike_hi = cfg.spike_window in
  let rate_at t =
    if t >= spike_lo && t < spike_hi then cfg.base_rate *. cfg.spike_mult
    else cfg.base_rate
  in
  (* Open loop: arrivals keep coming at the offered rate whether or not
     the service keeps up — the regime where an unprotected server
     collapses (§5.2's log device models the bottleneck: its queue only
     grows).  Each arrival is (txn id option, arrival time, expiry,
     immediate fate if it never got a ticket). *)
  let arrivals = ref [] in
  let io_failures = ref 0 in
  let next = ref (U.Xorshift.exponential rng ~mean:(1.0 /. cfg.base_rate)) in
  while !next < cfg.duration do
    let at = !next in
    (* Open loop: the arrival happened at [at] whether the service was
       ready or not.  If the service clock is already past [at] the
       transaction starts late — queued behind earlier work — and its
       deadline still anchors at the {e scheduled} arrival, so a
       backlogged service blows deadlines instead of stretching time. *)
    if at > Txn_db.now db then Txn_db.advance db (at -. Txn_db.now db);
    let arrival = at in
    let deadline = O.Deadline.make ~now:arrival ~budget:cfg.deadline_budget in
    let priority =
      if U.Xorshift.float rng 1.0 < cfg.analytic_fraction then O.Analytic
      else O.Oltp
    in
    let a = U.Xorshift.zipf rng ~n:cfg.nrecords ~theta:0.8 in
    let b = (a + 1 + U.Xorshift.int rng (cfg.nrecords - 1)) mod cfg.nrecords in
    let delta = 1 + U.Xorshift.int rng 100 in
    let updates =
      if cfg.updates_per_txn <= 2 then [ (a, delta); (b, -delta) ]
      else
        (* wider transactions still conserve money pairwise *)
        List.concat
          (List.init (cfg.updates_per_txn / 2) (fun i ->
               let x = (a + (2 * i)) mod cfg.nrecords in
               let y = (b + (2 * i)) mod cfg.nrecords in
               if x = y then [ (x, 0) ]
               else [ (x, delta); (y, -delta) ]))
    in
    (* Without enforcement the service never aborts expired work — the
       deadline exists only in the client's eyes (lateness), which is
       what lets the backlog snowball: the collapse control. *)
    let enforced = if cfg.enforce_deadlines then Some deadline else None in
    (match Txn_db.transact ~priority ?deadline:enforced db updates with
    | o ->
      arrivals :=
        (Some o.Txn_db.txn_id, arrival, O.Deadline.expires deadline, None)
        :: !arrivals
    | exception O.Shed r ->
      arrivals :=
        (None, arrival, O.Deadline.expires deadline, Some (Shed_code r.O.code))
        :: !arrivals
    | exception Fault.Io_error _ ->
      incr io_failures;
      arrivals :=
        (None, arrival, O.Deadline.expires deadline, Some Io_failed)
        :: !arrivals);
    next := at +. U.Xorshift.exponential rng ~mean:(1.0 /. rate_at at)
  done;
  (* Drain: resolve every group-commit ticket so completions are known.
     The flush can itself hit the storm's transients. *)
  (try Txn_db.flush db
   with Fault.Io_error _ -> incr io_failures);
  let arrivals = List.rev !arrivals in
  let n_buckets =
    int_of_float (Float.ceil (cfg.duration /. bucket_width)) |> max 1
  in
  let b_arr = Array.make n_buckets 0 in
  let b_good = Array.make n_buckets 0 in
  let b_shed = Array.make n_buckets 0 in
  let b_timeout = Array.make n_buckets 0 in
  let b_late = Array.make n_buckets 0 in
  let b_lat = Array.make n_buckets [] in
  let latencies = ref [] in
  let committed = ref 0 in
  let goodput_txns = ref 0 in
  let shed = ref 0 in
  let timed_out = ref 0 in
  let late = ref 0 in
  let codes = Hashtbl.create 16 in
  let note_code c =
    Hashtbl.replace codes c (1 + Option.value ~default:0 (Hashtbl.find_opt codes c))
  in
  List.iter
    (fun (txn, arrival, expires, immediate) ->
      let bi = min (n_buckets - 1) (int_of_float (arrival /. bucket_width)) in
      b_arr.(bi) <- b_arr.(bi) + 1;
      match (txn, immediate) with
      | Some id, None -> (
        match Txn_db.completion db ~txn:id with
        | Some durable_at ->
          incr committed;
          let lat = durable_at -. arrival in
          latencies := lat :: !latencies;
          b_lat.(bi) <- lat :: b_lat.(bi);
          if durable_at <= expires then begin
            incr goodput_txns;
            b_good.(bi) <- b_good.(bi) + 1
          end
          else begin
            incr late;
            b_late.(bi) <- b_late.(bi) + 1
          end
        | None ->
          (* ticket never resolved (lost in the final-flush fault) *)
          incr late;
          b_late.(bi) <- b_late.(bi) + 1)
      | _, Some (Shed_code c) ->
        note_code c;
        if c = "OVLD004" || c = "OVLD005" || c = "OVLD006" then begin
          incr timed_out;
          b_timeout.(bi) <- b_timeout.(bi) + 1
        end
        else begin
          incr shed;
          b_shed.(bi) <- b_shed.(bi) + 1
        end
      | _, Some Io_failed | None, None -> ())
    arrivals;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let buckets =
    List.init n_buckets (fun i ->
        let l = Array.of_list b_lat.(i) in
        Array.sort compare l;
        {
          b_start = float_of_int i *. bucket_width;
          b_arrivals = b_arr.(i);
          b_goodput = b_good.(i);
          b_shed = b_shed.(i);
          b_timed_out = b_timeout.(i);
          b_late = b_late.(i);
          b_p99_latency = percentile l 0.99;
        })
  in
  let money =
    let sum = ref 0 in
    for s = 0 to cfg.nrecords - 1 do
      sum := !sum + Txn_db.balance db s
    done;
    !sum = 0
  in
  let audit_errors =
    if not cfg.record_schedule then 0
    else begin
      let diags =
        Mmdb_verify.Txn_check.audit ~log:(Txn_db.log_records db)
          (Txn_db.schedule db)
      in
      List.length
        (List.filter
           (fun (d : U.Diag.t) -> d.U.Diag.severity = U.Diag.Error)
           diags)
    end
  in
  {
    label =
      Printf.sprintf "%s%s"
        (if cfg.admission then "admission" else "no-admission")
        (if cfg.storm then "+storm" else "");
    arrivals = List.length arrivals;
    committed = !committed;
    goodput_txns = !goodput_txns;
    goodput_tps = float_of_int !goodput_txns /. cfg.duration;
    shed = !shed;
    timed_out = !timed_out;
    late = !late;
    io_failures = !io_failures;
    p50_latency = percentile sorted 0.5;
    p99_latency = percentile sorted 0.99;
    shed_codes =
      List.sort compare
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes []);
    tally;
    breaker_trips = O.Breaker.trips breaker;
    breaker_reopens = O.Breaker.reopens breaker;
    breaker_final =
      (match O.Breaker.state breaker ~now:(Txn_db.now db) with
      | O.Breaker.Closed -> "closed"
      | O.Breaker.Open -> "open"
      | O.Breaker.Half_open -> "half-open");
    buckets;
    money_conserved = money;
    audit_errors;
  }
