(* Table-driven reflected CRC-32 (polynomial 0xEDB88320).  The table is
   built eagerly at module initialisation — a lazy here would race when
   first forced from two domains (Lazy is not domain-safe). *)

(* race_check: write-once CRC table filled before any domain can spawn,
   read-only afterwards *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

let step crc byte = table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc32 ?(init = 0) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.crc32: range out of bounds";
  let crc = ref (init lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := step !crc (Char.code (Bytes.unsafe_get buf i))
  done;
  !crc lxor 0xFFFFFFFF

let crc32_bytes buf = crc32 buf ~pos:0 ~len:(Bytes.length buf)

let crc32_string s = crc32_bytes (Bytes.unsafe_of_string s)

let crc32_ints arr ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length arr then
    invalid_arg "Checksum.crc32_ints: range out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let v = arr.(i) in
    for b = 0 to 7 do
      crc := step !crc ((v asr (8 * b)) land 0xFF)
    done
  done;
  !crc lxor 0xFFFFFFFF
