type 'a t = {
  cmp : 'a -> 'a -> int;
  on_swap : unit -> unit;
  mutable data : 'a array;
  mutable size : int;
}

let nop () = ()
let create ?(on_swap = nop) ~cmp () = { cmp; on_swap; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      h.on_swap ();
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    h.on_swap ();
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let min = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some min
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let replace_min h x =
  if h.size = 0 then invalid_arg "Heap.replace_min: empty heap";
  let min = h.data.(0) in
  h.data.(0) <- x;
  sift_down h 0;
  min

let of_array ?(on_swap = nop) ~cmp a =
  let data = Array.copy a in
  let h = { cmp; on_swap; data; size = Array.length a } in
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done;
  h

let to_sorted_list h =
  let rec drain acc =
    match pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(parent) h.data.(i) > 0 then ok := false
  done;
  !ok
