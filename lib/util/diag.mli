(** Structured diagnostics for the verification layer ({!Mmdb_verify}).

    Every analyzer (plan checker, WAL auditor, buffer-pool sanitizer,
    structure invariant audit) reports findings as a flat list of [t]:
    a stable error code, a severity, a location path (into an expression
    tree, a log stream, or a pool), and a human-readable message.  Codes
    are stable across releases so tests and tooling can match on them. *)

type severity = Error | Warning

type t = {
  code : string;  (** stable identifier, e.g. ["PLAN002"] or ["LOG004"] *)
  severity : severity;
  path : string;
      (** location: ["$.input.left"] for expression trees, ["lsn=42 txn=7"]
          for log streams, ["pid=3"] for pool frames, or [""] *)
  message : string;
}

val error : code:string -> path:string -> string -> t
val warning : code:string -> path:string -> string -> t

val errors : t list -> t list
(** Just the [Error]-severity diagnostics. *)

val warnings : t list -> t list

val has_errors : t list -> bool

val has_code : string -> t list -> bool
(** [has_code c ds] is true when some diagnostic carries code [c]. *)

val pp : Format.formatter -> t -> unit
(** ["error[PLAN002] at $.input: unknown column \"salry\""]. *)

val to_string : t -> string

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line; prints ["no diagnostics"] when empty. *)

val summary : t list -> string
(** ["2 errors, 1 warning"]. *)
