(** CRC-32 checksums (IEEE 802.3 polynomial, reflected).

    The fault-injection plane ({!Mmdb_fault}) relies on every persistent
    artifact — data pages, serialized log records, snapshot pages —
    carrying a checksum so that torn writes and media corruption are
    *detectable* rather than silent.  CRC-32 detects all single-bit
    errors and all burst errors up to 32 bits, which covers the injected
    fault classes exactly. *)

val crc32 : ?init:int -> bytes -> pos:int -> len:int -> int
(** [crc32 buf ~pos ~len] is the CRC-32 of [len] bytes of [buf] starting
    at [pos], as a non-negative int in [\[0, 2^32)].  [init] continues a
    running checksum (pass a previous result to chain regions).
    @raise Invalid_argument if the range is out of bounds. *)

val crc32_bytes : bytes -> int
(** Checksum of a whole buffer. *)

val crc32_string : string -> int

val crc32_ints : int array -> pos:int -> len:int -> int
(** Checksum of a slice of an int array (each element contributes its
    low 8 bytes, little-endian) — used for the recovery store's
    page-structured snapshot, which lives as an [int array]. *)
