type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  path : string;
  message : string;
}

let error ~code ~path message = { code; severity = Error; path; message }
let warning ~code ~path message = { code; severity = Warning; path; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_code code ds = List.exists (fun d -> d.code = code) ds

let severity_string = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  if d.path = "" then
    Format.fprintf ppf "%s[%s]: %s" (severity_string d.severity) d.code
      d.message
  else
    Format.fprintf ppf "%s[%s] at %s: %s" (severity_string d.severity) d.code
      d.path d.message

let to_string d = Format.asprintf "%a" pp d

let pp_list ppf = function
  | [] -> Format.fprintf ppf "no diagnostics"
  | ds ->
    Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds

let summary ds =
  let ne = List.length (errors ds) and nw = List.length (warnings ds) in
  let plural n = if n = 1 then "" else "s" in
  Printf.sprintf "%d error%s, %d warning%s" ne (plural ne) nw (plural nw)
