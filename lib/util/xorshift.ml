(* The Zipf normaliser memo lives inside the stream (not at module
   level): streams are passed per-domain by value, so a generator owns
   all of its mutable state and two domains never share a table. *)
type t = {
  mutable state : int64;
  zeta_memo : (int * float, float) Hashtbl.t;  (* (n, theta) -> normaliser *)
}

let default_nonzero = 0x9E3779B97F4A7C15L

let create seed =
  let s = Int64.of_int seed in
  {
    state = (if Int64.equal s 0L then default_nonzero else s);
    zeta_memo = Hashtbl.create 7;
  }

let copy t = { state = t.state; zeta_memo = Hashtbl.copy t.zeta_memo }

(* xorshift64* : Vigna, "An experimental exploration of Marsaglia's xorshift
   generators, scrambled". *)
let next_int64 t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

(* Non-negative 62-bit value: safe to convert to OCaml int on 64-bit. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  next_nonneg t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Xorshift.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = next_nonneg t in
  bound *. (float_of_int x /. 4611686018427387904.0)

let bool t = Int64.compare (next_int64 t) 0L < 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then
    invalid_arg "Xorshift.sample_without_replacement: need 0 <= k <= n";
  (* Partial Fisher-Yates over a lazily materialised identity permutation:
     O(k) space via a hashtable of displaced slots. *)
  let displaced = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt displaced i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = int_in_range t ~lo:i ~hi:(n - 1) in
      let vi = get i and vj = get j in
      Hashtbl.replace displaced j vi;
      Hashtbl.replace displaced i vj;
      vj)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-18 else u in
  -.mean *. log u

(* Zipf via the classic Gray et al. (SIGMOD'94) self-similar trick is not
   exact; we use the standard inverse-power CDF with a precomputed
   normaliser memoised per stream and (n, theta).  The memo is tiny:
   experiments use a handful of distinct configurations. *)
let zeta t n theta =
  match Hashtbl.find_opt t.zeta_memo (n, theta) with
  | Some z -> z
  | None ->
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    Hashtbl.replace t.zeta_memo (n, theta) !z;
    !z

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Xorshift.zipf: n must be positive";
  if theta <= 0.0 then int t n
  else begin
    let zn = zeta t n theta in
    let u = float t 1.0 *. zn in
    let rec find i acc =
      if i > n then n - 1
      else
        let acc = acc +. (1.0 /. Float.pow (float_of_int i) theta) in
        if acc >= u then i - 1 else find (i + 1) acc
    in
    find 1 0.0
  end
