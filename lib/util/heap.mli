(** Binary min-heap with a caller-supplied ordering.

    Used by the replacement-selection run generator and the n-way merge of
    the external sort (Section 3.4 of the paper calls for "a selection tree
    or some other priority queue structure"). *)

type 'a t
(** A mutable heap of ['a]. *)

val create : ?on_swap:(unit -> unit) -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first).
    [on_swap] is invoked once per element exchange during sifting — the
    hook that lets executors charge [swap]s for actual data movement while
    the comparator charges [comp]s, keeping the two counts distinct (the
    cost-model convention of {!Mmdb_model.Join_model.ops}). *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x].  O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element.  O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop}.  @raise Invalid_argument if the heap is empty. *)

val replace_min : 'a t -> 'a -> 'a
(** [replace_min h x] atomically pops the minimum and pushes [x], returning
    the old minimum.  One sift instead of two — the hot operation of
    replacement selection.  @raise Invalid_argument if empty. *)

val of_array :
  ?on_swap:(unit -> unit) -> cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** [of_array ~cmp a] heapifies a copy of [a] in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap, returning elements in ascending order.  Destructive. *)

val check_invariant : 'a t -> bool
(** [check_invariant h] verifies the heap property (test helper). *)
