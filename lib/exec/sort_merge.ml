module S = Mmdb_storage
module U = Mmdb_util

(* Charged heapsort of an in-memory tuple array — the model's priority
   queue over ~n log2 n steps (the regime above ratio 1.0 where |M|
   exceeds the relation and no run I/O is needed).  Like the external
   path, comparisons charge comp and element exchanges charge swap, so
   the in-memory and spilled paths share one accounting convention. *)
let sort_in_memory env schema tuples =
  let cmp a b =
    S.Env.charge_comp env;
    S.Tuple.compare_keys schema a b
  in
  let heap =
    U.Heap.of_array ~on_swap:(fun () -> S.Env.charge_swap env) ~cmp tuples
  in
  Array.iteri (fun i _ -> tuples.(i) <- U.Heap.pop_exn heap) tuples

let join_in_memory env ~r_schema ~s_schema r s emit =
  let load rel =
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge rel (fun t -> acc := t :: !acc);
    Array.of_list (List.rev !acc)
  in
  let ra = load r and sa = load s in
  sort_in_memory env r_schema ra;
  sort_in_memory env s_schema sa;
  let count = ref 0 in
  let nr = Array.length ra and ns = Array.length sa in
  let i = ref 0 and j = ref 0 in
  while !i < nr && !j < ns do
    let c = Join_common.compare_rs env ~r_schema ~s_schema ra.(!i) sa.(!j) in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* Emit the full group cross-product. *)
      let key = S.Tuple.key_bytes r_schema ra.(!i) in
      let gi = ref !i in
      while
        !gi < nr
        && (S.Env.charge_comp env;
            S.Tuple.compare_key_to r_schema ra.(!gi) key = 0)
      do
        incr gi
      done;
      let gj = ref !j in
      while
        !gj < ns
        && (S.Env.charge_comp env;
            S.Tuple.compare_key_to s_schema sa.(!gj) key = 0)
      do
        incr gj
      done;
      for x = !i to !gi - 1 do
        for y = !j to !gj - 1 do
          incr count;
          emit ra.(x) sa.(y)
        done
      done;
      i := !gi;
      j := !gj
    end
  done;
  !count

let join ~mem_pages ~fudge r s emit =
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  (* Above the paper's ratio 1.0 both relations sort entirely in memory
     and no run I/O is needed ("sort-merge will improve to approximately
     900 seconds, since fewer IO operations are needed"). *)
  let fits rel =
    float_of_int (S.Relation.npages rel) *. fudge <= float_of_int mem_pages
  in
  if fits r && fits s then join_in_memory env ~r_schema ~s_schema r s emit
  else begin
  let runs_r = Run_gen.runs ~mem_pages r in
  let runs_s = Run_gen.runs ~mem_pages s in
  (* One buffer page per run: when the paper's two-pass assumption fails,
     take extra merge passes until both run sets share |M| buffers. *)
  let limit = max 1 (mem_pages / 2) in
  let runs_r = External_sort.reduce_runs ~mem_pages ~limit runs_r in
  let runs_s = External_sort.reduce_runs ~mem_pages ~limit runs_s in
  let cr = External_sort.cursor_of_runs ~schema:r_schema runs_r in
  let cs = External_sort.cursor_of_runs ~schema:s_schema runs_s in
  let count = ref 0 in
  (* Classic merge-join with group buffering on the R side. *)
  let rec loop () =
    match (External_sort.peek cr, External_sort.peek cs) with
    | None, _ | _, None -> ()
    | Some r_tup, Some s_tup ->
      let c = Join_common.compare_rs env ~r_schema ~s_schema r_tup s_tup in
      if c < 0 then begin
        ignore (External_sort.next cr);
        loop ()
      end
      else if c > 0 then begin
        ignore (External_sort.next cs);
        loop ()
      end
      else begin
        (* Collect the whole R group with this key. *)
        let key = S.Tuple.key_bytes r_schema r_tup in
        let group = ref [] in
        let rec gather () =
          match External_sort.peek cr with
          | Some t when
              (S.Env.charge_comp env;
               S.Tuple.compare_key_to r_schema t key = 0) ->
            group := t :: !group;
            ignore (External_sort.next cr);
            gather ()
          | Some _ | None -> ()
        in
        gather ();
        let group = List.rev !group in
        (* Stream S tuples with the same key against the buffered group. *)
        let rec sweep () =
          match External_sort.peek cs with
          | Some t when
              (S.Env.charge_comp env;
               S.Tuple.compare_key_to s_schema t key = 0) ->
            List.iter
              (fun r_t ->
                incr count;
                emit r_t t)
              group;
            ignore (External_sort.next cs);
            sweep ()
          | Some _ | None -> ()
        in
        sweep ();
        loop ()
      end
  in
  loop ();
  List.iter S.Relation.free_pages runs_r;
  List.iter S.Relation.free_pages runs_s;
  !count
  end
