module S = Mmdb_storage

let divide ~mem_pages ~fudge ?(seed = 0xd1f) ~divisor_col r s =
  if mem_pages <= 1 then invalid_arg "Division.divide: mem_pages <= 1";
  let r_schema = S.Relation.schema r in
  let s_schema = S.Relation.schema s in
  let env = S.Relation.env r in
  let disk = S.Relation.disk r in
  let div_idx =
    try S.Schema.column_index r_schema divisor_col
    with Not_found -> invalid_arg ("Division: unknown column " ^ divisor_col)
  in
  let div_width = (S.Schema.column_at r_schema div_idx).S.Schema.width in
  if div_width <> S.Schema.key_width s_schema then
    invalid_arg "Division: divisor column width differs from S's key";
  let quotient_cols =
    List.filter_map
      (fun (c : S.Schema.column) ->
        if c.S.Schema.name = divisor_col then None else Some c.S.Schema.name)
      (S.Schema.columns r_schema)
  in
  if quotient_cols = [] then
    invalid_arg "Division: R has no quotient columns";
  let out_schema = Projection.project_schema r_schema ~cols:quotient_cols in
  let project_quotient = Projection.projector r_schema ~cols:quotient_cols out_schema in
  (* Divisor key set, in memory. *)
  let divisor = Hashtbl.create 64 in
  S.Relation.iter_tuples_nocharge s (fun tuple ->
      S.Env.charge_hash env;
      Hashtbl.replace divisor
        (Bytes.unsafe_to_string (S.Tuple.key_bytes s_schema tuple))
        ());
  let needed = Hashtbl.length divisor in
  let out =
    S.Relation.create ~disk ~name:(S.Relation.name r ^ ".div")
      ~schema:out_schema
  in
  let div_off = S.Schema.offset r_schema div_idx in
  (* Resolve one batch of R tuples: group by quotient bytes, collect the
     divisor values seen, emit covered groups. *)
  let resolve tuples =
    let groups = Hashtbl.create 256 in
    List.iter
      (fun tuple ->
        S.Env.charge_hash env;
        let q = Bytes.to_string (project_quotient tuple) in
        let dv = Bytes.sub_string tuple div_off div_width in
        S.Env.charge_comp env;
        if Hashtbl.mem divisor dv then begin
          let seen =
            match Hashtbl.find_opt groups q with
            | Some s -> s
            | None ->
              let s = Hashtbl.create 8 in
              S.Env.charge_move env;
              Hashtbl.replace groups q s;
              s
          in
          Hashtbl.replace seen dv ()
        end
        else if needed = 0 && not (Hashtbl.mem groups q) then begin
          (* Empty divisor: every quotient group qualifies vacuously. *)
          S.Env.charge_move env;
          Hashtbl.replace groups q (Hashtbl.create 1)
        end)
      tuples;
    let emitted = ref [] in
    Hashtbl.iter
      (fun q seen ->
        if Hashtbl.length seen >= needed then emitted := q :: !emitted)
      groups;
    List.iter
      (fun q -> S.Relation.append out (Bytes.of_string q))
      (List.sort String.compare !emitted)
  in
  (* Hybrid-style split of R by quotient hash: groups never straddle
     partitions, so each resolves independently. *)
  let b =
    Hybrid_hash.partitions ~mem_pages ~fudge ~r_pages:(S.Relation.npages r)
  in
  if b = 0 then begin
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge r (fun t -> acc := t :: !acc);
    resolve (List.rev !acc)
  end
  else begin
    let write_mode = if b <= 1 then S.Disk.Seq else S.Disk.Rand in
    let buckets =
      Array.init b (fun i ->
          let rel =
            S.Relation.create ~disk
              ~name:(Printf.sprintf "%s.div%d" (S.Relation.name r) i)
              ~schema:r_schema
          in
          S.Relation.set_write_mode rel write_mode;
          rel)
    in
    S.Relation.iter_tuples_nocharge r (fun tuple ->
        S.Env.charge_hash env;
        let q = Bytes.to_string (project_quotient tuple) in
        (* perf_lint: the seeded structural hash IS the partition function *)
        let i = (Hashtbl.hash (q, seed) land max_int) mod b in
        S.Env.charge_move env;
        S.Relation.append buckets.(i) tuple);
    Array.iter S.Relation.seal buckets;
    Array.iter
      (fun bucket ->
        if S.Relation.ntuples bucket > 0 then begin
          let acc = ref [] in
          S.Relation.iter_tuples ~mode:S.Disk.Seq bucket (fun t ->
              acc := t :: !acc);
          resolve (List.rev !acc)
        end)
      buckets;
    Array.iter S.Relation.free_pages buckets
  end;
  S.Relation.seal out;
  out
