module S = Mmdb_storage

let check_compatible l r =
  if
    S.Schema.tuple_width (S.Relation.schema l)
    <> S.Schema.tuple_width (S.Relation.schema r)
  then invalid_arg "Set_ops: tuple widths differ"

(* Partition a relation into [b] buckets by a hash of the whole tuple
   (charged: hash + move per spilled tuple, page writes in [write_mode]).
   [b = 0] keeps everything in memory. *)
let split_whole env ~seed ~b ~write_mode rel suffix =
  let schema = S.Relation.schema rel in
  let disk = S.Relation.disk rel in
  let hash_whole tuple =
    S.Env.charge_hash env;
    (* perf_lint: the seeded structural hash IS the partition function *)
    Hashtbl.hash (Bytes.to_string tuple, seed)
  in
  if b = 0 then begin
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge rel (fun t ->
        ignore (hash_whole t);
        acc := t :: !acc);
    ([| List.rev !acc |], [||])
  end
  else begin
    let buckets =
      Array.init b (fun i ->
          let r =
            S.Relation.create ~disk
              ~name:(Printf.sprintf "%s.%s%d" (S.Relation.name rel) suffix i)
              ~schema
          in
          S.Relation.set_write_mode r write_mode;
          r)
    in
    S.Relation.iter_tuples_nocharge rel (fun t ->
        let h = hash_whole t in
        let i = (h land max_int) mod b in
        S.Env.charge_move env;
        S.Relation.append buckets.(i) t);
    Array.iter S.Relation.seal buckets;
    ([||], buckets)
  end

type mode = Union | Intersection | Difference

let run mode ~mem_pages ~fudge ~seed l r =
  if mem_pages <= 1 then invalid_arg "Set_ops: mem_pages <= 1";
  check_compatible l r;
  let env = S.Relation.env l in
  let schema = S.Relation.schema l in
  let disk = S.Relation.disk l in
  let out =
    S.Relation.create ~disk ~name:(S.Relation.name l ^ ".setop") ~schema
  in
  (* Bucket count from the larger input, hybrid-style. *)
  let max_pages = max (S.Relation.npages l) (S.Relation.npages r) in
  let b = Hybrid_hash.partitions ~mem_pages ~fudge ~r_pages:max_pages in
  let write_mode = if b <= 1 then S.Disk.Seq else S.Disk.Rand in
  let resolve l_tuples r_tuples =
    (* Membership table over the right side. *)
    let right = Hashtbl.create 256 in
    List.iter
      (fun t ->
        S.Env.charge_move env;
        Hashtbl.replace right (Bytes.to_string t) ())
      r_tuples;
    let emitted = Hashtbl.create 256 in
    let emit t =
      let k = Bytes.to_string t in
      S.Env.charge_comp env;
      if not (Hashtbl.mem emitted k) then begin
        Hashtbl.replace emitted k ();
        S.Relation.append out t
      end
    in
    List.iter
      (fun t ->
        let k = Bytes.to_string t in
        S.Env.charge_comp env;
        let in_right = Hashtbl.mem right k in
        match mode with
        | Union -> emit t
        | Intersection -> if in_right then emit t
        | Difference -> if not in_right then emit t)
      l_tuples;
    match mode with
    | Union -> List.iter emit r_tuples
    | Intersection | Difference -> ()
  in
  let mem_l, disk_l = split_whole env ~seed ~b ~write_mode l "u" in
  let mem_r, disk_r = split_whole env ~seed ~b ~write_mode r "v" in
  if b = 0 then resolve mem_l.(0) mem_r.(0)
  else
    for i = 0 to b - 1 do
      let load bucket =
        let acc = ref [] in
        S.Relation.iter_tuples ~mode:S.Disk.Seq bucket (fun t ->
            acc := t :: !acc);
        List.rev !acc
      in
      let li =
        if S.Relation.ntuples disk_l.(i) = 0 then []
        else load disk_l.(i)
      in
      let ri =
        if S.Relation.ntuples disk_r.(i) = 0 then []
        else load disk_r.(i)
      in
      if li <> [] || ri <> [] then resolve li ri
    done;
  if b > 0 then begin
    Array.iter S.Relation.free_pages disk_l;
    Array.iter S.Relation.free_pages disk_r
  end;
  S.Relation.seal out;
  out

let union ~mem_pages ~fudge ?(seed = 0x5e7) l r =
  run Union ~mem_pages ~fudge ~seed l r

let intersection ~mem_pages ~fudge ?(seed = 0x5e7) l r =
  run Intersection ~mem_pages ~fudge ~seed l r

let difference ~mem_pages ~fudge ?(seed = 0x5e7) l r =
  run Difference ~mem_pages ~fudge ~seed l r
