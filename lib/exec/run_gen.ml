module S = Mmdb_storage
module U = Mmdb_util

let expected_run_length ~mem_pages = 2.0 *. float_of_int mem_pages

(* Heap elements are (run_id, tuple): ordering by run first makes tuples
   destined for the next run sink below all current-run tuples. *)
let runs ~mem_pages rel =
  if mem_pages <= 0 then invalid_arg "Run_gen.runs: mem_pages <= 0";
  let env = S.Relation.env rel in
  let schema = S.Relation.schema rel in
  let disk = S.Relation.disk rel in
  let capacity = mem_pages * S.Relation.tuples_per_page rel in
  let cmp (run_a, ta) (run_b, tb) =
    match Int.compare run_a run_b with
    | 0 ->
      S.Env.charge_comp env;
      S.Tuple.compare_keys schema ta tb
    | c -> c
  in
  (* Comparisons and exchanges are charged separately: the comparator
     pays a comp per key comparison, the heap pays a swap only when an
     element actually moves — matching the model's comp/swap split
     instead of bundling a swap with every comparison. *)
  let heap = U.Heap.create ~on_swap:(fun () -> S.Env.charge_swap env) ~cmp () in
  let out = ref [] in
  let run_id = ref 0 in
  let current_run = ref None in
  let fresh_run () =
    let name = Printf.sprintf "%s.run%d" (S.Relation.name rel) !run_id in
    let r = S.Relation.create ~disk ~name ~schema in
    current_run := Some r;
    r
  in
  let emit run_of_tuple tuple =
    let run =
      match !current_run with
      | Some r when run_of_tuple = !run_id -> r
      | Some r ->
        S.Relation.seal r;
        out := r :: !out;
        incr run_id;
        fresh_run ()
      | None -> fresh_run ()
    in
    S.Relation.append run tuple
  in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      if U.Heap.length heap < capacity then U.Heap.push heap (!run_id, tuple)
      else begin
        let out_run, out_tuple = U.Heap.pop_exn heap in
        (* The incoming tuple joins the popped tuple's run if it can still
           be emitted after it (keys nondecreasing), else the next run. *)
        S.Env.charge_comp env;
        let dest =
          if S.Tuple.compare_keys schema tuple out_tuple >= 0 then out_run
          else out_run + 1
        in
        emit out_run out_tuple;
        U.Heap.push heap (dest, tuple)
      end);
  (* Drain the heap. *)
  let rec drain () =
    match U.Heap.pop heap with
    | None -> ()
    | Some (r, tuple) ->
      emit r tuple;
      drain ()
  in
  drain ();
  (match !current_run with
  | Some r ->
    S.Relation.seal r;
    if S.Relation.ntuples r > 0 then out := r :: !out
    else S.Relation.free_pages r
  | None -> ());
  List.rev !out
