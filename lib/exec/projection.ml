module S = Mmdb_storage

let project_schema schema ~cols =
  match cols with
  | [] -> invalid_arg "Projection: empty column list"
  | key :: _ ->
    let picked =
      List.map
        (fun name ->
          match S.Schema.column_index schema name with
          | i -> S.Schema.column_at schema i
          | exception Not_found ->
            (* perf_lint: error path; raises immediately *)
            invalid_arg ("Projection: unknown column " ^ name))
        cols
    in
    S.Schema.create ~key picked

let projector schema ~cols out_schema =
  let idxs = List.map (S.Schema.column_index schema) cols in
  let widths =
    List.map (fun i -> (S.Schema.column_at schema i).S.Schema.width) idxs
  in
  let srcs = List.map (S.Schema.offset schema) idxs in
  let total = S.Schema.tuple_width out_schema in
  fun tuple ->
    let out = Bytes.make total '\000' in
    let dst = ref 0 in
    List.iter2
      (fun src w ->
        Bytes.blit tuple src out !dst w;
        dst := !dst + w)
      srcs widths;
    out

let sort_distinct ~mem_pages ~cols rel =
  if mem_pages <= 1 then invalid_arg "Projection.sort_distinct: mem_pages <= 1";
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let out_schema = project_schema schema ~cols in
  let project = projector schema ~cols out_schema in
  let disk = S.Relation.disk rel in
  let out =
    S.Relation.create ~disk ~name:(S.Relation.name rel ^ ".proj")
      ~schema:out_schema
  in
  let projected =
    S.Relation.create ~disk ~name:(S.Relation.name rel ^ ".projtmp")
      ~schema:out_schema
  in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      S.Env.charge_move env;
      S.Relation.append_nocharge projected (project tuple));
  S.Relation.seal projected;
  let sorted = External_sort.sort ~mem_pages projected in
  (* Duplicates of the whole projected tuple share the first column, so
     they are adjacent up to that key: dedupe within each equal-key run. *)
  let run_key = ref None in
  let run_seen = Hashtbl.create 64 in
  S.Relation.iter_tuples ~mode:S.Disk.Seq sorted (fun tuple ->
      let key = S.Tuple.key_bytes out_schema tuple in
      let same =
        match !run_key with
        | Some k ->
          S.Env.charge_comp env;
          Bytes.equal k key
        | None -> false
      in
      if not same then begin
        run_key := Some key;
        Hashtbl.reset run_seen
      end;
      let whole = Bytes.to_string tuple in
      S.Env.charge_comp env;
      if not (Hashtbl.mem run_seen whole) then begin
        Hashtbl.replace run_seen whole ();
        S.Relation.append out tuple
      end);
  S.Relation.free_pages sorted;
  S.Relation.free_pages projected;
  S.Relation.seal out;
  out

let distinct ~mem_pages ~fudge ?(seed = 0xd15) ~cols rel =
  if mem_pages <= 1 then invalid_arg "Projection.distinct: mem_pages <= 1";
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let out_schema = project_schema schema ~cols in
  let project = projector schema ~cols out_schema in
  let disk = S.Relation.disk rel in
  let out =
    S.Relation.create ~disk ~name:(S.Relation.name rel ^ ".proj")
      ~schema:out_schema
  in
  (* Stage the projected tuples in a temporary relation sized by the
     projected width, then dedupe it hybrid-style. *)
  let projected =
    S.Relation.create ~disk ~name:(S.Relation.name rel ^ ".projtmp")
      ~schema:out_schema
  in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      S.Env.charge_move env;
      S.Relation.append_nocharge projected (project tuple));
  S.Relation.seal projected;
  (* Dedup key is the whole projected tuple. *)
  let hash_whole tuple =
    S.Env.charge_hash env;
    (* perf_lint: the seeded structural hash IS the dedup hash function *)
    Hashtbl.hash (Bytes.to_string tuple, seed)
  in
  let emit_unique seen tuple =
    let k = Bytes.to_string tuple in
    S.Env.charge_comp env;
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      S.Relation.append out tuple
    end
  in
  let b =
    Hybrid_hash.partitions ~mem_pages ~fudge
      ~r_pages:(S.Relation.npages projected)
  in
  if b = 0 then begin
    let seen = Hashtbl.create 1024 in
    S.Relation.iter_tuples_nocharge projected (fun t ->
        ignore (hash_whole t);
        emit_unique seen t)
  end
  else begin
    let q =
      Hybrid_hash.q_fraction ~mem_pages ~fudge
        ~r_pages:(S.Relation.npages projected)
    in
    let write_mode = if b <= 1 then S.Disk.Seq else S.Disk.Rand in
    let buckets =
      Array.init b (fun i ->
          let r =
            S.Relation.create ~disk
              ~name:(Printf.sprintf "%s.dedup%d" (S.Relation.name rel) i)
              ~schema:out_schema
          in
          S.Relation.set_write_mode r write_mode;
          r)
    in
    let seen0 = Hashtbl.create 1024 in
    S.Relation.iter_tuples_nocharge projected (fun t ->
        let h = hash_whole t in
        let u = float_of_int (h land 0xFFFFFF) /. 16777216.0 in
        if u < q then emit_unique seen0 t
        else begin
          let scaled = (u -. q) /. Float.max 1e-12 (1.0 -. q) in
          let i = min (b - 1) (max 0 (int_of_float (scaled *. float_of_int b))) in
          S.Env.charge_move env;
          S.Relation.append buckets.(i) t
        end);
    Array.iter S.Relation.seal buckets;
    Array.iter
      (fun bucket ->
        if S.Relation.ntuples bucket > 0 then begin
          let seen = Hashtbl.create 256 in
          S.Relation.iter_tuples ~mode:S.Disk.Seq bucket (fun t ->
              ignore (hash_whole t);
              emit_unique seen t)
        end)
      buckets;
    Array.iter S.Relation.free_pages buckets
  end;
  S.Relation.free_pages projected;
  S.Relation.seal out;
  out
