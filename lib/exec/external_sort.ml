module S = Mmdb_storage
module U = Mmdb_util

(* A reader holds one buffer page of its run, refilled on demand. *)
type reader = {
  rel : S.Relation.t;
  ids : int array;
  tuple_width : int;
  mutable page_index : int;
  mutable page : bytes option;
  mutable slot : int;
  io_mode : S.Disk.io_mode;
}

type cursor = {
  heap : (bytes * reader) U.Heap.t;
  mutable lookahead : bytes option;
}

let reader_refill r =
  if r.page_index >= Array.length r.ids then r.page <- None
  else begin
    r.page <-
      Some
        (S.Disk.read (S.Relation.disk r.rel) ~mode:r.io_mode
           r.ids.(r.page_index));
    r.page_index <- r.page_index + 1;
    r.slot <- 0
  end

let reader_next r =
  let rec go () =
    match r.page with
    | None -> None
    | Some page ->
      if r.slot < S.Page.count page then begin
        let tup = S.Page.get page ~tuple_width:r.tuple_width r.slot in
        r.slot <- r.slot + 1;
        Some tup
      end
      else begin
        reader_refill r;
        go ()
      end
  in
  go ()

let make_reader ~io_mode rel =
  S.Relation.seal rel;
  let r =
    {
      rel;
      ids = S.Relation.page_ids rel;
      tuple_width = S.Schema.tuple_width (S.Relation.schema rel);
      page_index = 0;
      page = None;
      slot = 0;
      io_mode;
    }
  in
  reader_refill r;
  r

let cursor_of_runs ~schema runs =
  let env =
    match runs with
    | r :: _ -> S.Relation.env r
    | [] -> S.Env.create () (* empty cursor needs no instrumentation *)
  in
  let io_mode = if List.length runs > 1 then S.Disk.Rand else S.Disk.Seq in
  let cmp (ta, _) (tb, _) =
    S.Env.charge_comp env;
    S.Tuple.compare_keys schema ta tb
  in
  (* comp per comparison, swap per element exchange (see Run_gen). *)
  let heap = U.Heap.create ~on_swap:(fun () -> S.Env.charge_swap env) ~cmp () in
  List.iter
    (fun run ->
      let r = make_reader ~io_mode run in
      match reader_next r with
      | Some tup -> U.Heap.push heap (tup, r)
      | None -> ())
    runs;
  { heap; lookahead = None }

let advance c =
  match U.Heap.pop c.heap with
  | None -> None
  | Some (tup, r) ->
    (match reader_next r with
    | Some nxt -> U.Heap.push c.heap (nxt, r)
    | None -> ());
    Some tup

let peek c =
  match c.lookahead with
  | Some _ as v -> v
  | None ->
    let v = advance c in
    c.lookahead <- v;
    v

let next c =
  match c.lookahead with
  | Some _ as v ->
    c.lookahead <- None;
    v
  | None -> advance c

let check_run_count ~mem_pages runs =
  let n = List.length runs in
  if n > mem_pages then
    invalid_arg
      (Printf.sprintf
         "External_sort: %d runs exceed %d buffer pages (single merge pass \
          assumption violated)"
         n mem_pages)

(* Merge one group of runs into a single longer run (charged writes). *)
let merge_group ~schema runs =
  match runs with
  | [] -> invalid_arg "External_sort.merge_group: no runs to merge"
  | [ single ] -> single
  | first :: _ ->
    let out =
      S.Relation.create
        ~disk:(S.Relation.disk first)
        ~name:(S.Relation.name first ^ ".merged")
        ~schema
    in
    let cursor = cursor_of_runs ~schema runs in
    let rec drain () =
      match next cursor with
      | Some tup ->
        S.Relation.append out tup;
        drain ()
      | None -> ()
    in
    drain ();
    S.Relation.seal out;
    List.iter S.Relation.free_pages runs;
    out

let rec reduce_runs ~mem_pages ~limit runs =
  if limit < 1 then invalid_arg "External_sort.reduce_runs: limit < 1";
  if List.compare_length_with runs limit <= 0 then runs
  else begin
    let schema =
      match runs with
      | r :: _ -> S.Relation.schema r
      | [] -> assert false
    in
    let group_size = max 2 mem_pages in
    let rec take n l =
      if n = 0 then ([], l)
      else
        match l with
        | [] -> ([], [])
        | x :: rest ->
          let g, tail = take (n - 1) rest in
          (x :: g, tail)
    in
    let rec pass acc l =
      match l with
      | [] -> List.rev acc
      | _ ->
        let group, rest = take group_size l in
        pass (merge_group ~schema group :: acc) rest
    in
    reduce_runs ~mem_pages ~limit (pass [] runs)
  end

let sort ~mem_pages rel =
  let schema = S.Relation.schema rel in
  let runs = Run_gen.runs ~mem_pages rel in
  let runs = reduce_runs ~mem_pages ~limit:mem_pages runs in
  let cursor = cursor_of_runs ~schema runs in
  let out =
    S.Relation.create ~disk:(S.Relation.disk rel)
      ~name:(S.Relation.name rel ^ ".sorted") ~schema
  in
  let rec drain () =
    match next cursor with
    | Some tup ->
      S.Relation.append out tup;
      drain ()
    | None -> ()
  in
  drain ();
  S.Relation.seal out;
  List.iter S.Relation.free_pages runs;
  out
