(** Seeded, deterministic fault-injection plans.

    A plan is a list of rules: a {!Fault.site} (where), a {!Fault.kind}
    (what), and a trigger (when).  Instrumented sites — the simulated
    disk, the buffer pool, the log devices, stable memory, the snapshot
    store — call {!draw} once per operation; the plan consults its
    trigger state and its private {!Mmdb_util.Xorshift} stream and
    answers whether (and which) fault to inject.  All randomness flows
    through the plan's own generator, so every fault schedule is
    reproducible from its seed and independent of workload randomness.

    The plan also owns the fault {!Fault.tally} and an event log of
    [(FAULT code, detail)] pairs; sites report injections, detections,
    retries, repairs, and unrecoverable outcomes through the [note_*]
    helpers so one object accumulates the whole run's fault story. *)

type trigger =
  | Always  (** fire on every operation at the site *)
  | Prob of float  (** fire with this per-operation probability *)
  | On_op of int  (** fire exactly on the [n]th operation (1-based) *)
  | Every of int  (** fire on every [n]th operation *)
  | Between of { lo : int; hi : int; every : int }
      (** fire on every [every]th operation inside the window
          [lo..hi] (1-based, inclusive) — a fault {e storm} *)

type rule = { site : Fault.site; kind : Fault.kind; trigger : trigger }

type t

val create : ?seed:int -> ?tally:Fault.tally -> rule list -> t
(** [create ~seed rules] builds a plan.  [tally] shares an external
    counter record (e.g. {!Mmdb_storage.Counters}'s fault tally) so
    fault counts land next to the workload's other operation counters;
    by default the plan allocates its own. *)

val none : unit -> t
(** The empty plan: {!draw} never fires.  Useful as an explicit
    "no faults" argument. *)

val rules : t -> rule list
val is_active : t -> bool
(** [false] for {!none} (no rules) — fast-path guard for hot sites. *)

val draw : t -> Fault.site -> Fault.kind option
(** [draw plan site] advances the site's operation counter and returns
    the armed fault kind if some rule for [site] fires.  The first
    matching rule wins. *)

val peek : t -> Fault.site -> Fault.kind option
(** Like {!draw} for non-operation sites (crash-time decisions): does
    not advance the operation counter; [Always]/[On_op 1]/[Every 1]
    triggers fire, probabilistic ones consult the generator. *)

val rand_int : t -> int -> int
(** Uniform draw from the plan's private stream — sites use it to pick
    torn-write cut points and bit positions deterministically. *)

val tally : t -> Fault.tally

val note_injected : t -> code:string -> site:string -> string -> unit
val note_detected : t -> code:string -> site:string -> string -> unit
val note_retried : t -> backoff:float -> unit
val note_repaired : t -> code:string -> site:string -> string -> unit
val note_unrecoverable : t -> code:string -> site:string -> string -> unit

val events : t -> Fault.error list
(** Every noted event in order (capped; injection/detection/repair and
    unrecoverable outcomes, not individual retries). *)

val event_counts : t -> (string * int) list
(** Events grouped by FAULT code, ascending code order. *)

val retry_policy : Mmdb_overload.Overload.Retry.policy
(** The device retry policy ({!Mmdb_overload.Overload.Retry.device}):
    linear [attempt * 1 ms], three attempts — the single source of the
    values below. *)

val max_io_retries : int
(** Per-fault attempt cap shared by all instrumented sites
    ([Retry.max_attempts retry_policy]). *)

val retry_backoff : attempt:int -> float
(** Simulated-clock backoff before retry [attempt] (1-based): linear,
    [attempt * 1 ms] ([Retry.backoff retry_policy]).
    @raise Invalid_argument if [attempt <= 0]. *)

val retry_budget : t -> Mmdb_overload.Overload.Retry.budget option
val set_retry_budget : t -> Mmdb_overload.Overload.Retry.budget option -> unit
(** Install (or clear) a per-transaction retry budget.  Every device
    riding transients through this plan drains the same budget, so a
    transaction's retries are bounded across devices — previously each
    device counted alone. *)

val ride_transient :
  t ->
  site:string ->
  failures:int ->
  attempt:(attempt:int -> backoff:float -> unit) ->
  unit
(** Ride out an injected transient fault that fails [failures]
    consecutive attempts: notes the FAULT003 injection, then calls
    [attempt] once per failed try with its backoff (the caller charges
    the device and waits on its own clock) while noting each retry.
    @raise Fault.Io_error FAULT004 when [failures] exceeds
    {!max_io_retries}.
    @raise Mmdb_overload.Overload.Shed OVLD008 when the installed
    per-transaction retry budget runs dry mid-ride. *)

val of_spec : string -> (rule list, string) result
(** Parse a comma-separated fault list as accepted by
    [mmdb_cli torture --faults] / [mmdb_cli stats --faults]:
    ["torn-tail"], ["bitflip"], ["io-error"], ["battery-droop"],
    ["snapshot-rot"], ["media"], ["storm"], or ["none"].
    See {!spec_names}. *)

val spec_names : (string * string) list
(** Accepted spec atoms with one-line descriptions (CLI help text). *)
