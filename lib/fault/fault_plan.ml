module U = Mmdb_util
module Overload = Mmdb_overload.Overload

type trigger =
  | Always
  | Prob of float
  | On_op of int
  | Every of int
  | Between of { lo : int; hi : int; every : int }

type rule = { site : Fault.site; kind : Fault.kind; trigger : trigger }

type t = {
  plan_rules : rule list;
  rng : U.Xorshift.t;
  plan_tally : Fault.tally;
  ops : (Fault.site, int) Hashtbl.t;
  mutable event_log : Fault.error list; (* reversed *)
  mutable event_count : int;
  mutable plan_budget : Overload.Retry.budget option;
      (* per-transaction retry allowance, shared by every device riding
         transients through this plan *)
}

let max_events = 10_000

let create ?(seed = 1) ?tally rules =
  List.iter
    (fun r ->
      match r.trigger with
      | Prob p when not (p >= 0.0 && p <= 1.0) ->
        invalid_arg "Fault_plan.create: probability outside [0, 1]"
      | On_op n when n <= 0 ->
        invalid_arg "Fault_plan.create: On_op must be positive"
      | Every n when n <= 0 ->
        invalid_arg "Fault_plan.create: Every must be positive"
      | Between { lo; hi; every } when lo <= 0 || hi < lo || every <= 0 ->
        invalid_arg "Fault_plan.create: Between needs 1 <= lo <= hi, every > 0"
      | Always | Prob _ | On_op _ | Every _ | Between _ -> ())
    rules;
  {
    plan_rules = rules;
    rng = U.Xorshift.create seed;
    plan_tally =
      (match tally with Some t -> t | None -> Fault.tally_create ());
    ops = Hashtbl.create 8;
    event_log = [];
    event_count = 0;
    plan_budget = None;
  }

let none () = create []

let rules t = t.plan_rules
let is_active t = t.plan_rules <> []
let tally t = t.plan_tally

let fires t trigger ~op =
  match trigger with
  | Always -> true
  | Prob p -> U.Xorshift.float t.rng 1.0 < p
  | On_op n -> op = n
  | Every n -> op mod n = 0
  | Between { lo; hi; every } -> op >= lo && op <= hi && (op - lo) mod every = 0

let draw t site =
  if t.plan_rules = [] then None
  else begin
    let op = 1 + Option.value ~default:0 (Hashtbl.find_opt t.ops site) in
    Hashtbl.replace t.ops site op;
    List.find_map
      (fun r ->
        if r.site = site && fires t r.trigger ~op then Some r.kind else None)
      t.plan_rules
  end

let peek t site =
  List.find_map
    (fun r ->
      let hit =
        match r.trigger with
        | Always | On_op 1 | Every 1 -> true
        | Prob p -> U.Xorshift.float t.rng 1.0 < p
        | On_op _ | Every _ | Between _ -> false
      in
      if r.site = site && hit then Some r.kind else None)
    t.plan_rules

let rand_int t bound = U.Xorshift.int t.rng bound

let log_event t ~code ~site detail =
  if t.event_count < max_events then begin
    t.event_log <- { Fault.code; site; detail } :: t.event_log;
    t.event_count <- t.event_count + 1
  end

let note_injected t ~code ~site detail =
  t.plan_tally.Fault.injected <- t.plan_tally.Fault.injected + 1;
  log_event t ~code ~site detail

let note_detected t ~code ~site detail =
  t.plan_tally.Fault.detected <- t.plan_tally.Fault.detected + 1;
  log_event t ~code ~site detail

let note_retried t ~backoff =
  t.plan_tally.Fault.retried <- t.plan_tally.Fault.retried + 1;
  t.plan_tally.Fault.retry_backoff <-
    t.plan_tally.Fault.retry_backoff +. backoff

let note_repaired t ~code ~site detail =
  t.plan_tally.Fault.repaired <- t.plan_tally.Fault.repaired + 1;
  log_event t ~code ~site detail

let note_unrecoverable t ~code ~site detail =
  t.plan_tally.Fault.unrecoverable <- t.plan_tally.Fault.unrecoverable + 1;
  log_event t ~code ~site detail

let events t = List.rev t.event_log

let event_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Fault.error) ->
      Hashtbl.replace tbl e.Fault.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.Fault.code)))
    t.event_log;
  Hashtbl.fold (fun code n acc -> (code, n) :: acc) tbl []
  |> List.sort compare

(* The device retry curve now lives in {!Overload.Retry}: one policy
   shared by every backoff loop.  [Retry.device] reproduces the legacy
   linear curve (attempt * 1 ms, 3 attempts) exactly, so torture and
   bench expectations keyed to those waits are unchanged. *)
let retry_policy = Overload.Retry.device
let max_io_retries = Overload.Retry.max_attempts retry_policy

let retry_backoff ~attempt =
  if attempt <= 0 then invalid_arg "Fault_plan.retry_backoff: attempt <= 0";
  Overload.Retry.backoff retry_policy ~attempt

let retry_budget t = t.plan_budget
let set_retry_budget t b = t.plan_budget <- b

(* The one transient-riding loop, shared by the simulated disk and the
   log devices: note the injection, then ride [failures] attempts —
   each one charges/waits through [attempt] — or raise the typed
   FAULT004 error when the per-attempt cap is exceeded.  A per-
   transaction budget installed with {!set_retry_budget} is drained one
   unit per retry across every device sharing this plan. *)
let ride_transient t ~site ~failures ~attempt =
  note_injected t ~code:"FAULT003" ~site
    (Printf.sprintf "%d transient failure(s)" failures);
  Overload.Retry.ride retry_policy ?budget:t.plan_budget ~site ~failures
    ~attempt:(fun ~attempt:i ~backoff ->
      attempt ~attempt:i ~backoff;
      note_retried t ~backoff)
    ~exhausted:(fun ~retries ->
      Fault.io_error ~code:"FAULT004" ~site
        (Printf.sprintf "still failing after %d retries" retries))
    ()

(* CLI fault-mix atoms.  The mixes are chosen so the acceptance sweep
   ("torn-tail,bitflip") is detectable *and* lossless: torn writes only
   tear the page in flight at the crash (never-acknowledged commits),
   and bit flips hit the read path transiently (a reread is clean). *)
let spec_names =
  [
    ("torn-tail",
     "tear the log page in flight at the crash: only a prefix persists");
    ("bitflip",
     "transient bit flip on log-page reads; detected by checksum, reread");
    ("io-error", "transient log-device I/O errors, retried with backoff");
    ("battery-droop",
     "stable memory loses its newest batch at crash (partial battery)");
    ("snapshot-rot",
     "one checkpoint snapshot page corrupts at rest; rebuilt from the log");
    ("media",
     "permanent bit flip in a stored log page (typically unrecoverable)");
    ("storm",
     "burst of transient log-device faults over a write window (trips \
      the circuit breaker)");
    ("none", "empty plan");
  ]

let rules_of_atom = function
  | "torn-tail" ->
    Ok [ { site = Fault.Log_write; kind = Fault.Torn_write; trigger = Always } ]
  | "bitflip" ->
    Ok
      [ { site = Fault.Log_read; kind = Fault.Bit_flip_read;
          trigger = Every 3 } ]
  | "io-error" ->
    Ok
      [ { site = Fault.Log_write;
          kind = Fault.Io_transient { failures = 2 }; trigger = Every 5 } ]
  | "battery-droop" ->
    Ok
      [ { site = Fault.Stable_crash;
          kind = Fault.Battery_droop { batches = 1 }; trigger = Always } ]
  | "snapshot-rot" ->
    Ok [ { site = Fault.Snapshot; kind = Fault.Bit_flip_rest;
           trigger = On_op 1 } ]
  | "media" ->
    Ok [ { site = Fault.Log_write; kind = Fault.Bit_flip_rest;
           trigger = On_op 2 } ]
  | "storm" ->
    (* A dense fault burst over a window of log-page writes: every write
       in the window rides two transient failures, enough consecutive
       device errors to trip an armed circuit breaker and exercise its
       half-open probe once the window passes. *)
    Ok
      [ { site = Fault.Log_write;
          kind = Fault.Io_transient { failures = 2 };
          trigger = Between { lo = 10; hi = 60; every = 1 } } ]
  | "none" -> Ok []
  | atom -> Error (Printf.sprintf "unknown fault spec %S" atom)

let of_spec s =
  let atoms =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun a -> a <> "")
  in
  List.fold_left
    (fun acc atom ->
      match (acc, rules_of_atom atom) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok rs, Ok more -> Ok (rs @ more))
    (Ok []) atoms
