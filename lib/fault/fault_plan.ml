module U = Mmdb_util

type trigger =
  | Always
  | Prob of float
  | On_op of int
  | Every of int

type rule = { site : Fault.site; kind : Fault.kind; trigger : trigger }

type t = {
  plan_rules : rule list;
  rng : U.Xorshift.t;
  plan_tally : Fault.tally;
  ops : (Fault.site, int) Hashtbl.t;
  mutable event_log : Fault.error list; (* reversed *)
  mutable event_count : int;
}

let max_events = 10_000

let create ?(seed = 1) ?tally rules =
  List.iter
    (fun r ->
      match r.trigger with
      | Prob p when not (p >= 0.0 && p <= 1.0) ->
        invalid_arg "Fault_plan.create: probability outside [0, 1]"
      | On_op n when n <= 0 ->
        invalid_arg "Fault_plan.create: On_op must be positive"
      | Every n when n <= 0 ->
        invalid_arg "Fault_plan.create: Every must be positive"
      | Always | Prob _ | On_op _ | Every _ -> ())
    rules;
  {
    plan_rules = rules;
    rng = U.Xorshift.create seed;
    plan_tally =
      (match tally with Some t -> t | None -> Fault.tally_create ());
    ops = Hashtbl.create 8;
    event_log = [];
    event_count = 0;
  }

let none () = create []

let rules t = t.plan_rules
let is_active t = t.plan_rules <> []
let tally t = t.plan_tally

let fires t trigger ~op =
  match trigger with
  | Always -> true
  | Prob p -> U.Xorshift.float t.rng 1.0 < p
  | On_op n -> op = n
  | Every n -> op mod n = 0

let draw t site =
  if t.plan_rules = [] then None
  else begin
    let op = 1 + Option.value ~default:0 (Hashtbl.find_opt t.ops site) in
    Hashtbl.replace t.ops site op;
    List.find_map
      (fun r ->
        if r.site = site && fires t r.trigger ~op then Some r.kind else None)
      t.plan_rules
  end

let peek t site =
  List.find_map
    (fun r ->
      let hit =
        match r.trigger with
        | Always | On_op 1 | Every 1 -> true
        | Prob p -> U.Xorshift.float t.rng 1.0 < p
        | On_op _ | Every _ -> false
      in
      if r.site = site && hit then Some r.kind else None)
    t.plan_rules

let rand_int t bound = U.Xorshift.int t.rng bound

let log_event t ~code ~site detail =
  if t.event_count < max_events then begin
    t.event_log <- { Fault.code; site; detail } :: t.event_log;
    t.event_count <- t.event_count + 1
  end

let note_injected t ~code ~site detail =
  t.plan_tally.Fault.injected <- t.plan_tally.Fault.injected + 1;
  log_event t ~code ~site detail

let note_detected t ~code ~site detail =
  t.plan_tally.Fault.detected <- t.plan_tally.Fault.detected + 1;
  log_event t ~code ~site detail

let note_retried t ~backoff =
  t.plan_tally.Fault.retried <- t.plan_tally.Fault.retried + 1;
  t.plan_tally.Fault.retry_backoff <-
    t.plan_tally.Fault.retry_backoff +. backoff

let note_repaired t ~code ~site detail =
  t.plan_tally.Fault.repaired <- t.plan_tally.Fault.repaired + 1;
  log_event t ~code ~site detail

let note_unrecoverable t ~code ~site detail =
  t.plan_tally.Fault.unrecoverable <- t.plan_tally.Fault.unrecoverable + 1;
  log_event t ~code ~site detail

let events t = List.rev t.event_log

let event_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Fault.error) ->
      Hashtbl.replace tbl e.Fault.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.Fault.code)))
    t.event_log;
  Hashtbl.fold (fun code n acc -> (code, n) :: acc) tbl []
  |> List.sort compare

let max_io_retries = 3

let retry_backoff ~attempt =
  if attempt <= 0 then invalid_arg "Fault_plan.retry_backoff: attempt <= 0";
  float_of_int attempt *. 1e-3

(* CLI fault-mix atoms.  The mixes are chosen so the acceptance sweep
   ("torn-tail,bitflip") is detectable *and* lossless: torn writes only
   tear the page in flight at the crash (never-acknowledged commits),
   and bit flips hit the read path transiently (a reread is clean). *)
let spec_names =
  [
    ("torn-tail",
     "tear the log page in flight at the crash: only a prefix persists");
    ("bitflip",
     "transient bit flip on log-page reads; detected by checksum, reread");
    ("io-error", "transient log-device I/O errors, retried with backoff");
    ("battery-droop",
     "stable memory loses its newest batch at crash (partial battery)");
    ("snapshot-rot",
     "one checkpoint snapshot page corrupts at rest; rebuilt from the log");
    ("media",
     "permanent bit flip in a stored log page (typically unrecoverable)");
    ("none", "empty plan");
  ]

let rules_of_atom = function
  | "torn-tail" ->
    Ok [ { site = Fault.Log_write; kind = Fault.Torn_write; trigger = Always } ]
  | "bitflip" ->
    Ok
      [ { site = Fault.Log_read; kind = Fault.Bit_flip_read;
          trigger = Every 3 } ]
  | "io-error" ->
    Ok
      [ { site = Fault.Log_write;
          kind = Fault.Io_transient { failures = 2 }; trigger = Every 5 } ]
  | "battery-droop" ->
    Ok
      [ { site = Fault.Stable_crash;
          kind = Fault.Battery_droop { batches = 1 }; trigger = Always } ]
  | "snapshot-rot" ->
    Ok [ { site = Fault.Snapshot; kind = Fault.Bit_flip_rest;
           trigger = On_op 1 } ]
  | "media" ->
    Ok [ { site = Fault.Log_write; kind = Fault.Bit_flip_rest;
           trigger = On_op 2 } ]
  | "none" -> Ok []
  | atom -> Error (Printf.sprintf "unknown fault spec %S" atom)

let of_spec s =
  let atoms =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun a -> a <> "")
  in
  List.fold_left
    (fun acc atom ->
      match (acc, rules_of_atom atom) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok rs, Ok more -> Ok (rs @ more))
    (Ok []) atoms
