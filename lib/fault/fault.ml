type site =
  | Disk_read
  | Disk_write
  | Pool_frame
  | Log_write
  | Log_read
  | Stable_crash
  | Snapshot

let site_name = function
  | Disk_read -> "disk.read"
  | Disk_write -> "disk.write"
  | Pool_frame -> "pool.frame"
  | Log_write -> "log.write"
  | Log_read -> "log.read"
  | Stable_crash -> "stable.crash"
  | Snapshot -> "snapshot"

type kind =
  | Torn_write
  | Bit_flip_read
  | Bit_flip_rest
  | Io_transient of { failures : int }
  | Battery_droop of { batches : int }

let kind_name = function
  | Torn_write -> "torn-write"
  | Bit_flip_read -> "bitflip-read"
  | Bit_flip_rest -> "bitflip-rest"
  | Io_transient _ -> "io-transient"
  | Battery_droop _ -> "battery-droop"

type tally = {
  mutable injected : int;
  mutable detected : int;
  mutable retried : int;
  mutable repaired : int;
  mutable unrecoverable : int;
  mutable retry_backoff : float;
      (* simulated seconds spent in retry backoff, accumulated alongside
         [retried] *)
}

let tally_create () =
  {
    injected = 0;
    detected = 0;
    retried = 0;
    repaired = 0;
    unrecoverable = 0;
    retry_backoff = 0.0;
  }

let tally_reset t =
  t.injected <- 0;
  t.detected <- 0;
  t.retried <- 0;
  t.repaired <- 0;
  t.unrecoverable <- 0;
  t.retry_backoff <- 0.0

let tally_copy t =
  {
    injected = t.injected;
    detected = t.detected;
    retried = t.retried;
    repaired = t.repaired;
    unrecoverable = t.unrecoverable;
    retry_backoff = t.retry_backoff;
  }

let tally_diff ~after ~before =
  {
    injected = after.injected - before.injected;
    detected = after.detected - before.detected;
    retried = after.retried - before.retried;
    repaired = after.repaired - before.repaired;
    unrecoverable = after.unrecoverable - before.unrecoverable;
    retry_backoff = after.retry_backoff -. before.retry_backoff;
  }

let tally_total t =
  t.injected + t.detected + t.retried + t.repaired + t.unrecoverable

let pp_tally ppf t =
  Format.fprintf ppf
    "injected=%d detected=%d retried=%d repaired=%d unrecoverable=%d"
    t.injected t.detected t.retried t.repaired t.unrecoverable;
  if t.retry_backoff > 0.0 then
    Format.fprintf ppf " backoff=%.1fms" (t.retry_backoff *. 1e3)

type error = { code : string; site : string; detail : string }

exception Io_error of error
exception Unrecoverable of error

let io_error ~code ~site detail = raise (Io_error { code; site; detail })

let unrecoverable ~code ~site detail =
  raise (Unrecoverable { code; site; detail })

let error_to_string e = Printf.sprintf "%s at %s: %s" e.code e.site e.detail

let code_catalogue =
  [
    ("FAULT001", "torn page write: only a prefix of the page persisted");
    ("FAULT002", "checksum mismatch detected on read (bit flip)");
    ("FAULT003", "transient I/O error injected (retried with backoff)");
    ("FAULT004", "I/O retry budget exhausted");
    ("FAULT005", "unknown page / sector not found");
    ("FAULT006", "page size mismatch on write");
    ("FAULT007", "stable-memory battery droop: newest batches lost at crash");
    ("FAULT008", "log tail truncated at last checksum-valid record");
    ("FAULT009", "corrupt page rebuilt from checkpoint plus log");
    ("FAULT010", "stable-memory batch underflow (drop on empty)");
    ("FAULT011", "unrecoverable media corruption");
    ("FAULT012", "crash during recovery replay; recovery restarted");
  ]

(* The exception printers keep typed faults legible in test failures. *)
let () =
  Printexc.register_printer (function
    | Io_error e -> Some ("Fault.Io_error " ^ error_to_string e)
    | Unrecoverable e -> Some ("Fault.Unrecoverable " ^ error_to_string e)
    | _ -> None)
