(** Typed fault model for the storage and recovery planes.

    A main-memory DBMS's durability story stands or falls on how the
    log, checkpoints, and stable memory behave at the instant of
    failure.  This module names the ugly cases — torn page writes,
    bit-flip media corruption, transient I/O errors, partial battery
    failure — as first-class values so they can be injected
    deterministically ({!Fault_plan}), detected by checksum, counted,
    and surfaced as typed diagnostics instead of [Invalid_argument].

    Every diagnostic carries a stable [FAULTnnn] code (catalogued in
    {!code_catalogue} and DESIGN.md) so tests and tooling can match on
    the fault class. *)

type site =
  | Disk_read  (** paged-disk sector read *)
  | Disk_write  (** paged-disk sector write *)
  | Pool_frame  (** buffer-pool frame at rest (memory rot) *)
  | Log_write  (** log-device page write *)
  | Log_read  (** log-device page read during recovery *)
  | Stable_crash  (** battery-backed stable memory at crash time *)
  | Snapshot  (** checkpoint snapshot page at rest *)

val site_name : site -> string

type kind =
  | Torn_write
      (** the page write in flight at the crash persists only a prefix;
          the tail keeps its previous contents *)
  | Bit_flip_read
      (** transient corruption on the read path: the first read returns
          a flipped bit, a retry returns clean data *)
  | Bit_flip_rest
      (** permanent media corruption: a bit flips in the stored copy *)
  | Io_transient of { failures : int }
      (** the next [failures] attempts fail outright, then succeed;
          callers retry with bounded backoff on the simulated clock *)
  | Battery_droop of { batches : int }
      (** stable memory loses its newest [batches] record batches at
          crash (partial battery failure) *)

val kind_name : kind -> string

(** Running counters for the fault plane: how many faults were
    injected, how many the checksum layer detected, how many I/O
    attempts were retried, how many faults were repaired (reread,
    rebuilt, or truncated away), and how many were unrecoverable. *)
type tally = {
  mutable injected : int;
  mutable detected : int;
  mutable retried : int;
  mutable repaired : int;
  mutable unrecoverable : int;
  mutable retry_backoff : float;
      (** simulated seconds spent waiting out transient-I/O retry
          backoff, accumulated alongside [retried] *)
}

val tally_create : unit -> tally
val tally_reset : tally -> unit
val tally_copy : tally -> tally
val tally_diff : after:tally -> before:tally -> tally
val tally_total : tally -> int
val pp_tally : Format.formatter -> tally -> unit

type error = {
  code : string;  (** stable FAULTnnn identifier *)
  site : string;  (** where: ["disk.read pid=3"], ["log.page 7"], ... *)
  detail : string;
}

exception Io_error of error
(** A retryable I/O failure surfaced after the bounded retry budget, or
    a media-level addressing failure (unknown sector, size mismatch,
    batch underflow).  Callers can distinguish this from programmer
    error ([Invalid_argument]) and from {!Unrecoverable}. *)

exception Unrecoverable of error
(** Corruption that was detected but cannot be repaired from any
    surviving redundancy (no checkpoint + log to rebuild from). *)

val io_error : code:string -> site:string -> string -> 'a
(** @raise Io_error always (this is the raising helper). *)

val unrecoverable : code:string -> site:string -> string -> 'a
(** @raise Unrecoverable always (this is the raising helper). *)

val error_to_string : error -> string

val code_catalogue : (string * string) list
(** Every stable FAULT code with a one-line description. *)
