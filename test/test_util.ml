(* Tests for Mmdb_util: RNG, statistics, heap, table formatting, histogram. *)

module U = Mmdb_util

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Xorshift                                                            *)
(* ------------------------------------------------------------------ *)

let test_xorshift_deterministic () =
  let a = U.Xorshift.create 42 and b = U.Xorshift.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (U.Xorshift.next_int64 a)
      (U.Xorshift.next_int64 b)
  done

let test_xorshift_seeds_differ () =
  let a = U.Xorshift.create 1 and b = U.Xorshift.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (U.Xorshift.next_int64 a) (U.Xorshift.next_int64 b) then
      incr same
  done;
  checkb "streams differ" true (!same < 5)

let test_xorshift_zero_seed () =
  let r = U.Xorshift.create 0 in
  checkb "zero seed produces output" true
    (not (Int64.equal (U.Xorshift.next_int64 r) 0L))

let test_int_bounds () =
  let r = U.Xorshift.create 7 in
  for _ = 1 to 1000 do
    let v = U.Xorshift.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let r = U.Xorshift.create 7 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Xorshift.int: bound must be positive") (fun () ->
      ignore (U.Xorshift.int r 0))

let test_int_in_range () =
  let r = U.Xorshift.create 9 in
  for _ = 1 to 1000 do
    let v = U.Xorshift.int_in_range r ~lo:(-5) ~hi:5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_int_covers_range () =
  let r = U.Xorshift.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(U.Xorshift.int r 10) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "value %d seen" i) true s) seen

let test_float_bounds () =
  let r = U.Xorshift.create 11 in
  for _ = 1 to 1000 do
    let v = U.Xorshift.float r 3.5 in
    checkb "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_copy_independent () =
  let a = U.Xorshift.create 5 in
  ignore (U.Xorshift.next_int64 a);
  let b = U.Xorshift.copy a in
  let va = U.Xorshift.next_int64 a and vb = U.Xorshift.next_int64 b in
  check Alcotest.int64 "copy continues identically" va vb

let test_shuffle_is_permutation () =
  let r = U.Xorshift.create 13 in
  let a = Array.init 100 Fun.id in
  U.Xorshift.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_sample_without_replacement () =
  let r = U.Xorshift.create 17 in
  let s = U.Xorshift.sample_without_replacement r ~n:50 ~k:20 in
  checki "size" 20 (Array.length s);
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      checkb "in range" true (v >= 0 && v < 50);
      checkb "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    s

let test_sample_full () =
  let r = U.Xorshift.create 19 in
  let s = U.Xorshift.sample_without_replacement r ~n:10 ~k:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all values" (Array.init 10 Fun.id) sorted

let test_exponential_positive () =
  let r = U.Xorshift.create 23 in
  let sum = ref 0.0 in
  for _ = 1 to 10_000 do
    let v = U.Xorshift.exponential r ~mean:2.0 in
    checkb "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 10_000.0 in
  checkb "mean near 2" true (mean > 1.8 && mean < 2.2)

let test_zipf_bounds_and_skew () =
  let r = U.Xorshift.create 29 in
  let counts = Array.make 20 0 in
  for _ = 1 to 5000 do
    let v = U.Xorshift.zipf r ~n:20 ~theta:1.0 in
    checkb "in range" true (v >= 0 && v < 20);
    counts.(v) <- counts.(v) + 1
  done;
  checkb "rank 0 most popular" true (counts.(0) > counts.(10))

let test_zipf_theta_zero_uniform () =
  let r = U.Xorshift.create 31 in
  for _ = 1 to 100 do
    let v = U.Xorshift.zipf r ~n:5 ~theta:0.0 in
    checkb "in range" true (v >= 0 && v < 5)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let feq ?(eps = 1e-9) name a b =
  checkb (name ^ " ~=") true (Float.abs (a -. b) <= eps)

let test_mean_stddev () =
  feq "mean" 3.0 (U.Stats.mean [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  feq "stddev" (sqrt 2.5) (U.Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  feq "stddev singleton" 0.0 (U.Stats.stddev [| 7.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (U.Stats.mean [||]))

let test_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  feq "p0" 1.0 (U.Stats.percentile xs 0.0);
  feq "p50" 3.0 (U.Stats.percentile xs 0.5);
  feq "p100" 5.0 (U.Stats.percentile xs 1.0);
  feq "p25" 2.0 (U.Stats.percentile xs 0.25)

let test_percentile_interpolates () =
  let xs = [| 0.0; 10.0 |] in
  feq "p50 interp" 5.0 (U.Stats.percentile xs 0.5)

let test_summarize () =
  let s = U.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  checki "n" 4 s.U.Stats.n;
  feq "mean" 2.5 s.U.Stats.mean;
  feq "min" 1.0 s.U.Stats.min;
  feq "max" 4.0 s.U.Stats.max

let test_welford_matches_batch () =
  let xs = Array.init 1000 (fun i -> Float.sin (float_of_int i)) in
  let w = U.Stats.welford_create () in
  Array.iter (U.Stats.welford_add w) xs;
  checki "count" 1000 (U.Stats.welford_count w);
  feq ~eps:1e-9 "mean" (U.Stats.mean xs) (U.Stats.welford_mean w);
  feq ~eps:1e-9 "stddev" (U.Stats.stddev xs) (U.Stats.welford_stddev w)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = U.Heap.create ~cmp:Int.compare () in
  checkb "empty" true (U.Heap.is_empty h);
  U.Heap.push h 5;
  U.Heap.push h 1;
  U.Heap.push h 3;
  checki "length" 3 (U.Heap.length h);
  check Alcotest.(option int) "peek" (Some 1) (U.Heap.peek h);
  checki "pop1" 1 (U.Heap.pop_exn h);
  checki "pop2" 3 (U.Heap.pop_exn h);
  checki "pop3" 5 (U.Heap.pop_exn h);
  check Alcotest.(option int) "empty pop" None (U.Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = U.Heap.create ~cmp:Int.compare () in
  Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (U.Heap.pop_exn h))

let test_heap_replace_min () =
  let h = U.Heap.of_array ~cmp:Int.compare [| 4; 2; 9 |] in
  checki "old min" 2 (U.Heap.replace_min h 7);
  checki "next" 4 (U.Heap.pop_exn h);
  checki "then" 7 (U.Heap.pop_exn h);
  checki "last" 9 (U.Heap.pop_exn h)

let test_heap_of_array_invariant () =
  let r = U.Xorshift.create 37 in
  for _ = 1 to 20 do
    let a = Array.init 200 (fun _ -> U.Xorshift.int r 1000) in
    let h = U.Heap.of_array ~cmp:Int.compare a in
    checkb "invariant" true (U.Heap.check_invariant h)
  done

let qcheck_heapsort =
  QCheck.Test.make ~name:"heap sorts like List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = U.Heap.create ~cmp:Int.compare () in
      List.iter (U.Heap.push h) xs;
      U.Heap.to_sorted_list h = List.sort Int.compare xs)

let qcheck_heap_invariant_under_pushes =
  QCheck.Test.make ~name:"heap invariant holds under pushes" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = U.Heap.create ~cmp:Int.compare () in
      List.for_all
        (fun x ->
          U.Heap.push h x;
          U.Heap.check_invariant h)
        xs)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    U.Tablefmt.create
      ~aligns:[ U.Tablefmt.Left; U.Tablefmt.Right ]
      [ "name"; "value" ]
  in
  U.Tablefmt.add_row t [ "alpha"; "1" ];
  U.Tablefmt.add_row t [ "b"; "22" ];
  let s = U.Tablefmt.render t in
  checkb "has header" true (String.length s > 0 && String.sub s 0 4 = "name");
  checkb "alpha row aligned left" true
    (let lines = String.split_on_char '\n' s in
     List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha")
       lines)

let test_table_arity_mismatch () =
  let t = U.Tablefmt.create [ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Tablefmt.add_row: arity mismatch") (fun () ->
      U.Tablefmt.add_row t [ "only one" ])

let test_cell_int_separators () =
  check Alcotest.string "1234567" "1,234,567" (U.Tablefmt.cell_int 1234567);
  check Alcotest.string "negative" "-1,000" (U.Tablefmt.cell_int (-1000));
  check Alcotest.string "small" "42" (U.Tablefmt.cell_int 42);
  check Alcotest.string "zero" "0" (U.Tablefmt.cell_int 0)

let test_cell_float () =
  check Alcotest.string "default decimals" "3.14"
    (U.Tablefmt.cell_float 3.14159);
  check Alcotest.string "4 decimals" "3.1416"
    (U.Tablefmt.cell_float ~decimals:4 3.14159)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_counts () =
  let h = U.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (U.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.0; 10.0; 11.0 ];
  checki "total" 7 (U.Histogram.count h);
  checki "underflow" 1 (U.Histogram.underflow h);
  checki "overflow" 2 (U.Histogram.overflow h);
  let counts = U.Histogram.bucket_counts h in
  checki "bucket 0" 1 counts.(0);
  checki "bucket 1" 2 counts.(1);
  checki "bucket 9" 1 counts.(9)

let test_histogram_bounds () =
  let h = U.Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:4 in
  let lo, hi = U.Histogram.bucket_bounds h 1 in
  feq "lo" 0.25 lo;
  feq "hi" 0.5 hi

let () =
  Alcotest.run "mmdb_util"
    [
      ( "xorshift",
        [
          Alcotest.test_case "deterministic" `Quick test_xorshift_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_xorshift_seeds_differ;
          Alcotest.test_case "zero seed" `Quick test_xorshift_zero_seed;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "shuffle permutes" `Quick
            test_shuffle_is_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
          Alcotest.test_case "exponential" `Quick test_exponential_positive;
          Alcotest.test_case "zipf skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "zipf uniform" `Quick test_zipf_theta_zero_uniform;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile interp" `Quick
            test_percentile_interpolates;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "welford" `Quick test_welford_matches_batch;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "pop_exn empty" `Quick test_heap_pop_exn_empty;
          Alcotest.test_case "replace_min" `Quick test_heap_replace_min;
          Alcotest.test_case "of_array invariant" `Quick
            test_heap_of_array_invariant;
          QCheck_alcotest.to_alcotest qcheck_heapsort;
          QCheck_alcotest.to_alcotest qcheck_heap_invariant_under_pushes;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
          Alcotest.test_case "cell_int" `Quick test_cell_int_separators;
          Alcotest.test_case "cell_float" `Quick test_cell_float;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
        ] );
    ]
