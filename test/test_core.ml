(* Tests for the Mmdb facade: Db (tables, indexes, queries) and Txn_db
   (incremental transactions, group commit, crash, recovery). *)

module M = Mmdb
module S = Mmdb_storage
module E = Mmdb_exec
module A = Mmdb_planner.Algebra
module R = Mmdb_recovery
module V = Mmdb_verify

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let emp_schema () =
  S.Schema.create ~key:"id"
    [
      S.Schema.column "id" S.Schema.Int;
      S.Schema.column "dept" S.Schema.Int;
      S.Schema.column "salary" S.Schema.Int;
    ]

let setup_db () =
  let db = M.Db.create () in
  M.Db.create_table db ~name:"emp" ~schema:(emp_schema ());
  M.Db.insert_many db ~table:"emp"
    (List.init 100 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (i mod 7);
           S.Tuple.VInt (30_000 + (i * 500));
         ]));
  db

(* ------------------------------------------------------------------ *)
(* Db                                                                  *)
(* ------------------------------------------------------------------ *)

let test_db_create_and_insert () =
  let db = setup_db () in
  Alcotest.(check (list string)) "tables" [ "emp" ] (M.Db.table_names db);
  checkb "duplicate table rejected" true
    (try
       M.Db.create_table db ~name:"emp" ~schema:(emp_schema ());
       false
     with Invalid_argument _ -> true)

let test_db_lookup_scan_fallback () =
  let db = setup_db () in
  match M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 42) with
  | Some [ S.Tuple.VInt 42; S.Tuple.VInt 0; S.Tuple.VInt 51_000 ] -> ()
  | Some _ -> Alcotest.fail "wrong row"
  | None -> Alcotest.fail "missing row"

let test_db_lookup_with_indexes () =
  List.iter
    (fun kind ->
      let db = setup_db () in
      M.Db.create_index db ~table:"emp" kind;
      (match M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 99) with
      | Some (S.Tuple.VInt 99 :: _) -> ()
      | Some _ | None -> Alcotest.fail "indexed lookup failed");
      checkb "miss is None" true
        (M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 1000) = None);
      (* Index stays consistent under post-build inserts. *)
      M.Db.insert db ~table:"emp"
        [ S.Tuple.VInt 500; S.Tuple.VInt 1; S.Tuple.VInt 1 ];
      match M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 500) with
      | Some (S.Tuple.VInt 500 :: _) -> ()
      | Some _ | None -> Alcotest.fail "index not maintained")
    [ M.Db.Avl_index; M.Db.Btree_index ]

let test_db_duplicate_index_rejected () =
  let db = setup_db () in
  M.Db.create_index db ~table:"emp" M.Db.Avl_index;
  checkb "second AVL rejected" true
    (try
       M.Db.create_index db ~table:"emp" M.Db.Avl_index;
       false
     with Invalid_argument _ -> true)

let test_db_range () =
  let db = setup_db () in
  M.Db.create_index db ~table:"emp" M.Db.Btree_index;
  let rows =
    M.Db.range db ~table:"emp" ~lo:(S.Tuple.VInt 10) ~hi:(S.Tuple.VInt 14)
  in
  checki "5 rows" 5 (List.length rows);
  let ids =
    List.map
      (fun row ->
        match row with
        | S.Tuple.VInt id :: _ -> id
        | _ -> Alcotest.fail "bad row")
      rows
  in
  Alcotest.(check (list int)) "ascending ids" [ 10; 11; 12; 13; 14 ] ids

let test_db_range_scan_fallback_sorted () =
  let db = setup_db () in
  let rows =
    M.Db.range db ~table:"emp" ~lo:(S.Tuple.VInt 97) ~hi:(S.Tuple.VInt 99)
  in
  checki "3 rows" 3 (List.length rows)

let test_db_query_pipeline () =
  let db = setup_db () in
  let rows =
    M.Db.query_rows db
      (A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ]
         (A.scan "emp"))
  in
  checki "7 groups" 7 (List.length rows);
  let total =
    List.fold_left
      (fun acc row ->
        match row with
        | [ _; S.Tuple.VInt c ] -> acc + c
        | _ -> Alcotest.fail "bad agg row")
      0 rows
  in
  checki "all rows counted" 100 total

let test_db_explain () =
  let db = setup_db () in
  let text =
    M.Db.explain db
      (A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 50_000)
         (A.scan "emp"))
  in
  checkb "nonempty" true (String.length text > 0)

let test_db_stats_string () =
  let db = setup_db () in
  ignore (M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 1));
  checkb "stats nonempty" true (String.length (M.Db.stats db) > 0)

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "mmdb_test" ".db" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let mixed_schema () =
  S.Schema.create ~key:"id"
    [
      S.Schema.column "id" S.Schema.Int;
      S.Schema.column ~width:12 "name" S.Schema.Fixed_string;
      S.Schema.column ~width:4 "score" S.Schema.Int;
    ]

let test_save_load_roundtrip () =
  with_temp_file (fun path ->
      let db = setup_db () in
      M.Db.create_table db ~name:"people" ~schema:(mixed_schema ());
      M.Db.insert_many db ~table:"people"
        (List.init 25 (fun i ->
             [
               S.Tuple.VInt i;
               S.Tuple.VStr (Printf.sprintf "p%d" i);
               S.Tuple.VInt (i * 7);
             ]));
      M.Db.create_index db ~table:"emp" M.Db.Btree_index;
      M.Db.save db path;
      let db2 = M.Db.load path in
      Alcotest.(check (list string))
        "tables"
        (List.sort compare (M.Db.table_names db))
        (List.sort compare (M.Db.table_names db2));
      (* All rows identical. *)
      List.iter
        (fun table ->
          let dump d =
            List.sort compare (M.Db.sql d ("SELECT * FROM " ^ table))
          in
          checkb (table ^ " identical") true (dump db = dump db2))
        [ "emp"; "people" ];
      (* Mixed-type rows decode correctly. *)
      (match M.Db.lookup db2 ~table:"people" ~key:(S.Tuple.VInt 7) with
      | Some [ S.Tuple.VInt 7; S.Tuple.VStr "p7"; S.Tuple.VInt 49 ] -> ()
      | _ -> Alcotest.fail "people row corrupted");
      (* The saved index kind was rebuilt and works. *)
      match M.Db.lookup db2 ~table:"emp" ~key:(S.Tuple.VInt 42) with
      | Some (S.Tuple.VInt 42 :: _) -> ()
      | _ -> Alcotest.fail "index lost in roundtrip")

let test_save_load_queries_work () =
  with_temp_file (fun path ->
      let db = setup_db () in
      M.Db.save db path;
      let db2 = M.Db.load path in
      (* Statistics were recomputed: the planner runs fine. *)
      let rows =
        M.Db.sql db2 "SELECT dept, COUNT(*) FROM emp GROUP BY dept"
      in
      checki "7 groups" 7 (List.length rows);
      (* DML after load works too. *)
      (match M.Db.execute db2 "DELETE FROM emp WHERE dept = 0" with
      | M.Db.Affected n -> checkb "some deleted" true (n > 0)
      | M.Db.Rows _ -> Alcotest.fail "expected Affected"))

let test_load_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTADB!!";
      close_out oc;
      checkb "bad magic rejected" true
        (try
           ignore (M.Db.load path);
           false
         with Invalid_argument _ -> true))

let test_load_truncated () =
  with_temp_file (fun path ->
      let db = setup_db () in
      M.Db.save db path;
      let ic = open_in_bin path in
      let full = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 10));
      close_out oc;
      checkb "truncation rejected" true
        (try
           ignore (M.Db.load path);
           false
         with Invalid_argument _ -> true))

let test_save_empty_db () =
  with_temp_file (fun path ->
      let db = M.Db.create () in
      M.Db.save db path;
      let db2 = M.Db.load path in
      Alcotest.(check (list string)) "no tables" [] (M.Db.table_names db2))

(* ------------------------------------------------------------------ *)
(* Txn_db                                                              *)
(* ------------------------------------------------------------------ *)

let test_txn_basic_commit () =
  let db = M.Txn_db.create ~strategy:R.Wal.Conventional () in
  let o = M.Txn_db.transact db [ (0, 100); (1, -100) ] in
  checkb "durable (conventional)" true (o.M.Txn_db.durable_at <> None);
  checki "balance 0" 100 (M.Txn_db.balance db 0);
  checki "balance 1" (-100) (M.Txn_db.balance db 1)

let test_txn_group_commit_pending () =
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit () in
  let o = M.Txn_db.transact db [ (0, 5); (1, -5) ] in
  checkb "pending in open group" true (o.M.Txn_db.durable_at = None);
  checkb "not yet committed" true
    (not (List.mem o.M.Txn_db.txn_id (M.Txn_db.committed_txns db)));
  M.Txn_db.flush db;
  checkb "committed after flush" true
    (List.mem o.M.Txn_db.txn_id (M.Txn_db.committed_txns db))

let test_txn_crash_recover_durable () =
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:50 () in
  for _ = 1 to 30 do
    ignore (M.Txn_db.transact db [ (2, 10); (3, -10) ]);
    M.Txn_db.advance db 1e-3
  done;
  M.Txn_db.flush db;
  let before = Array.init 50 (M.Txn_db.balance db) in
  M.Txn_db.crash db;
  checkb "reads blocked after crash" true
    (try
       ignore (M.Txn_db.balance db 0);
       false
     with Invalid_argument _ -> true);
  ignore (M.Txn_db.recover db);
  let after = Array.init 50 (M.Txn_db.balance db) in
  checkb "state restored" true (before = after)

let test_txn_crash_loses_unflushed_group () =
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:50 () in
  ignore (M.Txn_db.transact db [ (0, 7); (1, -7) ]);
  (* No flush: the group never left the volatile buffer. *)
  M.Txn_db.crash db;
  ignore (M.Txn_db.recover db);
  checki "update rolled away" 0 (M.Txn_db.balance db 0);
  checki "partner rolled away" 0 (M.Txn_db.balance db 1)

let test_txn_checkpoint_and_recover () =
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:50 () in
  for _ = 1 to 20 do
    ignore (M.Txn_db.transact db [ (4, 1); (5, -1) ]);
    M.Txn_db.advance db 1e-3
  done;
  let st = M.Txn_db.checkpoint db in
  checkb "checkpoint flushed pages" true (st.R.Kv_store.pages_flushed > 0);
  for _ = 1 to 5 do
    ignore (M.Txn_db.transact db [ (4, 1); (5, -1) ]);
    M.Txn_db.advance db 1e-3
  done;
  M.Txn_db.flush db;
  M.Txn_db.crash db;
  let rs = M.Txn_db.recover db in
  checki "balance correct" 25 (M.Txn_db.balance db 4);
  checkb "redo bounded by checkpoint" true (rs.R.Kv_store.redo_applied <= 2 * 5 + 2)

let test_txn_stable_strategy_immediate () =
  let db =
    M.Txn_db.create
      ~strategy:
        (R.Wal.Stable { devices = 1; capacity_bytes = 8192; compressed = true })
      ()
  in
  let o = M.Txn_db.transact db [ (0, 3); (1, -3) ] in
  checkb "instant durability" true (o.M.Txn_db.durable_at = Some 0.0);
  M.Txn_db.crash db;
  ignore (M.Txn_db.recover db);
  checki "survives crash without flush" 3 (M.Txn_db.balance db 0)

let test_txn_validation () =
  let db = M.Txn_db.create () in
  checkb "empty updates rejected" true
    (try
       ignore (M.Txn_db.transact db []);
       false
     with Invalid_argument _ -> true);
  checkb "recover when alive rejected" true
    (try
       ignore (M.Txn_db.recover db);
       false
     with Invalid_argument _ -> true)

(* A slot appearing twice in one update list would hit the lock
   manager's re-acquire path and muddy dependency accounting. *)
let test_txn_duplicate_slot_rejected () =
  let db = M.Txn_db.create () in
  let dup_rejected f =
    try
      ignore (f ());
      false
    with Invalid_argument m ->
      Alcotest.(check bool) "message names the slot" true
        (let sub = "duplicate slot 3" in
         let n = String.length m and k = String.length sub in
         let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
         go 0);
      true
  in
  checkb "transact rejects duplicate slot" true
    (dup_rejected (fun () -> M.Txn_db.transact db [ (3, 10); (4, -5); (3, -5) ]));
  checkb "transact_abort rejects duplicate slot" true
    (dup_rejected (fun () -> M.Txn_db.transact_abort db [ (3, 1); (3, -1) ]));
  (* The failed calls left no residue: a normal transaction still runs. *)
  ignore (M.Txn_db.transact db [ (3, 10); (4, -10) ]);
  checki "balance applied" 10 (M.Txn_db.balance db 3)

let test_txn_schedule_recording () =
  let db = M.Txn_db.create () in
  ignore (M.Txn_db.transact db [ (0, 1); (1, -1) ]);
  Alcotest.(check (list Alcotest.reject)) "recording off by default" []
    (M.Txn_db.schedule db);
  let db = M.Txn_db.create ~record_schedule:true ~nrecords:16 () in
  for i = 0 to 4 do
    ignore (M.Txn_db.transact db [ (i, 10); (i + 5, -10) ]);
    M.Txn_db.advance db 1e-3
  done;
  ignore (M.Txn_db.transact_abort db [ (2, 99) ]);
  M.Txn_db.flush db;
  let events = M.Txn_db.schedule db in
  checkb "events recorded" true (events <> []);
  let has k =
    List.exists
      (fun (e : R.Schedule.event) -> R.Schedule.kind_name e.R.Schedule.kind = k)
      events
  in
  List.iter
    (fun k -> checkb (k ^ " present") true (has k))
    [
      "Acquire"; "Grant"; "Read"; "Write"; "Precommit"; "Release"; "Abort";
      "CommitDurable";
    ];
  (* The recorded schedule passes the transaction sanitizer. *)
  checkb "sanitizer clean" true
    (V.Txn_check.ok ~log:(M.Txn_db.log_records db) events)

let () =
  Alcotest.run "mmdb_core"
    [
      ( "db",
        [
          Alcotest.test_case "create/insert" `Quick test_db_create_and_insert;
          Alcotest.test_case "lookup scan fallback" `Quick
            test_db_lookup_scan_fallback;
          Alcotest.test_case "lookup with indexes" `Quick
            test_db_lookup_with_indexes;
          Alcotest.test_case "duplicate index rejected" `Quick
            test_db_duplicate_index_rejected;
          Alcotest.test_case "range via btree" `Quick test_db_range;
          Alcotest.test_case "range scan fallback" `Quick
            test_db_range_scan_fallback_sorted;
          Alcotest.test_case "query pipeline" `Quick test_db_query_pipeline;
          Alcotest.test_case "explain" `Quick test_db_explain;
          Alcotest.test_case "stats" `Quick test_db_stats_string;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "queries after load" `Quick
            test_save_load_queries_work;
          Alcotest.test_case "bad magic" `Quick test_load_bad_magic;
          Alcotest.test_case "truncated" `Quick test_load_truncated;
          Alcotest.test_case "empty db" `Quick test_save_empty_db;
        ] );
      ( "txn_db",
        [
          Alcotest.test_case "basic commit" `Quick test_txn_basic_commit;
          Alcotest.test_case "group commit pending" `Quick
            test_txn_group_commit_pending;
          Alcotest.test_case "crash/recover durable" `Quick
            test_txn_crash_recover_durable;
          Alcotest.test_case "crash loses unflushed group" `Quick
            test_txn_crash_loses_unflushed_group;
          Alcotest.test_case "checkpoint + recover" `Quick
            test_txn_checkpoint_and_recover;
          Alcotest.test_case "stable immediate" `Quick
            test_txn_stable_strategy_immediate;
          Alcotest.test_case "validation" `Quick test_txn_validation;
          Alcotest.test_case "duplicate slot rejected" `Quick
            test_txn_duplicate_slot_rejected;
          Alcotest.test_case "schedule recording" `Quick
            test_txn_schedule_recording;
        ] );
    ]
