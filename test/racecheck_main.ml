(* Domain-safety gate, wired to `dune build @racecheck` (and the CI
   racecheck step): the static shared-state lint over lib/ plus the
   dynamic happens-before detector over clean multi-domain 2PL fuzz
   schedules (two seeds), a clean MVCC versioning trace, and an
   injected-race positive control that must be fully detected.  Exits
   non-zero on any flagged site, detected race, or missed injection. *)

module V = Mmdb_verify

let failures = ref 0

let part name ok =
  Format.printf "%-28s %s@." name (if ok then "ok" else "FAIL");
  if not ok then incr failures

let () =
  (* Static half: every module-level mutable site under lib/ must be
     domain-safe, per-instance, or carry a race_check justification. *)
  (match V.Domain_lint.scan_lib () with
  | Error m ->
    Format.printf "%s@." m;
    part "static lint" false
  | Ok (sites, parse_diags) ->
    let diags = parse_diags @ V.Domain_lint.diags_of_sites sites in
    List.iter (fun d -> Format.printf "  %a@." V.Diag.pp d) diags;
    Format.printf "  (%d sites inventoried)@." (List.length sites);
    part "static lint" (not (V.Diag.has_errors diags)));
  (* Dynamic half: clean multi-domain 2PL schedules must audit race-free
     under two independent seeds. *)
  List.iter
    (fun seed ->
      let o = V.Txn_fuzz.run ~domains:3 ~seed () in
      List.iter
        (fun d -> Format.printf "  %a@." V.Diag.pp d)
        o.V.Txn_fuzz.race_diags;
      part
        (Printf.sprintf "clean 2PL fuzz (seed %d)" seed)
        (not (V.Diag.has_errors o.V.Txn_fuzz.race_diags)))
    [ 11; 20260807 ];
  (* Positive control: every injected race must be flagged under its
     expected code — a silent detector is worse than none. *)
  let o =
    V.Txn_fuzz.run ~domains:3
      ~inject:[ `Ww; `Rw; `Unguarded; `Release_no_acquire; `Snapshot ]
      ~seed:11 ()
  in
  let found =
    List.map (fun (d : V.Diag.t) -> d.V.Diag.code) o.V.Txn_fuzz.race_diags
  in
  let missed =
    List.filter (fun c -> not (List.mem c found)) o.V.Txn_fuzz.injected
  in
  List.iter (fun c -> Format.printf "  missed injected race %s@." c) missed;
  part "injected-race control (5)" (missed = []);
  (* Versioning engine: a clean MVCC trace must satisfy snapshot
     discipline without any lock events. *)
  let r =
    Mmdb_recovery.Mvcc_sim.run ~seed:83 ~n_writers:4_000 ~record_schedule:true
      Mmdb_recovery.Mvcc_sim.Versioning
  in
  let diags = V.Race_check.audit r.Mmdb_recovery.Mvcc_sim.events in
  List.iter (fun d -> Format.printf "  %a@." V.Diag.pp d) diags;
  part "clean MVCC trace" (not (V.Diag.has_errors diags));
  (* Parallel replay: a 4-partition adaptive-logging recovery records its
     domain-stamped Grant/Write/Release schedule; the happens-before
     detector must find no conflicting cross-partition access outside a
     barrier's mutual-exclusion window. *)
  let module RM = Mmdb_recovery.Recovery_manager in
  let o =
    RM.run
      {
        RM.default_config with
        RM.nrecords = 200;
        records_per_page = 10;
        updates_per_txn = 4;
        n_txns = 300;
        checkpoint_every = Some 100;
        crash_after = Some 260;
        seed = 29;
        replay =
          {
            RM.workers = 4;
            use_domains = false;
            logging = RM.Adaptive_logging;
            crash_steps = None;
            record_replay = true;
            serve_stale = false;
          };
      }
  in
  let diags = V.Race_check.audit o.RM.replay_events in
  List.iter (fun d -> Format.printf "  %a@." V.Diag.pp d) diags;
  Format.printf "  (%d replay events over %d workers)@."
    (List.length o.RM.replay_events)
    o.RM.recover_stats.Mmdb_recovery.Kv_store.workers;
  part "parallel replay schedule"
    (o.RM.replay_events <> []
    && o.RM.consistent
    && not (V.Diag.has_errors diags));
  Format.printf "racecheck: %s@."
    (if !failures = 0 then "all clean"
     else Printf.sprintf "%d gate%s failed" !failures
         (if !failures = 1 then "" else "s"));
  exit (if !failures = 0 then 0 else 1)
