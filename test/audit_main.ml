(* Standalone invariant audit, wired to `dune build @audit`: exercises
   every structure with a check_invariants hook plus the WAL and pool
   protocols, then prints a checklist report.  Exits non-zero on any
   error-severity finding. *)

module S = Mmdb_storage
module I = Mmdb_index
module R = Mmdb_recovery
module U = Mmdb_util
module V = Mmdb_verify

let idx_schema =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]

let mk k v = S.Tuple.encode idx_schema [ S.Tuple.VInt k; S.Tuple.VInt v ]
let key k = S.Tuple.encode_int_key idx_schema k

(* Mixed insert/delete workload over each index structure. *)
let workload insert delete =
  let rng = U.Xorshift.create 2026 in
  for _ = 1 to 2000 do
    let k = U.Xorshift.int rng 800 in
    if U.Xorshift.int rng 4 < 3 then insert (mk k (k * 7))
    else ignore (delete (key k))
  done

let () =
  let env = S.Env.create () in
  let avl = I.Avl.create ~env ~schema:idx_schema () in
  workload (I.Avl.insert avl) (I.Avl.delete avl);
  let btree = I.Btree.create ~env ~schema:idx_schema ~page_size:256 () in
  workload (I.Btree.insert btree) (I.Btree.delete btree);
  let bst = I.Paged_bst.create ~env ~schema:idx_schema () in
  workload (I.Paged_bst.insert bst) (I.Paged_bst.delete bst);
  let heap =
    let rng = U.Xorshift.create 7 in
    U.Heap.of_array ~cmp:compare
      (Array.init 500 (fun _ -> U.Xorshift.int rng 10_000))
  in
  let pool =
    let disk = S.Disk.create ~env ~page_size:64 in
    let pids = Array.init 32 (fun _ -> S.Disk.alloc disk) in
    let pool = S.Buffer_pool.create ~disk ~capacity:8 S.Buffer_pool.Lru in
    let rng = U.Xorshift.create 13 in
    for _ = 1 to 500 do
      let pid = pids.(U.Xorshift.int rng 32) in
      let data = S.Buffer_pool.pin pool pid in
      if U.Xorshift.int rng 2 = 0 then begin
        Bytes.set data 0 'x';
        S.Buffer_pool.mark_dirty pool pid
      end;
      S.Buffer_pool.unpin pool pid
    done;
    S.Buffer_pool.flush_all pool;
    pool
  in
  let recovery_log =
    let o =
      R.Recovery_manager.run
        {
          R.Recovery_manager.default_config with
          R.Recovery_manager.n_txns = 600;
          R.Recovery_manager.checkpoint_every = Some 150;
        }
    in
    o.R.Recovery_manager.log_records
  in
  let db =
    let db = Mmdb.Db.create () in
    Mmdb.Db.create_table db ~name:"t" ~schema:idx_schema;
    Mmdb.Db.insert_many db ~table:"t"
      (List.init 500 (fun i -> [ S.Tuple.VInt i; S.Tuple.VInt (i * 3) ]));
    Mmdb.Db.create_index db ~table:"t" Mmdb.Db.Avl_index;
    Mmdb.Db.create_index db ~table:"t" Mmdb.Db.Btree_index;
    db
  in
  (* Seeded transaction-schedule fuzz runs: sorted acquisition order, so
     every one must audit clean (the TXN analyzers gate the build). *)
  let fuzz_components =
    List.map
      (fun seed ->
        let o = V.Txn_fuzz.run ~seed () in
        V.Audit.Schedule
          {
            name = Printf.sprintf "txn fuzz (seed %d)" seed;
            events = o.V.Txn_fuzz.events;
            log = o.V.Txn_fuzz.log;
          })
      [ 11; 22; 33 ]
  in
  let txn_db_schedule =
    let db = Mmdb.Txn_db.create ~record_schedule:true ~nrecords:32 () in
    for i = 0 to 9 do
      ignore (Mmdb.Txn_db.transact db [ (i mod 8, 10); ((i + 3) mod 8, -10) ]);
      Mmdb.Txn_db.advance db 0.0002
    done;
    ignore (Mmdb.Txn_db.transact_abort db [ (1, 500) ]);
    Mmdb.Txn_db.flush db;
    V.Audit.Schedule
      {
        name = "txn-db schedule";
        events = Mmdb.Txn_db.schedule db;
        log = Mmdb.Txn_db.log_records db;
      }
  in
  let results =
    V.Audit.run_all
      ([
        V.Audit.Avl ("avl (workload)", avl);
        V.Audit.Btree ("btree (workload)", btree);
        V.Audit.Paged_bst ("paged-bst (workload)", bst);
        V.Audit.Heap_check ("heap", fun () -> U.Heap.check_invariant heap);
        V.Audit.Pool { name = "buffer pool"; pool; expect_unpinned = true };
        V.Audit.Log
          {
            name = "recovery wal";
            complete = true;
            records = recovery_log;
          };
        txn_db_schedule;
      ]
      @ fuzz_components)
    @ Mmdb.Db.audit db
  in
  let clean = V.Audit.report Format.std_formatter results in
  exit (if clean then 0 else 1)
