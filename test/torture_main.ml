(* Driver behind the @torture dune alias (and the CI torture gate): the
   full default sweep — four commit strategies x every fault spec x every
   harvested crash point — exits nonzero on any silent corruption. *)

let () =
  let r = Mmdb_verify.Torture.run ~seed:7 () in
  Format.printf "%a@?" Mmdb_verify.Torture.pp r;
  exit (if Mmdb_verify.Torture.ok r then 0 else 1)
