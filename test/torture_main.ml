(* Driver behind the @torture dune alias (and the CI torture gate): the
   full default sweep — four commit strategies x every fault spec x every
   harvested crash point, replayed in four partitions under adaptive
   logging, plus the restart-crash matrix (recovery crashed mid-replay
   and restarted) — exits nonzero on any silent corruption.  A second,
   reduced seed guards against a lucky crash-point harvest. *)

let () =
  let r7 = Mmdb_verify.Torture.run ~seed:7 () in
  Format.printf "== seed 7 ==@.%a@?" Mmdb_verify.Torture.pp r7;
  let r11 =
    Mmdb_verify.Torture.run ~seed:11 ~max_points_per_combo:8 ()
  in
  Format.printf "@.== seed 11 (reduced) ==@.%a@?" Mmdb_verify.Torture.pp r11;
  exit
    (if Mmdb_verify.Torture.ok r7 && Mmdb_verify.Torture.ok r11 then 0 else 1)
