(* Tests for the performance-hazard pass: synthetic sources asserting
   the exact PERF code for each hazard class (and the silence of the
   corresponding clean idiom), the perf_lint justification whitelist,
   scan determinism, and the catalogue plumbing shared with the
   perflint gate. *)

module V = Mmdb_verify
module PL = V.Perf_lint

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let scan ?(file = "lib/core/synthetic.ml") source =
  match PL.scan_source ~file source with
  | Ok findings -> findings
  | Error d -> Alcotest.failf "unexpected parse failure: %s" d.V.Diag.message

let codes findings =
  List.sort_uniq compare (List.map (fun (f : PL.finding) -> f.PL.code) findings)

let flagged_codes findings =
  codes
    (List.filter (fun (f : PL.finding) -> f.PL.status = PL.Flagged) findings)

let check_codes msg expected findings =
  Alcotest.(check (list string)) msg expected (flagged_codes findings)

(* ------------------------------------------------------------------ *)
(* One fixture per code                                                *)
(* ------------------------------------------------------------------ *)

let test_perf101_tail_append () =
  let fs = scan "let add_tail xs x = xs @ [ x ]" in
  check_codes "tail-append flagged" [ "PERF101" ] fs;
  (match fs with
  | [ f ] ->
    Alcotest.(check string) "construct" "xs @ [x]" f.PL.construct;
    Alcotest.(check string) "binding" "add_tail" f.PL.name;
    checki "line" 1 f.PL.line
  | _ -> Alcotest.fail "expected exactly one finding");
  (* The remediation idiom is silent. *)
  check_codes "cons + rev is clean" []
    (scan "let add xs x = List.rev (x :: List.rev xs)");
  (* A general append of two variables is not a tail-append. *)
  check_codes "xs @ ys is clean" [] (scan "let cat xs ys = xs @ ys")

let test_perf102_nth_under_iteration () =
  check_codes "nth in iter callback" [ "PERF102" ]
    (scan "let f l = List.iter (fun i -> ignore (List.nth l i)) l");
  check_codes "length in for loop" [ "PERF102" ]
    (scan "let f l = for _ = 1 to 3 do ignore (List.length l) done");
  check_codes "length in rec fn" [ "PERF102" ]
    (scan "let rec f l = if List.length l = 0 then 0 else f (List.tl l)");
  (* The same primitives outside iteration are fine. *)
  check_codes "bare length is clean" [] (scan "let n l = List.length l")

let test_perf103_poly_compare_hot_dirs () =
  let src = "let sort l = List.sort compare l" in
  check_codes "compare in storage/" [ "PERF103" ]
    (scan ~file:"lib/storage/synthetic.ml" src);
  check_codes "hash in exec/" [ "PERF103" ]
    (scan ~file:"lib/exec/synthetic.ml" "let h x = Hashtbl.hash x");
  (* Cold directories and monomorphic comparators are out of scope. *)
  check_codes "compare in core/ is clean" []
    (scan ~file:"lib/core/synthetic.ml" src);
  check_codes "Int.compare is clean" []
    (scan ~file:"lib/storage/synthetic.ml"
       "let sort l = List.sort Int.compare l")

let test_perf104_nontail_recursion () =
  check_codes "non-tail len" [ "PERF104" ]
    (scan "let rec len = function [] -> 0 | _ :: tl -> 1 + len tl");
  (* Accumulator version is tail-recursive. *)
  check_codes "tail len is clean" []
    (scan
       "let rec len acc = function [] -> acc | _ :: tl -> len (acc + 1) tl");
  (* Non-list recursion (no cons pattern) is out of scope. *)
  check_codes "countdown is clean" []
    (scan "let rec f n = if n = 0 then 0 else 1 + f (n - 1)");
  (* A tail call inside an iterator callback that encloses the whole
     definition must not be mistaken for a non-tail self-call. *)
  check_codes "tail call under outer callback is clean" []
    (scan
       "let g xs =\n\
       \  List.iter\n\
       \    (fun x ->\n\
       \       let rec walk = function [] -> () | _ :: tl -> walk tl in\n\
       \       walk x)\n\
       \    xs")

let test_perf105_concat_under_iteration () =
  check_codes "concat in fold" [ "PERF105" ]
    (scan "let j l = List.fold_left (fun acc s -> acc ^ s) \"\" l");
  check_codes "concat in while" [ "PERF105" ]
    (scan
       "let f r = while String.length !r < 9 do r := !r ^ \"x\" done");
  check_codes "one-shot concat is clean" [] (scan "let f a b = a ^ b")

(* ------------------------------------------------------------------ *)
(* Whitelist, determinism, parse failure                               *)
(* ------------------------------------------------------------------ *)

let test_justification_whitelist () =
  let src =
    "(* perf_lint: test corpus; bounded at three elements *)\n\
     let add_tail xs x = xs @ [ x ]"
  in
  let fs = scan src in
  check_codes "justified finding is not flagged" [] fs;
  (match fs with
  | [ { PL.status = PL.Whitelisted why; _ } ] ->
    checkb "justification text echoed" true
      (why = "test corpus; bounded at three elements")
  | _ -> Alcotest.fail "expected one whitelisted finding");
  (* Three or more lines away, the comment no longer applies. *)
  let far =
    "(* perf_lint: too far away *)\n\n\n let add_tail xs x = xs @ [ x ]"
  in
  check_codes "distant comment does not silence" [ "PERF101" ] (scan far)

let test_determinism () =
  let src =
    "let a xs x = xs @ [ x ]\n\
     let b l = List.iter (fun i -> ignore (List.nth l i)) l\n\
     let rec len = function [] -> 0 | _ :: tl -> 1 + len tl"
  in
  checkb "two scans agree" true (scan src = scan src);
  Alcotest.(check (list string))
    "all three hazards found"
    [ "PERF101"; "PERF102"; "PERF104" ]
    (flagged_codes (scan src))

let test_parse_failure () =
  match PL.scan_source ~file:"lib/bad.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected PERF100"
  | Error d -> Alcotest.(check string) "code" "PERF100" d.V.Diag.code

(* ------------------------------------------------------------------ *)
(* Repo sweep and catalogue plumbing                                   *)
(* ------------------------------------------------------------------ *)

(* The library must stay perf-clean: every hazard fixed or justified.
   Lenient when the repo root is not visible from the test sandbox. *)
let test_repo_sources_clean () =
  match PL.scan_lib () with
  | Error _ -> ()
  | Ok (findings, parse_diags) ->
    let diags = parse_diags @ PL.diags_of_findings findings in
    List.iter
      (fun (d : V.Diag.t) ->
        Printf.printf "unjustified: [%s] %s %s\n" d.V.Diag.code d.V.Diag.path
          d.V.Diag.message)
      diags;
    checkb "no unjustified perf findings in lib/" false
      (V.Diag.has_errors diags)

let test_code_catalogue () =
  let cat = V.code_catalogue in
  List.iter
    (fun c ->
      checkb (c ^ " catalogued") true (List.mem_assoc c cat);
      checki (c ^ " unique") 1
        (List.length (List.filter (fun (c', _) -> c' = c) cat)))
    [ "PERF100"; "PERF101"; "PERF102"; "PERF103"; "PERF104"; "PERF105" ];
  (* The audit component surfaces the same diagnostics. *)
  match PL.scan_lib () with
  | Error _ -> ()
  | Ok (findings, parse_diags) ->
    let via_audit =
      V.Audit.run (V.Audit.Perf { name = "perf lint"; root = None })
    in
    checki "audit component matches scan_lib"
      (List.length (parse_diags @ PL.diags_of_findings findings))
      (List.length via_audit)

let () =
  Alcotest.run "perflint"
    [
      ( "codes",
        [
          Alcotest.test_case "PERF101 tail-append" `Quick
            test_perf101_tail_append;
          Alcotest.test_case "PERF102 nth/length under iteration" `Quick
            test_perf102_nth_under_iteration;
          Alcotest.test_case "PERF103 polymorphic compare/hash" `Quick
            test_perf103_poly_compare_hot_dirs;
          Alcotest.test_case "PERF104 non-tail recursion" `Quick
            test_perf104_nontail_recursion;
          Alcotest.test_case "PERF105 concat under iteration" `Quick
            test_perf105_concat_under_iteration;
        ] );
      ( "policy",
        [
          Alcotest.test_case "justification whitelist" `Quick
            test_justification_whitelist;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "parse failure (PERF100)" `Quick
            test_parse_failure;
          Alcotest.test_case "repo sources clean" `Quick
            test_repo_sources_clean;
          Alcotest.test_case "code catalogue" `Quick test_code_catalogue;
        ] );
    ]
