(* Tests for the overload-resilient service layer: typed sheds, deadline
   expiry at every stage (lock wait, operator boundary, commit point),
   the circuit-breaker state machine, spike-mode fuzzing, and degraded
   modes.  The recurring assertion: every shed leaves the service clean —
   no locks held, no pinned frames, no balance drift, and a
   Txn_check-clean audit trail. *)

module S = Mmdb_storage
module R = Mmdb_recovery
module P = Mmdb_planner
module A = P.Algebra
module U = Mmdb_util
module V = Mmdb_verify
module D = U.Diag
module O = Mmdb_overload.Overload
module C = Mmdb.Txn_db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let shed_of f =
  match f () with
  | _ -> None
  | exception O.Shed r -> Some r

let audit_clean db =
  not (D.has_errors (V.Txn_check.audit ~log:(C.log_records db) (C.schedule db)))

(* ------------------------------------------------------------------ *)
(* Deadline expiry: lock stage (OVLD004)                               *)
(* ------------------------------------------------------------------ *)

let test_deadline_at_lock () =
  let db = C.create ~record_schedule:true () in
  let b0 = C.balance db 0 and b1 = C.balance db 1 in
  let d = O.Deadline.at (C.now db -. 1e-3) in
  (match shed_of (fun () -> C.transact ~deadline:d db [ (0, 5); (1, -5) ]) with
  | Some r ->
    checks "code" "OVLD004" r.O.code;
    checks "site" "txn.lock" r.O.site
  | None -> Alcotest.fail "expired transaction was not shed");
  checki "balance 0 untouched" b0 (C.balance db 0);
  checki "balance 1 untouched" b1 (C.balance db 1);
  checki "tally" 1 (C.overload_tally db).O.lock_timeouts;
  (* The slots are free again: a deadline-free retry commits. *)
  ignore (C.transact db [ (0, 5); (1, -5) ]);
  C.flush db;
  checki "retry committed" (b0 + 5) (C.balance db 0);
  checkb "audit clean" true (audit_clean db)

(* ------------------------------------------------------------------ *)
(* Deadline expiry: commit point (OVLD006, rolled back)                *)
(* ------------------------------------------------------------------ *)

let test_deadline_at_commit () =
  (* Each applied update burns 10 ms; a 15 ms budget survives the locks
     but expires at the commit point after both updates ran. *)
  let db = C.create ~record_schedule:true ~work_per_update:0.01 () in
  let b0 = C.balance db 0 and b1 = C.balance db 1 in
  let d = O.Deadline.make ~now:(C.now db) ~budget:0.015 in
  (match shed_of (fun () -> C.transact ~deadline:d db [ (0, 7); (1, -7) ]) with
  | Some r ->
    checks "code" "OVLD006" r.O.code;
    checks "site" "txn.commit" r.O.site
  | None -> Alcotest.fail "expired transaction was not shed");
  checki "balance 0 rolled back" b0 (C.balance db 0);
  checki "balance 1 rolled back" b1 (C.balance db 1);
  checki "tally" 1 (C.overload_tally db).O.commit_timeouts;
  ignore (C.transact db [ (0, 7); (1, -7) ]);
  C.flush db;
  checki "retry committed" (b0 + 7) (C.balance db 0);
  checkb "audit clean" true (audit_clean db)

(* ------------------------------------------------------------------ *)
(* Deadline expiry: mid lock wait (expire_waiters)                     *)
(* ------------------------------------------------------------------ *)

let test_deadline_mid_lock_wait () =
  let lm = R.Lock_manager.create () in
  checkb "holder granted" true (R.Lock_manager.acquire lm ~txn:1 ~key:7 <> None);
  let d = O.Deadline.make ~now:0.0 ~budget:1e-3 in
  checkb "waiter queued" true
    (R.Lock_manager.acquire ~deadline:d lm ~txn:2 ~key:7 = None);
  checki "not expired early" 0
    (List.length (R.Lock_manager.expire_waiters lm ~now:0.5e-3));
  (match R.Lock_manager.expire_waiters lm ~now:2e-3 with
  | [ 2 ] -> ()
  | l -> Alcotest.failf "expected waiter 2 expired, got %d ids" (List.length l));
  ignore (R.Lock_manager.release_abort lm ~txn:2);
  checki "victim holds no locks" 0 (List.length (R.Lock_manager.locks_held lm ~txn:2));
  checkb "holder undisturbed" true (R.Lock_manager.holder lm ~key:7 = Some 1);
  checkb "queue empty" true (R.Lock_manager.waiters lm ~key:7 = [])

(* ------------------------------------------------------------------ *)
(* Deadline expiry: operator boundary (OVLD005)                        *)
(* ------------------------------------------------------------------ *)

let emp_schema () =
  S.Schema.create ~key:"id"
    [ S.Schema.column "id" S.Schema.Int; S.Schema.column "salary" S.Schema.Int ]

let query_setup () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:512 in
  let emp =
    S.Relation.of_tuples ~disk ~name:"emp" ~schema:(emp_schema ())
      (List.init 50 (fun i ->
           S.Tuple.encode (emp_schema ())
             [ S.Tuple.VInt i; S.Tuple.VInt (1000 * i) ]))
  in
  let cat = P.Catalog.create () in
  P.Catalog.register cat emp;
  (env, disk, cat)

let test_deadline_mid_operator () =
  let env, disk, cat = query_setup () in
  (* A pool in the same environment, exercised before the shed: the
     expired query must leave zero pinned frames behind. *)
  let pool = S.Buffer_pool.create ~disk ~capacity:4 S.Buffer_pool.Lru in
  let pids = Array.init 6 (fun _ -> S.Disk.alloc disk) in
  Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids;
  let cfg = P.Optimizer.default_config in
  let d = O.Deadline.at (S.Sim_clock.now env.S.Env.clock -. 1.0) in
  (match shed_of (fun () -> P.Executor.query ~deadline:d cat cfg (A.scan "emp"))
   with
  | Some r ->
    checks "code" "OVLD005" r.O.code;
    checks "site" "exec.node" r.O.site
  | None -> Alcotest.fail "expired query was not shed");
  checki "tally" 1 env.S.Env.counters.S.Counters.ovld.O.op_timeouts;
  checkb "zero pinned frames" true (V.Pool_check.ok pool);
  (* The catalog is untouched: the same query runs clean afterwards. *)
  let out = P.Executor.query cat cfg (A.scan "emp") in
  checki "rerun scans everything" 50 (List.length (P.Executor.rows out))

(* ------------------------------------------------------------------ *)
(* Circuit breaker: state machine vs a reference model                 *)
(* ------------------------------------------------------------------ *)

type model = {
  mutable m_st : O.Breaker.state;
  mutable m_consec : int;
  mutable m_opened : float;
  mutable m_probe : bool;
  mutable m_trips : int;
  mutable m_probes : int;
  mutable m_reopens : int;
}

let model_threshold = 3
let model_cooldown = 10e-3

let model_tick m ~now =
  match m.m_st with
  | O.Breaker.Open when now >= m.m_opened +. model_cooldown ->
    m.m_st <- O.Breaker.Half_open;
    m.m_probe <- false
  | O.Breaker.Open | O.Breaker.Closed | O.Breaker.Half_open -> ()

let model_trip m ~now ~reopen =
  m.m_st <- O.Breaker.Open;
  m.m_opened <- now;
  m.m_consec <- 0;
  m.m_probe <- false;
  if reopen then m.m_reopens <- m.m_reopens + 1
  else m.m_trips <- m.m_trips + 1

let model_apply m ~now op =
  model_tick m ~now;
  match op with
  | `Fail -> (
    match m.m_st with
    | O.Breaker.Closed ->
      m.m_consec <- m.m_consec + 1;
      if m.m_consec >= model_threshold then model_trip m ~now ~reopen:false
    | O.Breaker.Half_open -> model_trip m ~now ~reopen:true
    | O.Breaker.Open -> ())
  | `Succeed -> (
    match m.m_st with
    | O.Breaker.Closed -> m.m_consec <- 0
    | O.Breaker.Half_open ->
      m.m_st <- O.Breaker.Closed;
      m.m_consec <- 0;
      m.m_probe <- false
    | O.Breaker.Open -> ())
  | `Allow -> (
    match m.m_st with
    | O.Breaker.Closed | O.Breaker.Open -> ()
    | O.Breaker.Half_open ->
      if not m.m_probe then begin
        m.m_probe <- true;
        m.m_probes <- m.m_probes + 1
      end)

(* Decode a small int into an op: failures are likeliest so the model
   visits Open and Half_open often. *)
let op_of_int i now =
  match i mod 10 with
  | 0 | 1 | 2 -> (`Fail, now)
  | 3 | 4 -> (`Succeed, now)
  | 5 | 6 -> (`Allow, now)
  | 7 -> (`Advance 1e-3, now)
  | 8 -> (`Advance 6e-3, now)
  | _ -> (`Advance 12e-3, now)

let qcheck_breaker_model =
  QCheck.Test.make ~name:"breaker follows the reference state machine"
    ~count:300
    QCheck.(list small_nat)
    (fun ops ->
      let b =
        O.Breaker.create ~threshold:model_threshold ~cooldown:model_cooldown
          ~name:"model" ()
      in
      let m =
        {
          m_st = O.Breaker.Closed;
          m_consec = 0;
          m_opened = 0.0;
          m_probe = false;
          m_trips = 0;
          m_probes = 0;
          m_reopens = 0;
        }
      in
      let now = ref 0.0 in
      List.for_all
        (fun i ->
          let op, _ = op_of_int i !now in
          (match op with
          | `Advance dt -> now := !now +. dt
          | (`Fail | `Succeed | `Allow) as op ->
            model_apply m ~now:!now op;
            (match op with
            | `Fail -> O.Breaker.record_failure b ~now:!now
            | `Succeed -> O.Breaker.record_success b ~now:!now
            | `Allow -> ignore (O.Breaker.allow b ~now:!now)));
          (* [Breaker.state] resolves the cooldown transition lazily;
             mirror that before comparing. *)
          model_tick m ~now:!now;
          O.Breaker.state b ~now:!now = m.m_st
          && O.Breaker.trips b = m.m_trips
          && O.Breaker.reopens b = m.m_reopens
          && O.Breaker.probes b = m.m_probes
          && O.Breaker.consecutive_failures b = m.m_consec)
        ops)

let test_breaker_cycle () =
  (* The canonical trip/probe cycle: threshold failures open it, the
     cooldown half-opens it, a failed probe reopens (OVLD010), a second
     cooldown and a clean probe close it. *)
  let b = O.Breaker.create ~threshold:2 ~cooldown:5e-3 ~name:"log" () in
  O.Breaker.record_failure b ~now:0.0;
  checkb "still closed" true (O.Breaker.state b ~now:0.0 = O.Breaker.Closed);
  O.Breaker.record_failure b ~now:1e-3;
  checkb "tripped open" true (O.Breaker.state b ~now:1e-3 = O.Breaker.Open);
  checki "trips" 1 (O.Breaker.trips b);
  checkb "sheds while open" false (O.Breaker.allow b ~now:2e-3);
  checkb "half-open after cooldown" true
    (O.Breaker.state b ~now:7e-3 = O.Breaker.Half_open);
  checkb "one probe admitted" true (O.Breaker.allow b ~now:7e-3);
  checkb "second probe refused" false (O.Breaker.allow b ~now:7e-3);
  O.Breaker.record_failure b ~now:8e-3;
  checkb "probe failure reopens" true
    (O.Breaker.state b ~now:8e-3 = O.Breaker.Open);
  checki "reopens" 1 (O.Breaker.reopens b);
  checkb "half-open again" true
    (O.Breaker.state b ~now:14e-3 = O.Breaker.Half_open);
  checkb "probe admitted again" true (O.Breaker.allow b ~now:14e-3);
  O.Breaker.record_success b ~now:15e-3;
  checkb "closed after clean probe" true
    (O.Breaker.state b ~now:15e-3 = O.Breaker.Closed);
  checki "no extra trips" 1 (O.Breaker.trips b)

(* ------------------------------------------------------------------ *)
(* Admission: priority classes and typed sheds                         *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds () =
  let tally = O.tally_create () in
  let a = O.Admission.create ~rate:1e-6 ~burst:10.0 ~tally () in
  (* Drain below the analytic floor (0.5 * burst): analytics shed first. *)
  for _ = 1 to 6 do
    O.Admission.admit a ~now:0.0 ~priority:O.Oltp
  done;
  (match shed_of (fun () -> O.Admission.admit a ~now:0.0 ~priority:O.Analytic)
   with
  | Some r -> checks "analytic floor" "OVLD003" r.O.code
  | None -> Alcotest.fail "analytic arrival admitted below the floor");
  O.Admission.admit a ~now:0.0 ~priority:O.Oltp;
  (* Empty the bucket entirely: now OLTP sheds too. *)
  for _ = 1 to 3 do
    O.Admission.admit a ~now:0.0 ~priority:O.Oltp
  done;
  (match shed_of (fun () -> O.Admission.admit a ~now:0.0 ~priority:O.Oltp) with
  | Some r -> checks "bucket empty" "OVLD001" r.O.code
  | None -> Alcotest.fail "arrival admitted from an empty bucket");
  checki "admitted" 10 tally.O.admitted;
  checki "OVLD001 tallied" 1 tally.O.shed_bucket;
  checki "OVLD003 tallied" 1 tally.O.shed_analytic;
  (* Backlog limiter: a full bucket still sheds when the device lags. *)
  let b = O.Admission.create ~max_lag:0.1 () in
  (match
     shed_of (fun () -> O.Admission.admit b ~now:0.0 ~lag:0.5 ~priority:O.Oltp)
   with
  | Some r -> checks "backlog" "OVLD002" r.O.code
  | None -> Alcotest.fail "arrival admitted over a lagging device")

let test_admission_breaker_degraded () =
  (* Shed-analytics degraded mode: while a registered breaker is open,
     the analytic class sheds OVLD007 and OLTP keeps flowing. *)
  let a = O.Admission.create () in
  let b = O.Breaker.create ~threshold:1 ~name:"log" () in
  O.Admission.register_breaker a b;
  O.Breaker.record_failure b ~now:0.0;
  checkb "breaker open" true (O.Breaker.state b ~now:0.0 = O.Breaker.Open);
  (match shed_of (fun () -> O.Admission.admit a ~now:0.0 ~priority:O.Analytic)
   with
  | Some r -> checks "analytic shed" "OVLD007" r.O.code
  | None -> Alcotest.fail "analytic arrival admitted with breaker open");
  O.Admission.admit a ~now:0.0 ~priority:O.Oltp

(* ------------------------------------------------------------------ *)
(* Retry budget (OVLD008)                                              *)
(* ------------------------------------------------------------------ *)

let test_retry_budget () =
  let b = O.Retry.budget 1 in
  match
    shed_of (fun () ->
        O.Retry.ride O.Retry.device ~budget:b ~site:"disk.read" ~failures:2
          ~attempt:(fun ~attempt:_ ~backoff:_ -> ())
          ~exhausted:(fun ~retries:_ ->
            Alcotest.fail "policy exhausted before the budget")
          ())
  with
  | Some r -> checks "budget dry" "OVLD008" r.O.code
  | None -> Alcotest.fail "ride succeeded past a dry budget"

(* ------------------------------------------------------------------ *)
(* Degraded read-only mode after a crash (OVLD009)                     *)
(* ------------------------------------------------------------------ *)

let test_read_only_degraded () =
  let a = O.Admission.create () in
  let db = C.create ~admission:a () in
  ignore (C.transact db [ (0, 5); (1, -5) ]);
  C.flush db;
  ignore (C.checkpoint db);
  C.crash db;
  checkb "read-only mode" true (O.Admission.mode a = O.Admission.Read_only);
  checki "stale read still answers" 5 (C.balance_stale db 0);
  (match shed_of (fun () -> C.transact db [ (0, 1); (1, -1) ]) with
  | Some r ->
    checks "write shed" "OVLD009" r.O.code;
    checks "site" "txn.begin" r.O.site
  | None -> Alcotest.fail "write admitted while crashed");
  checki "tally" 1 (C.overload_tally db).O.shed_readonly;
  ignore (C.recover db);
  checkb "normal mode restored" true (O.Admission.mode a = O.Admission.Normal);
  ignore (C.transact db [ (0, 1); (1, -1) ]);
  C.flush db;
  checki "writes flow again" 6 (C.balance db 0)

(* ------------------------------------------------------------------ *)
(* Spike-mode fuzzing                                                  *)
(* ------------------------------------------------------------------ *)

let test_spike_fuzz () =
  let o = V.Txn_fuzz.run ~spike:true ~txns:120 ~seed:11 () in
  checkb "no audit errors" false (D.has_errors o.V.Txn_fuzz.diags);
  checkb "work still done" true (o.V.Txn_fuzz.committed > 0);
  checkb "bucket sheds (OVLD001)" true
    (List.mem_assoc "OVLD001" o.V.Txn_fuzz.ovld_codes);
  checkb "lock-wait timeouts (OVLD004)" true
    (List.mem_assoc "OVLD004" o.V.Txn_fuzz.ovld_codes);
  (* Only those two stages can shed in this driver. *)
  List.iter
    (fun (c, _) ->
      checkb (c ^ " expected") true (c = "OVLD001" || c = "OVLD004"))
    o.V.Txn_fuzz.ovld_codes

let test_spike_fuzz_deterministic () =
  let a = V.Txn_fuzz.run ~spike:true ~txns:120 ~seed:11 () in
  let b = V.Txn_fuzz.run ~spike:true ~txns:120 ~seed:11 () in
  checkb "same codes" true (a.V.Txn_fuzz.ovld_codes = b.V.Txn_fuzz.ovld_codes);
  checkb "same log" true (a.V.Txn_fuzz.log = b.V.Txn_fuzz.log)

(* ------------------------------------------------------------------ *)
(* Overload_sim: the spike driver stays clean                          *)
(* ------------------------------------------------------------------ *)

let test_sim_clean () =
  let module OS = Mmdb.Overload_sim in
  let o =
    OS.run
      { OS.default_config with OS.duration = 1.0; record_schedule = true }
  in
  checkb "money conserved" true o.OS.money_conserved;
  checki "audit errors" 0 o.OS.audit_errors;
  checkb "goodput" true (o.OS.goodput_txns > 0);
  checkb "sheds typed" true (o.OS.shed = 0 || o.OS.shed_codes <> [])

(* ------------------------------------------------------------------ *)
(* Catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let test_code_catalogue () =
  List.iter
    (fun c -> checkb (c ^ " catalogued") true (List.mem_assoc c V.code_catalogue))
    [
      "OVLD001"; "OVLD002"; "OVLD003"; "OVLD004"; "OVLD005"; "OVLD006";
      "OVLD007"; "OVLD008"; "OVLD009"; "OVLD010";
    ];
  let all = List.map fst V.code_catalogue in
  checki "no duplicate codes" (List.length all)
    (List.length (List.sort_uniq compare all))

let () =
  Alcotest.run "mmdb overload"
    [
      ( "deadlines",
        [
          Alcotest.test_case "expiry at lock (OVLD004)" `Quick
            test_deadline_at_lock;
          Alcotest.test_case "expiry at commit (OVLD006)" `Quick
            test_deadline_at_commit;
          Alcotest.test_case "expiry mid lock wait" `Quick
            test_deadline_mid_lock_wait;
          Alcotest.test_case "expiry at operator boundary (OVLD005)" `Quick
            test_deadline_mid_operator;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip/probe/reopen/close cycle" `Quick
            test_breaker_cycle;
          QCheck_alcotest.to_alcotest qcheck_breaker_model;
        ] );
      ( "admission",
        [
          Alcotest.test_case "typed sheds and priorities" `Quick
            test_admission_sheds;
          Alcotest.test_case "breaker-open degraded mode" `Quick
            test_admission_breaker_degraded;
          Alcotest.test_case "retry budget (OVLD008)" `Quick test_retry_budget;
          Alcotest.test_case "read-only after crash (OVLD009)" `Quick
            test_read_only_degraded;
        ] );
      ( "spike",
        [
          Alcotest.test_case "fuzz under spike stays clean" `Quick
            test_spike_fuzz;
          Alcotest.test_case "spike fuzz deterministic" `Quick
            test_spike_fuzz_deterministic;
          Alcotest.test_case "overload sim clean" `Quick test_sim_clean;
        ] );
      ( "catalogue",
        [ Alcotest.test_case "OVLD codes catalogued" `Quick test_code_catalogue ] );
    ]
