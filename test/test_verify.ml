(* Tests for the verification layer: the static plan checker's
   ill-formed-plan corpus (one case per error code), the WAL auditor's
   log-corruption injector (one per violation class), the buffer-pool
   sanitizer, the unified audit driver, and invariant property tests over
   random insert/delete workloads. *)

module S = Mmdb_storage
module E = Mmdb_exec
module I = Mmdb_index
module P = Mmdb_planner
module A = P.Algebra
module R = Mmdb_recovery
module L = R.Log_record
module U = Mmdb_util
module D = U.Diag
module V = Mmdb_verify

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Plan corpus                                                         *)
(* ------------------------------------------------------------------ *)

let emp_schema () =
  S.Schema.create ~key:"id"
    [
      S.Schema.column "id" S.Schema.Int;
      S.Schema.column "dept" S.Schema.Int;
      S.Schema.column "salary" S.Schema.Int;
      S.Schema.column ~width:8 "name" S.Schema.Fixed_string;
    ]

let dept_schema () =
  S.Schema.create ~key:"dept_id"
    [
      S.Schema.column "dept_id" S.Schema.Int;
      S.Schema.column "budget" S.Schema.Int;
    ]

let setup_catalog () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:512 in
  let rng = U.Xorshift.create 11 in
  let emp =
    S.Relation.of_tuples ~disk ~name:"emp" ~schema:(emp_schema ())
      (List.init 100 (fun i ->
           S.Tuple.encode (emp_schema ())
             [
               S.Tuple.VInt i;
               S.Tuple.VInt (U.Xorshift.int rng 10);
               S.Tuple.VInt (30_000 + U.Xorshift.int rng 70_000);
               S.Tuple.VStr (Printf.sprintf "e%03d" i);
             ]))
  in
  let dept =
    S.Relation.of_tuples ~disk ~name:"dept" ~schema:(dept_schema ())
      (List.init 10 (fun i ->
           S.Tuple.encode (dept_schema ())
             [ S.Tuple.VInt i; S.Tuple.VInt (100_000 * (i + 1)) ]))
  in
  let cat = P.Catalog.create () in
  P.Catalog.register cat emp;
  P.Catalog.register cat dept;
  cat

(* Each corpus entry is (code, ill-formed expression): the checker must
   flag it with exactly that error code. *)
let plan_error_corpus () =
  [
    ("PLAN001", A.scan "nosuch");
    ( "PLAN002",
      A.select ~column:"salry" ~op:A.Gt ~value:(S.Tuple.VInt 1) (A.scan "emp")
    );
    ( "PLAN003",
      A.select ~column:"salary" ~op:A.Eq ~value:(S.Tuple.VStr "high")
        (A.scan "emp") );
    ( "PLAN004",
      A.join ~left_key:"name" ~right_key:"dept_id" (A.scan "emp")
        (A.scan "dept") );
    ("PLAN005", A.set_op A.Union (A.scan "emp") (A.scan "dept"));
    ( "PLAN006",
      A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Sum "name" ]
        (A.scan "emp") );
    ("PLAN007", A.aggregate ~group_by:"dept" ~aggs:[] (A.scan "emp"));
    ("PLAN008", A.project ~columns:[] (A.scan "emp"));
    ("PLAN009", A.project ~columns:[ "id"; "id" ] (A.scan "emp"));
  ]

let test_plan_error_corpus () =
  let cat = setup_catalog () in
  List.iter
    (fun (code, expr) ->
      let diags = P.Plan_check.check cat expr in
      checkb (code ^ " flagged") true (D.has_code code diags);
      checkb (code ^ " is an error") true (D.has_errors diags);
      checkb (code ^ " rejected") false (P.Plan_check.ok cat expr);
      match P.Plan_check.check_schema cat expr with
      | Ok _ -> Alcotest.failf "%s: check_schema accepted an invalid plan" code
      | Error ds -> checkb (code ^ " schema diags") true (D.has_code code ds))
    (plan_error_corpus ())

let plan_warning_corpus () =
  [
    ( "PLAN101",
      A.join ~left_key:"dept" ~right_key:"dept_id"
        (A.project ~distinct:true ~columns:[ "id"; "dept" ] (A.scan "emp"))
        (A.scan "dept") );
    ( "PLAN102",
      A.select ~column:"salary" ~op:A.Gt
        ~value:(S.Tuple.VInt 10_000_000)
        (A.scan "emp") );
    ( "PLAN103",
      A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ]
        (A.order_by ~column:"salary" (A.scan "emp")) );
    ( "PLAN104",
      A.select ~column:"name" ~op:A.Eq
        ~value:(S.Tuple.VStr "far-too-long-for-8")
        (A.scan "emp") );
  ]

let test_plan_warning_corpus () =
  let cat = setup_catalog () in
  List.iter
    (fun (code, expr) ->
      let diags = P.Plan_check.check cat expr in
      checkb (code ^ " flagged") true (D.has_code code diags);
      checkb (code ^ " is not an error") false (D.has_errors diags);
      (* Warnings never block execution. *)
      checkb (code ^ " still ok") true (P.Plan_check.ok cat expr))
    (plan_warning_corpus ())

let test_plan_valid_accepted () =
  let cat = setup_catalog () in
  let good =
    [
      A.scan "emp";
      A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 50_000)
        (A.scan "emp");
      A.project ~columns:[ "id"; "name" ] (A.scan "emp");
      A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
        (A.scan "dept");
      A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ] (A.scan "emp");
      A.order_by ~column:"salary" (A.scan "emp");
      A.set_op A.Union (A.scan "emp") (A.scan "emp");
    ]
  in
  List.iter
    (fun expr ->
      checkb "valid plan accepted" true (P.Plan_check.ok cat expr);
      match P.Plan_check.check_schema cat expr with
      | Ok _ -> ()
      | Error ds ->
        Alcotest.failf "valid plan rejected: %s" (D.summary ds))
    good

let test_plan_no_cascade () =
  (* A bad scan deep in the tree produces exactly one error, not a chain
     of follow-on unknown-column noise. *)
  let cat = setup_catalog () in
  let expr =
    A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ]
      (A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 1)
         (A.scan "nosuch"))
  in
  let diags = P.Plan_check.check cat expr in
  checki "single diagnostic" 1 (List.length diags);
  checkb "it is PLAN001" true (D.has_code "PLAN001" diags)

let test_plan_paths () =
  let cat = setup_catalog () in
  let expr =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "nosuch")
  in
  match P.Plan_check.check cat expr with
  | [ d ] -> Alcotest.(check string) "path" "$.right" d.D.path
  | ds -> Alcotest.failf "expected one diagnostic, got %s" (D.summary ds)

let test_executor_and_sql_checked () =
  let cat = setup_catalog () in
  let cfg = P.Optimizer.default_config in
  (match
     P.Executor.query_checked cat cfg
       (A.select ~column:"salry" ~op:A.Gt ~value:(S.Tuple.VInt 1)
          (A.scan "emp"))
   with
  | Ok _ -> Alcotest.fail "query_checked accepted a bad plan"
  | Error ds -> checkb "PLAN002 surfaced" true (D.has_code "PLAN002" ds));
  (match
     P.Executor.query_checked cat cfg
       (A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 50_000)
          (A.scan "emp"))
   with
  | Ok rel -> checkb "rows" true (S.Relation.ntuples rel > 0)
  | Error ds -> Alcotest.failf "good plan rejected: %s" (D.summary ds));
  (match P.Sql.parse_checked cat "SELEC id FROM emp" with
  | Ok _ -> Alcotest.fail "parse_checked accepted garbage"
  | Error ds -> checkb "SQL001" true (D.has_code "SQL001" ds));
  (match P.Sql.parse_checked cat "SELECT salry FROM emp" with
  | Ok _ -> Alcotest.fail "parse_checked accepted bad column"
  | Error ds -> checkb "PLAN002 via sql" true (D.has_code "PLAN002" ds));
  match P.Sql.parse_checked cat "SELECT id FROM emp WHERE salary > 50000" with
  | Ok _ -> ()
  | Error ds -> Alcotest.failf "good sql rejected: %s" (D.summary ds)

let test_db_query_raises () =
  let db = Mmdb.Db.create () in
  Mmdb.Db.create_table db ~name:"t" ~schema:(emp_schema ());
  Mmdb.Db.insert_many db ~table:"t"
    [
      [
        S.Tuple.VInt 1; S.Tuple.VInt 1; S.Tuple.VInt 40_000; S.Tuple.VStr "a";
      ];
    ];
  checkb "bad plan raises" true
    (try
       ignore (Mmdb.Db.query db (A.scan "nosuch"));
       false
     with Invalid_argument m ->
       (* The rendered diagnostics carry the stable code. *)
       contains m "PLAN001");
  checki "check reports" 1 (List.length (Mmdb.Db.check db (A.scan "nosuch")))

(* ------------------------------------------------------------------ *)
(* Log corpus                                                          *)
(* ------------------------------------------------------------------ *)

(* A well-formed transactional log produced by hand. *)
let clean_log () =
  [
    L.Begin { txn = 1; lsn = 1 };
    L.Update { txn = 1; lsn = 2; slot = 0; old_value = 0; new_value = 5 };
    L.Commit { txn = 1; lsn = 3 };
    L.Ckpt_begin { lsn = 4 };
    L.Ckpt_end { lsn = 5 };
    L.Begin { txn = 2; lsn = 6 };
    L.Update { txn = 2; lsn = 7; slot = 1; old_value = 0; new_value = -5 };
    L.Abort { txn = 2; lsn = 8 };
  ]

let test_log_clean_accepted () =
  checkb "clean complete" true (V.Log_check.ok ~complete:true (clean_log ()));
  checki "no diags" 0 (List.length (V.Log_check.audit ~complete:true (clean_log ())))

(* Corruption injector: each entry mutates the clean log and names the
   violation class the auditor must flag. *)
let corruptions () =
  let base = clean_log () in
  let drop p = List.filteri (fun i _ -> i <> p) base in
  [
    (* Swap the first two records: the Update now precedes its Begin and
       carries a smaller LSN. *)
    ( "LOG001",
      match base with
      | a :: b :: rest -> b :: a :: rest
      | _ -> assert false );
    ("LOG002", drop 0);
    (* Begin gone -> its Update is orphaned. *)
    ("LOG003", drop 0 |> List.filteri (fun i _ -> i <> 0));
    (* Begin and Update gone -> bare Commit. *)
    ( "LOG004",
      base
      @ [
          L.Update { txn = 1; lsn = 9; slot = 0; old_value = 5; new_value = 6 };
        ] );
    ("LOG005", base @ [ L.Begin { txn = 1; lsn = 9 } ]);
    ("LOG006", base @ [ L.Commit { txn = 1; lsn = 9 } ]);
    ("LOG007", base @ [ L.Ckpt_end { lsn = 9 } ]);
  ]

let test_log_corruption_injector () =
  List.iter
    (fun (code, log) ->
      let diags = V.Log_check.audit log in
      checkb (code ^ " flagged") true (D.has_code code diags);
      checkb (code ^ " is error") true (D.has_errors diags))
    (corruptions ())

let test_log_duplicate_lsn_flagged () =
  let log =
    [ L.Begin { txn = 1; lsn = 1 }; L.Commit { txn = 1; lsn = 1 } ]
  in
  checkb "equal lsn flagged" true (D.has_code "LOG001" (V.Log_check.audit log))

let test_log_completeness_flags () =
  let dangling = [ L.Ckpt_begin { lsn = 1 } ] in
  checkb "LOG008 when complete" true
    (D.has_code "LOG008" (V.Log_check.audit ~complete:true dangling));
  checkb "tolerated when truncated" true (V.Log_check.ok dangling);
  let open_txn = [ L.Begin { txn = 7; lsn = 1 } ] in
  let diags = V.Log_check.audit ~complete:true open_txn in
  checkb "LOG101 when complete" true (D.has_code "LOG101" diags);
  checkb "LOG101 is a warning" false (D.has_errors diags);
  checkb "tolerated when truncated" true
    (V.Log_check.audit open_txn = [])

let test_log_real_scenarios () =
  (* Every Recovery_manager scenario must produce a protocol-clean log,
     checkpoint brackets included. *)
  List.iter
    (fun crash_after ->
      let cfg =
        {
          R.Recovery_manager.default_config with
          R.Recovery_manager.n_txns = 400;
          R.Recovery_manager.checkpoint_every = Some 100;
          R.Recovery_manager.crash_after;
        }
      in
      let o = R.Recovery_manager.run cfg in
      checkb "scenario consistent" true o.R.Recovery_manager.consistent;
      checkb "submitted log clean" true
        (V.Log_check.ok ~complete:true o.R.Recovery_manager.log_records);
      checkb "durable log clean" true
        (V.Log_check.ok o.R.Recovery_manager.durable_log))
    [ None; Some 250 ];
  (* Incremental driver, with explicit checkpoint brackets. *)
  let db = Mmdb.Txn_db.create ~nrecords:50 () in
  for i = 0 to 19 do
    ignore (Mmdb.Txn_db.transact db [ (i mod 50, 5); ((i + 1) mod 50, -5) ]);
    Mmdb.Txn_db.advance db 1e-3
  done;
  ignore (Mmdb.Txn_db.transact_abort db [ (3, 100) ]);
  ignore (Mmdb.Txn_db.checkpoint db);
  Mmdb.Txn_db.flush db;
  let log = Mmdb.Txn_db.log_records db in
  checkb "txn_db log has checkpoint bracket" true
    (List.exists (function L.Ckpt_begin _ -> true | _ -> false) log
    && List.exists (function L.Ckpt_end _ -> true | _ -> false) log);
  checki "txn_db log clean" 0
    (List.length (V.Log_check.audit ~complete:true log));
  (* Recovery still round-trips with bracketed logs. *)
  Mmdb.Txn_db.crash db;
  ignore (Mmdb.Txn_db.recover db);
  let total = ref 0 in
  for slot = 0 to 49 do
    total := !total + Mmdb.Txn_db.balance db slot
  done;
  checki "money conserved" 0 !total

(* ------------------------------------------------------------------ *)
(* Pool sanitizer                                                      *)
(* ------------------------------------------------------------------ *)

let pool_setup capacity =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:64 in
  let pids = Array.init 10 (fun _ -> S.Disk.alloc disk) in
  let pool = S.Buffer_pool.create ~disk ~capacity S.Buffer_pool.Lru in
  (pids, pool)

let test_pool_clean () =
  let pids, pool = pool_setup 4 in
  Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids;
  ignore (S.Buffer_pool.get pool pids.(0));
  S.Buffer_pool.mark_dirty pool pids.(0);
  S.Buffer_pool.flush_all pool;
  checki "clean pool" 0 (List.length (V.Pool_check.audit pool))

let test_pool_pin_leak () =
  let pids, pool = pool_setup 4 in
  ignore (S.Buffer_pool.pin pool pids.(0));
  let diags = V.Pool_check.audit pool in
  checkb "POOL001" true (D.has_code "POOL001" diags);
  checkb "mid-operation audit tolerates pins" true
    (V.Pool_check.ok ~expect_unpinned:false pool);
  S.Buffer_pool.unpin pool pids.(0);
  checkb "clean after unpin" true (V.Pool_check.ok pool)

let test_pool_unpin_underflow () =
  let pids, pool = pool_setup 4 in
  ignore (S.Buffer_pool.get pool pids.(0));
  S.Buffer_pool.unpin pool pids.(0);
  S.Buffer_pool.unpin pool pids.(1);
  let diags = V.Pool_check.audit pool in
  checkb "POOL002" true (D.has_code "POOL002" diags)

let test_pool_pins_block_eviction () =
  let pids, pool = pool_setup 2 in
  ignore (S.Buffer_pool.pin pool pids.(0));
  ignore (S.Buffer_pool.get pool pids.(1));
  ignore (S.Buffer_pool.get pool pids.(2));
  ignore (S.Buffer_pool.get pool pids.(3));
  checkb "pinned page survives pressure" true
    (S.Buffer_pool.is_resident pool pids.(0));
  checki "pin count" 1 (S.Buffer_pool.pin_count pool pids.(0));
  (* All frames pinned: the next fault cannot evict. *)
  ignore (S.Buffer_pool.pin pool pids.(1));
  checkb "all-pinned fault raises" true
    (try
       ignore (S.Buffer_pool.get pool pids.(4));
       false
     with Invalid_argument _ -> true);
  S.Buffer_pool.unpin pool pids.(0);
  S.Buffer_pool.unpin pool pids.(1);
  ignore (S.Buffer_pool.get pool pids.(4));
  checkb "evicts again after unpin" true (S.Buffer_pool.is_resident pool pids.(4))

let test_pool_accounting_across_drop () =
  let pids, pool = pool_setup 4 in
  ignore (S.Buffer_pool.get pool pids.(0));
  S.Buffer_pool.mark_dirty pool pids.(0);
  S.Buffer_pool.mark_dirty pool pids.(0);
  (* no double count *)
  ignore (S.Buffer_pool.get pool pids.(1));
  S.Buffer_pool.mark_dirty pool pids.(1);
  S.Buffer_pool.flush pool pids.(0);
  S.Buffer_pool.drop_all pool;
  let st = S.Buffer_pool.stats pool in
  checki "dirtied" 2 st.S.Buffer_pool.dirtied;
  checki "writebacks" 1 st.S.Buffer_pool.writebacks;
  checki "dropped dirty" 1 st.S.Buffer_pool.dropped_dirty;
  checkb "accounting invariant" true (V.Pool_check.ok pool)

(* ------------------------------------------------------------------ *)
(* Unified audit                                                       *)
(* ------------------------------------------------------------------ *)

let idx_schema () =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]

let mk sch k v = S.Tuple.encode sch [ S.Tuple.VInt k; S.Tuple.VInt v ]

let test_audit_run_all () =
  let sch = idx_schema () in
  let env = S.Env.create () in
  let avl = I.Avl.create ~env ~schema:sch () in
  let btree = I.Btree.create ~env ~schema:sch ~page_size:256 () in
  let bst = I.Paged_bst.create ~env ~schema:sch () in
  let rng = U.Xorshift.create 3 in
  for _ = 1 to 200 do
    let k = U.Xorshift.int rng 500 in
    I.Avl.insert avl (mk sch k k);
    I.Btree.insert btree (mk sch k k);
    I.Paged_bst.insert bst (mk sch k k)
  done;
  let heap = U.Heap.of_array ~cmp:compare [| 5; 3; 9; 1 |] in
  let _, pool = pool_setup 4 in
  let results =
    V.Audit.run_all
      [
        V.Audit.Btree ("btree", btree);
        V.Audit.Avl ("avl", avl);
        V.Audit.Paged_bst ("bst", bst);
        V.Audit.Heap_check ("heap", fun () -> U.Heap.check_invariant heap);
        V.Audit.Pool { name = "pool"; pool; expect_unpinned = true };
        V.Audit.Log
          { name = "log"; complete = true; records = clean_log () };
      ]
  in
  checki "six components" 6 (List.length results);
  List.iter
    (fun (name, diags) ->
      checki (name ^ " clean") 0 (List.length diags))
    results;
  checkb "ok" true
    (V.Audit.ok [ V.Audit.Btree ("btree", btree); V.Audit.Avl ("avl", avl) ]);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  checkb "report clean" true (V.Audit.report ppf results);
  Format.pp_print_flush ppf ();
  checkb "report mentions summary" true
    (contains (Buffer.contents buf) "0 errors")

let test_audit_flags_violations () =
  let results =
    V.Audit.run_all
      [
        V.Audit.Heap_check ("broken heap", fun () -> false);
        V.Audit.Log
          {
            name = "bad log";
            complete = false;
            records = [ L.Commit { txn = 1; lsn = 1 } ];
          };
      ]
  in
  checkb "not ok" false
    (List.for_all (fun (_, ds) -> not (D.has_errors ds)) results);
  (match List.assoc "broken heap" results with
  | [ d ] -> Alcotest.(check string) "IDX004" "IDX004" d.D.code
  | ds -> Alcotest.failf "expected one diag, got %s" (D.summary ds));
  checkb "LOG003 found" true
    (D.has_code "LOG003" (List.assoc "bad log" results));
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  checkb "report flags" false (V.Audit.report ppf results);
  Format.pp_print_flush ppf ()

let test_db_audit () =
  let db = Mmdb.Db.create () in
  Mmdb.Db.create_table db ~name:"t" ~schema:(idx_schema ());
  Mmdb.Db.insert_many db ~table:"t"
    (List.init 100 (fun i -> [ S.Tuple.VInt i; S.Tuple.VInt (i * i) ]));
  Mmdb.Db.create_index db ~table:"t" Mmdb.Db.Avl_index;
  Mmdb.Db.create_index db ~table:"t" Mmdb.Db.Btree_index;
  let results = Mmdb.Db.audit db in
  checki "two components" 2 (List.length results);
  List.iter (fun (_, ds) -> checki "clean" 0 (List.length ds)) results

let test_code_catalogue_unique () =
  let codes = List.map fst V.code_catalogue in
  checki "no duplicate codes" (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* ------------------------------------------------------------------ *)
(* Invariant property tests: random insert/delete workloads            *)
(* ------------------------------------------------------------------ *)

module IntMap = Map.Make (Int)

type idx_ops = {
  insert : bytes -> unit;
  delete : bytes -> bool;
  length : unit -> int;
  check : unit -> bool;
}

let property_workload name make_ops seed () =
  let sch = idx_schema () in
  let ops = make_ops sch in
  let rng = U.Xorshift.create seed in
  let model = ref IntMap.empty in
  for batch = 1 to 20 do
    for _ = 1 to 50 do
      let k = U.Xorshift.int rng 300 in
      if U.Xorshift.int rng 3 < 2 then begin
        let v = U.Xorshift.int rng 1_000_000 in
        ops.insert (mk sch k v);
        model := IntMap.add k v !model
      end
      else begin
        let deleted = ops.delete (S.Tuple.encode_int_key sch k) in
        checkb
          (Printf.sprintf "%s batch %d delete %d" name batch k)
          (IntMap.mem k !model) deleted;
        model := IntMap.remove k !model
      end
    done;
    (* The satellite requirement: invariants hold after every batch. *)
    checkb (Printf.sprintf "%s batch %d invariants" name batch) true
      (ops.check ());
    checki (Printf.sprintf "%s batch %d length" name batch)
      (IntMap.cardinal !model) (ops.length ())
  done

let avl_ops sch =
  let env = S.Env.create () in
  let t = I.Avl.create ~env ~schema:sch () in
  {
    insert = I.Avl.insert t;
    delete = I.Avl.delete t;
    length = (fun () -> I.Avl.length t);
    check = (fun () -> I.Avl.check_invariants t);
  }

let btree_ops sch =
  let env = S.Env.create () in
  let t = I.Btree.create ~env ~schema:sch ~page_size:256 () in
  {
    insert = I.Btree.insert t;
    delete = I.Btree.delete t;
    length = (fun () -> I.Btree.length t);
    check = (fun () -> I.Btree.check_invariants t);
  }

let bst_ops sch =
  let env = S.Env.create () in
  let t = I.Paged_bst.create ~env ~schema:sch () in
  {
    insert = I.Paged_bst.insert t;
    delete = I.Paged_bst.delete t;
    length = (fun () -> I.Paged_bst.length t);
    check = (fun () -> I.Paged_bst.check_invariants t);
  }

let test_bst_delete_basics () =
  let sch = idx_schema () in
  let env = S.Env.create () in
  let t = I.Paged_bst.create ~env ~schema:sch () in
  List.iter (fun k -> I.Paged_bst.insert t (mk sch k k))
    [ 50; 30; 70; 20; 40; 60; 80 ];
  checkb "delete leaf" true (I.Paged_bst.delete t (S.Tuple.encode_int_key sch 20));
  checkb "delete one-child" true
    (I.Paged_bst.delete t (S.Tuple.encode_int_key sch 30));
  checkb "delete two-children root" true
    (I.Paged_bst.delete t (S.Tuple.encode_int_key sch 50));
  checkb "delete absent" false
    (I.Paged_bst.delete t (S.Tuple.encode_int_key sch 999));
  checki "length" 4 (I.Paged_bst.length t);
  checkb "ordered" true (I.Paged_bst.check_invariants t);
  List.iter
    (fun k ->
      checkb
        (Printf.sprintf "still finds %d" k)
        true
        (I.Paged_bst.search t (S.Tuple.encode_int_key sch k) <> None))
    [ 40; 60; 70; 80 ]

(* ------------------------------------------------------------------ *)
(* Txn_check: hand-built schedule corpus                               *)
(* ------------------------------------------------------------------ *)

module Sch = R.Schedule
module TC = V.Txn_check

(* Hand-built trace events: time increases with position so the traces
   read naturally. *)
let ev ?key ?lsn ?(domain = 0) ?ver ~t ~txn kind =
  { Sch.time = t; txn; key; lsn; domain; ver; kind }

let grant ?(deps = []) ~t ~txn ~key () =
  ev ~key ~t ~txn (Sch.Grant { deps })

(* A clean two-transaction schedule: t2 takes over key 1 from the
   pre-committed t1 (becoming dependent on it) and both become durable in
   dependency order. *)
let clean_trace () =
  [
    ev ~key:1 ~t:0.001 ~txn:1 Sch.Acquire;
    grant ~t:0.001 ~txn:1 ~key:1 ();
    ev ~key:1 ~t:0.002 ~txn:1 Sch.Read;
    ev ~key:1 ~lsn:2 ~t:0.002 ~txn:1 Sch.Write;
    ev ~key:1 ~t:0.003 ~txn:2 Sch.Acquire;
    ev ~key:1 ~t:0.003 ~txn:2 (Sch.Wait { holder = 1 });
    ev ~t:0.004 ~txn:1 Sch.Precommit;
    ev ~key:1 ~t:0.004 ~txn:1 Sch.Release;
    ev ~key:1 ~t:0.004 ~txn:2 (Sch.Wake { deps = [ 1 ] });
    ev ~key:1 ~t:0.005 ~txn:2 Sch.Read;
    ev ~key:1 ~lsn:5 ~t:0.005 ~txn:2 Sch.Write;
    ev ~t:0.006 ~txn:2 Sch.Precommit;
    ev ~key:1 ~t:0.006 ~txn:2 Sch.Release;
    ev ~t:0.010 ~txn:1 Sch.Commit_durable;
    ev ~t:0.010 ~txn:2 Sch.Commit_durable;
  ]

let clean_log () =
  [
    L.Begin { txn = 1; lsn = 1 };
    L.Update { txn = 1; lsn = 2; slot = 1; old_value = 0; new_value = 10 };
    L.Commit { txn = 1; lsn = 3 };
    L.Begin { txn = 2; lsn = 4 };
    L.Update { txn = 2; lsn = 5; slot = 1; old_value = 10; new_value = 20 };
    L.Commit { txn = 2; lsn = 6 };
  ]

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)

let test_txncheck_clean () =
  let diags = TC.audit ~log:(clean_log ()) (clean_trace ()) in
  Alcotest.(check (list string)) "clean schedule" [] (codes diags);
  checkb "ok" true (TC.ok ~log:(clean_log ()) (clean_trace ()));
  (* Truncated trace: active transactions at end are tolerated. *)
  let truncated =
    [
      ev ~key:1 ~t:0.001 ~txn:1 Sch.Acquire;
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~key:1 ~lsn:2 ~t:0.002 ~txn:1 Sch.Write;
    ]
  in
  Alcotest.(check (list string)) "truncated tolerated" []
    (codes (TC.audit truncated))

(* Mutation corpus: each injected protocol bug must be caught by exactly
   its TXN code. *)

(* Bug: lock released at first unlock instead of held to pre-commit — the
   transaction then acquires another key (2PL violation) and keeps
   touching the released one. *)
let test_txncheck_early_release () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~key:1 ~lsn:1 ~t:0.002 ~txn:1 Sch.Write;
      ev ~key:1 ~t:0.003 ~txn:1 Sch.Release;
      grant ~t:0.004 ~txn:1 ~key:2 ();
      ev ~key:1 ~lsn:2 ~t:0.005 ~txn:1 Sch.Write;
      ev ~t:0.006 ~txn:1 Sch.Precommit;
      ev ~key:2 ~t:0.006 ~txn:1 Sch.Release;
    ]
  in
  let cs = codes (TC.check_2pl trace) in
  Alcotest.(check (list string)) "TXN001 + TXN002" [ "TXN001"; "TXN002" ] cs

let test_txncheck_unlocked_access () =
  let trace = [ ev ~key:9 ~t:0.001 ~txn:4 Sch.Read ] in
  Alcotest.(check (list string)) "TXN002" [ "TXN002" ]
    (codes (TC.check_2pl trace))

(* Bug: pre-commit forgets to release (lock leak). *)
let test_txncheck_held_after_precommit () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~t:0.002 ~txn:1 Sch.Precommit;
      ev ~t:0.003 ~txn:1 Sch.Commit_durable;
    ]
  in
  Alcotest.(check (list string)) "TXN003" [ "TXN003" ]
    (codes (TC.check_2pl trace));
  (* Same leak, trace ends before durability. *)
  let trace2 =
    [ grant ~t:0.001 ~txn:1 ~key:1 (); ev ~t:0.002 ~txn:1 Sch.Precommit ]
  in
  Alcotest.(check (list string)) "TXN003 at end of trace" [ "TXN003" ]
    (codes (TC.check_2pl trace2))

let test_txncheck_precommitted_acquires () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~t:0.002 ~txn:1 Sch.Precommit;
      ev ~key:1 ~t:0.002 ~txn:1 Sch.Release;
      ev ~key:2 ~t:0.003 ~txn:1 Sch.Acquire;
      grant ~t:0.003 ~txn:1 ~key:2 ();
    ]
  in
  let diags = TC.check_2pl trace in
  Alcotest.(check (list string)) "TXN004" [ "TXN004" ] (codes diags);
  checki "deduplicated per txn/key" 1 (List.length diags)

let test_txncheck_precommitted_aborts () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~t:0.002 ~txn:1 Sch.Precommit;
      ev ~key:1 ~t:0.002 ~txn:1 Sch.Release;
      ev ~t:0.003 ~txn:1 Sch.Abort;
    ]
  in
  Alcotest.(check (list string)) "TXN005" [ "TXN005" ]
    (codes (TC.check_2pl trace))

let test_txncheck_deadlock_cycle () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      grant ~t:0.002 ~txn:2 ~key:2 ();
      ev ~key:2 ~t:0.003 ~txn:1 (Sch.Wait { holder = 2 });
      ev ~key:1 ~t:0.004 ~txn:2 (Sch.Wait { holder = 1 });
    ]
  in
  let diags = TC.check_deadlock trace in
  checkb "TXN006 reported" true (D.has_code "TXN006" diags);
  checki "one cycle, once" 1 (List.length diags);
  let msg = (List.hd diags).D.message in
  checkb "cycle witness names both hops" true
    (contains msg "txn 1 waits for key 2 held by txn 2"
    && contains msg "txn 2 waits for key 1 held by txn 1")

let test_txncheck_lock_order_lint () =
  (* Opposite acquisition orders but no overlap in time: no deadlock this
     run, still a latent one. *)
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      grant ~t:0.002 ~txn:1 ~key:2 ();
      ev ~key:1 ~t:0.003 ~txn:1 Sch.Release;
      ev ~key:2 ~t:0.003 ~txn:1 Sch.Release;
      grant ~t:0.004 ~txn:2 ~key:2 ();
      grant ~t:0.005 ~txn:2 ~key:1 ();
    ]
  in
  let diags = TC.check_deadlock trace in
  checkb "no deadlock" false (D.has_code "TXN006" diags);
  checkb "TXN101 warning" true (D.has_code "TXN101" diags);
  checkb "warning severity" false (D.has_errors diags)

(* Bug: a dropped conflict edge — two committed transactions write the
   same two keys in opposite orders (not conflict-serializable). *)
let test_txncheck_serializability_cycle () =
  let trace =
    [
      ev ~key:1 ~lsn:1 ~t:0.001 ~txn:1 Sch.Write;
      ev ~key:1 ~lsn:2 ~t:0.002 ~txn:2 Sch.Write;
      ev ~key:2 ~lsn:3 ~t:0.003 ~txn:2 Sch.Write;
      ev ~key:2 ~lsn:4 ~t:0.004 ~txn:1 Sch.Write;
      ev ~t:0.005 ~txn:1 Sch.Precommit;
      ev ~t:0.005 ~txn:2 Sch.Precommit;
    ]
  in
  let diags = TC.check_serializability trace in
  checkb "TXN007 reported" true (D.has_code "TXN007" diags);
  checki "one cycle" 1 (List.length diags);
  checkb "witness edge present" true
    (contains (List.hd diags).D.message "key 1");
  (* If one of the two aborts instead, its accesses drop out and the
     cycle disappears. *)
  let aborted =
    List.map
      (fun (e : Sch.event) ->
        if e.Sch.txn = 2 && e.Sch.kind = Sch.Precommit then
          { e with Sch.kind = Sch.Abort }
        else e)
      trace
  in
  Alcotest.(check (list string)) "aborted txn excluded" []
    (codes (TC.check_serializability aborted))

(* Bug: committing a dependant before its dependency. *)
let test_txncheck_dependency_durability () =
  let trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~t:0.002 ~txn:1 Sch.Precommit;
      ev ~key:1 ~t:0.002 ~txn:1 Sch.Release;
      grant ~deps:[ 1 ] ~t:0.003 ~txn:2 ~key:1 ();
      ev ~t:0.004 ~txn:2 Sch.Precommit;
      ev ~key:1 ~t:0.004 ~txn:2 Sch.Release;
      (* Dependant durable first: invariant broken. *)
      ev ~t:0.005 ~txn:2 Sch.Commit_durable;
      ev ~t:0.007 ~txn:1 Sch.Commit_durable;
    ]
  in
  let diags = TC.check_dependencies trace in
  Alcotest.(check (list string)) "TXN008" [ "TXN008" ] (codes diags);
  checkb "names the dependency" true
    (contains (List.hd diags).D.message "dependency 1")

let test_txncheck_dependency_log_order () =
  let base_trace =
    [
      grant ~t:0.001 ~txn:1 ~key:1 ();
      ev ~t:0.002 ~txn:1 Sch.Precommit;
      ev ~key:1 ~t:0.002 ~txn:1 Sch.Release;
      grant ~deps:[ 1 ] ~t:0.003 ~txn:2 ~key:1 ();
      ev ~t:0.004 ~txn:2 Sch.Precommit;
      ev ~key:1 ~t:0.004 ~txn:2 Sch.Release;
    ]
  in
  (* Commit records submitted in the wrong order. *)
  let bad_order =
    [
      L.Begin { txn = 2; lsn = 3 };
      L.Commit { txn = 2; lsn = 4 };
      L.Begin { txn = 1; lsn = 1 };
      L.Commit { txn = 1; lsn = 2 };
    ]
  in
  checkb "commit order violation" true
    (D.has_code "TXN008" (TC.check_dependencies ~log:bad_order base_trace));
  (* Dependency's commit record missing entirely. *)
  let missing = [ L.Begin { txn = 2; lsn = 1 }; L.Commit { txn = 2; lsn = 2 } ] in
  checkb "missing dep commit" true
    (D.has_code "TXN008" (TC.check_dependencies ~log:missing base_trace));
  (* Dependency aborted although a dependant committed on it. *)
  let dep_aborted =
    [
      L.Begin { txn = 1; lsn = 1 };
      L.Abort { txn = 1; lsn = 2 };
      L.Begin { txn = 2; lsn = 3 };
      L.Commit { txn = 2; lsn = 4 };
    ]
  in
  checkb "aborted dependency" true
    (D.has_code "TXN008" (TC.check_dependencies ~log:dep_aborted base_trace));
  (* Correct order is clean. *)
  let good =
    [
      L.Begin { txn = 1; lsn = 1 };
      L.Commit { txn = 1; lsn = 2 };
      L.Begin { txn = 2; lsn = 3 };
      L.Commit { txn = 2; lsn = 4 };
    ]
  in
  Alcotest.(check (list string)) "good log clean" []
    (codes (TC.check_dependencies ~log:good base_trace))

let test_txncheck_code_catalogue () =
  let cat = TC.code_catalogue in
  checki "nine codes" 9 (List.length cat);
  List.iter
    (fun c ->
      checkb (c ^ " catalogued") true (List.mem_assoc c cat))
    [
      "TXN001"; "TXN002"; "TXN003"; "TXN004"; "TXN005"; "TXN006"; "TXN007";
      "TXN008"; "TXN101";
    ];
  (* And the layer-wide catalogue picked them up without collisions. *)
  let all = List.map fst V.code_catalogue in
  checki "no duplicate codes"
    (List.length all)
    (List.length (List.sort_uniq compare all))

(* ------------------------------------------------------------------ *)
(* Txn_fuzz: seeded interleaved workloads                              *)
(* ------------------------------------------------------------------ *)

let test_fuzz_clean_seeds () =
  List.iter
    (fun seed ->
      let o = V.Txn_fuzz.run ~seed () in
      checkb
        (Printf.sprintf "seed %d: no errors" seed)
        false
        (D.has_errors o.V.Txn_fuzz.diags);
      checkb
        (Printf.sprintf "seed %d: contention exercised" seed)
        true (o.V.Txn_fuzz.waits > 0);
      checkb
        (Printf.sprintf "seed %d: work done" seed)
        true
        (o.V.Txn_fuzz.committed > 0);
      checki
        (Printf.sprintf "seed %d: all transactions accounted" seed)
        40
        (o.V.Txn_fuzz.committed + o.V.Txn_fuzz.aborted))
    [ 11; 22; 33; 44; 55 ]

let test_fuzz_determinism () =
  let a = V.Txn_fuzz.run ~seed:77 () in
  let b = V.Txn_fuzz.run ~seed:77 () in
  checkb "same schedule" true (a.V.Txn_fuzz.events = b.V.Txn_fuzz.events);
  checkb "same log" true (a.V.Txn_fuzz.log = b.V.Txn_fuzz.log)

let test_fuzz_scramble_finds_deadlocks () =
  (* Scrambled acquisition order: the driver runs into real deadlocks and
     the waits-for analyzer must report them. *)
  let o = V.Txn_fuzz.run ~scramble:true ~seed:11 () in
  checkb "driver hit deadlocks" true (o.V.Txn_fuzz.deadlocks > 0);
  checkb "TXN006 reported" true (D.has_code "TXN006" o.V.Txn_fuzz.diags);
  checkb "TXN101 lint fired" true (D.has_code "TXN101" o.V.Txn_fuzz.diags);
  (* Deadlocks are the only error class a correct lock manager can
     produce here: no 2PL / dependency / serializability violations. *)
  List.iter
    (fun c ->
      checkb (c ^ " absent") false (D.has_code c o.V.Txn_fuzz.diags))
    [ "TXN001"; "TXN002"; "TXN003"; "TXN004"; "TXN005"; "TXN008" ]

let test_fuzz_crash_truncation () =
  let o = V.Txn_fuzz.run ~crash:true ~seed:11 () in
  checkb "crashed" true o.V.Txn_fuzz.crashed;
  checkb "truncated trace accepted" false (D.has_errors o.V.Txn_fuzz.diags)

let test_fuzz_audit_component () =
  let o = V.Txn_fuzz.run ~seed:22 () in
  let results =
    V.Audit.run_all
      [
        V.Audit.Schedule
          {
            name = "fuzz schedule";
            events = o.V.Txn_fuzz.events;
            log = o.V.Txn_fuzz.log;
          };
      ]
  in
  checkb "audit ok" true
    (V.Audit.ok
       [
         V.Audit.Schedule
           {
             name = "fuzz schedule";
             events = o.V.Txn_fuzz.events;
             log = o.V.Txn_fuzz.log;
           };
       ]);
  match results with
  | [ (name, diags) ] ->
    Alcotest.(check string) "component name" "fuzz schedule" name;
    checkb "no error diags" false (D.has_errors diags)
  | _ -> Alcotest.fail "expected one component"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mmdb verify"
    [
      ( "plan-check",
        [
          Alcotest.test_case "error corpus" `Quick test_plan_error_corpus;
          Alcotest.test_case "warning corpus" `Quick test_plan_warning_corpus;
          Alcotest.test_case "valid plans accepted" `Quick
            test_plan_valid_accepted;
          Alcotest.test_case "no cascading errors" `Quick test_plan_no_cascade;
          Alcotest.test_case "tree paths" `Quick test_plan_paths;
          Alcotest.test_case "executor and sql integration" `Quick
            test_executor_and_sql_checked;
          Alcotest.test_case "db.query raises on bad plan" `Quick
            test_db_query_raises;
        ] );
      ( "log-check",
        [
          Alcotest.test_case "clean log accepted" `Quick
            test_log_clean_accepted;
          Alcotest.test_case "corruption injector" `Quick
            test_log_corruption_injector;
          Alcotest.test_case "duplicate lsn" `Quick
            test_log_duplicate_lsn_flagged;
          Alcotest.test_case "completeness flags" `Quick
            test_log_completeness_flags;
          Alcotest.test_case "real recovery scenarios" `Quick
            test_log_real_scenarios;
        ] );
      ( "pool-check",
        [
          Alcotest.test_case "clean pool" `Quick test_pool_clean;
          Alcotest.test_case "pin leak" `Quick test_pool_pin_leak;
          Alcotest.test_case "unpin underflow" `Quick
            test_pool_unpin_underflow;
          Alcotest.test_case "pins block eviction" `Quick
            test_pool_pins_block_eviction;
          Alcotest.test_case "accounting across drop" `Quick
            test_pool_accounting_across_drop;
        ] );
      ( "audit",
        [
          Alcotest.test_case "run_all clean" `Quick test_audit_run_all;
          Alcotest.test_case "flags violations" `Quick
            test_audit_flags_violations;
          Alcotest.test_case "db audit" `Quick test_db_audit;
          Alcotest.test_case "code catalogue unique" `Quick
            test_code_catalogue_unique;
        ] );
      ( "property",
        [
          Alcotest.test_case "avl random workload" `Quick
            (property_workload "avl" avl_ops 101);
          Alcotest.test_case "btree random workload" `Quick
            (property_workload "btree" btree_ops 202);
          Alcotest.test_case "paged-bst random workload" `Quick
            (property_workload "bst" bst_ops 303);
          Alcotest.test_case "paged-bst delete basics" `Quick
            test_bst_delete_basics;
        ] );
      ( "txn-check",
        [
          Alcotest.test_case "clean schedule" `Quick test_txncheck_clean;
          Alcotest.test_case "early release (TXN001/TXN002)" `Quick
            test_txncheck_early_release;
          Alcotest.test_case "unlocked access (TXN002)" `Quick
            test_txncheck_unlocked_access;
          Alcotest.test_case "held after precommit (TXN003)" `Quick
            test_txncheck_held_after_precommit;
          Alcotest.test_case "precommitted acquires (TXN004)" `Quick
            test_txncheck_precommitted_acquires;
          Alcotest.test_case "precommitted aborts (TXN005)" `Quick
            test_txncheck_precommitted_aborts;
          Alcotest.test_case "deadlock cycle (TXN006)" `Quick
            test_txncheck_deadlock_cycle;
          Alcotest.test_case "lock-order lint (TXN101)" `Quick
            test_txncheck_lock_order_lint;
          Alcotest.test_case "serializability cycle (TXN007)" `Quick
            test_txncheck_serializability_cycle;
          Alcotest.test_case "dependency durability (TXN008)" `Quick
            test_txncheck_dependency_durability;
          Alcotest.test_case "dependency log order (TXN008)" `Quick
            test_txncheck_dependency_log_order;
          Alcotest.test_case "code catalogue" `Quick
            test_txncheck_code_catalogue;
        ] );
      ( "txn-fuzz",
        [
          Alcotest.test_case "clean seeds audit clean" `Quick
            test_fuzz_clean_seeds;
          Alcotest.test_case "deterministic" `Quick test_fuzz_determinism;
          Alcotest.test_case "scramble finds deadlocks" `Quick
            test_fuzz_scramble_finds_deadlocks;
          Alcotest.test_case "crash truncation tolerated" `Quick
            test_fuzz_crash_truncation;
          Alcotest.test_case "audit component" `Quick
            test_fuzz_audit_component;
        ] );
    ]
