(* Tests for the interprocedural exception-flow / resource-discipline
   pass: synthetic multi-file corpora asserting the exact EXN/RES code
   for each defect class (and the silence of the corresponding clean
   idiom), cross-module summary propagation and entry-point
   reachability, the exn_flow justification whitelist, determinism,
   EXN100 parse failures, and the catalogue plumbing shared with the
   exnlint gate. *)

module V = Mmdb_verify
module XF = V.Exn_flow

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Analyze a corpus of [(path, source)] implementation files (plus
   optional interfaces), failing the test on any EXN100 parse diag. *)
let scan ?(mlis = []) mls =
  let findings, diags = XF.analyze ~mls ~mlis in
  (match diags with
  | [] -> ()
  | d :: _ -> Alcotest.failf "unexpected parse failure: %s" d.V.Diag.message);
  findings

let codes findings =
  List.sort_uniq compare
    (List.map (fun (f : XF.finding) -> f.XF.code) findings)

let flagged findings =
  List.filter (fun (f : XF.finding) -> f.XF.status = XF.Flagged) findings

let check_codes msg expected findings =
  Alcotest.(check (list string)) msg expected (codes (flagged findings))

(* ------------------------------------------------------------------ *)
(* EXN101: swallowing handlers                                         *)
(* ------------------------------------------------------------------ *)

let test_exn101_catch_all () =
  (* Direct raise under a catch-all. *)
  check_codes "direct fault raise swallowed" [ "EXN101" ]
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let f d = try raise (Fault.Io_error e) with _ -> 0" );
       ]);
  (* Interprocedural: the body calls a sibling whose summary raises. *)
  let fs =
    scan
      [
        ( "lib/storage/fixture.ml",
          "let risky d = raise (Fault.Io_error e)\n\
           let f d = try risky d with _ -> 0" );
      ]
  in
  check_codes "callee summary swallowed" [ "EXN101" ] fs;
  (match flagged fs with
  | [ f ] ->
    Alcotest.(check string) "enclosing fn" "Fixture.f" f.XF.name;
    checki "anchored at the try" 2 f.XF.line
  | _ -> Alcotest.fail "expected exactly one finding");
  (* Matching the exception explicitly is the clean idiom. *)
  check_codes "explicit match is clean" []
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let risky d = raise (Fault.Io_error e)\n\
            let f d = try risky d with Fault.Io_error _ -> 0" );
       ]);
  (* A catch-all that re-raises its binding does not swallow. *)
  check_codes "re-raising catch-all is not EXN101"
    [ "EXN104" ] (* the plain re-raise is its own (different) defect *)
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let risky d = raise (Fault.Io_error e)\n\
            let f d = try risky d with e -> cleanup (); raise e" );
       ]);
  (* Generic exceptions under a catch-all are not EXN101's business. *)
  check_codes "swallowed Invalid_argument is clean" []
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let f d = try invalid_arg \"x\" with _ -> 0" );
       ])

let test_exn101_lookup () =
  check_codes "Hashtbl.find under Not_found" [ "EXN101" ]
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let f t k = try Hashtbl.find t k with Not_found -> 0" );
       ]);
  (* A handler that raises is a translation, not a swallow. *)
  check_codes "raising handler is clean" []
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let f t k = try Hashtbl.find t k with Not_found -> \
            invalid_arg \"missing\"" );
       ]);
  (* The remediation idiom is silent. *)
  check_codes "find_opt is clean" []
    (scan
       [
         ( "lib/storage/fixture.ml",
           "let f t k = Option.value ~default:0 (Hashtbl.find_opt t k)" );
       ])

(* ------------------------------------------------------------------ *)
(* EXN102: undeclared escape of an exported API                        *)
(* ------------------------------------------------------------------ *)

let exn102_ml =
  "exception Corrupt of string\nlet read_page d = raise (Corrupt \"x\")"

let test_exn102_undeclared_escape () =
  let fs =
    scan
      ~mlis:
        [ ("lib/storage/fixture.mli", "val read_page : int -> int") ]
      [ ("lib/storage/fixture.ml", exn102_ml) ]
  in
  check_codes "undeclared escape flagged" [ "EXN102" ] fs;
  (match flagged fs with
  | [ f ] ->
    Alcotest.(check string) "names the export" "Fixture.read_page" f.XF.name;
    checki "anchored at the binding" 2 f.XF.line
  | _ -> Alcotest.fail "expected exactly one finding");
  (* A @raise line naming the exception satisfies the contract. *)
  check_codes "@raise declaration is clean" []
    (scan
       ~mlis:
         [
           ( "lib/storage/fixture.mli",
             "val read_page : int -> int\n\
              (** @raise Corrupt on checksum failure. *)" );
         ]
       [ ("lib/storage/fixture.ml", exn102_ml) ]);
  (* An unexported binding has no public contract to break. *)
  check_codes "unexported fn is clean" []
    (scan
       ~mlis:[ ("lib/storage/fixture.mli", "val other : int") ]
       [ ("lib/storage/fixture.ml", exn102_ml) ]);
  (* Outside the declared-contract directories the rule is silent. *)
  check_codes "util/ is out of scope" []
    (scan
       ~mlis:[ ("lib/util/fixture.mli", "val read_page : int -> int") ]
       [ ("lib/util/fixture.ml", exn102_ml) ])

(* ------------------------------------------------------------------ *)
(* EXN103 / EXN105: partial & stringly sites on live recovery paths    *)
(* ------------------------------------------------------------------ *)

let test_exn103_partial_on_live_path () =
  check_codes "List.hd in an exec entry" [ "EXN103" ]
    (scan [ ("lib/exec/fixture.ml", "let step xs = List.hd xs") ]);
  (* Reachability is interprocedural: the partial sits in a helper
     module, the entry point is in recovery/. *)
  let fs =
    scan
      [
        ("lib/recovery/driver.ml", "let run () = Helper.pick [ 1 ]");
        ("lib/util/helper.ml", "let pick xs = List.hd xs");
      ]
  in
  check_codes "partial reached from recovery entry" [ "EXN103" ] fs;
  (match flagged fs with
  | [ f ] ->
    Alcotest.(check string) "flagged in the helper" "lib/util/helper.ml"
      f.XF.file;
    checkb "witness names the entry" true
      (let sub = "Driver.run" in
       let s = f.XF.construct in
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "expected exactly one finding");
  (* Unreachable from any entry: no finding. *)
  check_codes "partial in dead util code is clean" []
    (scan [ ("lib/util/helper.ml", "let pick xs = List.hd xs") ]);
  (* The explicit-match remediation is silent. *)
  check_codes "explicit match is clean" []
    (scan
       [
         ( "lib/exec/fixture.ml",
           "let step xs = match xs with [] -> invalid_arg \"empty\" \
            | x :: _ -> x" );
       ])

let test_exn105_failwith_on_live_path () =
  check_codes "failwith in a recovery entry" [ "EXN105" ]
    (scan [ ("lib/recovery/fixture.ml", "let run () = failwith \"boom\"") ]);
  check_codes "failwith in dead util code is clean" []
    (scan [ ("lib/util/fixture.ml", "let run () = failwith \"boom\"") ])

(* ------------------------------------------------------------------ *)
(* EXN104: backtrace-dropping re-raise                                 *)
(* ------------------------------------------------------------------ *)

let test_exn104_reraise () =
  check_codes "raise v drops the backtrace" [ "EXN104" ]
    (scan
       [
         ( "lib/core/fixture.ml",
           "let f () = try g () with e -> cleanup (); raise e" );
       ]);
  (* The remediation keeps the backtrace. *)
  check_codes "raise_with_backtrace is clean" []
    (scan
       [
         ( "lib/core/fixture.ml",
           "let f () =\n\
            \  try g () with e ->\n\
            \    let bt = Printexc.get_raw_backtrace () in\n\
            \    cleanup ();\n\
            \    Printexc.raise_with_backtrace e bt" );
       ])

(* ------------------------------------------------------------------ *)
(* RES101-RES104: resource pairing                                     *)
(* ------------------------------------------------------------------ *)

let test_res101_pin_without_unpin () =
  check_codes "pin with no unpin" [ "RES101" ]
    (scan
       [ ("lib/storage/scan.ml", "let f pool pid = Buffer_pool.pin pool pid") ]);
  check_codes "balanced pin/unpin is clean" []
    (scan
       [
         ( "lib/storage/scan.ml",
           "let f pool pid =\n\
            \  let frame = Buffer_pool.pin pool pid in\n\
            \  Buffer_pool.unpin pool pid;\n\
            \  frame" );
       ]);
  (* Inside Buffer_pool itself the rule is blind by design. *)
  check_codes "own module is exempt" []
    (scan
       [ ("lib/storage/buffer_pool.ml", "let reuse t pid = pin t pid") ])

let test_res102_acquire_without_release () =
  check_codes "acquire with no release-set call" [ "RES102" ]
    (scan
       [
         ( "lib/core/fixture.ml",
           "let f locks k = Lock_manager.acquire locks ~txn:1 ~key:k" );
       ]);
  check_codes "acquire + release_abort is clean" []
    (scan
       [
         ( "lib/core/fixture.ml",
           "let f locks k =\n\
            \  let g = Lock_manager.acquire locks ~txn:1 ~key:k in\n\
            \  Lock_manager.release_abort locks ~txn:1;\n\
            \  g" );
       ])

let test_res103_unprotected_span () =
  let fs =
    scan
      [
        ( "lib/storage/scan.ml",
          "let f pool pid =\n\
           \  let frame = Buffer_pool.pin pool pid in\n\
           \  if frame = Bytes.empty then invalid_arg \"empty\";\n\
           \  Buffer_pool.unpin pool pid" );
      ]
  in
  check_codes "raising site inside the span" [ "RES103" ] fs;
  (match flagged fs with
  | [ f ] -> checki "anchored at the pin" 2 f.XF.line
  | _ -> Alcotest.fail "expected exactly one finding");
  (* Fun.protect is the remediation. *)
  check_codes "Fun.protect span is clean" []
    (scan
       [
         ( "lib/storage/scan.ml",
           "let f pool pid =\n\
            \  let frame = Buffer_pool.pin pool pid in\n\
            \  Fun.protect\n\
            \    ~finally:(fun () -> Buffer_pool.unpin pool pid)\n\
            \    (fun () -> if frame = Bytes.empty then invalid_arg \
            \"empty\")" );
       ])

let test_res104_release_without_acquire () =
  check_codes "unpin with no pin" [ "RES104" ]
    (scan
       [ ("lib/storage/scan.ml", "let u pool pid = Buffer_pool.unpin pool pid") ])

(* ------------------------------------------------------------------ *)
(* Whitelist, determinism, parse failure                               *)
(* ------------------------------------------------------------------ *)

let test_justification_whitelist () =
  let src =
    "(* exn_flow: fixture; release is the caller's job *)\n\
     let f pool pid = Buffer_pool.pin pool pid"
  in
  let fs = scan [ ("lib/storage/scan.ml", src) ] in
  check_codes "justified finding is not flagged" [] fs;
  (match fs with
  | [ { XF.status = XF.Whitelisted why; _ } ] ->
    checkb "justification text echoed" true
      (why = "fixture; release is the caller's job")
  | _ -> Alcotest.fail "expected one whitelisted finding");
  (* Three or more lines away, the comment no longer applies. *)
  check_codes "distant comment does not silence" [ "RES101" ]
    (scan
       [
         ( "lib/storage/scan.ml",
           "(* exn_flow: too far away *)\n\n\n\
            let f pool pid = Buffer_pool.pin pool pid" );
       ])

let corpus =
  [
    ( "lib/storage/fixture.ml",
      "let risky d = raise (Fault.Io_error e)\n\
       let f d = try risky d with _ -> 0" );
    ("lib/recovery/driver.ml", "let run () = Helper.pick [ 1 ]");
    ("lib/util/helper.ml", "let pick xs = List.hd xs");
    ("lib/storage/scan.ml", "let u pool pid = Buffer_pool.unpin pool pid");
  ]

let test_determinism () =
  checkb "two scans agree" true (scan corpus = scan corpus);
  Alcotest.(check (list string))
    "all three defect classes found"
    [ "EXN101"; "EXN103"; "RES104" ]
    (codes (flagged (scan corpus)))

let test_parse_failure () =
  let findings, diags =
    XF.analyze
      ~mls:
        [
          ("lib/storage/bad.ml", "let = (");
          ("lib/storage/scan.ml", "let u pool pid = Buffer_pool.unpin pool pid");
        ]
      ~mlis:[ ("lib/storage/worse.mli", "val : (") ]
  in
  checki "one diag per unparseable file" 2 (List.length diags);
  List.iter
    (fun (d : V.Diag.t) ->
      Alcotest.(check string) "code" "EXN100" d.V.Diag.code)
    diags;
  (* The rest of the sweep still runs. *)
  check_codes "parseable files still scanned" [ "RES104" ] findings

(* ------------------------------------------------------------------ *)
(* Repo sweep and catalogue plumbing                                   *)
(* ------------------------------------------------------------------ *)

(* The library must stay exception-clean: every finding fixed or
   justified.  Lenient when the repo root is not visible from the test
   sandbox. *)
let test_repo_sources_clean () =
  match XF.scan_lib () with
  | Error _ -> ()
  | Ok (findings, parse_diags) ->
    let diags = parse_diags @ XF.diags_of_findings findings in
    List.iter
      (fun (d : V.Diag.t) ->
        Printf.printf "unjustified: [%s] %s %s\n" d.V.Diag.code d.V.Diag.path
          d.V.Diag.message)
      diags;
    checkb "no unjustified exn-flow findings in lib/" false
      (V.Diag.has_errors diags)

let test_code_catalogue () =
  let cat = V.code_catalogue in
  List.iter
    (fun c ->
      checkb (c ^ " catalogued") true (List.mem_assoc c cat);
      checki (c ^ " unique") 1
        (List.length (List.filter (fun (c', _) -> c' = c) cat)))
    [
      "EXN100"; "EXN101"; "EXN102"; "EXN103"; "EXN104"; "EXN105";
      "RES101"; "RES102"; "RES103"; "RES104";
    ];
  (* The audit component surfaces the same diagnostics. *)
  match XF.scan_lib () with
  | Error _ -> ()
  | Ok (findings, parse_diags) ->
    let via_audit =
      V.Audit.run (V.Audit.Exn { name = "exn lint"; root = None })
    in
    checki "audit component matches scan_lib"
      (List.length (parse_diags @ XF.diags_of_findings findings))
      (List.length via_audit)

let () =
  Alcotest.run "exnflow"
    [
      ( "exn",
        [
          Alcotest.test_case "EXN101 catch-all swallow" `Quick
            test_exn101_catch_all;
          Alcotest.test_case "EXN101 partial lookup" `Quick test_exn101_lookup;
          Alcotest.test_case "EXN102 undeclared escape" `Quick
            test_exn102_undeclared_escape;
          Alcotest.test_case "EXN103 partial on live path" `Quick
            test_exn103_partial_on_live_path;
          Alcotest.test_case "EXN104 backtrace-dropping re-raise" `Quick
            test_exn104_reraise;
          Alcotest.test_case "EXN105 failwith on live path" `Quick
            test_exn105_failwith_on_live_path;
        ] );
      ( "res",
        [
          Alcotest.test_case "RES101 pin without unpin" `Quick
            test_res101_pin_without_unpin;
          Alcotest.test_case "RES102 acquire without release" `Quick
            test_res102_acquire_without_release;
          Alcotest.test_case "RES103 unprotected span" `Quick
            test_res103_unprotected_span;
          Alcotest.test_case "RES104 release without acquire" `Quick
            test_res104_release_without_acquire;
        ] );
      ( "policy",
        [
          Alcotest.test_case "justification whitelist" `Quick
            test_justification_whitelist;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "parse failure (EXN100)" `Quick
            test_parse_failure;
          Alcotest.test_case "repo sources clean" `Quick
            test_repo_sources_clean;
          Alcotest.test_case "code catalogue" `Quick test_code_catalogue;
        ] );
    ]
