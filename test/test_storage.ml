(* Tests for Mmdb_storage: pages, tuples, schemas, disk, buffer pool,
   relations, environment charging. *)

module S = Mmdb_storage
module U = Mmdb_util

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let feq ?(eps = 1e-12) name a b =
  checkb (name ^ " ~=") true (Float.abs (a -. b) <= eps)

(* Shared schema: 8-byte int key, 8-byte int payload, 24-byte string. *)
let schema () =
  S.Schema.create ~key:"k"
    [
      S.Schema.column "k" S.Schema.Int;
      S.Schema.column "v" S.Schema.Int;
      S.Schema.column ~width:24 "s" S.Schema.Fixed_string;
    ]

let mk_tuple sch k v s = S.Tuple.encode sch [ S.Tuple.VInt k; S.Tuple.VInt v; S.Tuple.VStr s ]

(* ------------------------------------------------------------------ *)
(* Cost & clock & counters                                             *)
(* ------------------------------------------------------------------ *)

let test_cost_table2 () =
  let c = S.Cost.table2 in
  feq "comp" 3e-6 c.S.Cost.comp;
  feq "hash" 9e-6 c.S.Cost.hash;
  feq "move" 20e-6 c.S.Cost.move;
  feq "swap" 60e-6 c.S.Cost.swap;
  feq "io_seq" 10e-3 c.S.Cost.io_seq;
  feq "io_rand" 25e-3 c.S.Cost.io_rand;
  feq "fudge" 1.2 c.S.Cost.fudge

let test_clock () =
  let c = S.Sim_clock.create () in
  feq "starts at 0" 0.0 (S.Sim_clock.now c);
  S.Sim_clock.advance c 1.5;
  feq "advance" 1.5 (S.Sim_clock.now c);
  S.Sim_clock.advance_to c 1.0;
  feq "advance_to past is noop" 1.5 (S.Sim_clock.now c);
  S.Sim_clock.advance_to c 2.0;
  feq "advance_to future" 2.0 (S.Sim_clock.now c);
  S.Sim_clock.reset c;
  feq "reset" 0.0 (S.Sim_clock.now c)

let test_clock_negative () =
  let c = S.Sim_clock.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim_clock.advance: negative dt") (fun () ->
      S.Sim_clock.advance c (-1.0))

let test_env_charging () =
  let env = S.Env.create () in
  S.Env.charge_comp env;
  S.Env.charge_comps env 9;
  S.Env.charge_hash env;
  S.Env.charge_move env;
  S.Env.charge_swap env;
  S.Env.charge_io_seq_read env;
  S.Env.charge_io_rand_write env;
  let c = env.S.Env.counters in
  checki "comparisons" 10 c.S.Counters.comparisons;
  checki "hashes" 1 c.S.Counters.hashes;
  checki "moves" 1 c.S.Counters.moves;
  checki "swaps" 1 c.S.Counters.swaps;
  checki "seq reads" 1 c.S.Counters.seq_reads;
  checki "rand writes" 1 c.S.Counters.rand_writes;
  let expect =
    (10.0 *. 3e-6) +. 9e-6 +. 20e-6 +. 60e-6 +. 10e-3 +. 25e-3
  in
  feq ~eps:1e-9 "clock total" expect (S.Env.elapsed env)

let test_counters_diff () =
  let env = S.Env.create () in
  S.Env.charge_comp env;
  let before = S.Counters.snapshot env.S.Env.counters in
  S.Env.charge_comp env;
  S.Env.charge_hash env;
  let d = S.Counters.diff ~after:env.S.Env.counters ~before in
  checki "comp delta" 1 d.S.Counters.comparisons;
  checki "hash delta" 1 d.S.Counters.hashes;
  checki "total io" 0 (S.Counters.total_io d)

(* ------------------------------------------------------------------ *)
(* Page                                                                *)
(* ------------------------------------------------------------------ *)

let test_page_capacity () =
  checki "4096/40" 102 (S.Page.capacity ~page_size:4096 ~tuple_width:40);
  checki "4096/4094" 1 (S.Page.capacity ~page_size:4096 ~tuple_width:4094);
  Alcotest.check_raises "too wide"
    (Invalid_argument "Page.capacity: tuple wider than page") (fun () ->
      ignore (S.Page.capacity ~page_size:64 ~tuple_width:100))

let test_page_append_get () =
  let p = S.Page.create 128 in
  checki "empty" 0 (S.Page.count p);
  let t1 = Bytes.of_string "0123456789" in
  let t2 = Bytes.of_string "abcdefghij" in
  checkb "append 1" true (S.Page.append p ~tuple_width:10 t1);
  checkb "append 2" true (S.Page.append p ~tuple_width:10 t2);
  checki "count 2" 2 (S.Page.count p);
  checks "get 0" "0123456789" (Bytes.to_string (S.Page.get p ~tuple_width:10 0));
  checks "get 1" "abcdefghij" (Bytes.to_string (S.Page.get p ~tuple_width:10 1))

let test_page_fills_up () =
  let p = S.Page.create 32 in
  (* capacity = (32-2)/10 = 3 *)
  let tup = Bytes.make 10 'x' in
  checkb "1" true (S.Page.append p ~tuple_width:10 tup);
  checkb "2" true (S.Page.append p ~tuple_width:10 tup);
  checkb "3" true (S.Page.append p ~tuple_width:10 tup);
  checkb "full" false (S.Page.append p ~tuple_width:10 tup);
  S.Page.clear p;
  checki "cleared" 0 (S.Page.count p);
  checkb "reusable" true (S.Page.append p ~tuple_width:10 tup)

let test_page_set_and_iter () =
  let p = S.Page.create 64 in
  ignore (S.Page.append p ~tuple_width:4 (Bytes.of_string "aaaa"));
  ignore (S.Page.append p ~tuple_width:4 (Bytes.of_string "bbbb"));
  S.Page.set p ~tuple_width:4 0 (Bytes.of_string "cccc");
  let seen = ref [] in
  S.Page.iter p ~tuple_width:4 (fun i tup ->
      seen := (i, Bytes.to_string tup) :: !seen);
  Alcotest.(check (list (pair int string)))
    "iter order"
    [ (0, "cccc"); (1, "bbbb") ]
    (List.rev !seen)

let test_page_bounds () =
  let p = S.Page.create 64 in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Page.get: slot out of bounds") (fun () ->
      ignore (S.Page.get p ~tuple_width:4 0))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_layout () =
  let sch = schema () in
  checki "width" 40 (S.Schema.tuple_width sch);
  checki "key index" 0 (S.Schema.key_index sch);
  checki "key width" 8 (S.Schema.key_width sch);
  checki "key offset" 0 (S.Schema.key_offset sch);
  checki "offset v" 8 (S.Schema.offset sch 1);
  checki "offset s" 16 (S.Schema.offset sch 2);
  checki "col index" 2 (S.Schema.column_index sch "s")

let test_schema_with_key () =
  let sch = schema () in
  let sch2 = S.Schema.with_key sch "v" in
  checki "new key index" 1 (S.Schema.key_index sch2);
  checki "new key offset" 8 (S.Schema.key_offset sch2);
  (* Original unchanged. *)
  checki "orig key" 0 (S.Schema.key_index sch)

let test_schema_errors () =
  Alcotest.check_raises "dup column"
    (Invalid_argument "Schema.create: duplicate column x") (fun () ->
      ignore
        (S.Schema.create ~key:"x"
           [ S.Schema.column "x" S.Schema.Int; S.Schema.column "x" S.Schema.Int ]));
  Alcotest.check_raises "bad key"
    (Invalid_argument "Schema.create: no key column nope") (fun () ->
      ignore (S.Schema.create ~key:"nope" [ S.Schema.column "x" S.Schema.Int ]));
  Alcotest.check_raises "string needs width"
    (Invalid_argument "Schema.column: Fixed_string requires an explicit width")
    (fun () -> ignore (S.Schema.column "s" S.Schema.Fixed_string))

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let test_tuple_roundtrip () =
  let sch = schema () in
  let tup = mk_tuple sch 42 (-7) "hello" in
  (match S.Tuple.decode sch tup with
  | [ S.Tuple.VInt 42; S.Tuple.VInt -7; S.Tuple.VStr "hello" ] -> ()
  | _ -> Alcotest.fail "roundtrip mismatch");
  checki "get_int k" 42 (S.Tuple.get_int sch tup 0);
  checki "get_int v" (-7) (S.Tuple.get_int sch tup 1);
  checks "get_str" "hello" (S.Tuple.get_str sch tup 2)

let test_tuple_set_int () =
  let sch = schema () in
  let tup = mk_tuple sch 1 2 "x" in
  S.Tuple.set_int sch tup 1 999;
  checki "updated" 999 (S.Tuple.get_int sch tup 1);
  checki "key untouched" 1 (S.Tuple.get_int sch tup 0)

let test_tuple_key_compare () =
  let sch = schema () in
  let t1 = mk_tuple sch 5 0 "" and t2 = mk_tuple sch 10 0 "" in
  checkb "5 < 10" true (S.Tuple.compare_keys sch t1 t2 < 0);
  checkb "10 > 5" true (S.Tuple.compare_keys sch t2 t1 > 0);
  checkb "eq" true (S.Tuple.compare_keys sch t1 t1 = 0);
  let key = S.Tuple.encode_int_key sch 7 in
  checkb "5 < key 7" true (S.Tuple.compare_key_to sch t1 key < 0);
  checkb "10 > key 7" true (S.Tuple.compare_key_to sch t2 key > 0)

let test_tuple_negative_ordering () =
  let sch = schema () in
  let tn = mk_tuple sch (-100) 0 "" and tz = mk_tuple sch 0 0 "" in
  checkb "-100 < 0" true (S.Tuple.compare_keys sch tn tz < 0)

let qcheck_int_encoding_order =
  QCheck.Test.make ~name:"int key encoding preserves order" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let sch = schema () in
      let ta = mk_tuple sch a 0 "" and tb = mk_tuple sch b 0 "" in
      let c = S.Tuple.compare_keys sch ta tb in
      (c < 0) = (a < b) && (c = 0) = (a = b))

let qcheck_narrow_int_roundtrip =
  QCheck.Test.make ~name:"narrow int columns roundtrip" ~count:500
    QCheck.(int_range (-32768) 32767)
    (fun v ->
      let sch =
        S.Schema.create ~key:"k" [ S.Schema.column ~width:2 "k" S.Schema.Int ]
      in
      let tup = S.Tuple.encode sch [ S.Tuple.VInt v ] in
      S.Tuple.get_int sch tup 0 = v)

let test_narrow_int_out_of_range () =
  let sch =
    S.Schema.create ~key:"k" [ S.Schema.column ~width:2 "k" S.Schema.Int ]
  in
  let lo, hi = S.Tuple.int_key_range sch in
  checki "lo" (-32768) lo;
  checki "hi" 32767 hi;
  checkb "encode out of range raises" true
    (try
       ignore (S.Tuple.encode sch [ S.Tuple.VInt 40000 ]);
       false
     with Invalid_argument _ -> true)

let test_string_too_long () =
  let sch =
    S.Schema.create ~key:"s"
      [ S.Schema.column ~width:3 "s" S.Schema.Fixed_string ]
  in
  checkb "too long raises" true
    (try
       ignore (S.Tuple.encode sch [ S.Tuple.VStr "abcd" ]);
       false
     with Invalid_argument _ -> true)

let test_hash_key_deterministic () =
  let sch = schema () in
  let t1 = mk_tuple sch 42 0 "" and t2 = mk_tuple sch 42 99 "zzz" in
  checki "same key same hash" (S.Tuple.hash_key sch t1) (S.Tuple.hash_key sch t2);
  let t3 = mk_tuple sch 43 0 "" in
  checkb "diff key diff hash (likely)" true
    (S.Tuple.hash_key sch t1 <> S.Tuple.hash_key sch t3);
  checkb "non-negative" true (S.Tuple.hash_key sch t1 >= 0)

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let test_disk_alloc_rw () =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:128 in
  let pid = S.Disk.alloc d in
  checki "page count" 1 (S.Disk.page_count d);
  let page = S.Page.create 128 in
  ignore (S.Page.append page ~tuple_width:10 (Bytes.make 10 'q'));
  S.Disk.write d ~mode:S.Disk.Seq pid page;
  let back = S.Disk.read d ~mode:S.Disk.Rand pid in
  checks "roundtrip" (Bytes.to_string page) (Bytes.to_string back);
  checki "seq writes" 1 env.S.Env.counters.S.Counters.seq_writes;
  checki "rand reads" 1 env.S.Env.counters.S.Counters.rand_reads;
  feq ~eps:1e-9 "charged" (10e-3 +. 25e-3) (S.Env.elapsed env)

let test_disk_read_copy_isolated () =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let pid = S.Disk.alloc d in
  let back = S.Disk.read_nocharge d pid in
  Bytes.set back 10 'Z';
  let again = S.Disk.read_nocharge d pid in
  checkb "mutation not visible" true (Bytes.get again 10 = '\000')

let test_disk_free () =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let pid = S.Disk.alloc d in
  S.Disk.free d pid;
  checki "count 0" 0 (S.Disk.page_count d);
  checkb "read freed raises FAULT005" true
    (try
       ignore (S.Disk.read_nocharge d pid);
       false
     with Mmdb_fault.Fault.Io_error e -> e.Mmdb_fault.Fault.code = "FAULT005")

let test_disk_nocharge () =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let pid = S.Disk.alloc d in
  S.Disk.write_nocharge d pid (S.Page.create 64);
  ignore (S.Disk.read_nocharge d pid);
  checki "no io counted" 0 (S.Counters.total_io env.S.Env.counters);
  feq "no time" 0.0 (S.Env.elapsed env)

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let pool_setup policy capacity =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let pids = Array.init 10 (fun _ -> S.Disk.alloc d) in
  let pool = S.Buffer_pool.create ~disk:d ~capacity policy in
  (env, d, pids, pool)

let test_pool_hit_and_fault () =
  let env, _, pids, pool = pool_setup S.Buffer_pool.Lru 4 in
  ignore (S.Buffer_pool.get pool pids.(0));
  checki "1 fault" 1 env.S.Env.counters.S.Counters.faults;
  ignore (S.Buffer_pool.get pool pids.(0));
  checki "still 1 fault" 1 env.S.Env.counters.S.Counters.faults;
  checki "1 hit" 1 env.S.Env.counters.S.Counters.pool_hits;
  checki "resident" 1 (S.Buffer_pool.resident pool)

let test_pool_capacity_bound () =
  let _, _, pids, pool = pool_setup S.Buffer_pool.Lru 4 in
  Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids;
  checkb "bounded" true (S.Buffer_pool.resident pool <= 4)

let test_pool_lru_eviction_order () =
  let env, _, pids, pool = pool_setup S.Buffer_pool.Lru 2 in
  ignore (S.Buffer_pool.get pool pids.(0));
  ignore (S.Buffer_pool.get pool pids.(1));
  ignore (S.Buffer_pool.get pool pids.(0));
  (* touch 0 *)
  ignore (S.Buffer_pool.get pool pids.(2));
  (* evicts 1 *)
  checkb "0 resident" true (S.Buffer_pool.is_resident pool pids.(0));
  checkb "1 evicted" false (S.Buffer_pool.is_resident pool pids.(1));
  let f0 = env.S.Env.counters.S.Counters.faults in
  ignore (S.Buffer_pool.get pool pids.(0));
  checki "no new fault for 0" f0 env.S.Env.counters.S.Counters.faults

let test_pool_dirty_writeback () =
  let env, d, pids, pool = pool_setup S.Buffer_pool.Lru 1 in
  let frame = S.Buffer_pool.get pool pids.(0) in
  Bytes.set frame 5 'D';
  S.Buffer_pool.mark_dirty pool pids.(0);
  let w0 = env.S.Env.counters.S.Counters.rand_writes in
  ignore (S.Buffer_pool.get pool pids.(1));
  (* evicts dirty page 0 -> writeback *)
  checki "one writeback" (w0 + 1) env.S.Env.counters.S.Counters.rand_writes;
  let back = S.Disk.read_nocharge d pids.(0) in
  checkb "write persisted" true (Bytes.get back 5 = 'D')

let test_pool_flush_all () =
  let _, d, pids, pool = pool_setup S.Buffer_pool.Lru 4 in
  let frame = S.Buffer_pool.get pool pids.(3) in
  Bytes.set frame 0 'F';
  S.Buffer_pool.mark_dirty pool pids.(3);
  S.Buffer_pool.flush_all pool;
  let back = S.Disk.read_nocharge d pids.(3) in
  checkb "flushed" true (Bytes.get back 0 = 'F');
  checkb "still resident" true (S.Buffer_pool.is_resident pool pids.(3))

let test_pool_drop_all_discards () =
  let _, d, pids, pool = pool_setup S.Buffer_pool.Lru 4 in
  let frame = S.Buffer_pool.get pool pids.(0) in
  Bytes.set frame 0 'X';
  S.Buffer_pool.mark_dirty pool pids.(0);
  S.Buffer_pool.drop_all pool;
  checki "nothing resident" 0 (S.Buffer_pool.resident pool);
  let back = S.Disk.read_nocharge d pids.(0) in
  checkb "dirty data lost" true (Bytes.get back 0 = '\000')

let test_pool_mark_dirty_nonresident () =
  let _, _, pids, pool = pool_setup S.Buffer_pool.Lru 2 in
  Alcotest.check_raises "not resident"
    (Invalid_argument "Buffer_pool.mark_dirty: page not resident") (fun () ->
      S.Buffer_pool.mark_dirty pool pids.(0))

let test_pool_random_policy_bounded () =
  let rng = U.Xorshift.create 99 in
  let _, _, pids, pool =
    pool_setup (S.Buffer_pool.Random_replacement rng) 3
  in
  for _ = 1 to 5 do
    Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids
  done;
  checkb "bounded" true (S.Buffer_pool.resident pool <= 3)

let test_pool_clock_policy_bounded () =
  let _, _, pids, pool = pool_setup S.Buffer_pool.Clock 3 in
  for _ = 1 to 5 do
    Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids
  done;
  checkb "bounded" true (S.Buffer_pool.resident pool <= 3)

(* Paper §2: with random replacement and |M| of S pages resident, the miss
   probability per access is about (1 - |M|/S). *)
let test_pool_random_fault_rate_matches_model () =
  let rng = U.Xorshift.create 7 in
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let s = 50 in
  let m = 25 in
  let pids = Array.init s (fun _ -> S.Disk.alloc d) in
  let pool =
    S.Buffer_pool.create ~disk:d ~capacity:m (S.Buffer_pool.Random_replacement rng)
  in
  (* Warm up. *)
  let access_rng = U.Xorshift.create 11 in
  for _ = 1 to 2000 do
    ignore (S.Buffer_pool.get pool pids.(U.Xorshift.int access_rng s))
  done;
  let before = env.S.Env.counters.S.Counters.faults in
  let accesses = 20_000 in
  for _ = 1 to accesses do
    ignore (S.Buffer_pool.get pool pids.(U.Xorshift.int access_rng s))
  done;
  let rate =
    float_of_int (env.S.Env.counters.S.Counters.faults - before)
    /. float_of_int accesses
  in
  let expected = 1.0 -. (float_of_int m /. float_of_int s) in
  checkb
    (Printf.sprintf "fault rate %.3f within 15%% of %.3f" rate expected)
    true
    (Float.abs (rate -. expected) < 0.15 *. expected)

(* Property: under any access pattern and policy, the pool never exceeds
   capacity and hits + faults account for every access. *)
let qcheck_pool_accounting =
  QCheck.Test.make ~name:"pool accounting holds for all policies" ~count:60
    QCheck.(
      pair (int_range 0 4)
        (list_of_size Gen.(int_range 1 300) (int_range 0 19)))
    (fun (policy_idx, accesses) ->
      let policy =
        match policy_idx with
        | 0 -> S.Buffer_pool.Random_replacement (U.Xorshift.create 5)
        | 1 -> S.Buffer_pool.Lru
        | 2 -> S.Buffer_pool.Clock
        | 3 -> S.Buffer_pool.Fifo
        | _ -> S.Buffer_pool.Lru_2
      in
      let env = S.Env.create () in
      let d = S.Disk.create ~env ~page_size:64 in
      let pids = Array.init 20 (fun _ -> S.Disk.alloc d) in
      let pool = S.Buffer_pool.create ~disk:d ~capacity:5 policy in
      let ok = ref true in
      List.iter
        (fun i ->
          ignore (S.Buffer_pool.get pool pids.(i));
          if S.Buffer_pool.resident pool > 5 then ok := false)
        accesses;
      let c = env.S.Env.counters in
      !ok
      && c.S.Counters.pool_hits + c.S.Counters.faults = List.length accesses
      && c.S.Counters.rand_reads = c.S.Counters.faults)

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

let rel_setup ?(page_size = 128) () =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size in
  (env, d)

let test_relation_append_scan () =
  let _, d = rel_setup () in
  let sch = schema () in
  let r = S.Relation.create ~disk:d ~name:"emp" ~schema:sch in
  for i = 1 to 10 do
    S.Relation.append_nocharge r (mk_tuple sch i (i * 10) "row")
  done;
  checki "ntuples" 10 (S.Relation.ntuples r);
  let seen = ref [] in
  S.Relation.iter_tuples_nocharge r (fun tup ->
      seen := S.Tuple.get_int sch tup 0 :: !seen);
  Alcotest.(check (list int)) "scan order" [1;2;3;4;5;6;7;8;9;10]
    (List.rev !seen)

let test_relation_npages () =
  let _, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  (* 40-byte tuples: (128-2)/40 = 3 per page. *)
  let r = S.Relation.create ~disk:d ~name:"r" ~schema:sch in
  checki "tpp" 3 (S.Relation.tuples_per_page r);
  for i = 1 to 7 do
    S.Relation.append_nocharge r (mk_tuple sch i 0 "")
  done;
  S.Relation.seal r;
  checki "pages" 3 (S.Relation.npages r)

let test_relation_charged_append () =
  let env, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  let r = S.Relation.create ~disk:d ~name:"r" ~schema:sch in
  for i = 1 to 7 do
    S.Relation.append r (mk_tuple sch i 0 "")
  done;
  S.Relation.seal r;
  (* 3 pages -> 3 sequential writes. *)
  checki "seq writes" 3 env.S.Env.counters.S.Counters.seq_writes

let test_relation_charged_scan () =
  let env, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  let tuples = List.init 9 (fun i -> mk_tuple sch i 0 "") in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch tuples in
  let before = env.S.Env.counters.S.Counters.seq_reads in
  S.Relation.iter_tuples r (fun _ -> ());
  checki "3 seq reads" (before + 3) env.S.Env.counters.S.Counters.seq_reads

let test_relation_fetch_by_tid () =
  let env, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  let tuples = List.init 9 (fun i -> mk_tuple sch i (100 + i) "") in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch tuples in
  let tids = ref [] in
  S.Relation.iter_tids_nocharge r (fun tid tup ->
      tids := (tid, S.Tuple.get_int sch tup 0) :: !tids);
  let rr0 = env.S.Env.counters.S.Counters.rand_reads in
  List.iter
    (fun (tid, k) ->
      let tup = S.Relation.fetch r tid in
      checki "fetched key" k (S.Tuple.get_int sch tup 0))
    !tids;
  checki "rand reads" (rr0 + 9) env.S.Env.counters.S.Counters.rand_reads

let test_relation_fetch_bad_tid () =
  let _, d = rel_setup () in
  let sch = schema () in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch [] in
  checkb "bad tid raises" true
    (try
       ignore (S.Relation.fetch r (S.Tid.make ~page:0 ~slot:0));
       false
     with Invalid_argument _ -> true)

let test_relation_append_after_seal () =
  let _, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  let r = S.Relation.create ~disk:d ~name:"r" ~schema:sch in
  S.Relation.append_nocharge r (mk_tuple sch 1 0 "");
  S.Relation.seal r;
  S.Relation.append_nocharge r (mk_tuple sch 2 0 "");
  S.Relation.seal r;
  checki "2 tuples" 2 (S.Relation.ntuples r);
  checki "2 pages (partial each)" 2 (S.Relation.npages r);
  let ks = List.map (fun t -> S.Tuple.get_int sch t 0) (S.Relation.to_list r) in
  Alcotest.(check (list int)) "both present" [ 1; 2 ] ks

let test_relation_free_pages () =
  let _, d = rel_setup () in
  let sch = schema () in
  let tuples = List.init 9 (fun i -> mk_tuple sch i 0 "") in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch tuples in
  let before = S.Disk.page_count d in
  checkb "has pages" true (before > 0);
  S.Relation.free_pages r;
  checki "disk pages released" 0 (S.Disk.page_count d);
  checki "empty" 0 (S.Relation.ntuples r)

let qcheck_relation_roundtrip =
  QCheck.Test.make ~name:"relation roundtrips arbitrary int lists" ~count:100
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let _, d = rel_setup ~page_size:256 () in
      let sch = schema () in
      let tuples = List.map (fun x -> mk_tuple sch x x "t") xs in
      let r = S.Relation.of_tuples ~disk:d ~name:"q" ~schema:sch tuples in
      let back =
        List.map (fun t -> S.Tuple.get_int sch t 0) (S.Relation.to_list r)
      in
      back = xs)

let test_relation_with_schema_view () =
  let _, d = rel_setup ~page_size:256 () in
  let sch = schema () in
  let tuples = List.init 20 (fun i -> mk_tuple sch i (19 - i) "x") in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch tuples in
  (* Re-keyed view shares pages: same tuples, different key column. *)
  let view = S.Relation.with_schema r (S.Schema.with_key sch "v") in
  checki "same cardinality" 20 (S.Relation.ntuples view);
  checki "view keyed on v" 1 (S.Schema.key_index (S.Relation.schema view));
  let keys rel =
    let s = S.Relation.schema rel in
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge rel (fun t ->
        acc := Bytes.to_string (S.Tuple.key_bytes s t) :: !acc);
    List.rev !acc
  in
  (* The view's key bytes are column v's values. *)
  checkb "keys differ between base and view" true (keys r <> keys view);
  (* Width mismatch rejected. *)
  let narrow = S.Schema.create ~key:"a" [ S.Schema.column "a" S.Schema.Int ] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Relation.with_schema: tuple width mismatch") (fun () ->
      ignore (S.Relation.with_schema r narrow))

let test_relation_page_ids_stable () =
  let _, d = rel_setup ~page_size:128 () in
  let sch = schema () in
  let tuples = List.init 9 (fun i -> mk_tuple sch i 0 "") in
  let r = S.Relation.of_tuples ~disk:d ~name:"r" ~schema:sch tuples in
  let ids = S.Relation.page_ids r in
  checki "3 pages" 3 (Array.length ids);
  (* Ids are distinct and readable. *)
  let distinct = List.sort_uniq compare (Array.to_list ids) in
  checki "distinct" 3 (List.length distinct);
  Array.iter (fun pid -> ignore (S.Disk.read_nocharge d pid)) ids

(* ------------------------------------------------------------------ *)
(* Tid                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tid_encode_roundtrip () =
  let tid = S.Tid.make ~page:123456 ~slot:789 in
  let buf = Bytes.make S.Tid.encoded_width '\000' in
  S.Tid.encode_into tid buf 0;
  let back = S.Tid.decode_from buf 0 in
  checkb "equal" true (S.Tid.equal tid back)

let test_tid_compare () =
  let a = S.Tid.make ~page:1 ~slot:5 and b = S.Tid.make ~page:2 ~slot:0 in
  checkb "page dominates" true (S.Tid.compare a b < 0);
  let c = S.Tid.make ~page:1 ~slot:6 in
  checkb "slot breaks ties" true (S.Tid.compare a c < 0)

let () =
  Alcotest.run "mmdb_storage"
    [
      ( "cost/clock/env",
        [
          Alcotest.test_case "table2 constants" `Quick test_cost_table2;
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "clock negative" `Quick test_clock_negative;
          Alcotest.test_case "env charging" `Quick test_env_charging;
          Alcotest.test_case "counters diff" `Quick test_counters_diff;
        ] );
      ( "page",
        [
          Alcotest.test_case "capacity" `Quick test_page_capacity;
          Alcotest.test_case "append/get" `Quick test_page_append_get;
          Alcotest.test_case "fills up" `Quick test_page_fills_up;
          Alcotest.test_case "set/iter" `Quick test_page_set_and_iter;
          Alcotest.test_case "bounds" `Quick test_page_bounds;
        ] );
      ( "schema",
        [
          Alcotest.test_case "layout" `Quick test_schema_layout;
          Alcotest.test_case "with_key" `Quick test_schema_with_key;
          Alcotest.test_case "errors" `Quick test_schema_errors;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "roundtrip" `Quick test_tuple_roundtrip;
          Alcotest.test_case "set_int" `Quick test_tuple_set_int;
          Alcotest.test_case "key compare" `Quick test_tuple_key_compare;
          Alcotest.test_case "negative ordering" `Quick
            test_tuple_negative_ordering;
          QCheck_alcotest.to_alcotest qcheck_int_encoding_order;
          QCheck_alcotest.to_alcotest qcheck_narrow_int_roundtrip;
          Alcotest.test_case "narrow out of range" `Quick
            test_narrow_int_out_of_range;
          Alcotest.test_case "string too long" `Quick test_string_too_long;
          Alcotest.test_case "hash deterministic" `Quick
            test_hash_key_deterministic;
        ] );
      ( "disk",
        [
          Alcotest.test_case "alloc/rw/charges" `Quick test_disk_alloc_rw;
          Alcotest.test_case "read isolation" `Quick
            test_disk_read_copy_isolated;
          Alcotest.test_case "free" `Quick test_disk_free;
          Alcotest.test_case "nocharge" `Quick test_disk_nocharge;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit & fault" `Quick test_pool_hit_and_fault;
          Alcotest.test_case "capacity bound" `Quick test_pool_capacity_bound;
          Alcotest.test_case "lru order" `Quick test_pool_lru_eviction_order;
          Alcotest.test_case "dirty writeback" `Quick test_pool_dirty_writeback;
          Alcotest.test_case "flush_all" `Quick test_pool_flush_all;
          Alcotest.test_case "drop_all" `Quick test_pool_drop_all_discards;
          Alcotest.test_case "mark_dirty nonresident" `Quick
            test_pool_mark_dirty_nonresident;
          Alcotest.test_case "random bounded" `Quick
            test_pool_random_policy_bounded;
          Alcotest.test_case "clock bounded" `Quick test_pool_clock_policy_bounded;
          Alcotest.test_case "random fault rate ~ model" `Quick
            test_pool_random_fault_rate_matches_model;
          QCheck_alcotest.to_alcotest qcheck_pool_accounting;
        ] );
      ( "relation",
        [
          Alcotest.test_case "append/scan" `Quick test_relation_append_scan;
          Alcotest.test_case "npages" `Quick test_relation_npages;
          Alcotest.test_case "charged append" `Quick test_relation_charged_append;
          Alcotest.test_case "charged scan" `Quick test_relation_charged_scan;
          Alcotest.test_case "fetch by tid" `Quick test_relation_fetch_by_tid;
          Alcotest.test_case "fetch bad tid" `Quick test_relation_fetch_bad_tid;
          Alcotest.test_case "append after seal" `Quick
            test_relation_append_after_seal;
          Alcotest.test_case "free pages" `Quick test_relation_free_pages;
          QCheck_alcotest.to_alcotest qcheck_relation_roundtrip;
          Alcotest.test_case "with_schema view" `Quick
            test_relation_with_schema_view;
          Alcotest.test_case "page_ids stable" `Quick
            test_relation_page_ids_stable;
        ] );
      ( "tid",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_tid_encode_roundtrip;
          Alcotest.test_case "compare" `Quick test_tid_compare;
        ] );
    ]
