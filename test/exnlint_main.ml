(* Exception-flow gate, wired to `dune build @exnlint` (and the CI
   exnlint step): the interprocedural Exn_flow pass over lib/ must find
   every EXN/RES hazard fixed or justified, and a seeded fault-injection
   property must show that pin/unpin spans guarded the way the lint
   demands (Fun.protect) never leak a pinned frame when the device
   raises Fault.Io_error mid-span — Pool_check is the oracle.  Exits
   non-zero on any unjustified finding or a leaked pin. *)

module V = Mmdb_verify

let failures = ref 0

let part name ok =
  Format.printf "%-28s %s@." name (if ok then "ok" else "FAIL");
  if not ok then incr failures

(* ------------------------------------------------------------------ *)
(* Static exception-flow lint over lib/                                *)
(* ------------------------------------------------------------------ *)

let () =
  match V.Exn_flow.scan_lib () with
  | Error m ->
    Format.printf "%s@." m;
    part "exn-flow lint" false
  | Ok (findings, parse_diags) ->
    let diags = parse_diags @ V.Exn_flow.diags_of_findings findings in
    List.iter (fun d -> Format.printf "  %a@." V.Diag.pp d) diags;
    Format.printf "  (%d finding%s inventoried)@." (List.length findings)
      (match findings with [ _ ] -> "" | _ -> "s");
    part "exn-flow lint" (not (V.Diag.has_errors diags))

(* ------------------------------------------------------------------ *)
(* Pin/unpin under injected Io_error: Fun.protect keeps the pool clean *)
(* ------------------------------------------------------------------ *)

(* The dynamic counterpart of RES103: drive random pin/read/unpin spans
   (the shape the lint demands — release in a Fun.protect finally)
   against a disk armed to throw Fault.Io_error past the retry budget,
   catch the fault at the top like the torture harness does, and ask
   Pool_check whether any frame stayed pinned. *)
let pin_property ~seed =
  let module S = Mmdb_storage in
  let module F = Mmdb_fault in
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:256 in
  let pids = Array.init 16 (fun _ -> S.Disk.alloc disk) in
  Array.iteri
    (fun i pid ->
      S.Disk.write disk ~mode:S.Disk.Seq pid
        (Bytes.make 256 (Char.chr (65 + (i mod 26)))))
    pids;
  (* Arm after seeding so the transient failures (deeper than the retry
     budget, so they surface as Fault.Io_error) hit only the pin-path
     reads. *)
  let plan =
    F.Fault_plan.create ~seed
      [
        {
          F.Fault_plan.site = F.Fault.Disk_read;
          kind = F.Fault.Io_transient { failures = 10 };
          trigger = F.Fault_plan.Prob 0.25;
        };
      ]
  in
  S.Disk.arm disk plan;
  let pool = S.Buffer_pool.create ~disk ~capacity:8 S.Buffer_pool.Lru in
  let rng = Mmdb_util.Xorshift.create (0x5eed + seed) in
  let io_errors = ref 0 in
  for _ = 1 to 200 do
    let pid = pids.(Mmdb_util.Xorshift.int rng 16) in
    match
      let frame = S.Buffer_pool.pin pool pid in
      Fun.protect
        ~finally:(fun () -> S.Buffer_pool.unpin pool pid)
        (fun () -> ignore (Bytes.get frame 0))
    with
    | () -> ()
    | exception F.Fault.Io_error _ -> incr io_errors
  done;
  let diags = V.Pool_check.audit ~expect_unpinned:true pool in
  Format.printf "  seed %d: %d spans, %d io errors ridden, %s@." seed 200
    !io_errors
    (V.Diag.summary diags);
  (not (V.Diag.has_errors diags)) && !io_errors > 0

let () =
  part "pin safety under Io_error (seed 7)" (pin_property ~seed:7);
  part "pin safety under Io_error (seed 11)" (pin_property ~seed:11)

let () =
  Format.printf "exnlint: %s@."
    (if !failures = 0 then "all clean"
     else
       Printf.sprintf "%d gate%s failed" !failures
         (if !failures = 1 then "" else "s"));
  exit (if !failures = 0 then 0 else 1)
