(* Standalone cost-model conformance gate, wired to `dune build
   @modelcheck`: runs the seeded Model_check suite (operator conformance,
   optimizer optimality lint, selectivity checks) through the unified
   Audit driver and prints its checklist report.  Exits non-zero on any
   error-severity finding. *)

module V = Mmdb_verify

let () =
  let components =
    [
      V.Audit.Model
        {
          name = "model conformance";
          check =
            (fun () ->
              V.Model_check.suite_diags
                (V.Model_check.run_suite ~seed:42 ~enumerate:true ()));
        };
      (* A second seed guards against a lucky corpus. *)
      V.Audit.Model
        {
          name = "model conformance (seed 7)";
          check =
            (fun () ->
              V.Model_check.suite_diags
                (V.Model_check.run_suite ~seed:7 ~enumerate:true ()));
        };
      (* Parallel-replay recovery-time conformance (MODEL012). *)
      V.Audit.Model
        {
          name = "recovery-time conformance";
          check = (fun () -> V.Model_check.check_recovery ~seed:7 ());
        };
    ]
  in
  let clean = V.Audit.report Format.std_formatter (V.Audit.run_all components) in
  exit (if clean then 0 else 1)
