(* Tests for the SQL front-end: parsing, error reporting, and end-to-end
   equivalence with hand-built algebra expressions. *)

module S = Mmdb_storage
module E = Mmdb_exec
module P = Mmdb_planner
module A = P.Algebra
module M = Mmdb

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let parse_ok s =
  match P.Sql.parse s with
  | Ok e -> e
  | Error m -> Alcotest.fail (Printf.sprintf "parse of %S failed: %s" s m)

let parse_err s =
  match P.Sql.parse s with
  | Ok _ -> Alcotest.fail (Printf.sprintf "parse of %S should fail" s)
  | Error m -> m

let expr_str e = Format.asprintf "%a" A.pp e

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_scan () =
  checks "select star" "emp" (expr_str (parse_ok "SELECT * FROM emp"))

let test_parse_projection () =
  checks "projection" "project[id,salary](emp)"
    (expr_str (parse_ok "SELECT id, salary FROM emp"));
  checks "distinct" "project-distinct[dept](emp)"
    (expr_str (parse_ok "SELECT DISTINCT dept FROM emp"))

let test_parse_where () =
  checks "single predicate" "project[id](select[salary > 50000](emp))"
    (expr_str (parse_ok "SELECT id FROM emp WHERE salary > 50000"));
  checks "conjunction"
    "project[id](select[dept = 3](select[salary >= 10](emp)))"
    (expr_str (parse_ok "SELECT id FROM emp WHERE salary >= 10 AND dept = 3"))

let test_parse_operators () =
  List.iter
    (fun (src, expect) ->
      checks src expect (expr_str (parse_ok ("SELECT * FROM t WHERE a " ^ src))))
    [
      ("= 1", "select[a = 1](t)");
      ("<> 1", "select[a <> 1](t)");
      ("!= 1", "select[a <> 1](t)");
      ("< 1", "select[a < 1](t)");
      ("<= 1", "select[a <= 1](t)");
      ("> 1", "select[a > 1](t)");
      (">= 1", "select[a >= 1](t)");
      ("= -5", "select[a = -5](t)");
      ("= 'x'", "select[a = \"x\"](t)");
    ]

let test_parse_join () =
  checks "one join" "join[dept=dept_id](emp, dept)"
    (expr_str (parse_ok "SELECT * FROM emp JOIN dept ON dept = dept_id"));
  checks "two joins (left-deep)"
    "join[s_region=region_id](join[dept=dept_id](emp, dept), regions)"
    (expr_str
       (parse_ok
          "SELECT * FROM emp JOIN dept ON dept = dept_id JOIN regions ON \
           s_region = region_id"))

let test_parse_group_by () =
  checks "aggregate" "aggregate[by dept; 2 aggs](emp)"
    (expr_str
       (parse_ok "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept"));
  checks "aggregate over join"
    "aggregate[by r_dept; 1 aggs](select[r_salary > 10](join[dept=dept_id](emp, dept)))"
    (expr_str
       (parse_ok
          "SELECT r_dept, AVG(r_salary) FROM emp JOIN dept ON dept = dept_id \
           WHERE r_salary > 10 GROUP BY r_dept"))

let test_parse_order_by () =
  checks "order by" "order[salary](project[id,salary](emp))"
    (expr_str (parse_ok "SELECT id, salary FROM emp ORDER BY salary"));
  checks "order by desc" "order[salary desc](emp)"
    (expr_str (parse_ok "SELECT * FROM emp ORDER BY salary DESC"));
  checks "order by asc" "order[salary](emp)"
    (expr_str (parse_ok "SELECT * FROM emp ORDER BY salary ASC"));
  checks "order above group by"
    "order[count desc](aggregate[by dept; 1 aggs](emp))"
    (expr_str
       (parse_ok
          "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY count DESC"))

let test_parse_set_ops () =
  checks "union"
    "union(project[dept](select[salary > 9000](emp)), project[dept](select[salary < 100](emp)))"
    (expr_str
       (parse_ok
          "SELECT dept FROM emp WHERE salary > 9000 UNION SELECT dept FROM \
           emp WHERE salary < 100"));
  checks "except left-assoc"
    "except(intersect(project[a](t), project[a](u)), project[a](v))"
    (expr_str
       (parse_ok
          "SELECT a FROM t INTERSECT SELECT a FROM u EXCEPT SELECT a FROM v"));
  checks "set op then order"
    "order[dept](union(project[dept](emp), project[dept](emp)))"
    (expr_str
       (parse_ok
          "SELECT dept FROM emp UNION SELECT dept FROM emp ORDER BY dept"))

let test_parse_case_insensitive () =
  checks "lowercase keywords" "project[id](select[dept = 1](emp))"
    (expr_str (parse_ok "select id from emp where dept = 1"))

let test_parse_errors () =
  let has_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "missing FROM" true (has_sub (parse_err "SELECT *") "FROM");
  checkb "bad operator chain" true
    (String.length (parse_err "SELECT * FROM t WHERE a = = 1") > 0);
  checkb "unterminated string" true
    (has_sub (parse_err "SELECT * FROM t WHERE a = 'oops") "unterminated");
  checkb "aggregate without group by" true
    (has_sub (parse_err "SELECT COUNT(*) FROM t") "GROUP BY");
  checkb "group by needs select list" true
    (has_sub (parse_err "SELECT * FROM t GROUP BY a") "select list");
  checkb "non-aggregated column" true
    (has_sub
       (parse_err "SELECT a, b FROM t GROUP BY a")
       "non-aggregated");
  checkb "trailing garbage" true
    (has_sub (parse_err "SELECT * FROM t WHERE a = 1 b") "unexpected");
  checkb "stray char" true
    (String.length (parse_err "SELECT * FROM t %") > 0)

(* ------------------------------------------------------------------ *)
(* End to end through Db                                               *)
(* ------------------------------------------------------------------ *)

let setup_db () =
  let db = M.Db.create () in
  let emp =
    S.Schema.create ~key:"id"
      [
        S.Schema.column "id" S.Schema.Int;
        S.Schema.column "dept" S.Schema.Int;
        S.Schema.column "salary" S.Schema.Int;
      ]
  in
  let dept =
    S.Schema.create ~key:"dept_id"
      [
        S.Schema.column "dept_id" S.Schema.Int;
        S.Schema.column "budget" S.Schema.Int;
      ]
  in
  M.Db.create_table db ~name:"emp" ~schema:emp;
  M.Db.create_table db ~name:"dept" ~schema:dept;
  M.Db.insert_many db ~table:"emp"
    (List.init 60 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (i mod 4);
           S.Tuple.VInt (1000 * (i mod 10));
         ]));
  M.Db.insert_many db ~table:"dept"
    (List.init 4 (fun i -> [ S.Tuple.VInt i; S.Tuple.VInt (i * 100) ]));
  db

let test_sql_end_to_end_filter () =
  let db = setup_db () in
  let rows = M.Db.sql db "SELECT id FROM emp WHERE salary >= 8000" in
  checki "6 rows with salary 8000 or 9000" 12 (List.length rows)

let test_sql_end_to_end_join_aggregate () =
  let db = setup_db () in
  let rows =
    M.Db.sql db
      "SELECT r_dept, COUNT(*), SUM(s_budget) FROM emp JOIN dept ON dept = \
       dept_id GROUP BY r_dept"
  in
  checki "4 groups" 4 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [ S.Tuple.VInt dept; S.Tuple.VInt count; S.Tuple.VInt budget_sum ] ->
        checki "15 employees per dept" 15 count;
        checki "sum = count * dept budget" (15 * dept * 100) budget_sum
      | _ -> Alcotest.fail "bad row shape")
    rows

let test_sql_matches_algebra () =
  let db = setup_db () in
  let via_sql =
    M.Db.sql db "SELECT DISTINCT dept FROM emp WHERE salary > 3000"
  in
  let via_algebra =
    M.Db.query_rows db
      (A.project ~distinct:true ~columns:[ "dept" ]
         (A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 3000)
            (A.scan "emp")))
  in
  checkb "identical results" true
    (List.sort compare via_sql = List.sort compare via_algebra)

let test_sql_explain () =
  let db = setup_db () in
  let text =
    M.Db.sql_explain db
      "SELECT r_dept, COUNT(*) FROM emp JOIN dept ON dept = dept_id WHERE \
       r_salary > 5000 GROUP BY r_dept"
  in
  let has_sub needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "plan shows join" true (has_sub "join");
  (* The WHERE predicate must have been pushed below the join. *)
  checkb "filter pushed down" true (has_sub "filter salary")

let test_sql_order_by_end_to_end () =
  let db = setup_db () in
  let rows =
    M.Db.sql db "SELECT id, salary FROM emp WHERE dept = 1 ORDER BY salary DESC"
  in
  let salaries =
    List.map
      (fun row ->
        match row with
        | [ _; S.Tuple.VInt s ] -> s
        | _ -> Alcotest.fail "bad row")
      rows
  in
  checkb "descending" true
    (salaries = List.rev (List.sort compare salaries));
  checki "15 rows" 15 (List.length rows)

let test_sql_set_ops_end_to_end () =
  let db = setup_db () in
  let ints rows =
    List.sort compare
      (List.map
         (fun row ->
           match row with
           | [ S.Tuple.VInt v ] -> v
           | _ -> Alcotest.fail "bad row")
         rows)
  in
  (* Departments of low earners union departments of high earners. *)
  let union =
    ints
      (M.Db.sql db
         "SELECT dept FROM emp WHERE salary < 2000 UNION SELECT dept FROM \
          emp WHERE salary >= 8000")
  in
  Alcotest.(check (list int)) "union distinct depts" [ 0; 1; 2; 3 ] union;
  let inter =
    ints
      (M.Db.sql db
         "SELECT dept FROM emp WHERE salary = 0 INTERSECT SELECT dept FROM \
          emp WHERE salary = 9000")
  in
  (* salary 0 <=> i mod 10 = 0 <=> dept in {0,2}; salary 9000 <=> i mod 10
     = 9 <=> dept in {1,3}.  Intersection is empty. *)
  Alcotest.(check (list int)) "empty intersection" [] inter;
  let except =
    ints
      (M.Db.sql db
         "SELECT dept FROM emp EXCEPT SELECT dept FROM emp WHERE salary = 0")
  in
  Alcotest.(check (list int)) "depts never paying 0" [ 1; 3 ] except

let test_sql_unknown_table () =
  let db = setup_db () in
  checkb "unknown table raises" true
    (try
       ignore (M.Db.sql db "SELECT * FROM nope");
       false
     with Not_found | Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let count db table = List.length (M.Db.sql db ("SELECT * FROM " ^ table))

let test_dml_insert () =
  let db = setup_db () in
  (match
     M.Db.execute db "INSERT INTO emp VALUES (100, 1, 7777), (101, 2, 8888)"
   with
  | M.Db.Affected 2 -> ()
  | _ -> Alcotest.fail "expected Affected 2");
  checki "62 rows now" 62 (count db "emp");
  (match M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 100) with
  | Some [ _; _; S.Tuple.VInt 7777 ] -> ()
  | _ -> Alcotest.fail "inserted row not found")

let test_dml_delete () =
  let db = setup_db () in
  (match M.Db.execute db "DELETE FROM emp WHERE dept = 3" with
  | M.Db.Affected 15 -> ()
  | M.Db.Affected n -> Alcotest.fail (Printf.sprintf "affected %d" n)
  | M.Db.Rows _ -> Alcotest.fail "expected Affected");
  checki "45 remain" 45 (count db "emp");
  checki "none in dept 3" 0
    (List.length (M.Db.sql db "SELECT * FROM emp WHERE dept = 3"))

let test_dml_delete_all () =
  let db = setup_db () in
  (match M.Db.execute db "DELETE FROM emp" with
  | M.Db.Affected 60 -> ()
  | _ -> Alcotest.fail "expected Affected 60");
  checki "empty" 0 (count db "emp")

let test_dml_update () =
  let db = setup_db () in
  (match M.Db.execute db "UPDATE emp SET salary = 0 WHERE dept = 1" with
  | M.Db.Affected 15 -> ()
  | _ -> Alcotest.fail "expected Affected 15");
  let rows = M.Db.sql db "SELECT salary FROM emp WHERE dept = 1" in
  checki "15 rows" 15 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [ S.Tuple.VInt 0 ] -> ()
      | _ -> Alcotest.fail "salary not zeroed")
    rows;
  checki "other depts untouched" 45
    (List.length (M.Db.sql db "SELECT * FROM emp WHERE dept <> 1"))

let test_dml_maintains_indexes () =
  let db = setup_db () in
  M.Db.create_index db ~table:"emp" M.Db.Btree_index;
  ignore (M.Db.execute db "DELETE FROM emp WHERE id = 30");
  checkb "deleted row invisible to index" true
    (M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 30) = None);
  ignore (M.Db.execute db "UPDATE emp SET salary = 123 WHERE id = 31");
  (match M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 31) with
  | Some [ _; _; S.Tuple.VInt 123 ] -> ()
  | _ -> Alcotest.fail "index stale after update");
  ignore (M.Db.execute db "INSERT INTO emp VALUES (500, 0, 1)");
  checkb "insert indexed" true
    (M.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 500) <> None)

let test_dml_query_through_execute () =
  let db = setup_db () in
  match M.Db.execute db "SELECT dept, COUNT(*) FROM emp GROUP BY dept" with
  | M.Db.Rows rows -> checki "4 groups" 4 (List.length rows)
  | M.Db.Affected _ -> Alcotest.fail "expected Rows"

let test_ddl_create_drop () =
  let db = M.Db.create () in
  (match
     M.Db.execute db
       "CREATE TABLE books (isbn INT PRIMARY KEY, title STRING(20), year INT)"
   with
  | M.Db.Affected 0 -> ()
  | _ -> Alcotest.fail "expected Affected 0");
  Alcotest.(check (list string)) "created" [ "books" ] (M.Db.table_names db);
  ignore
    (M.Db.execute db "INSERT INTO books VALUES (42, 'ocaml book', 1996)");
  (match M.Db.lookup db ~table:"books" ~key:(S.Tuple.VInt 42) with
  | Some [ _; S.Tuple.VStr "ocaml book"; S.Tuple.VInt 1996 ] -> ()
  | _ -> Alcotest.fail "row wrong");
  (* Key defaults to the first column when PRIMARY KEY is omitted. *)
  ignore (M.Db.execute db "CREATE TABLE plain (a INT, b INT)");
  ignore (M.Db.execute db "DROP TABLE books");
  Alcotest.(check (list string)) "dropped" [ "plain" ] (M.Db.table_names db);
  checkb "dropped table unknown to planner" true
    (try
       ignore (M.Db.sql db "SELECT * FROM books");
       false
     with
    | Not_found -> true
    (* The plan checker rejects it first, naming the missing relation. *)
    | Invalid_argument m ->
      let rec find i =
        i + 7 <= String.length m && (String.sub m i 7 = "PLAN001" || find (i + 1))
      in
      find 0);
  checkb "create after drop ok" true
    (match M.Db.execute db "CREATE TABLE books (isbn INT)" with
    | M.Db.Affected 0 -> true
    | _ -> false)

let test_ddl_errors () =
  let db = M.Db.create () in
  checkb "duplicate primary key" true
    (match
       P.Sql.parse_statement
         "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)"
     with
    | Error _ -> true
    | Ok _ -> false);
  checkb "bad type" true
    (match P.Sql.parse_statement "CREATE TABLE t (a FLOAT)" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "drop unknown table" true
    (try
       ignore (M.Db.execute db "DROP TABLE nope");
       false
     with Not_found -> true)

let test_dml_parse_errors () =
  checkb "bad insert" true
    (match P.Sql.parse_statement "INSERT INTO t VALUES 1, 2" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "query via parse rejects DML" true
    (match P.Sql.parse "DELETE FROM t" with Error _ -> true | Ok _ -> false);
  checkb "update needs SET" true
    (match P.Sql.parse_statement "UPDATE t WHERE a = 1" with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "mmdb_sql"
    [
      ( "parse",
        [
          Alcotest.test_case "scan" `Quick test_parse_scan;
          Alcotest.test_case "projection" `Quick test_parse_projection;
          Alcotest.test_case "where" `Quick test_parse_where;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "join" `Quick test_parse_join;
          Alcotest.test_case "group by" `Quick test_parse_group_by;
          Alcotest.test_case "order by" `Quick test_parse_order_by;
          Alcotest.test_case "set ops" `Quick test_parse_set_ops;
          Alcotest.test_case "case-insensitive" `Quick
            test_parse_case_insensitive;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "filter" `Quick test_sql_end_to_end_filter;
          Alcotest.test_case "join + aggregate" `Quick
            test_sql_end_to_end_join_aggregate;
          Alcotest.test_case "matches algebra" `Quick test_sql_matches_algebra;
          Alcotest.test_case "explain + pushdown" `Quick test_sql_explain;
          Alcotest.test_case "order by end-to-end" `Quick
            test_sql_order_by_end_to_end;
          Alcotest.test_case "set ops end-to-end" `Quick
            test_sql_set_ops_end_to_end;
          Alcotest.test_case "unknown table" `Quick test_sql_unknown_table;
        ] );
      ( "dml",
        [
          Alcotest.test_case "insert" `Quick test_dml_insert;
          Alcotest.test_case "delete" `Quick test_dml_delete;
          Alcotest.test_case "delete all" `Quick test_dml_delete_all;
          Alcotest.test_case "update" `Quick test_dml_update;
          Alcotest.test_case "indexes maintained" `Quick
            test_dml_maintains_indexes;
          Alcotest.test_case "query through execute" `Quick
            test_dml_query_through_execute;
          Alcotest.test_case "parse errors" `Quick test_dml_parse_errors;
          Alcotest.test_case "create/drop table" `Quick test_ddl_create_drop;
          Alcotest.test_case "ddl errors" `Quick test_ddl_errors;
        ] );
    ]
