(* Tests for the cost-model conformance analyzer (Model_check): the
   seeded suite runs clean at the declared tolerances, a deliberately
   mis-modeled workload is flagged through a stable MODEL code, the
   optimality lint certifies stock plans and catches a deliberately
   crippled optimizer, and the selectivity check fires on divergence. *)

module S = Mmdb_storage
module E = Mmdb_exec
module P = Mmdb_planner
module A = P.Algebra
module U = Mmdb_util
module D = U.Diag
module V = Mmdb_verify
module MC = V.Model_check
module JM = Mmdb_model.Join_model

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Shared corpus: three tables of 100-byte tuples with a random key
   column "k" and a sequential (presorted) column "v". *)
let corpus () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let rng = U.Xorshift.create 2026 in
  let mk name pages =
    let schema =
      S.Schema.create ~key:"k"
        [
          S.Schema.column "k" S.Schema.Int;
          S.Schema.column "v" S.Schema.Int;
          S.Schema.column ~width:84 ("pad_" ^ name) S.Schema.Fixed_string;
        ]
    in
    let n = pages * 40 in
    S.Relation.of_tuples ~disk ~name ~schema
      (List.init n (fun i ->
           S.Tuple.encode schema
             [
               S.Tuple.VInt (U.Xorshift.int rng n);
               S.Tuple.VInt i;
               S.Tuple.VStr "";
             ]))
  in
  let r = mk "r" 24 and s = mk "s" 60 in
  let catalog = P.Catalog.create () in
  List.iter (P.Catalog.register catalog) [ r; s ];
  (catalog, r, s)

let cfg = { P.Optimizer.mem_pages = 16; fudge = 1.2; allow_hash = true }

(* ------------------------------------------------------------------ *)
(* Conformance                                                         *)
(* ------------------------------------------------------------------ *)

let test_suite_clean () =
  let cases = MC.run_suite ~seed:42 ~enumerate:true () in
  checkb "stock operators conform at declared tolerances"
    true (MC.suite_ok cases);
  checkb "no warnings either" true (MC.suite_diags cases = [])

let test_suite_deterministic () =
  let diags_of seed = MC.suite_diags (MC.run_suite ~seed ~enumerate:true ()) in
  checkb "same seed, same findings" true (diags_of 5 = diags_of 5)

let test_all_four_joins_conform () =
  let _catalog, r, s = corpus () in
  List.iter
    (fun algo ->
      let diags = MC.check_join algo ~mem_pages:16 ~fudge:1.2 r s in
      checkb (E.Joiner.name algo ^ " conforms") true (not (D.has_errors diags)))
    E.Joiner.all

let test_tight_band_flags () =
  (* Shrinking every band far below the declared width must expose the
     (bounded) constant-factor gap between model and implementation —
     proof the bands are load-bearing, not decorative. *)
  let _catalog, r, s = corpus () in
  let diags =
    MC.check_join ~tolerance_scale:0.01 E.Joiner.Sort_merge_join
      ~mem_pages:16 ~fudge:1.2 r s
  in
  checkb "near-zero tolerance flags sort-merge" true (D.has_errors diags)

let test_miscosted_operator_flagged () =
  (* Sorting the presorted column is a deliberate model violation: the
     expected-runs formula assumes random input (runs of ~2|M| pages),
     but replacement selection on sorted input emits one long run, so the
     multi-run merge I/O the model predicts never happens.  The analyzer
     must catch the divergence with a stable MODEL code. *)
  let catalog, _r, _s = corpus () in
  let reports =
    MC.check_plan catalog cfg (A.order_by ~column:"v" (A.scan "s"))
  in
  let diags = MC.report_diags reports in
  checkb "presorted sort diverges from the model" true (D.has_errors diags);
  checkb "flagged as random-I/O divergence (MODEL006)" true
    (D.has_code "MODEL006" diags)

let test_model011_on_invalid_workload () =
  (* Memory below sqrt(|S|*F): outside the formulas' validity, reported
     as a skip-warning rather than force-fitted. *)
  let _catalog, r, s = corpus () in
  let diags = MC.check_join E.Joiner.Hybrid_hash_join ~mem_pages:2 ~fudge:1.2 r s in
  checkb "no errors" true (not (D.has_errors diags));
  checkb "MODEL011 warning" true (D.has_code "MODEL011" diags)

let test_ops_of_counters () =
  let c = S.Counters.create () in
  c.S.Counters.comparisons <- 3;
  c.S.Counters.hashes <- 5;
  c.S.Counters.moves <- 7;
  c.S.Counters.swaps <- 11;
  c.S.Counters.seq_reads <- 13;
  c.S.Counters.seq_writes <- 17;
  c.S.Counters.rand_reads <- 19;
  c.S.Counters.rand_writes <- 23;
  let o = MC.ops_of_counters c in
  checkb "comps" true (o.JM.comps = 3.0);
  checkb "seq reads+writes merge" true (o.JM.seq_ios = 30.0);
  checkb "rand reads+writes merge" true (o.JM.rand_ios = 42.0)

let test_scan_and_filter_silent () =
  (* Nocharge operators must predict and observe exactly zero. *)
  let catalog, _r, _s = corpus () in
  let reports =
    MC.check_plan catalog cfg
      (A.select ~column:"v" ~op:A.Lt ~value:(S.Tuple.VInt 100) (A.scan "r"))
  in
  checki "two nodes traced" 2 (List.length reports);
  List.iter
    (fun (r : MC.node_report) ->
      checkb (r.MC.kind ^ " clean") true (r.MC.diags = []);
      checkb (r.MC.kind ^ " observed nothing") true
        (r.MC.observed = JM.zero_ops))
    reports

(* ------------------------------------------------------------------ *)
(* Optimality lint                                                     *)
(* ------------------------------------------------------------------ *)

let join_expr = A.join ~left_key:"k" ~right_key:"k" (A.scan "r") (A.scan "s")

let test_lint_clean_on_stock_optimizer () =
  let catalog, _r, _s = corpus () in
  checkb "chosen plan at the enumerated minimum" true
    (MC.lint_optimality catalog cfg join_expr = [])

let test_lint_flags_crippled_optimizer () =
  (* allow_hash = false forces sort-merge, which the enumeration prices
     above hybrid on this workload: a deliberately suboptimal choice the
     lint must flag. *)
  let catalog, _r, _s = corpus () in
  let diags =
    MC.lint_optimality catalog
      { cfg with P.Optimizer.allow_hash = false }
      join_expr
  in
  checkb "MODEL008 on forced sort-merge" true (D.has_code "MODEL008" diags)

let test_lint_no_joins_no_findings () =
  let catalog, _r, _s = corpus () in
  checkb "scan-only plan has nothing to lint" true
    (MC.lint_optimality catalog cfg (A.scan "r") = [])

(* ------------------------------------------------------------------ *)
(* Selectivity                                                         *)
(* ------------------------------------------------------------------ *)

let test_selectivity_clean () =
  let catalog, _r, _s = corpus () in
  let expr =
    A.select ~column:"k" ~op:A.Lt ~value:(S.Tuple.VInt 1200) (A.scan "s")
  in
  let actual =
    S.Relation.ntuples (P.Executor.query catalog cfg expr)
  in
  checkb "estimate within the declared band" true
    (MC.check_selectivity catalog expr ~actual = [])

let test_selectivity_divergence_flagged () =
  let catalog, _r, _s = corpus () in
  let expr =
    A.select ~column:"k" ~op:A.Eq ~value:(S.Tuple.VInt 3) (A.scan "s")
  in
  let diags = MC.check_selectivity catalog expr ~actual:1_000_000 in
  checkb "MODEL009 on gross divergence" true (D.has_code "MODEL009" diags)

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)
(* ------------------------------------------------------------------ *)

let test_audit_component () =
  let clean =
    V.Audit.ok
      [
        V.Audit.Model
          {
            name = "model";
            check =
              (fun () ->
                MC.suite_diags (MC.run_suite ~seed:11 ~enumerate:false ()));
          };
      ]
  in
  checkb "audit drives the model suite" true clean

let test_code_catalogue () =
  List.iter
    (fun code ->
      checkb (code ^ " catalogued") true
        (List.mem_assoc code V.code_catalogue))
    [ "MODEL001"; "MODEL002"; "MODEL003"; "MODEL004"; "MODEL005"; "MODEL006";
      "MODEL007"; "MODEL008"; "MODEL009"; "MODEL010"; "MODEL011" ]

let test_tolerance_scale () =
  let t = MC.tolerance_for "join:hybrid" in
  let w = MC.scale_tolerance 2.0 t in
  checkb "hi widens" true (w.MC.comps.MC.hi > t.MC.comps.MC.hi);
  checkb "lo widens" true (w.MC.comps.MC.lo < t.MC.comps.MC.lo)

let () =
  Alcotest.run "modelcheck"
    [
      ( "conformance",
        [
          Alcotest.test_case "seeded suite clean" `Quick test_suite_clean;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "all four joins conform" `Quick
            test_all_four_joins_conform;
          Alcotest.test_case "tight bands flag (load-bearing)" `Quick
            test_tight_band_flags;
          Alcotest.test_case "mis-modeled sort flagged (MODEL006)" `Quick
            test_miscosted_operator_flagged;
          Alcotest.test_case "invalid workload skipped (MODEL011)" `Quick
            test_model011_on_invalid_workload;
          Alcotest.test_case "counter projection" `Quick test_ops_of_counters;
          Alcotest.test_case "nocharge operators silent" `Quick
            test_scan_and_filter_silent;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "stock optimizer certified" `Quick
            test_lint_clean_on_stock_optimizer;
          Alcotest.test_case "crippled optimizer flagged (MODEL008)" `Quick
            test_lint_flags_crippled_optimizer;
          Alcotest.test_case "no joins, no findings" `Quick
            test_lint_no_joins_no_findings;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "estimates within band" `Quick
            test_selectivity_clean;
          Alcotest.test_case "divergence flagged (MODEL009)" `Quick
            test_selectivity_divergence_flagged;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "audit component" `Quick test_audit_component;
          Alcotest.test_case "code catalogue" `Quick test_code_catalogue;
          Alcotest.test_case "tolerance scaling" `Quick test_tolerance_scale;
        ] );
    ]
